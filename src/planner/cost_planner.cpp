#include "planner/cost_planner.hpp"

#include <limits>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::planner {
namespace {

struct Entry {
  double cost = std::numeric_limits<double>::infinity();
  Executor ex;
  catalog::ServerId left_server = catalog::kInvalidId;
  catalog::ServerId right_server = catalog::kInvalidId;
};

using Table = std::map<catalog::ServerId, Entry>;

class Dp {
 public:
  Dp(const catalog::Catalog& cat, const authz::Policy& auths,
     const CostModel& model, const plan::QueryPlan& plan)
      : cat_(cat), auths_(auths), model_(model),
        profiles_(ComputeNodeProfiles(cat, plan)),
        tables_(static_cast<std::size_t>(plan.node_count())) {}

  const Table& Solve(const plan::PlanNode& node) {
    Table& table = tables_[static_cast<std::size_t>(node.id)];
    switch (node.op) {
      case plan::PlanOp::kRelation: {
        const catalog::ServerId home = cat_.relation(node.relation).server;
        table[home] = Entry{0.0,
                            Executor{home, std::nullopt, ExecutionMode::kLocal,
                                     FromChild::kSelf},
                            catalog::kInvalidId, catalog::kInvalidId};
        break;
      }
      case plan::PlanOp::kProject:
      case plan::PlanOp::kSelect: {
        for (const auto& [server, child_entry] : Solve(*node.left)) {
          table[server] = Entry{child_entry.cost,
                                Executor{server, std::nullopt,
                                         ExecutionMode::kLocal, FromChild::kLeft},
                                server, catalog::kInvalidId};
        }
        break;
      }
      case plan::PlanOp::kJoin:
        SolveJoin(node, table);
        break;
    }
    return table;
  }

  /// Fills `assignment` for the subtree of `node`, assuming its result is
  /// produced at `server`.
  void Rebuild(const plan::PlanNode& node, catalog::ServerId server,
               Assignment& assignment) const {
    const Table& table = tables_[static_cast<std::size_t>(node.id)];
    const auto it = table.find(server);
    CISQP_CHECK_MSG(it != table.end(), "no DP entry for rebuild");
    assignment.Set(node.id, it->second.ex);
    if (node.left) Rebuild(*node.left, it->second.left_server, assignment);
    if (node.right) Rebuild(*node.right, it->second.right_server, assignment);
  }

 private:
  void SolveJoin(const plan::PlanNode& node, Table& table) {
    const Table& lefts = Solve(*node.left);
    const Table& rights = Solve(*node.right);
    const authz::Profile& lp = profiles_[static_cast<std::size_t>(node.left->id)];
    const authz::Profile& rp = profiles_[static_cast<std::size_t>(node.right->id)];
    const JoinModeViews views = ComputeJoinModeViews(lp, rp, node.join_atoms);

    const auto relax = [&](catalog::ServerId server, double cost, Executor ex,
                           catalog::ServerId ls, catalog::ServerId rs) {
      Entry& entry = table.try_emplace(server).first->second;
      if (cost < entry.cost) entry = Entry{cost, ex, ls, rs};
    };

    for (const auto& [ls, el] : lefts) {
      for (const auto& [rs, er] : rights) {
        const double base = el.cost + er.cost;
        if (auths_.CanView(views.left_full_view, ls)) {
          relax(ls,
                base + model_.RegularJoinBytes(*node.right, rs == ls),
                Executor{ls, std::nullopt, ExecutionMode::kRegularJoin,
                         FromChild::kLeft},
                ls, rs);
        }
        if (auths_.CanView(views.right_full_view, rs)) {
          relax(rs,
                base + model_.RegularJoinBytes(*node.left, ls == rs),
                Executor{rs, std::nullopt, ExecutionMode::kRegularJoin,
                         FromChild::kRight},
                ls, rs);
        }
        if (ls != rs) {
          if (auths_.CanView(views.right_slave_view, rs) &&
              auths_.CanView(views.left_master_view, ls)) {
            relax(ls,
                  base + model_.SemiJoinBytes(node, *node.left, *node.right,
                                              views.left_join_attrs),
                  Executor{ls, rs, ExecutionMode::kSemiJoin, FromChild::kLeft},
                  ls, rs);
          }
          if (auths_.CanView(views.left_slave_view, ls) &&
              auths_.CanView(views.right_master_view, rs)) {
            relax(rs,
                  base + model_.SemiJoinBytes(node, *node.right, *node.left,
                                              views.right_join_attrs),
                  Executor{rs, ls, ExecutionMode::kSemiJoin, FromChild::kRight},
                  ls, rs);
          }
        }
      }
    }
  }

  const catalog::Catalog& cat_;
  const authz::Policy& auths_;
  const CostModel& model_;
  std::vector<authz::Profile> profiles_;
  std::vector<Table> tables_;
};

}  // namespace

Result<CostedPlan> MinCostSafePlanner::Plan(const plan::QueryPlan& plan) const {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cat_));

  CISQP_TRACE_SPAN(span, "planner.cost_plan");
  span.AddAttribute("nodes", plan.node_count());
  CISQP_METRIC_INC("planner.cost_runs");
  Dp dp(cat_, auths_, model_, plan);
  const Table& root = dp.Solve(*plan.root());
  const Entry* best = nullptr;
  catalog::ServerId best_server = catalog::kInvalidId;
  for (const auto& [server, entry] : root) {
    if (best == nullptr || entry.cost < best->cost) {
      best = &entry;
      best_server = server;
    }
  }
  if (best == nullptr) {
    return InfeasibleError("no safe executor assignment exists (min-cost DP)");
  }
  CostedPlan out;
  out.assignment = Assignment(plan.node_count());
  dp.Rebuild(*plan.root(), best_server, out.assignment);
  out.total_bytes = best->cost;
  span.AddAttribute("total_bytes", best->cost);
  return out;
}

Result<double> MinCostSafePlanner::EstimateAssignmentBytes(
    const plan::QueryPlan& plan, const Assignment& assignment) const {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  double total = 0.0;
  Status failure = Status::Ok();
  plan.ForEachPreOrder([&](const plan::PlanNode& node) {
    if (node.op != plan::PlanOp::kJoin || !failure.ok()) return;
    const Executor& ex = assignment.Of(node.id);
    const catalog::ServerId lm = assignment.Of(node.left->id).master;
    const catalog::ServerId rm = assignment.Of(node.right->id).master;
    IdSet left_join_attrs;
    IdSet right_join_attrs;
    for (const algebra::EquiJoinAtom& atom : node.join_atoms) {
      left_join_attrs.Insert(atom.left);
      right_join_attrs.Insert(atom.right);
    }
    switch (ex.mode) {
      case ExecutionMode::kLocal:
        failure = InvalidArgumentError("join node with mode 'local'");
        return;
      case ExecutionMode::kRegularJoin:
        if (ex.origin == FromChild::kThird) {
          total += model_.RegularJoinBytes(*node.left, lm == ex.master);
          total += model_.RegularJoinBytes(*node.right, rm == ex.master);
        } else if (ex.origin == FromChild::kLeft) {
          total += model_.RegularJoinBytes(*node.right, rm == ex.master);
        } else {
          total += model_.RegularJoinBytes(*node.left, lm == ex.master);
        }
        return;
      case ExecutionMode::kSemiJoin:
        if (ex.origin == FromChild::kLeft) {
          total += model_.SemiJoinBytes(node, *node.left, *node.right,
                                        left_join_attrs);
        } else {
          total += model_.SemiJoinBytes(node, *node.right, *node.left,
                                        right_join_attrs);
        }
        return;
    }
  });
  CISQP_RETURN_IF_ERROR(failure);
  return total;
}

}  // namespace cisqp::planner
