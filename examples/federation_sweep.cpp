// Federation sweep: the library as an experimentation harness.
//
// Generates a synthetic federation, a policy at a chosen density, and a
// stream of random queries; for each feasible query it executes the paper
// heuristic's assignment and reports aggregate feasibility, execution
// correctness, and communication — comparing against the min-cost safe
// baseline. Run with a seed argument to explore:
//
//   ./build/examples/federation_sweep [seed] [density]
#include <cstdio>
#include <cstdlib>

#include "exec/executor.hpp"
#include "plan/builder.hpp"
#include "planner/cost_planner.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "workload/generator.hpp"

using namespace cisqp;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2008;
  const double density = argc > 2 ? std::strtod(argv[2], nullptr) : 0.5;
  Rng rng(seed);

  workload::FederationConfig fed_config;
  fed_config.servers = 5;
  fed_config.relations = 8;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  std::printf("--- generated federation (seed %llu) ---\n%s\n",
              static_cast<unsigned long long>(seed),
              fed.catalog.DebugString().c_str());

  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = density;
  authz_config.path_grants_per_server = static_cast<std::size_t>(density * 8.0);
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
  std::printf("policy: %zu rules at density %.2f\n\n", auths.size(), density);

  exec::Cluster cluster(fed.catalog);
  workload::DataConfig data_config;
  data_config.min_rows = 100;
  data_config.max_rows = 400;
  if (const Status s = workload::PopulateCluster(cluster, fed, data_config, rng);
      !s.ok()) {
    std::printf("populate failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const plan::StatsCatalog stats = workload::ComputeStats(cluster);

  planner::SafePlanner heuristic(fed.catalog, auths);
  planner::MinCostSafePlanner mincost(fed.catalog, auths, &stats);
  exec::DistributedExecutor executor(cluster, auths);

  int queries = 0;
  int feasible = 0;
  int executed_ok = 0;
  std::size_t heuristic_bytes = 0;
  std::size_t optimal_bytes = 0;
  for (int q = 0; q < 40; ++q) {
    workload::QueryConfig query_config;
    query_config.relations = 2 + rng.UniformIndex(3);
    auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
    if (!spec.ok()) continue;
    auto built = plan::PlanBuilder(fed.catalog, &stats).Build(*spec);
    if (!built.ok()) continue;
    ++queries;

    const auto report = heuristic.Analyze(*built);
    if (!report.ok() || !report->feasible) continue;
    ++feasible;

    const auto run = executor.Execute(*built, report->plan->assignment);
    if (!run.ok()) {
      std::printf("UNEXPECTED execution failure: %s\n",
                  run.status().ToString().c_str());
      continue;
    }
    const auto reference = exec::ExecuteCentralized(cluster, *built);
    if (reference.ok() &&
        storage::Table::SameRowMultiset(run->table, *reference)) {
      ++executed_ok;
    }
    heuristic_bytes += run->network.total_bytes();

    if (const auto costed = mincost.Plan(*built); costed.ok()) {
      const auto optimal_run = executor.Execute(*built, costed->assignment);
      if (optimal_run.ok()) optimal_bytes += optimal_run->network.total_bytes();
    }
  }

  std::printf("--- sweep summary ---\n");
  std::printf("queries generated:        %d\n", queries);
  std::printf("feasible (safe plan):     %d\n", feasible);
  std::printf("executed == centralized:  %d\n", executed_ok);
  std::printf("bytes, paper heuristic:   %zu\n", heuristic_bytes);
  std::printf("bytes, min-cost safe:     %zu\n", optimal_bytes);
  if (optimal_bytes > 0) {
    std::printf("heuristic overhead:       %.3fx\n",
                static_cast<double>(heuristic_bytes) /
                    static_cast<double>(optimal_bytes));
  }
  return 0;
}
