// Scenario: one self-contained differential-testing input — a federation
// (schema + authorization policy), a query, and the data every relation
// holds. Scenarios are the unit the fuzzing harness generates, checks,
// shrinks, and replays.
//
// Three representations round-trip:
//  * the in-memory `Scenario` (catalog + policy + query spec + rows), the
//    form the harness and the oracles consume;
//  * the repro text — the federation DSL plus `seed`/`row`/`query`
//    directives — a single file `cisqp-fuzz --replay` and the corpus tests
//    re-execute (DESIGN.md §11.3);
//  * the `ScenarioEdit`, a set of entity removals the minimizer applies to
//    produce smaller candidate scenarios (names are stable across a
//    rebuild, ids are not — edits are resolved by id against the *source*
//    scenario and the rebuilt one renumbers from scratch).
//
// Generation extends the `src/workload` generators: one seed draws the
// federation, the policy, the query, and the data, so every scenario is
// reproducible from (config, seed) alone.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "authz/authorization.hpp"
#include "catalog/catalog.hpp"
#include "common/rng.hpp"
#include "exec/cluster.hpp"
#include "plan/query_spec.hpp"
#include "plan/stats.hpp"
#include "workload/generator.hpp"

namespace cisqp::testcheck {

/// Knobs of the seeded scenario generator. The defaults are the fuzzing
/// sweet spot: small enough that the brute-force oracles finish in
/// milliseconds, varied enough that feasible, infeasible, and
/// chase-dependent scenarios all occur.
struct ScenarioConfig {
  workload::FederationConfig federation{
      .servers = 3,
      .relations = 4,
      .min_attributes = 2,
      .max_attributes = 3,
      .extra_edge_prob = 0.3,
      .min_domain = 3,
      .max_domain = 12,
  };
  workload::QueryConfig query{
      .relations = 3,
      .max_select = 3,
      .extra_atom_prob = 0.25,
      .where_prob = 0.4,
      .max_where = 2,
  };
  workload::AuthzConfig authz{
      .grant_own_relations = true,
      .base_grant_prob = 0.35,
      .attribute_keep_prob = 0.8,
      .path_grants_per_server = 2,
      .max_path_atoms = 2,
  };
  workload::DataConfig data{.min_rows = 3, .max_rows = 10};
};

/// One differential-testing input, fully materialized.
struct Scenario {
  std::uint64_t seed = 0;
  catalog::Catalog catalog;
  authz::AuthorizationSet auths;
  plan::QuerySpec query;
  /// Rows of every base relation, indexed by relation id.
  std::vector<std::vector<storage::Row>> rows;

  /// A cluster loaded with `rows` (validated against the catalog schema).
  Result<exec::Cluster> MakeCluster() const;

  /// Exact per-relation statistics over `rows`.
  plan::StatsCatalog ComputeStats() const;

  /// Renders the self-contained repro text (DSL + seed/row/query lines).
  std::string ToReproText() const;
};

/// Draws one scenario from `seed`. Fails (kInvalidArgument) when the drawn
/// schema cannot support a connected query of the configured size — callers
/// skip such seeds.
Result<Scenario> GenerateScenario(const ScenarioConfig& config,
                                  std::uint64_t seed);

/// Parses a repro file produced by `Scenario::ToReproText` (or written by
/// hand): federation DSL statements plus the line-oriented directives
///
///   seed <N>
///   row <Relation> (v1, v2, ...);
///   query <SQL>
///
/// Values are int64 literals, double literals (with '.' or exponent),
/// double-quoted strings, or `null`.
Result<Scenario> ParseReproText(std::string_view text);

/// A batch of entity removals, resolved against the scenario it is applied
/// to. Every container is optional; an empty edit rebuilds the scenario
/// unchanged (useful as a canonicalization pass).
struct ScenarioEdit {
  IdSet drop_relations;                     ///< by relation id
  IdSet drop_attributes;                    ///< by attribute id
  std::vector<std::size_t> drop_grants;     ///< indices into auths.All()
  std::vector<std::size_t> drop_join_steps; ///< indices into query.joins
  std::vector<std::size_t> drop_select;     ///< indices into select_list
  std::vector<std::size_t> drop_where;      ///< indices into where conjuncts
  /// Keep only every second row of every relation.
  bool halve_rows = false;

  bool empty() const noexcept {
    return drop_relations.empty() && drop_attributes.empty() &&
           drop_grants.empty() && drop_join_steps.empty() &&
           drop_select.empty() && drop_where.empty() && !halve_rows;
  }
};

/// Rebuilds `s` without the dropped entities: the catalog is reconstructed
/// from the surviving servers/relations/attributes (ids renumber, names are
/// preserved), grants lose dropped attributes (a grant whose path touches a
/// dropped attribute, or that ends up empty or invalid, is dropped whole),
/// the query loses dropped steps/columns/conjuncts, rows lose dropped
/// columns. Fails when the result is not a well-formed scenario (e.g. the
/// query still references a dropped relation) — the minimizer treats that
/// as "candidate rejected".
Result<Scenario> ApplyEdit(const Scenario& s, const ScenarioEdit& edit);

/// Deep copy (Scenario is move-only because Catalog is): an empty-edit
/// rebuild, which reconstructs an identical scenario.
Result<Scenario> CloneScenario(const Scenario& s);

}  // namespace cisqp::testcheck
