#include "authz/audit.hpp"

namespace cisqp::authz {

bool AuditedCanView(const catalog::Catalog& cat, const Policy& policy,
                    const Profile& profile, catalog::ServerId server,
                    obs::AuditSite site, int node_id, std::string_view detail) {
  obs::AuthzAuditLog& log = obs::AuthzAuditLog::Get();
  if (!log.enabled()) return policy.CanView(profile, server);

  const CanViewExplanation explanation =
      policy.ExplainCanView(profile, server);
  obs::AuditEntry entry;
  entry.allowed = explanation.allowed;
  entry.site = site;
  entry.node_id = node_id;
  entry.server = cat.server(server).name;
  entry.profile = profile.ToString(cat);
  entry.detail = std::string(detail);
  if (explanation.allowed) {
    if (explanation.matched_attributes) {
      entry.matched = "[" +
                      AttributeSetToString(cat, *explanation.matched_attributes) +
                      ", " + profile.join.ToString(cat) + "] -> " +
                      cat.server(server).name;
    }
  } else {
    entry.reason = explanation.DescribeDenial(cat);
    if (explanation.reason == DenyReason::kDenialFired &&
        explanation.matched_attributes) {
      entry.matched =
          AttributeSetToString(cat, *explanation.matched_attributes);
    }
  }
  log.Record(std::move(entry));
  return explanation.allowed;
}

}  // namespace cisqp::authz
