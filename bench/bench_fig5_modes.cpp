// E3 — paper Fig. 4/Fig. 5: regenerates the per-mode view-profile table for
// the paper's joins and measures profile composition + mode-view derivation.
#include "bench_util.hpp"

#include "planner/mode_views.hpp"

namespace cisqp::bench {
namespace {

void PrintModeViews() {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const plan::QueryPlan plan = PaperPlan(cat);
  const std::vector<authz::Profile> profiles =
      planner::ComputeNodeProfiles(cat, plan);

  PrintHeader("E3 / paper Figs. 4-5",
              "profile composition per node and the six per-mode view "
              "obligations of each join of the Fig. 2 plan");

  std::printf("node profiles (Fig. 4 composition):\n");
  plan.ForEachPreOrder([&](const plan::PlanNode& n) {
    std::printf("  n%d %-8s %s\n", n.id,
                std::string(plan::PlanOpName(n.op)).c_str(),
                profiles[static_cast<std::size_t>(n.id)].ToString(cat).c_str());
  });

  std::printf("\nper-join mode views (Fig. 5):\n");
  Artifact artifact("fig5_modes", "E3 / paper Figs. 4-5",
                    "six per-mode view obligations of each join");
  plan.ForEachPreOrder([&](const plan::PlanNode& n) {
    if (n.op != plan::PlanOp::kJoin) return;
    const planner::JoinModeViews v = planner::ComputeJoinModeViews(
        profiles[static_cast<std::size_t>(n.left->id)],
        profiles[static_cast<std::size_t>(n.right->id)], n.join_atoms);
    std::printf("  n%d:\n", n.id);
    const auto emit = [&](const char* mode, const char* role,
                          const authz::Profile& view) {
      std::printf("    %-9s %-6s sees  %s\n", mode, role,
                  view.ToString(cat).c_str());
      artifact.Row()
          .Value("node", n.id)
          .Value("mode", mode)
          .Value("role", role)
          .Value("view", view.ToString(cat));
    };
    emit("[Sl,NULL]", "master", v.left_full_view);
    emit("[Sr,NULL]", "master", v.right_full_view);
    emit("[Sl,Sr]", "slave", v.right_slave_view);
    emit("[Sl,Sr]", "master", v.left_master_view);
    emit("[Sr,Sl]", "slave", v.left_slave_view);
    emit("[Sr,Sl]", "master", v.right_master_view);
  });
  artifact.Write();
  std::printf("\n");
}

void BM_ComputeNodeProfiles(benchmark::State& state) {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const plan::QueryPlan plan = PaperPlan(cat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner::ComputeNodeProfiles(cat, plan));
  }
}
BENCHMARK(BM_ComputeNodeProfiles);

void BM_ComputeJoinModeViews(benchmark::State& state) {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const plan::QueryPlan plan = PaperPlan(cat);
  const std::vector<authz::Profile> profiles =
      planner::ComputeNodeProfiles(cat, plan);
  const plan::PlanNode* join = plan.node(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner::ComputeJoinModeViews(
        profiles[static_cast<std::size_t>(join->left->id)],
        profiles[static_cast<std::size_t>(join->right->id)], join->join_atoms));
  }
}
BENCHMARK(BM_ComputeJoinModeViews);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintModeViews();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
