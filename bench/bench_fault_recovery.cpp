// E14 — fault-injected execution: the recovery layer (retry with backoff,
// authorization-aware failover) returns byte-identical results under seeded
// fault schedules, or fails with a typed unavailability — never by widening
// a release. Regenerates two series:
//
//   (a) transient link drops on the paper's query: recovery rate, retries,
//       and virtual backoff time as the per-attempt drop probability grows;
//   (b) permanent proxy death in a two-proxy federation: the failover rate,
//       the surviving-proxy re-route, and the bytes wasted on abandoned
//       rounds.
//
// Then times fault-free execution with and without the fault-model hook and
// a full failover recovery.
#include "bench_util.hpp"

#include "exec/executor.hpp"
#include "exec/fault_model.hpp"
#include "storage/table.hpp"

namespace cisqp::bench {
namespace {

struct MedicalFixture {
  catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster{cat};
  plan::QueryPlan plan;
  planner::Assignment assignment;

  explicit MedicalFixture(std::size_t citizens = 2000) {
    Rng rng(5);
    workload::MedicalScenario::DataConfig data;
    data.citizens = citizens;
    UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
                 "populate");
    plan = PaperPlan(cat);
    planner::SafePlanner planner(cat, auths);
    assignment = Unwrap(planner.Plan(plan), "plan").assignment;
  }
};

/// Two data owners that may not see each other's relation plus two
/// interchangeable proxies (C, D) that may view both sides and their join —
/// the smallest federation where authorization-aware failover has somewhere
/// to go when the chosen proxy dies.
struct ProxyFixture {
  catalog::Catalog cat;
  authz::AuthorizationSet auths;
  catalog::ServerId a, b, c, d;
  exec::Cluster cluster;
  plan::QueryPlan plan;
  planner::Assignment assignment;
  planner::SafePlannerOptions planner_options;

  ProxyFixture() : cluster((Build(), cat)) {
    for (std::int64_t i = 0; i < 512; ++i) {
      UnwrapStatus(cluster.InsertRow(cat.FindRelation("R").value(),
                                     {storage::Value(i), storage::Value(i * 10)}),
                   "insert R");
      if (i % 3 == 0) {
        UnwrapStatus(
            cluster.InsertRow(cat.FindRelation("S").value(),
                              {storage::Value(i), storage::Value(i * 7)}),
            "insert S");
      }
    }
    plan = Unwrap(plan::PlanBuilder(cat).Build(Unwrap(
                      sql::ParseAndBind(cat, "SELECT RV, SW FROM R JOIN S ON RK = SK"),
                      "parse")),
                  "build");
    planner_options.allow_third_party = true;
    planner::SafePlanner planner(cat, auths, planner_options);
    assignment = Unwrap(planner.Plan(plan), "proxy plan").assignment;
  }

 private:
  void Build() {
    a = Unwrap(cat.AddServer("A"), "server");
    b = Unwrap(cat.AddServer("B"), "server");
    c = Unwrap(cat.AddServer("C"), "server");
    d = Unwrap(cat.AddServer("D"), "server");
    Unwrap(cat.AddRelation("R", a,
                           {{"RK", catalog::ValueType::kInt64},
                            {"RV", catalog::ValueType::kInt64}},
                           {"RK"}),
           "relation R");
    Unwrap(cat.AddRelation("S", b,
                           {{"SK", catalog::ValueType::kInt64},
                            {"SW", catalog::ValueType::kInt64}},
                           {"SK"}),
           "relation S");
    UnwrapStatus(cat.AddJoinEdge("RK", "SK"), "edge");
    for (const char* proxy : {"C", "D"}) {
      UnwrapStatus(auths.Add(cat, proxy, {"RK", "RV"}, {}), "auth");
      UnwrapStatus(auths.Add(cat, proxy, {"SK", "SW"}, {}), "auth");
      UnwrapStatus(
          auths.Add(cat, proxy, {"RK", "RV", "SK", "SW"}, {{"RK", "SK"}}),
          "auth");
    }
  }
};

void PrintTransientSeries(Artifact& artifact) {
  MedicalFixture fix;
  exec::DistributedExecutor executor(fix.cluster, fix.auths);
  const exec::ExecutionResult baseline =
      Unwrap(executor.Execute(fix.plan, fix.assignment), "baseline");

  std::printf("-- (a) transient drops, paper query, 30 seeds per rate --\n");
  std::printf("%-8s %-10s %-10s %-12s %-14s %-10s\n", "drop", "recovered",
              "failed", "avg_retries", "avg_wait_ms", "identical");
  for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    std::size_t recovered = 0;
    std::size_t failed = 0;
    std::size_t retries = 0;
    std::int64_t wait_us = 0;
    bool all_identical = true;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      exec::FaultModelOptions fopts;
      fopts.seed = seed;
      fopts.drop_probability = drop;
      exec::FaultModel faults(fopts);
      exec::ExecutionOptions options;
      options.faults = &faults;
      const auto result = executor.Execute(fix.plan, fix.assignment, options);
      if (result.ok()) {
        ++recovered;
        retries += result->recovery.retries;
        wait_us += result->recovery.backoff_wait_us;
        all_identical = all_identical && storage::Table::SameRowMultiset(
                                             result->table, baseline.table);
      } else {
        ++failed;
        all_identical =
            all_identical && result.status().code() == StatusCode::kUnavailable;
      }
    }
    const double avg_retries =
        recovered ? static_cast<double>(retries) / static_cast<double>(recovered) : 0.0;
    const double avg_wait_ms =
        recovered ? static_cast<double>(wait_us) / static_cast<double>(recovered) / 1000.0
                  : 0.0;
    std::printf("%-8.2f %-10zu %-10zu %-12.2f %-14.2f %-10s\n", drop,
                recovered, failed, avg_retries, avg_wait_ms,
                all_identical ? "yes" : "NO");
    artifact.Row()
        .Value("series", "transient")
        .Value("drop", drop)
        .Value("recovered", recovered)
        .Value("failed", failed)
        .Value("avg_retries", avg_retries)
        .Value("avg_wait_ms", avg_wait_ms)
        .Value("identical_or_typed", all_identical);
  }
  std::printf("\n");
}

void PrintFailoverSeries(Artifact& artifact) {
  ProxyFixture fix;
  exec::DistributedExecutor executor(fix.cluster, fix.auths);
  const exec::ExecutionResult baseline =
      Unwrap(executor.Execute(fix.plan, fix.assignment), "proxy baseline");

  std::printf("-- (b) permanent proxy death, two-proxy federation, 30 seeds --\n");
  std::printf("%-22s %-10s %-10s %-10s %-16s\n", "scenario", "recovered",
              "failovers", "rerouted", "wasted_bytes_avg");
  const struct {
    const char* name;
    std::int64_t kill_at_us;
    double drop;
  } scenarios[] = {
      {"kill_proxy_at_t0", 0, 0.0},
      {"kill_proxy_mid_run", 1, 0.3},
  };
  for (const auto& scenario : scenarios) {
    std::size_t recovered = 0;
    std::size_t failovers = 0;
    std::size_t rerouted = 0;
    std::size_t wasted_bytes = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      exec::FaultModelOptions fopts;
      fopts.seed = seed;
      fopts.drop_probability = scenario.drop;
      fopts.outages.push_back(
          exec::OutageWindow{fix.c, scenario.kill_at_us, exec::kNeverRecovers});
      exec::FaultModel faults(fopts);
      exec::ExecutionOptions options;
      options.faults = &faults;
      options.failover_planner = fix.planner_options;
      const auto result = executor.Execute(fix.plan, fix.assignment, options);
      if (!result.ok()) continue;
      ++recovered;
      failovers += result->recovery.failovers;
      if (result->result_server == fix.d) ++rerouted;
      if (result->network.total_bytes() > baseline.network.total_bytes()) {
        wasted_bytes +=
            result->network.total_bytes() - baseline.network.total_bytes();
      }
    }
    const double wasted_avg =
        recovered ? static_cast<double>(wasted_bytes) / static_cast<double>(recovered)
                  : 0.0;
    std::printf("%-22s %-10zu %-10zu %-10zu %-16.1f\n", scenario.name,
                recovered, failovers, rerouted, wasted_avg);
    artifact.Row()
        .Value("series", "failover")
        .Value("scenario", scenario.name)
        .Value("recovered", recovered)
        .Value("failovers", failovers)
        .Value("rerouted_to_survivor", rerouted)
        .Value("wasted_bytes_avg", wasted_avg);
  }
  std::printf("\n");
}

void PrintSeries() {
  PrintHeader("E14 / fault-injected execution",
              "recovery (retry + authorization-aware failover) returns results "
              "byte-identical to the fault-free run or fails typed; no fault "
              "schedule ever widens a release");
  Artifact artifact("fault_recovery", "E14 / fault-injected execution",
                    "recovery rate, retries, backoff, failover re-routes, and "
                    "wasted bytes under seeded fault schedules");
  PrintTransientSeries(artifact);
  PrintFailoverSeries(artifact);
  artifact.Write();
  std::printf("\n");
}

void BM_ExecutionNoFaultModel(benchmark::State& state) {
  MedicalFixture fix;
  exec::DistributedExecutor executor(fix.cluster, fix.auths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(fix.plan, fix.assignment));
  }
}
BENCHMARK(BM_ExecutionNoFaultModel);

void BM_ExecutionFaultModelAttached(benchmark::State& state) {
  // drop=0: measures the pure interception cost of consulting the model.
  MedicalFixture fix;
  exec::DistributedExecutor executor(fix.cluster, fix.auths);
  exec::FaultModel faults(exec::FaultModelOptions{});
  exec::ExecutionOptions options;
  options.faults = &faults;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(fix.plan, fix.assignment, options));
  }
}
BENCHMARK(BM_ExecutionFaultModelAttached);

void BM_ExecutionWithRetries(benchmark::State& state) {
  MedicalFixture fix;
  exec::DistributedExecutor executor(fix.cluster, fix.auths);
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    exec::FaultModelOptions fopts;
    fopts.seed = seed++;
    fopts.drop_probability = drop;
    exec::FaultModel faults(fopts);
    exec::ExecutionOptions options;
    options.faults = &faults;
    benchmark::DoNotOptimize(executor.Execute(fix.plan, fix.assignment, options));
  }
}
BENCHMARK(BM_ExecutionWithRetries)->Arg(10)->Arg(40);

void BM_FailoverRecovery(benchmark::State& state) {
  // Full recovery round trip: dead proxy detected, replan, re-execute at
  // the survivor.
  ProxyFixture fix;
  exec::DistributedExecutor executor(fix.cluster, fix.auths);
  for (auto _ : state) {
    exec::FaultModelOptions fopts;
    fopts.outages.push_back(exec::OutageWindow{fix.c, 0, exec::kNeverRecovers});
    exec::FaultModel faults(fopts);
    exec::ExecutionOptions options;
    options.faults = &faults;
    options.failover_planner = fix.planner_options;
    auto result = executor.Execute(fix.plan, fix.assignment, options);
    if (!result.ok() || result->recovery.failovers != 1) {
      state.SkipWithError("failover recovery did not engage");
      break;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FailoverRecovery);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintSeries();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
