// Tests for the supply-chain scenario: the DSL parses, the policy induces
// the designed feasibility pattern, and feasible queries execute correctly.
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "plan/builder.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"
#include "workload/supply_chain.hpp"

namespace cisqp::workload {
namespace {

class SupplyChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fed = SupplyChainScenario::Build();
    ASSERT_OK(fed.status());
    fed_ = std::make_unique<dsl::ParsedFederation>(std::move(*fed));
  }

  planner::PlanningReport Analyze(std::string_view sql_text) {
    auto spec = sql::ParseAndBind(fed_->catalog, sql_text);
    CISQP_CHECK_MSG(spec.ok(), spec.status().ToString());
    auto plan = plan::PlanBuilder(fed_->catalog).Build(*spec);
    CISQP_CHECK_MSG(plan.ok(), plan.status().ToString());
    planner::SafePlanner planner(fed_->catalog, fed_->authorizations);
    auto report = planner.Analyze(*plan);
    CISQP_CHECK_MSG(report.ok(), report.status().ToString());
    return std::move(*report);
  }

  std::unique_ptr<dsl::ParsedFederation> fed_;
};

TEST_F(SupplyChainTest, ScenarioShape) {
  EXPECT_EQ(fed_->catalog.server_count(), 4u);
  EXPECT_EQ(fed_->catalog.relation_count(), 4u);
  EXPECT_EQ(fed_->catalog.join_edges().size(), 4u);
  EXPECT_GT(fed_->authorizations.size(), 10u);
  EXPECT_EQ(fed_->denials.size(), 0u);
}

TEST_F(SupplyChainTest, FeasibilityPatternMatchesTheDesign) {
  // Names mirror WorkloadQueries(); the pattern documents the policy intent.
  const std::map<std::string, bool> expected = {
      {"parts_per_product", true},
      {"costs_exposed", false},       // unit costs never leave S_SUP
      {"shipping_schedule", true},
      {"regional_lines", true},
      {"supplier_to_region", false},  // supplier↔region association denied
      {"part_shipping_bulk", true},   // feasible thanks to projection pushdown
  };
  for (const auto& q : SupplyChainScenario::WorkloadQueries()) {
    const auto it = expected.find(q.name);
    ASSERT_NE(it, expected.end()) << "untracked workload query " << q.name;
    EXPECT_EQ(Analyze(q.sql).feasible, it->second) << q.name;
  }
}

TEST_F(SupplyChainTest, UnitCostNeverAppearsInAnyRelease) {
  // Defense-in-depth check on the whole feasible workload: no release of any
  // safe assignment may expose UnitCost to a server other than S_SUP.
  const auto unit_cost = fed_->catalog.FindAttribute("UnitCost").value();
  const auto s_sup = fed_->catalog.FindServer("S_SUP").value();
  for (const auto& q : SupplyChainScenario::WorkloadQueries()) {
    auto spec = sql::ParseAndBind(fed_->catalog, q.sql);
    ASSERT_OK(spec.status());
    auto plan = plan::PlanBuilder(fed_->catalog).Build(*spec);
    ASSERT_OK(plan.status());
    planner::SafePlanner planner(fed_->catalog, fed_->authorizations);
    ASSERT_OK_AND_ASSIGN(planner::PlanningReport report, planner.Analyze(*plan));
    if (!report.feasible) continue;
    ASSERT_OK_AND_ASSIGN(
        std::vector<planner::Release> releases,
        planner::EnumerateReleases(fed_->catalog, *plan,
                                   report.plan->assignment));
    for (const planner::Release& r : releases) {
      if (r.to == s_sup) continue;
      EXPECT_FALSE(r.profile.VisibleAttributes().Contains(unit_cost))
          << q.name << ": " << r.ToString(fed_->catalog);
    }
  }
}

TEST_F(SupplyChainTest, FeasibleWorkloadExecutesCorrectly) {
  exec::Cluster cluster(fed_->catalog);
  Rng rng(99);
  ASSERT_OK(SupplyChainScenario::PopulateCluster(cluster, *fed_, {}, rng));
  planner::SafePlanner planner(fed_->catalog, fed_->authorizations);
  exec::DistributedExecutor executor(cluster, fed_->authorizations);
  int executed = 0;
  for (const auto& q : SupplyChainScenario::WorkloadQueries()) {
    auto spec = sql::ParseAndBind(fed_->catalog, q.sql);
    ASSERT_OK(spec.status());
    auto plan = plan::PlanBuilder(fed_->catalog).Build(*spec);
    ASSERT_OK(plan.status());
    ASSERT_OK_AND_ASSIGN(planner::PlanningReport report, planner.Analyze(*plan));
    if (!report.feasible) continue;
    ASSERT_OK_AND_ASSIGN(exec::ExecutionResult result,
                         executor.Execute(*plan, report.plan->assignment));
    ASSERT_OK_AND_ASSIGN(storage::Table reference,
                         exec::ExecuteCentralized(cluster, *plan));
    EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, reference))
        << q.name;
    EXPECT_GT(result.table.row_count(), 0u) << q.name;
    ++executed;
  }
  EXPECT_EQ(executed, 4);
}

TEST_F(SupplyChainTest, DataGeneratorIsConsistent) {
  exec::Cluster cluster(fed_->catalog);
  Rng rng(1);
  SupplyChainScenario::DataConfig config;
  config.parts = 100;
  config.products = 10;
  ASSERT_OK(SupplyChainScenario::PopulateCluster(cluster, *fed_, config, rng));
  EXPECT_EQ(cluster.TableOf(fed_->catalog.FindRelation("Suppliers").value()).row_count(),
            100u);
  EXPECT_EQ(cluster.TableOf(fed_->catalog.FindRelation("Assembly").value()).row_count(),
            100u);
  const auto& shipments =
      cluster.TableOf(fed_->catalog.FindRelation("Shipments").value());
  EXPECT_GT(shipments.row_count(), 30u);
  EXPECT_LT(shipments.row_count(), 100u);
}

}  // namespace
}  // namespace cisqp::workload
