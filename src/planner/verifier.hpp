// Independent safety verification of an executor assignment.
//
// Enumerates every data release the Fig. 5 flows of an assignment entail —
// whole-relation shipments for regular joins, the two shipments of each
// semi-join, the final delivery to a requestor — and checks each against the
// authorization set (Def. 3.3). This is deliberately a separate
// implementation from the planner's candidate logic: tests use it to confirm
// that whatever SafePlanner emits is safe, and the execution engine uses the
// same enumeration for runtime enforcement.
//
// To mirror Fig. 6 exactly, a regular join whose operands end up colocated
// still records the master's view of the other operand as a (non-physical)
// release: the paper's CanView check does not waive authorization for
// colocated data.
#pragma once

#include <string>
#include <vector>

#include "authz/authorization.hpp"
#include "planner/assignment.hpp"
#include "planner/mode_views.hpp"

namespace cisqp::planner {

/// One data release implied by the assignment.
struct Release {
  int node_id = -1;
  catalog::ServerId from = catalog::kInvalidId;
  catalog::ServerId to = catalog::kInvalidId;
  authz::Profile profile;       ///< what `to` gets to see
  bool physical = true;         ///< false when from == to (no wire transfer)
  std::string description;      ///< e.g. "semi-join step 2: pi_Jl(left)"

  std::string ToString(const catalog::Catalog& cat) const;
};

struct VerifyOptions {
  /// When set, the root result is additionally released to this server.
  std::optional<catalog::ServerId> requestor;
};

/// All releases of `assignment` over `plan`, in execution order (post-order
/// over the tree, flow order within a join). Fails on structurally invalid
/// assignments (leaf not at its home server, unary node moving data, join
/// master not matching its origin child, semi-join without slave).
Result<std::vector<Release>> EnumerateReleases(const catalog::Catalog& cat,
                                               const plan::QueryPlan& plan,
                                               const Assignment& assignment,
                                               const VerifyOptions& options = {});

/// Releases of `releases` not covered by any authorization.
std::vector<Release> FindViolations(const authz::Policy& auths,
                                    const std::vector<Release>& releases);

/// Convenience: OK iff every release the assignment entails is authorized;
/// kUnauthorized naming the first violation otherwise.
Status VerifyAssignment(const catalog::Catalog& cat,
                        const authz::Policy& auths,
                        const plan::QueryPlan& plan,
                        const Assignment& assignment,
                        const VerifyOptions& options = {});

}  // namespace cisqp::planner
