// Tests for the independent release enumerator / safety verifier.
#include <gtest/gtest.h>

#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "test_util.hpp"

namespace cisqp::planner {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Server;

class VerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = fix_.PaperPlan();
    SafePlanner planner(fix_.cat, fix_.auths);
    auto sp = planner.Plan(plan_);
    ASSERT_OK(sp.status());
    assignment_ = sp->assignment;
  }

  MedicalFixture fix_;
  plan::QueryPlan plan_;
  Assignment assignment_;
};

TEST_F(VerifierTest, PaperPlanReleases) {
  ASSERT_OK_AND_ASSIGN(std::vector<Release> releases,
                       EnumerateReleases(fix_.cat, plan_, assignment_));
  // n2 regular join: Insurance → S_N (1 release);
  // n1 semi-join: S_H → S_N (step 2) and S_N → S_H (step 4).
  ASSERT_EQ(releases.size(), 3u);
  EXPECT_EQ(releases[0].node_id, 2);
  EXPECT_EQ(releases[0].from, Server(fix_.cat, "S_I"));
  EXPECT_EQ(releases[0].to, Server(fix_.cat, "S_N"));
  EXPECT_TRUE(releases[0].physical);
  EXPECT_EQ(releases[1].node_id, 1);
  EXPECT_EQ(releases[1].from, Server(fix_.cat, "S_H"));
  EXPECT_EQ(releases[1].to, Server(fix_.cat, "S_N"));
  EXPECT_EQ(releases[2].node_id, 1);
  EXPECT_EQ(releases[2].from, Server(fix_.cat, "S_N"));
  EXPECT_EQ(releases[2].to, Server(fix_.cat, "S_H"));

  // Every release of the safe assignment is authorized.
  EXPECT_TRUE(FindViolations(fix_.auths, releases).empty());
  EXPECT_OK(VerifyAssignment(fix_.cat, fix_.auths, plan_, assignment_));
}

TEST_F(VerifierTest, ReleaseProfilesMatchFig5) {
  ASSERT_OK_AND_ASSIGN(std::vector<Release> releases,
                       EnumerateReleases(fix_.cat, plan_, assignment_));
  // Step 2 of the n1 semi-join ships π_{Patient}(Hospital-projection):
  // profile [{Patient}, ∅, ∅] (S_H is the master from the right child, so
  // the shipped column is Jr = Patient).
  EXPECT_EQ(releases[1].profile.pi, cisqp::testing::Attrs(fix_.cat, {"Patient"}));
  EXPECT_TRUE(releases[1].profile.join.empty());
  // Step 4 ships the reduced left operand joined back: all of n2's
  // attributes plus Patient over the two-atom path.
  EXPECT_EQ(releases[2].profile.pi,
            cisqp::testing::Attrs(
                fix_.cat, {"Holder", "Plan", "Citizen", "HealthAid", "Patient"}));
  EXPECT_EQ(releases[2].profile.join,
            cisqp::testing::Path(fix_.cat,
                                 {{"Holder", "Citizen"}, {"Citizen", "Patient"}}));
}

TEST_F(VerifierTest, ViolationsDetectedUnderEmptyPolicy) {
  authz::AuthorizationSet empty;
  ASSERT_OK_AND_ASSIGN(std::vector<Release> releases,
                       EnumerateReleases(fix_.cat, plan_, assignment_));
  EXPECT_EQ(FindViolations(empty, releases).size(), releases.size());
  EXPECT_EQ(VerifyAssignment(fix_.cat, empty, plan_, assignment_).code(),
            StatusCode::kUnauthorized);
}

TEST_F(VerifierTest, RequestorReleaseAppended) {
  VerifyOptions options;
  options.requestor = Server(fix_.cat, "S_I");
  ASSERT_OK_AND_ASSIGN(std::vector<Release> releases,
                       EnumerateReleases(fix_.cat, plan_, assignment_, options));
  ASSERT_EQ(releases.size(), 4u);
  EXPECT_EQ(releases.back().to, Server(fix_.cat, "S_I"));
  EXPECT_EQ(releases.back().node_id, 0);
  // S_I may not view the result profile → violation.
  EXPECT_EQ(VerifyAssignment(fix_.cat, fix_.auths, plan_, assignment_, options).code(),
            StatusCode::kUnauthorized);
  // The root master as requestor adds no release.
  VerifyOptions options2;
  options2.requestor = Server(fix_.cat, "S_H");
  ASSERT_OK_AND_ASSIGN(std::vector<Release> releases2,
                       EnumerateReleases(fix_.cat, plan_, assignment_, options2));
  EXPECT_EQ(releases2.size(), 3u);
}

TEST_F(VerifierTest, RejectsStructurallyInvalidAssignments) {
  // Leaf moved off its home server.
  Assignment bad = assignment_;
  bad.Set(4, Executor{Server(fix_.cat, "S_H"), std::nullopt,
                      ExecutionMode::kLocal, FromChild::kSelf});
  EXPECT_EQ(EnumerateReleases(fix_.cat, plan_, bad).status().code(),
            StatusCode::kInvalidArgument);

  // Unary node at a different server than its child.
  Assignment bad2 = assignment_;
  bad2.Set(0, Executor{Server(fix_.cat, "S_I"), std::nullopt,
                       ExecutionMode::kLocal, FromChild::kLeft});
  EXPECT_EQ(EnumerateReleases(fix_.cat, plan_, bad2).status().code(),
            StatusCode::kInvalidArgument);

  // Join with mode local.
  Assignment bad3 = assignment_;
  bad3.Set(2, Executor{Server(fix_.cat, "S_N"), std::nullopt,
                       ExecutionMode::kLocal, FromChild::kRight});
  EXPECT_EQ(EnumerateReleases(fix_.cat, plan_, bad3).status().code(),
            StatusCode::kInvalidArgument);

  // Semi-join whose master does not match the origin child's server.
  Assignment bad4 = assignment_;
  bad4.Set(1, Executor{Server(fix_.cat, "S_I"), Server(fix_.cat, "S_N"),
                       ExecutionMode::kSemiJoin, FromChild::kRight});
  EXPECT_EQ(EnumerateReleases(fix_.cat, plan_, bad4).status().code(),
            StatusCode::kInvalidArgument);

  // Semi-join with master == slave.
  Assignment bad5 = assignment_;
  bad5.Set(1, Executor{Server(fix_.cat, "S_H"), Server(fix_.cat, "S_H"),
                       ExecutionMode::kSemiJoin, FromChild::kRight});
  EXPECT_EQ(EnumerateReleases(fix_.cat, plan_, bad5).status().code(),
            StatusCode::kInvalidArgument);

  // Wrong-sized assignment.
  EXPECT_EQ(EnumerateReleases(fix_.cat, plan_, Assignment(3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(VerifierTest, UnsafeRegularJoinFlaggedWithUnauthorizedProfile) {
  // Force n2 to run as a regular join at S_I: Nat_registry would ship to
  // S_I, which has no authorization for it.
  Assignment unsafe = assignment_;
  unsafe.Set(2, Executor{Server(fix_.cat, "S_I"), std::nullopt,
                         ExecutionMode::kRegularJoin, FromChild::kLeft});
  // n1 then consumes the left result at S_I; keep its executor consistent:
  // master from right child (S_H) with slave S_I.
  unsafe.Set(1, Executor{Server(fix_.cat, "S_H"), Server(fix_.cat, "S_I"),
                         ExecutionMode::kSemiJoin, FromChild::kRight});
  ASSERT_OK_AND_ASSIGN(std::vector<Release> releases,
                       EnumerateReleases(fix_.cat, plan_, unsafe));
  const std::vector<Release> violations = FindViolations(fix_.auths, releases);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().to, Server(fix_.cat, "S_I"));
  const std::string rendered = violations.front().ToString(fix_.cat);
  EXPECT_NE(rendered.find("S_I"), std::string::npos);
}

TEST_F(VerifierTest, ColocatedRegularJoinStillChecked) {
  // Two relations at one server joined there: no physical transfer, but the
  // Fig. 6 CanView obligation is still recorded as a non-physical release.
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  ASSERT_OK(cat.AddRelation("L", s0, {{"LK", catalog::ValueType::kInt64}}, {"LK"}).status());
  ASSERT_OK(cat.AddRelation("R", s0, {{"RK", catalog::ValueType::kInt64}}, {"RK"}).status());
  ASSERT_OK(cat.AddJoinEdge("LK", "RK"));
  auto join = plan::PlanNode::Join(
      plan::PlanNode::Relation(cat.FindRelation("L").value()),
      plan::PlanNode::Relation(cat.FindRelation("R").value()),
      {algebra::EquiJoinAtom{cat.FindAttribute("LK").value(),
                             cat.FindAttribute("RK").value()}});
  plan::QueryPlan plan(std::move(join));
  Assignment assignment(plan.node_count());
  assignment.Set(1, Executor{s0, std::nullopt, ExecutionMode::kLocal, FromChild::kSelf});
  assignment.Set(2, Executor{s0, std::nullopt, ExecutionMode::kLocal, FromChild::kSelf});
  assignment.Set(0, Executor{s0, std::nullopt, ExecutionMode::kRegularJoin,
                             FromChild::kLeft});
  ASSERT_OK_AND_ASSIGN(std::vector<Release> releases,
                       EnumerateReleases(cat, plan, assignment));
  ASSERT_EQ(releases.size(), 1u);
  EXPECT_FALSE(releases[0].physical);
  EXPECT_EQ(releases[0].from, releases[0].to);
}

}  // namespace
}  // namespace cisqp::planner
