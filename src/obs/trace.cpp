#include "obs/trace.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace cisqp::obs {

std::int64_t NowMicros() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

namespace {

/// Open spans of the current thread, innermost last. Thread-local so spans
/// recorded from pool workers nest within their own thread only.
thread_local std::vector<int> open_span_stack;

/// Small stable id of the current thread for the trace_event export.
int CurrentTid() noexcept {
  static std::atomic<int> next_tid{1};
  thread_local const int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Tracer& Tracer::Get() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable() {
  Clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  metadata_.process_names.clear();
  metadata_.thread_names.clear();
  open_span_stack.clear();
}

void Tracer::SetProcessName(int pid, std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  metadata_.process_names[pid] = std::move(name);
}

void Tracer::SetThreadName(int pid, int tid, std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  metadata_.thread_names[{pid, tid}] = std::move(name);
}

int Tracer::BeginSpan(std::string_view name) {
  SpanRecord record;
  record.name = std::string(name);
  record.start_us = NowMicros();
  record.tid = CurrentTid();
  const std::lock_guard<std::mutex> lock(mu_);
  // Depth comes from the parent record, not the local stack size: a span
  // opened on a worker thread under an explicit cross-thread parent (see
  // BeginSpanWithParent) must keep nesting causally, not restart at the
  // worker's own stack depth.
  record.parent = open_span_stack.empty() ? -1 : open_span_stack.back();
  if (record.parent >= 0) {
    const SpanRecord& parent = spans_[static_cast<std::size_t>(record.parent)];
    record.depth = parent.depth + 1;
    record.pid = parent.pid;
  }
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(record));
  open_span_stack.push_back(index);
  return index;
}

int Tracer::BeginSpanWithParent(std::string_view name, int parent_index) {
  SpanRecord record;
  record.name = std::string(name);
  record.start_us = NowMicros();
  record.tid = CurrentTid();
  const std::lock_guard<std::mutex> lock(mu_);
  if (parent_index >= 0 &&
      static_cast<std::size_t>(parent_index) < spans_.size()) {
    const SpanRecord& parent = spans_[static_cast<std::size_t>(parent_index)];
    record.parent = parent_index;
    record.depth = parent.depth + 1;
    record.pid = parent.pid;
  }
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(record));
  // Children opened on this thread nest under the explicit-parent span.
  open_span_stack.push_back(index);
  return index;
}

void Tracer::EndSpan(int index) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || static_cast<std::size_t>(index) >= spans_.size()) return;
  SpanRecord& record = spans_[static_cast<std::size_t>(index)];
  if (record.duration_us < 0) record.duration_us = NowMicros() - record.start_us;
  // RAII guarantees LIFO closure within a thread; stay robust anyway if
  // Enable() was called while spans were open by popping through any stale
  // entries of this thread's stack.
  while (!open_span_stack.empty()) {
    const int top = open_span_stack.back();
    open_span_stack.pop_back();
    if (top == index) break;
  }
}

void Tracer::AddAttribute(int index, std::string_view key, std::string value) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || static_cast<std::size_t>(index) >= spans_.size()) return;
  spans_[static_cast<std::size_t>(index)]
      .attributes.emplace_back(std::string(key), std::move(value));
}

void Tracer::SetSpanLane(int index, int pid) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || static_cast<std::size_t>(index) >= spans_.size()) return;
  spans_[static_cast<std::size_t>(index)].pid = pid;
}

std::string Tracer::ChromeTraceJson() const {
  return ToChromeTraceJson(spans_, &metadata_);
}

std::string Tracer::TextTree() const { return ToTextTree(spans_); }

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans,
                              const TraceMetadata* metadata) {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) oss << ",";
    first = false;
  };
  // Lane-naming metadata first; every event carries ts/dur so the exported
  // document satisfies ValidateChromeTraceJson's uniform schema.
  if (metadata != nullptr) {
    for (const auto& [pid, name] : metadata->process_names) {
      separator();
      oss << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"dur\":0,"
          << "\"pid\":" << pid << ",\"tid\":0,\"args\":{\"name\":\""
          << JsonEscape(name) << "\"}}";
    }
    for (const auto& [lane, name] : metadata->thread_names) {
      separator();
      oss << "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"dur\":0,"
          << "\"pid\":" << lane.first << ",\"tid\":" << lane.second
          << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
    }
  }
  for (const SpanRecord& span : spans) {
    separator();
    oss << "{\"name\":\"" << JsonEscape(span.name) << "\",\"ph\":\"X\","
        << "\"ts\":" << span.start_us << ",\"dur\":"
        << (span.duration_us < 0 ? 0 : span.duration_us)
        << ",\"pid\":" << span.pid << ",\"tid\":" << span.tid;
    if (!span.attributes.empty()) {
      oss << ",\"args\":{";
      bool first_attr = true;
      for (const auto& [key, value] : span.attributes) {
        if (!first_attr) oss << ",";
        first_attr = false;
        oss << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
      }
      oss << "}";
    }
    oss << "}";
  }
  // Flow arrows for cross-lane parentage: a span whose parent lives on a
  // different (pid, tid) would otherwise render with no visible link to the
  // query that caused it.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (span.parent < 0) continue;
    const SpanRecord& parent = spans[static_cast<std::size_t>(span.parent)];
    if (parent.tid == span.tid && parent.pid == span.pid) continue;
    separator();
    oss << "{\"name\":\"" << JsonEscape(parent.name) << "/"
        << JsonEscape(span.name) << "\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
        << i << ",\"ts\":" << span.start_us << ",\"dur\":0,\"pid\":"
        << parent.pid << ",\"tid\":" << parent.tid << "}";
    separator();
    oss << "{\"name\":\"" << JsonEscape(parent.name) << "/"
        << JsonEscape(span.name)
        << "\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << i
        << ",\"ts\":" << span.start_us << ",\"dur\":0,\"pid\":" << span.pid
        << ",\"tid\":" << span.tid << "}";
  }
  oss << "],\"displayTimeUnit\":\"ms\"}";
  return oss.str();
}

std::string ToTextTree(const std::vector<SpanRecord>& spans) {
  std::ostringstream oss;
  for (const SpanRecord& span : spans) {
    for (int i = 0; i < span.depth; ++i) oss << "  ";
    oss << span.name << " ";
    if (span.duration_us < 0) {
      oss << "(open)";
    } else {
      oss << span.duration_us << "us";
    }
    for (const auto& [key, value] : span.attributes) {
      oss << " " << key << "=" << value;
    }
    oss << "\n";
  }
  return oss.str();
}

namespace {

/// Minimal recursive-descent JSON reader used only to *validate* exported
/// traces (the library never needs to consume JSON). Values are surfaced
/// just enough for the schema check: kind plus object member spans.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " (at byte " + std::to_string(pos_) + ")";
    }
    return false;
  }
  const std::string& error() const { return error_; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        if (out != nullptr) *out = std::move(value);
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'b': value += '\b'; break;
          case 'f': value += '\f'; break;
          case 'n': value += '\n'; break;
          case 'r': value += '\r'; break;
          case 't': value += '\t'; break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size() ||
                  std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
                return Fail("bad \\u escape");
              }
              ++pos_;
            }
            value += '?';  // code point irrelevant for validation
            break;
          }
          default: return Fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      } else {
        value += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    SkipWs();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("expected a number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    return true;
  }

  bool ParseLiteral(std::string_view literal) {
    SkipWs();
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("bad literal");
    }
    pos_ += literal.size();
    return true;
  }

  /// Parses any value. When `event_check` is true the value must be a trace
  /// event object and its members are schema-checked.
  bool ParseValue(bool event_check = false);

  bool ParseEventObject();

  bool ParseTopLevel();

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool JsonValidator::ParseValue(bool event_check) {
  switch (Peek()) {
    case '{': {
      if (event_check) return ParseEventObject();
      Consume('{');
      if (Consume('}')) return true;
      do {
        if (!ParseString(nullptr)) return false;
        if (!Consume(':')) return Fail("expected ':'");
        if (!ParseValue()) return false;
      } while (Consume(','));
      if (!Consume('}')) return Fail("expected '}'");
      return true;
    }
    case '[': {
      Consume('[');
      if (Consume(']')) return true;
      do {
        if (!ParseValue()) return false;
      } while (Consume(','));
      if (!Consume(']')) return Fail("expected ']'");
      return true;
    }
    case '"': return ParseString(nullptr);
    case 't': return ParseLiteral("true");
    case 'f': return ParseLiteral("false");
    case 'n': return ParseLiteral("null");
    default: return ParseNumber();
  }
}

bool JsonValidator::ParseEventObject() {
  if (!Consume('{')) return Fail("trace event must be an object");
  bool has_name = false;
  bool has_ph = false;
  bool has_ts = false;
  bool has_dur = false;
  bool has_pid = false;
  bool has_tid = false;
  if (!Consume('}')) {
    do {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':'");
      if (key == "name" || key == "ph") {
        std::string value;
        if (!ParseString(&value)) {
          return Fail("'" + key + "' must be a string");
        }
        if (key == "name") has_name = true;
        if (key == "ph") {
          has_ph = true;
          if (value.empty()) return Fail("'ph' must name a phase");
        }
      } else if (key == "ts" || key == "dur" || key == "pid" || key == "tid") {
        if (!ParseNumber()) return Fail("'" + key + "' must be a number");
        if (key == "ts") has_ts = true;
        if (key == "dur") has_dur = true;
        if (key == "pid") has_pid = true;
        if (key == "tid") has_tid = true;
      } else if (!ParseValue()) {
        return false;
      }
    } while (Consume(','));
    if (!Consume('}')) return Fail("expected '}'");
  }
  if (!has_name) return Fail("trace event missing 'name'");
  if (!has_ph) return Fail("trace event missing 'ph'");
  if (!has_ts) return Fail("trace event missing 'ts'");
  if (!has_dur) return Fail("trace event missing 'dur'");
  if (!has_pid || !has_tid) return Fail("trace event missing 'pid'/'tid'");
  return true;
}

bool JsonValidator::ParseTopLevel() {
  if (!Consume('{')) return Fail("top level must be an object");
  bool has_events = false;
  if (!Consume('}')) {
    do {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':'");
      if (key == "traceEvents") {
        has_events = true;
        if (!Consume('[')) return Fail("'traceEvents' must be an array");
        if (!Consume(']')) {
          do {
            if (!ParseValue(/*event_check=*/true)) return false;
          } while (Consume(','));
          if (!Consume(']')) return Fail("expected ']'");
        }
      } else if (!ParseValue()) {
        return false;
      }
    } while (Consume(','));
    if (!Consume('}')) return Fail("expected '}'");
  }
  if (!has_events) return Fail("missing 'traceEvents'");
  if (!AtEnd()) return Fail("trailing content after document");
  return true;
}

}  // namespace

bool ValidateChromeTraceJson(std::string_view text, std::string* error) {
  JsonValidator validator(text);
  const bool ok = validator.ParseTopLevel();
  if (!ok && error != nullptr) *error = validator.error();
  return ok;
}

}  // namespace cisqp::obs
