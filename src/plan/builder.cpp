#include "plan/builder.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::plan {
namespace {

/// Undirected view of one equi-join atom for reordering.
struct AtomEdge {
  catalog::AttributeId a = catalog::kInvalidId;  // attribute of rel_a
  catalog::AttributeId b = catalog::kInvalidId;  // attribute of rel_b
  catalog::RelationId rel_a = catalog::kInvalidId;
  catalog::RelationId rel_b = catalog::kInvalidId;
};

std::vector<AtomEdge> CollectEdges(const catalog::Catalog& cat,
                                   const QuerySpec& spec) {
  std::vector<AtomEdge> edges;
  for (const JoinStep& step : spec.joins) {
    for (const algebra::EquiJoinAtom& atom : step.atoms) {
      edges.push_back(AtomEdge{atom.left, atom.right,
                               cat.attribute(atom.left).relation,
                               cat.attribute(atom.right).relation});
    }
  }
  return edges;
}

/// Greedy left-deep ordering: start from the smallest relation, repeatedly
/// absorb the connected relation minimizing the estimated intermediate
/// cardinality. Returns steps with atoms oriented prefix→new.
Result<std::pair<catalog::RelationId, std::vector<JoinStep>>> GreedyOrder(
    const catalog::Catalog& cat, const StatsCatalog* stats,
    const QuerySpec& spec) {
  const auto rows_of = [&](catalog::RelationId rel) {
    return stats != nullptr ? stats->Of(rel).rows : RelationStats{}.rows;
  };
  const auto distinct_of = [&](catalog::AttributeId attr) {
    const catalog::RelationId rel = cat.attribute(attr).relation;
    return stats != nullptr ? stats->Of(rel).DistinctOf(attr)
                            : RelationStats{}.DistinctOf(attr);
  };

  const std::vector<catalog::RelationId> relations = spec.Relations();
  const std::vector<AtomEdge> edges = CollectEdges(cat, spec);

  catalog::RelationId start = relations.front();
  for (catalog::RelationId rel : relations) {
    if (rows_of(rel) < rows_of(start)) start = rel;
  }

  IdSet placed;
  placed.Insert(start);
  double prefix_card = rows_of(start);
  std::vector<JoinStep> steps;

  while (placed.size() < relations.size()) {
    catalog::RelationId best = catalog::kInvalidId;
    double best_card = std::numeric_limits<double>::infinity();
    std::vector<algebra::EquiJoinAtom> best_atoms;
    for (catalog::RelationId cand : relations) {
      if (placed.Contains(cand)) continue;
      // Atoms connecting cand to the placed prefix, oriented prefix→cand.
      std::vector<algebra::EquiJoinAtom> atoms;
      double selectivity = 1.0;
      for (const AtomEdge& e : edges) {
        if (e.rel_b == cand && placed.Contains(e.rel_a)) {
          atoms.push_back(algebra::EquiJoinAtom{e.a, e.b});
        } else if (e.rel_a == cand && placed.Contains(e.rel_b)) {
          atoms.push_back(algebra::EquiJoinAtom{e.b, e.a});
        } else {
          continue;
        }
        selectivity /= std::max({distinct_of(e.a), distinct_of(e.b), 1.0});
      }
      if (atoms.empty()) continue;  // not yet connected
      const double card = prefix_card * rows_of(cand) * selectivity;
      if (card < best_card ||
          (card == best_card && best != catalog::kInvalidId && cand < best)) {
        best = cand;
        best_card = card;
        best_atoms = std::move(atoms);
      }
    }
    if (best == catalog::kInvalidId) {
      return InvalidArgumentError(
          "query join graph is disconnected; cross joins are out of model");
    }
    steps.push_back(JoinStep{best, std::move(best_atoms)});
    placed.Insert(best);
    prefix_card = best_card;
  }
  return std::make_pair(start, std::move(steps));
}

/// Wraps `node` in a selection with `c`, merging into an existing top select.
std::unique_ptr<PlanNode> WrapSelect(std::unique_ptr<PlanNode> node,
                                     const algebra::Comparison& c) {
  if (node->op == PlanOp::kSelect) {
    node->predicate.And(c);
    return node;
  }
  return PlanNode::Select(std::move(node), algebra::Predicate({c}));
}

IdSet OutputSet(const catalog::Catalog& cat, const PlanNode& node) {
  IdSet out;
  for (catalog::AttributeId a : node.OutputAttributes(cat)) out.Insert(a);
  return out;
}

/// Pushes one WHERE conjunct to the lowest subtree producing its attributes.
std::unique_ptr<PlanNode> PushConjunct(const catalog::Catalog& cat,
                                       std::unique_ptr<PlanNode> node,
                                       const algebra::Comparison& c,
                                       const IdSet& refs) {
  if (node->op == PlanOp::kJoin) {
    if (refs.IsSubsetOf(OutputSet(cat, *node->left))) {
      node->left = PushConjunct(cat, std::move(node->left), c, refs);
      return node;
    }
    if (refs.IsSubsetOf(OutputSet(cat, *node->right))) {
      node->right = PushConjunct(cat, std::move(node->right), c, refs);
      return node;
    }
    return WrapSelect(std::move(node), c);
  }
  if (node->op == PlanOp::kSelect) {
    // Placing below an existing selection is equivalent; merge instead.
    node->predicate.And(c);
    return node;
  }
  return WrapSelect(std::move(node), c);
}

/// Ordered filter of `candidates` keeping members of `keep`.
std::vector<catalog::AttributeId> OrderedIntersect(
    const std::vector<catalog::AttributeId>& candidates, const IdSet& keep) {
  std::vector<catalog::AttributeId> out;
  for (catalog::AttributeId a : candidates) {
    if (keep.Contains(a)) out.push_back(a);
  }
  return out;
}

/// Projection pushdown: returns a subtree producing (at least) `required`,
/// inserting π nodes so leaves expose only what is needed above them.
std::unique_ptr<PlanNode> Prune(const catalog::Catalog& cat,
                                std::unique_ptr<PlanNode> node,
                                const IdSet& required) {
  switch (node->op) {
    case PlanOp::kRelation: {
      const std::vector<catalog::AttributeId> out = node->OutputAttributes(cat);
      const std::vector<catalog::AttributeId> keep = OrderedIntersect(out, required);
      CISQP_CHECK_MSG(!keep.empty(), "pruned a leaf to zero attributes");
      if (keep.size() == out.size()) return node;
      return PlanNode::Project(std::move(node), keep);
    }
    case PlanOp::kSelect: {
      const IdSet child_required =
          IdSet::Union(required, node->predicate.ReferencedAttributes());
      node->left = Prune(cat, std::move(node->left), child_required);
      return node;
    }
    case PlanOp::kProject: {
      const std::vector<catalog::AttributeId> keep =
          OrderedIntersect(node->projection, required);
      CISQP_CHECK_MSG(!keep.empty(), "pruned a projection to zero attributes");
      node->projection = keep;
      IdSet child_required;
      for (catalog::AttributeId a : keep) child_required.Insert(a);
      node->left = Prune(cat, std::move(node->left), child_required);
      return node;
    }
    case PlanOp::kJoin: {
      IdSet left_required = IdSet::Intersection(required, OutputSet(cat, *node->left));
      IdSet right_required = IdSet::Intersection(required, OutputSet(cat, *node->right));
      for (const algebra::EquiJoinAtom& atom : node->join_atoms) {
        left_required.Insert(atom.left);
        right_required.Insert(atom.right);
      }
      node->left = Prune(cat, std::move(node->left), left_required);
      node->right = Prune(cat, std::move(node->right), right_required);
      return node;
    }
  }
  return node;
}

}  // namespace

Result<QueryPlan> PlanBuilder::Build(const QuerySpec& spec,
                                     const BuildOptions& options) const {
  CISQP_TRACE_SPAN(span, "plan.build");
  span.AddAttribute("relations", spec.Relations().size());
  CISQP_METRIC_INC("plan.builds");
  CISQP_RETURN_IF_ERROR(spec.Validate(cat_));

  catalog::RelationId first = spec.first_relation;
  std::vector<JoinStep> steps = spec.joins;
  if (options.join_order == JoinOrderPolicy::kGreedyCost && !spec.joins.empty()) {
    CISQP_ASSIGN_OR_RETURN(auto ordered, GreedyOrder(cat_, stats_, spec));
    first = ordered.first;
    steps = std::move(ordered.second);
  }

  // Left-deep join tree in the chosen order.
  std::unique_ptr<PlanNode> root = PlanNode::Relation(first);
  for (JoinStep& step : steps) {
    root = PlanNode::Join(std::move(root), PlanNode::Relation(step.relation),
                          std::move(step.atoms));
  }
  return Finish(std::move(root), spec, options);
}

Result<QueryPlan> PlanBuilder::Finish(std::unique_ptr<PlanNode> root,
                                      const QuerySpec& spec,
                                      const BuildOptions& options) const {
  CISQP_RETURN_IF_ERROR(spec.Validate(cat_));
  if (root == nullptr) return InvalidArgumentError("null join tree");

  // WHERE placement.
  if (!spec.where.IsTrue()) {
    if (options.push_selections) {
      for (const algebra::Comparison& c : spec.where.conjuncts()) {
        IdSet refs;
        refs.Insert(c.lhs);
        if (c.rhs_is_attribute()) refs.Insert(std::get<catalog::AttributeId>(c.rhs));
        root = PushConjunct(cat_, std::move(root), c, refs);
      }
    } else {
      root = PlanNode::Select(std::move(root), spec.where);
    }
  }

  // Projection pushdown, then the final π on the select list.
  if (options.push_projections) {
    IdSet required;
    for (catalog::AttributeId a : spec.select_list) required.Insert(a);
    root = Prune(cat_, std::move(root), required);
  }
  if (spec.distinct || root->OutputAttributes(cat_) != spec.select_list) {
    root = PlanNode::Project(std::move(root), spec.select_list);
    root->distinct = spec.distinct;
  }

  QueryPlan plan(std::move(root));
  CISQP_RETURN_IF_ERROR(plan.Validate(cat_));
  return plan;
}

double PlanBuilder::EstimateCardinality(const PlanNode& node) const {
  const auto distinct_of = [&](catalog::AttributeId attr) {
    const catalog::RelationId rel = cat_.attribute(attr).relation;
    return stats_ != nullptr ? stats_->Of(rel).DistinctOf(attr)
                             : RelationStats{}.DistinctOf(attr);
  };
  // Measured beats modeled — but never for π: a plain π shares its child's
  // signature (and count) while a DISTINCT π does not, so π always computes
  // from its child (whose recursion consults the feedback itself).
  if (feedback_ != nullptr && node.op != PlanOp::kProject) {
    if (const std::optional<double> measured =
            feedback_->Lookup(SubtreeSignature(cat_, node))) {
      return *measured;
    }
  }
  switch (node.op) {
    case PlanOp::kRelation:
      return stats_ != nullptr ? stats_->Of(node.relation).rows
                               : RelationStats{}.rows;
    case PlanOp::kProject: {
      double card = EstimateCardinality(*node.left);
      if (node.distinct) {
        double combos = 1.0;
        for (catalog::AttributeId a : node.projection) {
          combos *= std::max(distinct_of(a), 1.0);
        }
        card = std::min(card, combos);
      }
      return card;
    }
    case PlanOp::kSelect: {
      double card = EstimateCardinality(*node.left);
      for (const algebra::Comparison& c : node.predicate.conjuncts()) {
        if (c.op == algebra::CompareOp::kEq) {
          double d = distinct_of(c.lhs);
          if (c.rhs_is_attribute()) {
            d = std::max(d, distinct_of(std::get<catalog::AttributeId>(c.rhs)));
          }
          card /= std::max(d, 1.0);
        } else {
          card /= 3.0;  // textbook default for range predicates
        }
      }
      return card;
    }
    case PlanOp::kJoin: {
      double card =
          EstimateCardinality(*node.left) * EstimateCardinality(*node.right);
      for (const algebra::EquiJoinAtom& atom : node.join_atoms) {
        card /= std::max({distinct_of(atom.left), distinct_of(atom.right), 1.0});
      }
      return card;
    }
  }
  return 0.0;
}

}  // namespace cisqp::plan
