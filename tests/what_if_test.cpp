// Tests for the what-if repair search, plus end-to-end coverage of the
// third-party execution flow it can recommend enabling.
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "plan/builder.hpp"
#include "planner/verifier.hpp"
#include "planner/what_if.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"

namespace cisqp::planner {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Server;

class WhatIfTest : public ::testing::Test {
 protected:
  plan::QueryPlan PlanFor(std::string_view query) const {
    auto spec = sql::ParseAndBind(fix_.cat, query);
    CISQP_CHECK_MSG(spec.ok(), spec.status().ToString());
    auto built = plan::PlanBuilder(fix_.cat).Build(*spec);
    CISQP_CHECK_MSG(built.ok(), built.status().ToString());
    return std::move(*built);
  }

  MedicalFixture fix_;
};

TEST_F(WhatIfTest, FeasiblePlansNeedNoRepair) {
  ASSERT_OK_AND_ASSIGN(std::vector<RepairSuggestion> repairs,
                       SuggestRepairs(fix_.cat, fix_.auths, fix_.PaperPlan()));
  EXPECT_TRUE(repairs.empty());
}

TEST_F(WhatIfTest, RepairsTheDeniedJoinAndTheyActuallyWork) {
  const plan::QueryPlan denied = PlanFor(
      "SELECT Illness, Treatment FROM Disease_list JOIN Hospital "
      "ON Illness = Disease");
  ASSERT_OK_AND_ASSIGN(std::vector<RepairSuggestion> repairs,
                       SuggestRepairs(fix_.cat, fix_.auths, denied));
  ASSERT_FALSE(repairs.empty());
  // Sorted by granted attribute count.
  for (std::size_t i = 1; i < repairs.size(); ++i) {
    EXPECT_GE(repairs[i].grant.attributes.size(),
              repairs[i - 1].grant.attributes.size());
  }
  // Every suggestion, once applied, really makes the plan feasible and the
  // resulting assignment verifies.
  for (const RepairSuggestion& repair : repairs) {
    authz::AuthorizationSet extended = fix_.auths;
    ASSERT_OK(extended.Add(fix_.cat, repair.grant));
    SafePlanner planner(fix_.cat, extended);
    ASSERT_OK_AND_ASSIGN(SafePlan sp, planner.Plan(denied));
    EXPECT_OK(VerifyAssignment(fix_.cat, extended, denied, sp.assignment));
  }
}

TEST_F(WhatIfTest, ServerFilterRestrictsSuggestions) {
  const plan::QueryPlan denied = PlanFor(
      "SELECT Illness, Treatment FROM Disease_list JOIN Hospital "
      "ON Illness = Disease");
  RepairOptions options;
  options.candidate_servers = {Server(fix_.cat, "S_D")};
  ASSERT_OK_AND_ASSIGN(std::vector<RepairSuggestion> repairs,
                       SuggestRepairs(fix_.cat, fix_.auths, denied, options));
  for (const RepairSuggestion& repair : repairs) {
    EXPECT_EQ(repair.grant.server, Server(fix_.cat, "S_D"));
  }
  ASSERT_FALSE(repairs.empty());
}

TEST_F(WhatIfTest, MaxSuggestionsCaps) {
  const plan::QueryPlan denied = PlanFor(
      "SELECT Illness, Treatment FROM Disease_list JOIN Hospital "
      "ON Illness = Disease");
  RepairOptions options;
  options.max_suggestions = 1;
  ASSERT_OK_AND_ASSIGN(std::vector<RepairSuggestion> repairs,
                       SuggestRepairs(fix_.cat, fix_.auths, denied, options));
  EXPECT_EQ(repairs.size(), 1u);
}

TEST_F(WhatIfTest, ThirdPartyAssignmentExecutesEndToEnd) {
  // insured_patients is infeasible two-party but feasible with the
  // footnote-3 extension (S_N proxies). Run that execution for real: both
  // operands ship to S_N, enforcement passes, results match centralized.
  const plan::QueryPlan plan = PlanFor(
      "SELECT Patient, Plan FROM Insurance JOIN Hospital ON Holder = Patient");
  SafePlannerOptions tp;
  tp.allow_third_party = true;
  SafePlanner planner(fix_.cat, fix_.auths, tp);
  ASSERT_OK_AND_ASSIGN(SafePlan sp, planner.Plan(plan));
  int join_id = -1;
  plan.ForEachPreOrder([&](const plan::PlanNode& n) {
    if (n.op == plan::PlanOp::kJoin) join_id = n.id;
  });
  ASSERT_EQ(sp.assignment.Of(join_id).origin, FromChild::kThird);
  ASSERT_EQ(sp.assignment.Of(join_id).master, Server(fix_.cat, "S_N"));
  EXPECT_OK(VerifyAssignment(fix_.cat, fix_.auths, plan, sp.assignment));

  exec::Cluster cluster(fix_.cat);
  Rng rng(404);
  ASSERT_OK(workload::MedicalScenario::PopulateCluster(
      cluster, workload::MedicalScenario::DataConfig{300, 0.5, 0.5, 15}, rng));
  exec::DistributedExecutor executor(cluster, fix_.auths);
  ASSERT_OK_AND_ASSIGN(exec::ExecutionResult result,
                       executor.Execute(plan, sp.assignment));
  ASSERT_OK_AND_ASSIGN(storage::Table reference,
                       exec::ExecuteCentralized(cluster, plan));
  EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, reference));
  EXPECT_GT(result.table.row_count(), 0u);
  // Both operands shipped to the proxy: two transfers into S_N.
  std::size_t to_proxy = 0;
  for (const exec::TransferRecord& t : result.network.transfers()) {
    if (t.to == Server(fix_.cat, "S_N")) ++to_proxy;
  }
  EXPECT_EQ(to_proxy, 2u);
  EXPECT_EQ(result.result_server, Server(fix_.cat, "S_N"));
}

TEST_F(WhatIfTest, RejectsMalformedInput) {
  EXPECT_EQ(SuggestRepairs(fix_.cat, fix_.auths, plan::QueryPlan{}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cisqp::planner
