// Chase closure of an authorization set (paper §3.2, citing Aho-Beeri-Ullman).
//
// A server that is authorized to view two relations (or views) and sees the
// attributes of a schema-declared join between them could compute the joined
// view on its own; the policy must therefore be treated as if that view were
// explicitly authorized. The closure derives, to fixpoint, every rule implied
// directly or indirectly by the explicit ones:
//
//   [A1, J1] → S,  [A2, J2] → S,  schema edge e = (x, y) with x,y visible
//   (x ∈ A1 ∪ A2 and y ∈ A1 ∪ A2, one endpoint owned inside each rule's
//   relation scope)  ⟹  [A1 ∪ A2, J1 ∪ J2 ∪ {e}] → S.
//
// The derivation is sound because S can materialize both authorized views and
// join them locally on attributes it already sees; no new release occurs.
// Derivations that only restate an existing grant (same path, attribute
// subset) are skipped. A cap bounds the closure on pathological schemas.
//
// The fixpoint is computed semi-naïvely (DESIGN.md §9): each round pairs
// only the rules derived in the previous round (the delta) against the
// whole pool — every unordered rule pair is examined exactly once, in the
// first round after its younger member appeared — and a per-endpoint index
// over the schema's join edges restricts each pair to the edges it can
// actually fire. Per-server closures are independent, so they fan out
// across a ThreadPool; results merge in server order, which keeps the
// closure, the stats, and the cap error deterministic at any thread count.
#pragma once

#include "authz/authorization.hpp"
#include "catalog/catalog.hpp"

namespace cisqp::authz {

struct ChaseOptions {
  /// Hard cap on the number of derived rules; exceeding it fails with
  /// kResourceExhausted rather than silently truncating the closure.
  std::size_t max_derived_rules = 100000;
  /// Cap on join-path length (atoms) of derived rules; 0 means unlimited.
  std::size_t max_path_atoms = 0;
  /// Parallelism for the per-server closures: 0 means hardware concurrency,
  /// 1 runs strictly on the calling thread. The result is identical at any
  /// setting (closures are per-server and the merge is ordered).
  std::size_t threads = 0;
};

struct ChaseStats {
  std::size_t derived_rules = 0;   ///< rules added by the chase
  std::size_t iterations = 0;      ///< fixpoint rounds executed
  std::size_t pairs_considered = 0;///< (rule, rule, edge) combinations tried
};

/// Returns `auths` closed under the derivation above. The input set is not
/// modified; the result contains every input rule plus all derived ones.
Result<AuthorizationSet> ChaseClosure(const catalog::Catalog& cat,
                                      const AuthorizationSet& auths,
                                      const ChaseOptions& options = {},
                                      ChaseStats* stats = nullptr);

}  // namespace cisqp::authz
