// Replays the checked-in corpus of minimized repros (tests/corpus/*.repro)
// through the full differential check. Every repro that once witnessed a bug
// (or pinned down a tricky-but-correct verdict) must stay green on main —
// clean, and under fault schedules: failover may retry and re-plan, but it
// must never produce a transfer the policy disallows (zero denied
// executor/requestor audit entries) and never return wrong rows.
//
// CISQP_CORPUS_DIR is injected by tests/CMakeLists.txt and points at the
// source-tree corpus so newly added .repro files are picked up without
// reconfiguring.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "testcheck/harness.hpp"
#include "testcheck/scenario.hpp"

#ifndef CISQP_CORPUS_DIR
#error "CISQP_CORPUS_DIR must be defined (see tests/CMakeLists.txt)"
#endif

namespace cisqp::testcheck {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(CISQP_CORPUS_DIR)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<Scenario> LoadRepro(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseReproText(buffer.str());
}

TEST(FuzzCorpus, CorpusIsNotEmpty) {
  EXPECT_FALSE(CorpusFiles().empty())
      << "tests/corpus must hold at least one minimized repro";
}

TEST(FuzzCorpus, EveryReproReplaysClean) {
  for (const auto& path : CorpusFiles()) {
    ASSERT_OK_AND_ASSIGN(Scenario scenario, LoadRepro(path));
    ASSERT_OK_AND_ASSIGN(CheckReport report, CheckScenario(scenario, {}));
    EXPECT_TRUE(report.ok())
        << path.filename() << "\n" << report.ToString();
  }
}

TEST(FuzzCorpus, EveryReproStaysSafeUnderFaultSchedules) {
  CheckOptions options;
  options.fault_seeds = {7, 19, 2027};
  for (const auto& path : CorpusFiles()) {
    ASSERT_OK_AND_ASSIGN(Scenario scenario, LoadRepro(path));
    ASSERT_OK_AND_ASSIGN(CheckReport report, CheckScenario(scenario, options));
    EXPECT_TRUE(report.ok())
        << path.filename() << "\n" << report.ToString();
  }
}

}  // namespace
}  // namespace cisqp::testcheck
