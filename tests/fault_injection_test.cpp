// Fault-injected execution: seeded fault schedules must either recover to a
// result byte-identical to the fault-free run — without ever widening a
// release (Def. 3.3 re-checked on every replanned transfer) — or fail with
// a typed kUnavailable. The schedules are deterministic (FaultModel), so
// every recovery path here replays exactly.
//
// CI runs this suite across 3 fixed seeds; $CISQP_FAULT_SEED overrides the
// built-in seed list with a single seed.
#include <gtest/gtest.h>

#include <cstdlib>

#include "exec/executor.hpp"
#include "exec/fault_model.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "plan/builder.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"
#include "workload/medical.hpp"

namespace cisqp::exec {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Server;

std::vector<std::uint64_t> SeedsUnderTest() {
  const char* env = std::getenv("CISQP_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return {static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10))};
  }
  return {7, 19, 2027};
}

// ---------------------------------------------------------------------------
// FaultSpec parsing.

TEST(FaultSpecTest, ParsesFullSpec) {
  auto spec = ParseFaultSpec("seed=42,drop=0.25,down=S_N@1000..5000,kill=S_I@0");
  ASSERT_OK(spec.status());
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_DOUBLE_EQ(spec->drop_probability, 0.25);
  ASSERT_EQ(spec->outages.size(), 2u);
  EXPECT_EQ(spec->outages[0].server, "S_N");
  EXPECT_EQ(spec->outages[0].start_us, 1000);
  EXPECT_EQ(spec->outages[0].end_us, 5000);
  EXPECT_EQ(spec->outages[1].server, "S_I");
  EXPECT_EQ(spec->outages[1].end_us, kNeverRecovers);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"seed", "drop=1.5", "drop=x", "down=S_N", "down=S_N@5..5",
        "down=S_N@9..2", "kill=@0", "frob=1", "seed=-3"}) {
    EXPECT_FALSE(ParseFaultSpec(bad).ok()) << bad;
  }
}

TEST(FaultSpecTest, ResolveMapsServerNames) {
  MedicalFixture fix;
  auto spec = ParseFaultSpec("kill=S_N@10");
  ASSERT_OK(spec.status());
  auto options = spec->Resolve(fix.cat);
  ASSERT_OK(options.status());
  ASSERT_EQ(options->outages.size(), 1u);
  EXPECT_EQ(options->outages[0].server, Server(fix.cat, "S_N"));
  EXPECT_FALSE(ParseFaultSpec("kill=NoSuch@10")->Resolve(fix.cat).ok());
}

// ---------------------------------------------------------------------------
// FaultModel determinism.

TEST(FaultModelTest, DropScheduleIsSeedDeterministic) {
  FaultModelOptions options;
  options.seed = 99;
  options.drop_probability = 0.5;
  FaultModel a(options);
  FaultModel b(options);
  bool any_drop = false;
  bool any_delivery = false;
  for (int i = 0; i < 64; ++i) {
    const ShipFate fa = a.OnShip(0, 1, 0);
    const ShipFate fb = b.OnShip(0, 1, 0);
    EXPECT_EQ(fa.outcome, fb.outcome) << "attempt " << i;
    any_drop |= fa.outcome == ShipOutcome::kTransientFault;
    any_delivery |= fa.outcome == ShipOutcome::kDelivered;
  }
  EXPECT_TRUE(any_drop);
  EXPECT_TRUE(any_delivery);
}

TEST(FaultModelTest, OutageWindowsDominateTheLink) {
  FaultModelOptions options;
  options.outages.push_back(OutageWindow{1, 100, 200});
  options.outages.push_back(OutageWindow{2, 50, kNeverRecovers});
  FaultModel model(options);
  EXPECT_EQ(model.OnShip(0, 1, 0).outcome, ShipOutcome::kDelivered);
  EXPECT_EQ(model.OnShip(0, 1, 150).outcome, ShipOutcome::kTransientFault);
  EXPECT_EQ(model.OnShip(1, 0, 150).outcome, ShipOutcome::kTransientFault);
  EXPECT_EQ(model.OnShip(0, 1, 200).outcome, ShipOutcome::kDelivered);
  const ShipFate dead = model.OnShip(0, 2, 60);
  EXPECT_EQ(dead.outcome, ShipOutcome::kServerDown);
  EXPECT_EQ(dead.down_server, 2);
  EXPECT_TRUE(model.IsPermanentlyDown(2, 60));
  EXPECT_FALSE(model.IsPermanentlyDown(2, 10));
  EXPECT_FALSE(model.IsPermanentlyDown(1, 150));
  EXPECT_EQ(model.PermanentlyDown(60), std::vector<catalog::ServerId>{2});
  EXPECT_TRUE(model.PermanentlyDown(0).empty());
}

// ---------------------------------------------------------------------------
// End-to-end recovery on the paper's federation.

class FaultedExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(fix_.cat);
    Rng rng(2026);
    ASSERT_OK(workload::MedicalScenario::PopulateCluster(
        *cluster_, workload::MedicalScenario::DataConfig{500, 0.4, 0.6, 30},
        rng));
    plan_ = fix_.PaperPlan();
    planner::SafePlanner planner(fix_.cat, fix_.auths);
    auto sp = planner.Plan(plan_);
    ASSERT_OK(sp.status());
    assignment_ = sp->assignment;
    DistributedExecutor executor(*cluster_, fix_.auths);
    auto baseline = executor.Execute(plan_, assignment_);
    ASSERT_OK(baseline.status());
    baseline_ = std::move(*baseline);
  }

  MedicalFixture fix_;
  std::unique_ptr<Cluster> cluster_;
  plan::QueryPlan plan_;
  planner::Assignment assignment_;
  ExecutionResult baseline_;
};

TEST_F(FaultedExecTest, SeededDropsRecoverByteIdenticalOrFailTyped) {
  obs::AuthzAuditLog::Get().Enable();
  DistributedExecutor executor(*cluster_, fix_.auths);
  bool any_recovered_with_retries = false;
  for (const std::uint64_t seed : SeedsUnderTest()) {
    for (const double drop : {0.1, 0.3, 0.6}) {
      FaultModelOptions fopts;
      fopts.seed = seed;
      fopts.drop_probability = drop;
      FaultModel faults(fopts);
      NetworkStats observed;
      ExecutionOptions options;
      options.faults = &faults;
      options.network_out = &observed;
      const auto result = executor.Execute(plan_, assignment_, options);
      if (result.ok()) {
        EXPECT_TRUE(
            storage::Table::SameRowMultiset(result->table, baseline_.table));
        EXPECT_EQ(result->result_server, baseline_.result_server);
        EXPECT_EQ(result->network.total_messages(),
                  baseline_.network.total_messages());
        EXPECT_EQ(result->recovery.retries, result->recovery.transient_faults);
        any_recovered_with_retries |= result->recovery.retries > 0;
      } else {
        // Faults may defeat the retry budget, but only ever as the typed
        // unavailability error — never as an authorization failure.
        EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
            << result.status();
      }
      // In no run does a transfer reach an unauthorized server: every
      // recorded transfer must be backed by an *allowed* executor-site
      // audit entry for the same node and recipient (the shipped view is
      // the Fig. 5 mode view, which only the check site knows — the audit
      // log is the ground truth for what was released and why).
      for (const TransferRecord& t : observed.transfers()) {
        bool audited_allowed = false;
        for (const obs::AuditEntry& entry :
             obs::AuthzAuditLog::Get().entries()) {
          if (entry.allowed && entry.node_id == t.node_id &&
              entry.site == obs::AuditSite::kExecutor &&
              entry.server == fix_.cat.server(t.to).name) {
            audited_allowed = true;
            break;
          }
        }
        EXPECT_TRUE(audited_allowed)
            << "transfer of n" << t.node_id << " to "
            << fix_.cat.server(t.to).name << " has no allowing audit entry";
      }
    }
  }
  EXPECT_TRUE(any_recovered_with_retries);
  // Recovery never tripped runtime enforcement.
  for (const obs::AuditEntry& entry : obs::AuthzAuditLog::Get().entries()) {
    if (entry.site == obs::AuditSite::kExecutor ||
        entry.site == obs::AuditSite::kRequestor) {
      EXPECT_TRUE(entry.allowed) << entry.ToString();
    }
  }
  obs::AuthzAuditLog::Get().Disable();
}

TEST_F(FaultedExecTest, FiniteOutageIsWaitedOutWithBackoff) {
  // S_I is dark until virtual t=5ms; the first shipment originates there, so
  // the executor must back off past the window and then match the baseline.
  FaultModelOptions fopts;
  fopts.outages.push_back(
      OutageWindow{Server(fix_.cat, "S_I"), 0, 5000});
  FaultModel faults(fopts);
  ExecutionOptions options;
  options.faults = &faults;
  options.retry.max_attempts = 16;
  DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result,
                       executor.Execute(plan_, assignment_, options));
  EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, baseline_.table));
  EXPECT_GT(result.recovery.retries, 0u);
  EXPECT_GE(result.recovery.backoff_wait_us, 5000);
  EXPECT_EQ(result.recovery.failovers, 0u);
}

TEST_F(FaultedExecTest, RetryBudgetExhaustionIsTypedUnavailable) {
  // The window outlasts a 3-attempt budget (1+2+4 ms of backoff): typed
  // failure, and the log shows the shipments that never completed.
  FaultModelOptions fopts;
  fopts.outages.push_back(
      OutageWindow{Server(fix_.cat, "S_I"), 0, 1000000});
  FaultModel faults(fopts);
  NetworkStats observed;
  ExecutionOptions options;
  options.faults = &faults;
  options.retry.max_attempts = 3;
  options.network_out = &observed;
  DistributedExecutor executor(*cluster_, fix_.auths);
  const auto result = executor.Execute(plan_, assignment_, options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(observed.total_messages(), 0u);
}

TEST_F(FaultedExecTest, DeadlineBoundsTotalBackoff) {
  FaultModelOptions fopts;
  fopts.drop_probability = 1.0;  // every attempt drops
  FaultModel faults(fopts);
  ExecutionOptions options;
  options.faults = &faults;
  options.retry.max_attempts = 1000;
  options.retry.deadline_us = 10000;
  DistributedExecutor executor(*cluster_, fix_.auths);
  const auto result = executor.Execute(plan_, assignment_, options);
  ASSERT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos);
}

TEST_F(FaultedExecTest, DataHomeDeathIsUnrecoverable) {
  // S_I permanently down — and it is the only holder of Insurance, so the
  // failover replan over the survivors is infeasible at the leaf.
  FaultModelOptions fopts;
  fopts.outages.push_back(
      OutageWindow{Server(fix_.cat, "S_I"), 0, kNeverRecovers});
  FaultModel faults(fopts);
  ExecutionOptions options;
  options.faults = &faults;
  DistributedExecutor executor(*cluster_, fix_.auths);
  const auto result = executor.Execute(plan_, assignment_, options);
  ASSERT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("replan"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Authorization-aware failover: a federation where the join must run at a
// third party, two of which exist. Killing the chosen one must re-route to
// the survivor; killing both must fail typed.

class FailoverFixture {
 public:
  FailoverFixture() {
    a_ = cat_.AddServer("A").value();
    b_ = cat_.AddServer("B").value();
    c_ = cat_.AddServer("C").value();
    d_ = cat_.AddServer("D").value();
    CISQP_CHECK(cat_.AddRelation("R", a_,
                                 {{"RK", catalog::ValueType::kInt64},
                                  {"RV", catalog::ValueType::kInt64}},
                                 {"RK"})
                    .ok());
    CISQP_CHECK(cat_.AddRelation("S", b_,
                                 {{"SK", catalog::ValueType::kInt64},
                                  {"SW", catalog::ValueType::kInt64}},
                                 {"SK"})
                    .ok());
    CISQP_CHECK(cat_.AddJoinEdge("RK", "SK").ok());
    // Neither data owner may see the other side, so the join needs a proxy;
    // C and D may both view everything (two interchangeable proxies). A
    // regular-join proxy receives each *base* operand — an empty-path
    // profile — so each proxy needs the per-relation rules in addition to
    // the joined view (CanView matches join paths exactly).
    for (const char* proxy : {"C", "D"}) {
      CISQP_CHECK(auths_.Add(cat_, proxy, {"RK", "RV"}, {}).ok());
      CISQP_CHECK(auths_.Add(cat_, proxy, {"SK", "SW"}, {}).ok());
      CISQP_CHECK(auths_.Add(cat_, proxy, {"RK", "RV", "SK", "SW"},
                             {{"RK", "SK"}})
                      .ok());
    }
    cluster_ = std::make_unique<exec::Cluster>(cat_);
    for (std::int64_t i = 0; i < 24; ++i) {
      CISQP_CHECK(cluster_
                      ->InsertRow(cat_.FindRelation("R").value(),
                                  {storage::Value(i), storage::Value(i * 10)})
                      .ok());
      if (i % 3 == 0) {
        CISQP_CHECK(cluster_
                        ->InsertRow(cat_.FindRelation("S").value(),
                                    {storage::Value(i), storage::Value(i * 7)})
                        .ok());
      }
    }
    auto spec = sql::ParseAndBind(cat_, "SELECT RV, SW FROM R JOIN S ON RK = SK");
    CISQP_CHECK_MSG(spec.ok(), spec.status().ToString());
    auto built = plan::PlanBuilder(cat_).Build(*spec);
    CISQP_CHECK_MSG(built.ok(), built.status().ToString());
    plan_ = std::move(*built);
    planner_options_.allow_third_party = true;
    planner::SafePlanner planner(cat_, auths_, planner_options_);
    auto sp = planner.Plan(plan_);
    CISQP_CHECK_MSG(sp.ok(), sp.status().ToString());
    assignment_ = std::move(sp->assignment);
  }

  catalog::Catalog cat_;
  authz::AuthorizationSet auths_;
  catalog::ServerId a_, b_, c_, d_;
  std::unique_ptr<exec::Cluster> cluster_;
  plan::QueryPlan plan_;
  planner::Assignment assignment_;
  planner::SafePlannerOptions planner_options_;
};

TEST(FailoverTest, PlannerPicksTheFirstProxy) {
  FailoverFixture fix;
  int join_id = -1;
  fix.plan_.ForEachPreOrder([&](const plan::PlanNode& n) {
    if (n.op == plan::PlanOp::kJoin) join_id = n.id;
  });
  ASSERT_GE(join_id, 0);
  EXPECT_EQ(fix.assignment_.Of(join_id).master, fix.c_);
}

TEST(FailoverTest, PermanentProxyDeathFailsTypedWithoutFailover) {
  FailoverFixture fix;
  FaultModelOptions fopts;
  fopts.outages.push_back(OutageWindow{fix.c_, 0, kNeverRecovers});
  FaultModel faults(fopts);
  NetworkStats observed;
  ExecutionOptions options;
  options.faults = &faults;
  options.failover = false;
  options.network_out = &observed;
  DistributedExecutor executor(*fix.cluster_, fix.auths_);
  const auto result = executor.Execute(fix.plan_, fix.assignment_, options);
  ASSERT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("permanently down"),
            std::string::npos);
  EXPECT_EQ(observed.total_messages(), 0u);
}

TEST(FailoverTest, FailoverReroutesToSurvivingProxyByteIdentical) {
  FailoverFixture fix;
  DistributedExecutor executor(*fix.cluster_, fix.auths_);
  ASSERT_OK_AND_ASSIGN(ExecutionResult baseline,
                       executor.Execute(fix.plan_, fix.assignment_));
  EXPECT_EQ(baseline.result_server, fix.c_);

  obs::MetricsRegistry::Get().Reset();
  obs::MetricsRegistry::Get().Enable();
  obs::AuthzAuditLog::Get().Enable();
  FaultModelOptions fopts;
  fopts.outages.push_back(OutageWindow{fix.c_, 0, kNeverRecovers});
  FaultModel faults(fopts);
  ExecutionOptions options;
  options.faults = &faults;
  options.failover_planner = fix.planner_options_;
  DistributedExecutor faulted(*fix.cluster_, fix.auths_);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result,
                       faulted.Execute(fix.plan_, fix.assignment_, options));
  obs::MetricsRegistry::Get().Disable();
  obs::AuthzAuditLog::Get().Disable();

  // Byte-identical rows, re-routed to the surviving proxy.
  EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, baseline.table));
  EXPECT_EQ(result.result_server, fix.d_);
  EXPECT_EQ(result.recovery.failovers, 1u);
  ASSERT_EQ(result.recovery.excluded_servers.size(), 1u);
  EXPECT_EQ(result.recovery.excluded_servers[0], fix.c_);
  EXPECT_EQ(obs::MetricsRegistry::Get().Counter("exec.failovers"), 1u);
  EXPECT_GE(obs::MetricsRegistry::Get().Counter("exec.permanent_faults"), 1u);

  // No completed transfer ever touched the dead server.
  for (const TransferRecord& t : result.network.transfers()) {
    EXPECT_NE(t.to, fix.c_);
    EXPECT_NE(t.from, fix.c_);
  }
  // The replan audited its probes under the failover site, and every
  // post-failover release re-passed Def. 3.3 (no executor denial).
  std::size_t failover_probes = 0;
  for (const obs::AuditEntry& entry : obs::AuthzAuditLog::Get().entries()) {
    if (entry.site == obs::AuditSite::kFailover) ++failover_probes;
    if (entry.site == obs::AuditSite::kExecutor) {
      EXPECT_TRUE(entry.allowed);
    }
  }
  EXPECT_GT(failover_probes, 0u);
}

TEST(FailoverTest, NoAuthorizedSurvivorIsTypedUnavailable) {
  FailoverFixture fix;
  FaultModelOptions fopts;
  fopts.outages.push_back(OutageWindow{fix.c_, 0, kNeverRecovers});
  fopts.outages.push_back(OutageWindow{fix.d_, 0, kNeverRecovers});
  FaultModel faults(fopts);
  NetworkStats observed;
  ExecutionOptions options;
  options.faults = &faults;
  options.failover_planner = fix.planner_options_;
  options.network_out = &observed;
  DistributedExecutor executor(*fix.cluster_, fix.auths_);
  const auto result = executor.Execute(fix.plan_, fix.assignment_, options);
  ASSERT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("replan"), std::string::npos);
  // The authorization boundary held: nothing was ever shipped anywhere.
  EXPECT_EQ(observed.total_messages(), 0u);
}

}  // namespace
}  // namespace cisqp::exec
