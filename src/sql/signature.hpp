// Canonical query signatures (DESIGN.md §15.2).
//
// The serving layer's plan cache is keyed by the *meaning* of a query, not
// its spelling: two requests whose bound specs are semantically identical
// must map to one cache entry, and two requests that could ever produce
// different result bytes must never collide. The signature is computed from
// the bound plan::QuerySpec, so everything the lexer already normalizes
// (whitespace, keyword case, `!=` vs `<>`, bare vs dotted names) is free,
// and the remaining commutativity is canonicalized here:
//
//   * ON operand order — the binder orients every atom (earlier relation on
//     the left), so `ON a = b` and `ON b = a` bind identically;
//   * conjunct order — the ON atoms of a join step and the WHERE conjuncts
//     are conjunctions, so their tokens are sorted;
//   * nothing else — the SELECT list (output column order), DISTINCT, and
//     the FROM sequence (the plan search's enumeration tie-break order) all
//     stay order-sensitive, because each can change the result bytes.
//
// Literals render losslessly (%.17g doubles, length-prefixed strings) so
// near-miss queries differing only in a constant never share a signature.
#pragma once

#include <string>

#include "catalog/catalog.hpp"
#include "plan/query_spec.hpp"

namespace cisqp::sql {

/// Canonical signature of a bound query. Equal signatures guarantee
/// byte-identical results under one catalog + policy epoch; semantically
/// distinct specs produce distinct signatures (injective on everything the
/// executor can observe).
std::string CanonicalQuerySignature(const plan::QuerySpec& spec);

/// 64-bit digest of CanonicalQuerySignature — for metrics/log labels only;
/// cache keys use the full string so collisions are impossible.
std::uint64_t QuerySignatureHash(const plan::QuerySpec& spec);

}  // namespace cisqp::sql
