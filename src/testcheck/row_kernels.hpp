// The retained row-at-a-time operator kernels (DESIGN.md §12.4).
//
// These are the original `algebra` operator implementations, kept verbatim
// in spirit as the differential oracle after the production engine moved to
// columnar batches: one Row per tuple, per-row key extraction, per-cell
// copies. The fuzz harness and the kernel-equivalence suite run every
// production operator against its row twin; `ReferenceEvaluate` is the
// single-site reference evaluator built from them (the harness's results
// arm), so every fuzz seed differentially validates the columnar engine.
//
// The only deliberate deviations from the historical code are the two
// fixed inefficiencies this sweep pinned with tests: Select reserves its
// output, and Distinct hashes row indices instead of re-copying every row
// it just hashed. Semantics — including output row order — are unchanged.
#pragma once

#include "algebra/operators.hpp"
#include "exec/cluster.hpp"
#include "plan/plan_node.hpp"

namespace cisqp::testcheck {

/// π over rows: keeps columns `attrs` in order; `distinct` removes
/// duplicates keeping first occurrences.
Result<storage::Table> RowProject(const storage::Table& input,
                                  const std::vector<catalog::AttributeId>& attrs,
                                  bool distinct = false);

/// σ over rows.
Result<storage::Table> RowSelect(const storage::Table& input,
                                 const algebra::Predicate& predicate);

/// Hash equi-join over rows (per-row key allocation, as the engine had it).
Result<storage::Table> RowHashJoin(const storage::Table& left,
                                   const storage::Table& right,
                                   const std::vector<algebra::EquiJoinAtom>& atoms);

/// Natural join on shared attributes over rows.
Result<storage::Table> RowNaturalJoinOnShared(const storage::Table& left,
                                              const storage::Table& right);

/// Duplicate elimination over rows, first occurrence kept.
storage::Table RowDistinct(const storage::Table& input);

/// Single-site reference evaluation of `plan` using only the row kernels —
/// the oracle the columnar execution engine is differentially checked
/// against (exec::ExecuteCentralized runs the production columnar kernels).
Result<storage::Table> ReferenceEvaluate(const exec::Cluster& cluster,
                                         const plan::QueryPlan& plan);

}  // namespace cisqp::testcheck
