#include "exec/executor.hpp"

#include "algebra/operators.hpp"
#include "authz/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::exec {
namespace {

/// A materialized intermediate result and the server currently holding it.
struct Located {
  storage::Table table;
  catalog::ServerId server = catalog::kInvalidId;
};

class Run {
 public:
  Run(const Cluster& cluster, const authz::Policy& auths,
      const plan::QueryPlan& plan, const planner::Assignment& assignment,
      const ExecutionOptions& options)
      : cluster_(cluster), auths_(auths), assignment_(assignment),
        options_(options),
        profiles_(planner::ComputeNodeProfiles(cluster.catalog(), plan)) {}

  Result<ExecutionResult> Execute(const plan::PlanNode& root) {
    CISQP_TRACE_SPAN(span, "exec.execute");
    CISQP_METRIC_INC("exec.executions");
    const std::int64_t start_us = obs::NowMicros();
    CISQP_ASSIGN_OR_RETURN(Located located, Exec(root));
    if (options_.requestor && *options_.requestor != located.server) {
      CISQP_RETURN_IF_ERROR(Ship(root.id, located.server, *options_.requestor,
                                 located.table, ProfileOf(root.id),
                                 "final result delivered to requestor",
                                 obs::AuditSite::kRequestor));
      located.server = *options_.requestor;
    }
    ExecutionResult result;
    result.table = std::move(located.table);
    result.result_server = located.server;
    result.network = std::move(network_);
    result.load = std::move(load_);
    result.duration_us = obs::NowMicros() - start_us;
    if (span.active()) {
      span.AddAttribute("result_rows", result.table.row_count());
      span.AddAttribute("transfers", result.network.total_messages());
      span.AddAttribute("bytes_shipped", result.network.total_bytes());
    }
    return result;
  }

 private:
  const catalog::Catalog& cat() const { return cluster_.catalog(); }

  const authz::Profile& ProfileOf(int node_id) const {
    return profiles_[static_cast<std::size_t>(node_id)];
  }

  /// Accounts one operator invocation producing `rows` at `server` after
  /// `busy_us` microseconds of operator wall-clock time.
  void Account(catalog::ServerId server, std::size_t rows,
               std::int64_t busy_us = 0) {
    ServerLoad& load = load_[server];
    ++load.operations;
    load.rows_produced += rows;
    load.busy_us += busy_us;
    CISQP_METRIC_OBSERVE("exec.operator_rows", static_cast<double>(rows));
  }

  /// Moves `table` from one server to another: accounts the transfer and,
  /// under enforcement, checks (and audits) that the receiver may view
  /// `profile`.
  Status Ship(int node_id, catalog::ServerId from, catalog::ServerId to,
              const storage::Table& table, const authz::Profile& profile,
              std::string description,
              obs::AuditSite site = obs::AuditSite::kExecutor) {
    CISQP_CHECK_MSG(from != to, "Ship called for a colocated transfer");
    CISQP_TRACE_SPAN(span, "exec.ship");
    if (span.active()) {
      span.AddAttribute("node", node_id);
      span.AddAttribute("from", cat().server(from).name);
      span.AddAttribute("to", cat().server(to).name);
      span.AddAttribute("rows", table.row_count());
      span.AddAttribute("bytes", table.WireSizeBytes());
      span.AddAttribute("what", description);
    }
    if (options_.enforce_releases &&
        !authz::AuditedCanView(cat(), auths_, profile, to, site, node_id,
                               description)) {
      CISQP_METRIC_INC("exec.enforcement_denials");
      return UnauthorizedError(
          "runtime enforcement: server '" + cat().server(to).name +
          "' is not authorized to view " + profile.ToString(cat()) +
          " (node n" + std::to_string(node_id) + ": " + description + ")");
    }
    network_.Record(TransferRecord{node_id, from, to, table.row_count(),
                                   table.WireSizeBytes(), std::move(description)});
    return Status::Ok();
  }

  Result<Located> Exec(const plan::PlanNode& node) {
    CISQP_TRACE_SPAN(span, "exec.node");
    if (span.active()) {
      span.AddAttribute("node", node.id);
      span.AddAttribute("op", plan::PlanOpName(node.op));
      span.AddAttribute("master",
                        cat().server(assignment_.Of(node.id).master).name);
    }
    const planner::Executor& ex = assignment_.Of(node.id);
    switch (node.op) {
      case plan::PlanOp::kRelation: {
        const catalog::ServerId home = cat().relation(node.relation).server;
        if (ex.master != home) {
          return InvalidArgumentError("leaf n" + std::to_string(node.id) +
                                      " not assigned to its home server");
        }
        return Located{cluster_.TableOf(node.relation), home};
      }
      case plan::PlanOp::kProject: {
        CISQP_ASSIGN_OR_RETURN(Located child, Exec(*node.left));
        if (ex.master != child.server) {
          return InvalidArgumentError("unary node n" + std::to_string(node.id) +
                                      " must run at its operand's server");
        }
        const std::int64_t t0 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(
            storage::Table out,
            algebra::Project(child.table, node.projection, node.distinct));
        Account(child.server, out.row_count(), obs::NowMicros() - t0);
        return Located{std::move(out), child.server};
      }
      case plan::PlanOp::kSelect: {
        CISQP_ASSIGN_OR_RETURN(Located child, Exec(*node.left));
        if (ex.master != child.server) {
          return InvalidArgumentError("unary node n" + std::to_string(node.id) +
                                      " must run at its operand's server");
        }
        const std::int64_t t0 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(storage::Table out,
                               algebra::Select(child.table, node.predicate));
        Account(child.server, out.row_count(), obs::NowMicros() - t0);
        return Located{std::move(out), child.server};
      }
      case plan::PlanOp::kJoin:
        return ExecJoin(node, ex);
    }
    return InternalError("unknown plan operator");
  }

  Result<Located> ExecJoin(const plan::PlanNode& node,
                           const planner::Executor& ex) {
    CISQP_ASSIGN_OR_RETURN(Located left, Exec(*node.left));
    CISQP_ASSIGN_OR_RETURN(Located right, Exec(*node.right));
    const authz::Profile& lp = ProfileOf(node.left->id);
    const authz::Profile& rp = ProfileOf(node.right->id);
    const planner::JoinModeViews views =
        planner::ComputeJoinModeViews(lp, rp, node.join_atoms);

    switch (ex.mode) {
      case planner::ExecutionMode::kLocal:
        return InvalidArgumentError("join node n" + std::to_string(node.id) +
                                    " cannot have mode 'local'");
      case planner::ExecutionMode::kRegularJoin: {
        // The operand not computed by the master ships in full (Fig. 5 rows
        // [Sl,NULL] / [Sr,NULL]); a third-party master receives both.
        if (left.server != ex.master) {
          CISQP_RETURN_IF_ERROR(Ship(node.id, left.server, ex.master,
                                     left.table, lp,
                                     "regular join: left operand"));
        }
        if (right.server != ex.master) {
          CISQP_RETURN_IF_ERROR(Ship(node.id, right.server, ex.master,
                                     right.table, rp,
                                     "regular join: right operand"));
        }
        const std::int64_t t0 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(storage::Table out,
                               algebra::HashJoin(left.table, right.table,
                                                 node.join_atoms));
        Account(ex.master, out.row_count(), obs::NowMicros() - t0);
        return Located{std::move(out), ex.master};
      }
      case planner::ExecutionMode::kSemiJoin: {
        if (!ex.slave) {
          return InvalidArgumentError("semi-join n" + std::to_string(node.id) +
                                      " without a slave");
        }
        const bool master_is_left = ex.origin == planner::FromChild::kLeft;
        const Located& master_op = master_is_left ? left : right;
        const Located& slave_op = master_is_left ? right : left;
        if (master_op.server != ex.master || slave_op.server != *ex.slave) {
          return InvalidArgumentError(
              "semi-join n" + std::to_string(node.id) +
              " executor does not match the servers holding its operands");
        }

        // Step 1: the master projects its join attributes (distinct).
        std::vector<catalog::AttributeId> master_join_cols(
            master_is_left ? views.left_join_attrs.begin() : views.right_join_attrs.begin(),
            master_is_left ? views.left_join_attrs.end() : views.right_join_attrs.end());
        const std::int64_t t1 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(
            storage::Table projected,
            algebra::Project(master_op.table, master_join_cols, /*distinct=*/true));
        Account(ex.master, projected.row_count(), obs::NowMicros() - t1);

        // Step 2: ship it to the slave.
        CISQP_RETURN_IF_ERROR(Ship(
            node.id, ex.master, *ex.slave, projected,
            master_is_left ? views.right_slave_view : views.left_slave_view,
            "semi-join step 2: master join-attribute projection"));

        // Step 3: the slave joins with its operand.
        std::vector<algebra::EquiJoinAtom> atoms = node.join_atoms;
        if (!master_is_left) {
          // HashJoin wants atoms oriented (left-input attr, right-input attr);
          // here the shipped projection carries the *right* child's attrs.
          for (algebra::EquiJoinAtom& atom : atoms) std::swap(atom.left, atom.right);
        }
        const std::int64_t t3 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(storage::Table reduced,
                               algebra::HashJoin(projected, slave_op.table, atoms));
        Account(*ex.slave, reduced.row_count(), obs::NowMicros() - t3);

        // Step 4: ship the reduced operand back to the master.
        CISQP_RETURN_IF_ERROR(Ship(
            node.id, *ex.slave, ex.master, reduced,
            master_is_left ? views.left_master_view : views.right_master_view,
            "semi-join step 4: reduced slave operand"));

        // Step 5: the master completes the join on the shared join columns.
        const std::int64_t t5 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(
            storage::Table joined,
            algebra::NaturalJoinOnShared(master_op.table, reduced));

        // Restore the canonical left++right column order expected upstream.
        std::vector<catalog::AttributeId> out_cols =
            node.left->OutputAttributes(cat());
        const std::vector<catalog::AttributeId> right_cols =
            node.right->OutputAttributes(cat());
        out_cols.insert(out_cols.end(), right_cols.begin(), right_cols.end());
        CISQP_ASSIGN_OR_RETURN(storage::Table out,
                               algebra::Project(joined, out_cols));
        Account(ex.master, out.row_count(), obs::NowMicros() - t5);
        return Located{std::move(out), ex.master};
      }
    }
    return InternalError("unknown execution mode");
  }

  const Cluster& cluster_;
  const authz::Policy& auths_;
  const planner::Assignment& assignment_;
  const ExecutionOptions& options_;
  std::vector<authz::Profile> profiles_;
  NetworkStats network_;
  std::map<catalog::ServerId, ServerLoad> load_;
};

Result<storage::Table> CentralizedRec(const Cluster& cluster,
                                      const plan::PlanNode& node) {
  switch (node.op) {
    case plan::PlanOp::kRelation:
      return cluster.TableOf(node.relation);
    case plan::PlanOp::kProject: {
      CISQP_ASSIGN_OR_RETURN(storage::Table child,
                             CentralizedRec(cluster, *node.left));
      return algebra::Project(child, node.projection, node.distinct);
    }
    case plan::PlanOp::kSelect: {
      CISQP_ASSIGN_OR_RETURN(storage::Table child,
                             CentralizedRec(cluster, *node.left));
      return algebra::Select(child, node.predicate);
    }
    case plan::PlanOp::kJoin: {
      CISQP_ASSIGN_OR_RETURN(storage::Table left,
                             CentralizedRec(cluster, *node.left));
      CISQP_ASSIGN_OR_RETURN(storage::Table right,
                             CentralizedRec(cluster, *node.right));
      return algebra::HashJoin(left, right, node.join_atoms);
    }
  }
  return InternalError("unknown plan operator");
}

}  // namespace

Result<ExecutionResult> DistributedExecutor::Execute(
    const plan::QueryPlan& plan, const planner::Assignment& assignment,
    const ExecutionOptions& options) const {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cluster_.catalog()));
  if (assignment.size() != static_cast<std::size_t>(plan.node_count())) {
    return InvalidArgumentError("assignment size does not match plan");
  }
  Run run(cluster_, auths_, plan, assignment, options);
  return run.Execute(*plan.root());
}

Result<storage::Table> ExecuteCentralized(const Cluster& cluster,
                                          const plan::QueryPlan& plan) {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cluster.catalog()));
  return CentralizedRec(cluster, *plan.root());
}

}  // namespace cisqp::exec
