#include "common/status.hpp"

namespace cisqp {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kUnauthorized: return "unauthorized";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInfeasible: return "infeasible";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnauthorizedError(std::string message) {
  return Status(StatusCode::kUnauthorized, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status InfeasibleError(std::string message) {
  return Status(StatusCode::kInfeasible, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::ostringstream oss;
  oss << "CISQP_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) oss << " — " << message;
  throw BadStatus(InternalError(oss.str()));
}

}  // namespace internal
}  // namespace cisqp
