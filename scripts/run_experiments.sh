#!/usr/bin/env bash
# Rebuilds the project, runs the full test suite, and regenerates every
# experiment (E1..E20), tee-ing the artifacts next to the repository root.
# Each bench binary also writes a machine-readable BENCH_<name>.json into
# artifacts/ (via CISQP_BENCH_OUT_DIR) for downstream plotting.
#
#   scripts/run_experiments.sh [--threads N] [build-dir]
#
# --threads N pins the parallelism of the chase / plan-search stages
# (default: hardware concurrency; results are identical at any setting).
set -euo pipefail

THREADS=""
if [ "${1:-}" = "--threads" ]; then
  THREADS="${2:?--threads requires a count}"
  shift 2
fi

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if [ -n "$THREADS" ]; then
  export CISQP_BENCH_THREADS="$THREADS"
  echo "bench parallelism: $THREADS thread(s)"
fi

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

ARTIFACT_DIR="$ROOT/artifacts"
mkdir -p "$ARTIFACT_DIR"
export CISQP_BENCH_OUT_DIR="$ARTIFACT_DIR"

: > bench_output.txt
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "### $b" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

# E15: a bounded differential fuzz campaign; BENCH_fuzz_throughput.json
# (scenarios/sec, oracle-vs-production wall-time ratio) lands in artifacts/.
echo "### cisqp-fuzz (E15)" | tee -a bench_output.txt
"$BUILD_DIR"/examples/cisqp-fuzz --seeds=500 2>&1 | tee -a bench_output.txt
echo | tee -a bench_output.txt

# Render the sample query profiles embedded in the artifacts (E13/E17) as
# markdown reports next to the JSON.
for artifact in "$ARTIFACT_DIR"/BENCH_obs_overhead.json \
                "$ARTIFACT_DIR"/BENCH_profile_feedback.json; do
  [ -f "$artifact" ] || continue
  scripts/profile2md.py "$artifact" "${artifact%.json}_profile.md" || true
done

echo "collected artifacts:"
ls -1 "$ARTIFACT_DIR"/BENCH_*.json "$ARTIFACT_DIR"/*_profile.md 2>/dev/null \
  || echo "  (none)"
echo "done: test_output.txt, bench_output.txt, artifacts/BENCH_*.json"
