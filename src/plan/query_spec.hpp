// QuerySpec: a bound select-from-where query (paper §2 query class).
//
// `SELECT A FROM R1 JOIN R2 ON c1 ... JOIN Rn ON cn-1 WHERE C` after name
// resolution: attribute ids for the select list, the chain of joined
// relations with their oriented equi-join atoms, and the conjunctive WHERE
// predicate. Produced by the SQL binder, consumed by the plan builder, and
// constructible directly for programmatic use.
#pragma once

#include <string>
#include <vector>

#include "algebra/expr.hpp"
#include "algebra/operators.hpp"
#include "catalog/catalog.hpp"

namespace cisqp::plan {

/// One `JOIN R ON ...` step. Atoms are oriented: `.left` is an attribute of
/// an earlier FROM entry, `.right` one of `relation`.
struct JoinStep {
  catalog::RelationId relation = catalog::kInvalidId;
  std::vector<algebra::EquiJoinAtom> atoms;
};

struct QuerySpec {
  /// SELECT DISTINCT: the final projection eliminates duplicates (the
  /// paper's algebra is set-based; plain SELECT keeps multiset semantics).
  bool distinct = false;
  std::vector<catalog::AttributeId> select_list;
  catalog::RelationId first_relation = catalog::kInvalidId;
  std::vector<JoinStep> joins;
  algebra::Predicate where;

  /// All relations in FROM order.
  std::vector<catalog::RelationId> Relations() const;

  /// Checks referential integrity: every select/where attribute belongs to a
  /// FROM relation, every join atom links a new relation to an earlier one,
  /// every step has at least one atom (cross joins are out of model).
  Status Validate(const catalog::Catalog& cat) const;

  /// Round-trippable SQL-ish rendering.
  std::string ToString(const catalog::Catalog& cat) const;
};

}  // namespace cisqp::plan
