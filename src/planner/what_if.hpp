// What-if analysis: minimal policy changes that make an infeasible query
// executable.
//
// For every (server, node-profile) pair of the plan, tries the single
// authorization `[profile.π ∪ profile.σ, profile.⋈] → server` and keeps the
// ones under which the paper's algorithm finds a safe assignment. Candidate
// grants are drawn from the plan's own profiles because Def. 3.3 matches
// join paths exactly — grants with other paths cannot affect this plan.
// Results are ranked by granted attribute count (a proxy for sensitivity;
// deployments can re-rank with domain knowledge).
#pragma once

#include "planner/safe_planner.hpp"

namespace cisqp::planner {

struct RepairOptions {
  /// Keep at most this many suggestions (0 = unlimited).
  std::size_t max_suggestions = 16;
  /// Planner options used when re-testing feasibility (third party etc.).
  SafePlannerOptions planner_options;
  /// Only consider grants to these servers (empty = all servers).
  std::vector<catalog::ServerId> candidate_servers;
};

struct RepairSuggestion {
  authz::Authorization grant;  ///< the single rule to add
  /// Join count of the resulting safe plan — cheaper plans first on ties.
  int joins_enabled = 0;
};

/// Single-grant repairs for `plan` under `auths`, sorted by ascending
/// attribute count. Empty when the plan is already feasible or no single
/// grant suffices.
Result<std::vector<RepairSuggestion>> SuggestRepairs(
    const catalog::Catalog& cat, const authz::AuthorizationSet& auths,
    const plan::QueryPlan& plan, const RepairOptions& options = {});

}  // namespace cisqp::planner
