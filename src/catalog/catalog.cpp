#include "catalog/catalog.hpp"

#include <algorithm>
#include <sstream>

namespace cisqp::catalog {

std::string_view ValueTypeName(ValueType t) noexcept {
  switch (t) {
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "unknown";
}

Result<ServerId> Catalog::AddServer(std::string_view name) {
  if (name.empty()) return InvalidArgumentError("server name must not be empty");
  if (server_names_.Contains(name)) {
    return AlreadyExistsError("server '" + std::string(name) + "' already registered");
  }
  const SymbolId sym = server_names_.Intern(name);
  CISQP_CHECK(sym == servers_.size());
  ServerDef def;
  def.id = sym;
  def.name = std::string(name);
  servers_.push_back(std::move(def));
  return static_cast<ServerId>(sym);
}

Result<RelationId> Catalog::AddRelation(std::string_view name, ServerId server,
                                        const std::vector<AttributeSpec>& attrs,
                                        const std::vector<std::string>& primary_key) {
  if (name.empty()) return InvalidArgumentError("relation name must not be empty");
  if (server >= servers_.size()) {
    return NotFoundError("unknown server id for relation '" + std::string(name) + "'");
  }
  if (attrs.empty()) {
    return InvalidArgumentError("relation '" + std::string(name) + "' needs at least one attribute");
  }
  if (relation_names_.Contains(name)) {
    return AlreadyExistsError("relation '" + std::string(name) + "' already registered");
  }
  // Validate attribute names before mutating anything (strong guarantee).
  for (const AttributeSpec& spec : attrs) {
    if (spec.name.empty()) {
      return InvalidArgumentError("attribute name must not be empty");
    }
    if (spec.name.find('.') != std::string::npos) {
      return InvalidArgumentError("attribute name '" + spec.name + "' must be bare (no dots)");
    }
    if (attribute_names_.Contains(spec.name)) {
      return AlreadyExistsError(
          "attribute '" + spec.name +
          "' already exists; the model requires globally unique bare names");
    }
  }
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    for (std::size_t j = i + 1; j < attrs.size(); ++j) {
      if (attrs[i].name == attrs[j].name) {
        return InvalidArgumentError("duplicate attribute '" + attrs[i].name +
                                    "' in relation '" + std::string(name) + "'");
      }
    }
  }
  for (const std::string& key_attr : primary_key) {
    const bool declared = std::any_of(attrs.begin(), attrs.end(),
        [&](const AttributeSpec& s) { return s.name == key_attr; });
    if (!declared) {
      return InvalidArgumentError("primary key attribute '" + key_attr +
                                  "' is not a column of relation '" + std::string(name) + "'");
    }
  }

  const SymbolId rel_sym = relation_names_.Intern(name);
  CISQP_CHECK(rel_sym == relations_.size());
  RelationDef rel;
  rel.id = rel_sym;
  rel.name = std::string(name);
  rel.server = server;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    const SymbolId attr_sym = attribute_names_.Intern(attrs[i].name);
    CISQP_CHECK(attr_sym == attributes_.size());
    AttributeDef attr;
    attr.id = attr_sym;
    attr.name = attrs[i].name;
    attr.type = attrs[i].type;
    attr.relation = rel.id;
    attr.position = i;
    attributes_.push_back(std::move(attr));
    rel.attributes.push_back(attr_sym);
    rel.attribute_set.Insert(attr_sym);
  }
  for (const std::string& key_attr : primary_key) {
    rel.primary_key.push_back(attribute_names_.Find(key_attr));
  }
  relations_.push_back(std::move(rel));
  servers_[server].relations.push_back(rel_sym);
  return static_cast<RelationId>(rel_sym);
}

Status Catalog::AddJoinEdge(AttributeId a, AttributeId b) {
  if (a >= attributes_.size() || b >= attributes_.size()) {
    return NotFoundError("join edge references an unknown attribute id");
  }
  if (a == b) return InvalidArgumentError("a join edge needs two distinct attributes");
  const AttributeDef& da = attributes_[a];
  const AttributeDef& db = attributes_[b];
  if (da.relation == db.relation) {
    return InvalidArgumentError("join edge between '" + da.name + "' and '" + db.name +
                                "' stays within one relation; self-joins are out of model");
  }
  if (da.type != db.type) {
    return InvalidArgumentError("join edge between '" + da.name + "' (" +
                                std::string(ValueTypeName(da.type)) + ") and '" + db.name +
                                "' (" + std::string(ValueTypeName(db.type)) +
                                ") has mismatched types");
  }
  JoinEdge edge{std::min(a, b), std::max(a, b)};
  if (std::find(join_edges_.begin(), join_edges_.end(), edge) != join_edges_.end()) {
    return AlreadyExistsError("join edge '" + da.name + " = " + db.name + "' already declared");
  }
  join_edges_.push_back(edge);
  return Status::Ok();
}

Status Catalog::AddJoinEdge(std::string_view a, std::string_view b) {
  CISQP_ASSIGN_OR_RETURN(AttributeId ida, FindAttribute(a));
  CISQP_ASSIGN_OR_RETURN(AttributeId idb, FindAttribute(b));
  return AddJoinEdge(ida, idb);
}

const ServerDef& Catalog::server(ServerId id) const {
  CISQP_CHECK_MSG(id < servers_.size(), "unknown server id " << id);
  return servers_[id];
}

const RelationDef& Catalog::relation(RelationId id) const {
  CISQP_CHECK_MSG(id < relations_.size(), "unknown relation id " << id);
  return relations_[id];
}

const AttributeDef& Catalog::attribute(AttributeId id) const {
  CISQP_CHECK_MSG(id < attributes_.size(), "unknown attribute id " << id);
  return attributes_[id];
}

Result<ServerId> Catalog::FindServer(std::string_view name) const {
  const SymbolId id = server_names_.Find(name);
  if (id == kInvalidSymbol) {
    return NotFoundError("unknown server '" + std::string(name) + "'");
  }
  return static_cast<ServerId>(id);
}

Result<RelationId> Catalog::FindRelation(std::string_view name) const {
  const SymbolId id = relation_names_.Find(name);
  if (id == kInvalidSymbol) {
    return NotFoundError("unknown relation '" + std::string(name) + "'");
  }
  return static_cast<RelationId>(id);
}

Result<AttributeId> Catalog::FindAttribute(std::string_view name) const {
  const std::size_t dot = name.find('.');
  if (dot == std::string_view::npos) {
    const SymbolId id = attribute_names_.Find(name);
    if (id == kInvalidSymbol) {
      return NotFoundError("unknown attribute '" + std::string(name) + "'");
    }
    return static_cast<AttributeId>(id);
  }
  const std::string_view rel_name = name.substr(0, dot);
  const std::string_view attr_name = name.substr(dot + 1);
  CISQP_ASSIGN_OR_RETURN(RelationId rel, FindRelation(rel_name));
  const SymbolId id = attribute_names_.Find(attr_name);
  if (id == kInvalidSymbol || attributes_[id].relation != rel) {
    return NotFoundError("relation '" + std::string(rel_name) +
                         "' has no attribute '" + std::string(attr_name) + "'");
  }
  return static_cast<AttributeId>(id);
}

std::string Catalog::QualifiedName(AttributeId id) const {
  const AttributeDef& attr = attribute(id);
  return relation(attr.relation).name + "." + attr.name;
}

bool Catalog::Joinable(AttributeId a, AttributeId b) const noexcept {
  const JoinEdge probe{std::min(a, b), std::max(a, b)};
  return std::find(join_edges_.begin(), join_edges_.end(), probe) != join_edges_.end();
}

std::vector<JoinEdge> Catalog::EdgesOfRelation(RelationId rel) const {
  std::vector<JoinEdge> out;
  for (const JoinEdge& e : join_edges_) {
    if (attribute(e.left).relation == rel || attribute(e.right).relation == rel) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Catalog::DebugString() const {
  std::ostringstream oss;
  for (const ServerDef& s : servers_) {
    oss << "server " << s.name << "\n";
    for (RelationId rid : s.relations) {
      const RelationDef& r = relations_[rid];
      oss << "  " << r.name << "(";
      for (std::size_t i = 0; i < r.attributes.size(); ++i) {
        const AttributeDef& a = attributes_[r.attributes[i]];
        if (i != 0) oss << ", ";
        const bool is_key = std::find(r.primary_key.begin(), r.primary_key.end(),
                                      a.id) != r.primary_key.end();
        oss << (is_key ? "*" : "") << a.name << ":" << ValueTypeName(a.type);
      }
      oss << ")\n";
    }
  }
  for (const JoinEdge& e : join_edges_) {
    oss << "join " << QualifiedName(e.left) << " = " << QualifiedName(e.right) << "\n";
  }
  return oss.str();
}

}  // namespace cisqp::catalog
