// Columnar table layout: typed column vectors with null bitmaps and
// per-column string dictionaries (DESIGN.md §12).
//
// A ColumnarTable carries the same header as a row Table — the ordered list
// of catalog attributes with their types — but stores cells column-wise:
// int64/double columns as contiguous value vectors, string columns as
// dictionary codes into a per-column intern table (with the hash of every
// dictionary entry cached, so join/distinct hashing never re-hashes string
// bytes). NULLs live in a separate bitmap per column; the data slot of a
// NULL cell holds a zero sentinel that must never be read.
//
// The layout exists for the vectorized kernels in algebra/vectorized:
// selection vectors index rows, gather lists materialize operator outputs in
// one pass, and the wire size of a table is maintained incrementally so the
// execution engine accounts a shipment in O(columns) instead of O(cells).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.hpp"
#include "common/thread_pool.hpp"
#include "storage/table.hpp"
#include "storage/value.hpp"

namespace cisqp::storage {

/// Row ids into a ColumnarTable, in output order. The unit the vectorized
/// kernels operate on: σ narrows one, ⋈ emits gather lists of them.
using SelectionVector = std::vector<std::uint32_t>;

/// One typed column: value vector + null bitmap (+ dictionary for strings).
class ColumnVector {
 public:
  explicit ColumnVector(catalog::ValueType type) : type_(type) {}

  catalog::ValueType type() const noexcept { return type_; }
  std::size_t size() const noexcept { return size_; }

  void Reserve(std::size_t n);

  /// Appends one cell. Precondition: `v` is NULL or matches type().
  void Append(const Value& v);
  void AppendNull();

  bool IsNull(std::size_t i) const noexcept {
    return (null_words_[i >> 6] >> (i & 63)) & 1u;
  }

  // Typed accessors; precondition: !IsNull(i) and the matching type().
  std::int64_t Int64At(std::size_t i) const noexcept { return ints_[i]; }
  double DoubleAt(std::size_t i) const noexcept { return doubles_[i]; }
  const std::string& StringAt(std::size_t i) const { return dict_[codes_[i]]; }
  std::uint32_t CodeAt(std::size_t i) const noexcept { return codes_[i]; }

  /// The cell as a tagged Value (materialization path; allocates for strings).
  Value ValueAt(std::size_t i) const;

  /// Type-tagged cell hash, consistent across columns and tables: equal cells
  /// (per CellsEqual) hash equally. String hashes come from the dictionary
  /// cache — O(1) per cell.
  std::size_t HashAt(std::size_t i) const noexcept;

  /// Cell equality with Value::operator== semantics: NULL equals NULL (the
  /// Distinct contract), differing types never compare equal, otherwise
  /// typed value equality. Join kernels filter NULL keys before calling.
  bool CellsEqual(std::size_t i, const ColumnVector& other,
                  std::size_t j) const noexcept;

  /// Wire size of cell `i` under the Value::WireSizeBytes formula.
  std::size_t WireSizeAt(std::size_t i) const noexcept;

  /// Total wire size of the column, maintained incrementally on append.
  std::size_t wire_bytes() const noexcept { return wire_bytes_; }

  /// Bulk append of `src`'s cells at `ids`, in order. Strings remap through
  /// a per-call code translation table — one intern per *distinct* source
  /// value, not per gathered cell.
  void GatherFrom(const ColumnVector& src, const SelectionVector& ids);

  /// GatherFrom fanned across `pool` in morsels of `morsel_rows` (rounded up
  /// to a multiple of 64 so each morsel owns whole null-bitmap words).
  /// Preconditions: the column is empty, and `morsel_rows > 0`. Produces a
  /// column bit-identical to the sequential GatherFrom: the dictionary is
  /// interned serially (in source-code order) before the parallel fill, and
  /// the wire size is reduced from per-morsel partials in morsel order.
  void GatherFromParallel(const ColumnVector& src, const SelectionVector& ids,
                          ThreadPool& pool, std::size_t morsel_rows);

  const std::vector<std::string>& dictionary() const noexcept { return dict_; }

 private:
  std::uint32_t InternString(const std::string& s);

  catalog::ValueType type_;
  std::size_t size_ = 0;
  std::size_t wire_bytes_ = 0;
  std::vector<std::uint64_t> null_words_;  ///< bit set = NULL
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::uint32_t> codes_;       ///< indexes into dict_
  std::vector<std::string> dict_;          ///< per-column intern table
  std::vector<std::size_t> dict_hash_;     ///< cached hash per dict entry
  std::unordered_map<std::string, std::uint32_t> dict_index_;
};

/// An in-memory relation instance in columnar layout. Interconvertible with
/// the row Table, which stays the external compatibility surface.
class ColumnarTable {
 public:
  ColumnarTable() = default;
  explicit ColumnarTable(std::vector<Column> header);
  /// Assembles a table from independently gathered columns (join outputs).
  /// All columns must have the same size.
  ColumnarTable(std::vector<Column> header, std::vector<ColumnVector> cols);

  /// Converts a validated row table. Cell types were checked on the row side.
  static ColumnarTable FromRows(const Table& rows);

  /// Materializes back into a row table (same header, same row order).
  Table MaterializeRows() const;

  const std::vector<Column>& columns() const noexcept { return header_; }
  std::size_t column_count() const noexcept { return header_.size(); }
  std::size_t row_count() const noexcept { return row_count_; }
  bool empty() const noexcept { return row_count_ == 0; }

  const ColumnVector& column(std::size_t i) const { return cols_[i]; }

  /// First column carrying `attribute`, if present — O(1) via the
  /// precomputed attribute→column map.
  std::optional<std::size_t> ColumnIndex(catalog::AttributeId attribute) const;

  /// Appends one row of validated cells.
  void AppendRow(const Row& row);

  /// Total wire size under the Table::WireSizeBytes formula; cached —
  /// O(columns), never walks cells.
  std::size_t WireSizeBytes() const noexcept;

 private:
  std::vector<Column> header_;
  std::vector<ColumnVector> cols_;
  std::unordered_map<catalog::AttributeId, std::size_t> index_;
  std::size_t row_count_ = 0;
};

}  // namespace cisqp::storage
