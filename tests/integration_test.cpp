// End-to-end integration: SQL text → bound spec → optimized plan → safe
// executor assignment → distributed execution with runtime enforcement →
// result equality with centralized evaluation. Swept over random federations
// (TEST_P) and exercised on the paper's scenario.
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace cisqp {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Server;

TEST(IntegrationTest, PaperScenarioEndToEnd) {
  MedicalFixture fix;
  exec::Cluster cluster(fix.cat);
  Rng rng(99);
  ASSERT_OK(workload::MedicalScenario::PopulateCluster(
      cluster, workload::MedicalScenario::DataConfig{800, 0.35, 0.55, 40}, rng));

  // Step 1 of two-step optimization: a cost-aware plan.
  const plan::StatsCatalog stats = workload::MedicalScenario::ComputeStats(cluster);
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix.cat, workload::MedicalScenario::kPaperQuery));
  ASSERT_OK_AND_ASSIGN(plan::QueryPlan plan,
                       plan::PlanBuilder(fix.cat, &stats).Build(spec));

  // Step 2: the paper's safe assignment.
  planner::SafePlanner planner(fix.cat, fix.auths);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, planner.Plan(plan));
  ASSERT_OK(planner::VerifyAssignment(fix.cat, fix.auths, plan, sp.assignment));

  // Execute distributed, verify against centralized.
  exec::DistributedExecutor executor(cluster, fix.auths);
  ASSERT_OK_AND_ASSIGN(exec::ExecutionResult result,
                       executor.Execute(plan, sp.assignment));
  ASSERT_OK_AND_ASSIGN(storage::Table reference,
                       exec::ExecuteCentralized(cluster, plan));
  EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, reference));
  EXPECT_GT(result.table.row_count(), 0u);
}

TEST(IntegrationTest, SelectionQueriesCarrySigmaThroughPlanning) {
  MedicalFixture fix;
  // Selecting on Disease pushes Disease into Rσ; the semi-join shipping the
  // Hospital side must then expose Disease in its profile. Plan and verify.
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix.cat,
                        "SELECT Patient, Plan FROM Insurance JOIN Hospital "
                        "ON Holder = Patient WHERE Disease = 'disease_3'"));
  ASSERT_OK_AND_ASSIGN(plan::QueryPlan plan, plan::PlanBuilder(fix.cat).Build(spec));
  planner::SafePlanner planner(fix.cat, fix.auths);
  ASSERT_OK_AND_ASSIGN(planner::PlanningReport report, planner.Analyze(plan));
  if (report.feasible) {
    EXPECT_OK(planner::VerifyAssignment(fix.cat, fix.auths, plan,
                                        report.plan->assignment));
  }
}

struct EndToEndCase {
  std::uint64_t seed;
  std::size_t query_relations;
  double density;
};

class EndToEndSweep : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EndToEndSweep, SafePlansExecuteCorrectlyEverywhere) {
  const EndToEndCase& param = GetParam();
  Rng rng(param.seed);

  workload::FederationConfig fed_config;
  fed_config.servers = 4;
  fed_config.relations = 6;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);

  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = param.density;
  authz_config.path_grants_per_server = 4;
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);

  exec::Cluster cluster(fed.catalog);
  workload::DataConfig data_config;
  data_config.min_rows = 30;
  data_config.max_rows = 120;
  ASSERT_OK(workload::PopulateCluster(cluster, fed, data_config, rng));
  const plan::StatsCatalog stats = workload::ComputeStats(cluster);

  int feasible_count = 0;
  for (int q = 0; q < 10; ++q) {
    workload::QueryConfig query_config;
    query_config.relations = param.query_relations;
    auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
    ASSERT_OK(spec.status());
    plan::BuildOptions build_options;
    build_options.join_order = (q % 2 == 0) ? plan::JoinOrderPolicy::kFromClause
                                            : plan::JoinOrderPolicy::kGreedyCost;
    auto built = plan::PlanBuilder(fed.catalog, &stats).Build(*spec, build_options);
    ASSERT_OK(built.status());
    const plan::QueryPlan& plan = *built;

    planner::SafePlanner planner(fed.catalog, auths);
    ASSERT_OK_AND_ASSIGN(planner::PlanningReport report, planner.Analyze(plan));
    if (!report.feasible) continue;
    ++feasible_count;

    // Safe plan → runtime enforcement must never fire, and the distributed
    // result must equal the centralized one.
    exec::DistributedExecutor executor(cluster, auths);
    ASSERT_OK_AND_ASSIGN(exec::ExecutionResult result,
                         executor.Execute(plan, report.plan->assignment));
    ASSERT_OK_AND_ASSIGN(storage::Table reference,
                         exec::ExecuteCentralized(cluster, plan));
    EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, reference))
        << spec->ToString(fed.catalog);
  }
  // With dense grants most queries should be feasible; the assertion guards
  // against the sweep silently testing nothing.
  if (param.density >= 0.9) {
    EXPECT_GT(feasible_count, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomFederations, EndToEndSweep,
    ::testing::Values(EndToEndCase{51, 2, 0.2}, EndToEndCase{52, 2, 0.9},
                      EndToEndCase{53, 3, 0.3}, EndToEndCase{54, 3, 0.9},
                      EndToEndCase{55, 4, 0.5}, EndToEndCase{56, 4, 0.9},
                      EndToEndCase{57, 5, 0.7}, EndToEndCase{58, 5, 0.95},
                      EndToEndCase{59, 3, 0.05}, EndToEndCase{60, 2, 1.0}),
    [](const ::testing::TestParamInfo<EndToEndCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace cisqp
