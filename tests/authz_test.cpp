// Tests for authorizations (Def. 3.1) and the authorized-view test
// (Def. 3.3), exercising every rule of the paper's Fig. 3 and the denial
// example of §3.2.
#include <gtest/gtest.h>

#include "authz/authorization.hpp"
#include "test_util.hpp"

namespace cisqp::authz {
namespace {

using cisqp::testing::Attr;
using cisqp::testing::Attrs;
using cisqp::testing::MedicalFixture;
using cisqp::testing::Path;
using cisqp::testing::Relation;
using cisqp::testing::Server;

class AuthzTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;

  Profile MakeProfile(const std::vector<std::string>& pi,
                      const std::vector<std::pair<std::string, std::string>>& join,
                      const std::vector<std::string>& sigma) const {
    return Profile{Attrs(fix_.cat, pi), Path(fix_.cat, join), Attrs(fix_.cat, sigma)};
  }
};

TEST_F(AuthzTest, Fig3InstallsFifteenRules) {
  EXPECT_EQ(fix_.auths.size(), 15u);
  EXPECT_EQ(fix_.auths.ForServer(Server(fix_.cat, "S_I")).size(), 3u);
  EXPECT_EQ(fix_.auths.ForServer(Server(fix_.cat, "S_H")).size(), 4u);
  EXPECT_EQ(fix_.auths.ForServer(Server(fix_.cat, "S_N")).size(), 7u);
  EXPECT_EQ(fix_.auths.ForServer(Server(fix_.cat, "S_D")).size(), 1u);
  EXPECT_EQ(fix_.auths.All().size(), 15u);
}

TEST_F(AuthzTest, EachServerSeesItsOwnRelation) {
  EXPECT_TRUE(fix_.auths.CanView(
      Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Insurance")),
      Server(fix_.cat, "S_I")));
  EXPECT_TRUE(fix_.auths.CanView(
      Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Hospital")),
      Server(fix_.cat, "S_H")));
  EXPECT_TRUE(fix_.auths.CanView(
      Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Nat_registry")),
      Server(fix_.cat, "S_N")));
  EXPECT_TRUE(fix_.auths.CanView(
      Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Disease_list")),
      Server(fix_.cat, "S_D")));
}

TEST_F(AuthzTest, SubsetOfAttributesIsAuthorized) {
  // Def. 3.3 condition 1 uses ⊆: viewing fewer attributes is allowed.
  EXPECT_TRUE(fix_.auths.CanView(MakeProfile({"Plan"}, {}, {}),
                                 Server(fix_.cat, "S_I")));
  EXPECT_TRUE(fix_.auths.CanView(MakeProfile({"Holder"}, {}, {"Plan"}),
                                 Server(fix_.cat, "S_I")));
}

TEST_F(AuthzTest, JoinPathMustMatchExactly) {
  // §3.2 example: S_D may view Disease_list but NOT the join with Hospital —
  // the result carries the information of which illnesses occur in Hospital.
  const Profile denied =
      MakeProfile({"Illness", "Treatment"}, {{"Illness", "Disease"}}, {});
  EXPECT_FALSE(fix_.auths.CanView(denied, Server(fix_.cat, "S_D")));
  // The same attributes with an empty path are fine (authorization 15).
  EXPECT_TRUE(fix_.auths.CanView(MakeProfile({"Illness", "Treatment"}, {}, {}),
                                 Server(fix_.cat, "S_D")));
}

TEST_F(AuthzTest, ShorterPathIsNotImplied) {
  // Authorization 2 gives S_I the path {(Holder, Patient)}; the same
  // attributes with an empty path release *more* tuples and are not implied.
  EXPECT_TRUE(fix_.auths.CanView(
      MakeProfile({"Holder", "Plan", "Patient", "Physician"},
                  {{"Holder", "Patient"}}, {}),
      Server(fix_.cat, "S_I")));
  EXPECT_FALSE(fix_.auths.CanView(
      MakeProfile({"Patient", "Physician"}, {}, {}), Server(fix_.cat, "S_I")));
}

TEST_F(AuthzTest, LongerPathIsNotImpliedEither) {
  // Extending the authorized path adds association information (§3.1 note).
  EXPECT_FALSE(fix_.auths.CanView(
      MakeProfile({"Holder", "Plan"},
                  {{"Holder", "Patient"}, {"Patient", "Citizen"}}, {}),
      Server(fix_.cat, "S_I")));
}

TEST_F(AuthzTest, SigmaCountsAsVisible) {
  // Def. 3.3 condition 1 covers Rπ ∪ Rσ: selecting on an attribute you may
  // not view is a violation even if it is projected away.
  const Profile sigma_leak = MakeProfile({"Illness", "Treatment"}, {}, {"Disease"});
  EXPECT_FALSE(fix_.auths.CanView(sigma_leak, Server(fix_.cat, "S_D")));
}

TEST_F(AuthzTest, PathConditionOrderInsensitive) {
  // Authorization 7 of Fig. 3 is written {(Patient, Citizen), (Citizen,
  // Holder)}; the profile arrives with flipped spellings.
  const Profile p = MakeProfile(
      {"Patient", "Holder", "Plan", "Citizen", "HealthAid"},
      {{"Citizen", "Patient"}, {"Holder", "Citizen"}}, {});
  EXPECT_TRUE(fix_.auths.CanView(p, Server(fix_.cat, "S_H")));
}

TEST_F(AuthzTest, Fig3SpecificDecisions) {
  // Authorization 3: S_I sees treatments of its holders without the illness.
  EXPECT_TRUE(fix_.auths.CanView(
      MakeProfile({"Holder", "Plan", "Treatment"},
                  {{"Holder", "Patient"}, {"Disease", "Illness"}}, {}),
      Server(fix_.cat, "S_I")));
  // ...but not the Disease attribute on that path.
  EXPECT_FALSE(fix_.auths.CanView(
      MakeProfile({"Holder", "Disease"},
                  {{"Holder", "Patient"}, {"Disease", "Illness"}}, {}),
      Server(fix_.cat, "S_I")));
  // Authorization 9: S_N may view all of Insurance outright.
  EXPECT_TRUE(fix_.auths.CanView(MakeProfile({"Holder", "Plan"}, {}, {}),
                                 Server(fix_.cat, "S_N")));
  // S_I may NOT view Nat_registry outright.
  EXPECT_FALSE(fix_.auths.CanView(MakeProfile({"Citizen", "HealthAid"}, {}, {}),
                                  Server(fix_.cat, "S_I")));
}

TEST_F(AuthzTest, UnknownServerSeesNothing) {
  EXPECT_FALSE(fix_.auths.CanView(MakeProfile({"Plan"}, {}, {}), 99));
}

TEST_F(AuthzTest, AddValidatesDef31) {
  AuthorizationSet auths;
  // Attributes from two relations need a join path (Def. 3.1(2)).
  EXPECT_EQ(auths.Add(fix_.cat, "S_I", {"Holder", "Patient"}, {}).code(),
            StatusCode::kInvalidArgument);
  // Path must include the relation owning every granted attribute.
  EXPECT_EQ(auths.Add(fix_.cat, "S_I", {"Holder", "Treatment"},
                      {{"Holder", "Patient"}})
                .code(),
            StatusCode::kInvalidArgument);
  // Path atoms may not stay within one relation.
  EXPECT_EQ(auths.Add(fix_.cat, "S_I", {"Holder"}, {{"Holder", "Plan"}}).code(),
            StatusCode::kInvalidArgument);
  // Empty attribute set rejected.
  EXPECT_EQ(auths.Add(fix_.cat, "S_I", {}, {}).code(),
            StatusCode::kInvalidArgument);
  // Unknown names.
  EXPECT_EQ(auths.Add(fix_.cat, "S_X", {"Holder"}, {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(auths.Add(fix_.cat, "S_I", {"Nope"}, {}).code(), StatusCode::kNotFound);
}

TEST_F(AuthzTest, DuplicateRuleRejected) {
  AuthorizationSet auths;
  ASSERT_OK(auths.Add(fix_.cat, "S_I", {"Holder", "Plan"}, {}));
  EXPECT_EQ(auths.Add(fix_.cat, "S_I", {"Plan", "Holder"}, {}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(auths.size(), 1u);
}

TEST_F(AuthzTest, ContainsFindsExactRules) {
  const Authorization probe{Attrs(fix_.cat, {"Holder", "Plan"}), {},
                            Server(fix_.cat, "S_I")};
  EXPECT_TRUE(fix_.auths.Contains(probe));
  const Authorization missing{Attrs(fix_.cat, {"Holder"}), {},
                              Server(fix_.cat, "S_I")};
  EXPECT_FALSE(fix_.auths.Contains(missing));
}

TEST_F(AuthzTest, MinimizeDropsSubsumedRules) {
  AuthorizationSet auths;
  ASSERT_OK(auths.Add(fix_.cat, "S_I", {"Holder"}, {}));
  ASSERT_OK(auths.Add(fix_.cat, "S_I", {"Holder", "Plan"}, {}));
  ASSERT_OK(auths.Add(fix_.cat, "S_H", {"Patient"}, {}));
  EXPECT_EQ(auths.Minimize(), 1u);
  EXPECT_EQ(auths.size(), 2u);
  // The surviving superset still authorizes the subset view.
  EXPECT_TRUE(auths.CanView(MakeProfile({"Holder"}, {}, {}), Server(fix_.cat, "S_I")));
}

TEST_F(AuthzTest, ToStringListsRules) {
  const std::string dump = fix_.auths.ToString(fix_.cat);
  EXPECT_NE(dump.find("S_D"), std::string::npos);
  EXPECT_NE(dump.find("Treatment"), std::string::npos);
  EXPECT_NE(dump.find("->"), std::string::npos);
}

TEST_F(AuthzTest, SingleRelationGrantWithInstanceRestrictionPath) {
  // Instance-based restriction (paper §3.1): attributes of one relation with
  // a non-empty path touching that relation are legal (e.g. authorization 5
  // restricted to Insurance attrs only).
  AuthorizationSet auths;
  ASSERT_OK(auths.Add(fix_.cat, "S_H", {"Patient", "Disease"},
                      {{"Patient", "Holder"}}));
  EXPECT_TRUE(auths.CanView(
      MakeProfile({"Patient", "Disease"}, {{"Patient", "Holder"}}, {}),
      Server(fix_.cat, "S_H")));
}

}  // namespace
}  // namespace cisqp::authz
