#include "exec/network.hpp"

#include <sstream>

namespace cisqp::exec {

void NetworkStats::Record(TransferRecord record) {
  total_bytes_ += record.bytes;
  total_rows_ += record.rows;
  link_bytes_[{record.from, record.to}] += record.bytes;
  transfers_.push_back(std::move(record));
}

std::string NetworkStats::Summary(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << total_messages() << " transfer(s), " << total_rows_ << " row(s), "
      << total_bytes_ << " byte(s)\n";
  for (const auto& [link, bytes] : link_bytes_) {
    oss << "  " << cat.server(link.first).name << " -> "
        << cat.server(link.second).name << ": " << bytes << " byte(s)\n";
  }
  for (const TransferRecord& t : transfers_) {
    oss << "  n" << t.node_id << " " << cat.server(t.from).name << " -> "
        << cat.server(t.to).name << " " << t.rows << " row(s), " << t.bytes
        << " byte(s): " << t.description << "\n";
  }
  return oss.str();
}

}  // namespace cisqp::exec
