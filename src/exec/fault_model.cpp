#include "exec/fault_model.hpp"

#include <algorithm>
#include <charconv>

#include "common/strings.hpp"

namespace cisqp::exec {
namespace {

/// SplitMix64 finalizer: one well-mixed 64-bit word from a seed word.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform draw in [0,1) keyed by (seed, link, attempt).
double LinkRoll(std::uint64_t seed, catalog::ServerId from,
                catalog::ServerId to, std::uint64_t attempt) {
  std::uint64_t x = seed;
  x = Mix64(x ^ (static_cast<std::uint64_t>(from) + 1) * 0x9e3779b97f4a7c15ull);
  x = Mix64(x ^ (static_cast<std::uint64_t>(to) + 1) * 0xbf58476d1ce4e5b9ull);
  x = Mix64(x ^ attempt);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

ShipFate FaultModel::OnShip(catalog::ServerId from, catalog::ServerId to,
                            std::int64_t now_us) {
  // Outages dominate the link roll: a dark endpoint fails the attempt
  // regardless of link luck, permanently when the window never closes.
  for (const OutageWindow& w : options_.outages) {
    if (w.server != from && w.server != to) continue;
    if (now_us < w.start_us) continue;
    if (w.permanent()) return ShipFate{ShipOutcome::kServerDown, w.server};
    if (now_us < w.end_us) {
      return ShipFate{ShipOutcome::kTransientFault, w.server};
    }
  }
  if (options_.drop_probability > 0.0) {
    std::uint64_t attempt = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      attempt = ++attempts_[{from, to}];
    }
    if (LinkRoll(options_.seed, from, to, attempt) <
        options_.drop_probability) {
      return ShipFate{ShipOutcome::kTransientFault, catalog::kInvalidId};
    }
  }
  return ShipFate{ShipOutcome::kDelivered, catalog::kInvalidId};
}

bool FaultModel::IsPermanentlyDown(catalog::ServerId server,
                                   std::int64_t now_us) const {
  for (const OutageWindow& w : options_.outages) {
    if (w.server == server && w.permanent() && now_us >= w.start_us) {
      return true;
    }
  }
  return false;
}

std::vector<catalog::ServerId> FaultModel::PermanentlyDown(
    std::int64_t now_us) const {
  std::vector<catalog::ServerId> down;
  for (const OutageWindow& w : options_.outages) {
    if (w.permanent() && now_us >= w.start_us) down.push_back(w.server);
  }
  std::sort(down.begin(), down.end());
  down.erase(std::unique(down.begin(), down.end()), down.end());
  return down;
}

Result<FaultModelOptions> FaultSpec::Resolve(
    const catalog::Catalog& cat) const {
  FaultModelOptions options;
  options.seed = seed;
  options.drop_probability = drop_probability;
  for (const NamedOutage& o : outages) {
    CISQP_ASSIGN_OR_RETURN(const catalog::ServerId server,
                           cat.FindServer(o.server));
    options.outages.push_back(OutageWindow{server, o.start_us, o.end_us});
  }
  return options;
}

namespace {

Result<std::int64_t> ParseInt64(std::string_view text, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value < 0) {
    return InvalidArgumentError("fault spec: bad " + std::string(what) +
                                " '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace

Result<FaultSpec> ParseFaultSpec(std::string_view text) {
  FaultSpec spec;
  for (std::string_view part : SplitString(text, ',')) {
    part = TrimWhitespace(part);
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("fault spec: expected key=value, got '" +
                                  std::string(part) + "'");
    }
    const std::string_view key = part.substr(0, eq);
    const std::string_view value = part.substr(eq + 1);
    if (key == "seed") {
      CISQP_ASSIGN_OR_RETURN(const std::int64_t seed,
                             ParseInt64(value, "seed"));
      spec.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "drop") {
      char* end = nullptr;
      const std::string copy(value);
      const double p = std::strtod(copy.c_str(), &end);
      if (end != copy.c_str() + copy.size() || p < 0.0 || p > 1.0) {
        return InvalidArgumentError("fault spec: drop must be in [0,1], got '" +
                                    copy + "'");
      }
      spec.drop_probability = p;
    } else if (key == "down" || key == "kill") {
      const std::size_t at = value.find('@');
      if (at == std::string_view::npos || at == 0) {
        return InvalidArgumentError(
            "fault spec: expected " + std::string(key) + "=NAME@TIME, got '" +
            std::string(value) + "'");
      }
      FaultSpec::NamedOutage outage;
      outage.server = std::string(value.substr(0, at));
      const std::string_view when = value.substr(at + 1);
      if (key == "kill") {
        CISQP_ASSIGN_OR_RETURN(outage.start_us, ParseInt64(when, "kill time"));
        outage.end_us = kNeverRecovers;
      } else {
        const std::size_t dots = when.find("..");
        if (dots == std::string_view::npos) {
          return InvalidArgumentError(
              "fault spec: expected down=NAME@START..END, got '" +
              std::string(value) + "'");
        }
        CISQP_ASSIGN_OR_RETURN(outage.start_us,
                               ParseInt64(when.substr(0, dots), "down start"));
        CISQP_ASSIGN_OR_RETURN(outage.end_us,
                               ParseInt64(when.substr(dots + 2), "down end"));
        if (outage.end_us <= outage.start_us) {
          return InvalidArgumentError("fault spec: empty down window '" +
                                      std::string(value) + "'");
        }
      }
      spec.outages.push_back(std::move(outage));
    } else {
      return InvalidArgumentError("fault spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  return spec;
}

}  // namespace cisqp::exec
