#include "planner/exhaustive.hpp"

#include <algorithm>
#include <map>

#include "planner/verifier.hpp"

namespace cisqp::planner {
namespace {

/// One fully assigned subtree: where its result lives plus the executors of
/// every node inside it.
struct SubPlan {
  catalog::ServerId server = catalog::kInvalidId;
  std::map<int, Executor> executors;
};

class Enumerator {
 public:
  Enumerator(const catalog::Catalog& cat, const ExhaustiveOptions& options)
      : cat_(cat), options_(options) {}

  Result<std::vector<SubPlan>> Enumerate(const plan::PlanNode& node) {
    switch (node.op) {
      case plan::PlanOp::kRelation: {
        const catalog::ServerId home = cat_.relation(node.relation).server;
        SubPlan sub;
        sub.server = home;
        sub.executors[node.id] =
            Executor{home, std::nullopt, ExecutionMode::kLocal, FromChild::kSelf};
        return std::vector<SubPlan>{std::move(sub)};
      }
      case plan::PlanOp::kProject:
      case plan::PlanOp::kSelect: {
        CISQP_ASSIGN_OR_RETURN(std::vector<SubPlan> children,
                               Enumerate(*node.left));
        for (SubPlan& sub : children) {
          sub.executors[node.id] = Executor{sub.server, std::nullopt,
                                            ExecutionMode::kLocal, FromChild::kLeft};
        }
        return children;
      }
      case plan::PlanOp::kJoin: {
        CISQP_ASSIGN_OR_RETURN(std::vector<SubPlan> lefts, Enumerate(*node.left));
        CISQP_ASSIGN_OR_RETURN(std::vector<SubPlan> rights, Enumerate(*node.right));
        std::vector<SubPlan> out;
        for (const SubPlan& l : lefts) {
          for (const SubPlan& r : rights) {
            // The four Def. 4.1 modes; semi-joins need distinct servers.
            AppendMode(out, node, l, r,
                       Executor{l.server, std::nullopt,
                                ExecutionMode::kRegularJoin, FromChild::kLeft});
            AppendMode(out, node, l, r,
                       Executor{r.server, std::nullopt,
                                ExecutionMode::kRegularJoin, FromChild::kRight});
            if (l.server != r.server) {
              AppendMode(out, node, l, r,
                         Executor{l.server, r.server,
                                  ExecutionMode::kSemiJoin, FromChild::kLeft});
              AppendMode(out, node, l, r,
                         Executor{r.server, l.server,
                                  ExecutionMode::kSemiJoin, FromChild::kRight});
            }
            if (explored_ > options_.max_explored) {
              return ResourceExhaustedError(
                  "exhaustive enumeration exceeded max_explored=" +
                  std::to_string(options_.max_explored));
            }
          }
        }
        return out;
      }
    }
    return InternalError("unknown plan operator");
  }

  std::size_t explored() const noexcept { return explored_; }

 private:
  void AppendMode(std::vector<SubPlan>& out, const plan::PlanNode& node,
                  const SubPlan& l, const SubPlan& r, Executor ex) {
    ++explored_;
    SubPlan sub;
    sub.server = ex.master;
    sub.executors = l.executors;
    sub.executors.insert(r.executors.begin(), r.executors.end());
    sub.executors[node.id] = ex;
    out.push_back(std::move(sub));
  }

  const catalog::Catalog& cat_;
  const ExhaustiveOptions& options_;
  std::size_t explored_ = 0;
};

}  // namespace

Result<ExhaustiveResult> EnumerateSafeAssignments(
    const catalog::Catalog& cat, const authz::Policy& auths,
    const plan::QueryPlan& plan, const ExhaustiveOptions& options) {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cat));

  Enumerator enumerator(cat, options);
  CISQP_ASSIGN_OR_RETURN(std::vector<SubPlan> subplans,
                         enumerator.Enumerate(*plan.root()));

  ExhaustiveResult result;
  result.explored = enumerator.explored();
  for (const SubPlan& sub : subplans) {
    Assignment assignment(plan.node_count());
    for (const auto& [id, ex] : sub.executors) assignment.Set(id, ex);
    // Safety is judged by the independent release-based verifier, not by the
    // planner's candidate logic — that independence is the point.
    CISQP_ASSIGN_OR_RETURN(std::vector<Release> releases,
                           EnumerateReleases(cat, plan, assignment));
    if (!FindViolations(auths, releases).empty()) continue;
    result.feasible_root_servers.push_back(sub.server);
    if (options.max_assignments == 0 ||
        result.safe_assignments.size() < options.max_assignments) {
      result.safe_assignments.push_back(std::move(assignment));
    }
  }
  std::sort(result.feasible_root_servers.begin(),
            result.feasible_root_servers.end());
  result.feasible_root_servers.erase(
      std::unique(result.feasible_root_servers.begin(),
                  result.feasible_root_servers.end()),
      result.feasible_root_servers.end());
  return result;
}

}  // namespace cisqp::planner
