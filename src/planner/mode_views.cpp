#include "planner/mode_views.hpp"

namespace cisqp::planner {

authz::JoinPath AtomsToJoinPath(const std::vector<algebra::EquiJoinAtom>& atoms) {
  std::vector<authz::JoinAtom> out;
  out.reserve(atoms.size());
  for (const algebra::EquiJoinAtom& atom : atoms) {
    out.push_back(authz::JoinAtom::Make(atom.left, atom.right));
  }
  return authz::JoinPath::FromAtoms(std::move(out));
}

JoinModeViews ComputeJoinModeViews(
    const authz::Profile& left, const authz::Profile& right,
    const std::vector<algebra::EquiJoinAtom>& atoms) {
  JoinModeViews v;
  v.condition = AtomsToJoinPath(atoms);
  for (const algebra::EquiJoinAtom& atom : atoms) {
    v.left_join_attrs.Insert(atom.left);
    v.right_join_attrs.Insert(atom.right);
  }

  // Slave views: the projection of the *other* operand on its join
  // attributes (Fig. 5 semi-join step 2).
  v.right_slave_view = authz::Profile{v.left_join_attrs, left.join, left.sigma};
  v.left_slave_view = authz::Profile{v.right_join_attrs, right.join, right.sigma};

  // Master views: the reduced other operand joined back (Fig. 5 step 4).
  const authz::JoinPath joined =
      authz::JoinPath::Union(left.join, right.join, v.condition);
  const IdSet sigma = IdSet::Union(left.sigma, right.sigma);
  v.left_master_view = authz::Profile{
      IdSet::Union(v.left_join_attrs, right.pi), joined, sigma};
  v.right_master_view = authz::Profile{
      IdSet::Union(left.pi, v.right_join_attrs), joined, sigma};

  // Full views: the whole other operand (regular join).
  v.left_full_view = right;
  v.right_full_view = left;
  return v;
}

namespace {

authz::Profile ProfileRec(const catalog::Catalog& cat,
                          const plan::PlanNode& node,
                          std::vector<authz::Profile>& out) {
  authz::Profile profile;
  switch (node.op) {
    case plan::PlanOp::kRelation:
      profile = authz::Profile::OfBaseRelation(cat, node.relation);
      break;
    case plan::PlanOp::kProject: {
      const authz::Profile child = ProfileRec(cat, *node.left, out);
      IdSet x;
      for (catalog::AttributeId a : node.projection) x.Insert(a);
      profile = authz::Profile::Project(child, std::move(x));
      break;
    }
    case plan::PlanOp::kSelect: {
      const authz::Profile child = ProfileRec(cat, *node.left, out);
      profile = authz::Profile::Select(child,
                                       node.predicate.ReferencedAttributes());
      break;
    }
    case plan::PlanOp::kJoin: {
      const authz::Profile l = ProfileRec(cat, *node.left, out);
      const authz::Profile r = ProfileRec(cat, *node.right, out);
      profile = authz::Profile::Join(l, r, AtomsToJoinPath(node.join_atoms));
      break;
    }
  }
  CISQP_CHECK_MSG(node.id >= 0 &&
                      static_cast<std::size_t>(node.id) < out.size(),
                  "plan must be renumbered before profile computation");
  out[static_cast<std::size_t>(node.id)] = profile;
  return profile;
}

}  // namespace

std::vector<authz::Profile> ComputeNodeProfiles(const catalog::Catalog& cat,
                                                const plan::QueryPlan& plan) {
  std::vector<authz::Profile> out(static_cast<std::size_t>(plan.node_count()));
  if (plan.root() != nullptr) ProfileRec(cat, *plan.root(), out);
  return out;
}

}  // namespace cisqp::planner
