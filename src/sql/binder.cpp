#include "sql/binder.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sql/parser.hpp"

namespace cisqp::sql {
namespace {

/// Checks a WHERE literal against the column type, coercing int → double.
Result<storage::Value> CoerceLiteral(const catalog::Catalog& cat,
                                     catalog::AttributeId attr,
                                     storage::Value value) {
  const catalog::ValueType want = cat.attribute(attr).type;
  if (value.is_null()) return value;
  if (value.type() == want) return value;
  if (want == catalog::ValueType::kDouble && value.is_int64()) {
    return storage::Value(static_cast<double>(value.AsInt64()));
  }
  return InvalidArgumentError(
      "literal " + value.ToString() + " does not match type '" +
      std::string(catalog::ValueTypeName(want)) + "' of attribute '" +
      cat.attribute(attr).name + "'");
}

}  // namespace

Result<plan::QuerySpec> Bind(const catalog::Catalog& cat, const AstQuery& ast) {
  plan::QuerySpec spec;
  spec.distinct = ast.distinct;

  CISQP_ASSIGN_OR_RETURN(spec.first_relation, cat.FindRelation(ast.first_relation));
  IdSet scope = cat.relation(spec.first_relation).attribute_set;

  for (const AstJoin& join : ast.joins) {
    plan::JoinStep step;
    CISQP_ASSIGN_OR_RETURN(step.relation, cat.FindRelation(join.relation));
    const IdSet& new_attrs = cat.relation(step.relation).attribute_set;
    for (const AstJoinCondition& cond : join.conditions) {
      CISQP_ASSIGN_OR_RETURN(catalog::AttributeId a, cat.FindAttribute(cond.left));
      CISQP_ASSIGN_OR_RETURN(catalog::AttributeId b, cat.FindAttribute(cond.right));
      // Orient: the new relation's attribute goes on the right.
      algebra::EquiJoinAtom atom;
      if (new_attrs.Contains(b) && scope.Contains(a)) {
        atom = algebra::EquiJoinAtom{a, b};
      } else if (new_attrs.Contains(a) && scope.Contains(b)) {
        atom = algebra::EquiJoinAtom{b, a};
      } else {
        return InvalidArgumentError(
            "ON condition '" + cond.left + " = " + cond.right +
            "' must link relation '" + join.relation +
            "' to an earlier FROM entry");
      }
      step.atoms.push_back(atom);
    }
    scope.UnionWith(new_attrs);
    spec.joins.push_back(std::move(step));
  }

  if (ast.select_star) {
    for (catalog::RelationId rel : spec.Relations()) {
      const auto& attrs = cat.relation(rel).attributes;
      spec.select_list.insert(spec.select_list.end(), attrs.begin(), attrs.end());
    }
  } else {
    for (const std::string& name : ast.select_list) {
      CISQP_ASSIGN_OR_RETURN(catalog::AttributeId id, cat.FindAttribute(name));
      if (!scope.Contains(id)) {
        return InvalidArgumentError("select-list attribute '" + name +
                                    "' is not produced by the FROM clause");
      }
      spec.select_list.push_back(id);
    }
  }

  for (const AstCondition& cond : ast.where) {
    CISQP_ASSIGN_OR_RETURN(catalog::AttributeId lhs, cat.FindAttribute(cond.lhs));
    if (!scope.Contains(lhs)) {
      return InvalidArgumentError("WHERE attribute '" + cond.lhs +
                                  "' is not produced by the FROM clause");
    }
    algebra::Comparison cmp;
    cmp.lhs = lhs;
    cmp.op = cond.op;
    if (cond.rhs_is_name()) {
      const std::string& rhs_name = std::get<std::string>(cond.rhs);
      CISQP_ASSIGN_OR_RETURN(catalog::AttributeId rhs, cat.FindAttribute(rhs_name));
      if (!scope.Contains(rhs)) {
        return InvalidArgumentError("WHERE attribute '" + rhs_name +
                                    "' is not produced by the FROM clause");
      }
      if (cat.attribute(lhs).type != cat.attribute(rhs).type) {
        return InvalidArgumentError("WHERE compares attributes of different types: '" +
                                    cond.lhs + "' and '" + rhs_name + "'");
      }
      cmp.rhs = rhs;
    } else {
      CISQP_ASSIGN_OR_RETURN(storage::Value literal,
                             CoerceLiteral(cat, lhs, std::get<storage::Value>(cond.rhs)));
      cmp.rhs = std::move(literal);
    }
    spec.where.And(std::move(cmp));
  }

  CISQP_RETURN_IF_ERROR(spec.Validate(cat));
  return spec;
}

Result<plan::QuerySpec> ParseAndBind(const catalog::Catalog& cat,
                                     std::string_view text) {
  CISQP_TRACE_SPAN(span, "sql.parse_bind");
  span.AddAttribute("chars", text.size());
  CISQP_METRIC_INC("sql.queries_parsed");
  CISQP_ASSIGN_OR_RETURN(AstQuery ast, Parse(text));
  return Bind(cat, ast);
}

}  // namespace cisqp::sql
