// E13 (extension) — observability overhead guard: the obs layer (tracing,
// metrics, audit log) must be effectively free when disabled. Times the full
// parse->plan->execute pipeline on the paper's scenario with obs fully
// disabled vs fully enabled and reports the delta; the disabled-path cost is
// a runtime bool check per site, so the disabled column is the regression
// guard for the uninstrumented baseline (<3% budget).
#include "bench_util.hpp"

#include "exec/executor.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"

namespace cisqp::bench {
namespace {

struct Pipeline {
  catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster{cat};
  plan::QueryPlan plan = PaperPlan(cat);
  planner::SafePlanner planner{cat, auths};
  exec::DistributedExecutor executor{cluster, auths};

  Pipeline() {
    Rng rng(2008);
    workload::MedicalScenario::DataConfig data;
    data.citizens = 500;
    UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
                 "populate");
  }

  // One end-to-end unit of work: safe planning plus distributed execution.
  // When `profile` is non-null the execution additionally fills it (the
  // profiler arm); the profile is reset each run so it never accumulates.
  void RunOnce(obs::QueryProfile* profile = nullptr) {
    const auto report = Unwrap(planner.Analyze(plan), "analyze");
    if (profile != nullptr) {
      *profile = obs::QueryProfile{};
      exec::ExecutionOptions options;
      options.profile = profile;
      benchmark::DoNotOptimize(
          executor.Execute(plan, report.plan->assignment, options));
      return;
    }
    benchmark::DoNotOptimize(
        executor.Execute(plan, report.plan->assignment));
  }
};

void DisableObs() {
  obs::Tracer::Get().Disable();
  obs::MetricsRegistry::Get().Disable();
  obs::AuthzAuditLog::Get().Disable();
}

void EnableObs() {
  obs::Tracer::Get().Enable();
  obs::MetricsRegistry::Get().Enable();
  obs::AuthzAuditLog::Get().Enable();
}

void ClearObs() {
  obs::Tracer::Get().Clear();
  obs::MetricsRegistry::Get().Reset();
  obs::AuthzAuditLog::Get().Clear();
}

// Best-of-repeats timing of `iters` pipeline runs, in microseconds.
std::int64_t TimeBest(Pipeline& pipeline, int iters, int repeats,
                      obs::QueryProfile* profile = nullptr) {
  std::int64_t best = -1;
  for (int r = 0; r < repeats; ++r) {
    ClearObs();
    const std::int64_t start = obs::NowMicros();
    for (int i = 0; i < iters; ++i) pipeline.RunOnce(profile);
    const std::int64_t elapsed = obs::NowMicros() - start;
    if (best < 0 || elapsed < best) best = elapsed;
  }
  return best;
}

void PrintOverheadTable() {
  PrintHeader("E13 / observability overhead guard (extension)",
              "obs disabled must cost <3% vs baseline; enabled delta is the "
              "price of full tracing+metrics+audit");
  Artifact artifact("obs_overhead",
                    "E13 / observability overhead guard (extension)",
                    "pipeline time with obs disabled vs enabled");
  Pipeline pipeline;
  const int kIters = 30;
  const int kRepeats = 5;

  DisableObs();
  pipeline.RunOnce();  // warm-up
  const std::int64_t off_us = TimeBest(pipeline, kIters, kRepeats);

  EnableObs();
  pipeline.RunOnce();  // warm-up
  const std::int64_t on_us = TimeBest(pipeline, kIters, kRepeats);

  // Profiler arm: obs fully enabled *plus* a QueryProfile attached to every
  // execution. Its budget is <=5% over the spans-only enabled arm
  // (scripts/check_bench_regression.sh gates on profiler_vs_enabled_pct).
  obs::QueryProfile profile;
  pipeline.RunOnce(&profile);  // warm-up
  const std::int64_t prof_us = TimeBest(pipeline, kIters, kRepeats, &profile);
  pipeline.RunOnce(&profile);  // a final profile for the artifact sample
  DisableObs();
  ClearObs();

  const double overhead_pct =
      off_us > 0 ? 100.0 * (static_cast<double>(on_us) /
                                static_cast<double>(off_us) -
                            1.0)
                 : 0.0;
  const double profiler_pct =
      on_us > 0 ? 100.0 * (static_cast<double>(prof_us) /
                               static_cast<double>(on_us) -
                           1.0)
                : 0.0;
  std::printf("%-16s %-10s %-12s\n", "config", "iters", "best_us");
  std::printf("%-16s %-10d %-12lld\n", "obs_disabled", kIters,
              static_cast<long long>(off_us));
  std::printf("%-16s %-10d %-12lld\n", "obs_enabled", kIters,
              static_cast<long long>(on_us));
  std::printf("%-16s %-10d %-12lld\n", "profiler_enabled", kIters,
              static_cast<long long>(prof_us));
  std::printf("\nenabled-vs-disabled overhead: %.2f%% (disabled path is one "
              "branch per site; budget for the disabled build is <3%%)\n",
              overhead_pct);
  std::printf("profiler-vs-enabled overhead: %.2f%% (per-operator counters on "
              "top of spans; budget <=5%%)\n",
              profiler_pct);
  artifact.Row()
      .Value("config", "obs_disabled")
      .Value("iterations", kIters)
      .Value("best_us", off_us);
  artifact.Row()
      .Value("config", "obs_enabled")
      .Value("iterations", kIters)
      .Value("best_us", on_us)
      .Value("overhead_pct", overhead_pct);
  artifact.Row()
      .Value("config", "profiler_enabled")
      .Value("iterations", kIters)
      .Value("best_us", prof_us)
      .Value("profiler_vs_enabled_pct", profiler_pct)
      .Json("sample_profile", profile.ToJson());
  artifact.Write();
  std::printf("\n");
}

void BM_PipelineObsDisabled(benchmark::State& state) {
  Pipeline pipeline;
  DisableObs();
  for (auto _ : state) pipeline.RunOnce();
}
BENCHMARK(BM_PipelineObsDisabled);

void BM_PipelineObsEnabled(benchmark::State& state) {
  Pipeline pipeline;
  EnableObs();
  for (auto _ : state) {
    pipeline.RunOnce();
    // Keep the trace buffer from growing unboundedly across iterations.
    obs::Tracer::Get().Clear();
  }
  DisableObs();
  ClearObs();
}
BENCHMARK(BM_PipelineObsEnabled);

void BM_PipelineProfiler(benchmark::State& state) {
  Pipeline pipeline;
  EnableObs();
  obs::QueryProfile profile;
  for (auto _ : state) {
    pipeline.RunOnce(&profile);
    obs::Tracer::Get().Clear();
  }
  DisableObs();
  ClearObs();
}
BENCHMARK(BM_PipelineProfiler);

void BM_MetricIncDisabled(benchmark::State& state) {
  obs::MetricsRegistry::Get().Disable();
  for (auto _ : state) {
    CISQP_METRIC_INC("bench.noop");
  }
}
BENCHMARK(BM_MetricIncDisabled);

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer::Get().Disable();
  for (auto _ : state) {
    CISQP_TRACE_SPAN(span, "bench.noop");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanDisabled);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintOverheadTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
