// E6 — the §4 efficiency/security claim: "Semi-joins are usually more
// efficient than regular joins as they minimize communication, which also
// benefits security: the slave server needs only to send those tuples that
// participate in the join."
//
// Regenerates a bytes-shipped series for the paper's n1 join executed as a
// semi-join vs a regular join while sweeping the join selectivity
// (hospitalized fraction of the population), then times both executions.
#include "bench_util.hpp"

#include "exec/executor.hpp"
#include "planner/verifier.hpp"

namespace cisqp::bench {
namespace {

struct MeasuredBytes {
  std::size_t semi = 0;
  std::size_t regular = 0;
  std::size_t result_rows = 0;
};

MeasuredBytes MeasureAtSelectivity(double hospitalized_fraction) {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster(cat);
  Rng rng(31337);
  workload::MedicalScenario::DataConfig data;
  data.citizens = 2000;
  data.hospitalized_fraction = hospitalized_fraction;
  data.insured_fraction = 0.6;
  UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
               "populate");
  const plan::QueryPlan plan = PaperPlan(cat);

  planner::SafePlanner planner(cat, auths);
  const planner::SafePlan sp = Unwrap(planner.Plan(plan), "safe plan");
  exec::DistributedExecutor executor(cluster, auths);

  MeasuredBytes out;
  {
    const auto result = Unwrap(executor.Execute(plan, sp.assignment), "semi exec");
    for (const exec::TransferRecord& t : result.network.transfers()) {
      if (t.node_id == 1) out.semi += t.bytes;
    }
    out.result_rows = result.table.row_count();
  }
  {
    // Same join as a regular join (enforcement off: the policy forbids it —
    // that asymmetry is the security half of the claim).
    planner::Assignment regular = sp.assignment;
    planner::Executor ex;
    ex.master = cat.FindServer("S_H").value();
    ex.mode = planner::ExecutionMode::kRegularJoin;
    ex.origin = planner::FromChild::kRight;
    regular.Set(1, ex);
    exec::ExecutionOptions lax;
    lax.enforce_releases = false;
    const auto result = Unwrap(executor.Execute(plan, regular, lax), "regular exec");
    for (const exec::TransferRecord& t : result.network.transfers()) {
      if (t.node_id == 1) out.regular += t.bytes;
    }
  }
  return out;
}

void PrintSeries() {
  PrintHeader("E6 / §4 semi-join claim",
              "bytes shipped by join n1 (semi vs regular) while sweeping the "
              "join selectivity; the regular execution is additionally "
              "UNAUTHORIZED under Fig. 3 — run here with enforcement off "
              "purely for measurement");
  Artifact artifact("communication", "E6 / §4 semi-join claim",
                    "bytes shipped by join n1, semi vs regular, per selectivity");
  std::printf("%-14s %-12s %-14s %-14s %-8s\n", "hospitalized", "result_rows",
              "semi_bytes", "regular_bytes", "ratio");
  for (const double f : {0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    const MeasuredBytes m = MeasureAtSelectivity(f);
    std::printf("%-14.2f %-12zu %-14zu %-14zu %-8.2f\n", f, m.result_rows,
                m.semi, m.regular,
                m.semi ? static_cast<double>(m.regular) / static_cast<double>(m.semi)
                       : 0.0);
    artifact.Row()
        .Value("hospitalized", f)
        .Value("result_rows", m.result_rows)
        .Value("semi_bytes", m.semi)
        .Value("regular_bytes", m.regular);
  }
  artifact.Write();
  std::printf("\n");
}

struct ExecFixture {
  catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths = workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster{cat};
  plan::QueryPlan plan;
  planner::Assignment assignment;

  explicit ExecFixture(std::size_t citizens) {
    Rng rng(5);
    workload::MedicalScenario::DataConfig data;
    data.citizens = citizens;
    UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
                 "populate");
    plan = PaperPlan(cat);
    planner::SafePlanner planner(cat, auths);
    assignment = Unwrap(planner.Plan(plan), "plan").assignment;
  }
};

void BM_DistributedExecution(benchmark::State& state) {
  ExecFixture fix(static_cast<std::size_t>(state.range(0)));
  exec::DistributedExecutor executor(fix.cluster, fix.auths);
  std::size_t bytes = 0;
  std::size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(executor.Execute(fix.plan, fix.assignment), "exec");
    bytes = result.network.total_bytes();
    rows = result.table.row_count();
    benchmark::DoNotOptimize(result);
  }
  state.counters["bytes_shipped"] = static_cast<double>(bytes);
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_DistributedExecution)->Arg(500)->Arg(2000)->Arg(8000);

void BM_CentralizedReference(benchmark::State& state) {
  ExecFixture fix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::ExecuteCentralized(fix.cluster, fix.plan));
  }
}
BENCHMARK(BM_CentralizedReference)->Arg(500)->Arg(2000)->Arg(8000);

void BM_RuntimeEnforcementOverhead(benchmark::State& state) {
  ExecFixture fix(2000);
  exec::DistributedExecutor executor(fix.cluster, fix.auths);
  exec::ExecutionOptions options;
  options.enforce_releases = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(fix.plan, fix.assignment, options));
  }
}
BENCHMARK(BM_RuntimeEnforcementOverhead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintSeries();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
