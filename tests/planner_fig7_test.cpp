// Golden test: the paper's Fig. 7 — the full Find_candidates / Assign_ex
// trace of the Example 2.2 query (Fig. 2 plan) under the Fig. 3
// authorizations — reproduced node for node, candidate for candidate.
#include <gtest/gtest.h>

#include "planner/safe_planner.hpp"
#include "test_util.hpp"

namespace cisqp::planner {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Server;

class Fig7Test : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = fix_.PaperPlan();
    SafePlanner planner(fix_.cat, fix_.auths);
    auto report = planner.Analyze(plan_);
    ASSERT_OK(report.status());
    ASSERT_TRUE(report->feasible);
    plan_result_ = std::move(*report->plan);
    si_ = Server(fix_.cat, "S_I");
    sh_ = Server(fix_.cat, "S_H");
    sn_ = Server(fix_.cat, "S_N");
    sd_ = Server(fix_.cat, "S_D");
  }

  const NodeTrace& FindTrace(int node_id) const {
    for (const NodeTrace& nt : plan_result_.trace.find_candidates) {
      if (nt.node_id == node_id) return nt;
    }
    ADD_FAILURE() << "no Find_candidates trace for node " << node_id;
    static const NodeTrace kEmpty{};
    return kEmpty;
  }

  MedicalFixture fix_;
  plan::QueryPlan plan_;
  SafePlan plan_result_;
  catalog::ServerId si_ = 0, sh_ = 0, sn_ = 0, sd_ = 0;
};

TEST_F(Fig7Test, FindCandidatesVisitsNodesInPaperOrder) {
  // Fig. 7 left table, top to bottom: n4, n5, n2, n6, n3, n1, n0.
  std::vector<int> order;
  for (const NodeTrace& nt : plan_result_.trace.find_candidates) {
    order.push_back(nt.node_id);
  }
  EXPECT_EQ(order, (std::vector<int>{4, 5, 2, 6, 3, 1, 0}));
}

TEST_F(Fig7Test, LeafCandidatesAreHomeServers) {
  // n4: [S_I, -, 0]*   n5: [S_N, -, 0]*   n6: [S_H, -, 0]*
  const NodeTrace& n4 = FindTrace(4);
  ASSERT_EQ(n4.candidates.size(), 1u);
  EXPECT_EQ(n4.candidates[0].server, si_);
  EXPECT_EQ(n4.candidates[0].from, FromChild::kSelf);
  EXPECT_EQ(n4.candidates[0].count, 0);

  const NodeTrace& n5 = FindTrace(5);
  ASSERT_EQ(n5.candidates.size(), 1u);
  EXPECT_EQ(n5.candidates[0].server, sn_);

  const NodeTrace& n6 = FindTrace(6);
  ASSERT_EQ(n6.candidates.size(), 1u);
  EXPECT_EQ(n6.candidates[0].server, sh_);
}

TEST_F(Fig7Test, NodeN2IsRegularJoinAtSn) {
  // Fig. 7: n2 candidates = [S_N, right, 1]; Example 5.1: "the join ...
  // needs to be executed as a regular join since the only candidate from the
  // right child cannot serve as slave".
  const NodeTrace& n2 = FindTrace(2);
  ASSERT_EQ(n2.candidates.size(), 1u);
  EXPECT_EQ(n2.candidates[0].server, sn_);
  EXPECT_EQ(n2.candidates[0].from, FromChild::kRight);
  EXPECT_EQ(n2.candidates[0].count, 1);
  EXPECT_EQ(n2.candidates[0].mode, ExecutionMode::kRegularJoin);
  // No left slave exists (S_I cannot view the Citizen column of the right).
  EXPECT_FALSE(n2.leftslave.has_value());
}

TEST_F(Fig7Test, NodeN3CopiesChildCandidate) {
  // n3: [S_H, left, 0] — the unary projection inherits Hospital's candidate.
  const NodeTrace& n3 = FindTrace(3);
  ASSERT_EQ(n3.candidates.size(), 1u);
  EXPECT_EQ(n3.candidates[0].server, sh_);
  EXPECT_EQ(n3.candidates[0].from, FromChild::kLeft);
  EXPECT_EQ(n3.candidates[0].count, 0);
}

TEST_F(Fig7Test, NodeN1IsSemiJoinWithSnSlave) {
  // n1: [S_H, right, 1] with slave S_N (Fig. 7 Slave column).
  const NodeTrace& n1 = FindTrace(1);
  ASSERT_EQ(n1.candidates.size(), 1u);
  EXPECT_EQ(n1.candidates[0].server, sh_);
  EXPECT_EQ(n1.candidates[0].from, FromChild::kRight);
  EXPECT_EQ(n1.candidates[0].count, 1);
  EXPECT_EQ(n1.candidates[0].mode, ExecutionMode::kSemiJoin);
  ASSERT_TRUE(n1.leftslave.has_value());
  EXPECT_EQ(*n1.leftslave, sn_);
}

TEST_F(Fig7Test, NodeN0CopiesJoinCandidate) {
  // n0: [S_H, left, 1].
  const NodeTrace& n0 = FindTrace(0);
  ASSERT_EQ(n0.candidates.size(), 1u);
  EXPECT_EQ(n0.candidates[0].server, sh_);
  EXPECT_EQ(n0.candidates[0].from, FromChild::kLeft);
  EXPECT_EQ(n0.candidates[0].count, 1);
}

TEST_F(Fig7Test, AssignExVisitsNodesInPaperOrder) {
  // Fig. 7 right table, top to bottom: n0, n1, n2, n4, n5, n3, n6.
  std::vector<int> order;
  for (const AssignTrace& at : plan_result_.trace.assign) {
    order.push_back(at.node_id);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 5, 3, 6}));
}

TEST_F(Fig7Test, FinalAssignmentMatchesFig7) {
  const Assignment& lambda = plan_result_.assignment;
  // n0: [S_H, NULL]
  EXPECT_EQ(lambda.Of(0).master, sh_);
  EXPECT_FALSE(lambda.Of(0).slave.has_value());
  // n1: [S_H, S_N] — semi-join, master from the right child.
  EXPECT_EQ(lambda.Of(1).master, sh_);
  ASSERT_TRUE(lambda.Of(1).slave.has_value());
  EXPECT_EQ(*lambda.Of(1).slave, sn_);
  EXPECT_EQ(lambda.Of(1).mode, ExecutionMode::kSemiJoin);
  // n2: [S_N, NULL] — regular join.
  EXPECT_EQ(lambda.Of(2).master, sn_);
  EXPECT_FALSE(lambda.Of(2).slave.has_value());
  EXPECT_EQ(lambda.Of(2).mode, ExecutionMode::kRegularJoin);
  // n3: [S_H, NULL]; n4: [S_I, NULL]; n5: [S_N, NULL]; n6: [S_H, NULL].
  EXPECT_EQ(lambda.Of(3).master, sh_);
  EXPECT_EQ(lambda.Of(4).master, si_);
  EXPECT_EQ(lambda.Of(5).master, sn_);
  EXPECT_EQ(lambda.Of(6).master, sh_);
}

TEST_F(Fig7Test, PushedServersMatchExampleWalkthrough) {
  // Example 5.1: S_H pushed to n1; S_N pushed to n2 (the slave side); S_H
  // pushed to n3; S_N pushed to n5; NULL pushed to n4.
  std::map<int, std::optional<catalog::ServerId>> pushed;
  for (const AssignTrace& at : plan_result_.trace.assign) {
    pushed[at.node_id] = at.pushed_from_parent;
  }
  EXPECT_FALSE(pushed[0].has_value());      // root starts with GetFirst
  EXPECT_EQ(pushed[1], std::optional(sh_));
  EXPECT_EQ(pushed[2], std::optional(sn_));
  EXPECT_EQ(pushed[3], std::optional(sh_));
  EXPECT_FALSE(pushed[4].has_value());      // regular join: NULL to the left
  EXPECT_EQ(pushed[5], std::optional(sn_));
  EXPECT_EQ(pushed[6], std::optional(sh_));
}

TEST_F(Fig7Test, NodeProfilesFollowFig4) {
  // n2 = Insurance ⋈ Nat_registry on Holder=Citizen.
  const authz::Profile& n2 = plan_result_.profiles[2];
  EXPECT_EQ(n2.pi, cisqp::testing::Attrs(
                       fix_.cat, {"Holder", "Plan", "Citizen", "HealthAid"}));
  EXPECT_EQ(n2.join, cisqp::testing::Path(fix_.cat, {{"Holder", "Citizen"}}));
  EXPECT_TRUE(n2.sigma.empty());
  // Root profile: the four selected attributes over the two-condition path.
  const authz::Profile& n0 = plan_result_.profiles[0];
  EXPECT_EQ(n0.pi, cisqp::testing::Attrs(
                       fix_.cat, {"Patient", "Physician", "Plan", "HealthAid"}));
  EXPECT_EQ(n0.join, cisqp::testing::Path(
                         fix_.cat, {{"Holder", "Citizen"}, {"Citizen", "Patient"}}));
}

TEST_F(Fig7Test, GoldenTraceRendering) {
  // The complete rendered trace, locked verbatim — a change here means the
  // algorithm's observable behaviour on the paper example changed.
  constexpr std::string_view kGolden =
      "Find_candidates (post-order):\n"
      "  n4  candidates: [S_I, -, 0]*\n"
      "  n5  candidates: [S_N, -, 0]*\n"
      "  n2  candidates: [S_N, right, 1]  rightslave: S_N\n"
      "  n6  candidates: [S_H, -, 0]*\n"
      "  n3  candidates: [S_H, left, 0]\n"
      "  n1  candidates: [S_H, right, 1]  leftslave: S_N\n"
      "  n0  candidates: [S_H, left, 1]\n"
      "Assign_ex (pre-order):\n"
      "  n0  [S_H, NULL]\n"
      "  n1  [S_H, S_N]  (pushed S_H)\n"
      "  n2  [S_N, NULL]  (pushed S_N)\n"
      "  n4  [S_I, NULL]\n"
      "  n5  [S_N, NULL]  (pushed S_N)\n"
      "  n3  [S_H, NULL]  (pushed S_H)\n"
      "  n6  [S_H, NULL]  (pushed S_H)\n";
  EXPECT_EQ(plan_result_.trace.ToString(fix_.cat), kGolden);
}

TEST_F(Fig7Test, TraceRendersReadably) {
  const std::string rendered = plan_result_.trace.ToString(fix_.cat);
  EXPECT_NE(rendered.find("Find_candidates"), std::string::npos);
  EXPECT_NE(rendered.find("Assign_ex"), std::string::npos);
  EXPECT_NE(rendered.find("S_H"), std::string::npos);
  EXPECT_NE(rendered.find("[S_H, S_N]"), std::string::npos);
}

}  // namespace
}  // namespace cisqp::planner
