// Unit tests for src/common: Status/Result, IdSet, SymbolTable, strings, Rng.
#include <gtest/gtest.h>

#include "common/idset.hpp"
#include "common/interner.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "test_util.hpp"

namespace cisqp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnauthorizedError("x").code(), StatusCode::kUnauthorized);
  EXPECT_EQ(InfeasibleError("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::Ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_THROW(r.value(), BadStatus);
}

TEST(ResultTest, ConstructionFromOkStatusThrows) {
  EXPECT_THROW(Result<int>(Status::Ok()), BadStatus);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(CheckTest, FailingCheckThrowsBadStatus) {
  EXPECT_THROW(CISQP_CHECK(1 == 2), BadStatus);
  EXPECT_NO_THROW(CISQP_CHECK(1 == 1));
}

TEST(IdSetTest, NormalizesOnConstruction) {
  const IdSet s{3, 1, 2, 3, 1};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s, (IdSet{1, 2, 3}));
}

TEST(IdSetTest, InsertAndErase) {
  IdSet s;
  EXPECT_TRUE(s.Insert(5));
  EXPECT_FALSE(s.Insert(5));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Erase(5));
  EXPECT_FALSE(s.Erase(5));
  EXPECT_TRUE(s.empty());
}

TEST(IdSetTest, SubsetAndIntersection) {
  const IdSet a{1, 2, 3};
  const IdSet b{2, 3};
  const IdSet c{4};
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(IdSet{}.IsSubsetOf(c));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(IdSet::Intersection(a, b), b);
}

TEST(IdSetTest, UnionAndDifference) {
  const IdSet a{1, 3};
  const IdSet b{2, 3};
  EXPECT_EQ(IdSet::Union(a, b), (IdSet{1, 2, 3}));
  EXPECT_EQ(IdSet::Difference(a, b), (IdSet{1}));
  IdSet c = a;
  c.UnionWith(b);
  EXPECT_EQ(c, (IdSet{1, 2, 3}));
}

TEST(IdSetTest, OrderingIsLexicographic) {
  EXPECT_LT((IdSet{1, 2}), (IdSet{1, 3}));
  EXPECT_LT((IdSet{1}), (IdSet{1, 2}));
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  const SymbolId a = table.Intern("alpha");
  const SymbolId b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.NameOf(a), "alpha");
  EXPECT_EQ(table.Find("beta"), b);
  EXPECT_EQ(table.Find("gamma"), kInvalidSymbol);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, SurvivesReallocation) {
  SymbolTable table;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(table.Intern("symbol_" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Find("symbol_" + std::to_string(i)), ids[static_cast<std::size_t>(i)]);
    EXPECT_EQ(table.NameOf(ids[static_cast<std::size_t>(i)]),
              "symbol_" + std::to_string(i));
  }
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, TrimAndCase) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("selec", "select"));
  EXPECT_EQ(ToLowerAscii("AbC1"), "abc1");
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, SampleIndicesAreDistinctAndSorted) {
  Rng rng(3);
  const auto sample = rng.SampleIndices(50, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);
    EXPECT_LT(sample[i], 50u);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

}  // namespace
}  // namespace cisqp
