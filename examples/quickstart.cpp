// Quickstart: the complete pipeline on the paper's running example.
//
//   schema + authorizations (Figs. 1, 3)
//     → SQL (Example 2.2) → query tree plan (Fig. 2)
//     → safe executor assignment (Figs. 6, 7)
//     → distributed execution with network accounting and enforcement.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "exec/executor.hpp"
#include "plan/builder.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "sql/binder.hpp"
#include "workload/medical.hpp"

using namespace cisqp;

int main() {
  // 1. The federation: four servers, four relations (paper Fig. 1).
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  std::printf("--- schema (Fig. 1) ---\n%s\n", cat.DebugString().c_str());

  // 2. The policy: fifteen authorizations (paper Fig. 3).
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  std::printf("--- authorizations (Fig. 3) ---\n%s\n",
              auths.ToString(cat).c_str());

  // 3. SQL → query tree plan (projections pushed down, paper Fig. 2).
  const auto spec =
      sql::ParseAndBind(cat, workload::MedicalScenario::kPaperQuery);
  if (!spec.ok()) {
    std::printf("bind failed: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  const auto plan = plan::PlanBuilder(cat).Build(*spec);
  if (!plan.ok()) {
    std::printf("plan failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("--- query ---\n%s\n\n--- plan (Fig. 2) ---\n%s\n",
              spec->ToString(cat).c_str(), plan->ToString(cat).c_str());

  // 4. Safe executor assignment (the paper's algorithm, Figs. 6-7).
  planner::SafePlanner planner(cat, auths);
  const auto safe_plan = planner.Plan(*plan);
  if (!safe_plan.ok()) {
    std::printf("planning failed: %s\n", safe_plan.status().ToString().c_str());
    return 1;
  }
  std::printf("--- planning trace (Fig. 7) ---\n%s\n",
              safe_plan->trace.ToString(cat).c_str());
  std::printf("--- assignment ---\n%s\n",
              safe_plan->assignment.ToString(cat, *plan).c_str());

  // 5. Which releases does the assignment entail, and are they all legal?
  const auto releases =
      planner::EnumerateReleases(cat, *plan, safe_plan->assignment);
  std::printf("--- releases ---\n");
  for (const planner::Release& r : releases.value()) {
    std::printf("%s\n", r.ToString(cat).c_str());
  }

  // 6. Load data and execute distributed, with runtime enforcement on.
  exec::Cluster cluster(cat);
  Rng rng(2008);  // the paper's year; any seed works
  if (const Status s = workload::MedicalScenario::PopulateCluster(
          cluster, workload::MedicalScenario::DataConfig{50, 0.5, 0.6, 10}, rng);
      !s.ok()) {
    std::printf("populate failed: %s\n", s.ToString().c_str());
    return 1;
  }
  exec::DistributedExecutor executor(cluster, auths);
  const auto result = executor.Execute(*plan, safe_plan->assignment);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- result (at %s) ---\n%s\n",
              cat.server(result->result_server).name.c_str(),
              result->table.ToDisplayString(cat, 10).c_str());
  std::printf("--- network ---\n%s", result->network.Summary(cat).c_str());
  return 0;
}
