// A second full scenario: a supply-chain federation, defined in the
// federation DSL (src/dsl) rather than programmatically — both to exercise
// the DSL end to end and to show the model outside the paper's medical
// domain.
//
//   S_SUP : Suppliers(PartId*, SupplierName, UnitCost)
//   S_MFG : Assembly(ComponentId*, Product, Line)
//   S_LOG : Shipments(ShipPart*, Carrier, Destination)
//   S_RET : Sales(SoldProduct*, Region, Revenue)
//
// Policy sketch: the manufacturer may see supplier parts it assembles (not
// raw costs), logistics sees which parts ship (not who supplies them or at
// what cost), the retailer sees product/region data joined to assembly lines
// but never supplier identities; unit costs never leave S_SUP.
#pragma once

#include <string_view>

#include "common/rng.hpp"
#include "dsl/federation_dsl.hpp"
#include "exec/cluster.hpp"
#include "plan/stats.hpp"

namespace cisqp::workload {

class SupplyChainScenario {
 public:
  /// The scenario's DSL source (schema + policy).
  static std::string_view Dsl();

  /// Parses Dsl(); the result is cached per call site (parse is cheap).
  static Result<dsl::ParsedFederation> Build();

  struct DataConfig {
    std::size_t parts = 400;
    std::size_t products = 40;
    double shipped_fraction = 0.7;
    double sold_fraction = 0.8;
  };

  /// Synthesizes consistent instances across the four relations.
  static Status PopulateCluster(exec::Cluster& cluster,
                                const dsl::ParsedFederation& fed,
                                const DataConfig& config, Rng& rng);

  struct NamedQuery {
    std::string name;
    std::string sql;
  };

  /// Representative queries, mixing feasible and policy-blocked requests.
  static std::vector<NamedQuery> WorkloadQueries();
};

}  // namespace cisqp::workload
