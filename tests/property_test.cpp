// Cross-cutting property and robustness tests:
//   * the §3.1 input-relation pattern (instance-based restrictions via an
//     explicitly provided input, "providing the patients' SSN the hospital
//     can retrieve the plan");
//   * composite (multi-attribute) join conditions end to end;
//   * agreement between the static verifier and runtime enforcement on
//     random assignments;
//   * chase monotonicity: closing the policy never makes a feasible plan
//     infeasible;
//   * parser robustness: hostile inputs produce statuses, never crashes.
#include <gtest/gtest.h>

#include "authz/chase.hpp"
#include "dsl/federation_dsl.hpp"
#include "exec/executor.hpp"
#include "planner/exhaustive.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"
#include "testcheck/scenario.hpp"
#include "workload/generator.hpp"

namespace cisqp {
namespace {

using cisqp::testing::MedicalFixture;

// ---------------------------------------------------------------------------
// §3.1 input-relation pattern.
// ---------------------------------------------------------------------------

TEST(InputRelationPattern, SsnLookupOnlyThroughProvidedInput) {
  // The paper (§3.1, instance-based restrictions): "providing the patients'
  // SSN, the hospital can retrieve the plan" — the input is a relation to be
  // joined. Model: a Lookup relation living at S_H holding the SSNs the
  // hospital supplies; S_H is granted Insurance attributes only on the path
  // through that input.
  catalog::Catalog cat;
  const auto si = cat.AddServer("S_I").value();
  const auto sh = cat.AddServer("S_H").value();
  CISQP_CHECK(cat.AddRelation("Insurance", si,
                              {{"Holder", catalog::ValueType::kInt64},
                               {"Plan", catalog::ValueType::kString}},
                              {"Holder"}).ok());
  CISQP_CHECK(cat.AddRelation("Lookup", sh,
                              {{"SSN", catalog::ValueType::kInt64}}, {"SSN"}).ok());
  ASSERT_OK(cat.AddJoinEdge("Holder", "SSN"));

  authz::AuthorizationSet auths;
  ASSERT_OK(auths.Add(cat, "S_I", {"Holder", "Plan"}, {}));
  ASSERT_OK(auths.Add(cat, "S_H", {"SSN"}, {}));
  // The input itself may flow to the insurer (the hospital explicitly
  // provides the SSNs)...
  ASSERT_OK(auths.Add(cat, "S_I", {"SSN"}, {}));
  // ...and the instance-based grant: plans only for the provided SSNs.
  ASSERT_OK(auths.Add(cat, "S_H", {"SSN", "Holder", "Plan"}, {{"Holder", "SSN"}}));

  // Bulk export is infeasible...
  auto bulk = sql::ParseAndBind(cat, "SELECT Holder, Plan FROM Insurance");
  ASSERT_OK(bulk.status());
  auto bulk_plan = plan::PlanBuilder(cat).Build(*bulk);
  ASSERT_OK(bulk_plan.status());
  planner::SafePlannerOptions to_sh;
  to_sh.requestor = sh;
  planner::SafePlanner planner(cat, auths, to_sh);
  ASSERT_OK_AND_ASSIGN(planner::PlanningReport bulk_report,
                       planner.Analyze(*bulk_plan));
  EXPECT_FALSE(bulk_report.feasible);

  // ...while the lookup through the provided input is feasible, and the
  // hospital receives exactly the matching tuples.
  auto lookup = sql::ParseAndBind(
      cat, "SELECT Holder, Plan FROM Lookup JOIN Insurance ON SSN = Holder");
  ASSERT_OK(lookup.status());
  auto lookup_plan = plan::PlanBuilder(cat).Build(*lookup);
  ASSERT_OK(lookup_plan.status());
  ASSERT_OK_AND_ASSIGN(planner::PlanningReport lookup_report,
                       planner.Analyze(*lookup_plan));
  ASSERT_TRUE(lookup_report.feasible);

  exec::Cluster cluster(cat);
  for (std::int64_t i = 0; i < 100; ++i) {
    ASSERT_OK(cluster.InsertRow(cat.FindRelation("Insurance").value(),
                                {storage::Value(i), storage::Value("plan")}));
  }
  ASSERT_OK(cluster.InsertRow(cat.FindRelation("Lookup").value(),
                              {storage::Value(std::int64_t{7})}));
  ASSERT_OK(cluster.InsertRow(cat.FindRelation("Lookup").value(),
                              {storage::Value(std::int64_t{42})}));
  exec::DistributedExecutor executor(cluster, auths);
  exec::ExecutionOptions options;
  options.requestor = sh;
  ASSERT_OK_AND_ASSIGN(
      exec::ExecutionResult result,
      executor.Execute(*lookup_plan, lookup_report.plan->assignment, options));
  EXPECT_EQ(result.table.row_count(), 2u);
  EXPECT_EQ(result.result_server, sh);
}

// ---------------------------------------------------------------------------
// Composite join conditions.
// ---------------------------------------------------------------------------

class CompositeJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fed = dsl::ParseFederation(R"(
      server s0; server s1;
      relation Orders  @ s0 (OCust int key, ODay int key, OTotal int);
      relation Visits  @ s1 (VCust int key, VDay int key, VChannel string);
      joinable OCust = VCust;
      joinable ODay = VDay;
      grant OCust, ODay, OTotal to s0;
      grant VCust, VDay, VChannel to s1;
      grant OCust, ODay, OTotal, VCust, VDay, VChannel
        on (OCust, VCust), (ODay, VDay) to s1;
      grant VCust, VDay to s0;
    )");
    CISQP_CHECK_MSG(fed.ok(), fed.status().ToString());
    fed_ = std::make_unique<dsl::ParsedFederation>(std::move(*fed));
  }

  std::unique_ptr<dsl::ParsedFederation> fed_;
};

TEST_F(CompositeJoinTest, TwoAtomJoinPlansAndExecutes) {
  // Both atoms in one ON clause: the condition is the conjunction, and the
  // profile carries both atoms in one canonical path.
  auto spec = sql::ParseAndBind(
      fed_->catalog,
      "SELECT OTotal, VChannel FROM Orders JOIN Visits "
      "ON OCust = VCust AND ODay = VDay");
  ASSERT_OK(spec.status());
  ASSERT_EQ(spec->joins[0].atoms.size(), 2u);
  auto plan = plan::PlanBuilder(fed_->catalog).Build(*spec);
  ASSERT_OK(plan.status());

  planner::SafePlanner planner(fed_->catalog, fed_->authorizations);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, planner.Plan(*plan));
  // Only s1 holds the two-atom-path grant; it must be the join master, and
  // since s0 may see the (OCust, ODay) projection, a semi-join works.
  int join_id = -1;
  plan->ForEachPreOrder([&](const plan::PlanNode& n) {
    if (n.op == plan::PlanOp::kJoin) join_id = n.id;
  });
  EXPECT_EQ(sp.assignment.Of(join_id).master,
            fed_->catalog.FindServer("s1").value());

  // Execution over data where only (cust AND day) match jointly.
  exec::Cluster cluster(fed_->catalog);
  const auto orders = fed_->catalog.FindRelation("Orders").value();
  const auto visits = fed_->catalog.FindRelation("Visits").value();
  ASSERT_OK(cluster.InsertRow(orders, {storage::Value(std::int64_t{1}),
                                       storage::Value(std::int64_t{10}),
                                       storage::Value(std::int64_t{100})}));
  ASSERT_OK(cluster.InsertRow(orders, {storage::Value(std::int64_t{1}),
                                       storage::Value(std::int64_t{11}),
                                       storage::Value(std::int64_t{200})}));
  ASSERT_OK(cluster.InsertRow(visits, {storage::Value(std::int64_t{1}),
                                       storage::Value(std::int64_t{10}),
                                       storage::Value("web")}));
  ASSERT_OK(cluster.InsertRow(visits, {storage::Value(std::int64_t{2}),
                                       storage::Value(std::int64_t{11}),
                                       storage::Value("store")}));
  exec::DistributedExecutor executor(cluster, fed_->authorizations);
  ASSERT_OK_AND_ASSIGN(exec::ExecutionResult result,
                       executor.Execute(*plan, sp.assignment));
  ASSERT_EQ(result.table.row_count(), 1u);  // only (1, 10) matches both atoms
  EXPECT_EQ(result.table.row(0)[0], storage::Value(std::int64_t{100}));
}

TEST_F(CompositeJoinTest, SingleAtomPathIsNotTheTwoAtomPath) {
  // A grant on the two-atom path does not authorize the one-atom join
  // (fewer conditions release MORE tuples) — Def. 3.3 exact equality.
  auto spec = sql::ParseAndBind(
      fed_->catalog, "SELECT OTotal, VChannel FROM Orders JOIN Visits "
                     "ON OCust = VCust");
  ASSERT_OK(spec.status());
  auto plan = plan::PlanBuilder(fed_->catalog).Build(*spec);
  ASSERT_OK(plan.status());
  planner::SafePlanner planner(fed_->catalog, fed_->authorizations);
  ASSERT_OK_AND_ASSIGN(planner::PlanningReport report, planner.Analyze(*plan));
  EXPECT_FALSE(report.feasible);
}

// ---------------------------------------------------------------------------
// Static verifier ↔ runtime enforcement agreement.
// ---------------------------------------------------------------------------

TEST(EnforcementAgreement, RuntimeFiresExactlyOnPhysicalViolations) {
  // Enumerate ALL Def. 4.1 assignments of the paper plan (safe and unsafe);
  // for each, the executor under enforcement must fail exactly when the
  // static verifier reports a violation on a *physical* release.
  MedicalFixture fix;
  const plan::QueryPlan plan = fix.PaperPlan();
  exec::Cluster cluster(fix.cat);
  Rng rng(5);
  ASSERT_OK(workload::MedicalScenario::PopulateCluster(
      cluster, workload::MedicalScenario::DataConfig{100, 0.5, 0.5, 10}, rng));
  exec::DistributedExecutor executor(cluster, fix.auths);

  // Collect every structurally valid assignment via the exhaustive machinery
  // with an empty policy filter (everything "safe" under open default):
  authz::OpenPolicySet allow_all;
  ASSERT_OK_AND_ASSIGN(
      planner::ExhaustiveResult all,
      planner::EnumerateSafeAssignments(fix.cat, allow_all, plan));
  ASSERT_GT(all.safe_assignments.size(), 4u);

  int runtime_failures = 0;
  for (const planner::Assignment& assignment : all.safe_assignments) {
    ASSERT_OK_AND_ASSIGN(std::vector<planner::Release> releases,
                         planner::EnumerateReleases(fix.cat, plan, assignment));
    bool physical_violation = false;
    for (const planner::Release& r :
         planner::FindViolations(fix.auths, releases)) {
      if (r.physical) physical_violation = true;
    }
    const auto run = executor.Execute(plan, assignment);
    if (physical_violation) {
      EXPECT_EQ(run.status().code(), StatusCode::kUnauthorized)
          << assignment.ToString(fix.cat, plan);
      ++runtime_failures;
    } else {
      EXPECT_OK(run.status());
    }
  }
  EXPECT_GT(runtime_failures, 0);  // the sweep saw unsafe assignments
}

// ---------------------------------------------------------------------------
// Chase monotonicity for planning.
// ---------------------------------------------------------------------------

TEST(ChaseMonotonicity, ClosingThePolicyNeverBreaksFeasiblePlans) {
  // Many independent seeds drawn through the differential harness's scenario
  // generator (src/testcheck), so the federation/policy/query knobs live in
  // one place instead of being re-tuned per test.
  testcheck::ScenarioConfig config;
  config.federation.servers = 4;
  config.federation.relations = 5;
  std::size_t exercised = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    auto scenario = testcheck::GenerateScenario(config, seed);
    if (!scenario.ok()) continue;  // schema cannot host the configured query
    authz::ChaseOptions chase_options;
    chase_options.max_path_atoms = 4;
    auto closed =
        authz::ChaseClosure(scenario->catalog, scenario->auths, chase_options);
    if (!closed.ok()) continue;  // capped on a pathological instance
    auto built = plan::PlanBuilder(scenario->catalog).Build(scenario->query);
    if (!built.ok()) continue;
    planner::SafePlanner raw(scenario->catalog, scenario->auths);
    planner::SafePlanner chased(scenario->catalog, *closed);
    ASSERT_OK_AND_ASSIGN(planner::PlanningReport raw_report,
                         raw.Analyze(*built));
    ASSERT_OK_AND_ASSIGN(planner::PlanningReport chased_report,
                         chased.Analyze(*built));
    if (raw_report.feasible) {
      EXPECT_TRUE(chased_report.feasible)
          << "seed " << seed << ": "
          << scenario->query.ToString(scenario->catalog);
    }
    if (chased_report.feasible) {
      EXPECT_OK(planner::VerifyAssignment(scenario->catalog, *closed, *built,
                                          chased_report.plan->assignment));
    }
    ++exercised;
  }
  EXPECT_GE(exercised, 20u);  // the sweep must actually cover many seeds
}

// ---------------------------------------------------------------------------
// Parser robustness.
// ---------------------------------------------------------------------------

TEST(ParserRobustness, RandomBytesNeverCrashTheSqlParser) {
  MedicalFixture fix;
  Rng rng(12345);
  const std::string alphabet =
      "SELECTFROMJOINWHEREANDabcxyz_0123456789 .,*()=<>'\"!\n\t";
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const std::size_t len = rng.UniformIndex(60);
    for (std::size_t j = 0; j < len; ++j) {
      input += alphabet[rng.UniformIndex(alphabet.size())];
    }
    // Must return a Status, never throw or crash.
    const auto result = sql::ParseAndBind(fix.cat, input);
    (void)result;
  }
}

TEST(ParserRobustness, MutatedValidQueriesNeverCrash) {
  MedicalFixture fix;
  Rng rng(999);
  const std::string base(workload::MedicalScenario::kPaperQuery);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    const std::size_t edits = 1 + rng.UniformIndex(4);
    for (std::size_t e = 0; e < edits && !mutated.empty(); ++e) {
      const std::size_t pos = rng.UniformIndex(mutated.size());
      switch (rng.UniformIndex(3)) {
        case 0: mutated.erase(pos, 1); break;
        case 1: mutated.insert(pos, 1, static_cast<char>('!' + rng.UniformIndex(90))); break;
        default: mutated[pos] = static_cast<char>('!' + rng.UniformIndex(90)); break;
      }
    }
    const auto result = sql::ParseAndBind(fix.cat, mutated);
    (void)result;
  }
}

TEST(ParserRobustness, RandomBytesNeverCrashTheDslParser) {
  Rng rng(777);
  const std::string alphabet = "serverlationgrandenyjoinable@(),;=#intdouble \n";
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const std::size_t len = rng.UniformIndex(80);
    for (std::size_t j = 0; j < len; ++j) {
      input += alphabet[rng.UniformIndex(alphabet.size())];
    }
    const auto result = dsl::ParseFederation(input);
    (void)result;
  }
}

}  // namespace
}  // namespace cisqp
