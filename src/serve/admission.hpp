// AdmissionController: the front door's bounded request scheduler
// (DESIGN.md §15.1).
//
// Serving is synchronous — each client thread calls FrontDoor::Serve and
// blocks for its answer — so admission control is a counting gate, not a
// task queue: at most `max_concurrent` requests execute at once, at most
// `max_queue` more wait their turn, and anything beyond that is rejected
// immediately with kResourceExhausted (fail fast beats unbounded queueing;
// the caller can retry with backoff). Waiters are admitted in FIFO order
// via ticket numbers, so no request starves under sustained load.
//
// An optional `max_wait_us` deadline bounds the queueing itself: a waiter
// whose turn has not come by the deadline gives up with a typed
// kResourceExhausted instead of blocking forever behind a ticket holder
// that never releases. An abandoned ticket's sequence number is recorded
// (or, at the queue head, skipped on the spot) so the FIFO hand-off walks
// past it — a timeout never wedges the waiters behind it.
//
// The controller publishes its state as metrics: serve.admitted /
// serve.rejected counters and serve.running / serve.queued gauges.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>

#include "common/status.hpp"

namespace cisqp::serve {

class AdmissionController {
 public:
  /// `max_wait_us` bounds how long an admitted-to-queue request may wait
  /// for its slot; 0 means wait indefinitely (the historical behavior).
  AdmissionController(std::size_t max_concurrent, std::size_t max_queue,
                      std::int64_t max_wait_us = 0);

  /// RAII admission slot: releasing it (destruction) wakes the next waiter.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* owner) : owner_(owner) {}
    Ticket(Ticket&& other) noexcept : owner_(other.owner_) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

   private:
    void Release();
    AdmissionController* owner_ = nullptr;
  };

  /// Blocks until a slot frees (FIFO among waiters), or fails immediately
  /// with kResourceExhausted when the wait queue is already full, or — with
  /// a nonzero `max_wait_us` — with kResourceExhausted when the deadline
  /// passes while still queued. On success `queue_wait_us` (when non-null)
  /// receives the time spent queued.
  Result<Ticket> Admit(std::int64_t* queue_wait_us = nullptr);

  std::size_t running() const;
  std::size_t queued() const;
  std::uint64_t admitted() const noexcept {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  friend class Ticket;
  void ReleaseSlot();

  /// With mu_ held: advances now_serving_ past consecutively abandoned
  /// sequence numbers so the FIFO order skips timed-out waiters.
  void SkipAbandoned();

  const std::size_t max_concurrent_;
  const std::size_t max_queue_;
  const std::int64_t max_wait_us_;  ///< 0 = unbounded queueing
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t running_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t next_ticket_ = 0;   ///< next sequence number to hand out
  std::uint64_t now_serving_ = 0;   ///< lowest not-yet-admitted sequence
  std::set<std::uint64_t> abandoned_;  ///< timed-out, not yet skipped
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace cisqp::serve
