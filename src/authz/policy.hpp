// Policy: the abstract authorization decision the planners and the executor
// consult.
//
// The paper's core model is a closed policy (§3.1: data are visible only to
// explicitly authorized parties) — `AuthorizationSet`. Footnote 1 notes the
// approach adapts to an *open* policy, where data are visible by default and
// negative rules restrict visibility — `OpenPolicySet` below. Both implement
// this interface, so every planner, verifier, and the runtime enforcer work
// under either regime.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "authz/profile.hpp"

namespace cisqp::authz {

/// Why a CanView check failed, ordered by how early the check gave up.
enum class DenyReason : std::uint8_t {
  kNone,              ///< the check did not fail
  kNoRulesForServer,  ///< the server holds no rule at all
  kJoinPathMismatch,  ///< no rule's join path equals the profile's (Def. 3.3)
  kAttributeCoverage, ///< a path-matching rule exists but misses attributes
  kDenialFired,       ///< open policy: a negative rule forbids the view
  kNotCovered,        ///< generic: policy gave no finer-grained explanation
};

std::string_view DenyReasonName(DenyReason reason) noexcept;

/// A CanView verdict with enough structure to explain it: on allow, the
/// attribute grant (and implicitly the profile's own join path) that covered
/// the view; on deny, the first failed Def. 3.3 condition and — for
/// attribute-coverage failures — the closest rule's uncovered remainder.
struct CanViewExplanation {
  bool allowed = false;
  DenyReason reason = DenyReason::kNone;
  std::optional<IdSet> matched_attributes;  ///< allow: the covering grant
  IdSet missing_attributes;  ///< kAttributeCoverage: smallest uncovered rest

  /// Human-readable failure condition ("" when allowed).
  std::string DescribeDenial(const catalog::Catalog& cat) const;
};

/// Decides whether a server may view a relation with a given profile.
class Policy {
 public:
  virtual ~Policy() = default;

  /// True iff `server` is authorized to view a relation with `profile`.
  virtual bool CanView(const Profile& profile,
                       catalog::ServerId server) const = 0;

  /// CanView plus the evidence for the verdict (audit-log material).
  /// Policies that cannot do better inherit this generic fallback.
  virtual CanViewExplanation ExplainCanView(const Profile& profile,
                                            catalog::ServerId server) const {
    CanViewExplanation explanation;
    explanation.allowed = CanView(profile, server);
    explanation.reason =
        explanation.allowed ? DenyReason::kNone : DenyReason::kNotCovered;
    return explanation;
  }
};

}  // namespace cisqp::authz
