// Tests for the chase closure of implied authorizations (paper §3.2 end).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "authz/chase.hpp"
#include "authz/incremental.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "testcheck/oracle.hpp"
#include "workload/generator.hpp"

namespace cisqp::authz {
namespace {

using cisqp::testing::Attrs;
using cisqp::testing::MedicalFixture;
using cisqp::testing::Path;
using cisqp::testing::Server;

// The naïve-fixpoint reference and the canonical policy form moved into the
// differential-testing library so the fuzz harness and these tests share one
// oracle (src/testcheck/oracle.hpp).
using testcheck::CanonicalPolicy;
using testcheck::NaiveChaseOracle;

class ChaseTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;
};

TEST_F(ChaseTest, PaperExampleSdWithHospitalGrant) {
  // §3.2: if S_D also held an authorization for Hospital, the denied view
  // "Disease_list ⋈ Hospital on Illness=Disease" would be implied.
  AuthorizationSet auths = fix_.auths;
  ASSERT_OK(auths.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));

  const Profile view{Attrs(fix_.cat, {"Illness", "Treatment"}),
                     Path(fix_.cat, {{"Illness", "Disease"}}), {}};
  EXPECT_FALSE(auths.CanView(view, Server(fix_.cat, "S_D")));

  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed, ChaseClosure(fix_.cat, auths));
  EXPECT_TRUE(closed.CanView(view, Server(fix_.cat, "S_D")));
}

TEST_F(ChaseTest, ClosureContainsAllInputRules) {
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed, ChaseClosure(fix_.cat, fix_.auths));
  for (const Authorization& rule : fix_.auths.All()) {
    EXPECT_TRUE(closed.Contains(rule)) << rule.ToString(fix_.cat);
  }
  EXPECT_GE(closed.size(), fix_.auths.size());
}

TEST_F(ChaseTest, ClosureIsIdempotent) {
  ASSERT_OK_AND_ASSIGN(AuthorizationSet once, ChaseClosure(fix_.cat, fix_.auths));
  ASSERT_OK_AND_ASSIGN(AuthorizationSet twice, ChaseClosure(fix_.cat, once));
  EXPECT_EQ(once.size(), twice.size());
}

TEST_F(ChaseTest, ClosureNeverShrinksVisibility) {
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed, ChaseClosure(fix_.cat, fix_.auths));
  // Every view authorized before stays authorized.
  for (catalog::ServerId s = 0; s < fix_.cat.server_count(); ++s) {
    for (const Authorization& rule : fix_.auths.ForServer(s)) {
      EXPECT_TRUE(closed.CanView(Profile{rule.attributes, rule.path, {}}, s));
    }
  }
}

TEST_F(ChaseTest, DerivationRequiresJoinAttributeVisibility) {
  // A server holding two relations but blind to the join attribute of one of
  // them cannot chase the joined view.
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  ASSERT_OK(cat.AddRelation("A", s0, {{"AK", catalog::ValueType::kInt64},
                                      {"AV", catalog::ValueType::kInt64}},
                            {"AK"}).status());
  ASSERT_OK(cat.AddRelation("B", s0, {{"BK", catalog::ValueType::kInt64},
                                      {"BV", catalog::ValueType::kInt64}},
                            {"BK"}).status());
  ASSERT_OK(cat.AddServer("watcher").status());
  ASSERT_OK(cat.AddJoinEdge("AK", "BK"));

  AuthorizationSet auths;
  ASSERT_OK(auths.Add(cat, "watcher", {"AK", "AV"}, {}));
  ASSERT_OK(auths.Add(cat, "watcher", {"BV"}, {}));  // BK not visible
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed, ChaseClosure(cat, auths));
  const Profile joined{Attrs(cat, {"AV", "BV"}), Path(cat, {{"AK", "BK"}}), {}};
  EXPECT_FALSE(closed.CanView(joined, cat.FindServer("watcher").value()));

  // Granting BK unlocks the derivation.
  ASSERT_OK(auths.Add(cat, "watcher", {"BK", "BV"}, {}));
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed2, ChaseClosure(cat, auths));
  EXPECT_TRUE(closed2.CanView(joined, cat.FindServer("watcher").value()));
}

TEST_F(ChaseTest, IndirectDerivationsAcrossThreeRelations) {
  // watcher sees A, B, C fully; A-B and B-C are joinable: the chase must
  // derive the three-relation view in two rounds.
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  ASSERT_OK(cat.AddRelation("A", s0, {{"AK", catalog::ValueType::kInt64}}, {"AK"}).status());
  ASSERT_OK(cat.AddRelation("B", s0, {{"BK", catalog::ValueType::kInt64},
                                      {"BL", catalog::ValueType::kInt64}}, {"BK"}).status());
  ASSERT_OK(cat.AddRelation("C", s0, {{"CK", catalog::ValueType::kInt64}}, {"CK"}).status());
  ASSERT_OK(cat.AddServer("watcher").status());
  ASSERT_OK(cat.AddJoinEdge("AK", "BK"));
  ASSERT_OK(cat.AddJoinEdge("BL", "CK"));

  AuthorizationSet auths;
  ASSERT_OK(auths.Add(cat, "watcher", {"AK"}, {}));
  ASSERT_OK(auths.Add(cat, "watcher", {"BK", "BL"}, {}));
  ASSERT_OK(auths.Add(cat, "watcher", {"CK"}, {}));
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed, ChaseClosure(cat, auths));

  const Profile full{Attrs(cat, {"AK", "BK", "BL", "CK"}),
                     Path(cat, {{"AK", "BK"}, {"BL", "CK"}}), {}};
  EXPECT_TRUE(closed.CanView(full, cat.FindServer("watcher").value()));
}

TEST_F(ChaseTest, CapOnDerivedRules) {
  ChaseOptions options;
  options.max_derived_rules = 1;
  AuthorizationSet auths = fix_.auths;
  ASSERT_OK(auths.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));
  const auto result = ChaseClosure(fix_.cat, auths, options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ChaseTest, PathLengthCapLimitsDepth) {
  // The cap bounds *derived* rules only; input rules keep their paths
  // (Fig. 3 has two-atom paths).
  ChaseOptions options;
  options.max_path_atoms = 1;
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed,
                       ChaseClosure(fix_.cat, fix_.auths, options));
  for (const Authorization& rule : closed.All()) {
    if (!fix_.auths.Contains(rule)) {
      EXPECT_LE(rule.path.size(), 1u) << rule.ToString(fix_.cat);
    }
  }
}

TEST_F(ChaseTest, StatsAreReported) {
  ChaseStats stats;
  ASSERT_OK(ChaseClosure(fix_.cat, fix_.auths, {}, &stats).status());
  EXPECT_GE(stats.iterations, 1u);
  EXPECT_GT(stats.pairs_considered, 0u);
}

TEST_F(ChaseTest, SemiNaiveMatchesNaiveReferenceOnMedicalPolicy) {
  // Fig. 2/3 policy plus the §3.2 extra grant that makes derivations fire.
  AuthorizationSet auths = fix_.auths;
  ASSERT_OK(auths.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed, ChaseClosure(fix_.cat, auths));
  EXPECT_EQ(CanonicalPolicy(fix_.cat, closed),
            CanonicalPolicy(fix_.cat, NaiveChaseOracle(fix_.cat, auths)));
}

TEST_F(ChaseTest, SemiNaiveMatchesNaiveReferenceOnRandomizedSchemas) {
  for (const std::uint64_t seed : {11u, 23u, 37u, 58u}) {
    Rng rng(seed);
    workload::FederationConfig fed_config;
    fed_config.servers = 3;
    fed_config.relations = 5;
    const workload::Federation fed =
        workload::GenerateFederation(fed_config, rng);
    workload::AuthzConfig authz_config;
    authz_config.base_grant_prob = 0.5;
    authz_config.path_grants_per_server = 2;
    authz_config.max_path_atoms = 2;
    const AuthorizationSet auths =
        workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
    ChaseOptions options;
    options.max_path_atoms = 3;  // keep the naïve oracle tractable
    ASSERT_OK_AND_ASSIGN(AuthorizationSet closed,
                         ChaseClosure(fed.catalog, auths, options));
    EXPECT_EQ(CanonicalPolicy(fed.catalog, closed),
              CanonicalPolicy(fed.catalog,
                              NaiveChaseOracle(fed.catalog, auths,
                                               options.max_path_atoms)))
        << "seed " << seed;
  }
}

TEST_F(ChaseTest, ThreadCountDoesNotChangeClosureOrStats) {
  AuthorizationSet auths = fix_.auths;
  ASSERT_OK(auths.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));
  ChaseOptions sequential;
  sequential.threads = 1;
  ChaseStats seq_stats;
  ASSERT_OK_AND_ASSIGN(AuthorizationSet seq,
                       ChaseClosure(fix_.cat, auths, sequential, &seq_stats));
  ChaseOptions parallel;
  parallel.threads = 4;
  ChaseStats par_stats;
  ASSERT_OK_AND_ASSIGN(AuthorizationSet par,
                       ChaseClosure(fix_.cat, auths, parallel, &par_stats));
  EXPECT_EQ(seq.ToString(fix_.cat), par.ToString(fix_.cat));
  EXPECT_EQ(seq_stats.iterations, par_stats.iterations);
  EXPECT_EQ(seq_stats.pairs_considered, par_stats.pairs_considered);
  EXPECT_EQ(seq_stats.derived_rules, par_stats.derived_rules);
}

TEST_F(ChaseTest, ParallelChaseWithObservabilityEnabled) {
  // The per-round spans and counters fire from worker threads; the recorders
  // must stay consistent (this is the TSan target for the obs layer) and the
  // exported trace must still validate — per-thread nesting intact.
  obs::Tracer::Get().Enable();
  obs::MetricsRegistry::Get().Enable();
  AuthorizationSet auths = fix_.auths;
  ASSERT_OK(auths.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));
  ChaseOptions options;
  options.threads = 4;
  ASSERT_OK(ChaseClosure(fix_.cat, auths, options).status());
  obs::Tracer::Get().Disable();
  obs::MetricsRegistry::Get().Disable();
  std::string error;
  EXPECT_TRUE(
      obs::ValidateChromeTraceJson(obs::Tracer::Get().ChromeTraceJson(), &error))
      << error;
}

TEST_F(ChaseTest, EmptyInputYieldsEmptyClosure) {
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed,
                       ChaseClosure(fix_.cat, AuthorizationSet{}));
  EXPECT_EQ(closed.size(), 0u);
}

// --- Incremental maintenance (DESIGN.md §16) -------------------------------

// The from-scratch answer an incremental closure must match byte for byte.
std::string CanonicalChase(const catalog::Catalog& cat,
                           const AuthorizationSet& base) {
  auto closed = ChaseClosure(cat, base);
  CISQP_CHECK_MSG(closed.ok(), closed.status().ToString());
  closed->Canonicalize();
  return closed->ToString(cat);
}

TEST_F(ChaseTest, IncrementalGrantMatchesFromScratchChase) {
  ASSERT_OK_AND_ASSIGN(IncrementalClosure inc,
                       IncrementalClosure::Build(fix_.cat, fix_.auths));
  EXPECT_EQ(inc.closed().ToString(fix_.cat), CanonicalChase(fix_.cat, fix_.auths));

  // The §3.2 grant that makes derivations fire: the delta round must derive
  // exactly what a batch chase over the edited base would.
  Authorization grant;
  grant.server = Server(fix_.cat, "S_D");
  grant.attributes = Attrs(fix_.cat, {"Patient", "Disease", "Physician"});
  ASSERT_OK_AND_ASSIGN(ClosureDelta delta, inc.AddRule(grant));

  AuthorizationSet edited = fix_.auths;
  ASSERT_OK(edited.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));
  EXPECT_EQ(inc.closed().ToString(fix_.cat), CanonicalChase(fix_.cat, edited));
  EXPECT_TRUE(delta.changed());
  EXPECT_FALSE(delta.full);  // S_D already had rules: no empty<->non-empty flip
  EXPECT_TRUE(delta.servers.Contains(Server(fix_.cat, "S_D")));
  EXPECT_EQ(delta.relations.ids(), RuleRelations(fix_.cat, grant).ids());
  EXPECT_GT(delta.added_rules, 0u);
}

TEST_F(ChaseTest, IncrementalRevokeMatchesFromScratchChase) {
  AuthorizationSet base = fix_.auths;
  ASSERT_OK(base.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));
  ASSERT_OK_AND_ASSIGN(IncrementalClosure inc,
                       IncrementalClosure::Build(fix_.cat, base));

  // Revoking the grant must rederive S_D back to the original closure: the
  // derived joined views lose their only derivation.
  Authorization grant;
  grant.server = Server(fix_.cat, "S_D");
  grant.attributes = Attrs(fix_.cat, {"Patient", "Disease", "Physician"});
  ASSERT_OK_AND_ASSIGN(ClosureDelta delta, inc.RevokeRule(grant));
  EXPECT_EQ(inc.closed().ToString(fix_.cat), CanonicalChase(fix_.cat, fix_.auths));
  EXPECT_TRUE(delta.changed());
  EXPECT_GT(delta.removed_rules, 0u);

  // Revoking a rule that is not in the base policy is typed kNotFound and
  // leaves the object usable.
  const auto missing = inc.RevokeRule(grant);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(inc.closed().ToString(fix_.cat), CanonicalChase(fix_.cat, fix_.auths));
}

TEST_F(ChaseTest, SubsumedGrantChangesBaseButNotClosure) {
  ASSERT_OK_AND_ASSIGN(IncrementalClosure inc,
                       IncrementalClosure::Build(fix_.cat, fix_.auths));
  const std::size_t base_before = inc.base().size();
  const std::string closed_before = inc.closed().ToString(fix_.cat);

  // S_H holds {Patient, Disease, Physician} on Hospital (Fig. 2); a narrower
  // grant on the same (server, path) is subsumed by it in the minimized form.
  Authorization narrow;
  narrow.server = Server(fix_.cat, "S_H");
  narrow.attributes = Attrs(fix_.cat, {"Patient"});
  ASSERT_OK_AND_ASSIGN(ClosureDelta delta, inc.AddRule(narrow));

  EXPECT_FALSE(delta.changed());
  EXPECT_EQ(delta.added_rules, 0u);
  EXPECT_EQ(delta.removed_rules, 0u);
  EXPECT_EQ(inc.base().size(), base_before + 1);  // base keeps the edit
  EXPECT_EQ(inc.closed().ToString(fix_.cat), closed_before);
  // And it still matches the from-scratch oracle over the grown base.
  EXPECT_EQ(inc.closed().ToString(fix_.cat),
            CanonicalChase(fix_.cat, inc.base()));
}

TEST_F(ChaseTest, IncrementalEditScriptTracksOracleOnRandomizedSchemas) {
  for (const std::uint64_t seed : {5u, 19u, 42u}) {
    Rng rng(seed);
    workload::FederationConfig fed_config;
    fed_config.servers = 3;
    fed_config.relations = 5;
    const workload::Federation fed =
        workload::GenerateFederation(fed_config, rng);
    workload::AuthzConfig authz_config;
    authz_config.base_grant_prob = 0.5;
    authz_config.path_grants_per_server = 2;
    authz_config.max_path_atoms = 2;
    AuthorizationSet base =
        workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
    auto built = IncrementalClosure::Build(fed.catalog, base);
    ASSERT_OK(built.status());
    IncrementalClosure inc = std::move(*built);

    // Flip membership of each candidate rule in turn; after every edit the
    // incremental closure equals the from-scratch canonical chase.
    std::vector<Authorization> pool = base.All();
    rng.Shuffle(pool);
    std::size_t edits = 0;
    for (const Authorization& cand : pool) {
      if (edits >= 6) break;
      const bool grant = !inc.base().Contains(cand);
      const auto edited = grant ? inc.AddRule(cand) : inc.RevokeRule(cand);
      ASSERT_OK(edited.status());
      EXPECT_EQ(inc.closed().ToString(fed.catalog),
                CanonicalChase(fed.catalog, inc.base()))
          << "seed " << seed << " edit " << edits;
      ++edits;
    }
  }
}

TEST_F(ChaseTest, RepeatedEditsDoNotAccumulateTowardTheDerivedRulesCap) {
  // The cap bounds the *closure*, not lifetime chase work: a long
  // grant/revoke history whose every intermediate closure fits under the
  // cap must never trip kResourceExhausted. (It used to — edits fed one
  // running counter, so revokes' rechases re-counted old derivations until
  // the long-lived closure spuriously degraded to full-sweep serving.)
  AuthorizationSet edited = fix_.auths;
  ASSERT_OK(edited.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));
  ChaseStats batch;
  ASSERT_OK(ChaseClosure(fix_.cat, edited, {}, &batch).status());
  ASSERT_GT(batch.derived_rules, 0u);

  ChaseOptions options;
  options.max_derived_rules = batch.derived_rules;  // tight but sufficient
  ASSERT_OK_AND_ASSIGN(
      IncrementalClosure inc,
      IncrementalClosure::Build(fix_.cat, fix_.auths, options));
  Authorization grant;
  grant.server = Server(fix_.cat, "S_D");
  grant.attributes = Attrs(fix_.cat, {"Patient", "Disease", "Physician"});
  for (int round = 0; round < 8; ++round) {
    SCOPED_TRACE(::testing::Message() << "round " << round);
    ASSERT_OK(inc.AddRule(grant).status());
    ASSERT_OK(inc.RevokeRule(grant).status());
  }
  EXPECT_EQ(inc.closed().ToString(fix_.cat),
            CanonicalChase(fix_.cat, fix_.auths));
}

TEST_F(ChaseTest, IncrementalBuildHonorsDerivedRulesCap) {
  AuthorizationSet base = fix_.auths;
  ASSERT_OK(base.Add(fix_.cat, "S_D", {"Patient", "Disease", "Physician"}, {}));
  ChaseOptions options;
  options.max_derived_rules = 1;
  const auto built = IncrementalClosure::Build(fix_.cat, base, options);
  EXPECT_EQ(built.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace cisqp::authz
