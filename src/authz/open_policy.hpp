// Open-policy variant (paper §3.1 footnote 1): visibility by default,
// restricted by negative rules.
//
// A denial `[Attributes, JoinPath] ⊣ Server` forbids `Server` from viewing
// any relation that exposes ALL the listed attributes joined (at least)
// along the listed path:
//
//     fires(denial, R)  ⇔  Attributes ⊆ Rπ ∪ Rσ  ∧  JoinPath ⊆ R⋈
//
// The duality with Def. 3.3 is deliberate and asymmetric in the same
// direction the paper argues for positive rules: *more* attributes and a
// *longer* construction path always carry at least as much information, so a
// view that exposes a superset of a denied association is denied too; a view
// exposing only part of the denied attribute set is not (denying the
// association, not the attributes — a singleton attribute set with an empty
// path denies the attribute outright). This design is ours: the paper
// delegates open-policy semantics to [17] without fixing them; DESIGN.md §2
// records the substitution.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "authz/policy.hpp"

namespace cisqp::authz {

/// One negative rule `[Attributes, JoinPath] ⊣ Server`.
struct Denial {
  IdSet attributes;
  JoinPath path;
  catalog::ServerId server = catalog::kInvalidId;

  /// True iff this denial forbids `profile` (see file comment).
  bool Fires(const Profile& profile) const {
    return attributes.IsSubsetOf(profile.VisibleAttributes()) &&
           path.IsSubsetOf(profile.join);
  }

  /// "[{A, B}, {(C, D)}] -| S".
  std::string ToString(const catalog::Catalog& cat) const;

  friend bool operator==(const Denial&, const Denial&) = default;
};

/// An open policy: everything is visible unless a denial fires.
class OpenPolicySet : public Policy {
 public:
  OpenPolicySet() = default;

  /// Adds a denial. Validation mirrors Def. 3.1: non-empty attribute set,
  /// cross-relation path atoms, known ids; duplicates rejected.
  Status Add(const catalog::Catalog& cat, Denial denial);

  /// Name-based convenience, mirroring AuthorizationSet::Add.
  Status Add(const catalog::Catalog& cat, std::string_view server_name,
             const std::vector<std::string>& attribute_names,
             const std::vector<std::pair<std::string, std::string>>& path_pairs);

  /// True unless some denial of `server` fires on `profile`.
  bool CanView(const Profile& profile,
               catalog::ServerId server) const override;

  /// On deny, reports kDenialFired with the firing denial's attribute set
  /// as the "matched" rule (the association the server must not see).
  CanViewExplanation ExplainCanView(const Profile& profile,
                                    catalog::ServerId server) const override;

  std::size_t size() const noexcept { return total_; }

  std::vector<Denial> ForServer(catalog::ServerId server) const;

  std::string ToString(const catalog::Catalog& cat) const;

 private:
  std::vector<std::vector<Denial>> by_server_;
  std::size_t total_ = 0;
};

}  // namespace cisqp::authz
