// Reporting helpers: render a plan with its safe assignment for humans —
// Graphviz DOT (one node per operator, colored by executing server, dashed
// edges for data shipments) and a Markdown release table for policy reviews.
#pragma once

#include <string>

#include "planner/verifier.hpp"

namespace cisqp::planner {

struct DotOptions {
  /// Graph name in the `digraph <name> { ... }` header.
  std::string graph_name = "cisqp_plan";
  /// Include the per-node profile in the label (verbose).
  bool show_profiles = false;
};

/// Renders `plan` + `assignment` as Graphviz DOT. Operator nodes are boxes
/// labelled "n<id> <op> [master, slave]", filled per master server (a stable
/// palette keyed by server id); child→parent data-flow edges are solid when
/// colocated and dashed with a "ship" label when the flow crosses servers.
/// The assignment must be structurally valid for `plan`.
Result<std::string> ToDot(const catalog::Catalog& cat,
                          const plan::QueryPlan& plan,
                          const Assignment& assignment,
                          const DotOptions& options = {});

/// Renders the releases of an assignment as a Markdown table
/// (| node | from | to | profile | flow |), for audit documents.
Result<std::string> ReleasesToMarkdown(const catalog::Catalog& cat,
                                       const plan::QueryPlan& plan,
                                       const Assignment& assignment,
                                       const VerifyOptions& options = {});

}  // namespace cisqp::planner
