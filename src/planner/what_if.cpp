#include "planner/what_if.hpp"

#include <algorithm>

namespace cisqp::planner {

Result<std::vector<RepairSuggestion>> SuggestRepairs(
    const catalog::Catalog& cat, const authz::AuthorizationSet& auths,
    const plan::QueryPlan& plan, const RepairOptions& options) {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cat));

  {
    SafePlanner planner(cat, auths, options.planner_options);
    CISQP_ASSIGN_OR_RETURN(PlanningReport report, planner.Analyze(plan));
    if (report.feasible) return std::vector<RepairSuggestion>{};
  }

  std::vector<catalog::ServerId> servers = options.candidate_servers;
  if (servers.empty()) {
    for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
      servers.push_back(s);
    }
  }

  const std::vector<authz::Profile> profiles = ComputeNodeProfiles(cat, plan);
  std::vector<RepairSuggestion> suggestions;
  for (catalog::ServerId server : servers) {
    for (const authz::Profile& profile : profiles) {
      authz::Authorization candidate{profile.VisibleAttributes(), profile.join,
                                     server};
      if (candidate.attributes.empty() || auths.Contains(candidate)) continue;
      authz::AuthorizationSet extended = auths;
      if (!extended.Add(cat, candidate).ok()) continue;
      SafePlanner planner(cat, extended, options.planner_options);
      CISQP_ASSIGN_OR_RETURN(PlanningReport report, planner.Analyze(plan));
      if (!report.feasible) continue;
      // Dedup (several nodes can share a profile).
      const bool duplicate = std::any_of(
          suggestions.begin(), suggestions.end(),
          [&](const RepairSuggestion& s) { return s.grant == candidate; });
      if (duplicate) continue;
      suggestions.push_back(RepairSuggestion{candidate, plan.JoinCount()});
    }
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const RepairSuggestion& a, const RepairSuggestion& b) {
              if (a.grant.attributes.size() != b.grant.attributes.size()) {
                return a.grant.attributes.size() < b.grant.attributes.size();
              }
              return a.grant.server < b.grant.server;
            });
  if (options.max_suggestions != 0 &&
      suggestions.size() > options.max_suggestions) {
    suggestions.resize(options.max_suggestions);
  }
  return suggestions;
}

}  // namespace cisqp::planner
