// String interning: bidirectional mapping between names and dense u32 ids.
//
// The paper assumes globally distinct relation/attribute names (its §2
// simplification); the catalog enforces that on top of this table. Interning
// lets the hot paths — profile algebra, join-path equality, CanView — work on
// sorted vectors of 32-bit ids instead of strings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace cisqp {

/// Dense id assigned by a SymbolTable. 0 is a valid id; kInvalidSymbol marks
/// "no symbol".
using SymbolId = std::uint32_t;
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

/// Append-only intern table. Ids are assigned densely in insertion order and
/// are stable for the lifetime of the table.
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Returns the id for `name`, interning it on first sight.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidSymbol when never interned.
  SymbolId Find(std::string_view name) const noexcept;

  /// Returns the name for `id`. Precondition: `id` was returned by Intern.
  const std::string& NameOf(SymbolId id) const;

  bool Contains(std::string_view name) const noexcept {
    return Find(name) != kInvalidSymbol;
  }

  std::size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string_view, SymbolId> index_;  // views into names_
};

}  // namespace cisqp
