// E5 — planning scalability: the two-traversal algorithm's cost as the query
// tree and the policy grow (the paper argues the algorithm fits a practical
// two-step optimizer; it must stay far below optimization cost).
#include "bench_util.hpp"

#include "workload/generator.hpp"

namespace cisqp::bench {
namespace {

struct ChainWorkload {
  workload::Federation fed;
  authz::AuthorizationSet auths;
  plan::QueryPlan plan;
};

/// A chain query of `joins` joins over a chain-shaped federation where every
/// server may view everything (full-visibility policy exercises the worst
/// case of candidate propagation: every server stays a candidate).
ChainWorkload MakeChain(std::size_t joins, std::size_t servers) {
  ChainWorkload out{workload::Federation{}, {}, plan::QueryPlan{}};
  catalog::Catalog& cat = out.fed.catalog;
  for (std::size_t s = 0; s < servers; ++s) {
    UnwrapStatus(cat.AddServer("S" + std::to_string(s)).status(), "server");
  }
  const std::size_t relations = joins + 1;
  for (std::size_t r = 0; r < relations; ++r) {
    UnwrapStatus(
        cat.AddRelation("R" + std::to_string(r),
                        static_cast<catalog::ServerId>(r % servers),
                        {{"K" + std::to_string(r), catalog::ValueType::kInt64},
                         {"V" + std::to_string(r), catalog::ValueType::kInt64}},
                        {"K" + std::to_string(r)})
            .status(),
        "relation");
  }
  for (std::size_t r = 0; r + 1 < relations; ++r) {
    UnwrapStatus(cat.AddJoinEdge("V" + std::to_string(r), "K" + std::to_string(r + 1)),
                 "edge");
  }

  // Full-visibility policy: every server granted every prefix path.
  for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
    IdSet attrs;
    std::vector<authz::JoinAtom> atoms;
    for (std::size_t r = 0; r < relations; ++r) {
      attrs.UnionWith(cat.relation(static_cast<catalog::RelationId>(r)).attribute_set);
      if (r > 0) {
        atoms.push_back(authz::JoinAtom::Make(
            cat.FindAttribute("V" + std::to_string(r - 1)).value(),
            cat.FindAttribute("K" + std::to_string(r)).value()));
      }
      // Grant every contiguous prefix (the profiles the chain plan produces),
      // and every suffix-of-prefix attribute subset is implied by ⊆.
      UnwrapStatus(
          [&] {
            authz::Authorization auth;
            auth.attributes = attrs;
            auth.path = authz::JoinPath::FromAtoms(atoms);
            auth.server = s;
            Status status = out.auths.Add(cat, std::move(auth));
            if (status.code() == StatusCode::kAlreadyExists) return Status::Ok();
            return status;
          }(),
          "auth");
      // Single-relation grants for slave views.
      authz::Authorization single;
      single.attributes = cat.relation(static_cast<catalog::RelationId>(r)).attribute_set;
      single.server = s;
      const Status status = out.auths.Add(cat, std::move(single));
      if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
        UnwrapStatus(status, "single auth");
      }
    }
  }

  // SELECT K0, V_last FROM R0 JOIN ... (chain).
  plan::QuerySpec spec;
  spec.first_relation = 0;
  for (std::size_t r = 1; r < relations; ++r) {
    plan::JoinStep step;
    step.relation = static_cast<catalog::RelationId>(r);
    step.atoms.push_back(algebra::EquiJoinAtom{
        cat.FindAttribute("V" + std::to_string(r - 1)).value(),
        cat.FindAttribute("K" + std::to_string(r)).value()});
    spec.joins.push_back(std::move(step));
  }
  spec.select_list = {cat.FindAttribute("K0").value(),
                      cat.FindAttribute("V" + std::to_string(relations - 1)).value()};
  out.plan = Unwrap(plan::PlanBuilder(cat).Build(spec), "chain plan");
  return out;
}

void PrintScaleTable() {
  PrintHeader("E5 / §5 two-traversal algorithm",
              "planning work (CanView probes) vs query size under a "
              "full-visibility policy (worst-case candidate sets)");
  Artifact artifact("planning_scale", "E5 / §5 two-traversal algorithm",
                    "CanView probes vs query size under full visibility");
  std::printf("%-8s %-8s %-10s %-14s %-12s\n", "joins", "nodes", "servers",
              "canview", "feasible");
  for (const std::size_t joins : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const ChainWorkload w = MakeChain(joins, 8);
    planner::SafePlanner planner(w.fed.catalog, w.auths);
    const auto report = Unwrap(planner.Analyze(w.plan), "analyze");
    std::printf("%-8zu %-8d %-10zu %-14zu %s\n", joins, w.plan.node_count(),
                w.fed.catalog.server_count(), report.can_view_calls,
                report.feasible ? "yes" : "no");
    artifact.Row()
        .Value("joins", joins)
        .Value("nodes", w.plan.node_count())
        .Value("servers", w.fed.catalog.server_count())
        .Value("canview_calls", report.can_view_calls)
        .Value("feasible", report.feasible);
  }
  artifact.Write();
  std::printf("\n");
}

void BM_PlanChainJoins(benchmark::State& state) {
  const ChainWorkload w = MakeChain(static_cast<std::size_t>(state.range(0)), 8);
  planner::SafePlanner planner(w.fed.catalog, w.auths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Analyze(w.plan));
  }
  state.counters["nodes"] = w.plan.node_count();
}
BENCHMARK(BM_PlanChainJoins)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void BM_PlanVsServerCount(benchmark::State& state) {
  const ChainWorkload w = MakeChain(16, static_cast<std::size_t>(state.range(0)));
  planner::SafePlanner planner(w.fed.catalog, w.auths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Analyze(w.plan));
  }
}
BENCHMARK(BM_PlanVsServerCount)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PlanVsPolicySize(benchmark::State& state) {
  // Random-policy planning over a generated federation; policy size sweeps.
  Rng rng(77);
  workload::FederationConfig fed_config;
  fed_config.servers = 6;
  fed_config.relations = 10;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = 0.8;
  authz_config.path_grants_per_server = static_cast<std::size_t>(state.range(0));
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
  workload::QueryConfig query_config;
  query_config.relations = 5;
  const auto spec = Unwrap(workload::GenerateQuery(fed.catalog, query_config, rng),
                           "query");
  const auto plan = Unwrap(plan::PlanBuilder(fed.catalog).Build(spec), "plan");
  planner::SafePlanner planner(fed.catalog, auths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Analyze(plan));
  }
  state.counters["rules"] = static_cast<double>(auths.size());
}
BENCHMARK(BM_PlanVsPolicySize)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintScaleTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
