// Shared helpers for the experiment harness (bench/).
//
// Every bench binary regenerates one experiment of EXPERIMENTS.md: it first
// prints the experiment's table/series to stdout (the artifact), then runs
// google-benchmark timings for the operations involved. Alongside the
// printed table each experiment also records its series into an `Artifact`,
// which lands as machine-readable BENCH_<name>.json (in $CISQP_BENCH_OUT_DIR
// when set, else the working directory) — scripts/run_experiments.sh
// collects these for downstream plotting.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/trace.hpp"
#include "plan/builder.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "workload/medical.hpp"

namespace cisqp::bench {

/// Dies with a message when a Status/Result is not OK — bench setup only.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// Thread count for the parallel stages of a bench run: $CISQP_BENCH_THREADS
/// when set (scripts/run_experiments.sh forwards its --threads flag this
/// way), else 0 = hardware concurrency. Results are identical at any
/// setting; only wall-clock changes.
inline std::size_t BenchThreads() {
  const char* env = std::getenv("CISQP_BENCH_THREADS");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 0;
}

/// The effective parallelism a `threads` option resolves to (0 = hardware).
inline std::size_t ResolveThreads(std::size_t threads) {
  return threads == 0 ? ThreadPool::HardwareConcurrency() : threads;
}

/// The paper's plan (Fig. 2) for the Example 2.2 query.
inline plan::QueryPlan PaperPlan(const catalog::Catalog& cat) {
  auto spec = Unwrap(
      sql::ParseAndBind(cat, workload::MedicalScenario::kPaperQuery),
      "parse paper query");
  return Unwrap(plan::PlanBuilder(cat).Build(spec), "build paper plan");
}

/// Section header for the printed experiment artifact.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper artifact/claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Machine-readable experiment artifact. Rows of key/value cells accumulate
/// via Row()/Value() chains and Write() renders them as
/// BENCH_<name>.json: {"experiment","claim","rows":[{...},...]}.
class Artifact {
 public:
  Artifact(std::string name, std::string experiment, std::string claim)
      : name_(std::move(name)), experiment_(std::move(experiment)),
        claim_(std::move(claim)) {}

  /// Starts a new row; subsequent Value() calls fill it.
  Artifact& Row() {
    rows_.emplace_back();
    return *this;
  }

  Artifact& Value(std::string_view key, std::string_view v) {
    return Cell(key, "\"" + obs::JsonEscape(v) + "\"");
  }
  Artifact& Value(std::string_view key, const char* v) {
    return Value(key, std::string_view(v));
  }
  Artifact& Value(std::string_view key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return Cell(key, buf);
  }
  Artifact& Value(std::string_view key, std::int64_t v) {
    return Cell(key, std::to_string(v));
  }
  Artifact& Value(std::string_view key, std::size_t v) {
    return Cell(key, std::to_string(v));
  }
  Artifact& Value(std::string_view key, int v) {
    return Cell(key, std::to_string(v));
  }
  Artifact& Value(std::string_view key, bool v) {
    return Cell(key, v ? "true" : "false");
  }
  /// Embeds `raw` verbatim as the cell value — it must already be valid JSON
  /// (e.g. a QueryProfile::ToJson document).
  Artifact& Json(std::string_view key, std::string raw) {
    return Cell(key, std::move(raw));
  }

  std::string ToJson() const {
    std::string out = "{\"experiment\":\"" + obs::JsonEscape(experiment_) +
                      "\",\"claim\":\"" + obs::JsonEscape(claim_) +
                      "\",\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r != 0) out += ',';
      out += '{';
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c != 0) out += ',';
        out += "\"" + obs::JsonEscape(rows_[r][c].first) +
               "\":" + rows_[r][c].second;
      }
      out += '}';
    }
    out += "]}";
    return out;
  }

  /// Writes BENCH_<name>.json into $CISQP_BENCH_OUT_DIR (or the working
  /// directory) and reports the path on stdout.
  void Write() const {
    const char* dir = std::getenv("CISQP_BENCH_OUT_DIR");
    const std::string path = (dir != nullptr && *dir != '\0')
                                 ? std::string(dir) + "/BENCH_" + name_ + ".json"
                                 : "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    const std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("artifact: %s (%zu row(s))\n", path.c_str(), rows_.size());
  }

 private:
  Artifact& Cell(std::string_view key, std::string rendered) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().emplace_back(std::string(key), std::move(rendered));
    return *this;
  }

  std::string name_;
  std::string experiment_;
  std::string claim_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace cisqp::bench
