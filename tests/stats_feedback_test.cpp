// Tests for the estimate feedback store: signature coincidence between
// executed plan subtrees and optimizer relation subsets, harvesting from a
// profiled execution, and consultation by PlanBuilder and the DP optimizer.
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "plan/dp_optimizer.hpp"
#include "plan/stats.hpp"
#include "planner/safe_planner.hpp"
#include "test_util.hpp"

namespace cisqp::plan {
namespace {

using cisqp::testing::MedicalFixture;

std::vector<catalog::RelationId> SubtreeRelations(const PlanNode& node) {
  std::vector<catalog::RelationId> out;
  const std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.op == PlanOp::kRelation) out.push_back(n.relation);
    if (n.left != nullptr) walk(*n.left);
    if (n.right != nullptr) walk(*n.right);
  };
  walk(node);
  return out;
}

class StatsFeedbackTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;
};

TEST_F(StatsFeedbackTest, RecordAndLookup) {
  StatsFeedback feedback;
  EXPECT_TRUE(feedback.empty());
  EXPECT_FALSE(feedback.Lookup("R[r1,]S[]J[]").has_value());
  feedback.Record("R[r1,]S[]J[]", 42.0);
  ASSERT_TRUE(feedback.Lookup("R[r1,]S[]J[]").has_value());
  EXPECT_DOUBLE_EQ(*feedback.Lookup("R[r1,]S[]J[]"), 42.0);
  feedback.Record("R[r1,]S[]J[]", 7.0);  // latest wins
  EXPECT_DOUBLE_EQ(*feedback.Lookup("R[r1,]S[]J[]"), 7.0);
  EXPECT_EQ(feedback.size(), 1u);
}

TEST_F(StatsFeedbackTest, SubtreeSignatureMatchesSpecSubsetSignature) {
  // The coincidence the feedback loop rests on: for every MAXIMAL subtree of
  // a built plan — the topmost node covering its relation set — the
  // executed-plan signature equals the spec-subset signature of those
  // relations. Non-maximal nodes (a bare relation leaf under its pushed-down
  // σ) legitimately lack the subset's atoms, and the feedback store never
  // looks them up: DP subset estimates always address the full shape.
  for (const std::string_view sql :
       {workload::MedicalScenario::kPaperQuery,
        std::string_view(
            "SELECT Patient, Physician FROM Hospital JOIN Disease_list "
            "ON Disease = Illness WHERE Treatment = 'chemo' AND "
            "Physician = 'p1'")}) {
    ASSERT_OK_AND_ASSIGN(const QuerySpec spec,
                         sql::ParseAndBind(fix_.cat, sql));
    ASSERT_OK_AND_ASSIGN(const QueryPlan plan,
                         PlanBuilder(fix_.cat).Build(spec));
    int checked = 0;
    const std::function<void(const PlanNode&, const PlanNode*)> visit =
        [&](const PlanNode& node, const PlanNode* parent) {
          const bool maximal =
              parent == nullptr || parent->op == PlanOp::kProject ||
              SubtreeRelations(*parent).size() > SubtreeRelations(node).size();
          if (node.op != PlanOp::kProject && maximal) {
            ++checked;
            EXPECT_EQ(
                SubtreeSignature(fix_.cat, node),
                SpecSubsetSignature(fix_.cat, spec, SubtreeRelations(node)))
                << "node n" << node.id << " of " << sql;
          }
          if (node.left != nullptr) visit(*node.left, &node);
          if (node.right != nullptr) visit(*node.right, &node);
        };
    ASSERT_NE(plan.root(), nullptr);
    visit(*plan.root(), nullptr);
    EXPECT_GE(checked, 2) << sql;
  }
}

TEST_F(StatsFeedbackTest, ProjectIsTransparentInSignatures) {
  ASSERT_OK_AND_ASSIGN(
      const QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  ASSERT_OK_AND_ASSIGN(const QueryPlan plan,
                       PlanBuilder(fix_.cat).Build(spec));
  plan.ForEachPreOrder([&](const PlanNode& node) {
    if (node.op != PlanOp::kProject) return;
    EXPECT_EQ(SubtreeSignature(fix_.cat, node),
              SubtreeSignature(fix_.cat, *node.left));
  });
}

TEST_F(StatsFeedbackTest, HarvestFromProfiledExecution) {
  exec::Cluster cluster(fix_.cat);
  Rng rng(7);
  ASSERT_OK(workload::MedicalScenario::PopulateCluster(
      cluster, workload::MedicalScenario::DataConfig{150, 0.5, 0.5, 20}, rng));
  ASSERT_OK_AND_ASSIGN(
      const QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  QueryPlan plan = fix_.PaperPlan();
  planner::SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(const planner::SafePlan sp, planner.Plan(plan));

  exec::DistributedExecutor executor(cluster, fix_.auths);
  obs::QueryProfile profile;
  exec::ExecutionOptions options;
  options.profile = &profile;
  ASSERT_OK_AND_ASSIGN(const exec::ExecutionResult result,
                       executor.Execute(plan, sp.assignment, options));

  StatsFeedback feedback;
  const std::size_t harvested =
      HarvestActualCardinalities(fix_.cat, plan, profile, feedback);
  EXPECT_GT(harvested, 0u);
  EXPECT_EQ(harvested, feedback.size());

  // The full-relation-set signature carries the query's (pre-projection) row
  // count — which for the paper's plain π equals the result's row count.
  const auto full = feedback.Lookup(
      SpecSubsetSignature(fix_.cat, spec, spec.Relations()));
  ASSERT_TRUE(full.has_value());
  EXPECT_DOUBLE_EQ(*full, static_cast<double>(result.table.row_count()));

  // Every leaf's signature carries its table cardinality (no WHERE here).
  plan.ForEachPreOrder([&](const PlanNode& node) {
    if (node.op != PlanOp::kRelation) return;
    const auto rows = feedback.Lookup(SubtreeSignature(fix_.cat, node));
    ASSERT_TRUE(rows.has_value()) << "leaf n" << node.id;
    EXPECT_DOUBLE_EQ(*rows,
                     static_cast<double>(cluster.TableOf(node.relation)
                                             .row_count()));
  });
}

TEST_F(StatsFeedbackTest, PlanBuilderPrefersMeasuredCardinality) {
  ASSERT_OK_AND_ASSIGN(
      const QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  ASSERT_OK_AND_ASSIGN(const QueryPlan plan,
                       PlanBuilder(fix_.cat).Build(spec));
  const PlanNode* join = nullptr;
  plan.ForEachPreOrder([&](const PlanNode& node) {
    if (join == nullptr && node.op == PlanOp::kJoin) join = &node;
  });
  ASSERT_NE(join, nullptr);

  StatsFeedback feedback;
  feedback.Record(SubtreeSignature(fix_.cat, *join), 123.0);
  const PlanBuilder with(fix_.cat, nullptr, &feedback);
  EXPECT_DOUBLE_EQ(with.EstimateCardinality(*join), 123.0);
  // Without the store the model estimate applies (and differs).
  const PlanBuilder without(fix_.cat);
  EXPECT_NE(without.EstimateCardinality(*join), 123.0);
}

TEST_F(StatsFeedbackTest, DpOptimizerUsesMeasuredSubsetCardinalities) {
  ASSERT_OK_AND_ASSIGN(
      const QuerySpec spec,
      sql::ParseAndBind(fix_.cat,
                        "SELECT Plan, HealthAid FROM Insurance JOIN "
                        "Nat_registry ON Holder = Citizen"));
  // Default stats: 1000 rows each, key-like distincts -> join estimate 1000.
  ASSERT_OK_AND_ASSIGN(const DpOptimizerResult modeled,
                       OptimizeJoinOrder(fix_.cat, nullptr, spec));
  EXPECT_DOUBLE_EQ(modeled.estimated_cost, 1000.0);

  StatsFeedback feedback;
  feedback.Record(SpecSubsetSignature(fix_.cat, spec, spec.Relations()), 5.0);
  DpOptimizerOptions options;
  options.feedback = &feedback;
  ASSERT_OK_AND_ASSIGN(const DpOptimizerResult measured,
                       OptimizeJoinOrder(fix_.cat, nullptr, spec, options));
  EXPECT_DOUBLE_EQ(measured.estimated_cost, 5.0);
}

}  // namespace
}  // namespace cisqp::plan
