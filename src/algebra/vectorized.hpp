// Vectorized relational kernels over columnar batches (DESIGN.md §12).
//
// A ColumnarBatch is a (possibly lazy) view of a ColumnarTable: a column map
// (which source columns the view exposes, in order) plus an optional
// selection vector (which source rows, in order). The kernels compose views
// without touching cell data — σ narrows the selection, π remaps the column
// map — and only joins and explicit Materialize calls gather cells, once,
// into a fresh ColumnarTable. Row-at-a-time semantics are preserved exactly
// (output order included); src/testcheck/row_kernels keeps the original
// row implementations as the differential oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "algebra/expr.hpp"
#include "algebra/operators.hpp"
#include "common/thread_pool.hpp"
#include "storage/column.hpp"

namespace cisqp::algebra {

/// Rows per morsel when the caller doesn't say otherwise: large enough that
/// dispatch cost vanishes, small enough that a morsel's working set stays
/// cache-resident. Always rounded up to a multiple of 64 internally so each
/// morsel owns whole null-bitmap words.
inline constexpr std::size_t kDefaultMorselRows = 4096;

/// Intra-operator parallelism knobs for the vectorized kernels (DESIGN.md
/// §14). A default-constructed context — or any context whose pool has one
/// thread — makes every kernel take the exact sequential code path, so
/// `threads=1` is byte-for-byte (and instruction-for-instruction) the PR 5
/// engine.
struct MorselContext {
  /// Shared worker pool; nullptr means sequential.
  ThreadPool* pool = nullptr;
  /// Rows per morsel (rounded up to a multiple of 64; 0 = default).
  std::size_t morsel_rows = kDefaultMorselRows;
  /// log2 of the radix fan-out for partitioned join/distinct; 0 picks a
  /// fan-out from the build size and pool width.
  std::size_t radix_bits = 0;
  /// Inputs smaller than this stay on the sequential path even with a pool
  /// attached (morsel dispatch would cost more than it buys). Tests set 0 to
  /// force the parallel path onto tiny tables.
  std::size_t min_parallel_rows = 256;

  /// True when the kernels should fan out over `rows` work items.
  bool ShouldParallelize(std::size_t rows) const noexcept {
    return pool != nullptr && pool->thread_count() > 1 &&
           rows >= min_parallel_rows;
  }
};

/// Work counters the kernels fill while a KernelStatsScope is active on the
/// calling thread. Used by the query profiler to attribute hash-join and
/// dictionary-filter work to plan operators without changing any kernel
/// signature (the kernels are pinned by ColumnarBatch friendship).
struct KernelStats {
  std::uint64_t hash_build_rows = 0;     ///< rows inserted into join tables
  std::uint64_t hash_probe_rows = 0;     ///< non-NULL-key rows probed
  std::uint64_t hash_matches = 0;        ///< (build, probe) pairs emitted
  std::uint64_t dict_filter_lookups = 0; ///< rows filtered via dictionary
  std::uint64_t dict_filter_hits = 0;    ///< of those, rows that passed
  std::uint64_t rows_hashed = 0;         ///< row-hash computations performed
  std::uint64_t morsels = 0;             ///< morsels dispatched in parallel
  std::uint64_t partitions = 0;          ///< radix partitions fanned out
  /// Busy microseconds per pool worker inside parallel kernel sections
  /// (index = ThreadPool worker id; 0 is the participating caller). Only
  /// filled while a stats sink is active, like every other counter.
  std::vector<std::int64_t> worker_busy_us;

  /// Accumulates `other` into this (element-wise; worker_busy_us grows to
  /// the longer of the two).
  void MergeFrom(const KernelStats& other);
};

/// RAII: routes this thread's kernel counters into `stats` for the scope's
/// lifetime. Scopes nest (the inner sink wins); a null sink — and the
/// default state — makes the kernels skip counting entirely. Thread-local,
/// so concurrent queries on a shared pool never cross-contaminate.
class KernelStatsScope {
 public:
  explicit KernelStatsScope(KernelStats* stats) noexcept;
  ~KernelStatsScope();
  KernelStatsScope(const KernelStatsScope&) = delete;
  KernelStatsScope& operator=(const KernelStatsScope&) = delete;

  /// The calling thread's active sink, or nullptr.
  static KernelStats* Active() noexcept;

 private:
  KernelStats* previous_ = nullptr;
};

/// A lazy projection of selected rows of a shared columnar table.
class ColumnarBatch {
 public:
  ColumnarBatch() = default;

  /// The identity view of `table` (all columns, all rows).
  static ColumnarBatch FromTable(
      std::shared_ptr<const storage::ColumnarTable> table);

  bool valid() const noexcept { return source_ != nullptr; }
  std::size_t width() const noexcept { return col_map_.size(); }
  std::size_t row_count() const noexcept {
    return sel_ ? sel_->size() : source_->row_count();
  }

  /// Header entry of view column `c`.
  const storage::Column& column_at(std::size_t c) const {
    return source_->columns()[col_map_[c]];
  }
  /// The view's header, in view column order.
  std::vector<storage::Column> Header() const;

  /// First view column carrying `attribute`, if any.
  std::optional<std::size_t> ViewColumnIndex(
      catalog::AttributeId attribute) const;

  /// Physical column backing view column `c`.
  const storage::ColumnVector& physical(std::size_t c) const {
    return source_->column(col_map_[c]);
  }
  /// Physical row id of view row `r`.
  std::uint32_t physical_row(std::size_t r) const noexcept {
    return sel_ ? (*sel_)[r] : static_cast<std::uint32_t>(r);
  }

  /// True when the view is the whole source table unchanged.
  bool identity() const noexcept;

  /// The view as a self-contained ColumnarTable. Identity views return the
  /// shared source without copying; everything else gathers each column once.
  std::shared_ptr<const storage::ColumnarTable> Materialize() const;

  /// The view as a row Table (the external compatibility surface).
  storage::Table MaterializeRows() const;

 private:
  friend Result<ColumnarBatch> SelectBatch(const ColumnarBatch&,
                                           const Predicate&,
                                           const MorselContext&);
  friend Result<ColumnarBatch> ProjectBatch(
      const ColumnarBatch&, const std::vector<catalog::AttributeId>&, bool,
      const MorselContext&);
  friend ColumnarBatch DistinctBatch(const ColumnarBatch&,
                                     const MorselContext&);

  std::shared_ptr<const storage::ColumnarTable> source_;
  std::vector<std::size_t> col_map_;
  std::optional<storage::SelectionVector> sel_;
};

// Every kernel takes an optional MorselContext. The default (no pool) — and
// any context that fails MorselContext::ShouldParallelize — runs the exact
// sequential code the PR 5 engine ran; a context with a multi-thread pool
// fans the kernel's row loops out in morsels and reduces per-morsel results
// in morsel order, producing byte-identical batches at any thread count
// (DESIGN.md §14).

/// σ: narrows the selection vector to rows satisfying `predicate`; never
/// copies cells. Same SQL NULL semantics as the row kernel.
Result<ColumnarBatch> SelectBatch(const ColumnarBatch& input,
                                  const Predicate& predicate,
                                  const MorselContext& ctx = {});

/// π: remaps the column map (zero-copy); with `distinct`, additionally
/// narrows the selection to first occurrences (hashing raw column data).
Result<ColumnarBatch> ProjectBatch(const ColumnarBatch& input,
                                   const std::vector<catalog::AttributeId>& attrs,
                                   bool distinct = false,
                                   const MorselContext& ctx = {});

/// ⋈: hash equi-join on raw column data. Builds on the smaller input, emits
/// a gather list in probe order, and materializes the output once. Output
/// header and row order match the row kernel exactly. Parallel contexts use
/// a radix-partitioned build/probe (partition by low hash bits, per-partition
/// bucket-chained tables) with morsel-ordered output concatenation.
Result<ColumnarBatch> JoinBatches(const ColumnarBatch& left,
                                  const ColumnarBatch& right,
                                  const std::vector<EquiJoinAtom>& atoms,
                                  const MorselContext& ctx = {});

/// Natural join on every shared attribute; shared columns appear once (from
/// the left). Builds on the right, probes the left in order (row-kernel
/// output order).
Result<ColumnarBatch> NaturalJoinBatches(const ColumnarBatch& left,
                                         const ColumnarBatch& right,
                                         const MorselContext& ctx = {});

/// Removes duplicate view rows, keeping first occurrences (NULLs compare
/// equal, as in the row kernel).
ColumnarBatch DistinctBatch(const ColumnarBatch& input,
                            const MorselContext& ctx = {});

}  // namespace cisqp::algebra
