#include "serve/plan_cache.hpp"

#include "obs/metrics.hpp"

namespace cisqp::serve {

void PlanCache::Touch(Slot& slot, const std::string& key) {
  lru_.erase(slot.lru_it);
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
}

std::optional<CachedPlanEntry> PlanCache::Lookup(const std::string& key,
                                                 std::uint64_t epoch) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CISQP_METRIC_INC("serve.plan_cache.miss");
    return std::nullopt;
  }
  if (it->second.entry.epoch != epoch) {
    // A policy epoch bump made this entry unservable; evict eagerly so the
    // cache never holds plans no current request could use. Lookup outcomes
    // partition into {hit, miss, stale_eviction}: a stale hit counts as
    // stale only, never additionally as a miss (InvalidateBefore counts the
    // same event the same way when the sweep gets there first).
    stale_.fetch_add(1, std::memory_order_relaxed);
    CISQP_METRIC_INC("serve.plan_cache.stale_evictions");
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  CISQP_METRIC_INC("serve.plan_cache.hit");
  Touch(it->second, key);
  return it->second.entry;
}

void PlanCache::Insert(const std::string& key, CachedPlanEntry entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    Touch(it->second, key);
    return;
  }
  if (map_.size() >= capacity_) {
    const std::string& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
    CISQP_METRIC_INC("serve.plan_cache.lru_evictions");
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
}

std::size_t PlanCache::InvalidateBefore(std::uint64_t epoch) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t invalidated = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.entry.epoch < epoch) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
      ++invalidated;
    } else {
      ++it;
    }
  }
  if (invalidated > 0) {
    stale_.fetch_add(invalidated, std::memory_order_relaxed);
    CISQP_METRIC_ADD("serve.plan_cache.stale_evictions", invalidated);
  }
  return invalidated;
}

std::size_t PlanCache::AdvanceEpoch(std::uint64_t epoch,
                                    const IdSet& changed_relations) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t kept = 0;
  std::size_t evicted = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    CachedPlanEntry& entry = it->second.entry;
    // Only entries stamped with the immediately prior epoch are retention
    // candidates. An older stamp means a racing Serve inserted the entry
    // after at least one intervening edit had already swept the cache; that
    // edit's delta is unknown here, and re-stamping across it could revive
    // a plan (or a cached kInfeasible verdict) the intervening edit
    // invalidated even though *this* edit is disjoint.
    const bool retain = entry.epoch + 1 == epoch && !entry.relations.empty() &&
                        !entry.relations.Intersects(changed_relations);
    if (retain) {
      // The edit touched no relation of this query, so no CanView verdict
      // the plan (or the kInfeasible refusal) depends on changed; the entry
      // is as good as one planned under the new epoch.
      entry.epoch = epoch;
      ++kept;
      ++it;
    } else if (entry.epoch < epoch) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (kept > 0) {
    retained_.fetch_add(kept, std::memory_order_relaxed);
    CISQP_METRIC_ADD("serve.plan_cache.retained", kept);
  }
  if (evicted > 0) {
    stale_.fetch_add(evicted, std::memory_order_relaxed);
    CISQP_METRIC_ADD("serve.plan_cache.stale_evictions", evicted);
  }
  return kept;
}

void PlanCache::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

std::size_t PlanCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace cisqp::serve
