#include "authz/chase.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::authz {
namespace {

/// Fixed-width bitset over the catalog's join edges. Federations declare
/// tens of edges, so one or two words cover the whole schema.
class EdgeBits {
 public:
  explicit EdgeBits(std::size_t words) : words_(words, 0) {}

  void Set(std::size_t bit) {
    words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }

  /// Invokes `fn(edge_index)` for every edge set in
  /// (a.left & b.right) | (a.right & b.left) — the edges whose endpoints are
  /// visible one through each rule, in ascending edge order.
  template <typename Fn>
  static void ForEachJoinable(const EdgeBits& left_a, const EdgeBits& right_a,
                              const EdgeBits& left_b, const EdgeBits& right_b,
                              Fn&& fn) {
    for (std::size_t w = 0; w < left_a.words_.size(); ++w) {
      std::uint64_t word = (left_a.words_[w] & right_b.words_[w]) |
                           (right_a.words_[w] & left_b.words_[w]);
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        fn((w << 6) + static_cast<std::size_t>(bit));
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// cat.join_edges() indexed by endpoint attribute: for each attribute, the
/// edges it is the left (resp. right) endpoint of. Built once per closure
/// and shared read-only by every server task.
class EdgeIndex {
 public:
  explicit EdgeIndex(const catalog::Catalog& cat) : cat_(cat) {
    const std::vector<catalog::JoinEdge>& edges = cat.join_edges();
    words_ = (edges.size() + 63) / 64;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      left_of_[edges[e].left].push_back(e);
      right_of_[edges[e].right].push_back(e);
    }
  }

  const catalog::JoinEdge& edge(std::size_t e) const {
    return cat_.join_edges()[e];
  }
  std::size_t words() const noexcept { return words_; }

  /// The edges whose left (resp. right) endpoint is visible in `attrs`.
  EdgeBits LeftVisible(const IdSet& attrs) const {
    return Collect(left_of_, attrs);
  }
  EdgeBits RightVisible(const IdSet& attrs) const {
    return Collect(right_of_, attrs);
  }

 private:
  EdgeBits Collect(
      const std::map<catalog::AttributeId, std::vector<std::size_t>>& index,
      const IdSet& attrs) const {
    EdgeBits bits(words_);
    for (const catalog::AttributeId attr : attrs) {
      const auto it = index.find(attr);
      if (it == index.end()) continue;
      for (const std::size_t e : it->second) bits.Set(e);
    }
    return bits;
  }

  const catalog::Catalog& cat_;
  std::size_t words_ = 0;
  std::map<catalog::AttributeId, std::vector<std::size_t>> left_of_;
  std::map<catalog::AttributeId, std::vector<std::size_t>> right_of_;
};

/// Working form of a server's rule set: the rules in derivation order, each
/// with its edge-visibility masks, plus a per-path subsumption index.
class RulePool {
 public:
  explicit RulePool(const EdgeIndex& index) : index_(&index) {}

  struct Rule {
    IdSet attrs;
    JoinPath path;
    EdgeBits left;   ///< edges whose left endpoint is in attrs
    EdgeBits right;  ///< edges whose right endpoint is in attrs
  };

  /// Adds unless an existing same-path rule already grants a superset of
  /// attributes. Returns true when the pool changed.
  bool AddIfNovel(IdSet attrs, JoinPath path) {
    std::vector<IdSet>& grants = by_path_[path];
    for (const IdSet& existing : grants) {
      if (attrs.IsSubsetOf(existing)) return false;
    }
    grants.push_back(attrs);
    EdgeBits left = index_->LeftVisible(attrs);
    EdgeBits right = index_->RightVisible(attrs);
    rules_.push_back(Rule{std::move(attrs), std::move(path), std::move(left),
                          std::move(right)});
    return true;
  }

  std::size_t size() const noexcept { return rules_.size(); }
  const Rule& rule(std::size_t i) const { return rules_[i]; }
  const std::vector<Rule>& rules() const noexcept { return rules_; }

 private:
  const EdgeIndex* index_;
  std::vector<Rule> rules_;
  std::map<JoinPath, std::vector<IdSet>> by_path_;
};

/// One server's closure, produced independently on a pool worker.
struct ServerClosure {
  Status status;  ///< kResourceExhausted when the per-server cap tripped
  std::vector<std::pair<IdSet, JoinPath>> rules;
  ChaseStats stats;
};

Status ExceededCap(const ChaseOptions& options) {
  return ResourceExhaustedError("chase closure exceeded max_derived_rules=" +
                                std::to_string(options.max_derived_rules));
}

/// Semi-naïve fixpoint for one server. Round k pairs only the delta (rules
/// first seen in round k-1) against everything older, so each unordered
/// rule pair is visited exactly once over the whole run; the edge masks
/// restrict a pair to the edges it can fire. New derivations are buffered
/// per round and inserted after the scan — rules are never moved while
/// references into the pool are live, so nothing is copied per pair.
ServerClosure CloseServer(const catalog::Catalog& cat, const EdgeIndex& index,
                          const std::vector<Authorization>& input,
                          catalog::ServerId server,
                          const ChaseOptions& options) {
  ServerClosure out;
  RulePool pool(index);
  for (const Authorization& auth : input) {
    pool.AddIfNovel(auth.attributes, auth.path);
  }

  std::size_t delta_begin = 0;
  std::vector<std::pair<IdSet, JoinPath>> pending;
  while (delta_begin < pool.size()) {
    ++out.stats.iterations;
    CISQP_METRIC_INC("chase.iterations");
    CISQP_TRACE_SPAN(round_span, "authz.chase.iteration");
    round_span.AddAttribute("server", cat.server(server).name);
    const std::size_t round_start_rules = out.stats.derived_rules;
    const std::size_t frozen = pool.size();
    pending.clear();
    for (std::size_t j = delta_begin; j < frozen; ++j) {
      const RulePool::Rule& rule_j = pool.rule(j);
      for (std::size_t i = 0; i < j; ++i) {
        const RulePool::Rule& rule_i = pool.rule(i);
        EdgeBits::ForEachJoinable(
            rule_i.left, rule_i.right, rule_j.left, rule_j.right,
            [&](std::size_t e) {
              ++out.stats.pairs_considered;
              // One endpoint is visible through rule i, the other through
              // rule j: the server can join the two authorized views locally
              // on attributes it already sees. The derived rule is symmetric
              // in (i, j), so the unordered pair is derived once.
              const catalog::JoinEdge& edge = index.edge(e);
              JoinPath derived_path = JoinPath::Union(rule_i.path, rule_j.path);
              derived_path.Insert(JoinAtom::Make(edge.left, edge.right));
              if (options.max_path_atoms != 0 &&
                  derived_path.size() > options.max_path_atoms) {
                return;
              }
              pending.emplace_back(IdSet::Union(rule_i.attrs, rule_j.attrs),
                                   std::move(derived_path));
            });
      }
    }
    for (auto& [attrs, path] : pending) {
      if (!pool.AddIfNovel(std::move(attrs), std::move(path))) continue;
      if (++out.stats.derived_rules > options.max_derived_rules) {
        out.status = ExceededCap(options);
        return out;
      }
    }
    round_span.AddAttribute("rules_fired",
                            out.stats.derived_rules - round_start_rules);
    delta_begin = frozen;
  }

  out.rules.reserve(pool.size());
  for (const RulePool::Rule& rule : pool.rules()) {
    out.rules.emplace_back(rule.attrs, rule.path);
  }
  return out;
}

}  // namespace

Result<AuthorizationSet> ChaseClosure(const catalog::Catalog& cat,
                                      const AuthorizationSet& auths,
                                      const ChaseOptions& options,
                                      ChaseStats* stats) {
  CISQP_TRACE_SPAN(chase_span, "authz.chase");
  chase_span.AddAttribute("input_rules", auths.size());
  const EdgeIndex index(cat);
  const std::size_t servers = cat.server_count();

  std::vector<std::vector<Authorization>> inputs(servers);
  for (catalog::ServerId server = 0; server < servers; ++server) {
    inputs[server] = auths.ForServer(server);
  }

  // Per-server closures are independent; fan them out and reduce in server
  // order so the result is identical at every thread count.
  const std::size_t threads =
      options.threads == 0 ? ThreadPool::HardwareConcurrency() : options.threads;
  chase_span.AddAttribute("threads", threads);
  std::vector<ServerClosure> closures(servers);
  {
    ThreadPool pool(std::min(threads, std::max<std::size_t>(servers, 1)));
    pool.ParallelFor(servers, [&](std::size_t server) {
      closures[server] =
          CloseServer(cat, index, inputs[server],
                      static_cast<catalog::ServerId>(server), options);
    });
  }

  ChaseStats local_stats;
  AuthorizationSet closed;
  for (catalog::ServerId server = 0; server < servers; ++server) {
    ServerClosure& closure = closures[server];
    CISQP_RETURN_IF_ERROR(closure.status);
    local_stats.iterations += closure.stats.iterations;
    local_stats.pairs_considered += closure.stats.pairs_considered;
    local_stats.derived_rules += closure.stats.derived_rules;
    // Each task is individually capped, but the cap is a whole-closure
    // budget: enforce it over the ordered running total as the sequential
    // fixpoint did.
    if (local_stats.derived_rules > options.max_derived_rules) {
      return ExceededCap(options);
    }
    for (auto& [attrs, path] : closure.rules) {
      const Status status =
          closed.Add(cat, Authorization{std::move(attrs), std::move(path), server});
      // Exact duplicates cannot arise (the pool dedups); any failure here is
      // a malformed *input* rule that AuthorizationSet::Add would also have
      // rejected, so surface it.
      if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
        return status;
      }
    }
  }

  CISQP_METRIC_ADD("chase.derived_rules", local_stats.derived_rules);
  CISQP_METRIC_ADD("chase.pairs_considered", local_stats.pairs_considered);
  chase_span.AddAttribute("derived_rules", local_stats.derived_rules);
  chase_span.AddAttribute("iterations", local_stats.iterations);
  if (stats != nullptr) *stats = local_stats;
  return closed;
}

}  // namespace cisqp::authz
