// Identifier aliases and schema-level value types for the distributed catalog.
//
// Ids are dense u32 indexes assigned by the owning Catalog in registration
// order. They are aliases (not strong types) so attribute sets can live in
// the shared `IdSet` machinery; the catalog API keeps the id spaces apart.
#pragma once

#include <cstdint>
#include <string_view>

namespace cisqp::catalog {

using ServerId = std::uint32_t;
using RelationId = std::uint32_t;
using AttributeId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

/// Column type at the schema level; mirrored by storage::Value.
enum class ValueType : std::uint8_t {
  kInt64,
  kDouble,
  kString,
};

std::string_view ValueTypeName(ValueType t) noexcept;

}  // namespace cisqp::catalog
