// Cluster: the simulated federation's data plane.
//
// Holds one table per base relation, conceptually resident at the relation's
// home server (paper §2: each relation is stored in full at one server).
// Loading validates the table header against the catalog schema.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "catalog/catalog.hpp"
#include "storage/column.hpp"
#include "storage/table.hpp"

namespace cisqp::exec {

class Cluster {
 public:
  explicit Cluster(const catalog::Catalog& cat)
      : cat_(cat), tables_(cat.relation_count()), columnar_(cat.relation_count()) {}

  const catalog::Catalog& catalog() const noexcept { return cat_; }

  /// Installs `table` as the instance of `rel`. The header must be exactly
  /// the relation's attributes in declaration order.
  Status LoadTable(catalog::RelationId rel, storage::Table table);

  /// Appends one row to `rel`'s table (creating an empty one on first use).
  Status InsertRow(catalog::RelationId rel, storage::Row row);

  /// The instance of `rel`; an empty correctly-headed table when never loaded.
  const storage::Table& TableOf(catalog::RelationId rel) const;

  /// Columnar form of `rel`'s table, built lazily on first use and shared by
  /// every plan that scans the relation. Invalidated by LoadTable/InsertRow.
  std::shared_ptr<const storage::ColumnarTable> ColumnarOf(
      catalog::RelationId rel) const;

  /// True iff `rel` currently has at least one row.
  bool HasData(catalog::RelationId rel) const {
    return rel < tables_.size() && tables_[rel].has_value() &&
           !tables_[rel]->empty();
  }

 private:
  const catalog::Catalog& cat_;
  mutable std::vector<std::optional<storage::Table>> tables_;
  /// Lazily-built columnar views of tables_, guarded for the parallel plan
  /// search which evaluates candidate plans from worker threads. The mutex
  /// lives behind a pointer so Cluster stays movable.
  mutable std::unique_ptr<std::mutex> columnar_mu_ =
      std::make_unique<std::mutex>();
  mutable std::vector<std::shared_ptr<const storage::ColumnarTable>> columnar_;
};

}  // namespace cisqp::exec
