// Policy audit: what does a policy *really* authorize, and what is missing?
//
// Four audit tools built on the library:
//   1. chase inspection — the implied rules a policy owner may not realize
//      they granted (§3.2);
//   2. release preview — every view a query's safe execution would expose,
//      before running anything;
//   3. grant repair — for an infeasible query, search the smallest single
//      additional authorization that makes it feasible;
//   4. decision log — the obs::AuthzAuditLog record of every individual
//      CanView verdict behind the answers above, with the covering rule or
//      the first failed condition per decision.
//
// Build & run:  ./build/examples/policy_audit
#include <cstdio>

#include "authz/analysis.hpp"
#include "authz/chase.hpp"
#include "obs/audit.hpp"
#include "plan/builder.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "planner/what_if.hpp"
#include "sql/binder.hpp"
#include "workload/medical.hpp"

using namespace cisqp;

namespace {

plan::QueryPlan MustPlan(const catalog::Catalog& cat, std::string_view sql_text) {
  auto spec = sql::ParseAndBind(cat, sql_text);
  CISQP_CHECK_MSG(spec.ok(), spec.status().ToString());
  auto plan = plan::PlanBuilder(cat).Build(*spec);
  CISQP_CHECK_MSG(plan.ok(), plan.status().ToString());
  return std::move(*plan);
}

/// Grant-repair via the library's what-if search (planner/what_if.hpp):
/// smallest single additional authorization that flips the query feasible.
void RepairSuggestions(const catalog::Catalog& cat,
                       const authz::AuthorizationSet& auths,
                       const plan::QueryPlan& plan) {
  planner::RepairOptions options;
  options.max_suggestions = 5;
  const auto repairs = planner::SuggestRepairs(cat, auths, plan, options);
  if (!repairs.ok()) {
    std::printf("  repair search failed: %s\n",
                repairs.status().ToString().c_str());
    return;
  }
  if (repairs->empty()) {
    std::printf("  no single-rule repair exists (the query needs >1 new grant)\n");
    return;
  }
  std::printf("  single-rule repairs, smallest first:\n");
  for (const planner::RepairSuggestion& repair : *repairs) {
    std::printf("    + %s\n", repair.grant.ToString(cat).c_str());
  }
}

}  // namespace

int main() {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);

  // 0. Who sees what unconditionally?
  std::printf("=== 0. base-visibility matrix ===\n%s\n",
              authz::VisibilityMatrixToString(
                  cat, authz::BaseVisibilityMatrix(cat, auths))
                  .c_str());

  // 1. Chase inspection.
  std::printf("=== 1. implied authorizations (chase closure) ===\n");
  authz::ChaseStats stats;
  const auto closed = authz::ChaseClosure(cat, auths, {}, &stats);
  CISQP_CHECK_MSG(closed.ok(), closed.status().ToString());
  std::printf("explicit rules: %zu, closed: %zu (%zu fixpoint rounds)\n",
              auths.size(), closed->size(), stats.iterations);
  std::printf("rules the policy implies but never states:\n");
  for (const authz::Authorization& rule :
       authz::DiffPolicies(auths, *closed).only_in_b) {
    std::printf("  %s\n", rule.ToString(cat).c_str());
  }

  // 2. Release preview for the paper's query.
  std::printf("\n=== 2. release preview for the paper's query ===\n");
  const plan::QueryPlan paper_plan =
      MustPlan(cat, workload::MedicalScenario::kPaperQuery);
  planner::SafePlanner planner(cat, auths);
  const auto sp = planner.Plan(paper_plan);
  CISQP_CHECK_MSG(sp.ok(), sp.status().ToString());
  const auto releases =
      planner::EnumerateReleases(cat, paper_plan, sp->assignment);
  for (const planner::Release& r : releases.value()) {
    std::printf("  %s\n", r.ToString(cat).c_str());
  }

  // 3. Grant repair for the §3.2 denied query.
  std::printf("\n=== 3. grant repair for the denied Disease_list ⋈ Hospital ===\n");
  const plan::QueryPlan denied = MustPlan(
      cat, "SELECT Illness, Treatment FROM Disease_list JOIN Hospital "
           "ON Illness = Disease");
  const auto report = planner.Analyze(denied);
  CISQP_CHECK(report.ok() && !report->feasible);
  std::printf("query is infeasible (blocked at n%d); candidate repairs:\n",
              report->blocking_node);
  RepairSuggestions(cat, auths, denied);

  // And for a query that is deliberately far out of policy.
  std::printf("\n=== 3b. repair for a cross-federation sweep query ===\n");
  const plan::QueryPlan sweep = MustPlan(
      cat,
      "SELECT Holder, HealthAid, Disease FROM Insurance "
      "JOIN Nat_registry ON Holder = Citizen JOIN Hospital ON Citizen = Patient");
  const auto report2 = planner.Analyze(sweep);
  if (report2.ok() && !report2->feasible) {
    std::printf("query is infeasible (blocked at n%d); candidate repairs:\n",
                report2->blocking_node);
    RepairSuggestions(cat, auths, sweep);
  } else {
    std::printf("query is feasible under the current policy\n");
  }

  // 4. Decision log: replay the verifier's per-release checks on the safe
  // plan and the planner's probes on the denied query with the audit log
  // recording, then read the log back.
  std::printf("\n=== 4. authorization-decision audit log ===\n");
  obs::AuthzAuditLog& log = obs::AuthzAuditLog::Get();
  log.Enable();
  CISQP_CHECK(planner::VerifyAssignment(cat, auths, paper_plan, sp->assignment)
                  .ok());
  CISQP_CHECK(planner.Analyze(denied).ok());
  log.Disable();
  std::printf("%s", log.ToText().c_str());
  std::printf("%zu decision(s): %zu allowed, %zu denied\n",
              log.entries().size(), log.allowed_count(), log.denied_count());
  return 0;
}
