#include "sql/parser.hpp"

#include <charconv>

#include "sql/lexer.hpp"

namespace cisqp::sql {
namespace {

/// Token cursor with one-symbol lookahead.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }

  Token Advance() {
    Token t = tokens_[pos_];
    if (tokens_[pos_].kind != TokenKind::kEnd) ++pos_;
    return t;
  }

  bool At(TokenKind kind) const { return Peek().kind == kind; }

  bool AtKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (!AtKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status Expect(TokenKind kind, std::string_view what) {
    if (!At(kind)) {
      return InvalidArgumentError("expected " + std::string(what) + " but found " +
                                  std::string(TokenKindName(Peek().kind)) +
                                  " at offset " + std::to_string(Peek().offset));
    }
    Advance();
    return Status::Ok();
  }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

/// name := identifier ('.' identifier)?
Result<std::string> ParseName(Cursor& cur) {
  if (!cur.At(TokenKind::kIdentifier)) {
    return InvalidArgumentError("expected a name but found " +
                                std::string(TokenKindName(cur.Peek().kind)) +
                                " at offset " + std::to_string(cur.Peek().offset));
  }
  std::string name = cur.Advance().text;
  if (cur.At(TokenKind::kDot)) {
    cur.Advance();
    if (!cur.At(TokenKind::kIdentifier)) {
      return InvalidArgumentError("expected an identifier after '.' at offset " +
                                  std::to_string(cur.Peek().offset));
    }
    name += ".";
    name += cur.Advance().text;
  }
  return name;
}

Result<algebra::CompareOp> ParseCompareOp(Cursor& cur) {
  switch (cur.Peek().kind) {
    case TokenKind::kEq: cur.Advance(); return algebra::CompareOp::kEq;
    case TokenKind::kNe: cur.Advance(); return algebra::CompareOp::kNe;
    case TokenKind::kLt: cur.Advance(); return algebra::CompareOp::kLt;
    case TokenKind::kLe: cur.Advance(); return algebra::CompareOp::kLe;
    case TokenKind::kGt: cur.Advance(); return algebra::CompareOp::kGt;
    case TokenKind::kGe: cur.Advance(); return algebra::CompareOp::kGe;
    default:
      return InvalidArgumentError("expected a comparison operator at offset " +
                                  std::to_string(cur.Peek().offset));
  }
}

Result<AstCondition> ParseWhereCondition(Cursor& cur) {
  AstCondition cond;
  CISQP_ASSIGN_OR_RETURN(cond.lhs, ParseName(cur));
  CISQP_ASSIGN_OR_RETURN(cond.op, ParseCompareOp(cur));
  const Token& t = cur.Peek();
  switch (t.kind) {
    case TokenKind::kInteger: {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
      if (ec != std::errc() || ptr != t.text.data() + t.text.size()) {
        return InvalidArgumentError("integer literal out of range at offset " +
                                    std::to_string(t.offset));
      }
      cur.Advance();
      cond.rhs = storage::Value(v);
      return cond;
    }
    case TokenKind::kFloat: {
      cur.Advance();
      cond.rhs = storage::Value(std::stod(t.text));
      return cond;
    }
    case TokenKind::kString: {
      cur.Advance();
      cond.rhs = storage::Value(t.text);
      return cond;
    }
    case TokenKind::kIdentifier: {
      CISQP_ASSIGN_OR_RETURN(std::string name, ParseName(cur));
      cond.rhs = std::move(name);
      return cond;
    }
    default:
      return InvalidArgumentError("expected a literal or attribute after operator at offset " +
                                  std::to_string(t.offset));
  }
}

Result<AstJoinCondition> ParseOnCondition(Cursor& cur) {
  AstJoinCondition cond;
  CISQP_ASSIGN_OR_RETURN(cond.left, ParseName(cur));
  CISQP_RETURN_IF_ERROR(cur.Expect(TokenKind::kEq, "'=' in ON condition"));
  CISQP_ASSIGN_OR_RETURN(cond.right, ParseName(cur));
  return cond;
}

}  // namespace

Result<AstQuery> Parse(std::string_view text) {
  CISQP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Cursor cur(std::move(tokens));
  AstQuery query;

  if (cur.ConsumeKeyword("EXPLAIN")) {
    query.explain = true;
    query.analyze = cur.ConsumeKeyword("ANALYZE");
  }
  if (!cur.ConsumeKeyword("SELECT")) {
    return InvalidArgumentError(
        "query must start with SELECT or EXPLAIN [ANALYZE] (offset " +
        std::to_string(cur.Peek().offset) + ")");
  }
  query.distinct = cur.ConsumeKeyword("DISTINCT");
  if (cur.At(TokenKind::kStar)) {
    cur.Advance();
    query.select_star = true;
  } else {
    CISQP_ASSIGN_OR_RETURN(std::string first, ParseName(cur));
    query.select_list.push_back(std::move(first));
    while (cur.At(TokenKind::kComma)) {
      cur.Advance();
      CISQP_ASSIGN_OR_RETURN(std::string name, ParseName(cur));
      query.select_list.push_back(std::move(name));
    }
  }

  if (!cur.ConsumeKeyword("FROM")) {
    return InvalidArgumentError("expected FROM at offset " +
                                std::to_string(cur.Peek().offset));
  }
  if (!cur.At(TokenKind::kIdentifier)) {
    return InvalidArgumentError("expected a relation name after FROM at offset " +
                                std::to_string(cur.Peek().offset));
  }
  query.first_relation = cur.Advance().text;

  while (cur.ConsumeKeyword("JOIN")) {
    AstJoin join;
    if (!cur.At(TokenKind::kIdentifier)) {
      return InvalidArgumentError("expected a relation name after JOIN at offset " +
                                  std::to_string(cur.Peek().offset));
    }
    join.relation = cur.Advance().text;
    if (!cur.ConsumeKeyword("ON")) {
      return InvalidArgumentError("expected ON after JOIN " + join.relation +
                                  " at offset " + std::to_string(cur.Peek().offset));
    }
    CISQP_ASSIGN_OR_RETURN(AstJoinCondition first, ParseOnCondition(cur));
    join.conditions.push_back(std::move(first));
    while (cur.ConsumeKeyword("AND")) {
      CISQP_ASSIGN_OR_RETURN(AstJoinCondition cond, ParseOnCondition(cur));
      join.conditions.push_back(std::move(cond));
    }
    query.joins.push_back(std::move(join));
  }

  if (cur.ConsumeKeyword("WHERE")) {
    CISQP_ASSIGN_OR_RETURN(AstCondition first, ParseWhereCondition(cur));
    query.where.push_back(std::move(first));
    while (cur.ConsumeKeyword("AND")) {
      CISQP_ASSIGN_OR_RETURN(AstCondition cond, ParseWhereCondition(cur));
      query.where.push_back(std::move(cond));
    }
  }

  if (!cur.At(TokenKind::kEnd)) {
    return InvalidArgumentError("unexpected trailing input at offset " +
                                std::to_string(cur.Peek().offset));
  }
  return query;
}

}  // namespace cisqp::sql
