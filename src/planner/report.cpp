#include "planner/report.hpp"

#include <sstream>

namespace cisqp::planner {
namespace {

/// Pastel fill colors, cycled by server id.
constexpr const char* kPalette[] = {
    "#cfe8ff", "#ffd9cf", "#d6f5d6", "#f5e6c8", "#e8d6f5",
    "#f5d6e8", "#d6ecf5", "#eef5c8",
};

std::string NodeLabel(const catalog::Catalog& cat, const plan::PlanNode& node,
                      const Executor& ex,
                      const std::vector<authz::Profile>* profiles,
                      bool show_profiles) {
  std::ostringstream oss;
  oss << "n" << node.id << " " << plan::PlanOpName(node.op);
  switch (node.op) {
    case plan::PlanOp::kRelation:
      oss << "\\n" << cat.relation(node.relation).name;
      break;
    case plan::PlanOp::kProject: {
      oss << "\\n[";
      for (std::size_t i = 0; i < node.projection.size(); ++i) {
        if (i != 0) oss << ", ";
        oss << cat.attribute(node.projection[i]).name;
      }
      oss << "]";
      break;
    }
    case plan::PlanOp::kSelect:
      oss << "\\n" << node.predicate.ToString(cat);
      break;
    case plan::PlanOp::kJoin: {
      oss << "\\n";
      for (std::size_t i = 0; i < node.join_atoms.size(); ++i) {
        if (i != 0) oss << " AND ";
        oss << cat.attribute(node.join_atoms[i].left).name << "="
            << cat.attribute(node.join_atoms[i].right).name;
      }
      break;
    }
  }
  oss << "\\n" << ex.ToString(cat);
  if (node.op == plan::PlanOp::kJoin) {
    oss << " " << ExecutionModeName(ex.mode);
  }
  if (show_profiles && profiles != nullptr) {
    oss << "\\n" << (*profiles)[static_cast<std::size_t>(node.id)].ToString(cat);
  }
  return oss.str();
}

}  // namespace

Result<std::string> ToDot(const catalog::Catalog& cat,
                          const plan::QueryPlan& plan,
                          const Assignment& assignment,
                          const DotOptions& options) {
  // Release enumeration both validates the assignment and tells us which
  // parent-child edges carry cross-server shipments.
  CISQP_ASSIGN_OR_RETURN(std::vector<Release> releases,
                         EnumerateReleases(cat, plan, assignment));
  const std::vector<authz::Profile> profiles = ComputeNodeProfiles(cat, plan);

  std::ostringstream oss;
  oss << "digraph " << options.graph_name << " {\n";
  oss << "  rankdir=BT;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n";
  plan.ForEachPreOrder([&](const plan::PlanNode& node) {
    const Executor& ex = assignment.Of(node.id);
    const char* fill = kPalette[ex.master % (sizeof(kPalette) / sizeof(kPalette[0]))];
    oss << "  n" << node.id << " [label=\""
        << NodeLabel(cat, node, ex, &profiles, options.show_profiles)
        << "\", fillcolor=\"" << fill << "\"];\n";
  });
  plan.ForEachPreOrder([&](const plan::PlanNode& node) {
    for (const plan::PlanNode* child : {node.left.get(), node.right.get()}) {
      if (child == nullptr) continue;
      const bool ships =
          assignment.Of(child->id).master != assignment.Of(node.id).master;
      oss << "  n" << child->id << " -> n" << node.id;
      if (ships) {
        oss << " [style=dashed, label=\"ship\"]";
      }
      oss << ";\n";
    }
  });
  // Legend: one line per server with its color.
  oss << "  subgraph cluster_legend {\n    label=\"servers\";\n";
  for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
    oss << "    legend_" << s << " [label=\"" << cat.server(s).name
        << "\", fillcolor=\""
        << kPalette[s % (sizeof(kPalette) / sizeof(kPalette[0]))] << "\"];\n";
  }
  oss << "  }\n}\n";
  return oss.str();
}

Result<std::string> ReleasesToMarkdown(const catalog::Catalog& cat,
                                       const plan::QueryPlan& plan,
                                       const Assignment& assignment,
                                       const VerifyOptions& options) {
  CISQP_ASSIGN_OR_RETURN(std::vector<Release> releases,
                         EnumerateReleases(cat, plan, assignment, options));
  std::ostringstream oss;
  oss << "| node | from | to | released profile | flow |\n";
  oss << "|---|---|---|---|---|\n";
  for (const Release& r : releases) {
    oss << "| n" << r.node_id << " | " << cat.server(r.from).name << " | "
        << cat.server(r.to).name << " | `" << r.profile.ToString(cat) << "` | "
        << r.description << (r.physical ? "" : " *(colocated)*") << " |\n";
  }
  return oss.str();
}

}  // namespace cisqp::planner
