// Exhaustive baseline for Problem 4.1.
//
// Enumerates every executor assignment permitted by Def. 4.1 — each join
// node takes one of the four Fig. 5 modes over the servers computing its
// operands — and keeps the safe ones (same CanView obligations as Fig. 6).
// Exponential in the number of joins; usable for plans with up to a dozen
// joins. Exists to validate the paper's algorithm: SafePlanner must report
// feasible exactly when this enumeration finds at least one safe assignment
// (tests/planner_equivalence_test.cpp), and the feasible-master set per
// subtree must match the algorithm's candidate set.
#pragma once

#include "authz/authorization.hpp"
#include "planner/assignment.hpp"
#include "planner/mode_views.hpp"

namespace cisqp::planner {

struct ExhaustiveOptions {
  /// Stop after collecting this many safe assignments (0 = unlimited).
  std::size_t max_assignments = 0;
  /// Abort with kResourceExhausted after exploring this many partial
  /// combinations, as a runaway guard on big plans.
  std::size_t max_explored = 50'000'000;
};

struct ExhaustiveResult {
  std::vector<Assignment> safe_assignments;
  /// Feasible result servers of the *root*, deduplicated and sorted —
  /// comparable to the SafePlanner's root candidate server set.
  std::vector<catalog::ServerId> feasible_root_servers;
  std::size_t explored = 0;  ///< total (safe or not) assignments considered

  bool feasible() const noexcept { return !safe_assignments.empty(); }
};

/// Runs the enumeration. Fails only on malformed plans or when hitting
/// max_explored.
Result<ExhaustiveResult> EnumerateSafeAssignments(
    const catalog::Catalog& cat, const authz::Policy& auths,
    const plan::QueryPlan& plan, const ExhaustiveOptions& options = {});

}  // namespace cisqp::planner
