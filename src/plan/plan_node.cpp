#include "plan/plan_node.hpp"

#include <algorithm>
#include <sstream>

namespace cisqp::plan {

std::string_view PlanOpName(PlanOp op) noexcept {
  switch (op) {
    case PlanOp::kRelation: return "scan";
    case PlanOp::kProject: return "project";
    case PlanOp::kSelect: return "select";
    case PlanOp::kJoin: return "join";
  }
  return "unknown";
}

std::vector<catalog::AttributeId> PlanNode::OutputAttributes(
    const catalog::Catalog& cat) const {
  switch (op) {
    case PlanOp::kRelation:
      return cat.relation(relation).attributes;
    case PlanOp::kProject:
      return projection;
    case PlanOp::kSelect:
      return left->OutputAttributes(cat);
    case PlanOp::kJoin: {
      std::vector<catalog::AttributeId> out = left->OutputAttributes(cat);
      const std::vector<catalog::AttributeId> r = right->OutputAttributes(cat);
      out.insert(out.end(), r.begin(), r.end());
      return out;
    }
  }
  return {};
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->op = op;
  copy->id = id;
  copy->relation = relation;
  copy->projection = projection;
  copy->distinct = distinct;
  copy->predicate = predicate;
  copy->join_atoms = join_atoms;
  if (left) copy->left = left->Clone();
  if (right) copy->right = right->Clone();
  return copy;
}

std::unique_ptr<PlanNode> PlanNode::Relation(catalog::RelationId rel) {
  auto node = std::make_unique<PlanNode>();
  node->op = PlanOp::kRelation;
  node->relation = rel;
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Project(
    std::unique_ptr<PlanNode> child, std::vector<catalog::AttributeId> attrs) {
  auto node = std::make_unique<PlanNode>();
  node->op = PlanOp::kProject;
  node->projection = std::move(attrs);
  node->left = std::move(child);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Select(std::unique_ptr<PlanNode> child,
                                           algebra::Predicate predicate) {
  auto node = std::make_unique<PlanNode>();
  node->op = PlanOp::kSelect;
  node->predicate = std::move(predicate);
  node->left = std::move(child);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Join(
    std::unique_ptr<PlanNode> l, std::unique_ptr<PlanNode> r,
    std::vector<algebra::EquiJoinAtom> atoms) {
  auto node = std::make_unique<PlanNode>();
  node->op = PlanOp::kJoin;
  node->join_atoms = std::move(atoms);
  node->left = std::move(l);
  node->right = std::move(r);
  return node;
}

int QueryPlan::Renumber() {
  // Level-order (BFS) ids, root = 0 — the numbering the paper's figures use
  // (Fig. 2 labels the projection over Hospital n3 and the deeper leaves
  // n4..n6), so traces compare one-to-one with Fig. 7.
  by_id_.clear();
  if (root_ != nullptr) {
    std::vector<PlanNode*> queue{root_.get()};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      PlanNode* node = queue[head];
      node->id = static_cast<int>(head);
      by_id_.push_back(node);
      if (node->left) queue.push_back(node->left.get());
      if (node->right) queue.push_back(node->right.get());
    }
  }
  node_count_ = static_cast<int>(by_id_.size());
  return node_count_;
}

const PlanNode* QueryPlan::node(int id) const {
  if (id < 0 || id >= static_cast<int>(by_id_.size())) return nullptr;
  return by_id_[static_cast<std::size_t>(id)];
}

namespace {

Status ValidateRec(const catalog::Catalog& cat, const PlanNode& node) {
  const auto contains = [](const std::vector<catalog::AttributeId>& hay,
                           catalog::AttributeId needle) {
    return std::find(hay.begin(), hay.end(), needle) != hay.end();
  };
  switch (node.op) {
    case PlanOp::kRelation:
      if (node.left || node.right) {
        return InvalidArgumentError("scan node must be a leaf");
      }
      if (node.relation >= cat.relation_count()) {
        return NotFoundError("scan of unknown relation id");
      }
      return Status::Ok();
    case PlanOp::kProject: {
      if (!node.left || node.right) {
        return InvalidArgumentError("project node must have exactly a left child");
      }
      CISQP_RETURN_IF_ERROR(ValidateRec(cat, *node.left));
      if (node.projection.empty()) {
        return InvalidArgumentError("project node with empty attribute list");
      }
      const auto child_out = node.left->OutputAttributes(cat);
      for (catalog::AttributeId a : node.projection) {
        if (!contains(child_out, a)) {
          return InvalidArgumentError("projection attribute '" +
                                      cat.attribute(a).name +
                                      "' not produced by child");
        }
      }
      return Status::Ok();
    }
    case PlanOp::kSelect: {
      if (!node.left || node.right) {
        return InvalidArgumentError("select node must have exactly a left child");
      }
      CISQP_RETURN_IF_ERROR(ValidateRec(cat, *node.left));
      const auto child_out = node.left->OutputAttributes(cat);
      for (IdSet::value_type a : node.predicate.ReferencedAttributes()) {
        if (!contains(child_out, a)) {
          return InvalidArgumentError("selection attribute '" +
                                      cat.attribute(a).name +
                                      "' not produced by child");
        }
      }
      return Status::Ok();
    }
    case PlanOp::kJoin: {
      if (!node.left || !node.right) {
        return InvalidArgumentError("join node must have two children");
      }
      CISQP_RETURN_IF_ERROR(ValidateRec(cat, *node.left));
      CISQP_RETURN_IF_ERROR(ValidateRec(cat, *node.right));
      if (node.join_atoms.empty()) {
        return InvalidArgumentError("join node without equi-join atoms");
      }
      const auto left_out = node.left->OutputAttributes(cat);
      const auto right_out = node.right->OutputAttributes(cat);
      for (const algebra::EquiJoinAtom& atom : node.join_atoms) {
        if (!contains(left_out, atom.left)) {
          return InvalidArgumentError("join atom left attribute '" +
                                      cat.attribute(atom.left).name +
                                      "' not produced by left child");
        }
        if (!contains(right_out, atom.right)) {
          return InvalidArgumentError("join atom right attribute '" +
                                      cat.attribute(atom.right).name +
                                      "' not produced by right child");
        }
      }
      return Status::Ok();
    }
  }
  return InternalError("unknown plan operator");
}

}  // namespace

Status QueryPlan::Validate(const catalog::Catalog& cat) const {
  if (!root_) return InvalidArgumentError("empty plan");
  return ValidateRec(cat, *root_);
}

namespace {

int CountJoins(const PlanNode* node) {
  if (node == nullptr) return 0;
  return (node->op == PlanOp::kJoin ? 1 : 0) + CountJoins(node->left.get()) +
         CountJoins(node->right.get());
}

void PreOrderRec(const PlanNode* node,
                 const std::function<void(const PlanNode&)>& fn) {
  if (node == nullptr) return;
  fn(*node);
  PreOrderRec(node->left.get(), fn);
  PreOrderRec(node->right.get(), fn);
}

void PrintRec(const catalog::Catalog& cat, const PlanNode* node, int depth,
              std::ostringstream& oss) {
  if (node == nullptr) return;
  oss << std::string(static_cast<std::size_t>(depth) * 2, ' ');
  oss << "n" << node->id << " " << PlanOpName(node->op);
  switch (node->op) {
    case PlanOp::kRelation:
      oss << " " << cat.relation(node->relation).name << " @"
          << cat.server(cat.relation(node->relation).server).name;
      break;
    case PlanOp::kProject: {
      if (node->distinct) oss << " distinct";
      oss << " [";
      for (std::size_t i = 0; i < node->projection.size(); ++i) {
        if (i != 0) oss << ", ";
        oss << cat.attribute(node->projection[i]).name;
      }
      oss << "]";
      break;
    }
    case PlanOp::kSelect:
      oss << " (" << node->predicate.ToString(cat) << ")";
      break;
    case PlanOp::kJoin: {
      oss << " on ";
      for (std::size_t i = 0; i < node->join_atoms.size(); ++i) {
        if (i != 0) oss << " AND ";
        oss << cat.attribute(node->join_atoms[i].left).name << " = "
            << cat.attribute(node->join_atoms[i].right).name;
      }
      break;
    }
  }
  oss << "\n";
  PrintRec(cat, node->left.get(), depth + 1, oss);
  PrintRec(cat, node->right.get(), depth + 1, oss);
}

}  // namespace

int QueryPlan::JoinCount() const { return CountJoins(root_.get()); }

QueryPlan QueryPlan::Clone() const {
  QueryPlan copy;
  if (root_) {
    copy.root_ = root_->Clone();
    copy.Renumber();
  }
  return copy;
}

void QueryPlan::ForEachPreOrder(
    const std::function<void(const PlanNode&)>& fn) const {
  PreOrderRec(root_.get(), fn);
}

std::string QueryPlan::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  PrintRec(cat, root_.get(), 0, oss);
  return oss.str();
}

}  // namespace cisqp::plan
