#include "planner/verifier.hpp"

#include <sstream>

#include "authz/audit.hpp"
#include "obs/metrics.hpp"

namespace cisqp::planner {

std::string Release::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << "n" << node_id << ": " << cat.server(from).name << " -> "
      << cat.server(to).name << " " << profile.ToString(cat) << " ("
      << description << (physical ? "" : ", colocated") << ")";
  return oss.str();
}

namespace {

class ReleaseWalker {
 public:
  ReleaseWalker(const catalog::Catalog& cat, const plan::QueryPlan& plan,
                const Assignment& assignment)
      : cat_(cat), assignment_(assignment),
        profiles_(ComputeNodeProfiles(cat, plan)) {}

  Status Walk(const plan::PlanNode& node) {
    if (node.left) CISQP_RETURN_IF_ERROR(Walk(*node.left));
    if (node.right) CISQP_RETURN_IF_ERROR(Walk(*node.right));

    const Executor& ex = assignment_.Of(node.id);
    if (ex.master >= cat_.server_count()) {
      return InvalidArgumentError("node n" + std::to_string(node.id) +
                                  " has no valid master server assigned");
    }
    if (ex.slave && *ex.slave >= cat_.server_count()) {
      return InvalidArgumentError("node n" + std::to_string(node.id) +
                                  " has an invalid slave server assigned");
    }
    switch (node.op) {
      case plan::PlanOp::kRelation: {
        const catalog::ServerId home = cat_.relation(node.relation).server;
        if (ex.master != home) {
          return InvalidArgumentError(
              "leaf n" + std::to_string(node.id) + " assigned to '" +
              cat_.server(ex.master).name + "' but relation lives at '" +
              cat_.server(home).name + "'");
        }
        return Status::Ok();
      }
      case plan::PlanOp::kProject:
      case plan::PlanOp::kSelect: {
        const Executor& child = assignment_.Of(node.left->id);
        if (ex.master != child.master) {
          return InvalidArgumentError(
              "unary node n" + std::to_string(node.id) +
              " must execute at its operand's server (Def. 4.1)");
        }
        return Status::Ok();
      }
      case plan::PlanOp::kJoin:
        return WalkJoin(node, ex);
    }
    return InternalError("unknown plan operator");
  }

  std::vector<Release>& releases() { return releases_; }
  const authz::Profile& profile_of(int node_id) const {
    return profiles_[static_cast<std::size_t>(node_id)];
  }

 private:
  Status WalkJoin(const plan::PlanNode& node, const Executor& ex) {
    const catalog::ServerId lm = assignment_.Of(node.left->id).master;
    const catalog::ServerId rm = assignment_.Of(node.right->id).master;
    const authz::Profile& lp = profile_of(node.left->id);
    const authz::Profile& rp = profile_of(node.right->id);
    const JoinModeViews views =
        ComputeJoinModeViews(lp, rp, node.join_atoms);

    switch (ex.mode) {
      case ExecutionMode::kLocal:
        return InvalidArgumentError("join node n" + std::to_string(node.id) +
                                    " cannot have mode 'local'");
      case ExecutionMode::kRegularJoin: {
        if (ex.slave) {
          return InvalidArgumentError("regular join n" + std::to_string(node.id) +
                                      " must have a NULL slave");
        }
        switch (ex.origin) {
          case FromChild::kLeft:
            if (ex.master != lm) return OriginMismatch(node);
            Emit(node.id, rm, ex.master, views.left_full_view,
                 "regular join: right operand shipped to left master");
            return Status::Ok();
          case FromChild::kRight:
            if (ex.master != rm) return OriginMismatch(node);
            Emit(node.id, lm, ex.master, views.right_full_view,
                 "regular join: left operand shipped to right master");
            return Status::Ok();
          case FromChild::kThird:
            Emit(node.id, lm, ex.master, views.right_full_view,
                 "third-party join: left operand shipped to proxy");
            Emit(node.id, rm, ex.master, views.left_full_view,
                 "third-party join: right operand shipped to proxy");
            return Status::Ok();
          case FromChild::kSelf:
            return InvalidArgumentError("join node n" + std::to_string(node.id) +
                                        " has origin 'self'");
        }
        return InternalError("unknown origin");
      }
      case ExecutionMode::kSemiJoin: {
        if (!ex.slave) {
          return InvalidArgumentError("semi-join n" + std::to_string(node.id) +
                                      " needs a slave");
        }
        if (ex.master == *ex.slave) {
          return InvalidArgumentError("semi-join n" + std::to_string(node.id) +
                                      " has master == slave (Def. 4.1)");
        }
        if (ex.origin == FromChild::kLeft) {
          // [S_l, S_r]: master computes the left subtree, slave the right.
          if (ex.master != lm || *ex.slave != rm) return OriginMismatch(node);
          Emit(node.id, ex.master, *ex.slave, views.right_slave_view,
               "semi-join step 2: pi_Jl(left) shipped to slave");
          Emit(node.id, *ex.slave, ex.master, views.left_master_view,
               "semi-join step 4: reduced right operand shipped back");
          return Status::Ok();
        }
        if (ex.origin == FromChild::kRight) {
          // [S_r, S_l]: symmetric.
          if (ex.master != rm || *ex.slave != lm) return OriginMismatch(node);
          Emit(node.id, ex.master, *ex.slave, views.left_slave_view,
               "semi-join step 2: pi_Jr(right) shipped to slave");
          Emit(node.id, *ex.slave, ex.master, views.right_master_view,
               "semi-join step 4: reduced left operand shipped back");
          return Status::Ok();
        }
        return InvalidArgumentError("semi-join n" + std::to_string(node.id) +
                                    " has invalid origin");
      }
    }
    return InternalError("unknown execution mode");
  }

  Status OriginMismatch(const plan::PlanNode& node) const {
    return InvalidArgumentError(
        "executor of join n" + std::to_string(node.id) +
        " does not match the servers computing its operands");
  }

  void Emit(int node_id, catalog::ServerId from, catalog::ServerId to,
            authz::Profile profile, std::string description) {
    releases_.push_back(Release{node_id, from, to, std::move(profile),
                                from != to, std::move(description)});
  }

  const catalog::Catalog& cat_;
  const Assignment& assignment_;
  std::vector<authz::Profile> profiles_;
  std::vector<Release> releases_;
};

}  // namespace

Result<std::vector<Release>> EnumerateReleases(const catalog::Catalog& cat,
                                               const plan::QueryPlan& plan,
                                               const Assignment& assignment,
                                               const VerifyOptions& options) {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cat));
  if (assignment.size() != static_cast<std::size_t>(plan.node_count())) {
    return InvalidArgumentError("assignment size does not match plan node count");
  }
  ReleaseWalker walker(cat, plan, assignment);
  CISQP_RETURN_IF_ERROR(walker.Walk(*plan.root()));
  if (options.requestor) {
    const int root_id = plan.root()->id;
    const catalog::ServerId master = assignment.Of(root_id).master;
    if (*options.requestor != master) {
      walker.releases().push_back(Release{
          root_id, master, *options.requestor, walker.profile_of(root_id),
          true, "final result delivered to requestor"});
    }
  }
  return std::move(walker.releases());
}

std::vector<Release> FindViolations(const authz::Policy& auths,
                                    const std::vector<Release>& releases) {
  std::vector<Release> out;
  for (const Release& release : releases) {
    if (!auths.CanView(release.profile, release.to)) out.push_back(release);
  }
  return out;
}

Status VerifyAssignment(const catalog::Catalog& cat,
                        const authz::Policy& auths,
                        const plan::QueryPlan& plan,
                        const Assignment& assignment,
                        const VerifyOptions& options) {
  CISQP_ASSIGN_OR_RETURN(std::vector<Release> releases,
                         EnumerateReleases(cat, plan, assignment, options));
  // Audit every release check individually (rather than via FindViolations)
  // so each one lands in the audit log with its node and flow description.
  const Release* violation = nullptr;
  for (const Release& release : releases) {
    CISQP_METRIC_INC("verifier.checks");
    const bool ok = authz::AuditedCanView(
        cat, auths, release.profile, release.to, obs::AuditSite::kVerifier,
        release.node_id, release.description);
    if (!ok) {
      CISQP_METRIC_INC("verifier.violations");
      if (violation == nullptr) violation = &release;
    }
  }
  if (violation != nullptr) {
    return UnauthorizedError("unauthorized release: " +
                             violation->ToString(cat));
  }
  return Status::Ok();
}

}  // namespace cisqp::planner
