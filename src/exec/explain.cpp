#include "exec/explain.hpp"

#include <cmath>
#include <sstream>

#include "plan/builder.hpp"

namespace cisqp::exec {
namespace {

/// Rows render as integers (cardinalities), estimates rounded.
std::string Rows(double value) {
  std::ostringstream oss;
  oss << static_cast<std::int64_t>(std::llround(value));
  return oss.str();
}

std::string Ratio(double value) {
  std::ostringstream oss;
  oss.precision(2);
  oss << std::fixed << value;
  return oss.str();
}

/// The operator's own line, without annotations — same shape as
/// QueryPlan::ToString so EXPLAIN and plain plan dumps read alike.
void DescribeNode(const catalog::Catalog& cat, const plan::PlanNode& node,
                  std::ostringstream& oss) {
  oss << "n" << node.id << " " << plan::PlanOpName(node.op);
  switch (node.op) {
    case plan::PlanOp::kRelation:
      oss << " " << cat.relation(node.relation).name << " @"
          << cat.server(cat.relation(node.relation).server).name;
      break;
    case plan::PlanOp::kProject: {
      if (node.distinct) oss << " distinct";
      oss << " [";
      for (std::size_t i = 0; i < node.projection.size(); ++i) {
        if (i != 0) oss << ", ";
        oss << cat.attribute(node.projection[i]).name;
      }
      oss << "]";
      break;
    }
    case plan::PlanOp::kSelect:
      oss << " (" << node.predicate.ToString(cat) << ")";
      break;
    case plan::PlanOp::kJoin:
      oss << " on ";
      for (std::size_t i = 0; i < node.join_atoms.size(); ++i) {
        if (i != 0) oss << " AND ";
        oss << cat.attribute(node.join_atoms[i].left).name << " = "
            << cat.attribute(node.join_atoms[i].right).name;
      }
      break;
  }
}

void RenderRec(const catalog::Catalog& cat, const plan::PlanBuilder& builder,
               const plan::PlanNode* node, const obs::QueryProfile* profile,
               const ExplainOptions& options, int depth,
               std::ostringstream& oss) {
  if (node == nullptr) return;
  oss << std::string(static_cast<std::size_t>(depth) * 2, ' ');
  DescribeNode(cat, *node, oss);
  const double est = builder.EstimateCardinality(*node);
  oss << "  (est=" << Rows(est);
  const obs::OperatorStats* stats =
      profile != nullptr ? profile->FindOp(node->id) : nullptr;
  bool drifted = false;
  if (stats != nullptr) {
    oss << " actual=" << stats->rows_out;
    // +1 smoothing matches OperatorStats::DriftRatio: defined at zero rows,
    // 1.0 means the model was exact.
    const double drift =
        (static_cast<double>(stats->rows_out) + 1.0) / (est + 1.0);
    oss << " drift=" << Ratio(drift) << "x";
    oss << " time=" << stats->time_us << "us";
    if (stats->bytes_shipped > 0) oss << " shipped=" << stats->bytes_shipped << "B";
    if (stats->morsels > 0) oss << " morsels=" << stats->morsels;
    if (stats->partitions > 0) oss << " partitions=" << stats->partitions;
    drifted = drift > options.drift_threshold ||
              drift < 1.0 / options.drift_threshold;
  }
  oss << ")";
  if (stats != nullptr && !stats->server.empty()) oss << " @" << stats->server;
  if (drifted) oss << "  <-- drift";
  oss << "\n";
  RenderRec(cat, builder, node->left.get(), profile, options, depth + 1, oss);
  RenderRec(cat, builder, node->right.get(), profile, options, depth + 1, oss);
}

}  // namespace

void AnnotateEstimates(const catalog::Catalog& cat,
                       const plan::StatsCatalog* stats,
                       const plan::StatsFeedback* feedback,
                       const plan::QueryPlan& plan,
                       obs::QueryProfile& profile) {
  const plan::PlanBuilder builder(cat, stats, feedback);
  plan.ForEachPreOrder([&](const plan::PlanNode& node) {
    if (profile.FindOp(node.id) == nullptr) return;
    profile.OpAt(node.id).est_rows = builder.EstimateCardinality(node);
  });
}

std::string RenderExplain(const catalog::Catalog& cat,
                          const plan::StatsCatalog* stats,
                          const plan::StatsFeedback* feedback,
                          const plan::QueryPlan& plan,
                          const obs::QueryProfile* profile,
                          const ExplainOptions& options) {
  const plan::PlanBuilder builder(cat, stats, feedback);
  std::ostringstream oss;
  RenderRec(cat, builder, plan.root(), profile, options, 0, oss);
  if (profile != nullptr) {
    oss << "query " << profile->query_id << ": " << profile->duration_us
        << "us, " << profile->TotalBytesShipped() << "B shipped\n";
    for (const obs::TransferStats& t : profile->transfers) {
      oss << "  ship n" << t.node_id << ": " << t.from << " -> " << t.to
          << "  " << t.rows << " rows, " << t.bytes << "B (" << t.what
          << ")\n";
    }
  }
  return oss.str();
}

}  // namespace cisqp::exec
