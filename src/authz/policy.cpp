#include "authz/policy.hpp"

#include <sstream>

namespace cisqp::authz {

std::string_view DenyReasonName(DenyReason reason) noexcept {
  switch (reason) {
    case DenyReason::kNone: return "none";
    case DenyReason::kNoRulesForServer: return "no rules for server";
    case DenyReason::kJoinPathMismatch: return "join-path mismatch";
    case DenyReason::kAttributeCoverage: return "attribute coverage";
    case DenyReason::kDenialFired: return "denial fired";
    case DenyReason::kNotCovered: return "not covered";
  }
  return "unknown";
}

std::string CanViewExplanation::DescribeDenial(
    const catalog::Catalog& cat) const {
  if (allowed) return "";
  std::ostringstream oss;
  oss << DenyReasonName(reason);
  switch (reason) {
    case DenyReason::kJoinPathMismatch:
      oss << ": no rule with the profile's exact join path";
      break;
    case DenyReason::kAttributeCoverage:
      oss << ": closest path-matching rule misses "
          << AttributeSetToString(cat, missing_attributes);
      break;
    default:
      break;
  }
  return oss.str();
}

}  // namespace cisqp::authz
