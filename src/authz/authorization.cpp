#include "authz/authorization.hpp"

#include <algorithm>
#include <sstream>

namespace cisqp::authz {

std::string Authorization::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << "[" << AttributeSetToString(cat, attributes) << ", "
      << path.ToString(cat) << "] -> " << cat.server(server).name;
  return oss.str();
}

Status AuthorizationSet::Add(const catalog::Catalog& cat, Authorization auth) {
  if (auth.server >= cat.server_count()) {
    return NotFoundError("authorization targets an unknown server id");
  }
  if (auth.attributes.empty()) {
    return InvalidArgumentError("authorization must grant at least one attribute");
  }
  for (IdSet::value_type a : auth.attributes) {
    if (a >= cat.attribute_count()) {
      return NotFoundError("authorization grants an unknown attribute id");
    }
  }
  for (const JoinAtom& atom : auth.path.atoms()) {
    if (atom.first >= cat.attribute_count() || atom.second >= cat.attribute_count()) {
      return NotFoundError("authorization join path references an unknown attribute id");
    }
    if (cat.attribute(atom.first).relation == cat.attribute(atom.second).relation) {
      return InvalidArgumentError(
          "join path atom (" + cat.attribute(atom.first).name + ", " +
          cat.attribute(atom.second).name + ") stays within one relation");
    }
  }
  // Def. 3.1(2): the join path must include at least every relation owning a
  // granted attribute; an empty path is only valid when all granted
  // attributes come from a single relation.
  IdSet granted_relations;
  for (IdSet::value_type a : auth.attributes) {
    granted_relations.Insert(cat.attribute(a).relation);
  }
  if (auth.path.empty()) {
    if (granted_relations.size() > 1) {
      return InvalidArgumentError(
          "authorization grants attributes of several relations but has an "
          "empty join path (Def. 3.1 requires the path to connect them)");
    }
  } else if (!granted_relations.IsSubsetOf(auth.path.Relations(cat))) {
    return InvalidArgumentError(
        "authorization join path does not include every relation owning a "
        "granted attribute (Def. 3.1)");
  }

  if (by_server_.size() < cat.server_count()) by_server_.resize(cat.server_count());
  PathIndex& index = by_server_[auth.server];
  std::vector<IdSet>& grants = index[auth.path];
  if (std::find(grants.begin(), grants.end(), auth.attributes) != grants.end()) {
    return AlreadyExistsError("duplicate authorization " + auth.ToString(cat));
  }
  grants.push_back(std::move(auth.attributes));
  ++total_;
  return Status::Ok();
}

Status AuthorizationSet::Add(
    const catalog::Catalog& cat, std::string_view server_name,
    const std::vector<std::string>& attribute_names,
    const std::vector<std::pair<std::string, std::string>>& path_pairs) {
  Authorization auth;
  CISQP_ASSIGN_OR_RETURN(auth.server, cat.FindServer(server_name));
  for (const std::string& name : attribute_names) {
    CISQP_ASSIGN_OR_RETURN(catalog::AttributeId id, cat.FindAttribute(name));
    auth.attributes.Insert(id);
  }
  std::vector<JoinAtom> atoms;
  for (const auto& [left, right] : path_pairs) {
    CISQP_ASSIGN_OR_RETURN(catalog::AttributeId l, cat.FindAttribute(left));
    CISQP_ASSIGN_OR_RETURN(catalog::AttributeId r, cat.FindAttribute(right));
    atoms.push_back(JoinAtom::Make(l, r));
  }
  auth.path = JoinPath::FromAtoms(std::move(atoms));
  return Add(cat, std::move(auth));
}

Status AuthorizationSet::Remove(const catalog::Catalog& cat,
                                const Authorization& auth) {
  if (auth.server < by_server_.size()) {
    PathIndex& index = by_server_[auth.server];
    const auto it = index.find(auth.path);
    if (it != index.end()) {
      std::vector<IdSet>& grants = it->second;
      const auto grant =
          std::find(grants.begin(), grants.end(), auth.attributes);
      if (grant != grants.end()) {
        grants.erase(grant);
        if (grants.empty()) index.erase(it);
        --total_;
        return Status::Ok();
      }
    }
  }
  return NotFoundError("no such authorization to revoke: " +
                       auth.ToString(cat));
}

bool AuthorizationSet::CanView(const Profile& profile,
                               catalog::ServerId server) const {
  if (server >= by_server_.size()) return false;
  const PathIndex& index = by_server_[server];
  const auto it = index.find(profile.join);
  if (it == index.end()) return false;
  const IdSet visible = profile.VisibleAttributes();
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const IdSet& grant) { return visible.IsSubsetOf(grant); });
}

CanViewExplanation AuthorizationSet::ExplainCanView(
    const Profile& profile, catalog::ServerId server) const {
  CanViewExplanation explanation;
  if (server >= by_server_.size() || by_server_[server].empty()) {
    explanation.reason = DenyReason::kNoRulesForServer;
    return explanation;
  }
  const PathIndex& index = by_server_[server];
  const auto it = index.find(profile.join);
  if (it == index.end()) {
    explanation.reason = DenyReason::kJoinPathMismatch;
    return explanation;
  }
  const IdSet visible = profile.VisibleAttributes();
  std::optional<IdSet> best_missing;
  for (const IdSet& grant : it->second) {
    if (visible.IsSubsetOf(grant)) {
      explanation.allowed = true;
      explanation.matched_attributes = grant;
      return explanation;
    }
    IdSet missing;
    for (IdSet::value_type a : visible) {
      if (!grant.Contains(a)) missing.Insert(a);
    }
    if (!best_missing || missing.size() < best_missing->size()) {
      best_missing = std::move(missing);
    }
  }
  explanation.reason = DenyReason::kAttributeCoverage;
  if (best_missing) explanation.missing_attributes = std::move(*best_missing);
  return explanation;
}

std::vector<Authorization> AuthorizationSet::ForServer(
    catalog::ServerId server) const {
  std::vector<Authorization> out;
  if (server >= by_server_.size()) return out;
  for (const auto& [path, grants] : by_server_[server]) {
    for (const IdSet& attrs : grants) {
      out.push_back(Authorization{attrs, path, server});
    }
  }
  return out;
}

std::vector<Authorization> AuthorizationSet::All() const {
  std::vector<Authorization> out;
  for (catalog::ServerId s = 0; s < by_server_.size(); ++s) {
    std::vector<Authorization> server_auths = ForServer(s);
    out.insert(out.end(), std::make_move_iterator(server_auths.begin()),
               std::make_move_iterator(server_auths.end()));
  }
  return out;
}

bool AuthorizationSet::Contains(const Authorization& auth) const {
  if (auth.server >= by_server_.size()) return false;
  const PathIndex& index = by_server_[auth.server];
  const auto it = index.find(auth.path);
  if (it == index.end()) return false;
  return std::find(it->second.begin(), it->second.end(), auth.attributes) !=
         it->second.end();
}

std::size_t AuthorizationSet::Minimize() {
  std::size_t removed = 0;
  for (PathIndex& index : by_server_) {
    for (auto& [path, grants] : index) {
      std::vector<IdSet> kept;
      for (const IdSet& candidate : grants) {
        const bool subsumed = std::any_of(
            grants.begin(), grants.end(), [&](const IdSet& other) {
              return !(other == candidate) && candidate.IsSubsetOf(other);
            });
        if (subsumed) {
          ++removed;
        } else if (std::find(kept.begin(), kept.end(), candidate) == kept.end()) {
          kept.push_back(candidate);
        }
      }
      grants = std::move(kept);
    }
  }
  total_ -= removed;
  return removed;
}

void AuthorizationSet::Canonicalize() {
  Minimize();
  for (PathIndex& index : by_server_) {
    for (auto& [path, grants] : index) {
      std::sort(grants.begin(), grants.end());
    }
  }
}

std::string AuthorizationSet::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  for (const Authorization& auth : All()) {
    oss << auth.ToString(cat) << "\n";
  }
  return oss.str();
}

}  // namespace cisqp::authz
