#include "authz/join_path.hpp"

#include <algorithm>
#include <sstream>

namespace cisqp::authz {

JoinAtom JoinAtom::Make(catalog::AttributeId a, catalog::AttributeId b) {
  CISQP_CHECK_MSG(a != b, "join atom needs two distinct attributes");
  return JoinAtom{std::min(a, b), std::max(a, b)};
}

bool JoinPath::Contains(const JoinAtom& atom) const noexcept {
  return std::binary_search(atoms_.begin(), atoms_.end(), atom);
}

bool JoinPath::Insert(const JoinAtom& atom) {
  auto it = std::lower_bound(atoms_.begin(), atoms_.end(), atom);
  if (it != atoms_.end() && *it == atom) return false;
  atoms_.insert(it, atom);
  return true;
}

JoinPath& JoinPath::UnionWith(const JoinPath& other) {
  std::vector<JoinAtom> merged;
  merged.reserve(atoms_.size() + other.atoms_.size());
  std::set_union(atoms_.begin(), atoms_.end(),
                 other.atoms_.begin(), other.atoms_.end(),
                 std::back_inserter(merged));
  atoms_ = std::move(merged);
  return *this;
}

JoinPath JoinPath::Union(const JoinPath& a, const JoinPath& b) {
  JoinPath out = a;
  out.UnionWith(b);
  return out;
}

JoinPath JoinPath::Union(const JoinPath& a, const JoinPath& b, const JoinPath& c) {
  JoinPath out = Union(a, b);
  out.UnionWith(c);
  return out;
}

bool JoinPath::IsSubsetOf(const JoinPath& other) const noexcept {
  return std::includes(other.atoms_.begin(), other.atoms_.end(),
                       atoms_.begin(), atoms_.end());
}

IdSet JoinPath::Attributes() const {
  IdSet out;
  for (const JoinAtom& atom : atoms_) {
    out.Insert(atom.first);
    out.Insert(atom.second);
  }
  return out;
}

IdSet JoinPath::Relations(const catalog::Catalog& cat) const {
  IdSet out;
  for (const JoinAtom& atom : atoms_) {
    out.Insert(cat.attribute(atom.first).relation);
    out.Insert(cat.attribute(atom.second).relation);
  }
  return out;
}

std::string JoinPath::ToString(const catalog::Catalog& cat) const {
  if (atoms_.empty()) return "∅";
  std::ostringstream oss;
  oss << "{";
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << "(" << cat.attribute(atoms_[i].first).name << ", "
        << cat.attribute(atoms_[i].second).name << ")";
  }
  oss << "}";
  return oss.str();
}

void JoinPath::Normalize() {
  for (const JoinAtom& atom : atoms_) {
    CISQP_CHECK_MSG(atom.first < atom.second,
                    "join atom must be built with JoinAtom::Make");
  }
  std::sort(atoms_.begin(), atoms_.end());
  atoms_.erase(std::unique(atoms_.begin(), atoms_.end()), atoms_.end());
}

}  // namespace cisqp::authz
