// Tests for feasibility-aware join ordering (FeasiblePlanSearch).
#include <gtest/gtest.h>

#include "authz/open_policy.hpp"
#include "planner/plan_search.hpp"
#include "planner/verifier.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace cisqp::planner {
namespace {

using cisqp::testing::MedicalFixture;

class PlanSearchTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;
};

TEST_F(PlanSearchTest, EnumeratesAllConnectedOrders) {
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  FeasiblePlanSearch search(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(std::vector<plan::QuerySpec> orders,
                       search.EnumerateOrders(spec, 100));
  // Insurance-Nat_registry-Hospital with edges I-N, N-H, I-H (Holder=Patient
  // via Citizen chain? only the atoms actually used: Holder=Citizen and
  // Citizen=Patient): the join graph is a path I—N—H, giving 4 connected
  // orders: INH, NIH, NHI, HNI.
  EXPECT_EQ(orders.size(), 4u);
  for (const plan::QuerySpec& order : orders) {
    EXPECT_OK(order.Validate(fix_.cat));
    EXPECT_EQ(order.select_list, spec.select_list);
  }
}

TEST_F(PlanSearchTest, CapLimitsEnumeration) {
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  FeasiblePlanSearch search(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(std::vector<plan::QuerySpec> orders,
                       search.EnumerateOrders(spec, 2));
  EXPECT_EQ(orders.size(), 2u);
}

TEST_F(PlanSearchTest, FindsTheFeasibleOrderOfThePaperQuery) {
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  FeasiblePlanSearch search(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(PlanSearchResult result, search.Search(spec));
  EXPECT_EQ(result.orders_tried, 4u);
  EXPECT_GE(result.orders_feasible, 1u);
  EXPECT_OK(VerifyAssignment(fix_.cat, fix_.auths, result.plan,
                             result.safe_plan.assignment));
}

TEST_F(PlanSearchTest, RescuesAnInfeasibleFromOrder) {
  // Build a 3-relation chain A—B—C where only the order starting at C leads
  // to a feasible plan: sC may view everything stepwise, while joining A⋈B
  // first is impossible for every server.
  catalog::Catalog cat;
  const auto sa = cat.AddServer("sa").value();
  const auto sb = cat.AddServer("sb").value();
  const auto sc = cat.AddServer("sc").value();
  CISQP_CHECK(cat.AddRelation("A", sa, {{"AK", catalog::ValueType::kInt64}}, {"AK"}).ok());
  CISQP_CHECK(cat.AddRelation("B", sb, {{"BK", catalog::ValueType::kInt64},
                                        {"BL", catalog::ValueType::kInt64}}, {"BK"}).ok());
  CISQP_CHECK(cat.AddRelation("C", sc, {{"CK", catalog::ValueType::kInt64}}, {"CK"}).ok());
  ASSERT_OK(cat.AddJoinEdge("AK", "BK"));
  ASSERT_OK(cat.AddJoinEdge("BL", "CK"));

  authz::AuthorizationSet auths;
  // sc can absorb B (via C⋈B) and then A (via the full path); nobody else
  // sees anything beyond their own relation.
  ASSERT_OK(auths.Add(cat, "sc", {"BK", "BL"}, {}));
  ASSERT_OK(auths.Add(cat, "sc", {"AK"}, {}));
  ASSERT_OK(auths.Add(cat, "sc", {"AK", "BK", "BL", "CK"},
                      {{"AK", "BK"}, {"BL", "CK"}}));

  auto spec = sql::ParseAndBind(
      cat, "SELECT AK, CK FROM A JOIN B ON AK = BK JOIN C ON BL = CK");
  ASSERT_OK(spec.status());

  // FROM order (A ⋈ B first) is infeasible: neither sa nor sb may see the
  // other side, and sc is not an operand server of that join.
  auto from_order_plan = plan::PlanBuilder(cat).Build(*spec);
  ASSERT_OK(from_order_plan.status());
  SafePlanner direct(cat, auths);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, direct.Analyze(*from_order_plan));
  EXPECT_FALSE(report.feasible);

  // The search rescues it with a C-first order.
  FeasiblePlanSearch search(cat, auths);
  ASSERT_OK_AND_ASSIGN(PlanSearchResult result, search.Search(*spec));
  EXPECT_GE(result.orders_feasible, 1u);
  EXPECT_OK(VerifyAssignment(cat, auths, result.plan,
                             result.safe_plan.assignment));
  // The chosen order cannot start with the blocked A ⋈ B join, i.e. the
  // leftmost leaf is B or C (both feasible: sc can absorb either side).
  const plan::PlanNode* leftmost = result.plan.root();
  while (leftmost->left) leftmost = leftmost->left.get();
  EXPECT_NE(leftmost->relation, cat.FindRelation("A").value());
  (void)sb;
}

TEST_F(PlanSearchTest, InfeasibleWhenNoOrderWorks) {
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  authz::AuthorizationSet empty;
  FeasiblePlanSearch search(fix_.cat, empty);
  EXPECT_EQ(search.Search(spec).status().code(), StatusCode::kInfeasible);
}

TEST_F(PlanSearchTest, PicksTheCheapestFeasibleOrder) {
  // Under a full-visibility open policy every order is feasible; the search
  // must return the one with minimal estimated bytes among all four.
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  authz::OpenPolicySet open;  // empty = allow everything
  plan::StatsCatalog stats;
  plan::RelationStats tiny{10.0, {}};
  plan::RelationStats huge{100000.0, {}};
  stats.Set(cisqp::testing::Relation(fix_.cat, "Hospital"), tiny);
  stats.Set(cisqp::testing::Relation(fix_.cat, "Insurance"), huge);
  stats.Set(cisqp::testing::Relation(fix_.cat, "Nat_registry"), huge);

  FeasiblePlanSearch search(fix_.cat, open, &stats);
  ASSERT_OK_AND_ASSIGN(PlanSearchResult best, search.Search(spec));
  EXPECT_EQ(best.orders_feasible, 4u);

  // Compare against every order's own heuristic cost: none may be cheaper.
  ASSERT_OK_AND_ASSIGN(std::vector<plan::QuerySpec> orders,
                       search.EnumerateOrders(spec, 100));
  SafePlanner planner(fix_.cat, open);
  MinCostSafePlanner scorer(fix_.cat, open, &stats);
  for (const plan::QuerySpec& order : orders) {
    auto built = plan::PlanBuilder(fix_.cat, &stats).Build(order);
    ASSERT_OK(built.status());
    ASSERT_OK_AND_ASSIGN(SafePlan sp, planner.Plan(*built));
    ASSERT_OK_AND_ASSIGN(double bytes,
                         scorer.EstimateAssignmentBytes(*built, sp.assignment));
    EXPECT_GE(bytes * (1.0 + 1e-9), best.estimated_bytes);
  }
}

TEST_F(PlanSearchTest, ParallelSearchMatchesSequentialExactly) {
  // Same query, same stats skew as PicksTheCheapestFeasibleOrder: every
  // order feasible, costs differ, plus equal-cost ties from the two huge
  // relations — the tie-break must resolve identically at every thread
  // count.
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  authz::OpenPolicySet open;
  plan::StatsCatalog stats;
  stats.Set(cisqp::testing::Relation(fix_.cat, "Hospital"),
            plan::RelationStats{10.0, {}});
  stats.Set(cisqp::testing::Relation(fix_.cat, "Insurance"),
            plan::RelationStats{100000.0, {}});
  stats.Set(cisqp::testing::Relation(fix_.cat, "Nat_registry"),
            plan::RelationStats{100000.0, {}});
  FeasiblePlanSearch search(fix_.cat, open, &stats);

  PlanSearchOptions sequential;
  sequential.threads = 1;
  ASSERT_OK_AND_ASSIGN(PlanSearchResult seq, search.Search(spec, sequential));
  for (const std::size_t threads : {2u, 4u, 8u}) {
    PlanSearchOptions parallel;
    parallel.threads = threads;
    ASSERT_OK_AND_ASSIGN(PlanSearchResult par, search.Search(spec, parallel));
    EXPECT_EQ(par.plan.ToString(fix_.cat), seq.plan.ToString(fix_.cat))
        << "threads=" << threads;
    EXPECT_EQ(par.safe_plan.assignment, seq.safe_plan.assignment);
    EXPECT_EQ(par.estimated_bytes, seq.estimated_bytes);
    EXPECT_EQ(par.orders_tried, seq.orders_tried);
    EXPECT_EQ(par.orders_feasible, seq.orders_feasible);
  }
}

TEST_F(PlanSearchTest, ParallelSearchMatchesSequentialUnderRealPolicy) {
  // The paper policy leaves some orders infeasible; parallel and sequential
  // searches must agree on plan, cost, and both counters.
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  FeasiblePlanSearch search(fix_.cat, fix_.auths);
  PlanSearchOptions sequential;
  sequential.threads = 1;
  ASSERT_OK_AND_ASSIGN(PlanSearchResult seq, search.Search(spec, sequential));
  PlanSearchOptions parallel;
  parallel.threads = 4;
  ASSERT_OK_AND_ASSIGN(PlanSearchResult par, search.Search(spec, parallel));
  EXPECT_EQ(par.plan.ToString(fix_.cat), seq.plan.ToString(fix_.cat));
  EXPECT_EQ(par.safe_plan.assignment, seq.safe_plan.assignment);
  EXPECT_EQ(par.estimated_bytes, seq.estimated_bytes);
  EXPECT_EQ(par.orders_feasible, seq.orders_feasible);
}

TEST(PlanSearchSweep, RescueRateOnRandomFederations) {
  // Random sweep: wherever FROM order is infeasible but some order is
  // feasible, the search result must verify; and search feasibility must
  // imply at least one enumerated order is feasible.
  Rng rng(777);
  int from_infeasible = 0;
  int rescued = 0;
  for (int round = 0; round < 10; ++round) {
    workload::FederationConfig fed_config;
    fed_config.servers = 4;
    fed_config.relations = 6;
    const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
    workload::AuthzConfig authz_config;
    authz_config.base_grant_prob = 0.35;
    authz_config.path_grants_per_server = 3;
    const authz::AuthorizationSet auths =
        workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
    for (int q = 0; q < 6; ++q) {
      workload::QueryConfig query_config;
      query_config.relations = 3;
      auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
      if (!spec.ok()) continue;
      auto built = plan::PlanBuilder(fed.catalog).Build(*spec);
      if (!built.ok()) continue;
      SafePlanner direct(fed.catalog, auths);
      auto report = direct.Analyze(*built);
      ASSERT_OK(report.status());
      if (report->feasible) continue;
      ++from_infeasible;
      FeasiblePlanSearch search(fed.catalog, auths);
      const auto result = search.Search(*spec);
      if (result.ok()) {
        ++rescued;
        EXPECT_OK(VerifyAssignment(fed.catalog, auths, result->plan,
                                   result->safe_plan.assignment));
      }
    }
  }
  // The sweep must have exercised the interesting case at least once.
  EXPECT_GT(from_infeasible, 0);
}

}  // namespace
}  // namespace cisqp::planner
