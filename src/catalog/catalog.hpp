// Distributed catalog: servers, relations, attributes, and the join graph.
//
// Models the paper's §2 setting: a distributed system of servers, each
// storing relations `R(A1,...,An)` with a primary key, where schema-level
// "lines" (paper Fig. 1) declare which attribute pairs are joinable. The
// catalog is the single naming authority: per the paper's simplifying
// assumption, bare attribute names are globally unique; the dotted form
// `Relation.Attribute` is also accepted everywhere a name is resolved, so the
// assumption costs no expressiveness (paper §2, footnote on dot notation).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/types.hpp"
#include "common/idset.hpp"
#include "common/interner.hpp"
#include "common/status.hpp"

namespace cisqp::catalog {

/// Column description supplied when registering a relation.
struct AttributeSpec {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// A registered attribute (column) of some relation.
struct AttributeDef {
  AttributeId id = kInvalidId;
  std::string name;          ///< bare name, globally unique
  ValueType type = ValueType::kInt64;
  RelationId relation = kInvalidId;
  std::size_t position = 0;  ///< column index within its relation
};

/// A registered base relation, stored in full at one server.
struct RelationDef {
  RelationId id = kInvalidId;
  std::string name;
  ServerId server = kInvalidId;
  std::vector<AttributeId> attributes;  ///< in declaration order
  IdSet attribute_set;                  ///< same ids as a set
  std::vector<AttributeId> primary_key;
};

/// A participant in the distributed system.
struct ServerDef {
  ServerId id = kInvalidId;
  std::string name;
  std::vector<RelationId> relations;  ///< relations stored here
};

/// One schema-declared joinable attribute pair (a "line" in paper Fig. 1).
/// Stored normalized: `left < right` by attribute id.
struct JoinEdge {
  AttributeId left = kInvalidId;
  AttributeId right = kInvalidId;

  friend bool operator==(const JoinEdge&, const JoinEdge&) = default;
};

/// The naming authority and schema store for one federation.
///
/// Append-only: entities are registered during setup and then read
/// concurrently without synchronization (the catalog is immutable during
/// planning and execution).
class Catalog {
 public:
  Catalog() = default;

  // Catalog handles index into internal vectors; copying would invalidate
  // none of them, but accidental copies of a large schema are almost always
  // bugs, so keep the type move-only.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a server. Fails with kAlreadyExists on duplicate name.
  Result<ServerId> AddServer(std::string_view name);

  /// Registers relation `name` stored at `server` with columns `attrs` and
  /// primary key `primary_key` (bare attribute names, must be among `attrs`).
  /// Enforces global uniqueness of relation and bare attribute names.
  Result<RelationId> AddRelation(std::string_view name, ServerId server,
                                 const std::vector<AttributeSpec>& attrs,
                                 const std::vector<std::string>& primary_key);

  /// Declares attributes `a` and `b` joinable (paper Fig. 1 lines). The two
  /// attributes must belong to different relations and have the same type.
  Status AddJoinEdge(AttributeId a, AttributeId b);
  /// Name-based convenience overload.
  Status AddJoinEdge(std::string_view a, std::string_view b);

  // --- lookups -------------------------------------------------------------

  std::size_t server_count() const noexcept { return servers_.size(); }
  std::size_t relation_count() const noexcept { return relations_.size(); }
  std::size_t attribute_count() const noexcept { return attributes_.size(); }

  const ServerDef& server(ServerId id) const;
  const RelationDef& relation(RelationId id) const;
  const AttributeDef& attribute(AttributeId id) const;

  Result<ServerId> FindServer(std::string_view name) const;
  Result<RelationId> FindRelation(std::string_view name) const;

  /// Resolves `name` as a bare attribute name or dotted `Relation.Attribute`.
  Result<AttributeId> FindAttribute(std::string_view name) const;

  /// The relation owning attribute `id`.
  RelationId RelationOf(AttributeId id) const { return attribute(id).relation; }
  /// The server storing the relation owning attribute `id`.
  ServerId ServerOf(AttributeId id) const {
    return relation(attribute(id).relation).server;
  }

  /// Fully qualified `Relation.Attribute` display name.
  std::string QualifiedName(AttributeId id) const;

  /// All declared join edges (normalized, deduplicated, insertion order).
  const std::vector<JoinEdge>& join_edges() const noexcept { return join_edges_; }

  /// True iff `a = b` was declared joinable (order-insensitive).
  bool Joinable(AttributeId a, AttributeId b) const noexcept;

  /// Join edges incident to relation `rel`.
  std::vector<JoinEdge> EdgesOfRelation(RelationId rel) const;

  /// Human-readable schema dump (for examples and debugging).
  std::string DebugString() const;

 private:
  std::vector<ServerDef> servers_;
  std::vector<RelationDef> relations_;
  std::vector<AttributeDef> attributes_;
  std::vector<JoinEdge> join_edges_;
  SymbolTable server_names_;
  SymbolTable relation_names_;
  SymbolTable attribute_names_;
};

}  // namespace cisqp::catalog
