#include "obs/audit.hpp"

#include <sstream>

namespace cisqp::obs {

std::string_view AuditSiteName(AuditSite site) noexcept {
  switch (site) {
    case AuditSite::kPlanner: return "planner";
    case AuditSite::kVerifier: return "verifier";
    case AuditSite::kExecutor: return "executor";
    case AuditSite::kRequestor: return "requestor";
    case AuditSite::kFailover: return "failover";
  }
  return "unknown";
}

std::string AuditEntry::ToString() const {
  std::ostringstream oss;
  oss << (allowed ? "ALLOW" : "DENY ") << " [" << AuditSiteName(site) << "]";
  if (node_id >= 0) oss << " n" << node_id;
  oss << " -> " << server << ": " << profile;
  if (allowed && !matched.empty()) oss << " via " << matched;
  if (!allowed && !reason.empty()) oss << " — " << reason;
  if (!detail.empty()) oss << " (" << detail << ")";
  return oss.str();
}

AuthzAuditLog& AuthzAuditLog::Get() {
  static AuthzAuditLog log;
  return log;
}

void AuthzAuditLog::Enable() {
  Clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void AuthzAuditLog::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  allowed_ = 0;
  denied_ = 0;
}

void AuthzAuditLog::Record(AuditEntry entry) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (entry.allowed) {
    ++allowed_;
  } else {
    ++denied_;
  }
  entries_.push_back(std::move(entry));
}

std::string AuthzAuditLog::ToText() const {
  std::ostringstream oss;
  for (const AuditEntry& entry : entries_) {
    oss << entry.ToString() << "\n";
  }
  return oss.str();
}

std::string AuthzAuditLog::ToJson() const {
  std::ostringstream oss;
  oss << "{\"entries\":[";
  bool first = true;
  for (const AuditEntry& entry : entries_) {
    if (!first) oss << ",";
    first = false;
    oss << "{\"decision\":\"" << (entry.allowed ? "allow" : "deny")
        << "\",\"site\":\"" << AuditSiteName(entry.site)
        << "\",\"node\":" << entry.node_id << ",\"server\":\""
        << JsonEscape(entry.server) << "\",\"profile\":\""
        << JsonEscape(entry.profile) << "\"";
    if (!entry.matched.empty()) {
      oss << ",\"matched\":\"" << JsonEscape(entry.matched) << "\"";
    }
    if (!entry.reason.empty()) {
      oss << ",\"reason\":\"" << JsonEscape(entry.reason) << "\"";
    }
    if (!entry.detail.empty()) {
      oss << ",\"detail\":\"" << JsonEscape(entry.detail) << "\"";
    }
    oss << "}";
  }
  oss << "]}";
  return oss.str();
}

}  // namespace cisqp::obs
