#include "testcheck/harness.hpp"

#include <chrono>
#include <functional>
#include <optional>
#include <sstream>
#include <utility>

#include "authz/chase.hpp"
#include "authz/incremental.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "obs/audit.hpp"
#include "planner/plan_search.hpp"
#include "planner/verifier.hpp"
#include "serve/front_door.hpp"
#include "testcheck/oracle.hpp"
#include "testcheck/row_kernels.hpp"

namespace cisqp::testcheck {
namespace {

/// The exhaustive minimum may differ from the heuristic's cost only by
/// floating-point noise when they pick the same assignment.
bool CostWithinTolerance(double oracle_min, double production) {
  return oracle_min <= production * (1.0 + 1e-9) + 1e-6;
}

std::int64_t Timed(std::int64_t& acc, const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  acc += us;
  return us;
}

/// Denied audit entries recorded at the runtime-enforcement sites. Denials
/// at the planner/verifier/failover sites are normal (rejected candidates);
/// a denial at the executor or requestor site is a blocked shipment.
std::size_t DeniedEnforcementEntries() {
  std::size_t denied = 0;
  for (const obs::AuditEntry& e : obs::AuthzAuditLog::Get().entries()) {
    if (e.allowed) continue;
    if (e.site == obs::AuditSite::kExecutor ||
        e.site == obs::AuditSite::kRequestor) {
      ++denied;
    }
  }
  return denied;
}

/// Exact (ordered, total-order cell comparison) table equality — stricter
/// than SameRowMultiset: profiling must not even reorder the result.
bool TablesByteIdentical(const storage::Table& a, const storage::Table& b) {
  if (a.columns() != b.columns() || a.row_count() != b.row_count()) {
    return false;
  }
  for (std::size_t r = 0; r < a.row_count(); ++r) {
    const storage::Row& ra = a.rows()[r];
    const storage::Row& rb = b.rows()[r];
    for (std::size_t c = 0; c < ra.size(); ++c) {
      if (ra[c].CompareTotal(rb[c]) != 0) return false;
    }
  }
  return true;
}

/// Flow conservation over the profiled plan: every child's recorded rows_out
/// must equal the parent's observed rows_in on that side. Returns the first
/// violation as a message, or empty when conserved.
std::string CheckRowConservation(const plan::QueryPlan& plan,
                                 const obs::QueryProfile& profile) {
  std::string violation;
  plan.ForEachPreOrder([&](const plan::PlanNode& node) {
    if (!violation.empty()) return;
    const obs::OperatorStats* stats = profile.FindOp(node.id);
    if (stats == nullptr) return;
    const auto check = [&](const plan::PlanNode* child, std::uint64_t rows_in,
                           const char* side) {
      if (child == nullptr || !violation.empty()) return;
      const obs::OperatorStats* child_stats = profile.FindOp(child->id);
      if (child_stats == nullptr) {
        violation = "node n" + std::to_string(node.id) + " has a profiled " +
                    side + " input but child n" + std::to_string(child->id) +
                    " recorded no stats";
        return;
      }
      if (child_stats->rows_out != rows_in) {
        violation = "node n" + std::to_string(child->id) + " produced " +
                    std::to_string(child_stats->rows_out) + " rows but parent n" +
                    std::to_string(node.id) + " observed " +
                    std::to_string(rows_in) + " on its " + side + " input";
      }
    };
    check(node.left.get(), stats->rows_in_left, "left");
    check(node.right.get(), stats->rows_in_right, "right");
  });
  return violation;
}

}  // namespace

std::string_view MismatchKindName(MismatchKind kind) noexcept {
  switch (kind) {
    case MismatchKind::kChaseClosure: return "chase-closure";
    case MismatchKind::kFeasibility: return "feasibility";
    case MismatchKind::kCost: return "cost";
    case MismatchKind::kUnsafePlan: return "unsafe-plan";
    case MismatchKind::kThreadDivergence: return "thread-divergence";
    case MismatchKind::kResultMultiset: return "result-multiset";
    case MismatchKind::kAuditViolation: return "audit-violation";
    case MismatchKind::kFaultSafety: return "fault-safety";
    case MismatchKind::kProfileDivergence: return "profile-divergence";
    case MismatchKind::kServingDivergence: return "serving-divergence";
    case MismatchKind::kPolicyEditDivergence: return "policy-edit-divergence";
    case MismatchKind::kPipelineError: return "pipeline-error";
  }
  return "unknown";
}

std::string Mismatch::ToString() const {
  std::string out{MismatchKindName(kind)};
  out += ": ";
  out += detail;
  return out;
}

std::string CheckReport::ToString() const {
  if (ok()) return "ok";
  std::ostringstream oss;
  for (const Mismatch& m : mismatches) oss << m.ToString() << "\n";
  return oss.str();
}

Result<CheckReport> CheckScenario(const Scenario& s,
                                  const CheckOptions& options) {
  CheckReport report;
  const auto fail = [&](MismatchKind kind, std::string detail) {
    report.mismatches.push_back(Mismatch{kind, std::move(detail)});
  };
  const catalog::Catalog& cat = s.catalog;

  // --- chase arm -----------------------------------------------------------
  authz::ChaseOptions chase_options;
  chase_options.max_path_atoms = options.chase_max_path_atoms;
  chase_options.threads = 1;
  Result<authz::AuthorizationSet> chased = InternalError("unset");
  Timed(report.production_us,
        [&] { chased = authz::ChaseClosure(cat, s.auths, chase_options); });
  const bool chase_capped =
      !chased.ok() && chased.status().code() == StatusCode::kResourceExhausted;
  if (!chased.ok() && !chase_capped) {
    return chased.status();
  }
  if (chased.ok()) {
    authz::AuthorizationSet naive;
    Timed(report.oracle_us, [&] {
      naive = NaiveChaseOracle(cat, s.auths, options.chase_max_path_atoms);
    });
    const std::multiset<std::string> got = CanonicalPolicy(cat, *chased);
    const std::multiset<std::string> want = CanonicalPolicy(cat, naive);
    if (got != want) {
      std::ostringstream oss;
      oss << "production closure has " << got.size()
          << " canonical rules, naive fixpoint has " << want.size();
      fail(MismatchKind::kChaseClosure, oss.str());
    }
    if (options.threads > 1) {
      chase_options.threads = options.threads;
      Result<authz::AuthorizationSet> parallel = InternalError("unset");
      Timed(report.production_us, [&] {
        parallel = authz::ChaseClosure(cat, s.auths, chase_options);
      });
      if (!parallel.ok() ||
          CanonicalPolicy(cat, *parallel) != got) {
        fail(MismatchKind::kThreadDivergence,
             "chase closure differs between threads=1 and threads=" +
                 std::to_string(options.threads));
      }
    }
  }

  // --- planning arms: pre-chase and post-chase policies --------------------
  const plan::StatsCatalog stats = s.ComputeStats();
  struct PolicyArm {
    const char* label;
    const authz::AuthorizationSet* policy;
  };
  std::vector<PolicyArm> arms{{"pre-chase", &s.auths}};
  if (chased.ok()) arms.push_back({"post-chase", &*chased});

  // The plan chosen under the post-chase policy, kept for the execution arm.
  std::optional<planner::PlanSearchResult> chosen;
  const authz::AuthorizationSet* chosen_policy = nullptr;

  for (const PolicyArm& arm : arms) {
    planner::PlanSearchOptions search_options;
    search_options.max_orders = options.max_orders;
    search_options.threads = 1;
    const planner::FeasiblePlanSearch search(cat, *arm.policy, &stats);
    Result<planner::PlanSearchResult> produced = InternalError("unset");
    Timed(report.production_us,
          [&] { produced = search.Search(s.query, search_options); });
    bool production_feasible = false;
    if (produced.ok()) {
      production_feasible = true;
    } else if (produced.status().code() != StatusCode::kInfeasible) {
      fail(MismatchKind::kPipelineError,
           std::string(arm.label) + " search: " + produced.status().ToString());
      continue;
    }

    PlanOracleOptions oracle_options;
    oracle_options.max_orders = options.max_orders;
    Result<PlanOracleResult> oracle = InternalError("unset");
    Timed(report.oracle_us, [&] {
      oracle = ExhaustivePlanOracle(cat, *arm.policy, s.query, &stats,
                                    oracle_options);
    });
    if (!oracle.ok()) {
      // The enumeration guard tripped: the oracle abstains on this arm.
      if (oracle.status().code() == StatusCode::kResourceExhausted) continue;
      return oracle.status();
    }

    if (production_feasible != oracle->feasible) {
      std::ostringstream oss;
      oss << arm.label << ": production says "
          << (production_feasible ? "feasible" : "infeasible")
          << ", exhaustive enumeration says "
          << (oracle->feasible ? "feasible" : "infeasible") << " ("
          << oracle->safe_assignments << " safe assignments over "
          << oracle->orders_examined << " orders)";
      fail(MismatchKind::kFeasibility, oss.str());
      continue;
    }
    if (!production_feasible) continue;

    if (!CostWithinTolerance(oracle->min_cost_bytes, produced->estimated_bytes)) {
      std::ostringstream oss;
      oss << arm.label << ": exhaustive minimum " << oracle->min_cost_bytes
          << " bytes exceeds chosen plan's " << produced->estimated_bytes
          << " bytes — the cost models disagree";
      fail(MismatchKind::kCost, oss.str());
    }

    const Status verdict = planner::VerifyAssignment(
        cat, *arm.policy, produced->plan, produced->safe_plan.assignment);
    if (!verdict.ok()) {
      fail(MismatchKind::kUnsafePlan,
           std::string(arm.label) +
               ": independent verifier rejects the chosen assignment: " +
               verdict.ToString());
    }

    if (options.threads > 1) {
      search_options.threads = options.threads;
      Result<planner::PlanSearchResult> parallel = InternalError("unset");
      Timed(report.production_us,
            [&] { parallel = search.Search(s.query, search_options); });
      const bool same =
          parallel.ok() &&
          parallel->plan.ToString(cat) == produced->plan.ToString(cat) &&
          parallel->safe_plan.assignment == produced->safe_plan.assignment &&
          parallel->estimated_bytes == produced->estimated_bytes;
      if (!same) {
        fail(MismatchKind::kThreadDivergence,
             std::string(arm.label) +
                 ": plan search differs between threads=1 and threads=" +
                 std::to_string(options.threads));
      }
    }

    chosen = std::move(*produced);
    chosen_policy = arm.policy;
  }

  report.feasible = chosen.has_value();
  if (!options.check_execution) return report;

  CISQP_ASSIGN_OR_RETURN(const exec::Cluster cluster, s.MakeCluster());

  // The oracle runs the retained row-at-a-time kernels, so every seed also
  // differentially validates the columnar engine the executor now runs on.
  Result<storage::Table> reference = InternalError("unset");
  if (chosen.has_value()) {
    Timed(report.oracle_us,
          [&] { reference = ReferenceEvaluate(cluster, chosen->plan); });
    CISQP_RETURN_IF_ERROR(reference.status());
  }

  // --- serving arm: cold vs cached answers must match exactly --------------
  // The scenario query goes through a FrontDoor twice. The first request
  // plans cold, the second must hit the plan cache, and the two answers
  // must be indistinguishable: byte-identical tables on success, identical
  // typed statuses on failure. Infeasible scenarios exercise the negative
  // cache the same way, so this arm runs regardless of feasibility.
  if (options.check_serving) {
    serve::ServeOptions serve_options;
    serve_options.max_orders = options.max_orders;
    serve_options.planning_threads = 1;
    serve_options.chase.max_path_atoms = options.chase_max_path_atoms;
    serve_options.chase.threads = 1;
    serve::FrontDoor door(cat, s.auths, cluster, &stats, serve_options);
    serve::Request request;
    request.sql = s.query.ToString(cat);
    Result<serve::Response> cold = InternalError("unset");
    Timed(report.production_us, [&] { cold = door.Serve(request); });
    Result<serve::Response> warm = InternalError("unset");
    Timed(report.production_us, [&] { warm = door.Serve(request); });
    if (cold.ok() != warm.ok()) {
      fail(MismatchKind::kServingDivergence,
           "cold and cached serving runs disagree on success: cold=" +
               cold.status().ToString() +
               ", cached=" + warm.status().ToString());
    } else if (!cold.ok()) {
      if (cold.status().code() != warm.status().code() ||
          cold.status().message() != warm.status().message()) {
        fail(MismatchKind::kServingDivergence,
             "cold and cached typed errors differ: cold=" +
                 cold.status().ToString() +
                 ", cached=" + warm.status().ToString());
      }
      if (cold.status().code() != StatusCode::kInfeasible) {
        fail(MismatchKind::kServingDivergence,
             "serving failed with an unexpected status: " +
                 cold.status().ToString());
      } else if (chosen.has_value()) {
        fail(MismatchKind::kServingDivergence,
             "serving says infeasible where the pipeline found a feasible "
             "plan");
      }
    } else {
      if (cold->plan_cache_hit) {
        fail(MismatchKind::kServingDivergence,
             "first serving request hit a plan cache that should be empty");
      }
      if (!warm->plan_cache_hit) {
        fail(MismatchKind::kServingDivergence,
             "second identical serving request missed the plan cache");
      }
      if (!TablesByteIdentical(cold->table, warm->table)) {
        fail(MismatchKind::kServingDivergence,
             "cached serving result is not byte-identical to the cold "
             "result");
      }
      if (!chosen.has_value()) {
        fail(MismatchKind::kServingDivergence,
             "serving succeeded where the pipeline found no feasible plan");
      } else if (!storage::Table::SameRowMultiset(cold->table, *reference)) {
        fail(MismatchKind::kServingDivergence,
             "serving result has " + std::to_string(cold->table.row_count()) +
                 " rows, reference evaluation has " +
                 std::to_string(reference->row_count()));
      }
    }
  }

  // --- policy-edit arm: incremental maintenance vs full recompute ----------
  // Replays a deterministic grant/revoke script through one long-lived
  // FrontDoor (incremental delta-chase, selective cache retention) and,
  // after every edit, diffs it against throwaway from-scratch state built on
  // the edited rule set: the canonical closure, the per-profile CanView
  // verdicts (deny reasons byte-for-byte), and the served answer — success
  // tables, typed kInfeasible messages, and runtime-enforcement audit
  // entries alike. The long-lived door is served twice per edit so retained
  // cache entries answer, not just cold plans.
  if (options.check_policy_edits && options.policy_edit_count > 0 &&
      s.auths.size() > 0) {
    serve::ServeOptions serve_options;
    serve_options.max_orders = options.max_orders;
    serve_options.planning_threads = 1;
    serve_options.chase.max_path_atoms = options.chase_max_path_atoms;
    serve_options.chase.threads = 1;
    serve::FrontDoor inc_door(cat, s.auths, cluster, &stats, serve_options);
    authz::AuthorizationSet oracle_base = s.auths;

    // Closure-level differential: a separately maintained incremental
    // closure vs a from-scratch rechase. Capped scenarios abstain (the door
    // degrades to serving the raw rules in that regime anyway).
    std::optional<authz::IncrementalClosure> inc;
    {
      Result<authz::IncrementalClosure> built =
          authz::IncrementalClosure::Build(cat, s.auths, serve_options.chase);
      if (built.ok()) {
        inc.emplace(std::move(*built));
      } else if (built.status().code() != StatusCode::kResourceExhausted) {
        return built.status();
      }
    }

    // Candidate rules: the scenario's own grants plus one-attribute-narrowed
    // variants (still well formed — shrinking attributes cannot violate the
    // path-mention rule). Each step flips the membership of one candidate,
    // so the script interleaves grants of absent rules with revokes.
    std::vector<authz::Authorization> pool = s.auths.All();
    const std::size_t original_rules = pool.size();
    for (std::size_t i = 0; i < original_rules; ++i) {
      if (pool[i].attributes.size() < 2) continue;
      authz::Authorization narrowed = pool[i];
      narrowed.attributes.Erase(narrowed.attributes.ids().front());
      pool.push_back(std::move(narrowed));
    }

    Rng rng(s.seed ^ 0x9e3779b97f4a7c15ULL);
    serve::Request request;
    request.sql = s.query.ToString(cat);
    obs::AuthzAuditLog& audit = obs::AuthzAuditLog::Get();
    const auto enforcement_entries = [&audit] {
      std::vector<std::string> out;
      for (const obs::AuditEntry& e : audit.entries()) {
        if (e.site == obs::AuditSite::kExecutor ||
            e.site == obs::AuditSite::kRequestor) {
          out.push_back(e.ToString());
        }
      }
      return out;
    };
    const auto same_answer = [](const Result<serve::Response>& a,
                                const Result<serve::Response>& b) {
      if (a.ok() != b.ok()) return false;
      if (!a.ok()) {
        return a.status().code() == b.status().code() &&
               a.status().message() == b.status().message();
      }
      return TablesByteIdentical(a->table, b->table);
    };

    for (std::size_t step = 0; step < options.policy_edit_count; ++step) {
      const authz::Authorization cand = pool[rng.UniformIndex(pool.size())];
      const bool grant = !oracle_base.Contains(cand);
      const std::string edit_label =
          (grant ? std::string("grant ") : std::string("revoke ")) +
          cand.ToString(cat) + " (edit " + std::to_string(step + 1) + ")";

      Result<authz::ClosureDelta> edited = InternalError("unset");
      Timed(report.production_us, [&] {
        edited = grant ? inc_door.AddRule(cand) : inc_door.RevokeRule(cand);
      });
      Status mirrored = Status::Ok();
      Timed(report.oracle_us, [&] {
        mirrored = grant ? oracle_base.Add(cat, cand)
                         : oracle_base.Remove(cat, cand);
      });
      if (edited.ok() != mirrored.ok() ||
          (!edited.ok() &&
           (edited.status().code() != mirrored.code() ||
            edited.status().message() != mirrored.message()))) {
        fail(MismatchKind::kPolicyEditDivergence,
             edit_label + ": serving edit says " +
                 edited.status().ToString() + ", direct base edit says " +
                 mirrored.ToString());
        break;
      }
      if (!edited.ok()) continue;  // both rejected the edit: nothing changed

      if (inc.has_value()) {
        Result<authz::ClosureDelta> inc_edit =
            grant ? inc->AddRule(cand) : inc->RevokeRule(cand);
        if (!inc_edit.ok()) {
          if (inc_edit.status().code() != StatusCode::kResourceExhausted) {
            fail(MismatchKind::kPolicyEditDivergence,
                 edit_label + ": incremental closure rejected an edit the "
                              "base accepted: " +
                     inc_edit.status().ToString());
            break;
          }
          inc.reset();  // cap tripped mid-edit: abstain from closure diffs
        }
      }
      if (inc.has_value()) {
        Result<authz::AuthorizationSet> rechased = InternalError("unset");
        Timed(report.oracle_us, [&] {
          rechased =
              authz::ChaseClosure(cat, oracle_base, serve_options.chase);
        });
        if (rechased.ok()) {
          if (CanonicalPolicy(cat, inc->closed()) !=
              CanonicalPolicy(cat, *rechased)) {
            fail(MismatchKind::kPolicyEditDivergence,
                 edit_label +
                     ": incrementally maintained closure differs from the "
                     "full rechase");
          }
          // Deny reasons byte-for-byte: probe every candidate rule's shape
          // against every server under both closures. Canonicalizing the
          // rechase pins ExplainCanView's first-wins tie-break to the same
          // order the incremental closure maintains.
          authz::AuthorizationSet canonical = std::move(*rechased);
          canonical.Canonicalize();
          for (const authz::Authorization& probe : pool) {
            authz::Profile p;
            p.pi = probe.attributes;
            p.join = probe.path;
            for (std::size_t srv = 0; srv < cat.server_count(); ++srv) {
              const auto server = static_cast<catalog::ServerId>(srv);
              const authz::CanViewExplanation got =
                  inc->closed().ExplainCanView(p, server);
              const authz::CanViewExplanation want =
                  canonical.ExplainCanView(p, server);
              if (got.allowed != want.allowed || got.reason != want.reason ||
                  got.matched_attributes != want.matched_attributes ||
                  got.DescribeDenial(cat) != want.DescribeDenial(cat)) {
                fail(MismatchKind::kPolicyEditDivergence,
                     edit_label + ": CanView verdicts diverge for profile " +
                         p.ToString(cat) + " at server " +
                         std::to_string(srv));
              }
            }
          }
        } else if (rechased.status().code() ==
                   StatusCode::kResourceExhausted) {
          inc.reset();  // oracle capped where the incremental path was not
        } else {
          return rechased.status();
        }
      }

      // Served-answer differential: the long-lived door (first serve may be
      // a retained cache hit, second is definitely warm) vs a from-scratch
      // door over the edited base.
      serve::FrontDoor oracle_door(cat, oracle_base, cluster, &stats,
                                   serve_options);
      audit.Enable();
      Result<serve::Response> inc_first = InternalError("unset");
      Timed(report.production_us,
            [&] { inc_first = inc_door.Serve(request); });
      const std::vector<std::string> inc_audit = enforcement_entries();
      audit.Enable();
      Result<serve::Response> inc_second = InternalError("unset");
      Timed(report.production_us,
            [&] { inc_second = inc_door.Serve(request); });
      audit.Enable();
      Result<serve::Response> oracle_cold = InternalError("unset");
      Timed(report.oracle_us,
            [&] { oracle_cold = oracle_door.Serve(request); });
      const std::vector<std::string> oracle_audit = enforcement_entries();
      audit.Disable();
      if (!same_answer(inc_first, oracle_cold)) {
        fail(MismatchKind::kPolicyEditDivergence,
             edit_label + ": served answer diverges from the from-scratch "
                          "door (incremental=" +
                 inc_first.status().ToString() +
                 ", oracle=" + oracle_cold.status().ToString() + ")");
      }
      if (!same_answer(inc_second, oracle_cold)) {
        fail(MismatchKind::kPolicyEditDivergence,
             edit_label + ": warm re-serve diverges from the from-scratch "
                          "door");
      }
      if (inc_audit != oracle_audit) {
        fail(MismatchKind::kPolicyEditDivergence,
             edit_label + ": runtime-enforcement audit entries differ (" +
                 std::to_string(inc_audit.size()) + " vs " +
                 std::to_string(oracle_audit.size()) + ")");
      }
    }
  }

  if (!chosen.has_value()) return report;

  // --- execution arm -------------------------------------------------------
  const exec::DistributedExecutor executor(cluster, *chosen_policy);
  obs::AuthzAuditLog& audit = obs::AuthzAuditLog::Get();
  audit.Enable();
  Result<exec::ExecutionResult> executed = InternalError("unset");
  Timed(report.production_us, [&] {
    executed = executor.Execute(chosen->plan, chosen->safe_plan.assignment);
  });
  if (executed.ok()) {
    if (!storage::Table::SameRowMultiset(executed->table, *reference)) {
      std::ostringstream oss;
      oss << "distributed result has " << executed->table.row_count()
          << " rows, reference evaluation has " << reference->row_count();
      fail(MismatchKind::kResultMultiset, oss.str());
    }
    const std::size_t denied = DeniedEnforcementEntries();
    if (denied != 0) {
      fail(MismatchKind::kAuditViolation,
           std::to_string(denied) +
               " denied executor/requestor audit entries on a successful run");
    }

    // --- profile arm: observation only, and flow conservation --------------
    obs::QueryProfile profile;
    exec::ExecutionOptions profiled_options;
    profiled_options.profile = &profile;
    Result<exec::ExecutionResult> profiled = InternalError("unset");
    Timed(report.production_us, [&] {
      profiled = executor.Execute(chosen->plan, chosen->safe_plan.assignment,
                                  profiled_options);
    });
    if (!profiled.ok()) {
      fail(MismatchKind::kProfileDivergence,
           "profiled re-execution failed where the unprofiled run succeeded: " +
               profiled.status().ToString());
    } else {
      if (!TablesByteIdentical(executed->table, profiled->table)) {
        fail(MismatchKind::kProfileDivergence,
             "profiled re-execution returned a different table (profiling "
             "must be observation only)");
      }
      const std::string violation =
          CheckRowConservation(chosen->plan, profile);
      if (!violation.empty()) {
        fail(MismatchKind::kProfileDivergence,
             "row conservation violated: " + violation);
      }
    }

    // --- morsel arm: parallel execution is byte-identical ------------------
    // Re-run the distributed pipeline with a worker pool and tiny morsels
    // (so even fuzz-sized tables fan out) — the vectorized kernels promise
    // the exact sequential bytes at any thread count.
    if (options.threads > 1) {
      exec::ExecutionOptions parallel_options;
      parallel_options.threads = options.threads;
      parallel_options.morsel.morsel_rows = 64;
      parallel_options.morsel.min_parallel_rows = 0;
      Result<exec::ExecutionResult> parallel = InternalError("unset");
      Timed(report.production_us, [&] {
        parallel = executor.Execute(chosen->plan, chosen->safe_plan.assignment,
                                    parallel_options);
      });
      if (!parallel.ok()) {
        fail(MismatchKind::kThreadDivergence,
             "morsel-parallel execution failed where the sequential run "
             "succeeded: " +
                 parallel.status().ToString());
      } else if (!TablesByteIdentical(executed->table, parallel->table)) {
        fail(MismatchKind::kThreadDivergence,
             "morsel-parallel execution (threads=" +
                 std::to_string(options.threads) +
                 ") returned a different table than the sequential run");
      }
    }
  } else if (executed.status().code() == StatusCode::kUnauthorized) {
    fail(MismatchKind::kUnsafePlan,
         "runtime enforcement blocked a planner-approved assignment: " +
             executed.status().ToString());
  } else {
    fail(MismatchKind::kPipelineError,
         "fault-free execution failed: " + executed.status().ToString());
  }

  // --- fault arm -----------------------------------------------------------
  for (const std::uint64_t fault_seed : options.fault_seeds) {
    exec::FaultModelOptions fault_options;
    fault_options.seed = fault_seed;
    fault_options.drop_probability = options.fault_drop_probability;
    exec::FaultModel faults(fault_options);
    exec::ExecutionOptions exec_options;
    exec_options.faults = &faults;
    audit.Enable();
    Result<exec::ExecutionResult> faulted = InternalError("unset");
    Timed(report.production_us, [&] {
      faulted = executor.Execute(chosen->plan, chosen->safe_plan.assignment,
                                 exec_options);
    });
    if (faulted.ok()) {
      if (!storage::Table::SameRowMultiset(faulted->table, *reference)) {
        fail(MismatchKind::kFaultSafety,
             "fault seed " + std::to_string(fault_seed) +
                 ": recovered execution returned a different row multiset");
      }
      const std::size_t denied = DeniedEnforcementEntries();
      if (denied != 0) {
        fail(MismatchKind::kFaultSafety,
             "fault seed " + std::to_string(fault_seed) + ": " +
                 std::to_string(denied) +
                 " denied enforcement entries on a successful recovery");
      }
    } else if (faulted.status().code() != StatusCode::kUnavailable) {
      fail(MismatchKind::kFaultSafety,
           "fault seed " + std::to_string(fault_seed) +
               ": expected success or kUnavailable, got " +
               faulted.status().ToString());
    }
  }
  audit.Disable();
  return report;
}

}  // namespace cisqp::testcheck
