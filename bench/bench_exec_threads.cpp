// E18 — morsel-driven intra-operator parallelism: the vectorized
// σ → ⋈ → π-distinct pipeline from E16 swept across worker-pool sizes
// 1/2/4/8 against the sequential (no-pool) engine.
//
// Two claims, one hard and one hardware-dependent:
//
//   determinism  at EVERY thread count the parallel pipeline returns the
//                byte-identical table — same rows, same order. Any
//                difference aborts the binary (and thereby CI). threads=1
//                must take the exact sequential code path, so its timing is
//                also asserted against the no-pool run by the regression
//                gate (≤5% overhead, best-of-three).
//   speedup      with enough cores the 8-thread sweep point reaches ≥3x the
//                sequential wall time. Each artifact row records
//                hw_threads, and scripts/check_bench_regression.sh gates
//                the speedup only when hw_threads >= 4 — a single-core
//                runner can prove determinism but not scaling.
#include "bench_util.hpp"

#include <chrono>
#include <memory>
#include <random>

#include "algebra/vectorized.hpp"
#include "storage/column.hpp"

namespace cisqp::bench {
namespace {

using algebra::ColumnarBatch;
using algebra::MorselContext;
using storage::Column;
using storage::ColumnarTable;
using storage::Table;
using storage::Value;

constexpr catalog::AttributeId kK = 1;   // fact key
constexpr catalog::AttributeId kV = 2;   // fact measure (filtered)
constexpr catalog::AttributeId kS = 3;   // fact label (projected)
constexpr catalog::AttributeId kK2 = 4;  // dim key
constexpr catalog::AttributeId kW = 5;   // dim weight (projected)

/// Same workload family as E16 (bench_exec_kernels): 100k fact rows with ~1%
/// NULL join keys, 25k dim rows, selective filter, join, distinct project.
struct Workload {
  Table fact;
  Table dim;
  algebra::Predicate filter;
  std::vector<algebra::EquiJoinAtom> atoms = {{kK, kK2}};
  std::vector<catalog::AttributeId> projection = {kS, kW};

  explicit Workload(std::size_t fact_rows) {
    std::mt19937 rng(1234);
    const std::size_t key_space = fact_rows / 2;
    std::uniform_int_distribution<std::int64_t> key(
        0, static_cast<std::int64_t>(key_space) - 1);
    std::uniform_int_distribution<std::int64_t> measure(0, 999);
    static const char* kLabels[] = {"alpha", "beta", "gamma", "delta",
                                    "epsilon", "zeta", "eta", "theta"};
    std::uniform_int_distribution<int> label(0, 7);
    std::uniform_real_distribution<double> weight(0.0, 1.0);

    fact = Table({Column{kK, catalog::ValueType::kInt64},
                  Column{kV, catalog::ValueType::kInt64},
                  Column{kS, catalog::ValueType::kString}});
    fact.Reserve(fact_rows);
    for (std::size_t i = 0; i < fact_rows; ++i) {
      const bool null_key = i % 100 == 99;
      fact.AppendRowUnchecked({null_key ? Value() : Value(key(rng)),
                               Value(measure(rng)), Value(kLabels[label(rng)])});
    }
    dim = Table({Column{kK2, catalog::ValueType::kInt64},
                 Column{kW, catalog::ValueType::kDouble}});
    const std::size_t dim_rows = fact_rows / 4;
    dim.Reserve(dim_rows);
    for (std::size_t i = 0; i < dim_rows; ++i) {
      dim.AppendRowUnchecked({Value(key(rng)), Value(weight(rng))});
    }
    filter.And(algebra::Comparison{kV, algebra::CompareOp::kLt,
                                   Value(std::int64_t{500})});
  }
};

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One end-to-end pipeline run under `ctx` ({} = sequential engine).
Table RunPipeline(const std::shared_ptr<const ColumnarTable>& fact,
                  const std::shared_ptr<const ColumnarTable>& dim,
                  const Workload& w, const MorselContext& ctx,
                  std::int64_t* total_us) {
  const std::int64_t t0 = NowUs();
  ColumnarBatch filtered = Unwrap(
      algebra::SelectBatch(ColumnarBatch::FromTable(fact), w.filter, ctx),
      "select");
  ColumnarBatch joined =
      Unwrap(algebra::JoinBatches(filtered, ColumnarBatch::FromTable(dim),
                                  w.atoms, ctx),
             "join");
  ColumnarBatch projected = Unwrap(
      algebra::ProjectBatch(joined, w.projection, /*distinct=*/true, ctx),
      "project");
  Table out = projected.MaterializeRows();
  if (total_us != nullptr) *total_us = NowUs() - t0;
  return out;
}

bool ExactlyEqual(const Table& a, const Table& b) {
  if (a.columns() != b.columns() || a.row_count() != b.row_count()) return false;
  for (std::size_t r = 0; r < a.row_count(); ++r) {
    for (std::size_t c = 0; c < a.column_count(); ++c) {
      if (a.row(r)[c].CompareTotal(b.row(r)[c]) != 0) return false;
    }
  }
  return true;
}

std::int64_t Median(std::vector<std::int64_t> runs) {
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

void PrintThreadSweep() {
  PrintHeader("E18: morsel-driven parallel execution thread sweep",
              "byte-identical output at every thread count; >=3x end-to-end "
              "at 8 threads on >=4-core hardware");
  constexpr std::size_t kFactRows = 100000;
  constexpr int kRepeats = 5;
  const std::size_t hw_threads = ThreadPool::HardwareConcurrency();
  const Workload w(kFactRows);
  const auto fact = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(w.fact));
  const auto dim = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(w.dim));

  // Sequential reference: the engine with no pool at all.
  const Table reference = RunPipeline(fact, dim, w, MorselContext{}, nullptr);
  std::vector<std::int64_t> seq_runs(kRepeats);
  for (int i = 0; i < kRepeats; ++i) {
    Table out = RunPipeline(fact, dim, w, MorselContext{},
                            &seq_runs[static_cast<std::size_t>(i)]);
    benchmark::DoNotOptimize(out);
  }
  const std::int64_t seq_us = Median(seq_runs);

  Artifact artifact("exec_threads",
                    "E18: morsel-driven parallel execution thread sweep",
                    "byte-identical output at every thread count; >=3x "
                    "end-to-end at 8 threads on >=4-core hardware");
  std::printf("%8s %14s %9s %10s  (sequential=%lldus, hw_threads=%zu)\n",
              "threads", "total_us", "speedup", "identical",
              static_cast<long long>(seq_us), hw_threads);

  bool all_identical = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    MorselContext ctx;
    ctx.pool = &pool;
    bool identical = true;
    std::vector<std::int64_t> runs(kRepeats);
    for (int i = 0; i < kRepeats; ++i) {
      const Table out =
          RunPipeline(fact, dim, w, ctx, &runs[static_cast<std::size_t>(i)]);
      identical = identical && ExactlyEqual(out, reference);
    }
    all_identical = all_identical && identical;
    const std::int64_t total_us = Median(std::move(runs));
    const double speedup =
        total_us > 0
            ? static_cast<double>(seq_us) / static_cast<double>(total_us)
            : 0.0;
    std::printf("%8zu %14lld %8.2fx %10s\n", threads,
                static_cast<long long>(total_us), speedup,
                identical ? "yes" : "NO");
    artifact.Row()
        .Value("threads", threads)
        .Value("hw_threads", hw_threads)
        .Value("fact_rows", w.fact.row_count())
        .Value("dim_rows", w.dim.row_count())
        .Value("result_rows", reference.row_count())
        .Value("sequential_total_us", seq_us)
        .Value("total_us", total_us)
        .Value("speedup", speedup)
        .Value("identical", identical);
  }
  artifact.Write();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: parallel pipeline output differs from sequential\n");
    std::abort();
  }
}

void BM_ParallelPipeline(benchmark::State& state) {
  const Workload w(100000);
  const auto fact = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(w.fact));
  const auto dim = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(w.dim));
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  MorselContext ctx;
  ctx.pool = &pool;
  for (auto _ : state) {
    Table out = RunPipeline(fact, dim, w, ctx, nullptr);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ParallelPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintThreadSweep();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
