#include "exec/cluster.hpp"

namespace cisqp::exec {

Status Cluster::LoadTable(catalog::RelationId rel, storage::Table table) {
  if (rel >= cat_.relation_count()) {
    return NotFoundError("unknown relation id " + std::to_string(rel));
  }
  const storage::Table expected = storage::Table::ForRelation(cat_, rel);
  if (table.columns() != expected.columns()) {
    return InvalidArgumentError("table header does not match schema of '" +
                                cat_.relation(rel).name + "'");
  }
  tables_[rel] = std::move(table);
  return Status::Ok();
}

Status Cluster::InsertRow(catalog::RelationId rel, storage::Row row) {
  if (rel >= cat_.relation_count()) {
    return NotFoundError("unknown relation id " + std::to_string(rel));
  }
  if (!tables_[rel]) tables_[rel] = storage::Table::ForRelation(cat_, rel);
  return tables_[rel]->AppendRow(std::move(row));
}

const storage::Table& Cluster::TableOf(catalog::RelationId rel) const {
  CISQP_CHECK_MSG(rel < cat_.relation_count(), "unknown relation id " << rel);
  if (!tables_[rel]) tables_[rel] = storage::Table::ForRelation(cat_, rel);
  return *tables_[rel];
}

}  // namespace cisqp::exec
