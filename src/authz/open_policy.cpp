#include "authz/open_policy.hpp"

#include <algorithm>
#include <sstream>

namespace cisqp::authz {

std::string Denial::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << "[" << AttributeSetToString(cat, attributes) << ", "
      << path.ToString(cat) << "] -| " << cat.server(server).name;
  return oss.str();
}

Status OpenPolicySet::Add(const catalog::Catalog& cat, Denial denial) {
  if (denial.server >= cat.server_count()) {
    return NotFoundError("denial targets an unknown server id");
  }
  if (denial.attributes.empty()) {
    return InvalidArgumentError("denial must name at least one attribute");
  }
  for (IdSet::value_type a : denial.attributes) {
    if (a >= cat.attribute_count()) {
      return NotFoundError("denial names an unknown attribute id");
    }
  }
  for (const JoinAtom& atom : denial.path.atoms()) {
    if (atom.first >= cat.attribute_count() ||
        atom.second >= cat.attribute_count()) {
      return NotFoundError("denial join path references an unknown attribute id");
    }
    if (cat.attribute(atom.first).relation == cat.attribute(atom.second).relation) {
      return InvalidArgumentError(
          "denial path atom (" + cat.attribute(atom.first).name + ", " +
          cat.attribute(atom.second).name + ") stays within one relation");
    }
  }
  if (by_server_.size() < cat.server_count()) by_server_.resize(cat.server_count());
  std::vector<Denial>& denials = by_server_[denial.server];
  if (std::find(denials.begin(), denials.end(), denial) != denials.end()) {
    return AlreadyExistsError("duplicate denial " + denial.ToString(cat));
  }
  denials.push_back(std::move(denial));
  ++total_;
  return Status::Ok();
}

Status OpenPolicySet::Add(
    const catalog::Catalog& cat, std::string_view server_name,
    const std::vector<std::string>& attribute_names,
    const std::vector<std::pair<std::string, std::string>>& path_pairs) {
  Denial denial;
  CISQP_ASSIGN_OR_RETURN(denial.server, cat.FindServer(server_name));
  for (const std::string& name : attribute_names) {
    CISQP_ASSIGN_OR_RETURN(catalog::AttributeId id, cat.FindAttribute(name));
    denial.attributes.Insert(id);
  }
  std::vector<JoinAtom> atoms;
  for (const auto& [left, right] : path_pairs) {
    CISQP_ASSIGN_OR_RETURN(catalog::AttributeId l, cat.FindAttribute(left));
    CISQP_ASSIGN_OR_RETURN(catalog::AttributeId r, cat.FindAttribute(right));
    atoms.push_back(JoinAtom::Make(l, r));
  }
  denial.path = JoinPath::FromAtoms(std::move(atoms));
  return Add(cat, std::move(denial));
}

bool OpenPolicySet::CanView(const Profile& profile,
                            catalog::ServerId server) const {
  if (server >= by_server_.size()) return true;  // no denials recorded
  const std::vector<Denial>& denials = by_server_[server];
  return std::none_of(denials.begin(), denials.end(),
                      [&](const Denial& d) { return d.Fires(profile); });
}

CanViewExplanation OpenPolicySet::ExplainCanView(
    const Profile& profile, catalog::ServerId server) const {
  CanViewExplanation explanation;
  if (server < by_server_.size()) {
    for (const Denial& d : by_server_[server]) {
      if (d.Fires(profile)) {
        explanation.reason = DenyReason::kDenialFired;
        explanation.matched_attributes = d.attributes;
        return explanation;
      }
    }
  }
  explanation.allowed = true;
  return explanation;
}

std::vector<Denial> OpenPolicySet::ForServer(catalog::ServerId server) const {
  if (server >= by_server_.size()) return {};
  return by_server_[server];
}

std::string OpenPolicySet::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  for (const auto& denials : by_server_) {
    for (const Denial& d : denials) oss << d.ToString(cat) << "\n";
  }
  return oss.str();
}

}  // namespace cisqp::authz
