#include "obs/profile.hpp"

#include <atomic>
#include <sstream>

#include "obs/trace.hpp"

namespace cisqp::obs {
namespace {

/// Renders a double without trailing noise (matches the metrics exporter).
std::string Compact(double value) {
  std::ostringstream oss;
  oss << value;
  return oss.str();
}

}  // namespace

double OperatorStats::Selectivity() const {
  const double in = rows_in_right > 0
                        ? static_cast<double>(rows_in_left) *
                              static_cast<double>(rows_in_right)
                        : static_cast<double>(rows_in_left);
  if (in <= 0.0) return 1.0;
  return static_cast<double>(rows_out) / in;
}

double OperatorStats::DriftRatio() const {
  if (est_rows < 0.0) return -1.0;
  // Both sides offset by one row so empty-vs-empty reads as drift 1 and
  // empty-vs-estimated still shows the miss.
  return (static_cast<double>(rows_out) + 1.0) / (est_rows + 1.0);
}

std::int64_t QueryProfile::NextQueryId() {
  static std::atomic<std::int64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

OperatorStats& QueryProfile::OpAt(int node_id) {
  if (node_id >= static_cast<int>(operators.size())) {
    operators.resize(static_cast<std::size_t>(node_id) + 1);
  }
  OperatorStats& stats = operators[static_cast<std::size_t>(node_id)];
  stats.node_id = node_id;
  return stats;
}

const OperatorStats* QueryProfile::FindOp(int node_id) const {
  if (node_id < 0 || node_id >= static_cast<int>(operators.size())) {
    return nullptr;
  }
  const OperatorStats& stats = operators[static_cast<std::size_t>(node_id)];
  return stats.node_id < 0 ? nullptr : &stats;
}

std::uint64_t QueryProfile::TotalBytesShipped() const {
  std::uint64_t total = 0;
  for (const TransferStats& t : transfers) total += t.bytes;
  return total;
}

std::string QueryProfile::ToJson() const {
  std::ostringstream oss;
  oss << "{\"query_id\":" << query_id << ",\"duration_us\":" << duration_us;
  if (!query_text.empty()) {
    oss << ",\"query\":\"" << JsonEscape(query_text) << "\"";
  }
  oss << ",\"operators\":[";
  bool first = true;
  for (const OperatorStats& op : operators) {
    if (op.node_id < 0) continue;  // never-profiled slot
    if (!first) oss << ",";
    first = false;
    oss << "{\"node\":" << op.node_id << ",\"op\":\"" << JsonEscape(op.op)
        << "\",\"server\":\"" << JsonEscape(op.server)
        << "\",\"invocations\":" << op.invocations
        << ",\"batches\":" << op.batches
        << ",\"rows_in_left\":" << op.rows_in_left
        << ",\"rows_in_right\":" << op.rows_in_right
        << ",\"rows_out\":" << op.rows_out << ",\"time_us\":" << op.time_us
        << ",\"selectivity\":" << Compact(op.Selectivity());
    if (op.est_rows >= 0.0) {
      oss << ",\"est_rows\":" << Compact(op.est_rows)
          << ",\"drift\":" << Compact(op.DriftRatio());
    }
    if (op.hash_build_rows + op.hash_probe_rows + op.hash_matches > 0) {
      oss << ",\"hash_build_rows\":" << op.hash_build_rows
          << ",\"hash_probe_rows\":" << op.hash_probe_rows
          << ",\"hash_matches\":" << op.hash_matches;
    }
    if (op.dict_filter_lookups > 0) {
      oss << ",\"dict_filter_lookups\":" << op.dict_filter_lookups
          << ",\"dict_filter_hits\":" << op.dict_filter_hits;
    }
    if (op.rows_hashed > 0) oss << ",\"rows_hashed\":" << op.rows_hashed;
    if (op.morsels + op.partitions > 0) {
      oss << ",\"morsels\":" << op.morsels
          << ",\"partitions\":" << op.partitions << ",\"worker_busy_us\":[";
      for (std::size_t w = 0; w < op.worker_busy_us.size(); ++w) {
        if (w > 0) oss << ",";
        oss << op.worker_busy_us[w];
      }
      oss << "]";
    }
    if (op.bytes_shipped > 0) oss << ",\"bytes_shipped\":" << op.bytes_shipped;
    oss << "}";
  }
  oss << "],\"transfers\":[";
  first = true;
  for (const TransferStats& t : transfers) {
    if (!first) oss << ",";
    first = false;
    oss << "{\"node\":" << t.node_id << ",\"from\":\"" << JsonEscape(t.from)
        << "\",\"to\":\"" << JsonEscape(t.to) << "\",\"rows\":" << t.rows
        << ",\"bytes\":" << t.bytes << ",\"query_id\":" << t.query_id
        << ",\"parent_span\":" << t.parent_span << ",\"what\":\""
        << JsonEscape(t.what) << "\"}";
  }
  oss << "]}";
  return oss.str();
}

}  // namespace cisqp::obs
