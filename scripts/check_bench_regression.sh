#!/usr/bin/env bash
# CI bench smoke gates: the columnar execution engine (E16), the
# query-profiler overhead budget (E13), morsel-driven parallel
# execution (E18), the serving front door's caches (E19), and
# incremental policy churn (E20).
#
# Runs bench_exec_kernels, then compares the freshly measured end-to-end
# speedup (row kernels / columnar kernels) against the committed baseline in
# bench/baselines/BENCH_exec_kernels.json. The step fails when
#
#   * the columnar output is not byte-identical to the row-kernel output, or
#   * the fresh speedup drops below HALF the committed baseline speedup
#     (a >2x regression — generous enough for noisy CI runners, tight
#     enough to catch an accidental de-vectorization).
#
# Then runs bench_obs_overhead and fails when the profiler-enabled arm costs
# more than 5% over the spans-only enabled arm (profiler_vs_enabled_pct in
# BENCH_obs_overhead.json), best result of up to three attempts to ride out
# noisy runners.
#
# Then runs bench_exec_threads (E18). Determinism is unconditional: the
# binary aborts unless every thread count reproduces the sequential bytes.
# The threads=1 arm must stay within 5% of the no-pool engine (best of
# three). The >=3x 8-thread speedup floor applies only when the runner has
# >=4 hardware threads — a single-core runner can prove determinism but
# not scaling, and the artifact records hw_threads so that skip is visible.
#
#   scripts/check_bench_regression.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BENCH="$BUILD_DIR/bench/bench_exec_kernels"
if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built" >&2
  exit 1
fi

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
# --benchmark_filter matching nothing skips the google-benchmark loops; the
# E16 kernel table (and its artifact) is printed unconditionally by main().
CISQP_BENCH_OUT_DIR="$OUT_DIR" "$BENCH" --benchmark_filter='^$'

python3 - "$OUT_DIR/BENCH_exec_kernels.json" \
    bench/baselines/BENCH_exec_kernels.json <<'PY'
import json
import sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
fresh = json.load(open(fresh_path))["rows"][0]
baseline = json.load(open(baseline_path))["rows"][0]

if not fresh["identical"]:
    sys.exit("FAIL: columnar output is not byte-identical to the row kernels")

floor = baseline["speedup"] / 2.0
print(f"fresh speedup:    {fresh['speedup']:.2f}x "
      f"(row {fresh['row_total_us']}us / columnar {fresh['columnar_total_us']}us)")
print(f"baseline speedup: {baseline['speedup']:.2f}x  -> floor {floor:.2f}x")
if fresh["speedup"] < floor:
    sys.exit(f"FAIL: speedup {fresh['speedup']:.2f}x regressed more than 2x "
             f"against the committed baseline {baseline['speedup']:.2f}x")
print("OK: columnar engine within 2x of the committed baseline")
PY

# --- E13: profiler overhead budget -----------------------------------------
OBS_BENCH="$BUILD_DIR/bench/bench_obs_overhead"
if [ ! -x "$OBS_BENCH" ]; then
  echo "error: $OBS_BENCH not built" >&2
  exit 1
fi

PROFILER_BUDGET_PCT=5.0
best_pct=""
for attempt in 1 2 3; do
  CISQP_BENCH_OUT_DIR="$OUT_DIR" "$OBS_BENCH" --benchmark_filter='^$' \
      > /dev/null
  pct="$(python3 -c '
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
row = next(r for r in rows if r["config"] == "profiler_enabled")
print(row["profiler_vs_enabled_pct"])
' "$OUT_DIR/BENCH_obs_overhead.json")"
  echo "profiler-vs-enabled overhead, attempt $attempt: ${pct}%"
  if [ -z "$best_pct" ] || \
     python3 -c "import sys; sys.exit(0 if $pct < $best_pct else 1)"; then
    best_pct="$pct"
  fi
  if python3 -c "import sys; sys.exit(0 if $best_pct <= $PROFILER_BUDGET_PCT else 1)"; then
    break
  fi
done

if python3 -c "import sys; sys.exit(0 if $best_pct <= $PROFILER_BUDGET_PCT else 1)"; then
  echo "OK: profiler overhead ${best_pct}% within the ${PROFILER_BUDGET_PCT}% budget"
else
  echo "FAIL: profiler overhead ${best_pct}% exceeds the ${PROFILER_BUDGET_PCT}% budget" >&2
  exit 1
fi

# --- E18: morsel-driven parallel execution ----------------------------------
THREADS_BENCH="$BUILD_DIR/bench/bench_exec_threads"
if [ ! -x "$THREADS_BENCH" ]; then
  echo "error: $THREADS_BENCH not built" >&2
  exit 1
fi

# Determinism needs no JSON check: the binary aborts (failing this step)
# unless every thread count returned the byte-identical table.
OVERHEAD_BUDGET_PCT=5.0
best_overhead=""
for attempt in 1 2 3; do
  CISQP_BENCH_OUT_DIR="$OUT_DIR" "$THREADS_BENCH" --benchmark_filter='^$' \
      > /dev/null
  overhead="$(python3 -c '
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
row = next(r for r in rows if r["threads"] == 1)
print(100.0 * row["total_us"] / row["sequential_total_us"] - 100.0)
' "$OUT_DIR/BENCH_exec_threads.json")"
  echo "threads=1 vs sequential overhead, attempt $attempt: ${overhead}%"
  if [ -z "$best_overhead" ] || \
     python3 -c "import sys; sys.exit(0 if $overhead < $best_overhead else 1)"; then
    best_overhead="$overhead"
  fi
  if python3 -c "import sys; sys.exit(0 if $best_overhead <= $OVERHEAD_BUDGET_PCT else 1)"; then
    break
  fi
done

if python3 -c "import sys; sys.exit(0 if $best_overhead <= $OVERHEAD_BUDGET_PCT else 1)"; then
  echo "OK: threads=1 overhead ${best_overhead}% within the ${OVERHEAD_BUDGET_PCT}% budget"
else
  echo "FAIL: threads=1 overhead ${best_overhead}% exceeds the ${OVERHEAD_BUDGET_PCT}% budget (the single-thread context must take the exact sequential path)" >&2
  exit 1
fi

python3 - "$OUT_DIR/BENCH_exec_threads.json" \
    bench/baselines/BENCH_exec_threads.json <<'PY'
import json
import sys

fresh = next(r for r in json.load(open(sys.argv[1]))["rows"]
             if r["threads"] == 8)
base = next(r for r in json.load(open(sys.argv[2]))["rows"]
            if r["threads"] == 8)

hw = fresh["hw_threads"]
if hw < 4:
    print(f"SKIP: 8-thread speedup floor needs >=4 hardware threads, runner "
          f"has {hw} (measured {fresh['speedup']:.2f}x; determinism and the "
          f"threads=1 budget were still enforced)")
    sys.exit(0)

floor = 3.0
if base["hw_threads"] >= 4:
    # A committed baseline from real parallel hardware tightens the floor.
    floor = max(floor, base["speedup"] / 2.0)
print(f"fresh 8-thread speedup: {fresh['speedup']:.2f}x "
      f"(floor {floor:.2f}x, baseline {base['speedup']:.2f}x "
      f"on {base['hw_threads']} hw threads)")
if fresh["speedup"] < floor:
    sys.exit(f"FAIL: 8-thread speedup {fresh['speedup']:.2f}x below the "
             f"{floor:.2f}x floor")
print("OK: morsel-parallel speedup within the gate")
PY

# --- E19: multi-query serving front door --------------------------------
SERVE_BENCH="$BUILD_DIR/bench/bench_serving"
if [ ! -x "$SERVE_BENCH" ]; then
  echo "error: $SERVE_BENCH not built" >&2
  exit 1
fi

# Byte-identity is unconditional: the binary aborts (failing this step)
# when any cached answer differs from its cold reference. The committed
# baseline documents the >=5x E19 claim; CI only enforces half of it
# (best of three) so loaded runners don't flake while an accidental
# de-caching still fails loudly.
SERVE_FLOOR=3.0
best_speedup=""
for attempt in 1 2 3; do
  CISQP_BENCH_OUT_DIR="$OUT_DIR" "$SERVE_BENCH" --benchmark_filter='^$' \
      > /dev/null
  speedup="$(python3 -c '
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
row = next(r for r in rows if r["mode"] == "summary")
if not row["identical"]:
    sys.exit("FAIL: a cached answer differed from its cold reference")
print(row["speedup"])
' "$OUT_DIR/BENCH_serving.json")"
  echo "1-client cached speedup, attempt $attempt: ${speedup}x"
  if [ -z "$best_speedup" ] || \
     python3 -c "import sys; sys.exit(0 if $speedup > $best_speedup else 1)"; then
    best_speedup="$speedup"
  fi
  if python3 -c "import sys; sys.exit(0 if $best_speedup >= $SERVE_FLOOR else 1)"; then
    break
  fi
done

python3 - "$best_speedup" bench/baselines/BENCH_serving.json <<'PY'
import json
import sys

fresh = float(sys.argv[1])
base = next(r for r in json.load(open(sys.argv[2]))["rows"]
            if r["mode"] == "summary")
floor = base["speedup"] / 2.0
print(f"fresh serving speedup: {fresh:.2f}x "
      f"(floor {floor:.2f}x, baseline {base['speedup']:.2f}x)")
if fresh < floor:
    sys.exit(f"FAIL: cached-hit speedup {fresh:.2f}x below the "
             f"{floor:.2f}x floor")
print("OK: serving cache speedup within the gate")
PY

# --- E20: incremental policy churn --------------------------------------
CHURN_BENCH="$BUILD_DIR/bench/bench_policy_churn"
if [ ! -x "$CHURN_BENCH" ]; then
  echo "error: $CHURN_BENCH not built" >&2
  exit 1
fi

# Byte-identity is unconditional: the binary aborts (failing this step)
# when any post-edit answer differs from its cold reference. The timing
# gate takes the best of three so loaded runners don't flake: the
# aggregate incremental edit cost must beat the per-edit full rechase
# (floor = half the committed baseline speedup, never below break-even),
# and a disjoint edit must keep the warm hit rate within 5 points.
best_churn=""
best_delta_pts=""
for attempt in 1 2 3; do
  CISQP_BENCH_OUT_DIR="$OUT_DIR" "$CHURN_BENCH" --benchmark_filter='^$' \
      > /dev/null
  churn="$(python3 -c '
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
row = next(r for r in rows if r.get("mode") == "summary")
if not row["identical"]:
    sys.exit("FAIL: a post-edit answer differed from its cold reference")
print(row["edit_speedup"])
' "$OUT_DIR/BENCH_policy_churn.json")"
  delta_pts="$(python3 -c '
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
row = next(r for r in rows if r.get("mode") == "summary")
print(row["hit_rate_delta_pts"])
' "$OUT_DIR/BENCH_policy_churn.json")"
  echo "incremental edit speedup, attempt $attempt: ${churn}x (hit-rate delta ${delta_pts} pts)"
  if [ -z "$best_churn" ] || \
     python3 -c "import sys; sys.exit(0 if $churn > $best_churn else 1)"; then
    best_churn="$churn"
  fi
  if [ -z "$best_delta_pts" ] || \
     python3 -c "import sys; sys.exit(0 if $delta_pts < $best_delta_pts else 1)"; then
    best_delta_pts="$delta_pts"
  fi
  if python3 -c "import sys; sys.exit(0 if $best_churn >= 1.0 and $best_delta_pts <= 5.0 else 1)"; then
    break
  fi
done

python3 - "$best_churn" "$best_delta_pts" \
    bench/baselines/BENCH_policy_churn.json <<'PY'
import json
import sys

fresh = float(sys.argv[1])
delta_pts = float(sys.argv[2])
base = next(r for r in json.load(open(sys.argv[3]))["rows"]
            if r.get("mode") == "summary")
floor = max(1.0, base["edit_speedup"] / 2.0)
print(f"fresh edit speedup: {fresh:.2f}x "
      f"(floor {floor:.2f}x, baseline {base['edit_speedup']:.2f}x)")
if fresh < floor:
    sys.exit(f"FAIL: incremental edit speedup {fresh:.2f}x below the "
             f"{floor:.2f}x floor")
if delta_pts > 5.0:
    sys.exit(f"FAIL: disjoint-edit hit rate fell {delta_pts:.1f} points "
             f"below the no-edit warm rate (5-point budget)")
print(f"OK: incremental churn within the gate "
      f"(hit-rate delta {delta_pts:.1f} pts)")
PY
