// EXPLAIN / EXPLAIN ANALYZE rendering: the plan tree annotated with the
// optimizer's estimated cardinalities and — after a profiled execution — the
// actual per-operator rows, wall time, and bytes shipped, with the
// estimate-vs-actual drift ratio called out whenever it crosses a threshold.
//
// This is the human-facing surface of the profiler (DESIGN.md §13): the
// estimates come from the same PlanBuilder cardinality model the planners
// use (including feedback-store overrides), so what EXPLAIN prints is
// exactly what the optimizer believed, and the drift column is exactly the
// signal HarvestActualCardinalities feeds back.
#pragma once

#include <string>

#include "obs/profile.hpp"
#include "plan/plan_node.hpp"
#include "plan/stats.hpp"

namespace cisqp::exec {

struct ExplainOptions {
  /// Flag an operator when actual/estimated rows (smoothed, see
  /// OperatorStats::DriftRatio) exceeds this factor in either direction.
  double drift_threshold = 2.0;
};

/// Stamps `est_rows` on every profiled operator from the PlanBuilder
/// cardinality model over `plan`, so QueryProfile::ToJson carries the
/// estimate-vs-actual pair. `stats` and `feedback` may be null.
void AnnotateEstimates(const catalog::Catalog& cat,
                       const plan::StatsCatalog* stats,
                       const plan::StatsFeedback* feedback,
                       const plan::QueryPlan& plan, obs::QueryProfile& profile);

/// Indented plan tree with per-node `est=` rows; when `profile` is non-null
/// (EXPLAIN ANALYZE) each line adds actual rows, wall time, bytes shipped,
/// and a `<-- drift` marker past the threshold, followed by a transfer
/// summary footer. `stats`, `feedback`, and `profile` may be null.
std::string RenderExplain(const catalog::Catalog& cat,
                          const plan::StatsCatalog* stats,
                          const plan::StatsFeedback* feedback,
                          const plan::QueryPlan& plan,
                          const obs::QueryProfile* profile,
                          const ExplainOptions& options = {});

}  // namespace cisqp::exec
