// SafePlanner: the paper's two-traversal algorithm (Fig. 6) for Problem 4.1 —
// given a query tree plan and an authorization set, decide feasibility and
// produce a safe executor assignment λ_T.
//
// Traversal 1, Find_candidates (post-order): computes each node's profile
// (Fig. 4) and its candidate master servers. For a join it first searches the
// left child's candidates — in decreasing join-counter order — for one that
// may act as slave of a right-master semi-join; every right-child candidate
// is then admitted as master if it can view the semi-join master view (when
// a slave exists) or, failing that, the full regular-join view. The check is
// then repeated symmetrically. Candidate counters track in how many joins of
// the subtree the server participates; see DESIGN.md §2.2-2.3 for the two
// spots where the printed pseudocode is ambiguous and how this implementation
// resolves them.
//
// Traversal 2, Assign_ex (pre-order): at the root picks the candidate with
// the highest counter; at inner nodes the server pushed down by the parent.
// The chosen master is pushed to the child it was inherited from, the
// recorded slave (if the chosen candidate qualified as a semi-join master)
// to the other child.
#pragma once

#include <optional>
#include <vector>

#include "authz/authorization.hpp"
#include "obs/audit.hpp"
#include "planner/assignment.hpp"
#include "planner/mode_views.hpp"

namespace cisqp::planner {

struct SafePlannerOptions {
  /// Footnote-3 extension: when a join node has no candidate from either
  /// child, admit any federation server that may view BOTH operands in full
  /// as a regular-join proxy master. Off by default (the paper's algorithm).
  bool allow_third_party = false;

  /// When set, the plan is feasible only if this server may additionally
  /// view the root result profile (the party issuing the query).
  std::optional<catalog::ServerId> requestor;

  /// Servers treated as nonexistent during candidate selection — the
  /// executor's failover path replans over the surviving federation by
  /// listing the permanently-failed servers here. A leaf whose home server
  /// is excluded makes the plan infeasible: its base data is gone.
  std::vector<catalog::ServerId> excluded_servers;

  /// Audit site recorded for every CanView probe of this run. The default
  /// is the planner site; the executor's failover replan tags its probes
  /// kFailover so mid-recovery decisions are distinguishable in the log.
  obs::AuditSite audit_site = obs::AuditSite::kPlanner;
};

/// Successful planning output.
struct SafePlan {
  Assignment assignment;
  std::vector<authz::Profile> profiles;  ///< per node id (Fig. 4)
  PlanningTrace trace;                   ///< Fig. 7 material
};

/// Outcome of an Analyze call, feasible or not.
struct PlanningReport {
  bool feasible = false;
  int blocking_node = -1;  ///< node at which Find_candidates exited, or -1
  std::optional<SafePlan> plan;  ///< set iff feasible
  std::size_t can_view_calls = 0;  ///< CanView probes performed
  /// When infeasible: every failed CanView probe at the blocking node,
  /// naming the server, the attempted role, and the denied view profile.
  std::vector<CandidateRejection> blocking_rejections;
};

class SafePlanner {
 public:
  SafePlanner(const catalog::Catalog& cat, const authz::Policy& auths,
              SafePlannerOptions options = {})
      : cat_(cat), auths_(auths), options_(options) {}

  /// Runs both traversals. Never fails on infeasibility — that is reported
  /// in the PlanningReport; fails only on malformed plans.
  Result<PlanningReport> Analyze(const plan::QueryPlan& plan) const;

  /// Convenience wrapper: the safe plan, or kInfeasible naming the blocking
  /// node (Problem 4.1).
  Result<SafePlan> Plan(const plan::QueryPlan& plan) const;

 private:
  const catalog::Catalog& cat_;
  const authz::Policy& auths_;
  SafePlannerOptions options_;
};

}  // namespace cisqp::planner
