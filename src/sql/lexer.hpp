// Lexer for the select-from-where dialect.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "sql/token.hpp"

namespace cisqp::sql {

/// Tokenizes `text`. The final token is always kEnd. Fails with
/// kInvalidArgument on unknown characters or unterminated string literals,
/// with a byte offset in the message.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace cisqp::sql
