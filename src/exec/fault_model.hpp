// FaultModel: deterministic fault injection for the simulated federation.
//
// The paper assumes cooperating servers that simply stay up; a production
// federation must keep answering queries when links flake and servers go
// dark. This module models those failures *deterministically* so every
// recovery path is replayable: a seeded per-link drop probability injects
// transient faults, and explicit outage windows take whole servers dark —
// transiently (a finite window the executor's backoff can wait out) or
// permanently (`kNeverRecovers`, which only authorization-aware failover
// can route around).
//
// Time is virtual. The executor keeps a per-query microsecond clock that
// advances only through backoff waits; outage windows are expressed on that
// clock, so tests and benches replay byte-identical schedules with no real
// sleeping. Drop decisions depend only on (seed, from, to, per-link attempt
// index), never on wall clock or call interleaving across links.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"

namespace cisqp::exec {

/// Outage end marking a server that never comes back (a permanent failure).
inline constexpr std::int64_t kNeverRecovers =
    std::numeric_limits<std::int64_t>::max();

/// One server-dark interval [start_us, end_us) in virtual query time.
struct OutageWindow {
  catalog::ServerId server = catalog::kInvalidId;
  std::int64_t start_us = 0;
  std::int64_t end_us = kNeverRecovers;  ///< kNeverRecovers = permanent

  bool permanent() const noexcept { return end_us == kNeverRecovers; }
};

struct FaultModelOptions {
  std::uint64_t seed = 0;
  /// Probability that one transfer attempt on any link is dropped
  /// (a transient fault; the executor re-sends with backoff).
  double drop_probability = 0.0;
  std::vector<OutageWindow> outages;
};

/// What happened to one transfer attempt.
enum class ShipOutcome : std::uint8_t {
  kDelivered,       ///< the bytes arrived
  kTransientFault,  ///< dropped; retrying (possibly later) may succeed
  kServerDown,      ///< an endpoint is permanently gone; retrying cannot help
};

struct ShipFate {
  ShipOutcome outcome = ShipOutcome::kDelivered;
  /// The permanently-failed endpoint when outcome == kServerDown.
  catalog::ServerId down_server = catalog::kInvalidId;
};

/// Seeded fault injector consulted by the executor on every Ship attempt.
/// Thread-safe: concurrent executors may share one model (the per-link
/// attempt counters serialize on a mutex), though determinism of the drop
/// schedule is per link, not across an interleaving of queries.
class FaultModel {
 public:
  explicit FaultModel(FaultModelOptions options)
      : options_(std::move(options)) {}

  const FaultModelOptions& options() const noexcept { return options_; }

  /// Decides the fate of one attempt to move bytes from `from` to `to` at
  /// virtual time `now_us`. Outage windows dominate the link roll: a dark
  /// server can neither send nor receive.
  ShipFate OnShip(catalog::ServerId from, catalog::ServerId to,
                  std::int64_t now_us);

  /// True iff `server` is inside a permanent outage as of `now_us`.
  bool IsPermanentlyDown(catalog::ServerId server,
                         std::int64_t now_us) const;

  /// All servers permanently down as of `now_us`, ascending, deduplicated —
  /// the executor's failover exclusion set.
  std::vector<catalog::ServerId> PermanentlyDown(std::int64_t now_us) const;

 private:
  FaultModelOptions options_;
  mutable std::mutex mu_;  ///< guards attempts_
  std::map<std::pair<catalog::ServerId, catalog::ServerId>, std::uint64_t>
      attempts_;
};

/// Textual fault schedule, e.g. from `cisqpsh --faults`:
///
///   seed=7,drop=0.1,down=S_N@1000..50000,kill=S_D@0
///
///   seed=N            rng seed (default 0)
///   drop=P            per-attempt per-link drop probability in [0,1]
///   down=NAME@A..B    server NAME dark over virtual [A,B) microseconds
///   kill=NAME@A       server NAME permanently down from virtual time A
///
/// Server names resolve against a catalog only in `Resolve`, so the spec can
/// be parsed before the federation is loaded.
struct FaultSpec {
  struct NamedOutage {
    std::string server;
    std::int64_t start_us = 0;
    std::int64_t end_us = kNeverRecovers;
  };

  std::uint64_t seed = 0;
  double drop_probability = 0.0;
  std::vector<NamedOutage> outages;

  Result<FaultModelOptions> Resolve(const catalog::Catalog& cat) const;
};

Result<FaultSpec> ParseFaultSpec(std::string_view text);

}  // namespace cisqp::exec
