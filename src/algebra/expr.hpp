// Selection predicates: conjunctions of simple comparisons.
//
// The paper's query class is select-from-where with conjunctive conditions
// (§2). A Predicate is a conjunction of comparisons, each between an
// attribute and a literal or between two attributes; the attributes it
// references form the `X` of `σ_X` in the profile algebra (paper Fig. 4).
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "catalog/catalog.hpp"
#include "common/idset.hpp"
#include "storage/table.hpp"

namespace cisqp::algebra {

enum class CompareOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpSymbol(CompareOp op) noexcept;

/// One comparison: `lhs op rhs` where rhs is a literal or another attribute.
struct Comparison {
  catalog::AttributeId lhs = catalog::kInvalidId;
  CompareOp op = CompareOp::kEq;
  std::variant<storage::Value, catalog::AttributeId> rhs;

  bool rhs_is_attribute() const noexcept {
    return std::holds_alternative<catalog::AttributeId>(rhs);
  }
};

/// A conjunction of comparisons; an empty conjunction is TRUE.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Comparison> conjuncts)
      : conjuncts_(std::move(conjuncts)) {}

  static Predicate True() { return Predicate(); }

  void And(Comparison c) { conjuncts_.push_back(std::move(c)); }
  void And(const Predicate& other) {
    conjuncts_.insert(conjuncts_.end(), other.conjuncts_.begin(),
                      other.conjuncts_.end());
  }

  bool IsTrue() const noexcept { return conjuncts_.empty(); }
  const std::vector<Comparison>& conjuncts() const noexcept { return conjuncts_; }

  /// All attributes mentioned anywhere in the conjunction — the `X` that
  /// enters the `Rσ` profile component.
  IdSet ReferencedAttributes() const;

  /// Evaluates against `row` laid out per `table`'s header. SQL semantics:
  /// comparisons involving NULL are false. Fails when a referenced attribute
  /// is not a column of `table`.
  Result<bool> Evaluate(const storage::Table& table,
                        const storage::Row& row) const;

  std::string ToString(const catalog::Catalog& cat) const;

 private:
  std::vector<Comparison> conjuncts_;
};

/// Evaluates one comparison given resolved cell values.
bool EvaluateComparison(const storage::Value& lhs, CompareOp op,
                        const storage::Value& rhs) noexcept;

}  // namespace cisqp::algebra
