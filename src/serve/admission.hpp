// AdmissionController: the front door's bounded request scheduler
// (DESIGN.md §15.1).
//
// Serving is synchronous — each client thread calls FrontDoor::Serve and
// blocks for its answer — so admission control is a counting gate, not a
// task queue: at most `max_concurrent` requests execute at once, at most
// `max_queue` more wait their turn, and anything beyond that is rejected
// immediately with kResourceExhausted (fail fast beats unbounded queueing;
// the caller can retry with backoff). Waiters are admitted in FIFO order
// via ticket numbers, so no request starves under sustained load.
//
// The controller publishes its state as metrics: serve.admitted /
// serve.rejected counters and serve.running / serve.queued gauges.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.hpp"

namespace cisqp::serve {

class AdmissionController {
 public:
  AdmissionController(std::size_t max_concurrent, std::size_t max_queue);

  /// RAII admission slot: releasing it (destruction) wakes the next waiter.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* owner) : owner_(owner) {}
    Ticket(Ticket&& other) noexcept : owner_(other.owner_) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

   private:
    void Release();
    AdmissionController* owner_ = nullptr;
  };

  /// Blocks until a slot frees (FIFO among waiters), or fails immediately
  /// with kResourceExhausted when the wait queue is already full. On
  /// success `queue_wait_us` (when non-null) receives the time spent
  /// queued.
  Result<Ticket> Admit(std::int64_t* queue_wait_us = nullptr);

  std::size_t running() const;
  std::size_t queued() const;
  std::uint64_t admitted() const noexcept {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  friend class Ticket;
  void ReleaseSlot();

  const std::size_t max_concurrent_;
  const std::size_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t running_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t next_ticket_ = 0;   ///< next sequence number to hand out
  std::uint64_t now_serving_ = 0;   ///< lowest not-yet-admitted sequence
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace cisqp::serve
