// Relation profiles (paper Def. 3.2) and their composition (paper Fig. 4).
//
// A profile `[Rπ, R⋈, Rσ]` captures the information content of a relation —
// base or computed: the attributes it carries, the join path used in its
// construction, and the attributes constrained by selections along the way.
// Profiles are what authorizations are checked against: shipping a relation
// releases exactly its profile (paper §4, Fig. 5).
#pragma once

#include <string>

#include "authz/join_path.hpp"
#include "catalog/catalog.hpp"
#include "common/idset.hpp"

namespace cisqp::authz {

/// `[Rπ, R⋈, Rσ]` with value semantics.
struct Profile {
  IdSet pi;        ///< Rπ — the schema (visible attributes)
  JoinPath join;   ///< R⋈ — the join path of the construction
  IdSet sigma;     ///< Rσ — attributes appearing in selection conditions

  /// Profile of base relation `rel`: `[{A1..An}, ∅, ∅]` (Def. 3.2).
  static Profile OfBaseRelation(const catalog::Catalog& cat,
                                catalog::RelationId rel);

  /// Fig. 4 row 1 — `π_X(Rl)`: pi becomes X, join and sigma carry over.
  static Profile Project(const Profile& input, IdSet x);

  /// Fig. 4 row 2 — `σ_X(Rl)`: sigma gains X, pi and join carry over.
  static Profile Select(const Profile& input, const IdSet& x);

  /// Fig. 4 row 3 — `Rl ⋈_j Rr`: componentwise union, join gains `j`.
  static Profile Join(const Profile& left, const Profile& right,
                      const JoinPath& j);

  /// `Rπ ∪ Rσ` — the attribute set an authorization must cover (Def. 3.3).
  IdSet VisibleAttributes() const { return IdSet::Union(pi, sigma); }

  /// "[{A, B}, {(C, D)}, {E}]" with bare attribute names.
  std::string ToString(const catalog::Catalog& cat) const;

  friend bool operator==(const Profile&, const Profile&) = default;
};

/// Renders an IdSet of attributes as "{A, B}" ("∅" when empty).
std::string AttributeSetToString(const catalog::Catalog& cat, const IdSet& attrs);

}  // namespace cisqp::authz
