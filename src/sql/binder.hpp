// Binder: resolves a parsed AST against a catalog into a plan::QuerySpec.
//
// Responsibilities: name resolution (bare and dotted attribute names),
// SELECT * expansion in FROM order, orientation of ON atoms (the new
// relation's attribute on the right), literal/column type checking, and
// scope checking (every name must come from the FROM clause).
#pragma once

#include "catalog/catalog.hpp"
#include "plan/query_spec.hpp"
#include "sql/ast.hpp"

namespace cisqp::sql {

/// Binds `ast` against `cat`.
Result<plan::QuerySpec> Bind(const catalog::Catalog& cat, const AstQuery& ast);

/// Parse + bind in one call.
Result<plan::QuerySpec> ParseAndBind(const catalog::Catalog& cat,
                                     std::string_view text);

}  // namespace cisqp::sql
