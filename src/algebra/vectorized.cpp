#include "algebra/vectorized.hpp"

#include <chrono>
#include <string>

namespace cisqp::algebra {
namespace {

/// The calling thread's kernel-counter sink (see KernelStatsScope).
thread_local KernelStats* active_kernel_stats = nullptr;

using storage::ColumnVector;
using storage::ColumnarTable;
using storage::SelectionVector;

SelectionVector Iota(std::size_t n) {
  SelectionVector ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  return ids;
}

/// Seed/combine for multi-column row hashes (order-sensitive).
std::size_t CombineCellHash(std::size_t seed, std::size_t cell_hash) noexcept {
  HashCombine(seed, cell_hash);
  return seed;
}
constexpr std::size_t kRowHashSeed = 0xcbf29ce484222325ull;

constexpr std::uint32_t kChainEnd = 0xffffffffu;

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Physical row ids of the view, in view order (the common all-rows case
/// avoids a per-access branch in the hot loops below).
SelectionVector ViewRows(const ColumnarBatch& b) {
  SelectionVector ids(b.row_count());
  for (std::size_t r = 0; r < ids.size(); ++r) ids[r] = b.physical_row(r);
  return ids;
}

/// Row-hash core over the row range [begin, end) of `ids`, writing into
/// preallocated output — the unit a parallel hash fans out in morsels.
/// Column-major like the full-range wrapper below. NULL cells hash as the
/// NULL class (Distinct semantics); when `valid` is given, rows with a NULL
/// in any hashed column are marked invalid instead (join-key semantics).
/// Each output element depends only on its own row, so any morsel tiling
/// produces the same vectors.
void HashRowsRange(const ColumnarBatch& batch,
                   const std::vector<std::size_t>& cols,
                   const SelectionVector& ids, std::vector<char>* valid,
                   std::vector<std::size_t>& hashes, std::size_t begin,
                   std::size_t end) {
  for (std::size_t r = begin; r < end; ++r) hashes[r] = kRowHashSeed;
  if (valid != nullptr) {
    for (std::size_t r = begin; r < end; ++r) (*valid)[r] = 1;
  }
  for (const std::size_t c : cols) {
    const storage::ColumnVector& col = batch.physical(c);
    for (std::size_t r = begin; r < end; ++r) {
      if (valid != nullptr && col.IsNull(ids[r])) {
        (*valid)[r] = 0;
        continue;
      }
      hashes[r] = CombineCellHash(hashes[r], col.HashAt(ids[r]));
    }
  }
}

/// Column-major row hashes over the view columns `cols` of `batch`, one per
/// entry of `ids`. Counts one `rows_hashed` per row — string cells pull
/// their hash from the dictionary cache, so a row hash is O(columns)
/// regardless of string lengths, and the partitioned join below reuses
/// these vectors instead of rehashing.
std::vector<std::size_t> HashRows(const ColumnarBatch& batch,
                                  const std::vector<std::size_t>& cols,
                                  const SelectionVector& ids,
                                  std::vector<char>* valid) {
  std::vector<std::size_t> hashes(ids.size());
  if (valid != nullptr) valid->resize(ids.size());
  HashRowsRange(batch, cols, ids, valid, hashes, 0, ids.size());
  if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
    ks->rows_hashed += ids.size();
  }
  return hashes;
}

template <typename T>
bool ApplyOp(CompareOp op, const T& a, const T& b) noexcept {
  switch (op) {
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a < b || a == b;  // NaN-faithful, like SqlLess
    case CompareOp::kGt: return b < a;
    case CompareOp::kGe: return b < a || a == b;
  }
  return false;
}

/// In-place selection narrowing: keeps ids where `keep(id)` holds.
template <typename Keep>
void Narrow(SelectionVector& ids, Keep keep) {
  std::size_t w = 0;
  for (const std::uint32_t id : ids) {
    if (keep(id)) ids[w++] = id;
  }
  ids.resize(w);
}

/// attr-vs-literal filter. Row-kernel semantics: NULL never passes any
/// operator; non-NULL cells of a type different from the literal's pass
/// only `<>`.
void FilterLiteral(const ColumnVector& col, CompareOp op,
                   const storage::Value& lit, SelectionVector& ids) {
  if (lit.is_null()) {
    ids.clear();
    return;
  }
  if (lit.type() != col.type()) {
    if (op == CompareOp::kNe) {
      Narrow(ids, [&](std::uint32_t id) { return !col.IsNull(id); });
    } else {
      ids.clear();
    }
    return;
  }
  switch (col.type()) {
    case catalog::ValueType::kInt64: {
      const std::int64_t v = lit.AsInt64();
      Narrow(ids, [&](std::uint32_t id) {
        return !col.IsNull(id) && ApplyOp(op, col.Int64At(id), v);
      });
      break;
    }
    case catalog::ValueType::kDouble: {
      const double v = lit.AsDouble();
      Narrow(ids, [&](std::uint32_t id) {
        return !col.IsNull(id) && ApplyOp(op, col.DoubleAt(id), v);
      });
      break;
    }
    case catalog::ValueType::kString: {
      // Evaluate the operator once per *distinct* value, then filter cells
      // by dictionary code.
      const std::string& v = lit.AsString();
      const auto& dict = col.dictionary();
      std::vector<char> pass(dict.size());
      for (std::size_t c = 0; c < dict.size(); ++c) {
        pass[c] = ApplyOp(op, dict[c], v) ? 1 : 0;
      }
      const std::size_t before = ids.size();
      Narrow(ids, [&](std::uint32_t id) {
        return !col.IsNull(id) && pass[col.CodeAt(id)] != 0;
      });
      if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
        ks->dict_filter_lookups += before;
        ks->dict_filter_hits += ids.size();
      }
      break;
    }
  }
}

/// attr-vs-attr filter with the same NULL / type-mismatch semantics.
void FilterColumns(const ColumnVector& lhs, CompareOp op,
                   const ColumnVector& rhs, SelectionVector& ids) {
  if (lhs.type() != rhs.type()) {
    if (op == CompareOp::kNe) {
      Narrow(ids, [&](std::uint32_t id) {
        return !lhs.IsNull(id) && !rhs.IsNull(id);
      });
    } else {
      ids.clear();
    }
    return;
  }
  switch (lhs.type()) {
    case catalog::ValueType::kInt64:
      Narrow(ids, [&](std::uint32_t id) {
        return !lhs.IsNull(id) && !rhs.IsNull(id) &&
               ApplyOp(op, lhs.Int64At(id), rhs.Int64At(id));
      });
      break;
    case catalog::ValueType::kDouble:
      Narrow(ids, [&](std::uint32_t id) {
        return !lhs.IsNull(id) && !rhs.IsNull(id) &&
               ApplyOp(op, lhs.DoubleAt(id), rhs.DoubleAt(id));
      });
      break;
    case catalog::ValueType::kString:
      Narrow(ids, [&](std::uint32_t id) {
        return !lhs.IsNull(id) && !rhs.IsNull(id) &&
               ApplyOp(op, lhs.StringAt(id), rhs.StringAt(id));
      });
      break;
  }
}

/// ctx.morsel_rows normalized: default applied, then rounded up to whole
/// 64-row null-bitmap words (the unit GatherFromParallel also requires, and
/// harmless everywhere else).
std::size_t MorselRows(const MorselContext& ctx) {
  const std::size_t m =
      ctx.morsel_rows == 0 ? kDefaultMorselRows : ctx.morsel_rows;
  return (m + 63) / 64 * 64;
}

std::size_t ChunkCount(std::size_t n, std::size_t grain) {
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// Runs the parallel sections of one kernel with per-worker stats sinks and
/// busy timers. Each chunk body executes under a KernelStatsScope bound to
/// its worker's cache-line-padded slot (active_kernel_stats is thread-local,
/// so a worker thread's filter counters land in its own slot); on
/// destruction the slots are merged into the sink that was active at
/// construction. Counters are integer sums, so the merged totals are
/// deterministic no matter which worker ran which morsel. With no active
/// sink the bodies run bare — profiling costs nothing when nobody profiles.
class ParallelRegion {
 public:
  explicit ParallelRegion(ThreadPool& pool)
      : sink_(active_kernel_stats), slots_(pool.thread_count()) {}

  ParallelRegion(const ParallelRegion&) = delete;
  ParallelRegion& operator=(const ParallelRegion&) = delete;

  template <typename Body>
  void Run(ThreadPool& pool, std::size_t n, std::size_t grain, Body body) {
    if (sink_ == nullptr) {
      pool.ParallelForChunks(n, grain, std::move(body));
      return;
    }
    morsels_ += ChunkCount(n, grain);
    pool.ParallelForChunks(
        n, grain, [&](std::size_t worker, std::size_t begin, std::size_t end) {
          const auto t0 = std::chrono::steady_clock::now();
          Slot& slot = slots_[worker].value;
          KernelStatsScope scope(&slot.stats);
          body(worker, begin, end);
          slot.busy_us += std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        });
  }

  ~ParallelRegion() {
    if (sink_ == nullptr) return;
    sink_->morsels += morsels_;
    if (sink_->worker_busy_us.size() < slots_.size()) {
      sink_->worker_busy_us.resize(slots_.size(), 0);
    }
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      sink_->MergeFrom(slots_[w].value.stats);
      sink_->worker_busy_us[w] += slots_[w].value.busy_us;
    }
  }

 private:
  struct Slot {
    KernelStats stats;
    std::int64_t busy_us = 0;
  };

  KernelStats* sink_;
  std::vector<PaddedSlot<Slot>> slots_;
  std::uint64_t morsels_ = 0;
};

/// HashRows fanned over `pool` in morsels of `grain` rows. Identical output
/// to HashRows — every element depends only on its own row.
std::vector<std::size_t> HashRowsParallel(
    const ColumnarBatch& batch, const std::vector<std::size_t>& cols,
    const SelectionVector& ids, std::vector<char>* valid, ThreadPool& pool,
    std::size_t grain, ParallelRegion& region) {
  std::vector<std::size_t> hashes(ids.size());
  if (valid != nullptr) valid->resize(ids.size());
  region.Run(pool, ids.size(), grain,
             [&](std::size_t, std::size_t begin, std::size_t end) {
               HashRowsRange(batch, cols, ids, valid, hashes, begin, end);
             });
  if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
    ks->rows_hashed += ids.size();
  }
  return hashes;
}

/// Radix fan-out when the context doesn't pin one: enough partitions to keep
/// `threads` workers busy through moderate skew, but never so many that an
/// average partition drops below ~64 rows.
std::size_t RadixBitsFor(std::size_t rows, std::size_t threads) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < threads * 4 && bits < 8) ++bits;
  while (bits > 1 && (rows >> bits) < 64) --bits;
  return bits;
}

/// Rows regrouped by the low `bits` bits of their hash. `pos` is
/// partition-major: partition p's rows are pos[start[p] .. start[p+1]),
/// each an index into the hashed range, in ascending order (the scatter
/// walks chunks in order within each partition) — the property the join and
/// distinct kernels rely on to reproduce sequential emit order. Low bits
/// partition because libstdc++'s std::hash<int64> is the identity: small
/// keys share all their high bits, which would collapse the fan-out to one
/// partition. The per-partition tables then consume the hash *above* the
/// partition bits, so bucket placement stays independent of the partition
/// split.
struct RadixPartitions {
  std::size_t bits = 0;
  std::vector<std::size_t> start;  ///< fanout()+1 offsets into pos
  SelectionVector pos;

  std::size_t fanout() const noexcept { return std::size_t{1} << bits; }
};

RadixPartitions PartitionByHash(const std::vector<std::size_t>& hashes,
                                const std::vector<char>* valid,
                                std::size_t bits, ThreadPool& pool,
                                std::size_t grain, ParallelRegion& region) {
  const std::size_t n = hashes.size();
  RadixPartitions parts;
  parts.bits = bits;
  const std::size_t fanout = parts.fanout();
  const std::size_t mask = fanout - 1;
  const std::size_t chunks = ChunkCount(n, grain);

  // Pass 1 — per-chunk histograms. Each chunk's row of counters is padded
  // out to whole cache lines so two workers never count into the same line.
  constexpr std::size_t kCountersPerLine = kCacheLineBytes / sizeof(std::size_t);
  const std::size_t stride =
      (fanout + kCountersPerLine - 1) / kCountersPerLine * kCountersPerLine;
  std::vector<std::size_t> hist(chunks * stride, 0);
  region.Run(pool, n, grain,
             [&](std::size_t, std::size_t begin, std::size_t end) {
               std::size_t* h = hist.data() + begin / grain * stride;
               for (std::size_t r = begin; r < end; ++r) {
                 if (valid != nullptr && (*valid)[r] == 0) continue;
                 ++h[hashes[r] & mask];
               }
             });

  // Sequential prefix sums turn the histograms into per-chunk write
  // cursors: chunk c of partition p writes after every chunk c' < c, so
  // each partition's rows come out in ascending row order.
  parts.start.assign(fanout + 1, 0);
  std::size_t total = 0;
  for (std::size_t p = 0; p < fanout; ++p) {
    parts.start[p] = total;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t count = hist[c * stride + p];
      hist[c * stride + p] = total;
      total += count;
    }
  }
  parts.start[fanout] = total;

  // Pass 2 — parallel scatter through the per-chunk cursors.
  parts.pos.resize(total);
  region.Run(pool, n, grain,
             [&](std::size_t, std::size_t begin, std::size_t end) {
               std::size_t* cursor = hist.data() + begin / grain * stride;
               for (std::size_t r = begin; r < end; ++r) {
                 if (valid != nullptr && (*valid)[r] == 0) continue;
                 parts.pos[cursor[hashes[r] & mask]++] =
                     static_cast<std::uint32_t>(r);
               }
             });
  return parts;
}

}  // namespace

void KernelStats::MergeFrom(const KernelStats& other) {
  hash_build_rows += other.hash_build_rows;
  hash_probe_rows += other.hash_probe_rows;
  hash_matches += other.hash_matches;
  dict_filter_lookups += other.dict_filter_lookups;
  dict_filter_hits += other.dict_filter_hits;
  rows_hashed += other.rows_hashed;
  morsels += other.morsels;
  partitions += other.partitions;
  if (worker_busy_us.size() < other.worker_busy_us.size()) {
    worker_busy_us.resize(other.worker_busy_us.size(), 0);
  }
  for (std::size_t w = 0; w < other.worker_busy_us.size(); ++w) {
    worker_busy_us[w] += other.worker_busy_us[w];
  }
}

KernelStatsScope::KernelStatsScope(KernelStats* stats) noexcept
    : previous_(active_kernel_stats) {
  active_kernel_stats = stats;
}

KernelStatsScope::~KernelStatsScope() { active_kernel_stats = previous_; }

KernelStats* KernelStatsScope::Active() noexcept { return active_kernel_stats; }

ColumnarBatch ColumnarBatch::FromTable(
    std::shared_ptr<const ColumnarTable> table) {
  ColumnarBatch b;
  b.col_map_.resize(table->column_count());
  for (std::size_t i = 0; i < b.col_map_.size(); ++i) b.col_map_[i] = i;
  b.source_ = std::move(table);
  return b;
}

std::vector<storage::Column> ColumnarBatch::Header() const {
  std::vector<storage::Column> header;
  header.reserve(col_map_.size());
  for (const std::size_t c : col_map_) header.push_back(source_->columns()[c]);
  return header;
}

std::optional<std::size_t> ColumnarBatch::ViewColumnIndex(
    catalog::AttributeId attribute) const {
  for (std::size_t c = 0; c < col_map_.size(); ++c) {
    if (column_at(c).attribute == attribute) return c;
  }
  return std::nullopt;
}

bool ColumnarBatch::identity() const noexcept {
  if (sel_ || col_map_.size() != source_->column_count()) return false;
  for (std::size_t i = 0; i < col_map_.size(); ++i) {
    if (col_map_[i] != i) return false;
  }
  return true;
}

std::shared_ptr<const ColumnarTable> ColumnarBatch::Materialize() const {
  if (identity()) return source_;
  const SelectionVector ids = sel_ ? *sel_ : Iota(source_->row_count());
  std::vector<ColumnVector> cols;
  cols.reserve(col_map_.size());
  for (std::size_t c = 0; c < col_map_.size(); ++c) {
    ColumnVector out(column_at(c).type);
    out.GatherFrom(physical(c), ids);
    cols.push_back(std::move(out));
  }
  return std::make_shared<ColumnarTable>(Header(), std::move(cols));
}

storage::Table ColumnarBatch::MaterializeRows() const {
  storage::Table out(Header());
  const std::size_t n = row_count();
  out.Reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t id = physical_row(r);
    storage::Row row;
    row.reserve(col_map_.size());
    for (std::size_t c = 0; c < col_map_.size(); ++c) {
      row.push_back(physical(c).ValueAt(id));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<ColumnarBatch> SelectBatch(const ColumnarBatch& input,
                                  const Predicate& predicate,
                                  const MorselContext& ctx) {
  // Resolve every conjunct against the view header before touching data, so
  // a malformed predicate fails regardless of row count.
  struct Resolved {
    std::size_t lhs = 0;
    const Comparison* cmp = nullptr;
    std::optional<std::size_t> rhs_col;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(predicate.conjuncts().size());
  for (const Comparison& c : predicate.conjuncts()) {
    Resolved r;
    const auto lhs = input.ViewColumnIndex(c.lhs);
    if (!lhs) {
      return InvalidArgumentError("predicate references attribute id " +
                                  std::to_string(c.lhs) +
                                  " missing from input");
    }
    r.lhs = *lhs;
    r.cmp = &c;
    if (c.rhs_is_attribute()) {
      const auto a = std::get<catalog::AttributeId>(c.rhs);
      const auto rhs = input.ViewColumnIndex(a);
      if (!rhs) {
        return InvalidArgumentError("predicate references attribute id " +
                                    std::to_string(a) + " missing from input");
      }
      r.rhs_col = *rhs;
    }
    resolved.push_back(r);
  }

  SelectionVector ids = input.sel_ ? *input.sel_ : Iota(input.source_->row_count());
  if (ctx.ShouldParallelize(ids.size())) {
    // Morsel-parallel σ: each morsel filters its contiguous id range through
    // the full conjunction independently (filters are row-local), and the
    // morsel-ordered concatenation below reproduces the sequential
    // narrowing's output order exactly.
    const std::size_t grain = MorselRows(ctx);
    const std::size_t chunks = ChunkCount(ids.size(), grain);
    std::vector<PaddedSlot<SelectionVector>> parts(chunks);
    {
      ParallelRegion region(*ctx.pool);
      region.Run(*ctx.pool, ids.size(), grain,
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   SelectionVector& out = parts[begin / grain].value;
                   out.assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                              ids.begin() + static_cast<std::ptrdiff_t>(end));
                   for (const Resolved& r : resolved) {
                     if (out.empty()) break;
                     if (r.rhs_col) {
                       FilterColumns(input.physical(r.lhs), r.cmp->op,
                                     input.physical(*r.rhs_col), out);
                     } else {
                       FilterLiteral(input.physical(r.lhs), r.cmp->op,
                                     std::get<storage::Value>(r.cmp->rhs), out);
                     }
                   }
                 });
    }
    SelectionVector merged;
    std::size_t total = 0;
    for (const PaddedSlot<SelectionVector>& p : parts) total += p.value.size();
    merged.reserve(total);
    for (const PaddedSlot<SelectionVector>& p : parts) {
      merged.insert(merged.end(), p.value.begin(), p.value.end());
    }
    ids = std::move(merged);
  } else {
    for (const Resolved& r : resolved) {
      if (ids.empty()) break;
      if (r.rhs_col) {
        FilterColumns(input.physical(r.lhs), r.cmp->op,
                      input.physical(*r.rhs_col), ids);
      } else {
        FilterLiteral(input.physical(r.lhs), r.cmp->op,
                      std::get<storage::Value>(r.cmp->rhs), ids);
      }
    }
  }
  ColumnarBatch out;
  out.source_ = input.source_;
  out.col_map_ = input.col_map_;
  out.sel_ = std::move(ids);
  return out;
}

Result<ColumnarBatch> ProjectBatch(const ColumnarBatch& input,
                                   const std::vector<catalog::AttributeId>& attrs,
                                   bool distinct, const MorselContext& ctx) {
  if (attrs.empty()) {
    return InvalidArgumentError("projection needs at least one attribute");
  }
  std::vector<std::size_t> col_map;
  col_map.reserve(attrs.size());
  for (const catalog::AttributeId a : attrs) {
    const auto c = input.ViewColumnIndex(a);
    if (!c) {
      return InvalidArgumentError("projection attribute id " +
                                  std::to_string(a) +
                                  " is not a column of the input");
    }
    col_map.push_back(input.col_map_[*c]);
  }
  ColumnarBatch out;
  out.source_ = input.source_;
  out.col_map_ = std::move(col_map);
  out.sel_ = input.sel_;
  if (distinct) return DistinctBatch(out, ctx);
  return out;
}

namespace {

/// Two-phase partitioned distinct: partition rows by hash (equal rows hash
/// equally — NULL class included — so duplicates never cross partitions),
/// dedup each partition independently with the same open-addressing probe
/// as the sequential kernel, then compact the kept flags in row order.
/// Keeping the *first* occurrence needs only ascending row order within a
/// partition, which PartitionByHash guarantees. Returns the kept physical
/// ids in view order — exactly the sequential kernel's output.
SelectionVector DistinctKeptParallel(const ColumnarBatch& input,
                                     const SelectionVector& ids,
                                     const std::vector<std::size_t>& view_cols,
                                     const MorselContext& ctx) {
  const std::size_t n = ids.size();
  const std::size_t grain = MorselRows(ctx);
  ThreadPool& pool = *ctx.pool;
  std::vector<char> keep(n, 0);
  std::vector<std::size_t> hashes;
  std::size_t fanout = 0;
  {
    ParallelRegion region(pool);
    hashes = HashRowsParallel(input, view_cols, ids, /*valid=*/nullptr, pool,
                              grain, region);
    const std::size_t bits = ctx.radix_bits != 0
                                 ? ctx.radix_bits
                                 : RadixBitsFor(n, pool.thread_count());
    const RadixPartitions parts =
        PartitionByHash(hashes, /*valid=*/nullptr, bits, pool, grain, region);
    fanout = parts.fanout();
    region.Run(
        pool, fanout, /*grain=*/1,
        [&](std::size_t, std::size_t pb, std::size_t pe) {
          for (std::size_t p = pb; p < pe; ++p) {
            const std::size_t sp = parts.start[p];
            const std::size_t ep = parts.start[p + 1];
            if (sp == ep) continue;
            const std::size_t cap = NextPow2((ep - sp) * 2 + 1);
            const std::size_t mask = cap - 1;
            std::vector<std::uint32_t> slot_row(cap, kChainEnd);
            for (std::size_t j = sp; j < ep; ++j) {
              const std::uint32_t r = parts.pos[j];
              const std::size_t h = hashes[r];
              std::size_t slot = (h >> parts.bits) & mask;
              bool duplicate = false;
              while (slot_row[slot] != kChainEnd) {
                const std::uint32_t o = slot_row[slot];
                if (hashes[o] == h) {
                  bool equal = true;
                  for (std::size_t c = 0; c < view_cols.size() && equal; ++c) {
                    const ColumnVector& col = input.physical(view_cols[c]);
                    equal = col.CellsEqual(ids[r], col, ids[o]);
                  }
                  if (equal) {
                    duplicate = true;
                    break;
                  }
                }
                slot = (slot + 1) & mask;
              }
              if (!duplicate) {
                slot_row[slot] = r;
                // Rows of different partitions are distinct bytes of `keep`,
                // so concurrent writes never touch the same location.
                keep[r] = 1;
              }
            }
          }
        });
  }
  if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
    ks->partitions += fanout;
  }
  SelectionVector kept;
  kept.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    if (keep[r] != 0) kept.push_back(ids[r]);
  }
  return kept;
}

}  // namespace

ColumnarBatch DistinctBatch(const ColumnarBatch& input,
                            const MorselContext& ctx) {
  const std::size_t n = input.row_count();
  const std::size_t width = input.width();
  const SelectionVector ids = ViewRows(input);
  std::vector<std::size_t> view_cols(width);
  for (std::size_t c = 0; c < width; ++c) view_cols[c] = c;

  if (ctx.ShouldParallelize(n)) {
    ColumnarBatch out;
    out.source_ = input.source_;
    out.col_map_ = input.col_map_;
    out.sel_ = DistinctKeptParallel(input, ids, view_cols, ctx);
    return out;
  }

  const std::vector<std::size_t> hashes =
      HashRows(input, view_cols, ids, /*valid=*/nullptr);

  // Open-addressing set of kept rows: flat arrays, no per-bucket allocation.
  const std::size_t cap = NextPow2(n * 2 + 1);
  const std::size_t mask = cap - 1;
  std::vector<std::uint32_t> slot_id(cap, kChainEnd);
  std::vector<std::size_t> slot_hash(cap);
  SelectionVector kept;
  kept.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t id = ids[r];
    const std::size_t h = hashes[r];
    std::size_t slot = h & mask;
    bool duplicate = false;
    while (slot_id[slot] != kChainEnd) {
      if (slot_hash[slot] == h) {
        bool equal = true;
        for (std::size_t c = 0; c < width && equal; ++c) {
          const ColumnVector& col = input.physical(c);
          equal = col.CellsEqual(id, col, slot_id[slot]);
        }
        if (equal) {
          duplicate = true;
          break;
        }
      }
      slot = (slot + 1) & mask;
    }
    if (!duplicate) {
      slot_id[slot] = id;
      slot_hash[slot] = h;
      kept.push_back(id);
    }
  }
  ColumnarBatch out;
  out.source_ = input.source_;
  out.col_map_ = input.col_map_;
  out.sel_ = std::move(kept);
  return out;
}

namespace {

/// Radix-partitioned parallel variant of HashProbe (DESIGN.md §14).
/// Emit-order equivalence with the sequential kernel: equal join keys have
/// equal full hashes, so all candidate build rows for a probe row live in
/// one partition; reverse-threaded per-partition chains yield candidates in
/// ascending build-row order (the sequential insertion order); and probe
/// morsels are concatenated in morsel order, so probe rows ascend globally.
/// Probe-major emit order is therefore reproduced pair for pair.
void HashProbePartitioned(const ColumnarBatch& build,
                          const std::vector<std::size_t>& bidx,
                          const ColumnarBatch& probe,
                          const std::vector<std::size_t>& pidx,
                          const MorselContext& ctx, SelectionVector& build_ids,
                          SelectionVector& probe_ids) {
  const std::size_t bn = build.row_count();
  const std::size_t keys = bidx.size();
  ThreadPool& pool = *ctx.pool;
  const std::size_t grain = MorselRows(ctx);

  std::vector<char> pvalid;
  std::size_t fanout = 0;
  std::size_t pairs_emitted = 0;
  {
    ParallelRegion region(pool);
    const SelectionVector bids = ViewRows(build);
    std::vector<char> bvalid;
    const std::vector<std::size_t> bhash =
        HashRowsParallel(build, bidx, bids, &bvalid, pool, grain, region);

    const std::size_t bits = ctx.radix_bits != 0
                                 ? ctx.radix_bits
                                 : RadixBitsFor(bn, pool.thread_count());
    const RadixPartitions parts =
        PartitionByHash(bhash, &bvalid, bits, pool, grain, region);
    fanout = parts.fanout();
    const std::size_t part_mask = fanout - 1;

    // Per-partition bucket-chained tables, built concurrently (each worker
    // owns whole partitions). Entries index the partition-major `pos`
    // array; chains are threaded in reverse so traversal yields ascending
    // positions, i.e. ascending build rows.
    std::vector<std::uint32_t> next(parts.pos.size(), kChainEnd);
    std::vector<std::vector<std::uint32_t>> heads(fanout);
    std::vector<std::size_t> bucket_mask(fanout, 0);
    region.Run(pool, fanout, /*grain=*/1,
               [&](std::size_t, std::size_t pb, std::size_t pe) {
                 for (std::size_t p = pb; p < pe; ++p) {
                   const std::size_t sp = parts.start[p];
                   const std::size_t ep = parts.start[p + 1];
                   const std::size_t cap = NextPow2((ep - sp) * 2 + 1);
                   const std::size_t mask = cap - 1;
                   heads[p].assign(cap, kChainEnd);
                   bucket_mask[p] = mask;
                   for (std::size_t j = ep; j-- > sp;) {
                     const std::size_t slot =
                         (bhash[parts.pos[j]] >> parts.bits) & mask;
                     next[j] = heads[p][slot];
                     heads[p][slot] = static_cast<std::uint32_t>(j);
                   }
                 }
               });

    const SelectionVector pids = ViewRows(probe);
    const std::vector<std::size_t> phash =
        HashRowsParallel(probe, pidx, pids, &pvalid, pool, grain, region);

    // Morsel-parallel probe into per-morsel pair lists.
    struct PairList {
      SelectionVector build;
      SelectionVector probe;
    };
    const std::size_t chunks = ChunkCount(pids.size(), grain);
    std::vector<PaddedSlot<PairList>> out(chunks == 0 ? 1 : chunks);
    region.Run(
        pool, pids.size(), grain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          PairList& pairs = out[begin / grain].value;
          for (std::size_t r = begin; r < end; ++r) {
            if (!pvalid[r]) continue;
            const std::size_t h = phash[r];
            const std::uint32_t id = pids[r];
            const std::size_t p = h & part_mask;
            for (std::uint32_t e = heads[p][(h >> parts.bits) & bucket_mask[p]];
                 e != kChainEnd; e = next[e]) {
              const std::uint32_t br = parts.pos[e];
              if (bhash[br] != h) continue;
              bool equal = true;
              for (std::size_t k = 0; k < keys && equal; ++k) {
                equal = build.physical(bidx[k]).CellsEqual(
                    bids[br], probe.physical(pidx[k]), id);
              }
              if (equal) {
                pairs.build.push_back(bids[br]);
                pairs.probe.push_back(id);
              }
            }
          }
        });

    // Morsel-ordered reduce: deterministic concatenation regardless of
    // which worker probed which morsel.
    for (std::size_t c = 0; c < chunks; ++c) {
      pairs_emitted += out[c].value.build.size();
    }
    build_ids.reserve(build_ids.size() + pairs_emitted);
    probe_ids.reserve(probe_ids.size() + pairs_emitted);
    for (std::size_t c = 0; c < chunks; ++c) {
      const PairList& pairs = out[c].value;
      build_ids.insert(build_ids.end(), pairs.build.begin(), pairs.build.end());
      probe_ids.insert(probe_ids.end(), pairs.probe.begin(), pairs.probe.end());
    }
  }

  if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
    ks->hash_build_rows += bn;
    for (const char v : pvalid) ks->hash_probe_rows += v != 0 ? 1 : 0;
    ks->hash_matches += probe_ids.size();
    ks->partitions += fanout;
  }
}

/// Shared core of the two join kernels: hashes the build side's key columns
/// (skipping NULL keys), probes in order, and returns physical-row gather
/// lists for both inputs, in probe-major emit order. Parallel contexts take
/// the radix-partitioned path above; its output is byte-identical.
void HashProbe(const ColumnarBatch& build, const std::vector<std::size_t>& bidx,
               const ColumnarBatch& probe, const std::vector<std::size_t>& pidx,
               SelectionVector& build_ids, SelectionVector& probe_ids,
               const MorselContext& ctx) {
  if (ctx.ShouldParallelize(build.row_count() + probe.row_count())) {
    HashProbePartitioned(build, bidx, probe, pidx, ctx, build_ids, probe_ids);
    return;
  }
  const std::size_t bn = build.row_count();
  const std::size_t keys = bidx.size();
  const SelectionVector bids = ViewRows(build);
  std::vector<char> bvalid;
  const std::vector<std::size_t> bhash = HashRows(build, bidx, bids, &bvalid);

  // Bucket-chained hash table over flat arrays: `head` per bucket, `next`
  // per build row. Chains are threaded in reverse so traversal yields build
  // rows in insertion order — the row kernel's emit order.
  const std::size_t cap = NextPow2(bn * 2 + 1);
  const std::size_t mask = cap - 1;
  std::vector<std::uint32_t> head(cap, kChainEnd);
  std::vector<std::uint32_t> next(bn, kChainEnd);
  for (std::size_t r = bn; r-- > 0;) {
    if (!bvalid[r]) continue;
    const std::size_t slot = bhash[r] & mask;
    next[r] = head[slot];
    head[slot] = static_cast<std::uint32_t>(r);
  }

  const SelectionVector pids = ViewRows(probe);
  std::vector<char> pvalid;
  const std::vector<std::size_t> phash = HashRows(probe, pidx, pids, &pvalid);
  for (std::size_t r = 0; r < pids.size(); ++r) {
    if (!pvalid[r]) continue;
    const std::size_t h = phash[r];
    const std::uint32_t id = pids[r];
    for (std::uint32_t e = head[h & mask]; e != kChainEnd; e = next[e]) {
      if (bhash[e] != h) continue;
      bool equal = true;
      for (std::size_t k = 0; k < keys && equal; ++k) {
        equal = build.physical(bidx[k]).CellsEqual(
            bids[e], probe.physical(pidx[k]), id);
      }
      if (equal) {
        build_ids.push_back(bids[e]);
        probe_ids.push_back(id);
      }
    }
  }
  if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
    ks->hash_build_rows += bn;
    for (const char v : pvalid) ks->hash_probe_rows += v != 0 ? 1 : 0;
    ks->hash_matches += probe_ids.size();
  }
}

/// Gathers one output column per (batch view column, gather list) pair.
/// Parallel contexts fan each column's gather out in morsels (the output
/// stays bit-identical — see GatherFromParallel).
void GatherColumns(const ColumnarBatch& batch, const SelectionVector& ids,
                   const std::vector<std::size_t>& view_cols,
                   const MorselContext& ctx, std::vector<ColumnVector>& out) {
  const bool parallel = ctx.ShouldParallelize(ids.size());
  const std::size_t grain = parallel ? MorselRows(ctx) : 0;
  for (const std::size_t c : view_cols) {
    ColumnVector col(batch.column_at(c).type);
    if (parallel) {
      col.GatherFromParallel(batch.physical(c), ids, *ctx.pool, grain);
    } else {
      col.GatherFrom(batch.physical(c), ids);
    }
    out.push_back(std::move(col));
  }
  if (parallel) {
    if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
      ks->morsels += view_cols.size() * ChunkCount(ids.size(), grain);
    }
  }
}

std::vector<std::size_t> AllViewColumns(const ColumnarBatch& b) {
  std::vector<std::size_t> cols(b.width());
  for (std::size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  return cols;
}

}  // namespace

Result<ColumnarBatch> JoinBatches(const ColumnarBatch& left,
                                  const ColumnarBatch& right,
                                  const std::vector<EquiJoinAtom>& atoms,
                                  const MorselContext& ctx) {
  if (atoms.empty()) {
    return InvalidArgumentError("equi-join needs at least one atom");
  }
  std::vector<std::size_t> lidx;
  std::vector<std::size_t> ridx;
  for (const EquiJoinAtom& atom : atoms) {
    const auto li = left.ViewColumnIndex(atom.left);
    const auto ri = right.ViewColumnIndex(atom.right);
    if (!li || !ri) {
      return InvalidArgumentError(
          "join atom references attributes missing from operands");
    }
    lidx.push_back(*li);
    ridx.push_back(*ri);
  }

  // Build on the smaller side, probe with the larger (row-kernel heuristic;
  // keeping it identical pins the output row order).
  const bool build_left = left.row_count() <= right.row_count();
  SelectionVector lids;
  SelectionVector rids;
  if (build_left) {
    HashProbe(left, lidx, right, ridx, lids, rids, ctx);
  } else {
    HashProbe(right, ridx, left, lidx, rids, lids, ctx);
  }

  std::vector<storage::Column> header = left.Header();
  const std::vector<storage::Column> right_header = right.Header();
  header.insert(header.end(), right_header.begin(), right_header.end());
  std::vector<ColumnVector> cols;
  cols.reserve(header.size());
  GatherColumns(left, lids, AllViewColumns(left), ctx, cols);
  GatherColumns(right, rids, AllViewColumns(right), ctx, cols);
  return ColumnarBatch::FromTable(
      std::make_shared<ColumnarTable>(std::move(header), std::move(cols)));
}

Result<ColumnarBatch> NaturalJoinBatches(const ColumnarBatch& left,
                                         const ColumnarBatch& right,
                                         const MorselContext& ctx) {
  std::vector<std::size_t> lidx;
  std::vector<std::size_t> ridx;
  std::vector<std::size_t> right_extra;  ///< right view cols not shared
  for (std::size_t rc = 0; rc < right.width(); ++rc) {
    const auto li = left.ViewColumnIndex(right.column_at(rc).attribute);
    if (li) {
      lidx.push_back(*li);
      ridx.push_back(rc);
    } else {
      right_extra.push_back(rc);
    }
  }
  if (lidx.empty()) {
    return InvalidArgumentError(
        "natural join requires at least one shared attribute");
  }

  // Build on the right, probe the left in order (row-kernel output order).
  SelectionVector rids;
  SelectionVector lids;
  HashProbe(right, ridx, left, lidx, rids, lids, ctx);

  std::vector<storage::Column> header = left.Header();
  for (const std::size_t rc : right_extra) header.push_back(right.column_at(rc));
  std::vector<ColumnVector> cols;
  cols.reserve(header.size());
  GatherColumns(left, lids, AllViewColumns(left), ctx, cols);
  GatherColumns(right, rids, right_extra, ctx, cols);
  return ColumnarBatch::FromTable(
      std::make_shared<ColumnarTable>(std::move(header), std::move(cols)));
}

}  // namespace cisqp::algebra
