#include "plan/stats.hpp"

#include <unordered_set>

namespace cisqp::plan {

RelationStats StatsCatalog::FromTable(const storage::Table& table) {
  RelationStats stats;
  stats.rows = static_cast<double>(table.row_count());
  for (std::size_t c = 0; c < table.column_count(); ++c) {
    std::unordered_set<std::size_t> hashes;
    hashes.reserve(table.row_count());
    for (const storage::Row& row : table.rows()) {
      hashes.insert(row[c].Hash());
    }
    stats.distinct[table.columns()[c].attribute] =
        static_cast<double>(hashes.size());
  }
  return stats;
}

}  // namespace cisqp::plan
