// Authorizations (paper Def. 3.1) and the authorized-view test (Def. 3.3).
//
// An authorization `[Attributes, JoinPath] → Server` states that `Server`
// may view the listed attributes for tuples satisfying the join path. The
// policy is closed: a release is allowed only when some authorization covers
// it. `AuthorizationSet` stores one federation's policy, indexed per server
// and per join path so the planner's hot `CanView` probe is an exact path
// lookup followed by subset tests.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "authz/policy.hpp"
#include "authz/profile.hpp"

namespace cisqp::authz {

/// One rule `[Attributes, JoinPath] → Server`.
struct Authorization {
  IdSet attributes;
  JoinPath path;
  catalog::ServerId server = catalog::kInvalidId;

  /// Def. 3.3 for this single rule: `profile.π ∪ profile.σ ⊆ attributes`
  /// and `profile.⋈ = path`.
  bool Covers(const Profile& profile) const {
    return profile.join == path &&
           profile.VisibleAttributes().IsSubsetOf(attributes);
  }

  /// "[{A, B}, {(C, D)}] -> S" with catalog names.
  std::string ToString(const catalog::Catalog& cat) const;

  friend bool operator==(const Authorization&, const Authorization&) = default;
};

/// A federation's closed policy: the set of authorizations of all servers.
class AuthorizationSet : public Policy {
 public:
  AuthorizationSet() = default;

  /// Adds a rule. Validates that the rule is well formed per Def. 3.1:
  /// the join path must mention (at least) every relation that owns an
  /// authorized attribute when it spans several relations, and attributes of
  /// several relations require a non-empty path. Duplicate rules (same
  /// server, attributes, path) are rejected with kAlreadyExists.
  Status Add(const catalog::Catalog& cat, Authorization auth);

  /// Convenience: builds the rule from names. `attribute_names` are bare or
  /// dotted attribute names; `path_pairs` are (left, right) attribute name
  /// pairs; `server_name` must be registered.
  Status Add(const catalog::Catalog& cat, std::string_view server_name,
             const std::vector<std::string>& attribute_names,
             const std::vector<std::pair<std::string, std::string>>& path_pairs);

  /// Removes exactly `auth` (same server, attributes, path). kNotFound when
  /// no such rule is present.
  Status Remove(const catalog::Catalog& cat, const Authorization& auth);

  /// Def. 3.3: true iff some authorization of `server` covers `profile`.
  bool CanView(const Profile& profile,
               catalog::ServerId server) const override;

  /// Def. 3.3 with evidence: the covering grant on allow; on deny, whether
  /// the failure was the join-path equality or the attribute coverage, and
  /// in the latter case the closest rule's uncovered attributes.
  CanViewExplanation ExplainCanView(const Profile& profile,
                                    catalog::ServerId server) const override;

  /// Number of rules across all servers.
  std::size_t size() const noexcept { return total_; }

  /// All rules granted to `server`, in insertion order.
  std::vector<Authorization> ForServer(catalog::ServerId server) const;

  /// All rules, grouped by server id, insertion order within a server.
  std::vector<Authorization> All() const;

  /// True iff `auth` (exact attributes+path+server) is present.
  bool Contains(const Authorization& auth) const;

  /// Drops rules subsumed by another rule of the same server with the same
  /// path and a superset of attributes. Returns the number removed.
  std::size_t Minimize();

  /// Minimize() plus a deterministic order: within every (server, path)
  /// bucket the surviving grants are sorted. Two equivalent policies — e.g.
  /// an incrementally maintained closure and a from-scratch rechase, whose
  /// raw rule orders differ — canonicalize to identical sets, so
  /// order-sensitive consumers (ExplainCanView's first-wins tie among
  /// incomparable grants) answer identically over either.
  void Canonicalize();

  /// Multi-line policy dump, one rule per line.
  std::string ToString(const catalog::Catalog& cat) const;

 private:
  // server -> join path -> attribute sets granted under that exact path.
  using PathIndex = std::map<JoinPath, std::vector<IdSet>>;
  std::vector<PathIndex> by_server_;
  std::size_t total_ = 0;
};

}  // namespace cisqp::authz
