// ThreadPool: the library's shared worker-pool substrate.
//
// A fixed-size pool of detached workers consuming a FIFO task queue. Two
// entry points: `Submit` hands one task to the pool and returns a future;
// `ParallelFor` fans an index range across the workers and blocks until
// every index ran. The calling thread always participates in `ParallelFor`,
// so a pool built for N-way parallelism spawns N-1 workers and `threads=1`
// spawns none at all — every task then runs inline on the caller, byte-for-
// byte reproducing sequential execution (the determinism contract the chase
// and the plan search rely on; see DESIGN.md §9).
//
// Determinism is the caller's half of the contract: tasks write results
// into per-index slots (never append to shared containers) and the caller
// reduces the slots in index order after `ParallelFor` returns. The pool
// guarantees only that all indices ran; it promises nothing about order.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace cisqp {

/// One cache line, the unit of false sharing the padded slot types guard
/// against.
inline constexpr std::size_t kCacheLineBytes = 64;

/// A cache-line-aligned (and therefore cache-line-padded) value slot. Used
/// for per-worker accumulators: adjacent slots written by different workers
/// never share a line, so concurrent updates don't ping-pong the cache.
template <typename T>
struct alignas(kCacheLineBytes) PaddedSlot {
  T value{};
};

class ThreadPool {
 public:
  /// `threads` is the target parallelism including the calling thread:
  /// `threads-1` workers are spawned. 0 means hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism this pool was built for (workers + the participating
  /// caller); at least 1.
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// `std::thread::hardware_concurrency()`, clamped to at least 1.
  static std::size_t HardwareConcurrency() noexcept;

  /// Process-wide count of ThreadPool constructions, ever. Regression guard
  /// for paths that must reuse a shared pool instead of respawning one per
  /// call (the executor's SharedQueryPool; see serving_test).
  static std::uint64_t constructed_count() noexcept;

  /// Runs `fn` on a worker and returns its future. With no workers the task
  /// runs inline before Submit returns (still observable via the future).
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
    } else {
      Enqueue([task] { (*task)(); });
    }
    return future;
  }

  /// Invokes `fn(i)` for every i in [0, n), distributing indices across the
  /// workers and the calling thread; returns when all n invocations
  /// finished. An exception thrown by any invocation is rethrown on the
  /// caller (remaining indices still run). With no workers (or n == 1) the
  /// loop runs inline in index order.
  template <typename F>
  void ParallelFor(std::size_t n, F fn) {
    ParallelFor(n, /*grain=*/1, std::move(fn));
  }

  /// Grain-size-aware variant: indices are dispensed in contiguous chunks of
  /// up to `grain` so tiny per-index bodies don't pay one atomic fetch per
  /// index. A range that fits a single chunk runs inline on the caller — no
  /// dispatch at all.
  template <typename F>
  void ParallelFor(std::size_t n, std::size_t grain, F fn) {
    ParallelForChunks(n, grain,
                      [&fn](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) fn(i);
                      });
  }

  /// The chunked core: invokes `fn(worker, begin, end)` over contiguous
  /// chunks [begin, end) of [0, n), each at most `grain` long, claimed from
  /// an atomic dispenser. `worker` is a dense id in [0, thread_count()) —
  /// 0 is the participating caller — stable for the whole call, so callers
  /// can accumulate into per-worker `PaddedSlot`s without synchronization.
  /// Inline execution (no workers, or a single chunk) visits chunks in
  /// ascending order on the caller as worker 0, reproducing the sequential
  /// loop exactly. Exceptions park in per-worker padded slots (no shared
  /// error mutex to contend or false-share) and the first, in worker order,
  /// is rethrown after every chunk ran.
  template <typename F>
  void ParallelForChunks(std::size_t n, std::size_t grain, F fn) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t chunks = (n + grain - 1) / grain;
    if (workers_.empty() || chunks == 1) {
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * grain;
        fn(std::size_t{0}, begin, std::min(n, begin + grain));
      }
      return;
    }
    std::atomic<std::size_t> next{0};
    // One helper per worker, capped by the chunk count; the caller drains
    // alongside them, so small ranges never pay for idle helpers.
    const std::size_t helpers = std::min(workers_.size(), chunks - 1);
    std::vector<PaddedSlot<std::exception_ptr>> errors(helpers + 1);
    auto drain = [&](std::size_t worker) {
      for (;;) {
        const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) return;
        const std::size_t begin = c * grain;
        try {
          fn(worker, begin, std::min(n, begin + grain));
        } catch (...) {
          if (!errors[worker].value) {
            errors[worker].value = std::current_exception();
          }
        }
      }
    };
    Latch done(helpers);
    for (std::size_t h = 0; h < helpers; ++h) {
      Enqueue([&, h] {
        drain(h + 1);
        done.CountDown();
      });
    }
    drain(0);
    done.Wait();
    for (const PaddedSlot<std::exception_ptr>& slot : errors) {
      if (slot.value) std::rethrow_exception(slot.value);
    }
  }

 private:
  /// Blocks until `count` CountDown calls happened (std::latch is C++20 but
  /// kept out of some standard libraries this builds against).
  class Latch {
   public:
    explicit Latch(std::size_t count) : remaining_(count) {}
    void CountDown() {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_.notify_all();
    }
    void Wait() {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return remaining_ == 0; });
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t remaining_;
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace cisqp
