// Tests for the federation DSL: parsing, validation errors, round-tripping,
// and equivalence with the programmatic medical scenario.
#include <gtest/gtest.h>

#include "dsl/federation_dsl.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "plan/builder.hpp"
#include "test_util.hpp"

namespace cisqp::dsl {
namespace {

constexpr std::string_view kMedicalDsl = R"(
# the paper's medical federation (Figs. 1 and 3)
server S_I;
server S_H;
server S_N;
server S_D;

relation Insurance    @ S_I (Holder int key, Plan string);
relation Hospital     @ S_H (Patient int key, Disease string, Physician string);
relation Nat_registry @ S_N (Citizen int key, HealthAid string);
relation Disease_list @ S_D (Illness string key, Treatment string);

joinable Holder = Patient;
joinable Holder = Citizen;
joinable Patient = Citizen;
joinable Disease = Illness;

grant Holder, Plan to S_I;                                              # 1
grant Holder, Plan, Patient, Physician on (Holder, Patient) to S_I;    # 2
grant Holder, Plan, Treatment
  on (Holder, Patient), (Disease, Illness) to S_I;                     # 3
grant Patient, Disease, Physician to S_H;                              # 4
grant Patient, Disease, Physician, Holder, Plan
  on (Patient, Holder) to S_H;                                         # 5
grant Patient, Disease, Physician, Citizen, HealthAid
  on (Patient, Citizen) to S_H;                                        # 6
grant Patient, Disease, Physician, Holder, Plan, Citizen, HealthAid
  on (Patient, Citizen), (Citizen, Holder) to S_H;                     # 7
grant Citizen, HealthAid to S_N;                                       # 8
grant Holder, Plan to S_N;                                             # 9
grant Patient, Disease to S_N;                                         # 10
grant Citizen, HealthAid, Patient, Disease on (Citizen, Patient) to S_N;   # 11
grant Citizen, HealthAid, Holder, Plan on (Citizen, Holder) to S_N;        # 12
grant Patient, Disease, Holder, Plan on (Patient, Holder) to S_N;          # 13
grant Citizen, HealthAid, Patient, Disease, Holder, Plan
  on (Citizen, Patient), (Citizen, Holder) to S_N;                     # 14
grant Illness, Treatment to S_D;                                       # 15
)";

TEST(DslTest, ParsesTheMedicalFederation) {
  ASSERT_OK_AND_ASSIGN(ParsedFederation fed, ParseFederation(kMedicalDsl));
  EXPECT_EQ(fed.catalog.server_count(), 4u);
  EXPECT_EQ(fed.catalog.relation_count(), 4u);
  EXPECT_EQ(fed.catalog.join_edges().size(), 4u);
  EXPECT_EQ(fed.authorizations.size(), 15u);
  EXPECT_EQ(fed.denials.size(), 0u);
  // The DSL federation is schema-identical to the programmatic one.
  const catalog::Catalog reference = workload::MedicalScenario::BuildCatalog();
  EXPECT_EQ(fed.catalog.DebugString(), reference.DebugString());
}

TEST(DslTest, DslPolicyBehavesLikeTheProgrammaticOne) {
  ASSERT_OK_AND_ASSIGN(ParsedFederation fed, ParseFederation(kMedicalDsl));
  // The Fig. 7 planning result is identical under the DSL-built policy.
  auto spec = sql::ParseAndBind(fed.catalog, workload::MedicalScenario::kPaperQuery);
  ASSERT_OK(spec.status());
  auto plan = plan::PlanBuilder(fed.catalog).Build(*spec);
  ASSERT_OK(plan.status());
  planner::SafePlanner planner(fed.catalog, fed.authorizations);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, planner.Plan(*plan));
  EXPECT_EQ(sp.assignment.Of(1).ToString(fed.catalog), "[S_H, S_N]");
  EXPECT_EQ(sp.assignment.Of(2).ToString(fed.catalog), "[S_N, NULL]");
}

TEST(DslTest, ParsesDenials) {
  ASSERT_OK_AND_ASSIGN(ParsedFederation fed, ParseFederation(R"(
    server s0; server s1;
    relation L @ s0 (LK int key, LV int);
    relation R @ s1 (RK int key);
    joinable LK = RK;
    deny LV, RK to s1;
    deny LK on (LK, RK) to s1;
  )"));
  EXPECT_EQ(fed.denials.size(), 2u);
  EXPECT_EQ(fed.authorizations.size(), 0u);
  const auto s1 = fed.catalog.FindServer("s1").value();
  authz::Profile assoc;
  assoc.pi = cisqp::testing::Attrs(fed.catalog, {"LV", "RK"});
  EXPECT_FALSE(fed.denials.CanView(assoc, s1));
}

TEST(DslTest, RoundTripIsStable) {
  ASSERT_OK_AND_ASSIGN(ParsedFederation fed, ParseFederation(kMedicalDsl));
  const std::string once =
      SerializeFederation(fed.catalog, &fed.authorizations, &fed.denials);
  ASSERT_OK_AND_ASSIGN(ParsedFederation fed2, ParseFederation(once));
  const std::string twice =
      SerializeFederation(fed2.catalog, &fed2.authorizations, &fed2.denials);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(fed2.authorizations.size(), fed.authorizations.size());
}

TEST(DslTest, SerializeOmitsNullParts) {
  ASSERT_OK_AND_ASSIGN(ParsedFederation fed, ParseFederation(kMedicalDsl));
  const std::string schema_only = SerializeFederation(fed.catalog, nullptr, nullptr);
  EXPECT_EQ(schema_only.find("grant"), std::string::npos);
  EXPECT_NE(schema_only.find("relation Insurance"), std::string::npos);
}

TEST(DslTest, SyntaxErrorsCarryLineNumbers) {
  const auto bad = ParseFederation("server a;\nrelation R ! x;");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(DslTest, ParserErrorCases) {
  EXPECT_FALSE(ParseFederation("bogus x;").ok());
  EXPECT_FALSE(ParseFederation("server s").ok());  // missing ';'
  EXPECT_FALSE(ParseFederation("relation R @ nowhere (A int);").ok());
  EXPECT_FALSE(ParseFederation("server s; relation R @ s (A blob);").ok());
  EXPECT_FALSE(ParseFederation("server s; relation R @ s (A int); joinable A = A;").ok());
  EXPECT_FALSE(ParseFederation("server s; relation R @ s (A int); grant to s;").ok());
  EXPECT_FALSE(ParseFederation("server s; relation R @ s (A int); grant A;").ok());
  EXPECT_FALSE(ParseFederation("server s; relation R @ s (A int); grant A on (A) to s;").ok());
  // Duplicate names propagate the catalog error.
  EXPECT_EQ(ParseFederation("server s; server s;").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DslTest, CommentsAndCaseInsensitiveKeywords) {
  ASSERT_OK_AND_ASSIGN(ParsedFederation fed, ParseFederation(R"(
    # leading comment
    SERVER s0;   # trailing comment
    Relation T @ s0 (A INT KEY, B STRING);
    GRANT A, B TO s0;
  )"));
  EXPECT_EQ(fed.catalog.server_count(), 1u);
  EXPECT_EQ(fed.authorizations.size(), 1u);
  EXPECT_EQ(fed.catalog.relation(0).primary_key.size(), 1u);
}

}  // namespace
}  // namespace cisqp::dsl
