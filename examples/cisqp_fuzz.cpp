// cisqp-fuzz — the differential fuzzing driver (DESIGN.md §11, EXPERIMENTS E15).
//
//   ./build/examples/cisqp-fuzz --seeds=500                # a campaign
//   ./build/examples/cisqp-fuzz --seeds=32 --time-budget=60
//   ./build/examples/cisqp-fuzz --replay tests/corpus/x.repro
//   ./build/examples/cisqp-fuzz --replay failing.repro --minimize
//
// Campaign mode draws one scenario per seed, runs the production pipeline
// (chase → feasibility-aware plan search → distributed execution, sequential
// and parallel, fault-free and under fault schedules) against the
// brute-force oracles, and on any mismatch shrinks the scenario with the
// delta-debugging minimizer and writes a self-contained repro file to
// --out-dir. Exit status: 0 = all green, 1 = mismatches found, 2 = usage or
// I/O error.
//
// Flags:
//   --seeds=N          seeds to try (default 100)
//   --seed-start=K     first seed (default 1)
//   --time-budget=SEC  stop the campaign after SEC seconds (0 = no budget;
//                      a trailing 's' is accepted: --time-budget=60s)
//   --threads=N        parallel-arm thread count (default 2)
//   --fault-seeds=a,b,c fault schedules per scenario (default 7,19,2027)
//   --no-exec          skip the execution arms (planning-only campaign)
//   --out-dir=DIR      where minimized repro files go (default .)
//   --replay FILE      check one repro file instead of a campaign
//   --minimize         with --replay: shrink a failing repro, write FILE.min
//
// When $CISQP_BENCH_OUT_DIR is set, a BENCH_fuzz_throughput.json artifact
// (scenarios/sec, oracle-vs-production wall-time ratio) is written there,
// matching the bench harness's artifact shape.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "testcheck/harness.hpp"
#include "testcheck/minimizer.hpp"
#include "testcheck/scenario.hpp"

using namespace cisqp;

namespace {

struct Flags {
  std::uint64_t seeds = 100;
  std::uint64_t seed_start = 1;
  double time_budget_sec = 0.0;
  std::size_t threads = 2;
  std::vector<std::uint64_t> fault_seeds{7, 19, 2027};
  bool check_execution = true;
  std::string out_dir = ".";
  std::string replay_file;
  bool minimize = false;
};

bool ParseUint(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const std::string owned(text);
  out = std::strtoull(owned.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseFlags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&](std::string_view prefix) -> std::string_view {
      return arg.substr(prefix.size());
    };
    std::uint64_t n = 0;
    if (arg.rfind("--seeds=", 0) == 0 && ParseUint(value_of("--seeds="), n)) {
      flags.seeds = n;
    } else if (arg.rfind("--seed-start=", 0) == 0 &&
               ParseUint(value_of("--seed-start="), n)) {
      flags.seed_start = n;
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      std::string v(value_of("--time-budget="));
      if (!v.empty() && (v.back() == 's' || v.back() == 'S')) v.pop_back();
      flags.time_budget_sec = std::strtod(v.c_str(), nullptr);
    } else if (arg.rfind("--threads=", 0) == 0 &&
               ParseUint(value_of("--threads="), n)) {
      flags.threads = static_cast<std::size_t>(n);
    } else if (arg.rfind("--fault-seeds=", 0) == 0) {
      flags.fault_seeds.clear();
      std::stringstream ss{std::string(value_of("--fault-seeds="))};
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (item.empty()) continue;
        if (!ParseUint(item, n)) return false;
        flags.fault_seeds.push_back(n);
      }
    } else if (arg == "--no-exec") {
      flags.check_execution = false;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      flags.out_dir = std::string(value_of("--out-dir="));
    } else if (arg.rfind("--replay=", 0) == 0) {
      flags.replay_file = std::string(value_of("--replay="));
    } else if (arg == "--replay" && i + 1 < argc) {
      flags.replay_file = argv[++i];
    } else if (arg == "--minimize") {
      flags.minimize = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

testcheck::CheckOptions MakeCheckOptions(const Flags& flags) {
  testcheck::CheckOptions options;
  options.threads = flags.threads;
  options.fault_seeds = flags.fault_seeds;
  options.check_execution = flags.check_execution;
  return options;
}

/// The minimizer's predicate: the candidate reproduces a mismatch of the
/// same kind the original run found.
testcheck::FailurePredicate SameKindPredicate(
    const testcheck::CheckOptions& options, testcheck::MismatchKind kind) {
  return [options, kind](const testcheck::Scenario& candidate) {
    const Result<testcheck::CheckReport> report =
        testcheck::CheckScenario(candidate, options);
    if (!report.ok()) return false;
    for (const testcheck::Mismatch& m : report->mismatches) {
      if (m.kind == kind) return true;
    }
    return false;
  };
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

/// Shrinks a failing scenario and writes its repro file; returns the path.
std::string MinimizeAndWrite(const testcheck::Scenario& failing,
                             const testcheck::CheckOptions& options,
                             testcheck::MismatchKind kind,
                             const std::string& path) {
  Result<testcheck::Scenario> clone = testcheck::CloneScenario(failing);
  if (!clone.ok()) {
    std::fprintf(stderr, "cannot clone scenario for minimization: %s\n",
                 clone.status().ToString().c_str());
    return {};
  }
  testcheck::MinimizeStats stats;
  const testcheck::Scenario minimal = testcheck::MinimizeScenario(
      std::move(*clone), SameKindPredicate(options, kind), {}, &stats);
  std::printf("  minimized: %zu relations, %zu grants, %zu candidates tried "
              "(%zu accepted, %zu passes)\n",
              minimal.catalog.relation_count(), minimal.auths.size(),
              stats.candidates_tried, stats.candidates_accepted, stats.passes);
  if (!WriteFile(path, minimal.ToReproText())) return {};
  std::printf("  repro written: %s\n", path.c_str());
  return path;
}

void WriteThroughputArtifact(std::size_t scenarios, std::size_t feasible,
                             double elapsed_sec, std::int64_t production_us,
                             std::int64_t oracle_us) {
  const char* dir = std::getenv("CISQP_BENCH_OUT_DIR");
  const std::string path = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/BENCH_fuzz_throughput.json"
                               : "BENCH_fuzz_throughput.json";
  const double per_sec =
      elapsed_sec > 0 ? static_cast<double>(scenarios) / elapsed_sec : 0.0;
  const double ratio =
      production_us > 0
          ? static_cast<double>(oracle_us) / static_cast<double>(production_us)
          : 0.0;
  std::ostringstream json;
  json << "{\"experiment\":\"E15: differential fuzz campaign throughput\","
       << "\"claim\":\"the brute-force oracles stay affordable relative to "
       << "the production pipeline at fuzz-sized scenarios\",\"rows\":[{"
       << "\"scenarios\":" << scenarios << ",\"feasible\":" << feasible
       << ",\"elapsed_sec\":" << elapsed_sec
       << ",\"scenarios_per_sec\":" << per_sec
       << ",\"production_us\":" << production_us
       << ",\"oracle_us\":" << oracle_us
       << ",\"oracle_vs_production_ratio\":" << ratio << "}]}";
  if (WriteFile(path, json.str() + "\n")) {
    std::printf("artifact: %s\n", path.c_str());
  }
}

int Replay(const Flags& flags) {
  std::ifstream in(flags.replay_file);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", flags.replay_file.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<testcheck::Scenario> scenario =
      testcheck::ParseReproText(buffer.str());
  if (!scenario.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 scenario.status().ToString().c_str());
    return 2;
  }
  const testcheck::CheckOptions options = MakeCheckOptions(flags);
  const Result<testcheck::CheckReport> report =
      testcheck::CheckScenario(*scenario, options);
  if (!report.ok()) {
    std::fprintf(stderr, "check failed to run: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  if (report->ok()) {
    std::printf("replay %s: ok (%s)\n", flags.replay_file.c_str(),
                report->feasible ? "feasible" : "infeasible");
    return 0;
  }
  std::printf("replay %s: MISMATCH\n%s", flags.replay_file.c_str(),
              report->ToString().c_str());
  if (flags.minimize) {
    MinimizeAndWrite(*scenario, options, report->mismatches.front().kind,
                     flags.replay_file + ".min");
  }
  return 1;
}

int Campaign(const Flags& flags) {
  const testcheck::CheckOptions options = MakeCheckOptions(flags);
  const testcheck::ScenarioConfig config;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_sec = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::size_t checked = 0;
  std::size_t skipped = 0;
  std::size_t feasible = 0;
  std::size_t mismatched = 0;
  std::int64_t production_us = 0;
  std::int64_t oracle_us = 0;

  for (std::uint64_t seed = flags.seed_start;
       seed < flags.seed_start + flags.seeds; ++seed) {
    if (flags.time_budget_sec > 0 && elapsed_sec() > flags.time_budget_sec) {
      std::printf("time budget exhausted after %zu scenarios\n", checked);
      break;
    }
    Result<testcheck::Scenario> scenario =
        testcheck::GenerateScenario(config, seed);
    if (!scenario.ok()) {
      ++skipped;  // the drawn schema cannot host the configured query
      continue;
    }
    const Result<testcheck::CheckReport> report =
        testcheck::CheckScenario(*scenario, options);
    if (!report.ok()) {
      std::fprintf(stderr, "seed %llu: check failed to run: %s\n",
                   static_cast<unsigned long long>(seed),
                   report.status().ToString().c_str());
      return 2;
    }
    ++checked;
    production_us += report->production_us;
    oracle_us += report->oracle_us;
    if (report->feasible) ++feasible;
    if (!report->ok()) {
      ++mismatched;
      std::printf("seed %llu: MISMATCH\n%s",
                  static_cast<unsigned long long>(seed),
                  report->ToString().c_str());
      MinimizeAndWrite(*scenario, options, report->mismatches.front().kind,
                       flags.out_dir + "/repro_seed" + std::to_string(seed) +
                           ".repro");
    }
  }

  const double elapsed = elapsed_sec();
  std::printf("fuzz: %zu scenario(s) checked (%zu feasible, %zu seed(s) "
              "skipped), %zu mismatch(es), %.1fs\n",
              checked, feasible, skipped, mismatched, elapsed);
  WriteThroughputArtifact(checked, feasible, elapsed, production_us,
                          oracle_us);
  return mismatched == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, flags)) return 2;
  if (!flags.replay_file.empty()) return Replay(flags);
  return Campaign(flags);
}
