// Shared helpers for the experiment harness (bench/).
//
// Every bench binary regenerates one experiment of EXPERIMENTS.md: it first
// prints the experiment's table/series to stdout (the artifact), then runs
// google-benchmark timings for the operations involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "plan/builder.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "workload/medical.hpp"

namespace cisqp::bench {

/// Dies with a message when a Status/Result is not OK — bench setup only.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// The paper's plan (Fig. 2) for the Example 2.2 query.
inline plan::QueryPlan PaperPlan(const catalog::Catalog& cat) {
  auto spec = Unwrap(
      sql::ParseAndBind(cat, workload::MedicalScenario::kPaperQuery),
      "parse paper query");
  return Unwrap(plan::PlanBuilder(cat).Build(spec), "build paper plan");
}

/// Section header for the printed experiment artifact.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper artifact/claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

}  // namespace cisqp::bench
