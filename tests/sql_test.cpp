// Unit tests for src/sql: lexer, parser, binder.
#include <gtest/gtest.h>

#include "sql/binder.hpp"
#include "sql/lexer.hpp"
#include "sql/parser.hpp"
#include "test_util.hpp"

namespace cisqp::sql {
namespace {

using cisqp::testing::Attr;

TEST(LexerTest, TokenizesAllKinds) {
  ASSERT_OK_AND_ASSIGN(auto tokens,
                       Tokenize("SELECT a, b.c FROM t WHERE x >= 1.5 AND y <> 'it''s'"));
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
  // Find the escaped string literal.
  bool found_string = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "it's");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("select From jOiN"));
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "FROM");
  EXPECT_EQ(tokens[2].text, "JOIN");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("= <> != < <= > >= ( ) , . *"));
  const std::vector<TokenKind> kinds = {
      TokenKind::kEq, TokenKind::kNe, TokenKind::kNe, TokenKind::kLt,
      TokenKind::kLe, TokenKind::kGt, TokenKind::kGe, TokenKind::kLParen,
      TokenKind::kRParen, TokenKind::kComma, TokenKind::kDot, TokenKind::kStar};
  ASSERT_EQ(tokens.size(), kinds.size() + 1);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, kinds[i]) << "token " << i;
  }
}

TEST(LexerTest, IntegerVsFloat) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("12 3.5 7."));
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  // "7." lexes as integer then dot (no trailing digit).
  EXPECT_EQ(tokens[2].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[3].kind, TokenKind::kDot);
}

TEST(LexerTest, Failures) {
  EXPECT_EQ(Tokenize("a # b").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Tokenize("'unterminated").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Tokenize("a ! b").status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, FullQueryShape) {
  ASSERT_OK_AND_ASSIGN(
      AstQuery q,
      Parse("SELECT Patient, Plan FROM Insurance "
            "JOIN Hospital ON Holder = Patient AND Plan = Physician "
            "WHERE Holder >= 10 AND Plan = 'gold'"));
  EXPECT_FALSE(q.select_star);
  EXPECT_EQ(q.select_list, (std::vector<std::string>{"Patient", "Plan"}));
  EXPECT_EQ(q.first_relation, "Insurance");
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.joins[0].relation, "Hospital");
  ASSERT_EQ(q.joins[0].conditions.size(), 2u);
  EXPECT_EQ(q.joins[0].conditions[1].left, "Plan");
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].op, algebra::CompareOp::kGe);
  EXPECT_TRUE(std::get<storage::Value>(q.where[1].rhs).is_string());
}

TEST(ParserTest, SelectDistinct) {
  ASSERT_OK_AND_ASSIGN(AstQuery q, Parse("SELECT DISTINCT Plan FROM Insurance"));
  EXPECT_TRUE(q.distinct);
  ASSERT_OK_AND_ASSIGN(AstQuery q2, Parse("SELECT Plan FROM Insurance"));
  EXPECT_FALSE(q2.distinct);
  // DISTINCT composes with '*' and is case-insensitive.
  ASSERT_OK_AND_ASSIGN(AstQuery q3, Parse("select distinct * from Insurance"));
  EXPECT_TRUE(q3.distinct);
  EXPECT_TRUE(q3.select_star);
}

TEST(ParserTest, SelectStar) {
  ASSERT_OK_AND_ASSIGN(AstQuery q, Parse("SELECT * FROM Hospital"));
  EXPECT_TRUE(q.select_star);
  EXPECT_TRUE(q.joins.empty());
  EXPECT_TRUE(q.where.empty());
}

TEST(ParserTest, DottedNames) {
  ASSERT_OK_AND_ASSIGN(AstQuery q,
                       Parse("SELECT Insurance.Plan FROM Insurance WHERE "
                             "Insurance.Holder = 3"));
  EXPECT_EQ(q.select_list[0], "Insurance.Plan");
  EXPECT_EQ(q.where[0].lhs, "Insurance.Holder");
}

TEST(ParserTest, WhereAttrAttr) {
  ASSERT_OK_AND_ASSIGN(AstQuery q,
                       Parse("SELECT Plan FROM Insurance WHERE Holder = Plan"));
  ASSERT_TRUE(q.where[0].rhs_is_name());
  EXPECT_EQ(std::get<std::string>(q.where[0].rhs), "Plan");
}

TEST(ParserTest, ExplainAndExplainAnalyze) {
  // Plain query: both flags off.
  ASSERT_OK_AND_ASSIGN(AstQuery plain, Parse("SELECT Plan FROM Insurance"));
  EXPECT_FALSE(plain.explain);
  EXPECT_FALSE(plain.analyze);

  // EXPLAIN wraps an otherwise-unchanged query.
  ASSERT_OK_AND_ASSIGN(
      AstQuery q, Parse("EXPLAIN SELECT Plan FROM Insurance JOIN Hospital "
                        "ON Holder = Patient WHERE Plan = 'gold'"));
  EXPECT_TRUE(q.explain);
  EXPECT_FALSE(q.analyze);
  EXPECT_EQ(q.first_relation, "Insurance");
  ASSERT_EQ(q.joins.size(), 1u);
  ASSERT_EQ(q.where.size(), 1u);

  // EXPLAIN ANALYZE sets both; keywords are case-insensitive.
  ASSERT_OK_AND_ASSIGN(AstQuery qa,
                       Parse("explain analyze select Plan from Insurance"));
  EXPECT_TRUE(qa.explain);
  EXPECT_TRUE(qa.analyze);
  EXPECT_EQ(qa.select_list, (std::vector<std::string>{"Plan"}));

  // EXPLAIN composes with DISTINCT.
  ASSERT_OK_AND_ASSIGN(
      AstQuery qd, Parse("EXPLAIN SELECT DISTINCT Plan FROM Insurance"));
  EXPECT_TRUE(qd.explain);
  EXPECT_TRUE(qd.distinct);

  // EXPLAIN needs a query behind it; ANALYZE alone is not a prefix, and the
  // keywords cannot be used as plain identifiers.
  EXPECT_EQ(Parse("EXPLAIN").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("EXPLAIN ANALYZE").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("ANALYZE SELECT Plan FROM Insurance").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("EXPLAIN EXPLAIN SELECT Plan FROM Insurance").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_EQ(Parse("FROM x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("SELECT FROM x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("SELECT a").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("SELECT a FROM").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("SELECT a FROM t JOIN").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("SELECT a FROM t JOIN u").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("SELECT a FROM t JOIN u ON a < b").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("SELECT a FROM t WHERE").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("SELECT a FROM t extra").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("").status().code(), StatusCode::kInvalidArgument);
}

class BinderTest : public ::testing::Test {
 protected:
  catalog::Catalog cat_ = workload::MedicalScenario::BuildCatalog();
};

TEST_F(BinderTest, BindsPaperQuery) {
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      ParseAndBind(cat_, workload::MedicalScenario::kPaperQuery));
  EXPECT_EQ(spec.select_list.size(), 4u);
  EXPECT_EQ(spec.first_relation, cisqp::testing::Relation(cat_, "Insurance"));
  ASSERT_EQ(spec.joins.size(), 2u);
  // First join links Nat_registry via Holder = Citizen, oriented new-on-right.
  EXPECT_EQ(spec.joins[0].relation, cisqp::testing::Relation(cat_, "Nat_registry"));
  EXPECT_EQ(spec.joins[0].atoms[0].left, Attr(cat_, "Holder"));
  EXPECT_EQ(spec.joins[0].atoms[0].right, Attr(cat_, "Citizen"));
  // Second join links Hospital via Citizen = Patient.
  EXPECT_EQ(spec.joins[1].atoms[0].left, Attr(cat_, "Citizen"));
  EXPECT_EQ(spec.joins[1].atoms[0].right, Attr(cat_, "Patient"));
}

TEST_F(BinderTest, OrientsReversedOnCondition) {
  // Written "Patient = Citizen" while Hospital is the new relation.
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      ParseAndBind(cat_, "SELECT Patient FROM Nat_registry JOIN Hospital "
                         "ON Patient = Citizen"));
  EXPECT_EQ(spec.joins[0].atoms[0].left, Attr(cat_, "Citizen"));
  EXPECT_EQ(spec.joins[0].atoms[0].right, Attr(cat_, "Patient"));
}

TEST_F(BinderTest, SelectStarExpandsInFromOrder) {
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      ParseAndBind(cat_, "SELECT * FROM Insurance JOIN Nat_registry "
                         "ON Holder = Citizen"));
  ASSERT_EQ(spec.select_list.size(), 4u);
  EXPECT_EQ(spec.select_list[0], Attr(cat_, "Holder"));
  EXPECT_EQ(spec.select_list[2], Attr(cat_, "Citizen"));
}

TEST_F(BinderTest, CoercesIntLiteralToDoubleColumn) {
  catalog::Catalog cat;
  const auto s = cat.AddServer("s").value();
  ASSERT_OK(cat.AddRelation("T", s,
                            {{"K", catalog::ValueType::kInt64},
                             {"V", catalog::ValueType::kDouble}},
                            {"K"})
                .status());
  ASSERT_OK_AND_ASSIGN(plan::QuerySpec spec,
                       ParseAndBind(cat, "SELECT K FROM T WHERE V > 5"));
  const auto& rhs = std::get<storage::Value>(spec.where.conjuncts()[0].rhs);
  EXPECT_TRUE(rhs.is_double());
}

TEST_F(BinderTest, BindErrors) {
  EXPECT_EQ(ParseAndBind(cat_, "SELECT x FROM Nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseAndBind(cat_, "SELECT Nope FROM Insurance").status().code(),
            StatusCode::kNotFound);
  // Attribute exists but not in FROM scope.
  EXPECT_EQ(ParseAndBind(cat_, "SELECT Citizen FROM Insurance").status().code(),
            StatusCode::kInvalidArgument);
  // ON condition not linking the new relation.
  EXPECT_EQ(ParseAndBind(cat_, "SELECT Plan FROM Insurance JOIN Hospital "
                               "ON Holder = Plan")
                .status().code(),
            StatusCode::kInvalidArgument);
  // WHERE type mismatch.
  EXPECT_EQ(ParseAndBind(cat_, "SELECT Plan FROM Insurance WHERE Holder = 'x'")
                .status().code(),
            StatusCode::kInvalidArgument);
  // WHERE attr out of scope.
  EXPECT_EQ(ParseAndBind(cat_, "SELECT Plan FROM Insurance WHERE Citizen = 1")
                .status().code(),
            StatusCode::kInvalidArgument);
  // Cross-type attr-attr comparison.
  EXPECT_EQ(ParseAndBind(cat_, "SELECT Plan FROM Insurance WHERE Holder = Plan")
                .status().code(),
            StatusCode::kInvalidArgument);
  // Duplicate relation in FROM.
  EXPECT_EQ(ParseAndBind(cat_, "SELECT Plan FROM Insurance JOIN Insurance "
                               "ON Holder = Holder")
                .status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, SpecRoundTripsThroughToString) {
  ASSERT_OK_AND_ASSIGN(
      plan::QuerySpec spec,
      ParseAndBind(cat_, workload::MedicalScenario::kPaperQuery));
  const std::string rendered = spec.ToString(cat_);
  ASSERT_OK_AND_ASSIGN(plan::QuerySpec again, ParseAndBind(cat_, rendered));
  EXPECT_EQ(again.ToString(cat_), rendered);
}

}  // namespace
}  // namespace cisqp::sql
