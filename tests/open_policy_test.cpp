// Tests for the open-policy variant (paper §3.1 footnote 1): default-visible
// data restricted by negative rules, usable by every planner and the
// execution engine through the Policy interface.
#include <gtest/gtest.h>

#include "authz/open_policy.hpp"
#include "exec/executor.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "test_util.hpp"

namespace cisqp::authz {
namespace {

using cisqp::testing::Attrs;
using cisqp::testing::MedicalFixture;
using cisqp::testing::Path;
using cisqp::testing::Relation;
using cisqp::testing::Server;

class OpenPolicyTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;

  Profile MakeProfile(const std::vector<std::string>& pi,
                      const std::vector<std::pair<std::string, std::string>>& join,
                      const std::vector<std::string>& sigma) const {
    return Profile{Attrs(fix_.cat, pi), Path(fix_.cat, join), Attrs(fix_.cat, sigma)};
  }
};

TEST_F(OpenPolicyTest, EmptyPolicyAllowsEverything) {
  OpenPolicySet open;
  EXPECT_TRUE(open.CanView(MakeProfile({"Holder", "Disease"}, {}, {}),
                           Server(fix_.cat, "S_D")));
  EXPECT_EQ(open.size(), 0u);
}

TEST_F(OpenPolicyTest, DenialFiresOnFullAssociation) {
  OpenPolicySet open;
  // S_I must never see who is hospitalized with what: deny the
  // Holder-Disease association.
  ASSERT_OK(open.Add(fix_.cat, "S_I", {"Holder", "Disease"}, {}));
  EXPECT_FALSE(open.CanView(MakeProfile({"Holder", "Disease"}, {}, {}),
                            Server(fix_.cat, "S_I")));
  // Supersets are denied too (more information).
  EXPECT_FALSE(open.CanView(
      MakeProfile({"Holder", "Disease", "Plan"}, {{"Holder", "Patient"}}, {}),
      Server(fix_.cat, "S_I")));
  // Either attribute alone is fine: the *association* is denied.
  EXPECT_TRUE(open.CanView(MakeProfile({"Holder"}, {}, {}),
                           Server(fix_.cat, "S_I")));
  EXPECT_TRUE(open.CanView(MakeProfile({"Disease"}, {}, {}),
                           Server(fix_.cat, "S_I")));
  // Other servers are unaffected.
  EXPECT_TRUE(open.CanView(MakeProfile({"Holder", "Disease"}, {}, {}),
                           Server(fix_.cat, "S_N")));
}

TEST_F(OpenPolicyTest, SigmaAttributesCountAsExposed) {
  OpenPolicySet open;
  ASSERT_OK(open.Add(fix_.cat, "S_I", {"Holder", "Disease"}, {}));
  // Disease only appears in a selection — the information still flows.
  EXPECT_FALSE(open.CanView(MakeProfile({"Holder"}, {}, {"Disease"}),
                            Server(fix_.cat, "S_I")));
}

TEST_F(OpenPolicyTest, PathedDenialOnlyFiresOnThatAssociation) {
  OpenPolicySet open;
  // Deny S_D the knowledge of which illnesses occur in the hospital: the
  // Illness attribute joined through Illness=Disease.
  ASSERT_OK(open.Add(fix_.cat, "S_D", {"Illness"}, {{"Illness", "Disease"}}));
  EXPECT_FALSE(open.CanView(
      MakeProfile({"Illness", "Treatment"}, {{"Illness", "Disease"}}, {}),
      Server(fix_.cat, "S_D")));
  // A longer path that still contains the denied one is also denied.
  EXPECT_FALSE(open.CanView(
      MakeProfile({"Illness"},
                  {{"Illness", "Disease"}, {"Patient", "Citizen"}}, {}),
      Server(fix_.cat, "S_D")));
  // The bare relation (empty path) is allowed — the paper's open default.
  EXPECT_TRUE(open.CanView(MakeProfile({"Illness", "Treatment"}, {}, {}),
                           Server(fix_.cat, "S_D")));
}

TEST_F(OpenPolicyTest, AddValidation) {
  OpenPolicySet open;
  EXPECT_EQ(open.Add(fix_.cat, "S_X", {"Holder"}, {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(open.Add(fix_.cat, "S_I", {}, {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(open.Add(fix_.cat, "S_I", {"Nope"}, {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(open.Add(fix_.cat, "S_I", {"Holder"}, {{"Holder", "Plan"}}).code(),
            StatusCode::kInvalidArgument);  // within-relation atom
  ASSERT_OK(open.Add(fix_.cat, "S_I", {"Holder", "Disease"}, {}));
  EXPECT_EQ(open.Add(fix_.cat, "S_I", {"Disease", "Holder"}, {}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(open.size(), 1u);
  EXPECT_EQ(open.ForServer(Server(fix_.cat, "S_I")).size(), 1u);
  EXPECT_NE(open.ToString(fix_.cat).find("-|"), std::string::npos);
}

TEST_F(OpenPolicyTest, PlannerWorksUnderOpenPolicy) {
  // Under an empty open policy every plan is feasible; the planner picks a
  // semi-join (principle i) since every view is allowed.
  const plan::QueryPlan plan = fix_.PaperPlan();
  OpenPolicySet open;
  planner::SafePlanner planner(fix_.cat, open);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, planner.Plan(plan));
  EXPECT_OK(planner::VerifyAssignment(fix_.cat, open, plan, sp.assignment));
  EXPECT_EQ(sp.assignment.Of(1).mode, planner::ExecutionMode::kSemiJoin);
  EXPECT_EQ(sp.assignment.Of(2).mode, planner::ExecutionMode::kSemiJoin);
}

TEST_F(OpenPolicyTest, DenialsReshapeThePlan) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  // Forbid S_I from seeing anything of Nat_registry and S_N from seeing the
  // Insurance association: pushes the n2 join toward specific executors.
  OpenPolicySet open;
  ASSERT_OK(open.Add(fix_.cat, "S_I", {"Citizen"}, {}));
  ASSERT_OK(open.Add(fix_.cat, "S_I", {"HealthAid"}, {}));
  planner::SafePlanner planner(fix_.cat, open);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, planner.Plan(plan));
  // S_I can no longer act as n2's master (it would see Citizen), so the
  // master must be S_N.
  EXPECT_EQ(sp.assignment.Of(2).master, Server(fix_.cat, "S_N"));
  EXPECT_OK(planner::VerifyAssignment(fix_.cat, open, plan, sp.assignment));
}

TEST_F(OpenPolicyTest, RuntimeEnforcementUnderOpenPolicy) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  OpenPolicySet open;
  // Deny S_N the full Insurance view: the Fig. 7 regular join at n2 becomes
  // illegal at run time.
  ASSERT_OK(open.Add(fix_.cat, "S_N", {"Holder", "Plan"}, {}));
  planner::SafePlanner closed_planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, closed_planner.Plan(plan));

  exec::Cluster cluster(fix_.cat);
  Rng rng(1);
  ASSERT_OK(workload::MedicalScenario::PopulateCluster(cluster, {}, rng));
  exec::DistributedExecutor executor(cluster, open);
  EXPECT_EQ(executor.Execute(plan, sp.assignment).status().code(),
            StatusCode::kUnauthorized);

  // Replanning under the open policy routes around the denial.
  planner::SafePlanner open_planner(fix_.cat, open);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp2, open_planner.Plan(plan));
  EXPECT_OK(executor.Execute(plan, sp2.assignment).status());
}

TEST_F(OpenPolicyTest, InfeasibleWhenDenialsBlockEveryMode) {
  // Two relations on two servers; each server denied any sight of the other
  // relation's attributes, including the join columns: no safe mode remains.
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  const auto s1 = cat.AddServer("s1").value();
  CISQP_CHECK(cat.AddRelation("L", s0, {{"LK", catalog::ValueType::kInt64}}, {"LK"}).ok());
  CISQP_CHECK(cat.AddRelation("R", s1, {{"RK", catalog::ValueType::kInt64}}, {"RK"}).ok());
  ASSERT_OK(cat.AddJoinEdge("LK", "RK"));
  OpenPolicySet open;
  ASSERT_OK(open.Add(cat, "s0", {"RK"}, {}));
  ASSERT_OK(open.Add(cat, "s1", {"LK"}, {}));
  auto join = plan::PlanNode::Join(
      plan::PlanNode::Relation(cat.FindRelation("L").value()),
      plan::PlanNode::Relation(cat.FindRelation("R").value()),
      {algebra::EquiJoinAtom{cat.FindAttribute("LK").value(),
                             cat.FindAttribute("RK").value()}});
  plan::QueryPlan plan(std::move(join));
  planner::SafePlanner planner(cat, open);
  ASSERT_OK_AND_ASSIGN(planner::PlanningReport report, planner.Analyze(plan));
  EXPECT_FALSE(report.feasible);
  (void)s0;
  (void)s1;
}

}  // namespace
}  // namespace cisqp::authz
