#include "testcheck/oracle.hpp"

#include <map>
#include <utility>
#include <vector>

#include "plan/builder.hpp"
#include "planner/cost_planner.hpp"
#include "planner/exhaustive.hpp"
#include "planner/plan_search.hpp"

namespace cisqp::testcheck {

authz::AuthorizationSet NaiveChaseOracle(const catalog::Catalog& cat,
                                         const authz::AuthorizationSet& auths,
                                         std::size_t max_path_atoms) {
  using authz::Authorization;
  using authz::JoinAtom;
  using authz::JoinPath;
  authz::AuthorizationSet closed;
  for (catalog::ServerId server = 0; server < cat.server_count(); ++server) {
    std::vector<std::pair<IdSet, JoinPath>> rules;
    std::map<JoinPath, std::vector<IdSet>> by_path;
    const auto add_if_novel = [&](IdSet attrs, const JoinPath& path) {
      std::vector<IdSet>& grants = by_path[path];
      for (const IdSet& existing : grants) {
        if (attrs.IsSubsetOf(existing)) return false;
      }
      grants.push_back(attrs);
      rules.emplace_back(std::move(attrs), path);
      return true;
    };
    for (const Authorization& auth : auths.ForServer(server)) {
      add_if_novel(auth.attributes, auth.path);
    }
    bool changed = !rules.empty();
    while (changed) {
      changed = false;
      const std::size_t frozen = rules.size();
      for (std::size_t i = 0; i < frozen; ++i) {
        for (std::size_t j = 0; j < frozen; ++j) {
          if (i == j) continue;
          const auto [attrs_i, path_i] = rules[i];
          const auto [attrs_j, path_j] = rules[j];
          for (const catalog::JoinEdge& edge : cat.join_edges()) {
            const bool oriented = attrs_i.Contains(edge.left) &&
                                  attrs_j.Contains(edge.right);
            const bool reversed = attrs_i.Contains(edge.right) &&
                                  attrs_j.Contains(edge.left);
            if (!oriented && !reversed) continue;
            JoinPath derived_path = JoinPath::Union(path_i, path_j);
            derived_path.Insert(JoinAtom::Make(edge.left, edge.right));
            if (max_path_atoms != 0 && derived_path.size() > max_path_atoms) {
              continue;
            }
            if (add_if_novel(IdSet::Union(attrs_i, attrs_j), derived_path)) {
              changed = true;
            }
          }
        }
      }
    }
    for (const auto& [attrs, path] : rules) {
      const Status status = closed.Add(cat, Authorization{attrs, path, server});
      CISQP_CHECK(status.ok() || status.code() == StatusCode::kAlreadyExists);
    }
  }
  return closed;
}

std::multiset<std::string> CanonicalPolicy(const catalog::Catalog& cat,
                                           authz::AuthorizationSet set) {
  set.Minimize();
  std::multiset<std::string> out;
  for (const authz::Authorization& rule : set.All()) {
    out.insert(rule.ToString(cat));
  }
  return out;
}

Result<PlanOracleResult> ExhaustivePlanOracle(const catalog::Catalog& cat,
                                              const authz::Policy& auths,
                                              const plan::QuerySpec& spec,
                                              const plan::StatsCatalog* stats,
                                              const PlanOracleOptions& options) {
  planner::FeasiblePlanSearch search(cat, auths, stats);
  CISQP_ASSIGN_OR_RETURN(const std::vector<plan::QuerySpec> orders,
                         search.EnumerateOrders(spec, options.max_orders));
  const plan::PlanBuilder builder(cat, stats);
  const planner::MinCostSafePlanner coster(cat, auths, stats);
  PlanOracleResult out;
  for (const plan::QuerySpec& order : orders) {
    ++out.orders_examined;
    CISQP_ASSIGN_OR_RETURN(const plan::QueryPlan tree, builder.Build(order));
    planner::ExhaustiveOptions ex;
    ex.max_explored = options.max_explored;
    CISQP_ASSIGN_OR_RETURN(
        const planner::ExhaustiveResult enumerated,
        planner::EnumerateSafeAssignments(cat, auths, tree, ex));
    out.safe_assignments += enumerated.safe_assignments.size();
    for (const planner::Assignment& assignment : enumerated.safe_assignments) {
      CISQP_ASSIGN_OR_RETURN(const double bytes,
                             coster.EstimateAssignmentBytes(tree, assignment));
      if (!out.feasible || bytes < out.min_cost_bytes) {
        out.min_cost_bytes = bytes;
      }
      out.feasible = true;
    }
  }
  return out;
}

}  // namespace cisqp::testcheck
