#include "planner/assignment.hpp"

#include <sstream>

namespace cisqp::planner {

std::string_view ExecutionModeName(ExecutionMode mode) noexcept {
  switch (mode) {
    case ExecutionMode::kLocal: return "local";
    case ExecutionMode::kRegularJoin: return "regular-join";
    case ExecutionMode::kSemiJoin: return "semi-join";
  }
  return "unknown";
}

std::string_view FromChildName(FromChild from) noexcept {
  switch (from) {
    case FromChild::kSelf: return "-";
    case FromChild::kLeft: return "left";
    case FromChild::kRight: return "right";
    case FromChild::kThird: return "third";
  }
  return "?";
}

std::string Executor::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << "[" << (master == catalog::kInvalidId ? std::string("?")
                                               : cat.server(master).name)
      << ", " << (slave ? cat.server(*slave).name : std::string("NULL")) << "]";
  return oss.str();
}

std::string Assignment::ToString(const catalog::Catalog& cat,
                                 const plan::QueryPlan& plan) const {
  std::ostringstream oss;
  plan.ForEachPreOrder([&](const plan::PlanNode& node) {
    const Executor& ex = Of(node.id);
    oss << "n" << node.id << " " << plan::PlanOpName(node.op) << ": "
        << ex.ToString(cat) << " (" << ExecutionModeName(ex.mode) << ")\n";
  });
  return oss.str();
}

std::string CandidateRejection::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << cat.server(server).name << " cannot be " << ExecutionModeName(mode)
      << " " << role;
  if (from != FromChild::kSelf) oss << " (from " << FromChildName(from) << ")";
  oss << ": needs " << required_view.ToString(cat);
  return oss.str();
}

std::string FormatRejections(const catalog::Catalog& cat,
                             const std::vector<CandidateRejection>& rejections) {
  std::ostringstream oss;
  for (const CandidateRejection& r : rejections) {
    oss << "  " << r.ToString(cat) << "\n";
  }
  return oss.str();
}

std::string PlanningTrace::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << "Find_candidates (post-order):\n";
  for (const NodeTrace& nt : find_candidates) {
    oss << "  n" << nt.node_id << "  candidates: ";
    for (std::size_t i = 0; i < nt.candidates.size(); ++i) {
      const Candidate& c = nt.candidates[i];
      if (i != 0) oss << ", ";
      oss << "[" << cat.server(c.server).name << ", " << FromChildName(c.from)
          << ", " << c.count << "]";
      if (c.from == FromChild::kSelf) oss << "*";
    }
    if (nt.leftslave) oss << "  leftslave: " << cat.server(*nt.leftslave).name;
    if (nt.rightslave) oss << "  rightslave: " << cat.server(*nt.rightslave).name;
    oss << "\n";
  }
  oss << "Assign_ex (pre-order):\n";
  for (const AssignTrace& at : assign) {
    oss << "  n" << at.node_id << "  " << at.executor.ToString(cat);
    if (at.pushed_from_parent) {
      oss << "  (pushed " << cat.server(*at.pushed_from_parent).name << ")";
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace cisqp::planner
