// FrontDoor: the federation's multi-query serving layer (DESIGN.md §15).
//
// Everything below this class answers one query for one caller; the front
// door is where the system meets "heavy traffic": many client threads call
// Serve concurrently, a bounded admission scheduler (AdmissionController)
// decides who runs, who queues, and who is told to back off, and two caches
// amortize the paper's expensive per-query work across requests:
//
//   * the policy chase closure is computed once per *policy epoch* and
//     shared by every request of that epoch (it depends only on the policy
//     and the schema, never on the query);
//   * the plan cache (PlanCache) maps (canonical query signature, policy
//     epoch) to the finished feasibility search — a repeated query shape
//     skips join-order enumeration and every Fig. 6 traversal;
//   * the CanView memo (authz::CachingPolicy) sits under both the cold
//     planner and runtime enforcement, so even cold queries of a busy epoch
//     stop re-deciding Def. 3.3 verdicts they share with earlier queries.
//
// The serving contract, enforced by the fuzz harness's serving arm: for any
// fixed request, a cache-hit answer is byte-identical to the cold answer —
// same table bytes on success, same typed status on failure. Policy changes
// go through SetPolicy, which installs the new rules and bumps the epoch;
// entries of older epochs can never be served again (PlanCache checks the
// stamp, the memo is per-epoch state), so staleness is structurally
// impossible rather than probabilistically unlikely.
//
// Execution runs on a shared worker pool (ServeOptions::exec_pool /
// exec_threads) with per-request ExecutionOptions; requests never share
// mutable state except the thread-safe caches, the cluster's read path, and
// the pool.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "authz/authorization.hpp"
#include "authz/canview_cache.hpp"
#include "authz/chase.hpp"
#include "authz/incremental.hpp"
#include "exec/executor.hpp"
#include "plan/stats.hpp"
#include "serve/admission.hpp"
#include "serve/plan_cache.hpp"

namespace cisqp::serve {

struct ServeOptions {
  // Admission: at most `max_concurrent` requests execute at once; at most
  // `max_queue` more wait FIFO; beyond that Serve fails kResourceExhausted.
  // A queued request waiting longer than `admission_max_wait_us` fails with
  // kResourceExhausted too (0 = wait indefinitely).
  std::size_t max_concurrent = 8;
  std::size_t max_queue = 1024;
  std::int64_t admission_max_wait_us = 0;

  std::size_t plan_cache_capacity = 256;

  // Cold-path planning (FeasiblePlanSearch) knobs.
  std::size_t max_orders = 64;
  std::size_t planning_threads = 1;
  bool allow_third_party = false;

  // Close the policy under the chase once per epoch. Off serves against the
  // raw rule set (sound but refuses derivable-view queries).
  bool chase_policy = true;
  authz::ChaseOptions chase;

  // Per-request execution defaults.
  bool enforce_releases = true;
  /// Kernel parallelism for execution: a shared pool (preferred under
  /// concurrency — one pool for the whole front door) or a thread count
  /// resolved through the executor's process-shared pool. 1 = sequential.
  ThreadPool* exec_pool = nullptr;
  std::size_t exec_threads = 1;
  algebra::MorselContext morsel;
};

struct Request {
  std::string sql;
  /// Deliver results to this server (checked as a release; part of the
  /// plan-cache key — feasibility depends on it).
  std::optional<catalog::ServerId> requestor;
  /// Overrides ServeOptions::enforce_releases for this request.
  std::optional<bool> enforce_releases;
  /// When set, the execution fills this profile (EXPLAIN ANALYZE surface).
  obs::QueryProfile* profile = nullptr;
};

struct Response {
  storage::Table table;
  catalog::ServerId result_server = catalog::kInvalidId;
  exec::NetworkStats network;
  /// True when planning was served from the plan cache.
  bool plan_cache_hit = false;
  std::uint64_t policy_epoch = 0;
  std::string signature;        ///< canonical query signature (cache key base)
  double estimated_bytes = 0;   ///< planner's cost of the executed plan
  // Per-stage wall time, microseconds.
  std::int64_t queue_us = 0;
  std::int64_t parse_us = 0;    ///< 0 when the signature memo skipped parsing
  std::int64_t plan_us = 0;     ///< lookup only on a hit, full search cold
  std::int64_t exec_us = 0;
  std::int64_t total_us = 0;
};

/// Point-in-time serving counters (monotone since construction).
struct FrontDoorStats {
  std::uint64_t requests = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t plan_cache_stale_evictions = 0;
  std::uint64_t plan_cache_retained = 0;  ///< re-stamped across policy edits
  std::uint64_t canview_hits = 0;
  std::uint64_t canview_misses = 0;
  std::size_t plan_cache_size = 0;
  std::size_t canview_memo_size = 0;  ///< current epoch's memo only
};

class FrontDoor {
 public:
  /// The catalog, cluster, and stats must outlive the front door; the
  /// policy is owned (SetPolicy replaces it). `stats` may be null (model
  /// defaults drive the cost ranking).
  FrontDoor(const catalog::Catalog& cat, authz::AuthorizationSet auths,
            const exec::Cluster& cluster, const plan::StatsCatalog* stats,
            ServeOptions options = {});

  /// Serves one query end to end: admission, parse/bind, plan (cached or
  /// cold), execute. Thread-safe; call from any number of client threads.
  /// Typed failures: kResourceExhausted (admission), kInvalidArgument
  /// (parse/bind), kInfeasible (no safe assignment — cached like success),
  /// kUnauthorized / kUnavailable (execution).
  Result<Response> Serve(const Request& request);

  /// Installs a new rule set and bumps the policy epoch: the chase closure
  /// is recomputed lazily, plan-cache entries of older epochs are swept,
  /// and a fresh CanView memo starts. In-flight requests finish against the
  /// epoch they started under.
  void SetPolicy(authz::AuthorizationSet auths);

  /// Grants one rule incrementally (DESIGN.md §16): the chase closure is
  /// maintained as a semi-naïve delta instead of rechased, the epoch bumps,
  /// and plan-cache/CanView-memo entries whose relations are disjoint from
  /// the edit's ClosureDelta are re-stamped into the new epoch instead of
  /// swept. Validation failures (kInvalidArgument, kNotFound,
  /// kAlreadyExists) change nothing — no epoch bump, caches intact. Falls
  /// back to SetPolicy semantics (full sweep, lazy rechase) when the
  /// incremental path is unavailable (chase off, closure capped).
  Result<authz::ClosureDelta> AddRule(const authz::Authorization& auth);

  /// Revokes one rule incrementally; kNotFound when the exact rule is not
  /// in the base policy. Same retention contract as AddRule.
  Result<authz::ClosureDelta> RevokeRule(const authz::Authorization& auth);

  std::uint64_t policy_epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Drops every cache (plan cache, CanView memo, chased closure) without
  /// bumping the epoch — the benches' cold-path switch.
  void ClearCaches();

  FrontDoorStats Stats() const;

 private:
  /// Everything derived from one policy epoch, immutable once published;
  /// requests snapshot one shared_ptr and stay internally consistent even
  /// across a concurrent SetPolicy.
  struct EpochState {
    std::uint64_t epoch = 0;
    authz::AuthorizationSet policy;  ///< chased closure (or raw on cap/off)
    bool chase_capped = false;
    std::unique_ptr<authz::CachingPolicy> memo;  ///< wraps `policy`
  };

  /// The current epoch's state, chasing the policy on first use.
  Result<std::shared_ptr<const EpochState>> State();

  /// Shared grant/revoke implementation; `grant` selects the direction.
  Result<authz::ClosureDelta> EditPolicy(const authz::Authorization& auth,
                                         bool grant);

  /// With mu_ held: folds the live memo's counters into the retired totals
  /// before the state it belongs to is replaced.
  void RetireMemoCountersLocked();

  /// Raw-SQL-text → canonical signature memo: a repeated spelling skips
  /// parse+bind entirely (signatures depend only on the immutable catalog,
  /// never on the policy, so entries survive epoch bumps). Bounded; full
  /// means new spellings just parse.
  std::optional<std::string> CachedSignature(const std::string& sql) const;
  void MemoizeSignature(const std::string& sql, const std::string& signature);

  const catalog::Catalog& cat_;
  const exec::Cluster& cluster_;
  const plan::StatsCatalog* stats_;
  const ServeOptions options_;

  AdmissionController admission_;
  PlanCache plan_cache_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> requests_{0};

  mutable std::mutex sig_mu_;  ///< guards sig_memo_
  std::unordered_map<std::string, std::string> sig_memo_;

  mutable std::mutex mu_;  ///< guards base_policy_, state_, inc_, counters
  authz::AuthorizationSet base_policy_;
  std::shared_ptr<const EpochState> state_;  ///< null until first State()
  /// Incrementally maintained closure of base_policy_; built lazily on the
  /// first AddRule/RevokeRule, dropped whenever the incremental path cannot
  /// keep up (SetPolicy, cap trips).
  std::unique_ptr<authz::IncrementalClosure> inc_;
  std::uint64_t retired_canview_hits_ = 0;
  std::uint64_t retired_canview_misses_ = 0;
};

}  // namespace cisqp::serve
