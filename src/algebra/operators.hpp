// Relational operators over in-memory tables.
//
// These are the physical operators the execution engine composes to run a
// query tree plan: projection (with optional duplicate elimination),
// selection, hash equi-join, and the shared-attribute natural join that
// completes the 5-step semi-join flow of paper Fig. 5. All operators are
// pure functions: inputs by const reference, output by value.
#pragma once

#include <utility>
#include <vector>

#include "algebra/expr.hpp"
#include "storage/table.hpp"

namespace cisqp::algebra {

/// One equi-join atom `left_attr = right_attr` where `left_attr` is a column
/// of the left operand and `right_attr` of the right operand.
struct EquiJoinAtom {
  catalog::AttributeId left = catalog::kInvalidId;
  catalog::AttributeId right = catalog::kInvalidId;

  friend bool operator==(const EquiJoinAtom&, const EquiJoinAtom&) = default;
};

/// π: keeps columns `attrs` in the given order. With `distinct`, removes
/// duplicate rows (set semantics, as in the paper's algebra).
Result<storage::Table> Project(const storage::Table& input,
                               const std::vector<catalog::AttributeId>& attrs,
                               bool distinct = false);

/// σ: keeps rows satisfying `predicate`.
Result<storage::Table> Select(const storage::Table& input,
                              const Predicate& predicate);

/// ⋈: hash equi-join on the conjunction of `atoms`. Output header is the
/// left header followed by the right header (no column elimination — the
/// planner's projections trim). Requires at least one atom.
Result<storage::Table> HashJoin(const storage::Table& left,
                                const storage::Table& right,
                                const std::vector<EquiJoinAtom>& atoms);

/// Natural join on every attribute id the two headers share; shared columns
/// appear once (from the left). Used for step 5 of the semi-join flow, where
/// the master rejoins the slave's reduced result with its own relation on the
/// originally projected join attributes. Requires at least one shared column.
Result<storage::Table> NaturalJoinOnShared(const storage::Table& left,
                                           const storage::Table& right);

/// Removes duplicate rows (set semantics).
storage::Table Distinct(const storage::Table& input);

}  // namespace cisqp::algebra
