// E9 (extension) — feasibility-aware join ordering: how often is the
// FROM-order / cost-optimal tree infeasible while *some* join order of the
// same query admits a safe assignment (authorizations are shape-sensitive),
// and what does the search cost?
//
// This quantifies the integration the paper sketches in §5 ("our algorithm
// nicely fits in such a two phase structure"): when phase 2 fails, phase 1
// must be revisited.
#include "bench_util.hpp"

#include <chrono>

#include "plan/dp_optimizer.hpp"
#include "planner/plan_search.hpp"
#include "workload/generator.hpp"

namespace cisqp::bench {
namespace {

void PrintRescueTable() {
  PrintHeader("E9 / §5 two-step integration (extension)",
              "queries whose FROM-order plan is infeasible but a reordered "
              "plan is safe (rescue), by authorization density");
  Artifact artifact("plan_search", "E9 / §5 two-step integration (extension)",
                    "join-order rescue rate by authorization density");
  std::printf("%-10s %-9s %-14s %-14s %-10s %-12s\n", "density", "queries",
              "from_feasible", "from_blocked", "rescued", "rescue_rate");
  for (const double density : {0.2, 0.35, 0.5, 0.7}) {
    int queries = 0;
    int from_feasible = 0;
    int from_blocked = 0;
    int rescued = 0;
    Rng rng(static_cast<std::uint64_t>(6200 + density * 100));
    for (int fed_idx = 0; fed_idx < 10; ++fed_idx) {
      workload::FederationConfig fed_config;
      fed_config.servers = 4;
      fed_config.relations = 6;
      const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
      workload::AuthzConfig authz_config;
      authz_config.base_grant_prob = density;
      authz_config.path_grants_per_server = static_cast<std::size_t>(density * 8.0);
      const authz::AuthorizationSet auths =
          workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
      planner::SafePlanner direct(fed.catalog, auths);
      planner::FeasiblePlanSearch search(fed.catalog, auths);
      planner::PlanSearchOptions search_options;
      search_options.threads = BenchThreads();
      for (int q = 0; q < 8; ++q) {
        workload::QueryConfig query_config;
        query_config.relations = 3 + static_cast<std::size_t>(q % 2);
        auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
        if (!spec.ok()) continue;
        auto built = plan::PlanBuilder(fed.catalog).Build(*spec);
        if (!built.ok()) continue;
        ++queries;
        const auto report = Unwrap(direct.Analyze(*built), "analyze");
        if (report.feasible) {
          ++from_feasible;
          continue;
        }
        ++from_blocked;
        if (search.Search(*spec, search_options).ok()) ++rescued;
      }
    }
    std::printf("%-10.2f %-9d %-14d %-14d %-10d %-12.3f\n", density, queries,
                from_feasible, from_blocked, rescued,
                from_blocked ? static_cast<double>(rescued) / from_blocked : 0.0);
    artifact.Row()
        .Value("density", density)
        .Value("queries", queries)
        .Value("from_feasible", from_feasible)
        .Value("from_blocked", from_blocked)
        .Value("rescued", rescued)
        .Value("threads", ResolveThreads(BenchThreads()));
  }
  artifact.Write();
  std::printf("\n(rescued = FROM-order infeasible but another join order of the\n"
              "same query has a safe assignment found by FeasiblePlanSearch)\n\n");
}

void PrintThreadsSweep() {
  PrintHeader("E9b / parallel plan search (extension)",
              "wall-clock of FeasiblePlanSearch::Search by thread count on a "
              "fixed many-order workload; the chosen plan is identical at "
              "every setting");
  Artifact artifact("plan_search_threads",
                    "E9b / parallel plan search (extension)",
                    "Search wall-clock by thread count, identical results");
  Rng rng(6464);
  workload::FederationConfig fed_config;
  fed_config.servers = 4;
  fed_config.relations = 6;
  fed_config.extra_edge_prob = 0.5;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = 0.8;  // dense enough that orders are feasible
  authz_config.path_grants_per_server = 6;
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
  workload::QueryConfig query_config;
  query_config.relations = 6;
  const auto spec =
      Unwrap(workload::GenerateQuery(fed.catalog, query_config, rng), "query");
  planner::FeasiblePlanSearch search(fed.catalog, auths);

  std::printf("%-9s %-12s %-13s %-16s %-10s\n", "threads", "wall_ms",
              "orders_tried", "orders_feasible", "speedup");
  double baseline_ms = 0.0;
  std::string baseline_plan;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    planner::PlanSearchOptions options;
    options.threads = threads;
    double best_ms = 0.0;
    planner::PlanSearchResult result;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      auto run = search.Search(spec, options);
      const auto elapsed = std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start);
      if (!run.ok()) {
        UnwrapStatus(run.status(), "threads sweep search");
        return;
      }
      if (rep == 0 || elapsed.count() < best_ms) best_ms = elapsed.count();
      result = std::move(*run);
    }
    const std::string rendered = result.plan.ToString(fed.catalog);
    if (threads == 1) {
      baseline_ms = best_ms;
      baseline_plan = rendered;
    } else if (rendered != baseline_plan) {
      std::fprintf(stderr, "FATAL: plan differs at threads=%zu\n", threads);
      std::abort();
    }
    std::printf("%-9zu %-12.3f %-13zu %-16zu %-10.2f\n", threads, best_ms,
                result.orders_tried, result.orders_feasible,
                baseline_ms / best_ms);
    artifact.Row()
        .Value("threads", threads)
        .Value("wall_ms", best_ms)
        .Value("orders_tried", result.orders_tried)
        .Value("orders_feasible", result.orders_feasible)
        .Value("estimated_bytes", result.estimated_bytes)
        .Value("speedup_vs_1", baseline_ms / best_ms);
  }
  artifact.Write();
  std::printf("\n(single-core machines report speedup ≈ 1; results are "
              "byte-identical regardless)\n\n");
}

void BM_PlanSearch(benchmark::State& state) {
  Rng rng(6464);
  workload::FederationConfig fed_config;
  fed_config.servers = 4;
  fed_config.relations = 7;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = 0.5;
  authz_config.path_grants_per_server = 4;
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
  workload::QueryConfig query_config;
  query_config.relations = static_cast<std::size_t>(state.range(0));
  const auto spec =
      Unwrap(workload::GenerateQuery(fed.catalog, query_config, rng), "query");
  planner::FeasiblePlanSearch search(fed.catalog, auths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.Search(spec));
  }
}
BENCHMARK(BM_PlanSearch)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_EnumerateOrders(benchmark::State& state) {
  Rng rng(6465);
  workload::FederationConfig fed_config;
  fed_config.servers = 4;
  fed_config.relations = 8;
  fed_config.extra_edge_prob = 0.5;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  workload::QueryConfig query_config;
  query_config.relations = static_cast<std::size_t>(state.range(0));
  const auto spec =
      Unwrap(workload::GenerateQuery(fed.catalog, query_config, rng), "query");
  authz::AuthorizationSet empty;
  planner::FeasiblePlanSearch search(fed.catalog, empty);
  std::size_t orders = 0;
  for (auto _ : state) {
    auto enumerated = search.EnumerateOrders(spec, 5000);
    if (enumerated.ok()) orders = enumerated->size();
    benchmark::DoNotOptimize(enumerated);
  }
  state.counters["orders"] = static_cast<double>(orders);
}
BENCHMARK(BM_EnumerateOrders)->Arg(3)->Arg(5)->Arg(7);

/// Step-1 optimizer comparison: exact DP vs greedy ordering cost and time.
void BM_DpOptimizer(benchmark::State& state) {
  Rng rng(6466);
  workload::FederationConfig fed_config;
  fed_config.relations = 10;
  fed_config.extra_edge_prob = 0.4;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  exec::Cluster cluster(fed.catalog);
  UnwrapStatus(workload::PopulateCluster(cluster, fed, {}, rng), "populate");
  const plan::StatsCatalog stats = workload::ComputeStats(cluster);
  workload::QueryConfig query_config;
  query_config.relations = static_cast<std::size_t>(state.range(0));
  query_config.where_prob = 0.0;
  const auto spec =
      Unwrap(workload::GenerateQuery(fed.catalog, query_config, rng), "query");
  double dp_cost = 0;
  for (auto _ : state) {
    auto result = plan::OptimizeJoinOrder(fed.catalog, &stats, spec);
    if (result.ok()) dp_cost = result->estimated_cost;
    benchmark::DoNotOptimize(result);
  }
  // Greedy cost under the same estimator for context.
  plan::BuildOptions greedy_options;
  greedy_options.join_order = plan::JoinOrderPolicy::kGreedyCost;
  plan::PlanBuilder builder(fed.catalog, &stats);
  const auto greedy = builder.Build(spec, greedy_options);
  double greedy_cost = 0;
  if (greedy.ok()) {
    greedy->ForEachPreOrder([&](const plan::PlanNode& n) {
      if (n.op == plan::PlanOp::kJoin) greedy_cost += builder.EstimateCardinality(n);
    });
  }
  state.counters["dp_cost"] = dp_cost;
  state.counters["greedy_cost"] = greedy_cost;
}
BENCHMARK(BM_DpOptimizer)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintRescueTable();
  cisqp::bench::PrintThreadsSweep();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
