// The paper's running example (Figs. 1-3): a four-server medical federation.
//
//   S_I : Insurance(Holder*, Plan)
//   S_H : Hospital(Patient*, Disease, Physician)
//   S_N : Nat_registry(Citizen*, HealthAid)
//   S_D : Disease_list(Illness*, Treatment)
//
// Joinable pairs (the "lines" of Fig. 1): Holder=Patient, Holder=Citizen,
// Patient=Citizen, Disease=Illness. BuildAuthorizations installs the fifteen
// rules of Fig. 3 verbatim; kPaperQuery is the Example 2.2 query whose plan
// (Fig. 2) the safe planner resolves to the Fig. 7 assignment.
#pragma once

#include <string_view>

#include "authz/authorization.hpp"
#include "catalog/catalog.hpp"
#include "common/rng.hpp"
#include "exec/cluster.hpp"
#include "plan/stats.hpp"

namespace cisqp::workload {

class MedicalScenario {
 public:
  /// The Example 2.2 query (paper Fig. 2 plan, Fig. 7 trace).
  static constexpr std::string_view kPaperQuery =
      "SELECT Patient, Physician, Plan, HealthAid "
      "FROM Insurance JOIN Nat_registry ON Holder = Citizen "
      "JOIN Hospital ON Citizen = Patient";

  /// Builds the Fig. 1 schema: 4 servers, 4 relations, 4 join edges.
  static catalog::Catalog BuildCatalog();

  /// Installs the 15 authorizations of Fig. 3.
  static authz::AuthorizationSet BuildAuthorizations(const catalog::Catalog& cat);

  /// Synthesizes consistent instances: `citizens` national-registry rows, a
  /// subset of them hospitalized and/or insured, every hospital disease
  /// drawn from the disease list. Deterministic given `rng`.
  struct DataConfig {
    std::size_t citizens = 1000;
    double hospitalized_fraction = 0.3;
    double insured_fraction = 0.6;
    std::size_t diseases = 50;
  };
  static Status PopulateCluster(exec::Cluster& cluster, const DataConfig& config,
                                Rng& rng);

  /// Exact statistics scanned from the populated cluster.
  static plan::StatsCatalog ComputeStats(const exec::Cluster& cluster);

  /// A named query.
  struct NamedQuery {
    std::string name;
    std::string sql;
  };

  /// A representative workload over the federation: the paper's query plus
  /// single-server lookups, pairwise joins, the §3.2 denied view, and
  /// three-way associations — mixing feasible and infeasible requests.
  /// Drives the E11 workload table and the throughput benchmarks.
  static std::vector<NamedQuery> WorkloadQueries();
};

}  // namespace cisqp::workload
