#!/usr/bin/env python3
"""Render QueryProfile JSON as a markdown report.

Input is either a bare QueryProfile document (the output of
QueryProfile::ToJson()) or a bench artifact (BENCH_*.json) whose rows embed
one under a "sample_profile" key — e.g. BENCH_obs_overhead.json or
BENCH_profile_feedback.json, as written by scripts/run_experiments.sh.

    scripts/profile2md.py artifacts/BENCH_profile_feedback.json [out.md]

With no output path the markdown goes to stdout.
"""
import json
import sys


def fmt_rows(value):
    return f"{value:,}"


def fmt_drift(op):
    if "est_rows" not in op:
        return "-"
    drift = (op.get("rows_out", 0) + 1.0) / (op["est_rows"] + 1.0)
    flag = " (!)" if drift > 2.0 or drift < 0.5 else ""
    return f"{drift:.2f}x{flag}"


def profile_to_md(profile):
    lines = []
    qid = profile.get("query_id", -1)
    lines.append(f"### Query profile #{qid}")
    lines.append("")
    query = profile.get("query", "")
    if query:
        lines.append(f"```sql\n{query}\n```")
        lines.append("")
    duration = profile.get("duration_us", 0)
    shipped = sum(t.get("bytes", 0) for t in profile.get("transfers", []))
    lines.append(f"*{duration:,} us wall, {shipped:,} B shipped over "
                 f"{len(profile.get('transfers', []))} transfer(s)*")
    lines.append("")

    ops = [o for o in profile.get("operators", [])
           if o.get("invocations", 0) > 0]
    if ops:
        lines.append("| node | op | server | rows in | rows out | est | "
                     "drift | time (us) | shipped (B) |")
        lines.append("|---:|---|---|---:|---:|---:|---:|---:|---:|")
        for op in sorted(ops, key=lambda o: o.get("node", -1)):
            rows_in = op.get("rows_in_left", 0) + op.get("rows_in_right", 0)
            est_txt = ("-" if "est_rows" not in op
                       else fmt_rows(round(op["est_rows"])))
            lines.append(
                f"| n{op.get('node', -1)} | {op.get('op', '?')} "
                f"| {op.get('server', '?')} | {fmt_rows(rows_in)} "
                f"| {fmt_rows(op.get('rows_out', 0))} | {est_txt} "
                f"| {fmt_drift(op)} | {op.get('time_us', 0):,} "
                f"| {fmt_rows(op.get('bytes_shipped', 0))} |")
        lines.append("")

    transfers = profile.get("transfers", [])
    if transfers:
        lines.append("| ship for | from | to | rows | bytes | payload |")
        lines.append("|---|---|---|---:|---:|---|")
        for t in transfers:
            lines.append(
                f"| n{t.get('node', -1)} | {t.get('from', '?')} "
                f"| {t.get('to', '?')} | {fmt_rows(t.get('rows', 0))} "
                f"| {fmt_rows(t.get('bytes', 0))} | {t.get('what', '')} |")
        lines.append("")
    return "\n".join(lines)


def extract_profiles(doc):
    """Yields (context, profile) pairs from a bare profile or an artifact."""
    if "operators" in doc:
        yield "", doc
        return
    for i, row in enumerate(doc.get("rows", [])):
        profile = row.get("sample_profile")
        if isinstance(profile, dict):
            name = doc.get("name", "artifact")
            yield f"row {i} of {name}", profile


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        doc = json.load(f)
    sections = []
    for context, profile in extract_profiles(doc):
        md = profile_to_md(profile)
        if context:
            md = f"<!-- {context} -->\n{md}"
        sections.append(md)
    if not sections:
        print(f"no query profile found in {argv[1]}", file=sys.stderr)
        return 1
    out = "\n---\n\n".join(sections) + "\n"
    if len(argv) > 2:
        with open(argv[2], "w") as f:
            f.write(out)
        print(f"wrote {argv[2]} ({len(sections)} profile(s))")
    else:
        sys.stdout.write(out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
