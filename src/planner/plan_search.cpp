#include "planner/plan_search.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::planner {
namespace {

/// Undirected equi-join atom between two relations.
struct Edge {
  catalog::AttributeId a = catalog::kInvalidId;
  catalog::AttributeId b = catalog::kInvalidId;
  catalog::RelationId rel_a = catalog::kInvalidId;
  catalog::RelationId rel_b = catalog::kInvalidId;
};

std::vector<Edge> CollectEdges(const catalog::Catalog& cat,
                               const plan::QuerySpec& spec) {
  std::vector<Edge> edges;
  for (const plan::JoinStep& step : spec.joins) {
    for (const algebra::EquiJoinAtom& atom : step.atoms) {
      edges.push_back(Edge{atom.left, atom.right,
                           cat.attribute(atom.left).relation,
                           cat.attribute(atom.right).relation});
    }
  }
  return edges;
}

/// DFS over connected prefixes, emitting every complete order until the cap.
/// Connectivity of a candidate is one probe of a precomputed relation →
/// neighbor-relations adjacency map instead of a scan over every edge.
class OrderEnumerator {
 public:
  OrderEnumerator(const std::vector<catalog::RelationId>& relations,
                  const std::vector<Edge>& edges, std::size_t max_orders)
      : relations_(relations), max_orders_(max_orders) {
    for (const Edge& edge : edges) {
      adjacency_[edge.rel_a].Insert(edge.rel_b);
      adjacency_[edge.rel_b].Insert(edge.rel_a);
    }
  }

  std::vector<std::vector<catalog::RelationId>> Run() {
    for (catalog::RelationId start : relations_) {
      prefix_ = {start};
      placed_ = IdSet{start};
      Extend();
      if (orders_.size() >= max_orders_) break;
    }
    return std::move(orders_);
  }

 private:
  void Extend() {
    if (orders_.size() >= max_orders_) return;
    if (prefix_.size() == relations_.size()) {
      orders_.push_back(prefix_);
      return;
    }
    for (catalog::RelationId cand : relations_) {
      if (placed_.Contains(cand)) continue;
      const auto neighbors = adjacency_.find(cand);
      if (neighbors == adjacency_.end() ||
          !neighbors->second.Intersects(placed_)) {
        continue;
      }
      prefix_.push_back(cand);
      placed_.Insert(cand);
      Extend();
      placed_.Erase(cand);
      prefix_.pop_back();
      if (orders_.size() >= max_orders_) return;
    }
  }

  const std::vector<catalog::RelationId>& relations_;
  const std::size_t max_orders_;
  std::map<catalog::RelationId, IdSet> adjacency_;
  std::vector<catalog::RelationId> prefix_;
  IdSet placed_;
  std::vector<std::vector<catalog::RelationId>> orders_;
};

/// Rebuilds `spec` with the relations in `order`, re-orienting every atom so
/// the new relation's attribute sits on the right.
plan::QuerySpec ReorderSpec(const catalog::Catalog& cat,
                            const plan::QuerySpec& spec,
                            const std::vector<catalog::RelationId>& order,
                            const std::vector<Edge>& edges) {
  plan::QuerySpec out;
  out.select_list = spec.select_list;
  out.where = spec.where;
  out.first_relation = order.front();
  IdSet placed{order.front()};
  for (std::size_t i = 1; i < order.size(); ++i) {
    const catalog::RelationId next = order[i];
    plan::JoinStep step;
    step.relation = next;
    for (const Edge& e : edges) {
      if (e.rel_b == next && placed.Contains(e.rel_a)) {
        step.atoms.push_back(algebra::EquiJoinAtom{e.a, e.b});
      } else if (e.rel_a == next && placed.Contains(e.rel_b)) {
        step.atoms.push_back(algebra::EquiJoinAtom{e.b, e.a});
      }
    }
    out.joins.push_back(std::move(step));
    placed.Insert(next);
  }
  (void)cat;
  return out;
}

}  // namespace

Result<std::vector<plan::QuerySpec>> FeasiblePlanSearch::EnumerateOrders(
    const plan::QuerySpec& spec, std::size_t max_orders) const {
  CISQP_RETURN_IF_ERROR(spec.Validate(cat_));
  const std::vector<catalog::RelationId> relations = spec.Relations();
  const std::vector<Edge> edges = CollectEdges(cat_, spec);
  OrderEnumerator enumerator(relations, edges, max_orders);
  std::vector<plan::QuerySpec> out;
  for (const std::vector<catalog::RelationId>& order : enumerator.Run()) {
    out.push_back(ReorderSpec(cat_, spec, order, edges));
  }
  if (out.empty()) {
    return InvalidArgumentError("query join graph admits no connected order");
  }
  return out;
}

Result<PlanSearchResult> FeasiblePlanSearch::Search(
    const plan::QuerySpec& spec, const PlanSearchOptions& options) const {
  CISQP_TRACE_SPAN(span, "planner.plan_search");
  CISQP_ASSIGN_OR_RETURN(std::vector<plan::QuerySpec> orders,
                         EnumerateOrders(spec, options.max_orders));
  span.AddAttribute("orders_enumerated", orders.size());

  plan::BuildOptions build_options = options.build_options;
  build_options.join_order = plan::JoinOrderPolicy::kFromClause;

  // Fan the orders out: each task builds, analyzes, and costs one order on
  // its own builder/planner instances (all stateless over shared read-only
  // catalog/policy/stats), then folds into the running minimum under a
  // mutex. The fold is commutative and tie-breaks on the lowest order
  // index, so the outcome is identical to the sequential left-to-right scan
  // regardless of completion order. Errors (malformed plans, not
  // infeasibility) keep the lowest order index too.
  struct Best {
    std::size_t index;
    double bytes;
    plan::QueryPlan plan;
    SafePlan safe_plan;
  };
  std::mutex mu;
  std::optional<Best> best;
  std::optional<std::pair<std::size_t, Status>> error;
  std::size_t feasible = 0;

  const std::size_t threads =
      options.threads == 0 ? ThreadPool::HardwareConcurrency() : options.threads;
  span.AddAttribute("threads", threads);
  {
    ThreadPool pool(std::min(threads, orders.size()));
    pool.ParallelFor(orders.size(), [&](std::size_t i) {
      // Explicitly parent the per-order span to the search root: pool
      // workers have empty thread-local span stacks, so without this every
      // worker would start a disjoint root lane in the Chrome export.
      obs::Span order_span("planner.plan_search.order", span);
      order_span.AddAttribute("order", i);
      plan::PlanBuilder builder(cat_, stats_, feedback_);
      SafePlanner planner(cat_, policy_, options.planner_options);
      MinCostSafePlanner cost_scorer(cat_, policy_, stats_, {}, feedback_);
      auto built = builder.Build(orders[i], build_options);
      if (!built.ok()) return;  // tried, but this order is not buildable
      auto report = planner.Analyze(*built);
      if (!report.ok()) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!error || i < error->first) error.emplace(i, report.status());
        return;
      }
      if (!report->feasible) return;
      auto bytes =
          cost_scorer.EstimateAssignmentBytes(*built, report->plan->assignment);
      if (!bytes.ok()) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!error || i < error->first) error.emplace(i, bytes.status());
        return;
      }
      const std::lock_guard<std::mutex> lock(mu);
      ++feasible;
      if (!best || *bytes < best->bytes ||
          (*bytes == best->bytes && i < best->index)) {
        best.emplace(Best{i, *bytes, std::move(*built),
                          std::move(*report->plan)});
      }
    });
  }
  if (error) return error->second;

  const std::size_t tried = orders.size();
  CISQP_METRIC_ADD("plan_search.orders_tried", tried);
  CISQP_METRIC_ADD("plan_search.orders_feasible", feasible);
  span.AddAttribute("orders_tried", tried);
  span.AddAttribute("orders_feasible", feasible);
  if (!best) {
    return InfeasibleError("no examined join order admits a safe assignment (" +
                           std::to_string(tried) + " orders tried)");
  }
  PlanSearchResult result;
  result.plan = std::move(best->plan);
  result.safe_plan = std::move(best->safe_plan);
  result.estimated_bytes = best->bytes;
  result.orders_tried = tried;
  result.orders_feasible = feasible;
  return result;
}

}  // namespace cisqp::planner
