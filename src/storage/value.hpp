// Value: a dynamically typed relational cell.
//
// The engine is schema-typed (each column has a declared catalog::ValueType)
// but cells travel as tagged unions so operators and the network simulator
// can be written generically. NULL follows SQL semantics where it matters:
// equality comparisons against NULL never match (joins and selections drop
// such rows); for deterministic ordering (sorting result sets in tests) NULL
// sorts before every non-NULL value.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "catalog/types.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"

namespace cisqp::storage {

/// One relational cell.
class Value {
 public:
  /// NULL value.
  Value() : rep_(std::monostate{}) {}
  Value(std::int64_t v) : rep_(v) {}        // NOLINT(google-explicit-constructor)
  Value(double v) : rep_(v) {}              // NOLINT
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const noexcept { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int64() const noexcept { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_double() const noexcept { return std::holds_alternative<double>(rep_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(rep_); }

  /// The schema type this cell matches; NULL matches any column type, so
  /// calling this on NULL is a programmer error.
  catalog::ValueType type() const;

  std::int64_t AsInt64() const { CISQP_CHECK(is_int64()); return std::get<std::int64_t>(rep_); }
  double AsDouble() const { CISQP_CHECK(is_double()); return std::get<double>(rep_); }
  const std::string& AsString() const { CISQP_CHECK(is_string()); return std::get<std::string>(rep_); }

  /// SQL equality: false whenever either side is NULL.
  bool SqlEquals(const Value& other) const noexcept;

  /// Three-way comparison for deterministic total ordering (NULL first,
  /// then by type tag, then by value). Used for canonical sorting only,
  /// not for SQL predicate evaluation.
  int CompareTotal(const Value& other) const noexcept;

  /// SQL `<` for same-typed non-NULL values; NULL operands yield false.
  bool SqlLess(const Value& other) const noexcept;

  /// Approximate wire size in bytes; drives the communication accounting of
  /// the execution engine (8 bytes for scalars, length + 4 for strings,
  /// 1 byte for the NULL tag).
  std::size_t WireSizeBytes() const noexcept;

  std::size_t Hash() const noexcept;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.rep_ == b.rep_;
  }

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// One tuple: cells in column order.
using Row = std::vector<Value>;

/// Order-insensitive row hash input helper: hashes cells in order.
std::size_t HashRow(const Row& row) noexcept;

}  // namespace cisqp::storage
