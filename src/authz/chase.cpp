#include "authz/chase.hpp"

#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::authz {
namespace {

/// Working form of a server's rule set with a per-path subsumption index.
class RulePool {
 public:
  /// Adds unless an existing same-path rule already grants a superset of
  /// attributes. Returns true when the pool changed.
  bool AddIfNovel(IdSet attrs, const JoinPath& path) {
    std::vector<IdSet>& grants = by_path_[path];
    for (const IdSet& existing : grants) {
      if (attrs.IsSubsetOf(existing)) return false;
    }
    grants.push_back(attrs);
    rules_.emplace_back(std::move(attrs), path);
    return true;
  }

  const std::vector<std::pair<IdSet, JoinPath>>& rules() const { return rules_; }

 private:
  std::vector<std::pair<IdSet, JoinPath>> rules_;
  std::map<JoinPath, std::vector<IdSet>> by_path_;
};

}  // namespace

Result<AuthorizationSet> ChaseClosure(const catalog::Catalog& cat,
                                      const AuthorizationSet& auths,
                                      const ChaseOptions& options,
                                      ChaseStats* stats) {
  CISQP_TRACE_SPAN(chase_span, "authz.chase");
  chase_span.AddAttribute("input_rules", auths.size());
  ChaseStats local_stats;
  AuthorizationSet closed;

  for (catalog::ServerId server = 0; server < cat.server_count(); ++server) {
    RulePool pool;
    for (const Authorization& auth : auths.ForServer(server)) {
      pool.AddIfNovel(auth.attributes, auth.path);
    }

    // Fixpoint: combine every pair of rules across every schema edge whose
    // endpoints are visible one in each rule. New rules join the pool and
    // participate in later rounds (indirect derivations).
    bool changed = !pool.rules().empty();
    while (changed) {
      changed = false;
      ++local_stats.iterations;
      CISQP_METRIC_INC("chase.iterations");
      CISQP_TRACE_SPAN(round_span, "authz.chase.iteration");
      round_span.AddAttribute("server", cat.server(server).name);
      const std::size_t round_start_rules = local_stats.derived_rules;
      const std::size_t frozen_size = pool.rules().size();
      for (std::size_t i = 0; i < frozen_size; ++i) {
        for (std::size_t j = 0; j < frozen_size; ++j) {
          if (i == j) continue;
          // By value: AddIfNovel below grows the pool's storage, which would
          // invalidate references into it.
          const auto [attrs_i, path_i] = pool.rules()[i];
          const auto [attrs_j, path_j] = pool.rules()[j];
          for (const catalog::JoinEdge& edge : cat.join_edges()) {
            ++local_stats.pairs_considered;
            // One endpoint must be visible through rule i, the other through
            // rule j: then the server can join the two authorized views
            // locally on attributes it already sees.
            const bool oriented = attrs_i.Contains(edge.left) && attrs_j.Contains(edge.right);
            const bool reversed = attrs_i.Contains(edge.right) && attrs_j.Contains(edge.left);
            if (!oriented && !reversed) continue;
            JoinPath derived_path = JoinPath::Union(path_i, path_j);
            derived_path.Insert(JoinAtom::Make(edge.left, edge.right));
            if (options.max_path_atoms != 0 &&
                derived_path.size() > options.max_path_atoms) {
              continue;
            }
            IdSet derived_attrs = IdSet::Union(attrs_i, attrs_j);
            if (!pool.AddIfNovel(std::move(derived_attrs), derived_path)) continue;
            changed = true;
            if (++local_stats.derived_rules > options.max_derived_rules) {
              return ResourceExhaustedError(
                  "chase closure exceeded max_derived_rules=" +
                  std::to_string(options.max_derived_rules));
            }
          }
        }
      }
      round_span.AddAttribute("rules_fired",
                              local_stats.derived_rules - round_start_rules);
    }

    for (const auto& [attrs, path] : pool.rules()) {
      const Status status =
          closed.Add(cat, Authorization{attrs, path, server});
      // Exact duplicates cannot arise (the pool dedups); any failure here is
      // a malformed *input* rule that AuthorizationSet::Add would also have
      // rejected, so surface it.
      if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
        return status;
      }
    }
  }

  CISQP_METRIC_ADD("chase.derived_rules", local_stats.derived_rules);
  CISQP_METRIC_ADD("chase.pairs_considered", local_stats.pairs_considered);
  chase_span.AddAttribute("derived_rules", local_stats.derived_rules);
  chase_span.AddAttribute("iterations", local_stats.iterations);
  if (stats != nullptr) *stats = local_stats;
  return closed;
}

}  // namespace cisqp::authz
