// E1 — regenerates the paper's Fig. 7: the Find_candidates / Assign_ex trace
// of the Example 2.2 query over the Fig. 3 authorizations, then times the
// two-traversal algorithm on that instance.
#include "bench_util.hpp"

#include "planner/verifier.hpp"

namespace cisqp::bench {
namespace {

void PrintFig7() {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  const plan::QueryPlan plan = PaperPlan(cat);

  PrintHeader("E1 / paper Fig. 7",
              "two-traversal execution trace of the Fig. 6 algorithm on the "
              "Fig. 2 plan under the Fig. 3 authorizations");
  std::printf("query: %s\n\nplan (Fig. 2):\n%s\n",
              std::string(workload::MedicalScenario::kPaperQuery).c_str(),
              plan.ToString(cat).c_str());

  planner::SafePlanner planner(cat, auths);
  const planner::SafePlan sp = Unwrap(planner.Plan(plan), "safe plan");
  std::printf("%s\n", sp.trace.ToString(cat).c_str());
  std::printf("final assignment (Fig. 7 right table):\n%s\n",
              sp.assignment.ToString(cat, plan).c_str());

  const auto releases = Unwrap(
      planner::EnumerateReleases(cat, plan, sp.assignment), "releases");
  std::printf("releases entailed by the assignment:\n");
  Artifact artifact("fig7_trace", "E1 / paper Fig. 7",
                    "executor assignment and releases of the Fig. 2 plan");
  for (int n = 0; n < plan.node_count(); ++n) {
    const planner::Executor& ex = sp.assignment.Of(n);
    artifact.Row()
        .Value("kind", "assignment")
        .Value("node", n)
        .Value("master", cat.server(ex.master).name)
        .Value("slave", ex.slave ? cat.server(*ex.slave).name : std::string("-"));
  }
  for (const planner::Release& r : releases) {
    std::printf("  %s\n", r.ToString(cat).c_str());
    artifact.Row()
        .Value("kind", "release")
        .Value("node", r.node_id)
        .Value("from", cat.server(r.from).name)
        .Value("to", cat.server(r.to).name)
        .Value("physical", r.physical)
        .Value("description", r.description);
  }
  artifact.Write();
  std::printf("\n");
}

void BM_SafePlanPaperExample(benchmark::State& state) {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  const plan::QueryPlan plan = PaperPlan(cat);
  planner::SafePlanner planner(cat, auths);
  std::size_t can_view_calls = 0;
  for (auto _ : state) {
    auto report = planner.Analyze(plan);
    benchmark::DoNotOptimize(report);
    can_view_calls = report->can_view_calls;
  }
  state.counters["can_view_calls"] = static_cast<double>(can_view_calls);
}
BENCHMARK(BM_SafePlanPaperExample);

void BM_ParseBindBuildPaperQuery(benchmark::State& state) {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  for (auto _ : state) {
    auto spec = sql::ParseAndBind(cat, workload::MedicalScenario::kPaperQuery);
    auto plan = plan::PlanBuilder(cat).Build(*spec);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ParseBindBuildPaperQuery);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintFig7();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
