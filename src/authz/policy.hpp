// Policy: the abstract authorization decision the planners and the executor
// consult.
//
// The paper's core model is a closed policy (§3.1: data are visible only to
// explicitly authorized parties) — `AuthorizationSet`. Footnote 1 notes the
// approach adapts to an *open* policy, where data are visible by default and
// negative rules restrict visibility — `OpenPolicySet` below. Both implement
// this interface, so every planner, verifier, and the runtime enforcer work
// under either regime.
#pragma once

#include "authz/profile.hpp"

namespace cisqp::authz {

/// Decides whether a server may view a relation with a given profile.
class Policy {
 public:
  virtual ~Policy() = default;

  /// True iff `server` is authorized to view a relation with `profile`.
  virtual bool CanView(const Profile& profile,
                       catalog::ServerId server) const = 0;
};

}  // namespace cisqp::authz
