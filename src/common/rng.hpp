// Deterministic pseudo-random generation for workload synthesis and tests.
//
// All randomized components of the library (generators, benchmarks, property
// tests) draw from an explicitly seeded Rng so every run is reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/status.hpp"

namespace cisqp {

/// Thin wrapper over a seeded mt19937_64 with the handful of draw shapes the
/// workload generators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    CISQP_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Precondition: n > 0.
  std::size_t UniformIndex(std::size_t n) {
    CISQP_CHECK(n > 0);
    return static_cast<std::size_t>(
        UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p) { return UniformReal() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[UniformIndex(i)]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in sorted order.
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k) {
    CISQP_CHECK(k <= n);
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    all.resize(k);
    std::sort(all.begin(), all.end());
    return all;
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cisqp
