#include "authz/profile.hpp"

#include <sstream>

namespace cisqp::authz {

Profile Profile::OfBaseRelation(const catalog::Catalog& cat,
                                catalog::RelationId rel) {
  Profile p;
  p.pi = cat.relation(rel).attribute_set;
  return p;
}

Profile Profile::Project(const Profile& input, IdSet x) {
  CISQP_CHECK_MSG(x.IsSubsetOf(input.pi),
                  "projection attributes must come from the input schema");
  Profile p;
  p.pi = std::move(x);
  p.join = input.join;
  p.sigma = input.sigma;
  return p;
}

Profile Profile::Select(const Profile& input, const IdSet& x) {
  CISQP_CHECK_MSG(x.IsSubsetOf(input.pi),
                  "selection attributes must come from the input schema");
  Profile p;
  p.pi = input.pi;
  p.join = input.join;
  p.sigma = IdSet::Union(input.sigma, x);
  return p;
}

Profile Profile::Join(const Profile& left, const Profile& right,
                      const JoinPath& j) {
  Profile p;
  p.pi = IdSet::Union(left.pi, right.pi);
  p.join = JoinPath::Union(left.join, right.join, j);
  p.sigma = IdSet::Union(left.sigma, right.sigma);
  return p;
}

std::string Profile::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << "[" << AttributeSetToString(cat, pi) << ", " << join.ToString(cat)
      << ", " << AttributeSetToString(cat, sigma) << "]";
  return oss.str();
}

std::string AttributeSetToString(const catalog::Catalog& cat, const IdSet& attrs) {
  if (attrs.empty()) return "∅";
  std::ostringstream oss;
  oss << "{";
  bool first = true;
  for (IdSet::value_type id : attrs) {
    if (!first) oss << ", ";
    first = false;
    oss << cat.attribute(id).name;
  }
  oss << "}";
  return oss.str();
}

}  // namespace cisqp::authz
