// cisqpsh — an interactive shell over the library.
//
//   ./build/examples/cisqpsh                 # the paper's medical federation
//   ./build/examples/cisqpsh my.fed          # a federation DSL file
//   ./build/examples/cisqpsh --threads 4     # parallelism for \search
//                                            # (default: hardware concurrency;
//                                            # 1 = sequential, same results)
//   ./build/examples/cisqpsh --clients 8     # concurrent clients for \serve
//
// Type SQL to plan + execute it safely; backslash commands inspect the
// federation and the planner:
//
//   \schema           the catalog
//   \policy           the authorizations
//   \plan SQL         the query tree plan (Fig. 2 style)
//   \profile SQL      execute with profiling, print EXPLAIN ANALYZE output
//                     (plain SQL also accepts EXPLAIN [ANALYZE] SELECT ...)
//   \trace SQL        execute with span tracing, print the span tree
//   \tracejson SQL    execute with span tracing, print Chrome trace JSON
//   \plantrace SQL    the Find_candidates / Assign_ex trace (Fig. 7 style)
//   \metrics          process metrics snapshot (counters/gauges/histograms)
//   \audit            the authorization-decision audit log
//   \releases SQL     the data releases a safe execution entails
//   \search SQL       feasibility-aware join-order search
//   \serve SQL        fire the query from --clients concurrent clients
//                     through the serving front door (plan + CanView caches)
//   \grant S a,b [on l=r]   add the rule [{a, b}, {(l, r)}] -> S; a live
//                     front door maintains its chase closure incrementally
//                     and keeps cache entries the edit cannot affect
//   \revoke S a,b [on l=r]  remove that exact rule (same incremental path)
//   \requestor NAME   deliver results to this server ('none' to reset)
//   \enforce on|off   toggle runtime release enforcement
//   \faults SPEC|off  inject faults (seed=N,drop=P,down=S@A..B,kill=S@A)
//   \help \quit
//
// --faults SPEC on the command line pre-installs the same fault schedule;
// each query replays it from a fresh fault model, so runs are reproducible.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "authz/analysis.hpp"
#include "common/strings.hpp"
#include "dsl/federation_dsl.hpp"
#include "exec/executor.hpp"
#include "exec/explain.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/builder.hpp"
#include "planner/plan_search.hpp"
#include "planner/report.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "serve/front_door.hpp"
#include "sql/binder.hpp"
#include "sql/parser.hpp"
#include "workload/medical.hpp"

using namespace cisqp;

namespace {

class Shell {
 public:
  Shell(catalog::Catalog cat, authz::AuthorizationSet auths,
        std::size_t threads, std::size_t clients)
      : cat_(std::move(cat)), auths_(std::move(auths)), cluster_(cat_),
        threads_(threads), clients_(clients == 0 ? 1 : clients) {
    PopulateData();
    // Exact statistics over the populated tables feed the EXPLAIN estimates
    // and the cost-based planners; the feedback store accumulates measured
    // cardinalities from every profiled execution in this session.
    for (catalog::RelationId r = 0; r < cat_.relation_count(); ++r) {
      stats_.Set(r, plan::StatsCatalog::FromTable(cluster_.TableOf(r)));
    }
    // Metrics and the audit log accumulate across the whole session;
    // \metrics and \audit read them back. Span tracing is per-\trace.
    obs::MetricsRegistry::Get().Enable();
    obs::AuthzAuditLog::Get().Enable();
  }

  int Run() {
    std::printf("cisqp shell — %zu server(s), %zu relation(s), %zu rule(s). "
                "\\help for commands.\n",
                cat_.server_count(), cat_.relation_count(), auths_.size());
    std::string line;
    while (true) {
      std::printf("cisqp> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      const std::string_view trimmed = TrimWhitespace(line);
      if (trimmed.empty()) continue;
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      Dispatch(trimmed);
    }
    std::printf("\n");
    return 0;
  }

 private:
  void PopulateData() {
    // Generic synthetic data: ints share a small domain so joins match.
    Rng rng(1);
    for (catalog::RelationId r = 0; r < cat_.relation_count(); ++r) {
      for (int i = 0; i < 64; ++i) {
        storage::Row row;
        for (catalog::AttributeId a : cat_.relation(r).attributes) {
          switch (cat_.attribute(a).type) {
            case catalog::ValueType::kInt64:
              row.emplace_back(rng.UniformInt(0, 40));
              break;
            case catalog::ValueType::kDouble:
              row.emplace_back(rng.UniformReal() * 100.0);
              break;
            case catalog::ValueType::kString:
              row.emplace_back("v" + std::to_string(rng.UniformInt(0, 40)));
              break;
          }
        }
        CISQP_CHECK(cluster_.InsertRow(r, std::move(row)).ok());
      }
    }
  }

  void Dispatch(std::string_view input) {
    if (input[0] != '\\') {
      ExecuteSql(input);
      return;
    }
    const std::size_t space = input.find(' ');
    const std::string_view cmd = input.substr(0, space);
    const std::string_view arg =
        space == std::string_view::npos ? "" : TrimWhitespace(input.substr(space));
    if (cmd == "\\help") {
      std::printf("%s", kHelp);
    } else if (cmd == "\\schema") {
      std::printf("%s", cat_.DebugString().c_str());
    } else if (cmd == "\\policy") {
      std::printf("%s", auths_.ToString(cat_).c_str());
    } else if (cmd == "\\matrix") {
      std::printf("%s", authz::VisibilityMatrixToString(
                            cat_, authz::BaseVisibilityMatrix(cat_, auths_))
                            .c_str());
    } else if (cmd == "\\plan") {
      WithPlan(arg, [&](const plan::QueryPlan& plan) {
        std::printf("%s", plan.ToString(cat_).c_str());
      });
    } else if (cmd == "\\profile") {
      ProfileSql(arg);
    } else if (cmd == "\\trace") {
      obs::Tracer::Get().Enable();
      ExecuteSql(arg);
      obs::Tracer::Get().Disable();
      std::printf("%s", obs::Tracer::Get().TextTree().c_str());
    } else if (cmd == "\\tracejson") {
      obs::Tracer::Get().Enable();
      ExecuteSql(arg);
      obs::Tracer::Get().Disable();
      std::printf("%s\n", obs::Tracer::Get().ChromeTraceJson().c_str());
    } else if (cmd == "\\plantrace") {
      WithSafePlan(arg, [&](const plan::QueryPlan&, const planner::SafePlan& sp) {
        std::printf("%s", sp.trace.ToString(cat_).c_str());
      });
    } else if (cmd == "\\metrics") {
      std::printf("%s", obs::MetricsRegistry::Get().ToText().c_str());
    } else if (cmd == "\\audit") {
      const obs::AuthzAuditLog& log = obs::AuthzAuditLog::Get();
      std::printf("%s%zu allowed, %zu denied\n", log.ToText().c_str(),
                  log.allowed_count(), log.denied_count());
    } else if (cmd == "\\dot") {
      WithSafePlan(arg, [&](const plan::QueryPlan& plan, const planner::SafePlan& sp) {
        auto dot = planner::ToDot(cat_, plan, sp.assignment);
        if (dot.ok()) std::printf("%s", dot->c_str());
      });
    } else if (cmd == "\\releases") {
      WithSafePlan(arg, [&](const plan::QueryPlan& plan, const planner::SafePlan& sp) {
        auto releases = planner::EnumerateReleases(cat_, plan, sp.assignment);
        for (const planner::Release& r : releases.value()) {
          std::printf("%s\n", r.ToString(cat_).c_str());
        }
      });
    } else if (cmd == "\\search") {
      SearchOrders(arg);
    } else if (cmd == "\\serve") {
      ServeSql(arg);
    } else if (cmd == "\\grant") {
      EditRule(arg, /*grant=*/true);
    } else if (cmd == "\\revoke") {
      EditRule(arg, /*grant=*/false);
    } else if (cmd == "\\requestor") {
      SetRequestor(arg);
    } else if (cmd == "\\enforce") {
      enforce_ = arg != "off";
      std::printf("runtime enforcement %s\n", enforce_ ? "on" : "off");
    } else if (cmd == "\\faults") {
      SetFaults(arg);
    } else {
      std::printf("unknown command; \\help lists commands\n");
    }
  }

  template <typename Fn>
  void WithPlan(std::string_view sql_text, Fn&& fn) {
    auto spec = sql::ParseAndBind(cat_, sql_text);
    if (!spec.ok()) {
      std::printf("error: %s\n", spec.status().ToString().c_str());
      return;
    }
    auto plan = plan::PlanBuilder(cat_, &stats_, &feedback_).Build(*spec);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return;
    }
    fn(*plan);
  }

  template <typename Fn>
  void WithSafePlan(std::string_view sql_text, Fn&& fn) {
    WithPlan(sql_text, [&](const plan::QueryPlan& plan) {
      planner::SafePlanner planner(cat_, auths_, PlannerOptions());
      auto report = planner.Analyze(plan);
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        return;
      }
      if (!report->feasible) {
        std::printf("INFEASIBLE: no safe executor assignment (blocked at node n%d)\n%s",
                    report->blocking_node,
                    planner::FormatRejections(cat_, report->blocking_rejections)
                        .c_str());
        return;
      }
      fn(plan, *report->plan);
    });
  }

  void ExecuteSql(std::string_view sql_text) {
    auto ast = sql::Parse(sql_text);
    if (!ast.ok()) {
      std::printf("error: %s\n", ast.status().ToString().c_str());
      return;
    }
    if (ast->explain) {
      if (ast->analyze) {
        ProfileSql(sql_text);
      } else {
        WithPlan(sql_text, [&](const plan::QueryPlan& plan) {
          std::printf("%s", exec::RenderExplain(cat_, &stats_, &feedback_,
                                                plan, nullptr)
                                .c_str());
        });
      }
      return;
    }
    WithSafePlan(sql_text, [&](const plan::QueryPlan& plan,
                               const planner::SafePlan& sp) {
      std::printf("%s", sp.assignment.ToString(cat_, plan).c_str());
      exec::DistributedExecutor executor(cluster_, auths_);
      exec::ExecutionOptions options;
      options.enforce_releases = enforce_;
      options.requestor = requestor_;
      options.threads = ExecThreads();
      // Each query replays the installed schedule from a fresh fault model,
      // so the same seed reproduces the same drops and recoveries.
      std::optional<exec::FaultModel> faults;
      if (fault_options_) {
        faults.emplace(*fault_options_);
        options.faults = &*faults;
        options.failover_planner = PlannerOptions();
      }
      auto result = executor.Execute(plan, sp.assignment, options);
      if (!result.ok()) {
        std::printf("execution error: %s\n", result.status().ToString().c_str());
        return;
      }
      std::printf("%s", result->table.ToDisplayString(cat_, 12).c_str());
      std::printf("result at %s; %zu transfer(s), %zu byte(s)\n",
                  cat_.server(result->result_server).name.c_str(),
                  result->network.total_messages(),
                  result->network.total_bytes());
      const exec::RecoveryStats& rec = result->recovery;
      if (rec.retries > 0 || rec.failovers > 0) {
        std::string excluded;
        for (catalog::ServerId s : rec.excluded_servers) {
          if (!excluded.empty()) excluded += ", ";
          excluded += cat_.server(s).name;
        }
        std::printf(
            "recovered: %zu retry(ies) over %zu transient fault(s), "
            "%ldus of backoff, %zu failover(s)%s%s\n",
            rec.retries, rec.transient_faults,
            static_cast<long>(rec.backoff_wait_us), rec.failovers,
            excluded.empty() ? "" : "; excluded: ",
            excluded.c_str());
      }
    });
  }

  /// EXPLAIN ANALYZE / \profile: execute with a QueryProfile attached, print
  /// the annotated tree, then harvest the measured cardinalities into the
  /// session feedback store (after rendering, so the drift column shows what
  /// the planner believed *before* this run).
  void ProfileSql(std::string_view sql_text) {
    WithSafePlan(sql_text, [&](const plan::QueryPlan& plan,
                               const planner::SafePlan& sp) {
      exec::DistributedExecutor executor(cluster_, auths_);
      exec::ExecutionOptions options;
      options.enforce_releases = enforce_;
      options.requestor = requestor_;
      options.threads = ExecThreads();
      std::optional<exec::FaultModel> faults;
      if (fault_options_) {
        faults.emplace(*fault_options_);
        options.faults = &*faults;
        options.failover_planner = PlannerOptions();
      }
      obs::QueryProfile profile;
      options.profile = &profile;
      auto result = executor.Execute(plan, sp.assignment, options);
      if (!result.ok()) {
        std::printf("execution error: %s\n", result.status().ToString().c_str());
        return;
      }
      exec::AnnotateEstimates(cat_, &stats_, &feedback_, plan, profile);
      std::printf("%s", exec::RenderExplain(cat_, &stats_, &feedback_, plan,
                                            &profile)
                            .c_str());
      const std::size_t harvested =
          plan::HarvestActualCardinalities(cat_, plan, profile, feedback_);
      std::printf("%zu cardinality(ies) fed back (%zu in the session store)\n",
                  harvested, feedback_.size());
    });
  }

  void SearchOrders(std::string_view sql_text) {
    auto spec = sql::ParseAndBind(cat_, sql_text);
    if (!spec.ok()) {
      std::printf("error: %s\n", spec.status().ToString().c_str());
      return;
    }
    planner::FeasiblePlanSearch search(cat_, auths_);
    planner::PlanSearchOptions options;
    options.planner_options = PlannerOptions();
    options.threads = threads_;
    auto result = search.Search(*spec, options);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("tried %zu order(s), %zu feasible; cheapest (est. %.0f bytes):\n%s",
                result->orders_tried, result->orders_feasible,
                result->estimated_bytes, result->plan.ToString(cat_).c_str());
  }

  /// \serve: the same query from `clients_` concurrent client threads
  /// through the session's FrontDoor. The first request of a shape plans
  /// cold; the rest hit the plan cache, so the printed per-request stats
  /// show the cold/cached split directly.
  void ServeSql(std::string_view sql_text) {
    if (front_door_ == nullptr) {
      serve::ServeOptions options;
      options.max_concurrent = clients_;
      options.exec_threads = 1;
      front_door_ = std::make_unique<serve::FrontDoor>(cat_, auths_, cluster_,
                                                       &stats_, options);
    }
    const std::string sql(sql_text);
    const std::size_t n = clients_;
    std::vector<Result<serve::Response>> responses(n, InternalError("unset"));
    {
      std::vector<std::thread> clients;
      clients.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        clients.emplace_back([&, i] {
          serve::Request request;
          request.sql = sql;
          request.requestor = requestor_;
          request.enforce_releases = enforce_;
          responses[i] = front_door_->Serve(request);
        });
      }
      for (std::thread& t : clients) t.join();
    }
    std::size_t ok = 0, hits = 0;
    std::int64_t min_us = 0, max_us = 0;
    const serve::Response* shown = nullptr;
    for (const Result<serve::Response>& r : responses) {
      if (!r.ok()) continue;
      ++ok;
      if (r->plan_cache_hit) ++hits;
      if (shown == nullptr || r->total_us < min_us) min_us = r->total_us;
      if (shown == nullptr || r->total_us > max_us) max_us = r->total_us;
      if (shown == nullptr) shown = &*r;
    }
    if (shown == nullptr) {
      std::printf("serve error: %s\n",
                  responses[0].status().ToString().c_str());
      return;
    }
    std::printf("%s", shown->table.ToDisplayString(cat_, 12).c_str());
    std::printf(
        "%zu/%zu request(s) ok, %zu plan-cache hit(s); latency %ld..%ldus; "
        "epoch %llu\n",
        ok, n, hits, static_cast<long>(min_us), static_cast<long>(max_us),
        static_cast<unsigned long long>(shown->policy_epoch));
    const serve::FrontDoorStats stats = front_door_->Stats();
    std::printf(
        "front door: %llu request(s), plan cache %llu hit(s)/%llu miss(es), "
        "CanView memo %llu hit(s)/%llu miss(es)\n",
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.plan_cache_hits),
        static_cast<unsigned long long>(stats.plan_cache_misses),
        static_cast<unsigned long long>(stats.canview_hits),
        static_cast<unsigned long long>(stats.canview_misses));
  }

  /// "\grant S a[,b] [on l=r[,l=r]]" — builds the rule from names.
  Result<authz::Authorization> ParseRuleSpec(std::string_view arg) {
    static constexpr const char* kUsage =
        "usage: SERVER attr[,attr...] [on left=right[,left=right...]]";
    std::istringstream iss{std::string(arg)};
    std::string server, attrs, kw, pairs;
    iss >> server >> attrs;
    if (server.empty() || attrs.empty()) return InvalidArgumentError(kUsage);
    if (iss >> kw) {
      if (kw != "on" && kw != "ON") return InvalidArgumentError(kUsage);
      iss >> pairs;
      if (pairs.empty()) return InvalidArgumentError(kUsage);
    }
    authz::Authorization auth;
    CISQP_ASSIGN_OR_RETURN(auth.server, cat_.FindServer(server));
    for (const std::string& name : SplitString(attrs, ',')) {
      CISQP_ASSIGN_OR_RETURN(catalog::AttributeId id, cat_.FindAttribute(name));
      auth.attributes.Insert(id);
    }
    std::vector<authz::JoinAtom> atoms;
    for (const std::string& pair : SplitString(pairs, ',')) {
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) return InvalidArgumentError(kUsage);
      CISQP_ASSIGN_OR_RETURN(catalog::AttributeId l,
                             cat_.FindAttribute(pair.substr(0, eq)));
      CISQP_ASSIGN_OR_RETURN(catalog::AttributeId r,
                             cat_.FindAttribute(pair.substr(eq + 1)));
      if (l == r) {
        return InvalidArgumentError("join atom needs two distinct attributes: " +
                                    pair);
      }
      atoms.push_back(authz::JoinAtom::Make(l, r));
    }
    auth.path = authz::JoinPath::FromAtoms(std::move(atoms));
    return auth;
  }

  /// \grant / \revoke: edits the session policy, and — when a front door is
  /// live — applies the same edit incrementally (delta-chase + selective
  /// cache retention) and prints the closure-delta summary.
  void EditRule(std::string_view arg, bool grant) {
    Result<authz::Authorization> rule = ParseRuleSpec(arg);
    if (!rule.ok()) {
      std::printf("error: %s\n", rule.status().ToString().c_str());
      return;
    }
    const Status applied =
        grant ? auths_.Add(cat_, *rule) : auths_.Remove(cat_, *rule);
    if (!applied.ok()) {
      std::printf("error: %s\n", applied.ToString().c_str());
      return;
    }
    std::printf("%s %s (%zu rule(s) now)\n", grant ? "granted" : "revoked",
                rule->ToString(cat_).c_str(), auths_.size());
    if (front_door_ == nullptr) return;
    Result<authz::ClosureDelta> delta =
        grant ? front_door_->AddRule(*rule) : front_door_->RevokeRule(*rule);
    if (!delta.ok()) {
      std::printf("front door error: %s\n", delta.status().ToString().c_str());
      return;
    }
    const serve::FrontDoorStats stats = front_door_->Stats();
    if (delta->full) {
      std::printf(
          "front door: epoch %llu, full cache sweep (closure recomputed "
          "lazily)\n",
          static_cast<unsigned long long>(front_door_->policy_epoch()));
    } else {
      std::printf(
          "front door: epoch %llu, closure delta +%zu/-%zu rule(s) over %zu "
          "relation(s); %llu plan(s) retained across all edits\n",
          static_cast<unsigned long long>(front_door_->policy_epoch()),
          delta->added_rules, delta->removed_rules, delta->relations.size(),
          static_cast<unsigned long long>(stats.plan_cache_retained));
    }
  }

  void SetFaults(std::string_view arg) {
    if (arg.empty() || arg == "off") {
      fault_options_.reset();
      std::printf("fault injection off\n");
      return;
    }
    auto spec = exec::ParseFaultSpec(arg);
    if (!spec.ok()) {
      std::printf("error: %s\n", spec.status().ToString().c_str());
      return;
    }
    auto options = spec->Resolve(cat_);
    if (!options.ok()) {
      std::printf("error: %s\n", options.status().ToString().c_str());
      return;
    }
    fault_options_ = std::move(*options);
    std::printf(
        "fault injection on: seed=%llu, drop=%.3f, %zu outage window(s)\n",
        static_cast<unsigned long long>(fault_options_->seed),
        fault_options_->drop_probability, fault_options_->outages.size());
  }

  void SetRequestor(std::string_view arg) {
    if (arg == "none" || arg.empty()) {
      requestor_.reset();
      std::printf("requestor cleared\n");
      return;
    }
    auto server = cat_.FindServer(arg);
    if (!server.ok()) {
      std::printf("error: %s\n", server.status().ToString().c_str());
      return;
    }
    requestor_ = *server;
    std::printf("results will be delivered to %s\n",
                cat_.server(*requestor_).name.c_str());
  }

  planner::SafePlannerOptions PlannerOptions() const {
    planner::SafePlannerOptions options;
    options.requestor = requestor_;
    return options;
  }

  static constexpr const char* kHelp =
      "  SQL                plan + execute safely\n"
      "  EXPLAIN SQL        show the plan with estimated cardinalities\n"
      "  EXPLAIN ANALYZE SQL  execute + show estimate-vs-actual drift\n"
      "  \\profile SQL       same as EXPLAIN ANALYZE\n"
      "  \\schema            show the catalog\n"
      "  \\policy            show the authorizations\n"
      "  \\matrix            base-visibility matrix (who sees what)\n"
      "  \\plan SQL          show the query tree plan\n"
      "  \\trace SQL         execute with tracing, show the span tree\n"
      "  \\tracejson SQL     execute with tracing, emit Chrome trace JSON\n"
      "  \\plantrace SQL     show the planning trace (Fig. 7 style)\n"
      "  \\metrics           show the session metrics snapshot\n"
      "  \\audit             show the authorization-decision audit log\n"
      "  \\releases SQL      show the releases of the safe assignment\n"
      "  \\dot SQL           Graphviz DOT of the assigned plan\n"
      "  \\search SQL        feasibility-aware join-order search\n"
      "  \\serve SQL         the query from --clients concurrent clients via\n"
      "                     the serving front door (plan + CanView caches)\n"
      "  \\grant S a[,b] [on l=r[,l=r]]  add rule [{a,b}, {(l,r)}] -> S;\n"
      "                     the front door updates its closure incrementally\n"
      "  \\revoke S a[,b] [on l=r[,l=r]] remove that exact rule\n"
      "  \\requestor NAME    deliver results to this server (or 'none')\n"
      "  \\enforce on|off    toggle runtime enforcement\n"
      "  \\faults SPEC|off   inject faults: seed=N,drop=P,down=S@A..B,kill=S@A\n"
      "  \\quit              exit\n";

  catalog::Catalog cat_;
  authz::AuthorizationSet auths_;
  exec::Cluster cluster_;
  plan::StatsCatalog stats_;      ///< exact stats over the populated tables
  plan::StatsFeedback feedback_;  ///< measured cardinalities, session-wide
  /// --threads resolved for operator execution (0 = hardware concurrency).
  std::size_t ExecThreads() const {
    return threads_ == 0 ? ThreadPool::HardwareConcurrency() : threads_;
  }

  std::size_t threads_ = 0;  ///< 0 = hardware concurrency
  std::size_t clients_ = 8;  ///< concurrent clients (and slots) for \serve
  /// Built on first \serve; persists so the plan/CanView caches accumulate
  /// across the session.
  std::unique_ptr<serve::FrontDoor> front_door_;
  std::optional<catalog::ServerId> requestor_;
  bool enforce_ = true;
  /// Installed fault schedule; every query replays it from a fresh model.
  std::optional<exec::FaultModelOptions> fault_options_;

 public:
  /// Installs a --faults spec from the command line (after construction, so
  /// server names resolve against the loaded federation).
  bool InstallFaultSpec(std::string_view spec_text) {
    SetFaults(spec_text);
    return fault_options_.has_value() || spec_text == "off";
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::size_t clients = 8;
  const char* fed_path = nullptr;
  const char* fault_spec = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--clients") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--clients requires a count\n");
        return 1;
      }
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "--clients must be a positive integer\n");
        return 1;
      }
      clients = static_cast<std::size_t>(parsed);
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads requires a count\n");
        return 1;
      }
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "--threads must be a positive integer\n");
        return 1;
      }
      threads = static_cast<std::size_t>(parsed);
    } else if (arg == "--faults") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "--faults requires a spec "
                     "(seed=N,drop=P,down=S@A..B,kill=S@A)\n");
        return 1;
      }
      fault_spec = argv[++i];
    } else if (fed_path == nullptr) {
      fed_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: cisqpsh [--threads N] [--clients N] "
                   "[--faults SPEC] [federation.fed]\n");
      return 1;
    }
  }
  const auto run = [&](catalog::Catalog cat, authz::AuthorizationSet auths) {
    Shell shell(std::move(cat), std::move(auths), threads, clients);
    if (fault_spec != nullptr && !shell.InstallFaultSpec(fault_spec)) return 1;
    return shell.Run();
  };
  if (fed_path != nullptr) {
    std::ifstream file(fed_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", fed_path);
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    auto fed = dsl::ParseFederation(text.str());
    if (!fed.ok()) {
      std::fprintf(stderr, "parse error: %s\n", fed.status().ToString().c_str());
      return 1;
    }
    return run(std::move(fed->catalog), std::move(fed->authorizations));
  }
  catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  return run(std::move(cat), std::move(auths));
}
