#include "common/thread_pool.hpp"

#include <algorithm>

namespace cisqp {

std::size_t ThreadPool::HardwareConcurrency() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {
std::atomic<std::uint64_t> g_pools_constructed{0};
}  // namespace

std::uint64_t ThreadPool::constructed_count() noexcept {
  return g_pools_constructed.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  g_pools_constructed.fetch_add(1, std::memory_order_relaxed);
  const std::size_t target = threads == 0 ? HardwareConcurrency() : threads;
  workers_.reserve(target - std::min<std::size_t>(target, 1));
  for (std::size_t i = 1; i < target; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cisqp
