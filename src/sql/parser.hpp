// Recursive-descent parser for the select-from-where dialect:
//
//   query   := SELECT [DISTINCT] select FROM table
//              (JOIN table ON conds)* (WHERE conds)?
//   select  := '*' | name (',' name)*
//   table   := identifier
//   conds   := cond (AND cond)*
//   cond    := name op (literal | name)          -- WHERE
//            | name '=' name                     -- ON
//   name    := identifier ('.' identifier)?
//   op      := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//
// This is exactly the paper's §2 query class: equi-joins in FROM,
// conjunctive selection in WHERE.
#pragma once

#include "common/status.hpp"
#include "sql/ast.hpp"

namespace cisqp::sql {

/// Parses `text` into an AST. Fails with kInvalidArgument and a byte offset
/// on syntax errors.
Result<AstQuery> Parse(std::string_view text);

}  // namespace cisqp::sql
