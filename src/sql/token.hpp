// Token model for the select-from-where dialect (paper §2 query class).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cisqp::sql {

enum class TokenKind : std::uint8_t {
  kIdentifier,   ///< bare or to-be-dotted name part
  kInteger,      ///< 64-bit integer literal
  kFloat,        ///< double literal
  kString,       ///< single-quoted string literal (quotes stripped)
  kKeyword,      ///< SELECT FROM JOIN ON WHERE AND (case-insensitive)
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kEq,           ///< =
  kNe,           ///< <> or !=
  kLt, kLe, kGt, kGe,
  kEnd,
};

std::string_view TokenKindName(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< raw text (uppercased for keywords)
  std::size_t offset = 0;  ///< byte offset in the input, for diagnostics
};

}  // namespace cisqp::sql
