// Internal machinery shared by the batch chase (chase.cpp) and the
// incremental closure maintainer (incremental.cpp): the edge-visibility
// bitsets, the per-endpoint join-edge index, the subsumption-aware rule
// pool, and the semi-naïve fixpoint loop itself.
//
// The loop is parameterized by `delta_begin`: the batch chase starts it at 0
// (every initial rule is delta), while an incremental grant appends the new
// rule to a persistent pool and starts the loop at the old pool size — the
// textbook semi-naïve delta round, so a grant only pays for the pairs its
// own derivations introduce. Nothing here is part of the public authz API.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "authz/authorization.hpp"
#include "authz/chase.hpp"
#include "catalog/catalog.hpp"

namespace cisqp::authz::chase_internal {

/// Fixed-width bitset over the catalog's join edges. Federations declare
/// tens of edges, so one or two words cover the whole schema.
class EdgeBits {
 public:
  explicit EdgeBits(std::size_t words) : words_(words, 0) {}

  void Set(std::size_t bit) {
    words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }

  /// Invokes `fn(edge_index)` for every edge set in
  /// (a.left & b.right) | (a.right & b.left) — the edges whose endpoints are
  /// visible one through each rule, in ascending edge order.
  template <typename Fn>
  static void ForEachJoinable(const EdgeBits& left_a, const EdgeBits& right_a,
                              const EdgeBits& left_b, const EdgeBits& right_b,
                              Fn&& fn) {
    for (std::size_t w = 0; w < left_a.words_.size(); ++w) {
      std::uint64_t word = (left_a.words_[w] & right_b.words_[w]) |
                           (right_a.words_[w] & left_b.words_[w]);
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        fn((w << 6) + static_cast<std::size_t>(bit));
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// cat.join_edges() indexed by endpoint attribute: for each attribute, the
/// edges it is the left (resp. right) endpoint of. Built once per closure
/// and shared read-only by every server task.
class EdgeIndex {
 public:
  explicit EdgeIndex(const catalog::Catalog& cat) : cat_(cat) {
    const std::vector<catalog::JoinEdge>& edges = cat.join_edges();
    words_ = (edges.size() + 63) / 64;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      left_of_[edges[e].left].push_back(e);
      right_of_[edges[e].right].push_back(e);
    }
  }

  const catalog::JoinEdge& edge(std::size_t e) const {
    return cat_.join_edges()[e];
  }
  std::size_t words() const noexcept { return words_; }

  /// The edges whose left (resp. right) endpoint is visible in `attrs`.
  EdgeBits LeftVisible(const IdSet& attrs) const {
    return Collect(left_of_, attrs);
  }
  EdgeBits RightVisible(const IdSet& attrs) const {
    return Collect(right_of_, attrs);
  }

 private:
  EdgeBits Collect(
      const std::map<catalog::AttributeId, std::vector<std::size_t>>& index,
      const IdSet& attrs) const {
    EdgeBits bits(words_);
    for (const catalog::AttributeId attr : attrs) {
      const auto it = index.find(attr);
      if (it == index.end()) continue;
      for (const std::size_t e : it->second) bits.Set(e);
    }
    return bits;
  }

  const catalog::Catalog& cat_;
  std::size_t words_ = 0;
  std::map<catalog::AttributeId, std::vector<std::size_t>> left_of_;
  std::map<catalog::AttributeId, std::vector<std::size_t>> right_of_;
};

/// Working form of a server's rule set: the rules in derivation order, each
/// with its edge-visibility masks, plus a per-path subsumption index.
class RulePool {
 public:
  explicit RulePool(const EdgeIndex& index) : index_(&index) {}

  struct Rule {
    IdSet attrs;
    JoinPath path;
    EdgeBits left;   ///< edges whose left endpoint is in attrs
    EdgeBits right;  ///< edges whose right endpoint is in attrs
  };

  /// Adds unless an existing same-path rule already grants a superset of
  /// attributes. Returns true when the pool changed.
  bool AddIfNovel(IdSet attrs, JoinPath path) {
    std::vector<IdSet>& grants = by_path_[path];
    for (const IdSet& existing : grants) {
      if (attrs.IsSubsetOf(existing)) return false;
    }
    grants.push_back(attrs);
    EdgeBits left = index_->LeftVisible(attrs);
    EdgeBits right = index_->RightVisible(attrs);
    rules_.push_back(Rule{std::move(attrs), std::move(path), std::move(left),
                          std::move(right)});
    return true;
  }

  std::size_t size() const noexcept { return rules_.size(); }
  const Rule& rule(std::size_t i) const { return rules_[i]; }
  const std::vector<Rule>& rules() const noexcept { return rules_; }

 private:
  const EdgeIndex* index_;
  std::vector<Rule> rules_;
  std::map<JoinPath, std::vector<IdSet>> by_path_;
};

/// The kResourceExhausted error every cap site reports identically.
Status ExceededCap(const ChaseOptions& options);

/// Semi-naïve fixpoint over `pool` for one server, starting from the delta
/// `[delta_begin, pool.size())`. Round k pairs only the delta (rules first
/// seen in round k-1) against everything older, so each unordered rule pair
/// is visited exactly once over the whole run; the edge masks restrict a
/// pair to the edges it can fire. New derivations are buffered per round and
/// inserted after the scan — rules are never moved while references into the
/// pool are live, so nothing is copied per pair.
///
/// `stats` accumulates across the call; the cap compares the accumulated
/// stats.derived_rules against options.max_derived_rules, so a caller
/// spreading one budget over several calls seeds the field with the running
/// total. Returns kResourceExhausted when the cap trips (the pool is then
/// partially extended and should be discarded).
Status RunSemiNaive(const catalog::Catalog& cat, const EdgeIndex& index,
                    RulePool& pool, std::size_t delta_begin,
                    catalog::ServerId server, const ChaseOptions& options,
                    ChaseStats& stats);

}  // namespace cisqp::authz::chase_internal
