// Per-query profiler data model (DESIGN.md §13).
//
// A `QueryProfile` is an opt-in, per-execution recording: the executor (and
// anything else that wants attribution) fills one `OperatorStats` per plan
// node — rows in/out, batches, operator wall time, hash-table build/probe
// work, dictionary filter hits, bytes shipped — plus one `TransferStats`
// per inter-server hop, each carrying the query's trace context (query id,
// parent span id) so federation hops correlate with the span recording.
//
// Unlike the Tracer/MetricsRegistry singletons, a QueryProfile is a plain
// value owned by whoever requested profiling (EXPLAIN ANALYZE, a bench, a
// test): no global state, no enablement flag, naturally thread-safe as long
// as one profile is attached to one execution (two concurrent queries use
// two profiles). Execution paths pay one pointer test per operator when no
// profile is attached, preserving the zero-cost-when-disabled contract.
//
// This header deliberately depends on nothing above `std` so the profiler
// data model can live in the obs layer; rendering against a catalog/plan
// (the annotated EXPLAIN ANALYZE tree) lives in exec/explain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cisqp::obs {

/// Runtime statistics of one plan-tree operator, indexed by plan node id.
struct OperatorStats {
  int node_id = -1;
  std::string op;           ///< "relation" / "select" / "project" / "join"
  std::string server;       ///< name of the executing (master) server
  std::uint64_t invocations = 0;  ///< times the operator ran (failover reruns)
  std::uint64_t batches = 0;      ///< batches processed (1 per invocation today)
  std::uint64_t rows_in_left = 0; ///< rows from the left/only child
  std::uint64_t rows_in_right = 0;///< rows from the right child (joins)
  std::uint64_t rows_out = 0;     ///< rows produced
  std::int64_t time_us = 0;       ///< operator wall-clock microseconds
  double est_rows = -1.0;         ///< planner estimate; <0 while unannotated
  // Vectorized-kernel counters (algebra::KernelStats, copied per node).
  std::uint64_t hash_build_rows = 0;
  std::uint64_t hash_probe_rows = 0;
  std::uint64_t hash_matches = 0;
  std::uint64_t dict_filter_lookups = 0;
  std::uint64_t dict_filter_hits = 0;
  std::uint64_t rows_hashed = 0;  ///< row-hash computations (O(build+probe))
  // Morsel-parallel execution counters (zero on the sequential path).
  std::uint64_t morsels = 0;      ///< morsels dispatched across all regions
  std::uint64_t partitions = 0;   ///< radix partitions fanned out (joins/distinct)
  /// Busy microseconds per pool worker inside this operator's parallel
  /// sections (index = worker id; 0 = the participating caller thread).
  std::vector<std::int64_t> worker_busy_us;
  /// Bytes shipped by this node's transfers (semi-join steps, operand moves).
  std::uint64_t bytes_shipped = 0;

  /// rows_out / rows_in (joins: over the input pair product); 1 when no
  /// input rows were seen.
  double Selectivity() const;
  /// actual/estimated cardinality ratio; <0 when no estimate is attached.
  double DriftRatio() const;
};

/// One inter-server hop, with the trace context it carried on the wire.
struct TransferStats {
  int node_id = -1;
  std::string from;
  std::string to;
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;
  std::int64_t query_id = -1;  ///< trace context: owning query
  int parent_span = -1;        ///< trace context: span id of the sending hop
  std::string what;            ///< transfer description
};

/// The complete profile of one query execution.
class QueryProfile {
 public:
  /// Process-unique id for the next profiled query (monotonic, thread-safe).
  static std::int64_t NextQueryId();

  std::int64_t query_id = 0;
  std::int64_t duration_us = 0;   ///< whole-execution wall time
  std::string query_text;         ///< optional: the SQL that was profiled
  std::vector<OperatorStats> operators;  ///< indexed by plan node id
  std::vector<TransferStats> transfers;  ///< in shipment order

  /// Stats slot of `node_id`, growing the table as needed.
  OperatorStats& OpAt(int node_id);
  /// Read-only slot; nullptr when the node was never profiled.
  const OperatorStats* FindOp(int node_id) const;

  /// Sum of bytes over all recorded transfers.
  std::uint64_t TotalBytesShipped() const;

  /// Machine-readable JSON:
  /// {"query_id":..,"duration_us":..,"operators":[{...}],"transfers":[{...}]}
  std::string ToJson() const;
};

}  // namespace cisqp::obs
