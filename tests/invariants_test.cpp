// Randomized algebraic-invariant sweeps (TEST_P) for the value types the
// authorization model rests on: IdSet and JoinPath set algebra, profile
// composition laws, and the monotonicity properties CanView relies on.
#include <gtest/gtest.h>

#include "authz/profile.hpp"
#include "common/idset.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace cisqp {
namespace {

class IdSetLaws : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  IdSet RandomSet(Rng& rng, std::size_t universe = 32) {
    IdSet out;
    const std::size_t n = rng.UniformIndex(universe);
    for (std::size_t i = 0; i < n; ++i) {
      out.Insert(static_cast<IdSet::value_type>(rng.UniformIndex(universe)));
    }
    return out;
  }
};

TEST_P(IdSetLaws, SetAlgebra) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const IdSet a = RandomSet(rng);
    const IdSet b = RandomSet(rng);
    const IdSet c = RandomSet(rng);

    // Union: commutative, associative, idempotent, identity.
    EXPECT_EQ(IdSet::Union(a, b), IdSet::Union(b, a));
    EXPECT_EQ(IdSet::Union(IdSet::Union(a, b), c),
              IdSet::Union(a, IdSet::Union(b, c)));
    EXPECT_EQ(IdSet::Union(a, a), a);
    EXPECT_EQ(IdSet::Union(a, IdSet{}), a);

    // Intersection distributes over union.
    EXPECT_EQ(IdSet::Intersection(a, IdSet::Union(b, c)),
              IdSet::Union(IdSet::Intersection(a, b), IdSet::Intersection(a, c)));

    // Difference laws.
    EXPECT_EQ(IdSet::Union(IdSet::Difference(a, b), IdSet::Intersection(a, b)), a);
    EXPECT_FALSE(IdSet::Difference(a, b).Intersects(b));

    // Subset is a partial order consistent with union.
    EXPECT_TRUE(a.IsSubsetOf(IdSet::Union(a, b)));
    EXPECT_TRUE(IdSet::Intersection(a, b).IsSubsetOf(a));
    if (a.IsSubsetOf(b) && b.IsSubsetOf(a)) {
      EXPECT_EQ(a, b);
    }

    // Intersects ⇔ non-empty intersection.
    EXPECT_EQ(a.Intersects(b), !IdSet::Intersection(a, b).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdSetLaws,
                         ::testing::Values(1u, 2u, 3u, 7u, 1234u));

class JoinPathLaws : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    // A universe of attributes spread over several relations so atoms are
    // always cross-relation.
    const auto s = cat_.AddServer("s").value();
    for (int r = 0; r < 6; ++r) {
      CISQP_CHECK(cat_.AddRelation("R" + std::to_string(r), s,
                                   {{"A" + std::to_string(r) + "0",
                                     catalog::ValueType::kInt64},
                                    {"A" + std::to_string(r) + "1",
                                     catalog::ValueType::kInt64}},
                                   {})
                      .ok());
    }
  }

  authz::JoinAtom RandomAtom(Rng& rng) {
    while (true) {
      const auto a = static_cast<catalog::AttributeId>(
          rng.UniformIndex(cat_.attribute_count()));
      const auto b = static_cast<catalog::AttributeId>(
          rng.UniformIndex(cat_.attribute_count()));
      if (a != b && cat_.attribute(a).relation != cat_.attribute(b).relation) {
        return authz::JoinAtom::Make(a, b);
      }
    }
  }

  authz::JoinPath RandomPath(Rng& rng) {
    std::vector<authz::JoinAtom> atoms;
    const std::size_t n = rng.UniformIndex(5);
    for (std::size_t i = 0; i < n; ++i) atoms.push_back(RandomAtom(rng));
    return authz::JoinPath::FromAtoms(std::move(atoms));
  }

  catalog::Catalog cat_;
};

TEST_P(JoinPathLaws, PathAlgebra) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const authz::JoinPath a = RandomPath(rng);
    const authz::JoinPath b = RandomPath(rng);
    const authz::JoinPath c = RandomPath(rng);

    EXPECT_EQ(authz::JoinPath::Union(a, b), authz::JoinPath::Union(b, a));
    EXPECT_EQ(authz::JoinPath::Union(authz::JoinPath::Union(a, b), c),
              authz::JoinPath::Union(a, b, c));
    EXPECT_EQ(authz::JoinPath::Union(a, a), a);
    EXPECT_TRUE(a.IsSubsetOf(authz::JoinPath::Union(a, b)));

    // Attributes/Relations are monotone under union.
    EXPECT_TRUE(a.Attributes().IsSubsetOf(
        authz::JoinPath::Union(a, b).Attributes()));
    EXPECT_TRUE(a.Relations(cat_).IsSubsetOf(
        authz::JoinPath::Union(a, b).Relations(cat_)));

    // Canonical: rebuilding from the atom list is the identity.
    EXPECT_EQ(authz::JoinPath::FromAtoms(
                  std::vector<authz::JoinAtom>(a.atoms().begin(), a.atoms().end())),
              a);
  }
}

TEST_P(JoinPathLaws, ProfileCompositionLaws) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 100; ++round) {
    // Random base profiles over distinct relations.
    const auto rel_l = static_cast<catalog::RelationId>(rng.UniformIndex(3));
    const auto rel_r = static_cast<catalog::RelationId>(3 + rng.UniformIndex(3));
    authz::Profile l = authz::Profile::OfBaseRelation(cat_, rel_l);
    authz::Profile r = authz::Profile::OfBaseRelation(cat_, rel_r);
    l.join = RandomPath(rng);
    r.join = RandomPath(rng);

    const authz::JoinPath j{authz::JoinAtom::Make(
        cat_.relation(rel_l).attributes[0], cat_.relation(rel_r).attributes[0])};
    const authz::Profile joined = authz::Profile::Join(l, r, j);

    // Fig. 4 join rule: componentwise monotone.
    EXPECT_TRUE(l.pi.IsSubsetOf(joined.pi));
    EXPECT_TRUE(r.pi.IsSubsetOf(joined.pi));
    EXPECT_TRUE(l.join.IsSubsetOf(joined.join));
    EXPECT_TRUE(j.IsSubsetOf(joined.join));

    // Join is symmetric up to identical profiles.
    EXPECT_EQ(joined, authz::Profile::Join(r, l, j));

    // σ then π commute on disjoint attribute choices (Fig. 4 rows 1-2).
    const IdSet sigma_attrs{joined.pi.ids().front()};
    const IdSet pi_attrs = joined.pi;
    const authz::Profile sp = authz::Profile::Project(
        authz::Profile::Select(joined, sigma_attrs), pi_attrs);
    const authz::Profile ps = authz::Profile::Select(
        authz::Profile::Project(joined, pi_attrs), sigma_attrs);
    EXPECT_EQ(sp, ps);

    // Selecting never shrinks the visible set; projecting to π keeps join.
    EXPECT_TRUE(joined.VisibleAttributes().IsSubsetOf(sp.VisibleAttributes()));
    EXPECT_EQ(sp.join, joined.join);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPathLaws,
                         ::testing::Values(11u, 22u, 33u));

TEST(CanViewMonotonicity, WiderGrantsNeverRevoke) {
  // If CanView(p, s) holds under a policy, it holds after adding any rule.
  cisqp::testing::MedicalFixture fix;
  Rng rng(5);
  authz::AuthorizationSet grown = fix.auths;
  ASSERT_OK(grown.Add(fix.cat, "S_D", {"Patient", "Disease"}, {}));
  for (const authz::Authorization& rule : fix.auths.All()) {
    const authz::Profile probe{rule.attributes, rule.path, {}};
    EXPECT_TRUE(fix.auths.CanView(probe, rule.server));
    EXPECT_TRUE(grown.CanView(probe, rule.server));
  }
}

}  // namespace
}  // namespace cisqp
