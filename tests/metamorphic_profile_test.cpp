// Metamorphic tests for the profile algebra (paper Def. 3.2, Fig. 4):
// composition laws that must hold for *every* profile, checked over random
// expression trees built on randomly generated federations. Unlike
// profile_test.cpp, which pins down the Fig. 4 rules on hand-built examples,
// these tests assert relational identities between different compositions of
// the same operators — if any rule's implementation drifts (e.g. Project
// forgetting to carry sigma), some law breaks on some random tree.
#include <gtest/gtest.h>

#include <cstdint>

#include "authz/profile.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace cisqp::authz {
namespace {

catalog::Catalog RandomCatalog(std::uint64_t seed) {
  Rng rng(seed);
  workload::FederationConfig config;
  config.servers = 3;
  config.relations = 4;
  config.extra_edge_prob = 0.5;  // plenty of join edges to draw paths from
  return workload::GenerateFederation(config, rng).catalog;
}

/// Project and Select require their attribute set to come from the input
/// schema (profile.cpp enforces it), so operands are drawn from a universe.
IdSet RandomSubsetOf(const IdSet& universe, Rng& rng, double keep = 0.6) {
  IdSet out;
  for (IdSet::value_type id : universe) {
    if (rng.Chance(keep)) out.Insert(id);
  }
  return out;
}

JoinPath RandomJoinPath(const catalog::Catalog& cat, Rng& rng) {
  JoinPath path;
  for (const catalog::JoinEdge& edge : cat.join_edges()) {
    if (rng.Chance(0.5)) path.Insert(JoinAtom::Make(edge.left, edge.right));
  }
  return path;
}

/// A random composition tree over the three Fig. 4 operators, bottoming out
/// at base-relation profiles.
Profile RandomProfile(const catalog::Catalog& cat, Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(0.3)) {
    return Profile::OfBaseRelation(
        cat, static_cast<catalog::RelationId>(
                 rng.UniformIndex(cat.relation_count())));
  }
  switch (rng.UniformIndex(3)) {
    case 0: {
      const Profile child = RandomProfile(cat, rng, depth - 1);
      return Profile::Project(child, RandomSubsetOf(child.pi, rng));
    }
    case 1: {
      const Profile child = RandomProfile(cat, rng, depth - 1);
      return Profile::Select(child, RandomSubsetOf(child.pi, rng));
    }
    default:
      return Profile::Join(RandomProfile(cat, rng, depth - 1),
                           RandomProfile(cat, rng, depth - 1),
                           RandomJoinPath(cat, rng));
  }
}

/// Runs `law` over many random (catalog, profile-tree, operand) draws.
template <typename Law>
void ForEachRandomTree(Law law) {
  for (std::uint64_t cat_seed = 1; cat_seed <= 5; ++cat_seed) {
    const catalog::Catalog cat = RandomCatalog(cat_seed);
    Rng rng(1000 + cat_seed);
    for (int tree = 0; tree < 40; ++tree) {
      law(cat, rng);
    }
  }
}

TEST(ProfileAlgebraLaws, ProjectIsIdempotent) {
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile p = RandomProfile(cat, rng, 4);
    const IdSet x = RandomSubsetOf(p.pi, rng);
    const Profile once = Profile::Project(p, x);
    EXPECT_EQ(Profile::Project(once, x), once) << once.ToString(cat);
  });
}

TEST(ProfileAlgebraLaws, SelectIsIdempotent) {
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile p = RandomProfile(cat, rng, 4);
    const IdSet x = RandomSubsetOf(p.pi, rng);
    const Profile once = Profile::Select(p, x);
    EXPECT_EQ(Profile::Select(once, x), once) << once.ToString(cat);
  });
}

TEST(ProfileAlgebraLaws, SelectsCommute) {
  // Rσ accumulates as a set union, so the order of two selections cannot
  // matter.
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile p = RandomProfile(cat, rng, 4);
    const IdSet x = RandomSubsetOf(p.pi, rng);
    const IdSet y = RandomSubsetOf(p.pi, rng);
    EXPECT_EQ(Profile::Select(Profile::Select(p, x), y),
              Profile::Select(Profile::Select(p, y), x))
        << p.ToString(cat);
  });
}

TEST(ProfileAlgebraLaws, ProjectAndSelectCommuteOnProfiles) {
  // On *profiles* σ-then-π equals π-then-σ whenever both orders are
  // well-formed (the selection must reference retained columns, y ⊆ x):
  // Project rewrites Rπ and carries Rσ, Select extends Rσ and carries Rπ —
  // the two touch disjoint components.
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile p = RandomProfile(cat, rng, 4);
    const IdSet x = RandomSubsetOf(p.pi, rng);
    const IdSet y = RandomSubsetOf(x, rng);
    EXPECT_EQ(Profile::Project(Profile::Select(p, y), x),
              Profile::Select(Profile::Project(p, x), y))
        << p.ToString(cat);
  });
}

TEST(ProfileAlgebraLaws, JoinProfileIsCommutative) {
  // Fig. 4 row 3 is a componentwise union — symmetric in its operands.
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile l = RandomProfile(cat, rng, 3);
    const Profile r = RandomProfile(cat, rng, 3);
    const JoinPath j = RandomJoinPath(cat, rng);
    EXPECT_EQ(Profile::Join(l, r, j), Profile::Join(r, l, j))
        << l.ToString(cat) << " vs " << r.ToString(cat);
  });
}

TEST(ProfileAlgebraLaws, JoinProfileIsAssociative) {
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile a = RandomProfile(cat, rng, 3);
    const Profile b = RandomProfile(cat, rng, 3);
    const Profile c = RandomProfile(cat, rng, 3);
    const JoinPath j1 = RandomJoinPath(cat, rng);
    const JoinPath j2 = RandomJoinPath(cat, rng);
    EXPECT_EQ(Profile::Join(Profile::Join(a, b, j1), c, j2),
              Profile::Join(a, Profile::Join(b, c, j2), j1));
  });
}

TEST(ProfileAlgebraLaws, JoinNeverShrinksAnyComponent) {
  // Information content only grows through a join: both operands' schema,
  // path, and selection attributes survive into the result.
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile l = RandomProfile(cat, rng, 3);
    const Profile r = RandomProfile(cat, rng, 3);
    const JoinPath j = RandomJoinPath(cat, rng);
    const Profile joined = Profile::Join(l, r, j);
    for (const Profile* side : {&l, &r}) {
      EXPECT_TRUE(side->pi.IsSubsetOf(joined.pi));
      EXPECT_TRUE(side->sigma.IsSubsetOf(joined.sigma));
      EXPECT_TRUE(side->join.IsSubsetOf(joined.join));
    }
    EXPECT_TRUE(j.IsSubsetOf(joined.join));
  });
}

TEST(ProfileAlgebraLaws, ProjectToOwnSchemaIsIdentity) {
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile p = RandomProfile(cat, rng, 4);
    EXPECT_EQ(Profile::Project(p, p.pi), p) << p.ToString(cat);
  });
}

TEST(ProfileAlgebraLaws, VisibleAttributesIsMonotoneUnderSelect) {
  // Def. 3.3 checks Rπ ∪ Rσ against the grant: selecting can only demand
  // more visibility, never less.
  ForEachRandomTree([](const catalog::Catalog& cat, Rng& rng) {
    const Profile p = RandomProfile(cat, rng, 4);
    const IdSet x = RandomSubsetOf(p.pi, rng);
    EXPECT_TRUE(p.VisibleAttributes().IsSubsetOf(
        Profile::Select(p, x).VisibleAttributes()));
  });
}

}  // namespace
}  // namespace cisqp::authz
