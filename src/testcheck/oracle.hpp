// Brute-force oracles for differential testing (DESIGN.md §11.2).
//
// Each oracle re-decides a question the production pipeline answers, with an
// implementation chosen for obviousness over speed:
//  * NaiveChaseOracle — the textbook naïve fixpoint over every ordered rule
//    pair and every schema edge, each round, until a round adds nothing
//    (quadratic per round; the production chase is semi-naïve and indexed);
//  * ExhaustivePlanOracle — builds every connected left-deep join order,
//    enumerates every Def. 4.1 assignment of every tree, judges each with the
//    independent release-based verifier, and reports feasibility plus the
//    cheapest safe assignment's cost under the shared cost model (the
//    production planner is the greedy two-traversal Fig. 6 heuristic inside
//    FeasiblePlanSearch);
//  * the single-site reference evaluator is `exec::ExecuteCentralized`,
//    re-exported here so harness code names all three oracles in one place.
#pragma once

#include <set>
#include <string>

#include "authz/authorization.hpp"
#include "exec/executor.hpp"
#include "plan/query_spec.hpp"
#include "plan/stats.hpp"

namespace cisqp::testcheck {

/// The textbook naïve chase closure. Deliberately dumb: every ordered pair
/// of the server's rules is retried against every schema join edge in every
/// round. `max_path_atoms` caps derived path length (0 = unlimited), with
/// the same semantics as authz::ChaseOptions::max_path_atoms.
authz::AuthorizationSet NaiveChaseOracle(const catalog::Catalog& cat,
                                         const authz::AuthorizationSet& auths,
                                         std::size_t max_path_atoms = 0);

/// Canonical form for policy equivalence: raw closures are insertion-order
/// sensitive (subsumption only looks backwards), so equivalence is judged on
/// the minimized rule multiset, which the policy determines uniquely.
std::multiset<std::string> CanonicalPolicy(const catalog::Catalog& cat,
                                           authz::AuthorizationSet set);

struct PlanOracleOptions {
  /// Cap on join orders examined — keep identical to the production
  /// PlanSearchOptions::max_orders of the same run so both sides decide
  /// feasibility over the same tree population.
  std::size_t max_orders = 64;
  /// Forwarded to the exhaustive assignment enumerator's runaway guard.
  std::size_t max_explored = 2'000'000;
};

struct PlanOracleResult {
  /// Some examined order admits at least one safe assignment.
  bool feasible = false;
  /// Cheapest safe assignment found anywhere (any order, any assignment),
  /// under MinCostSafePlanner::EstimateAssignmentBytes. Meaningful only
  /// when feasible.
  double min_cost_bytes = 0.0;
  std::size_t orders_examined = 0;
  std::size_t safe_assignments = 0;  ///< total safe assignments across orders
};

/// Decides feasibility and minimum cost by exhaustive enumeration: every
/// connected left-deep order of `spec`, every Def. 4.1 assignment, every
/// node checked by the release-based verifier. Fails only on malformed
/// specs or when the enumeration guard trips.
Result<PlanOracleResult> ExhaustivePlanOracle(const catalog::Catalog& cat,
                                              const authz::Policy& auths,
                                              const plan::QuerySpec& spec,
                                              const plan::StatsCatalog* stats,
                                              const PlanOracleOptions& options = {});

}  // namespace cisqp::testcheck
