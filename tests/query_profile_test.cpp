// Tests for the per-operator query profiler: golden rows/bytes over the
// paper's 3-server query, parity with the row-at-a-time oracle kernels,
// trace-context propagation on transfers, EXPLAIN rendering, and
// cross-contamination freedom under concurrent profiled executions (the
// latter runs under TSan in CI).
#include <gtest/gtest.h>

#include <thread>

#include "exec/executor.hpp"
#include "exec/explain.hpp"
#include "obs/trace.hpp"
#include "planner/safe_planner.hpp"
#include "testcheck/row_kernels.hpp"
#include "test_util.hpp"

namespace cisqp::exec {
namespace {

using cisqp::testing::MedicalFixture;

class QueryProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(fix_.cat);
    Rng rng(2026);
    ASSERT_OK(workload::MedicalScenario::PopulateCluster(
        *cluster_, workload::MedicalScenario::DataConfig{200, 0.4, 0.6, 30},
        rng));
    plan_ = fix_.PaperPlan();
    planner::SafePlanner planner(fix_.cat, fix_.auths);
    auto sp = planner.Plan(plan_);
    ASSERT_OK(sp.status());
    assignment_ = sp->assignment;
  }

  Result<ExecutionResult> ExecuteProfiled(obs::QueryProfile& profile) {
    DistributedExecutor executor(*cluster_, fix_.auths);
    ExecutionOptions options;
    options.profile = &profile;
    return executor.Execute(plan_, assignment_, options);
  }

  /// Row-kernel evaluation of the subtree rooted at `node` — the oracle the
  /// profiled columnar counts must agree with.
  Result<storage::Table> RowEval(const plan::PlanNode& node) {
    switch (node.op) {
      case plan::PlanOp::kRelation:
        return cluster_->TableOf(node.relation);
      case plan::PlanOp::kProject: {
        CISQP_ASSIGN_OR_RETURN(storage::Table child, RowEval(*node.left));
        return testcheck::RowProject(child, node.projection, node.distinct);
      }
      case plan::PlanOp::kSelect: {
        CISQP_ASSIGN_OR_RETURN(storage::Table child, RowEval(*node.left));
        return testcheck::RowSelect(child, node.predicate);
      }
      case plan::PlanOp::kJoin: {
        CISQP_ASSIGN_OR_RETURN(storage::Table left, RowEval(*node.left));
        CISQP_ASSIGN_OR_RETURN(storage::Table right, RowEval(*node.right));
        return testcheck::RowHashJoin(left, right, node.join_atoms);
      }
    }
    return InternalError("unknown op");
  }

  MedicalFixture fix_;
  std::unique_ptr<Cluster> cluster_;
  plan::QueryPlan plan_;
  planner::Assignment assignment_;
};

TEST_F(QueryProfileTest, GoldenRowsAndBytesPerOperator) {
  obs::QueryProfile profile;
  ASSERT_OK_AND_ASSIGN(ExecutionResult result, ExecuteProfiled(profile));

  EXPECT_GT(profile.query_id, 0);
  EXPECT_GE(profile.duration_us, 0);

  // Every plan node ran exactly once and has a filled slot.
  plan_.ForEachPreOrder([&](const plan::PlanNode& node) {
    const obs::OperatorStats* stats = profile.FindOp(node.id);
    ASSERT_NE(stats, nullptr) << "node n" << node.id << " unprofiled";
    EXPECT_EQ(stats->invocations, 1u) << "node n" << node.id;
    EXPECT_FALSE(stats->op.empty());
    EXPECT_FALSE(stats->server.empty());
  });

  // Leaves produce exactly their table's rows; the root produces the result.
  plan_.ForEachPreOrder([&](const plan::PlanNode& node) {
    if (node.op != plan::PlanOp::kRelation) return;
    EXPECT_EQ(profile.FindOp(node.id)->rows_out,
              cluster_->TableOf(node.relation).row_count())
        << "leaf n" << node.id;
  });
  EXPECT_EQ(profile.FindOp(plan_.root()->id)->rows_out,
            result.table.row_count());

  // Flow conservation: every child's rows_out is the parent's rows_in.
  plan_.ForEachPreOrder([&](const plan::PlanNode& node) {
    const obs::OperatorStats* stats = profile.FindOp(node.id);
    if (node.left != nullptr) {
      EXPECT_EQ(stats->rows_in_left, profile.FindOp(node.left->id)->rows_out)
          << "node n" << node.id;
    }
    if (node.right != nullptr) {
      EXPECT_EQ(stats->rows_in_right, profile.FindOp(node.right->id)->rows_out)
          << "node n" << node.id;
    }
  });

  // The transfer log agrees byte-for-byte with the network accounting, and
  // every hop names real servers of the 3-server query.
  EXPECT_EQ(profile.transfers.size(), result.network.total_messages());
  EXPECT_EQ(profile.TotalBytesShipped(), result.network.total_bytes());
  for (const obs::TransferStats& t : profile.transfers) {
    EXPECT_OK(fix_.cat.FindServer(t.from).status());
    EXPECT_OK(fix_.cat.FindServer(t.to).status());
    EXPECT_NE(t.from, t.to);
    EXPECT_GT(t.bytes, 0u);
    EXPECT_EQ(t.query_id, profile.query_id);
    EXPECT_FALSE(t.what.empty());
  }

  // The paper's assignment ships the semi-join flows: bytes must land on the
  // join nodes that shipped them.
  std::uint64_t join_bytes = 0;
  plan_.ForEachPreOrder([&](const plan::PlanNode& node) {
    if (node.op == plan::PlanOp::kJoin) {
      join_bytes += profile.FindOp(node.id)->bytes_shipped;
    }
  });
  EXPECT_EQ(join_bytes, profile.TotalBytesShipped());

  // The JSON export carries the operators and transfers.
  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"operators\""), std::string::npos);
  EXPECT_NE(json.find("\"transfers\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_out\""), std::string::npos);
}

TEST_F(QueryProfileTest, ProfiledCountsMatchRowKernelOracle) {
  obs::QueryProfile profile;
  ASSERT_OK(ExecuteProfiled(profile).status());
  // The columnar engine's per-operator output cardinality must equal the
  // row-at-a-time oracle's, node by node.
  plan_.ForEachPreOrder([&](const plan::PlanNode& node) {
    auto oracle = RowEval(node);
    ASSERT_OK(oracle.status());
    EXPECT_EQ(profile.FindOp(node.id)->rows_out, oracle->row_count())
        << "node n" << node.id << " (" << profile.FindOp(node.id)->op << ")";
  });
}

TEST_F(QueryProfileTest, ProfilingIsObservationOnly) {
  DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult plain,
                       executor.Execute(plan_, assignment_));
  obs::QueryProfile profile;
  ASSERT_OK_AND_ASSIGN(ExecutionResult profiled, ExecuteProfiled(profile));
  ASSERT_EQ(plain.table.row_count(), profiled.table.row_count());
  for (std::size_t r = 0; r < plain.table.row_count(); ++r) {
    const storage::Row& a = plain.table.rows()[r];
    const storage::Row& b = profiled.table.rows()[r];
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c].CompareTotal(b[c]), 0) << "row " << r << " col " << c;
    }
  }
}

TEST_F(QueryProfileTest, TransfersCarrySpanContextWhenTracing) {
  obs::Tracer::Get().Enable();
  obs::QueryProfile profile;
  ASSERT_OK(ExecuteProfiled(profile).status());
  obs::Tracer::Get().Disable();

  const std::vector<obs::SpanRecord>& spans = obs::Tracer::Get().spans();
  ASSERT_FALSE(spans.empty());
  for (const obs::TransferStats& t : profile.transfers) {
    ASSERT_GE(t.parent_span, 0);
    ASSERT_LT(static_cast<std::size_t>(t.parent_span), spans.size());
    EXPECT_EQ(spans[static_cast<std::size_t>(t.parent_span)].name, "exec.ship");
  }

  // Server lanes are named, and every ship span sits on its sender's lane —
  // cross-server causality instead of disjoint per-thread rows.
  const obs::TraceMetadata& metadata = obs::Tracer::Get().metadata();
  EXPECT_EQ(metadata.process_names.size(), fix_.cat.server_count());
  for (const auto& [pid, name] : metadata.process_names) {
    EXPECT_GE(pid, 2);  // lane 1 is the coordinator
    EXPECT_EQ(name.rfind("server:", 0), 0u) << name;
  }
  std::string error;
  EXPECT_TRUE(obs::ValidateChromeTraceJson(obs::Tracer::Get().ChromeTraceJson(),
                                           &error))
      << error;
  obs::Tracer::Get().Clear();
}

TEST_F(QueryProfileTest, ExplainAnalyzeRendersEstimatesAndDrift) {
  obs::QueryProfile profile;
  ASSERT_OK(ExecuteProfiled(profile).status());

  const plan::StatsCatalog stats =
      workload::MedicalScenario::ComputeStats(*cluster_);
  AnnotateEstimates(fix_.cat, &stats, nullptr, plan_, profile);
  plan_.ForEachPreOrder([&](const plan::PlanNode& node) {
    EXPECT_GE(profile.FindOp(node.id)->est_rows, 0.0) << "node n" << node.id;
  });

  const std::string analyze =
      RenderExplain(fix_.cat, &stats, nullptr, plan_, &profile);
  EXPECT_NE(analyze.find("est="), std::string::npos);
  EXPECT_NE(analyze.find("actual="), std::string::npos);
  EXPECT_NE(analyze.find("drift="), std::string::npos);
  EXPECT_NE(analyze.find("time="), std::string::npos);
  EXPECT_NE(analyze.find("ship n"), std::string::npos);

  // Plain EXPLAIN renders estimates but no actuals.
  const std::string explain =
      RenderExplain(fix_.cat, &stats, nullptr, plan_, nullptr);
  EXPECT_NE(explain.find("est="), std::string::npos);
  EXPECT_EQ(explain.find("actual="), std::string::npos);
}

TEST_F(QueryProfileTest, ConcurrentProfilesDoNotCrossContaminate) {
  // Two profiled executions of the same plan race on the shared cluster;
  // each must fill its own profile with the identical (deterministic)
  // counts. TSan covers the kernel-counter and tracer paths here.
  obs::QueryProfile baseline;
  ASSERT_OK(ExecuteProfiled(baseline).status());

  constexpr int kThreads = 2;
  std::vector<obs::QueryProfile> profiles(kThreads);
  std::vector<Status> statuses(kThreads, InternalError("unset"));
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&, i] {
        statuses[static_cast<std::size_t>(i)] =
            ExecuteProfiled(profiles[static_cast<std::size_t>(i)]).status();
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_OK(statuses[static_cast<std::size_t>(i)]);
    const obs::QueryProfile& p = profiles[static_cast<std::size_t>(i)];
    EXPECT_NE(p.query_id, baseline.query_id);
    plan_.ForEachPreOrder([&](const plan::PlanNode& node) {
      const obs::OperatorStats* got = p.FindOp(node.id);
      const obs::OperatorStats* want = baseline.FindOp(node.id);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->invocations, want->invocations) << "node n" << node.id;
      EXPECT_EQ(got->rows_out, want->rows_out) << "node n" << node.id;
      EXPECT_EQ(got->rows_in_left, want->rows_in_left) << "node n" << node.id;
      EXPECT_EQ(got->rows_in_right, want->rows_in_right)
          << "node n" << node.id;
      EXPECT_EQ(got->hash_matches, want->hash_matches) << "node n" << node.id;
      EXPECT_EQ(got->bytes_shipped, want->bytes_shipped)
          << "node n" << node.id;
    });
    EXPECT_EQ(p.TotalBytesShipped(), baseline.TotalBytesShipped());
    EXPECT_EQ(p.transfers.size(), baseline.transfers.size());
  }
  // Distinct executions, distinct query ids.
  EXPECT_NE(profiles[0].query_id, profiles[1].query_id);
}

}  // namespace
}  // namespace cisqp::exec
