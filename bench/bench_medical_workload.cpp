// E11 — the medical federation under a realistic query workload: for every
// query in MedicalScenario::WorkloadQueries(), whether a safe assignment
// exists, which modes the planner chose, what the execution moved, and
// whether join-order search rescues the infeasible ones. The closest
// equivalent of a per-query evaluation table for the paper's scenario.
#include "bench_util.hpp"

#include "exec/executor.hpp"
#include "planner/plan_search.hpp"

namespace cisqp::bench {
namespace {

void PrintWorkloadTable() {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster(cat);
  Rng rng(2008);
  workload::MedicalScenario::DataConfig data;
  data.citizens = 2000;
  UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
               "populate");
  const plan::StatsCatalog stats = workload::MedicalScenario::ComputeStats(cluster);

  PrintHeader("E11 / Fig. 1-3 scenario under a query workload",
              "per-query feasibility, chosen executors, and communication on "
              "the paper's federation (2000 citizens)");
  Artifact artifact("medical_workload",
                    "E11 / Fig. 1-3 scenario under a query workload",
                    "per-query feasibility, modes, and communication");
  std::printf("%-26s %-10s %-22s %-8s %-10s %-8s\n", "query", "feasible",
              "join modes", "xfers", "bytes", "rows");

  planner::SafePlanner planner(cat, auths);
  planner::FeasiblePlanSearch search(cat, auths);
  exec::DistributedExecutor executor(cluster, auths);

  for (const auto& q : workload::MedicalScenario::WorkloadQueries()) {
    auto spec = sql::ParseAndBind(cat, q.sql);
    UnwrapStatus(spec.status(), q.name.c_str());
    auto built = plan::PlanBuilder(cat, &stats).Build(*spec);
    UnwrapStatus(built.status(), q.name.c_str());

    const auto report = Unwrap(planner.Analyze(*built), q.name.c_str());
    if (!report.feasible) {
      const bool rescued = search.Search(*spec).ok();
      std::printf("%-26s %-10s %-22s\n", q.name.c_str(),
                  rescued ? "reorder" : "NO", "-");
      artifact.Row()
          .Value("query", q.name)
          .Value("feasible", rescued ? "reorder" : "no");
      continue;
    }
    std::string modes;
    built->ForEachPreOrder([&](const plan::PlanNode& n) {
      if (n.op != plan::PlanOp::kJoin) return;
      const planner::Executor& ex = report.plan->assignment.Of(n.id);
      if (!modes.empty()) modes += "+";
      modes += ex.mode == planner::ExecutionMode::kSemiJoin ? "semi" : "regular";
    });
    if (modes.empty()) modes = "local";
    const auto run =
        Unwrap(executor.Execute(*built, report.plan->assignment), q.name.c_str());
    std::printf("%-26s %-10s %-22s %-8zu %-10zu %-8zu\n", q.name.c_str(), "yes",
                modes.c_str(), run.network.total_messages(),
                run.network.total_bytes(), run.table.row_count());
    artifact.Row()
        .Value("query", q.name)
        .Value("feasible", "yes")
        .Value("modes", modes)
        .Value("transfers", run.network.total_messages())
        .Value("bytes", run.network.total_bytes())
        .Value("rows", run.table.row_count())
        .Value("duration_us", run.duration_us);
  }
  artifact.Write();
  std::printf("\n");
}

void BM_WorkloadThroughput(benchmark::State& state) {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster(cat);
  Rng rng(2008);
  workload::MedicalScenario::DataConfig data;
  data.citizens = static_cast<std::size_t>(state.range(0));
  UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
               "populate");
  planner::SafePlanner planner(cat, auths);
  exec::DistributedExecutor executor(cluster, auths);

  // Pre-plan the feasible workload once; the benchmark measures execution.
  std::vector<std::pair<plan::QueryPlan, planner::Assignment>> jobs;
  for (const auto& q : workload::MedicalScenario::WorkloadQueries()) {
    auto spec = sql::ParseAndBind(cat, q.sql);
    if (!spec.ok()) continue;
    auto built = plan::PlanBuilder(cat).Build(*spec);
    if (!built.ok()) continue;
    auto report = planner.Analyze(*built);
    if (!report.ok() || !report->feasible) continue;
    jobs.emplace_back(std::move(*built), report->plan->assignment);
  }
  std::size_t executed = 0;
  for (auto _ : state) {
    for (const auto& [plan, assignment] : jobs) {
      benchmark::DoNotOptimize(executor.Execute(plan, assignment));
      ++executed;
    }
  }
  state.counters["feasible_queries"] = static_cast<double>(jobs.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_WorkloadThroughput)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintWorkloadTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
