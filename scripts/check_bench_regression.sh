#!/usr/bin/env bash
# CI bench smoke gates: the columnar execution engine (E16) and the
# query-profiler overhead budget (E13).
#
# Runs bench_exec_kernels, then compares the freshly measured end-to-end
# speedup (row kernels / columnar kernels) against the committed baseline in
# bench/baselines/BENCH_exec_kernels.json. The step fails when
#
#   * the columnar output is not byte-identical to the row-kernel output, or
#   * the fresh speedup drops below HALF the committed baseline speedup
#     (a >2x regression — generous enough for noisy CI runners, tight
#     enough to catch an accidental de-vectorization).
#
# Then runs bench_obs_overhead and fails when the profiler-enabled arm costs
# more than 5% over the spans-only enabled arm (profiler_vs_enabled_pct in
# BENCH_obs_overhead.json), best result of up to three attempts to ride out
# noisy runners.
#
#   scripts/check_bench_regression.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BENCH="$BUILD_DIR/bench/bench_exec_kernels"
if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built" >&2
  exit 1
fi

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
# --benchmark_filter matching nothing skips the google-benchmark loops; the
# E16 kernel table (and its artifact) is printed unconditionally by main().
CISQP_BENCH_OUT_DIR="$OUT_DIR" "$BENCH" --benchmark_filter='^$'

python3 - "$OUT_DIR/BENCH_exec_kernels.json" \
    bench/baselines/BENCH_exec_kernels.json <<'PY'
import json
import sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
fresh = json.load(open(fresh_path))["rows"][0]
baseline = json.load(open(baseline_path))["rows"][0]

if not fresh["identical"]:
    sys.exit("FAIL: columnar output is not byte-identical to the row kernels")

floor = baseline["speedup"] / 2.0
print(f"fresh speedup:    {fresh['speedup']:.2f}x "
      f"(row {fresh['row_total_us']}us / columnar {fresh['columnar_total_us']}us)")
print(f"baseline speedup: {baseline['speedup']:.2f}x  -> floor {floor:.2f}x")
if fresh["speedup"] < floor:
    sys.exit(f"FAIL: speedup {fresh['speedup']:.2f}x regressed more than 2x "
             f"against the committed baseline {baseline['speedup']:.2f}x")
print("OK: columnar engine within 2x of the committed baseline")
PY

# --- E13: profiler overhead budget -----------------------------------------
OBS_BENCH="$BUILD_DIR/bench/bench_obs_overhead"
if [ ! -x "$OBS_BENCH" ]; then
  echo "error: $OBS_BENCH not built" >&2
  exit 1
fi

PROFILER_BUDGET_PCT=5.0
best_pct=""
for attempt in 1 2 3; do
  CISQP_BENCH_OUT_DIR="$OUT_DIR" "$OBS_BENCH" --benchmark_filter='^$' \
      > /dev/null
  pct="$(python3 -c '
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
row = next(r for r in rows if r["config"] == "profiler_enabled")
print(row["profiler_vs_enabled_pct"])
' "$OUT_DIR/BENCH_obs_overhead.json")"
  echo "profiler-vs-enabled overhead, attempt $attempt: ${pct}%"
  if [ -z "$best_pct" ] || \
     python3 -c "import sys; sys.exit(0 if $pct < $best_pct else 1)"; then
    best_pct="$pct"
  fi
  if python3 -c "import sys; sys.exit(0 if $best_pct <= $PROFILER_BUDGET_PCT else 1)"; then
    break
  fi
done

if python3 -c "import sys; sys.exit(0 if $best_pct <= $PROFILER_BUDGET_PCT else 1)"; then
  echo "OK: profiler overhead ${best_pct}% within the ${PROFILER_BUDGET_PCT}% budget"
else
  echo "FAIL: profiler overhead ${best_pct}% exceeds the ${PROFILER_BUDGET_PCT}% budget" >&2
  exit 1
fi
