#include "workload/supply_chain.hpp"

namespace cisqp::workload {

std::string_view SupplyChainScenario::Dsl() {
  return R"(
# A four-party supply chain: suppliers, manufacturer, logistics, retailer.
server S_SUP;
server S_MFG;
server S_LOG;
server S_RET;

relation Suppliers @ S_SUP (PartId int key, SupplierName string, UnitCost int);
relation Assembly  @ S_MFG (ComponentId int key, Product string, Line string);
relation Shipments @ S_LOG (ShipPart int key, Carrier string, Destination string);
relation Sales     @ S_RET (SoldProduct string key, Region string, Revenue int);

joinable PartId = ComponentId;
joinable PartId = ShipPart;
joinable ComponentId = ShipPart;
joinable Product = SoldProduct;

# Everyone owns their relation.
grant PartId, SupplierName, UnitCost to S_SUP;
grant ComponentId, Product, Line to S_MFG;
grant ShipPart, Carrier, Destination to S_LOG;
grant SoldProduct, Region, Revenue to S_RET;

# The manufacturer sees supplier identities for parts it assembles — never
# unit costs.
grant PartId, SupplierName, ComponentId, Product, Line
  on (PartId, ComponentId) to S_MFG;
# The manufacturer tracks shipments of its components.
grant ComponentId, Product, Line, ShipPart, Carrier, Destination
  on (ComponentId, ShipPart) to S_MFG;
# The manufacturer sees where its products sell — never revenue.
grant ComponentId, Product, Line, SoldProduct, Region
  on (Product, SoldProduct) to S_MFG;

# Logistics may hold the bare part-id list (scheduling input) and sees
# which components ship.
grant PartId to S_LOG;
grant ShipPart, Carrier, Destination, ComponentId, Product
  on (ShipPart, ComponentId) to S_LOG;

# The retailer sees assembly data of products it sells.
grant SoldProduct, Region, Revenue, ComponentId, Product, Line
  on (Product, SoldProduct) to S_RET;
grant Product to S_RET;

# Suppliers learn which products use their parts.
grant PartId, SupplierName, UnitCost, Product on (PartId, ComponentId) to S_SUP;
grant ComponentId to S_SUP;
grant SoldProduct to S_MFG;
grant ShipPart to S_MFG;
)";
}

Result<dsl::ParsedFederation> SupplyChainScenario::Build() {
  return dsl::ParseFederation(Dsl());
}

Status SupplyChainScenario::PopulateCluster(exec::Cluster& cluster,
                                            const dsl::ParsedFederation& fed,
                                            const DataConfig& config, Rng& rng) {
  const catalog::Catalog& cat = fed.catalog;
  CISQP_ASSIGN_OR_RETURN(catalog::RelationId suppliers, cat.FindRelation("Suppliers"));
  CISQP_ASSIGN_OR_RETURN(catalog::RelationId assembly, cat.FindRelation("Assembly"));
  CISQP_ASSIGN_OR_RETURN(catalog::RelationId shipments, cat.FindRelation("Shipments"));
  CISQP_ASSIGN_OR_RETURN(catalog::RelationId sales, cat.FindRelation("Sales"));
  static const char* kRegions[] = {"north", "south", "east", "west"};

  for (std::size_t p = 0; p < config.parts; ++p) {
    const auto part = static_cast<std::int64_t>(p);
    CISQP_RETURN_IF_ERROR(cluster.InsertRow(
        suppliers,
        {storage::Value(part),
         storage::Value("supplier_" + std::to_string(p % 17)),
         storage::Value(rng.UniformInt(1, 500))}));
    const std::string product = "prod_" + std::to_string(p % config.products);
    CISQP_RETURN_IF_ERROR(cluster.InsertRow(
        assembly, {storage::Value(part), storage::Value(product),
                   storage::Value("line_" + std::to_string(rng.UniformIndex(6)))}));
    if (rng.Chance(config.shipped_fraction)) {
      CISQP_RETURN_IF_ERROR(cluster.InsertRow(
          shipments,
          {storage::Value(part),
           storage::Value("carrier_" + std::to_string(rng.UniformIndex(5))),
           storage::Value("dest_" + std::to_string(rng.UniformIndex(12)))}));
    }
  }
  for (std::size_t k = 0; k < config.products; ++k) {
    if (!rng.Chance(config.sold_fraction)) continue;
    CISQP_RETURN_IF_ERROR(cluster.InsertRow(
        sales, {storage::Value("prod_" + std::to_string(k)),
                storage::Value(std::string(kRegions[rng.UniformIndex(4)])),
                storage::Value(rng.UniformInt(1000, 100000))}));
  }
  return Status::Ok();
}

std::vector<SupplyChainScenario::NamedQuery>
SupplyChainScenario::WorkloadQueries() {
  return {
      {"parts_per_product",
       "SELECT Product, SupplierName FROM Suppliers JOIN Assembly "
       "ON PartId = ComponentId"},
      {"costs_exposed",  // blocked: UnitCost never leaves S_SUP
       "SELECT Product, UnitCost FROM Suppliers JOIN Assembly "
       "ON PartId = ComponentId"},
      {"shipping_schedule",
       "SELECT Product, Carrier, Destination FROM Assembly JOIN Shipments "
       "ON ComponentId = ShipPart"},
      {"regional_lines",
       "SELECT Line, Region, Revenue FROM Assembly JOIN Sales "
       "ON Product = SoldProduct"},
      {"supplier_to_region",  // blocked: nobody may associate suppliers+regions
       "SELECT SupplierName, Region FROM Suppliers JOIN Assembly "
       "ON PartId = ComponentId JOIN Sales ON Product = SoldProduct"},
      {"part_shipping_bulk",  // feasible only thanks to projection pushdown
       "SELECT PartId, Carrier FROM Suppliers JOIN Shipments "
       "ON PartId = ShipPart"},
  };
}

}  // namespace cisqp::workload
