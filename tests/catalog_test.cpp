// Unit tests for src/catalog: registration, lookup, join graph, validation.
#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "test_util.hpp"

namespace cisqp::catalog {
namespace {

using cisqp::testing::Attr;

Catalog TwoServerSchema() {
  Catalog cat;
  const ServerId s0 = cat.AddServer("alpha").value();
  const ServerId s1 = cat.AddServer("beta").value();
  CISQP_CHECK(cat.AddRelation("Orders", s0,
                              {{"OrderId", ValueType::kInt64},
                               {"Customer", ValueType::kInt64},
                               {"Total", ValueType::kDouble}},
                              {"OrderId"})
                  .ok());
  CISQP_CHECK(cat.AddRelation("Customers", s1,
                              {{"CustId", ValueType::kInt64},
                               {"Name", ValueType::kString}},
                              {"CustId"})
                  .ok());
  return cat;
}

TEST(CatalogTest, RegistersServersRelationsAttributes) {
  const Catalog cat = TwoServerSchema();
  EXPECT_EQ(cat.server_count(), 2u);
  EXPECT_EQ(cat.relation_count(), 2u);
  EXPECT_EQ(cat.attribute_count(), 5u);
  EXPECT_EQ(cat.server(0).name, "alpha");
  EXPECT_EQ(cat.relation(0).name, "Orders");
  EXPECT_EQ(cat.relation(0).attributes.size(), 3u);
  EXPECT_EQ(cat.attribute(0).name, "OrderId");
  EXPECT_EQ(cat.attribute(0).position, 0u);
}

TEST(CatalogTest, DuplicateServerRejected) {
  Catalog cat;
  ASSERT_OK(cat.AddServer("s").status());
  EXPECT_EQ(cat.AddServer("s").status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DuplicateRelationAndAttributeRejected) {
  Catalog cat = TwoServerSchema();
  const auto dup_rel = cat.AddRelation("Orders", 0, {{"X", ValueType::kInt64}}, {});
  EXPECT_EQ(dup_rel.status().code(), StatusCode::kAlreadyExists);
  // Bare attribute names must be globally unique (the paper's assumption).
  const auto dup_attr =
      cat.AddRelation("Other", 0, {{"OrderId", ValueType::kInt64}}, {});
  EXPECT_EQ(dup_attr.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RejectsMalformedRelations) {
  Catalog cat;
  const ServerId s = cat.AddServer("s").value();
  EXPECT_EQ(cat.AddRelation("R", s, {}, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.AddRelation("R", 99, {{"A", ValueType::kInt64}}, {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cat.AddRelation("R", s, {{"A.B", ValueType::kInt64}}, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.AddRelation("R", s, {{"A", ValueType::kInt64}}, {"Missing"})
                .status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.AddRelation("R", s,
                            {{"A", ValueType::kInt64}, {"A", ValueType::kInt64}}, {})
                .status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, FindAttributeSupportsDottedNames) {
  const Catalog cat = TwoServerSchema();
  EXPECT_EQ(cat.FindAttribute("Customer").value(), Attr(cat, "Orders.Customer"));
  EXPECT_EQ(cat.FindAttribute("Orders.Total").value(), Attr(cat, "Total"));
  EXPECT_EQ(cat.FindAttribute("Customers.Total").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cat.FindAttribute("Nope.Total").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cat.FindAttribute("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cat.QualifiedName(Attr(cat, "Name")), "Customers.Name");
}

TEST(CatalogTest, JoinEdgesNormalizeAndValidate) {
  Catalog cat = TwoServerSchema();
  ASSERT_OK(cat.AddJoinEdge("Customer", "CustId"));
  EXPECT_TRUE(cat.Joinable(Attr(cat, "Customer"), Attr(cat, "CustId")));
  EXPECT_TRUE(cat.Joinable(Attr(cat, "CustId"), Attr(cat, "Customer")));
  // Duplicates (either orientation) rejected.
  EXPECT_EQ(cat.AddJoinEdge("CustId", "Customer").code(),
            StatusCode::kAlreadyExists);
  // Same relation rejected.
  EXPECT_EQ(cat.AddJoinEdge("OrderId", "Customer").code(),
            StatusCode::kInvalidArgument);
  // Type mismatch rejected.
  EXPECT_EQ(cat.AddJoinEdge("Total", "CustId").code(),
            StatusCode::kInvalidArgument);
  // Self edge rejected.
  EXPECT_EQ(cat.AddJoinEdge(Attr(cat, "CustId"), Attr(cat, "CustId")).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, EdgesOfRelation) {
  Catalog cat = TwoServerSchema();
  ASSERT_OK(cat.AddJoinEdge("Customer", "CustId"));
  EXPECT_EQ(cat.EdgesOfRelation(cisqp::testing::Relation(cat, "Orders")).size(), 1u);
  EXPECT_EQ(cat.EdgesOfRelation(cisqp::testing::Relation(cat, "Customers")).size(), 1u);
}

TEST(CatalogTest, ServerOfAndRelationOf) {
  const Catalog cat = TwoServerSchema();
  EXPECT_EQ(cat.ServerOf(Attr(cat, "Name")), cisqp::testing::Server(cat, "beta"));
  EXPECT_EQ(cat.RelationOf(Attr(cat, "Total")),
            cisqp::testing::Relation(cat, "Orders"));
}

TEST(CatalogTest, MedicalScenarioShape) {
  const Catalog cat = workload::MedicalScenario::BuildCatalog();
  EXPECT_EQ(cat.server_count(), 4u);
  EXPECT_EQ(cat.relation_count(), 4u);
  EXPECT_EQ(cat.attribute_count(), 9u);
  EXPECT_EQ(cat.join_edges().size(), 4u);
  EXPECT_TRUE(cat.Joinable(Attr(cat, "Holder"), Attr(cat, "Patient")));
  EXPECT_TRUE(cat.Joinable(Attr(cat, "Disease"), Attr(cat, "Illness")));
  EXPECT_FALSE(cat.Joinable(Attr(cat, "Plan"), Attr(cat, "HealthAid")));
  EXPECT_EQ(cat.relation(cisqp::testing::Relation(cat, "Hospital")).server,
            cisqp::testing::Server(cat, "S_H"));
}

TEST(CatalogTest, DebugStringMentionsEverything) {
  const Catalog cat = workload::MedicalScenario::BuildCatalog();
  const std::string dump = cat.DebugString();
  EXPECT_NE(dump.find("Insurance"), std::string::npos);
  EXPECT_NE(dump.find("S_D"), std::string::npos);
  EXPECT_NE(dump.find("*Holder"), std::string::npos);  // primary key marker
  EXPECT_NE(dump.find("join"), std::string::npos);
}

}  // namespace
}  // namespace cisqp::catalog
