// Executor assignments (paper Def. 4.1) and planning traces.
//
// An executor assignment λ_T maps every plan node to a [master, slave] pair:
// leaves to their home server, unary operators to their child's executor,
// joins to one of the four Fig. 5 modes. `Assignment` stores λ_T keyed by
// plan-node id; `PlanningTrace` records the two traversals of the paper's
// algorithm in enough detail to regenerate its Fig. 7 table.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "authz/profile.hpp"
#include "catalog/catalog.hpp"
#include "plan/plan_node.hpp"

namespace cisqp::planner {

/// How a node's operation is physically executed.
enum class ExecutionMode : std::uint8_t {
  kLocal,       ///< leaf scan or unary operator at the child's server
  kRegularJoin, ///< [S,NULL]: the other operand ships its whole relation
  kSemiJoin,    ///< [S_master,S_slave]: the 5-step Fig. 5 flow
};

std::string_view ExecutionModeName(ExecutionMode mode) noexcept;

/// Which child a candidate was inherited from during Find_candidates.
enum class FromChild : std::uint8_t {
  kSelf,   ///< leaf: the server storing the relation
  kLeft,
  kRight,
  kThird,  ///< third-party extension (DESIGN.md §2.5); not in the paper core
};

std::string_view FromChildName(FromChild from) noexcept;

/// λ_T(n): master (always set) and slave (set only for semi-joins).
struct Executor {
  catalog::ServerId master = catalog::kInvalidId;
  std::optional<catalog::ServerId> slave;  ///< nullopt renders as NULL
  ExecutionMode mode = ExecutionMode::kLocal;
  /// For join nodes: the child whose subtree the master computes (kThird for
  /// a proxy master). Lets verifiers and executors derive the exact Fig. 5
  /// flow without inference.
  FromChild origin = FromChild::kSelf;

  /// "[S_H, S_N]" / "[S_H, NULL]".
  std::string ToString(const catalog::Catalog& cat) const;

  friend bool operator==(const Executor&, const Executor&) = default;
};

/// λ_T for a whole plan, keyed by plan-node id.
class Assignment {
 public:
  Assignment() = default;
  explicit Assignment(int node_count)
      : executors_(static_cast<std::size_t>(node_count)) {}

  const Executor& Of(int node_id) const {
    CISQP_CHECK(node_id >= 0 &&
                static_cast<std::size_t>(node_id) < executors_.size());
    return executors_[static_cast<std::size_t>(node_id)];
  }

  void Set(int node_id, Executor executor) {
    CISQP_CHECK(node_id >= 0 &&
                static_cast<std::size_t>(node_id) < executors_.size());
    executors_[static_cast<std::size_t>(node_id)] = executor;
  }

  std::size_t size() const noexcept { return executors_.size(); }

  /// One line per node: "n3 join: [S_H, S_N] (semi-join)".
  std::string ToString(const catalog::Catalog& cat,
                       const plan::QueryPlan& plan) const;

  friend bool operator==(const Assignment&, const Assignment&) = default;

 private:
  std::vector<Executor> executors_;
};

/// One candidate record [server, fromchild, counter] (paper §5), extended
/// with the execution mode the candidate qualified under and, for semi-join
/// masters, the slave resolved for this candidate (DESIGN.md §2.2).
struct Candidate {
  catalog::ServerId server = catalog::kInvalidId;
  FromChild from = FromChild::kSelf;
  int count = 0;
  ExecutionMode mode = ExecutionMode::kLocal;
  std::optional<catalog::ServerId> slave;  ///< set iff mode == kSemiJoin

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// Per-node result of the post-order Find_candidates traversal.
struct NodeTrace {
  int node_id = -1;
  authz::Profile profile;
  std::vector<Candidate> candidates;  ///< sorted by count desc
  std::optional<catalog::ServerId> leftslave;   ///< slave for [S_r, S_l]
  std::optional<catalog::ServerId> rightslave;  ///< slave for [S_l, S_r]
};

/// One step of the pre-order Assign_ex traversal.
struct AssignTrace {
  int node_id = -1;
  Executor executor;
  std::optional<catalog::ServerId> pushed_from_parent;  ///< the `from_parent` argument
};

/// Everything the two traversals produced (paper Fig. 7 contents).
struct PlanningTrace {
  std::vector<NodeTrace> find_candidates;  ///< in post-order visit order
  std::vector<AssignTrace> assign;         ///< in pre-order visit order

  /// Renders the Fig. 7-style two-part table.
  std::string ToString(const catalog::Catalog& cat) const;
};

/// One failed CanView probe at a join node — why a server could not take a
/// role. Collected per node so an infeasible plan can be explained: every
/// rejection names the exact view profile the policy refused.
struct CandidateRejection {
  catalog::ServerId server = catalog::kInvalidId;
  FromChild from = FromChild::kSelf;    ///< child the server came from
  ExecutionMode mode = ExecutionMode::kLocal;  ///< the mode attempted
  std::string role;                     ///< "master" / "slave" / "proxy"
  authz::Profile required_view;         ///< the view CanView denied

  /// "S_I cannot be semi-join slave (from left): needs [...]".
  std::string ToString(const catalog::Catalog& cat) const;
};

/// Multi-line rendering of a rejection list.
std::string FormatRejections(const catalog::Catalog& cat,
                             const std::vector<CandidateRejection>& rejections);

}  // namespace cisqp::planner
