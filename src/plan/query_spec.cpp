#include "plan/query_spec.hpp"

#include <algorithm>
#include <sstream>

namespace cisqp::plan {

std::vector<catalog::RelationId> QuerySpec::Relations() const {
  std::vector<catalog::RelationId> out;
  out.push_back(first_relation);
  for (const JoinStep& step : joins) out.push_back(step.relation);
  return out;
}

Status QuerySpec::Validate(const catalog::Catalog& cat) const {
  if (first_relation >= cat.relation_count()) {
    return NotFoundError("query references an unknown first relation id");
  }
  IdSet in_scope = cat.relation(first_relation).attribute_set;
  IdSet seen_relations;
  seen_relations.Insert(first_relation);
  for (const JoinStep& step : joins) {
    if (step.relation >= cat.relation_count()) {
      return NotFoundError("join step references an unknown relation id");
    }
    if (seen_relations.Contains(step.relation)) {
      return InvalidArgumentError("relation '" + cat.relation(step.relation).name +
                                  "' appears twice in FROM (self-joins are out of model)");
    }
    if (step.atoms.empty()) {
      return InvalidArgumentError("join with '" + cat.relation(step.relation).name +
                                  "' has no ON condition (cross joins are out of model)");
    }
    const IdSet& new_attrs = cat.relation(step.relation).attribute_set;
    for (const algebra::EquiJoinAtom& atom : step.atoms) {
      if (atom.left >= cat.attribute_count() || atom.right >= cat.attribute_count()) {
        return NotFoundError("join atom references an unknown attribute id");
      }
      if (!in_scope.Contains(atom.left)) {
        return InvalidArgumentError("join atom left side '" + cat.attribute(atom.left).name +
                                    "' is not an attribute of an earlier FROM entry");
      }
      if (!new_attrs.Contains(atom.right)) {
        return InvalidArgumentError("join atom right side '" + cat.attribute(atom.right).name +
                                    "' is not an attribute of '" +
                                    cat.relation(step.relation).name + "'");
      }
      if (cat.attribute(atom.left).type != cat.attribute(atom.right).type) {
        return InvalidArgumentError("join atom '" + cat.attribute(atom.left).name + " = " +
                                    cat.attribute(atom.right).name + "' has mismatched types");
      }
    }
    in_scope.UnionWith(new_attrs);
    seen_relations.Insert(step.relation);
  }
  for (catalog::AttributeId a : select_list) {
    if (a >= cat.attribute_count() || !in_scope.Contains(a)) {
      return InvalidArgumentError("select-list attribute id " + std::to_string(a) +
                                  " is not produced by the FROM clause");
    }
  }
  if (select_list.empty()) {
    return InvalidArgumentError("empty select list");
  }
  for (IdSet::value_type a : where.ReferencedAttributes()) {
    if (!in_scope.Contains(a)) {
      return InvalidArgumentError("WHERE references attribute '" + cat.attribute(a).name +
                                  "' not produced by the FROM clause");
    }
  }
  return Status::Ok();
}

std::string QuerySpec::ToString(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << "SELECT " << (distinct ? "DISTINCT " : "");
  for (std::size_t i = 0; i < select_list.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << cat.attribute(select_list[i]).name;
  }
  oss << " FROM " << cat.relation(first_relation).name;
  for (const JoinStep& step : joins) {
    oss << " JOIN " << cat.relation(step.relation).name << " ON ";
    for (std::size_t i = 0; i < step.atoms.size(); ++i) {
      if (i != 0) oss << " AND ";
      oss << cat.attribute(step.atoms[i].left).name << " = "
          << cat.attribute(step.atoms[i].right).name;
    }
  }
  if (!where.IsTrue()) {
    oss << " WHERE " << where.ToString(cat);
  }
  return oss.str();
}

}  // namespace cisqp::plan
