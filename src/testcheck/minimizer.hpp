// Greedy delta-debugging minimizer (DESIGN.md §11.3).
//
// Given a failing scenario and a predicate that re-runs the differential
// check, the minimizer repeatedly tries single-entity removals — join steps,
// unreferenced relations, grants, WHERE conjuncts, select columns, unused
// attributes, rows — keeping any candidate that still fails, until a full
// pass removes nothing (a 1-minimal scenario under this edit vocabulary).
// Every accepted candidate went through ApplyEdit, so the result is always a
// well-formed scenario whose repro text replays standalone.
#pragma once

#include <functional>

#include "testcheck/scenario.hpp"

namespace cisqp::testcheck {

/// Re-runs the differential check on a candidate; true = "still fails the
/// same way". Implementations should match on the original mismatch *kind*
/// so shrinking cannot drift onto an unrelated failure.
using FailurePredicate = std::function<bool(const Scenario&)>;

struct MinimizeOptions {
  /// Cap on predicate evaluations (each one replays the whole pipeline).
  std::size_t max_candidates = 500;
};

struct MinimizeStats {
  std::size_t candidates_tried = 0;
  std::size_t candidates_accepted = 0;
  std::size_t passes = 0;
};

/// Shrinks `failing` while `fails` keeps returning true. Returns the
/// smallest scenario reached (at worst, `failing` itself). The input must
/// satisfy `fails`; that is the caller's contract, not re-checked.
Scenario MinimizeScenario(Scenario failing, const FailurePredicate& fails,
                          const MinimizeOptions& options = {},
                          MinimizeStats* stats = nullptr);

}  // namespace cisqp::testcheck
