// Tests for the shared worker pool (common/thread_pool).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace cisqp {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, ThreadCountMatchesRequest) {
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(4).thread_count(), 4u);
  EXPECT_EQ(ThreadPool(0).thread_count(), ThreadPool::HardwareConcurrency());
}

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 500;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesZeroAndOneItems) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  // threads=1 must execute on the calling thread, in index order — this is
  // the exact-sequential-reproduction contract the chase and plan search
  // rely on.
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.ParallelFor(10, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstTaskError) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](std::size_t i) {
                                  if (i == 13) throw std::runtime_error("bad");
                                  ++completed;
                                }),
               std::runtime_error);
  // The pool keeps draining the remaining indices (no cancellation), so all
  // non-throwing indices still ran and the pool stays usable.
  EXPECT_EQ(completed.load(), 63);
  int after = 0;
  pool.ParallelFor(5, [&](std::size_t) { ++after; });
  EXPECT_EQ(after, 5);
}

TEST(ThreadPoolTest, PaddedSlotsOccupyDistinctCacheLines) {
  // The false-sharing fix: per-worker slots are aligned AND padded to whole
  // cache lines, so adjacent slots can never share one.
  static_assert(alignof(PaddedSlot<int>) == kCacheLineBytes);
  static_assert(sizeof(PaddedSlot<int>) % kCacheLineBytes == 0);
  static_assert(alignof(PaddedSlot<std::size_t[9]>) == kCacheLineBytes);
  std::vector<PaddedSlot<int>> slots(4);
  for (std::size_t i = 1; i < slots.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&slots[i - 1].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&slots[i].value);
    EXPECT_GE(b - a, kCacheLineBytes);
  }
}

TEST(ThreadPoolTest, GrainSizeVisitsEveryIndexOnce) {
  for (const std::size_t threads : {1u, 3u}) {
    for (const std::size_t grain : {1u, 7u, 64u, 1000u}) {
      ThreadPool pool(threads);
      constexpr std::size_t kN = 500;
      std::vector<std::atomic<int>> visits(kN);
      pool.ParallelFor(kN, grain, [&](std::size_t i) { ++visits[i]; });
      for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(visits[i].load(), 1)
            << "index " << i << " threads " << threads << " grain " << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunksDispensesContiguousAlignedChunks) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 103;
  constexpr std::size_t kGrain = 10;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.ParallelForChunks(kN, kGrain,
                         [&](std::size_t, std::size_t begin, std::size_t end) {
                           const std::lock_guard<std::mutex> lock(mu);
                           chunks.emplace_back(begin, end);
                         });
  ASSERT_EQ(chunks.size(), 11u);  // ceil(103 / 10)
  std::sort(chunks.begin(), chunks.end());
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].first, c * kGrain);
    EXPECT_EQ(chunks[c].second, std::min(kN, (c + 1) * kGrain));
  }
}

TEST(ThreadPoolTest, ParallelForChunksWorkerIdsAreDenseAndStable) {
  // Worker ids let callers accumulate into per-worker slots without locks:
  // they must stay within [0, thread_count) and id 0 must be the caller.
  ThreadPool pool(3);
  const std::thread::id caller = std::this_thread::get_id();
  std::mutex mu;
  std::map<std::size_t, std::set<std::thread::id>> by_worker;
  pool.ParallelForChunks(64, 1,
                         [&](std::size_t worker, std::size_t, std::size_t) {
                           const std::lock_guard<std::mutex> lock(mu);
                           by_worker[worker].insert(std::this_thread::get_id());
                         });
  for (const auto& [worker, ids] : by_worker) {
    EXPECT_LT(worker, pool.thread_count());
    // One OS thread per worker id for the whole call — per-worker slots
    // never see concurrent writers.
    EXPECT_EQ(ids.size(), 1u) << "worker " << worker;
    if (worker == 0) {
      EXPECT_TRUE(ids.count(caller));
    }
  }
}

TEST(ThreadPoolTest, SingleChunkRunsInlineWithoutDispatch) {
  // A range that fits one chunk must run on the caller even with workers
  // available (no dispatch overhead for tiny ranges).
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  pool.ParallelForChunks(8, 100,
                         [&](std::size_t worker, std::size_t begin,
                             std::size_t end) {
                           EXPECT_EQ(std::this_thread::get_id(), caller);
                           EXPECT_EQ(worker, 0u);
                           EXPECT_EQ(begin, 0u);
                           EXPECT_EQ(end, 8u);
                           ++calls;
                         });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, GrainedParallelForRethrowsAndDrains) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(64, 8,
                                [&](std::size_t i) {
                                  if (i == 13) throw std::runtime_error("bad");
                                  ++completed;
                                }),
               std::runtime_error);
  // Chunks after the throwing one still run (the dispenser keeps going);
  // only the throwing chunk's tail is lost — indices 14..15 of its chunk.
  EXPECT_GE(completed.load(), 64 - 3);
  int after = 0;
  pool.ParallelFor(5, 2, [&](std::size_t) { ++after; });
  EXPECT_EQ(after, 5);
}

TEST(ThreadPoolTest, CallerParticipatesInParallelFor) {
  // A pool of size N uses the caller plus N-1 workers: with threads=2 at
  // most two distinct thread ids touch the work.
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(200, [&](std::size_t) {
    const std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_LE(ids.size(), 2u);
  EXPECT_GE(ids.size(), 1u);
}

}  // namespace
}  // namespace cisqp
