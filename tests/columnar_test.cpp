// Kernel-equivalence tests: the columnar engine vs the retained row kernels.
//
// The vectorized kernels (algebra/vectorized) must reproduce the row
// kernels' output *exactly* — same header, same rows, same row order — on
// every input, including the corners the sweep fixed bugs around: NULL join
// keys, duplicate projection attributes, empty inputs, and distinct chained
// after project. Randomized tables drive both engines through the
// compatibility operator API and through the batch API directly.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "algebra/operators.hpp"
#include "algebra/vectorized.hpp"
#include "storage/column.hpp"
#include "test_util.hpp"
#include "testcheck/row_kernels.hpp"

namespace cisqp::algebra {
namespace {

using storage::Column;
using storage::ColumnarTable;
using storage::Row;
using storage::Table;
using storage::Value;

constexpr catalog::AttributeId kA = 1;
constexpr catalog::AttributeId kB = 2;
constexpr catalog::AttributeId kC = 3;
constexpr catalog::AttributeId kD = 4;

Table MakeTable(std::vector<Column> header, std::vector<Row> rows) {
  Table t(std::move(header));
  for (Row& r : rows) CISQP_CHECK(t.AppendRow(std::move(r)).ok());
  return t;
}

/// Exact equality: header, row count, and cell-wise CompareTotal == 0 (so
/// NULL == NULL and NaN == NaN, unlike Value::operator==).
void ExpectExactlyEqual(const Table& got, const Table& want) {
  ASSERT_EQ(got.columns(), want.columns());
  ASSERT_EQ(got.row_count(), want.row_count());
  for (std::size_t r = 0; r < got.row_count(); ++r) {
    for (std::size_t c = 0; c < got.column_count(); ++c) {
      EXPECT_EQ(got.row(r)[c].CompareTotal(want.row(r)[c]), 0)
          << "row " << r << " col " << c << ": " << got.row(r)[c].ToString()
          << " vs " << want.row(r)[c].ToString();
    }
  }
}

Value RandomCell(std::mt19937& rng, catalog::ValueType type, double null_prob) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng) < null_prob) return Value();
  switch (type) {
    case catalog::ValueType::kInt64:
      return Value(std::int64_t{std::uniform_int_distribution<int>(0, 6)(rng)});
    case catalog::ValueType::kDouble:
      return Value(0.5 * std::uniform_int_distribution<int>(0, 6)(rng));
    case catalog::ValueType::kString: {
      static const char* kPool[] = {"", "a", "b", "gold", "silver", "flu"};
      return Value(kPool[std::uniform_int_distribution<int>(0, 5)(rng)]);
    }
  }
  return Value();
}

Table RandomTable(std::mt19937& rng, std::vector<Column> header,
                  std::size_t rows, double null_prob = 0.2) {
  Table t(std::move(header));
  t.Reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(t.column_count());
    for (const Column& c : t.columns()) {
      row.push_back(RandomCell(rng, c.type, null_prob));
    }
    CISQP_CHECK(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

std::vector<Column> MixedHeader() {
  return {Column{kA, catalog::ValueType::kInt64},
          Column{kB, catalog::ValueType::kString},
          Column{kC, catalog::ValueType::kDouble}};
}

// --- round trip & wire size ------------------------------------------------

TEST(ColumnarTableTest, RoundTripPreservesRowsAndOrder) {
  std::mt19937 rng(7);
  const Table t = RandomTable(rng, MixedHeader(), 64, /*null_prob=*/0.3);
  const ColumnarTable ct = ColumnarTable::FromRows(t);
  EXPECT_EQ(ct.row_count(), t.row_count());
  ExpectExactlyEqual(ct.MaterializeRows(), t);
}

TEST(ColumnarTableTest, CachedWireSizeMatchesRowFormula) {
  std::mt19937 rng(11);
  for (int i = 0; i < 10; ++i) {
    const Table t = RandomTable(rng, MixedHeader(), 32, /*null_prob=*/0.25);
    EXPECT_EQ(ColumnarTable::FromRows(t).WireSizeBytes(), t.WireSizeBytes());
  }
  const Table empty(MixedHeader());
  EXPECT_EQ(ColumnarTable::FromRows(empty).WireSizeBytes(), 0u);
}

TEST(ColumnarTableTest, IdentityBatchMaterializeSharesTheSource) {
  std::mt19937 rng(3);
  auto source = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(RandomTable(rng, MixedHeader(), 8)));
  const ColumnarBatch batch = ColumnarBatch::FromTable(source);
  EXPECT_TRUE(batch.identity());
  EXPECT_EQ(batch.Materialize().get(), source.get());
}

// --- storage satellite fixes -----------------------------------------------

TEST(TableIndexTest, ColumnIndexReturnsFirstOccurrence) {
  // Join outputs can carry the same attribute twice; the precomputed map
  // must resolve to the first column like the old linear scan did.
  const Table t({Column{kB, catalog::ValueType::kInt64},
                 Column{kA, catalog::ValueType::kString},
                 Column{kA, catalog::ValueType::kInt64}});
  EXPECT_EQ(t.ColumnIndex(kA), std::size_t{1});
  EXPECT_EQ(t.ColumnIndex(kB), std::size_t{0});
  EXPECT_EQ(t.ColumnIndex(kC), std::nullopt);
  EXPECT_EQ(Table().ColumnIndex(kA), std::nullopt);
}

TEST(TableMultisetTest, SameRowMultisetComparesPermutations) {
  const std::vector<Column> header = MixedHeader();
  const Table a = MakeTable(header, {{Value(std::int64_t{1}), Value("x"), Value(1.5)},
                                     {Value(), Value("y"), Value()},
                                     {Value(std::int64_t{1}), Value("x"), Value(1.5)}});
  const Table b = MakeTable(header, {{Value(), Value("y"), Value()},
                                     {Value(std::int64_t{1}), Value("x"), Value(1.5)},
                                     {Value(std::int64_t{1}), Value("x"), Value(1.5)}});
  EXPECT_TRUE(Table::SameRowMultiset(a, b));
  EXPECT_TRUE(Table::SameRowMultiset(a, a));

  // Same row *set*, different multiplicities: not the same multiset.
  const Table c = MakeTable(header, {{Value(std::int64_t{1}), Value("x"), Value(1.5)},
                                     {Value(), Value("y"), Value()},
                                     {Value(), Value("y"), Value()}});
  EXPECT_FALSE(Table::SameRowMultiset(a, c));

  // Row-count and header mismatches short-circuit.
  EXPECT_FALSE(Table::SameRowMultiset(a, Table(header)));
  EXPECT_FALSE(Table::SameRowMultiset(
      a, MakeTable({Column{kD, catalog::ValueType::kInt64}},
                   {{Value(std::int64_t{1})}, {Value(std::int64_t{2})},
                    {Value(std::int64_t{3})}})));
}

// --- kernel equivalence: project -------------------------------------------

TEST(KernelEquivalenceTest, ProjectMatchesRowKernel) {
  std::mt19937 rng(17);
  // Duplicate attributes in the projection list are legal and must
  // duplicate the column.
  const std::vector<std::vector<catalog::AttributeId>> lists = {
      {kA}, {kC, kA}, {kB, kB, kA}, {kA, kB, kC}, {kC, kC, kC}};
  for (int iter = 0; iter < 20; ++iter) {
    const Table t = RandomTable(rng, MixedHeader(), 40);
    for (const auto& attrs : lists) {
      for (const bool distinct : {false, true}) {
        ASSERT_OK_AND_ASSIGN(const Table want,
                             testcheck::RowProject(t, attrs, distinct));
        ASSERT_OK_AND_ASSIGN(const Table got, Project(t, attrs, distinct));
        ExpectExactlyEqual(got, want);
      }
    }
  }
}

TEST(KernelEquivalenceTest, DistinctAfterProjectMatchesRowKernel) {
  std::mt19937 rng(23);
  const Table t = RandomTable(rng, MixedHeader(), 60, /*null_prob=*/0.4);
  ASSERT_OK_AND_ASSIGN(const Table narrow, Project(t, {kB, kC}));
  ASSERT_OK_AND_ASSIGN(const Table narrow_row, testcheck::RowProject(t, {kB, kC}));
  ExpectExactlyEqual(Distinct(narrow), testcheck::RowDistinct(narrow_row));
}

TEST(KernelEquivalenceTest, ProjectErrorsMatchRowKernel) {
  const Table t(MixedHeader());
  EXPECT_EQ(Project(t, {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Project(t, {}).status().message(),
            testcheck::RowProject(t, {}).status().message());
  EXPECT_EQ(Project(t, {kD}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Project(t, {kD}).status().message(),
            testcheck::RowProject(t, {kD}).status().message());
}

// --- kernel equivalence: select --------------------------------------------

std::vector<Predicate> SelectPredicates() {
  std::vector<Predicate> preds;
  preds.push_back(Predicate::True());
  for (const CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    Predicate by_int;
    by_int.And(Comparison{kA, op, Value(std::int64_t{3})});
    preds.push_back(by_int);
    Predicate by_str;
    by_str.And(Comparison{kB, op, Value("gold")});
    preds.push_back(by_str);
    Predicate attr_attr;
    attr_attr.And(Comparison{kA, op, kC});  // int column vs double column
    preds.push_back(attr_attr);
  }
  Predicate null_literal;  // NULL literal: keeps nothing, any op
  null_literal.And(Comparison{kA, CompareOp::kEq, Value()});
  preds.push_back(null_literal);
  Predicate type_mismatch;  // int column vs string literal: <> is TRUE
  type_mismatch.And(Comparison{kA, CompareOp::kNe, Value("gold")});
  preds.push_back(type_mismatch);
  Predicate conjunction;
  conjunction.And(Comparison{kA, CompareOp::kGe, Value(std::int64_t{1})});
  conjunction.And(Comparison{kB, CompareOp::kEq, Value("a")});
  preds.push_back(conjunction);
  return preds;
}

TEST(KernelEquivalenceTest, SelectMatchesRowKernelAndPreservesOrder) {
  std::mt19937 rng(29);
  for (int iter = 0; iter < 10; ++iter) {
    const Table t = RandomTable(rng, MixedHeader(), 50);
    for (const Predicate& p : SelectPredicates()) {
      ASSERT_OK_AND_ASSIGN(const Table want, testcheck::RowSelect(t, p));
      ASSERT_OK_AND_ASSIGN(const Table got, Select(t, p));
      ExpectExactlyEqual(got, want);
    }
  }
}

TEST(KernelEquivalenceTest, SelectMissingAttributeErrorMatches) {
  std::mt19937 rng(31);
  const Table t = RandomTable(rng, MixedHeader(), 3);
  Predicate p;
  p.And(Comparison{kD, CompareOp::kEq, Value(std::int64_t{1})});
  EXPECT_EQ(Select(t, p).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Select(t, p).status().message(),
            testcheck::RowSelect(t, p).status().message());
}

// --- kernel equivalence: joins ---------------------------------------------

TEST(KernelEquivalenceTest, HashJoinMatchesRowKernelWithNullKeys) {
  std::mt19937 rng(37);
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kC, catalog::ValueType::kInt64},
      Column{kD, catalog::ValueType::kString}};
  const std::vector<EquiJoinAtom> atoms = {{kA, kC}};
  const std::vector<EquiJoinAtom> two_atoms = {{kA, kC}, {kB, kD}};
  for (int iter = 0; iter < 10; ++iter) {
    // Asymmetric sizes in both directions exercise both build sides; high
    // null probability exercises NULL-key filtering on build and probe.
    const Table l = RandomTable(rng, left_header, iter % 2 == 0 ? 12 : 40,
                                /*null_prob=*/0.3);
    const Table r = RandomTable(rng, right_header, iter % 2 == 0 ? 40 : 12,
                                /*null_prob=*/0.3);
    for (const auto& a : {atoms, two_atoms}) {
      ASSERT_OK_AND_ASSIGN(const Table want, testcheck::RowHashJoin(l, r, a));
      ASSERT_OK_AND_ASSIGN(const Table got, HashJoin(l, r, a));
      ExpectExactlyEqual(got, want);
    }
  }
}

TEST(KernelEquivalenceTest, NaturalJoinMatchesRowKernel) {
  std::mt19937 rng(41);
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kC, catalog::ValueType::kDouble}};
  for (int iter = 0; iter < 10; ++iter) {
    const Table l = RandomTable(rng, left_header, 25, /*null_prob=*/0.3);
    const Table r = RandomTable(rng, right_header, 18, /*null_prob=*/0.3);
    ASSERT_OK_AND_ASSIGN(const Table want,
                         testcheck::RowNaturalJoinOnShared(l, r));
    ASSERT_OK_AND_ASSIGN(const Table got, NaturalJoinOnShared(l, r));
    ExpectExactlyEqual(got, want);
  }
}

TEST(KernelEquivalenceTest, JoinErrorsMatchRowKernels) {
  const Table l({Column{kA, catalog::ValueType::kInt64}});
  const Table r({Column{kC, catalog::ValueType::kInt64}});
  EXPECT_EQ(HashJoin(l, r, {}).status().message(),
            testcheck::RowHashJoin(l, r, {}).status().message());
  const std::vector<EquiJoinAtom> bad = {{kA, kD}};
  EXPECT_EQ(HashJoin(l, r, bad).status().message(),
            testcheck::RowHashJoin(l, r, bad).status().message());
  EXPECT_EQ(NaturalJoinOnShared(l, r).status().message(),
            testcheck::RowNaturalJoinOnShared(l, r).status().message());
}

// --- kernel equivalence: distinct ------------------------------------------

TEST(KernelEquivalenceTest, DistinctMatchesRowKernelKeepsFirstOccurrence) {
  std::mt19937 rng(43);
  for (int iter = 0; iter < 10; ++iter) {
    // Few distinct cell values + high NULL rate → many exact-duplicate rows,
    // including rows equal only through NULL == NULL.
    const Table t = RandomTable(rng, MixedHeader(), 50, /*null_prob=*/0.5);
    ExpectExactlyEqual(Distinct(t), testcheck::RowDistinct(t));
  }
}

// --- empty inputs -----------------------------------------------------------

TEST(KernelEquivalenceTest, EmptyInputsMatchRowKernels) {
  const Table t(MixedHeader());
  const Table r({Column{kD, catalog::ValueType::kInt64},
                 Column{kA, catalog::ValueType::kInt64}});
  ASSERT_OK_AND_ASSIGN(const Table p, Project(t, {kB, kA}, /*distinct=*/true));
  ASSERT_OK_AND_ASSIGN(const Table p_row,
                       testcheck::RowProject(t, {kB, kA}, /*distinct=*/true));
  ExpectExactlyEqual(p, p_row);

  Predicate pred;
  pred.And(Comparison{kA, CompareOp::kLt, Value(std::int64_t{5})});
  ASSERT_OK_AND_ASSIGN(const Table s, Select(t, pred));
  ASSERT_OK_AND_ASSIGN(const Table s_row, testcheck::RowSelect(t, pred));
  ExpectExactlyEqual(s, s_row);

  const std::vector<EquiJoinAtom> atoms = {{kA, kD}};
  ASSERT_OK_AND_ASSIGN(const Table j, HashJoin(t, r, atoms));
  ASSERT_OK_AND_ASSIGN(const Table j_row, testcheck::RowHashJoin(t, r, atoms));
  ExpectExactlyEqual(j, j_row);
  ASSERT_OK_AND_ASSIGN(const Table n, NaturalJoinOnShared(t, r));
  ASSERT_OK_AND_ASSIGN(const Table n_row,
                       testcheck::RowNaturalJoinOnShared(t, r));
  ExpectExactlyEqual(n, n_row);

  ExpectExactlyEqual(Distinct(t), testcheck::RowDistinct(t));
}

// --- fixed row-kernel inefficiency contracts -------------------------------

TEST(RowKernelContractTest, SelectReservesAndDistinctKeepsFirstOccurrence) {
  // Pin the two behavioral contracts behind the fixed inefficiencies: σ
  // preserves input order (reservation must not reorder), and Distinct's
  // index-hashing rewrite still keeps exactly the first occurrence.
  const std::vector<Column> header = {Column{kA, catalog::ValueType::kInt64},
                                      Column{kB, catalog::ValueType::kString}};
  const Table t = MakeTable(header, {{Value(std::int64_t{2}), Value("x")},
                                     {Value(std::int64_t{1}), Value("first")},
                                     {Value(std::int64_t{2}), Value("x")},
                                     {Value(std::int64_t{1}), Value("second")},
                                     {Value(), Value()},
                                     {Value(), Value()}});
  Predicate keep_ones;
  keep_ones.And(Comparison{kA, CompareOp::kEq, Value(std::int64_t{1})});
  ASSERT_OK_AND_ASSIGN(const Table sel, testcheck::RowSelect(t, keep_ones));
  ASSERT_EQ(sel.row_count(), 2u);
  EXPECT_EQ(sel.row(0)[1].CompareTotal(Value("first")), 0);
  EXPECT_EQ(sel.row(1)[1].CompareTotal(Value("second")), 0);

  const Table ded = testcheck::RowDistinct(t);
  ASSERT_EQ(ded.row_count(), 4u);  // NULL rows compare equal → kept once
  EXPECT_EQ(ded.row(0)[0].CompareTotal(Value(std::int64_t{2})), 0);
  EXPECT_EQ(ded.row(1)[1].CompareTotal(Value("first")), 0);
  EXPECT_EQ(ded.row(3)[0].CompareTotal(Value()), 0);
  ExpectExactlyEqual(Distinct(t), ded);
}

// --- morsel-parallel parity (DESIGN.md §14) --------------------------------
//
// Every vectorized operator run under a multi-thread MorselContext must
// produce byte-identical output to the sequential kernel — same rows, same
// order, same wire size — at every thread count. morsel_rows=64 (the
// minimum tile) and min_parallel_rows=0 force real morsel fan-out even on
// test-sized tables; threads=1 exercises the contract that a single-thread
// pool takes the exact sequential path.

MorselContext ForcedCtx(ThreadPool& pool, std::size_t radix_bits = 0) {
  MorselContext ctx;
  ctx.pool = &pool;
  ctx.morsel_rows = 64;
  ctx.min_parallel_rows = 0;
  ctx.radix_bits = radix_bits;
  return ctx;
}

std::shared_ptr<const ColumnarTable> Shared(const Table& t) {
  return std::make_shared<const ColumnarTable>(ColumnarTable::FromRows(t));
}

/// Byte-identity: exact rows in exact order, and the same wire size (the
/// parallel gather's wire-byte reduction must match the sequential sum).
void ExpectBatchesIdentical(const ColumnarBatch& got,
                            const ColumnarBatch& want) {
  ExpectExactlyEqual(got.MaterializeRows(), want.MaterializeRows());
  EXPECT_EQ(got.Materialize()->WireSizeBytes(),
            want.Materialize()->WireSizeBytes());
}

constexpr std::size_t kParityThreads[] = {1, 2, 3, 8};

TEST(MorselParityTest, SelectMatchesSequentialAtEveryThreadCount) {
  std::mt19937 rng(53);
  const Table t = RandomTable(rng, MixedHeader(), 300);
  const ColumnarBatch batch = ColumnarBatch::FromTable(Shared(t));
  for (const Predicate& p : SelectPredicates()) {
    ASSERT_OK_AND_ASSIGN(const ColumnarBatch want, SelectBatch(batch, p));
    for (const std::size_t threads : kParityThreads) {
      ThreadPool pool(threads);
      ASSERT_OK_AND_ASSIGN(const ColumnarBatch got,
                           SelectBatch(batch, p, ForcedCtx(pool)));
      ExpectBatchesIdentical(got, want);
    }
  }
}

TEST(MorselParityTest, JoinMatchesSequentialWithNullKeys) {
  std::mt19937 rng(59);
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kC, catalog::ValueType::kInt64},
      Column{kD, catalog::ValueType::kString}};
  const std::vector<EquiJoinAtom> atoms = {{kA, kC}};
  const std::vector<EquiJoinAtom> two_atoms = {{kA, kC}, {kB, kD}};
  for (int iter = 0; iter < 4; ++iter) {
    const Table l = RandomTable(rng, left_header, iter % 2 == 0 ? 80 : 300,
                                /*null_prob=*/0.3);
    const Table r = RandomTable(rng, right_header, iter % 2 == 0 ? 300 : 80,
                                /*null_prob=*/0.3);
    const ColumnarBatch lb = ColumnarBatch::FromTable(Shared(l));
    const ColumnarBatch rb = ColumnarBatch::FromTable(Shared(r));
    for (const auto& a : {atoms, two_atoms}) {
      ASSERT_OK_AND_ASSIGN(const ColumnarBatch want, JoinBatches(lb, rb, a));
      for (const std::size_t threads : kParityThreads) {
        ThreadPool pool(threads);
        ASSERT_OK_AND_ASSIGN(const ColumnarBatch got,
                             JoinBatches(lb, rb, a, ForcedCtx(pool)));
        ExpectBatchesIdentical(got, want);
      }
    }
  }
}

TEST(MorselParityTest, NaturalJoinMatchesSequential) {
  std::mt19937 rng(61);
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kC, catalog::ValueType::kDouble}};
  const Table l = RandomTable(rng, left_header, 200, /*null_prob=*/0.3);
  const Table r = RandomTable(rng, right_header, 150, /*null_prob=*/0.3);
  const ColumnarBatch lb = ColumnarBatch::FromTable(Shared(l));
  const ColumnarBatch rb = ColumnarBatch::FromTable(Shared(r));
  ASSERT_OK_AND_ASSIGN(const ColumnarBatch want, NaturalJoinBatches(lb, rb));
  for (const std::size_t threads : kParityThreads) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(const ColumnarBatch got,
                         NaturalJoinBatches(lb, rb, ForcedCtx(pool)));
    ExpectBatchesIdentical(got, want);
  }
}

TEST(MorselParityTest, DistinctAndProjectDistinctMatchSequential) {
  std::mt19937 rng(67);
  // Few distinct values + NULLs → heavy duplication across morsels, the
  // case where a wrong first-occurrence rule would show.
  const Table t = RandomTable(rng, MixedHeader(), 400, /*null_prob=*/0.4);
  const ColumnarBatch batch = ColumnarBatch::FromTable(Shared(t));
  const ColumnarBatch want_distinct = DistinctBatch(batch);
  ASSERT_OK_AND_ASSIGN(const ColumnarBatch want_proj,
                       ProjectBatch(batch, {kB, kC}, /*distinct=*/true));
  for (const std::size_t threads : kParityThreads) {
    ThreadPool pool(threads);
    ExpectBatchesIdentical(DistinctBatch(batch, ForcedCtx(pool)),
                           want_distinct);
    ASSERT_OK_AND_ASSIGN(
        const ColumnarBatch got_proj,
        ProjectBatch(batch, {kB, kC}, /*distinct=*/true, ForcedCtx(pool)));
    ExpectBatchesIdentical(got_proj, want_proj);
  }
}

TEST(MorselParityTest, EmptyPartitionsAndEmptyInputs) {
  std::mt19937 rng(71);
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kC, catalog::ValueType::kInt64},
      Column{kD, catalog::ValueType::kString}};
  const std::vector<EquiJoinAtom> atoms = {{kA, kC}};
  // radix_bits=6 → 64 partitions over ≤8 build rows: most partitions empty.
  const Table small_l = RandomTable(rng, left_header, 8, /*null_prob=*/0.2);
  const Table small_r = RandomTable(rng, right_header, 40, /*null_prob=*/0.2);
  const Table empty_l(left_header);
  const ColumnarBatch slb = ColumnarBatch::FromTable(Shared(small_l));
  const ColumnarBatch srb = ColumnarBatch::FromTable(Shared(small_r));
  const ColumnarBatch elb = ColumnarBatch::FromTable(Shared(empty_l));
  ASSERT_OK_AND_ASSIGN(const ColumnarBatch want, JoinBatches(slb, srb, atoms));
  ASSERT_OK_AND_ASSIGN(const ColumnarBatch want_empty,
                       JoinBatches(elb, srb, atoms));
  for (const std::size_t threads : kParityThreads) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(
        const ColumnarBatch got,
        JoinBatches(slb, srb, atoms, ForcedCtx(pool, /*radix_bits=*/6)));
    ExpectBatchesIdentical(got, want);
    ASSERT_OK_AND_ASSIGN(
        const ColumnarBatch got_empty,
        JoinBatches(elb, srb, atoms, ForcedCtx(pool, /*radix_bits=*/6)));
    ExpectBatchesIdentical(got_empty, want_empty);
    ExpectBatchesIdentical(DistinctBatch(elb, ForcedCtx(pool)),
                           DistinctBatch(elb));
  }
}

TEST(MorselParityTest, AllRowsInOnePartitionSkew) {
  // Every row carries the same join key: the whole build side lands in one
  // radix partition and every probe row matches every build row. Output
  // order (probe-major, build rows ascending) must survive the skew.
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kC, catalog::ValueType::kInt64},
      Column{kD, catalog::ValueType::kString}};
  Table l(left_header);
  Table r(right_header);
  for (int i = 0; i < 40; ++i) {
    CISQP_CHECK(l.AppendRow({Value(std::int64_t{7}),
                             Value("l" + std::to_string(i))}).ok());
  }
  for (int i = 0; i < 90; ++i) {
    CISQP_CHECK(r.AppendRow({Value(std::int64_t{7}),
                             Value("r" + std::to_string(i))}).ok());
  }
  const ColumnarBatch lb = ColumnarBatch::FromTable(Shared(l));
  const ColumnarBatch rb = ColumnarBatch::FromTable(Shared(r));
  const std::vector<EquiJoinAtom> atoms = {{kA, kC}};
  ASSERT_OK_AND_ASSIGN(const ColumnarBatch want, JoinBatches(lb, rb, atoms));
  ASSERT_EQ(want.row_count(), 40u * 90u);
  for (const std::size_t threads : kParityThreads) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(
        const ColumnarBatch got,
        JoinBatches(lb, rb, atoms, ForcedCtx(pool, /*radix_bits=*/4)));
    ExpectBatchesIdentical(got, want);
  }
}

TEST(MorselParityTest, GoldenJoinOutputAtEveryThreadCount) {
  // Hand-written golden: row order pinned to the row-kernel contract
  // (probe-major; among equal keys, build rows in input order).
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kC, catalog::ValueType::kInt64},
      Column{kD, catalog::ValueType::kString}};
  // Build = left (2 rows < 3 rows). Probe rows: k=1 matches both left
  // 1-rows in input order; NULL key never matches.
  const Table l = MakeTable(left_header, {{Value(std::int64_t{1}), Value("x")},
                                          {Value(std::int64_t{1}), Value("y")}});
  const Table r = MakeTable(right_header,
                            {{Value(std::int64_t{1}), Value("p")},
                             {Value(), Value("q")},
                             {Value(std::int64_t{1}), Value("s")}});
  std::vector<Column> out_header = left_header;
  out_header.insert(out_header.end(), right_header.begin(), right_header.end());
  const Table golden = MakeTable(
      out_header,
      {{Value(std::int64_t{1}), Value("x"), Value(std::int64_t{1}), Value("p")},
       {Value(std::int64_t{1}), Value("y"), Value(std::int64_t{1}), Value("p")},
       {Value(std::int64_t{1}), Value("x"), Value(std::int64_t{1}), Value("s")},
       {Value(std::int64_t{1}), Value("y"), Value(std::int64_t{1}), Value("s")}});
  const ColumnarBatch lb = ColumnarBatch::FromTable(Shared(l));
  const ColumnarBatch rb = ColumnarBatch::FromTable(Shared(r));
  const std::vector<EquiJoinAtom> atoms = {{kA, kC}};
  for (const std::size_t threads : kParityThreads) {
    ThreadPool pool(threads);
    ASSERT_OK_AND_ASSIGN(const ColumnarBatch got,
                         JoinBatches(lb, rb, atoms, ForcedCtx(pool, 2)));
    ExpectExactlyEqual(got.MaterializeRows(), golden);
  }
}

TEST(MorselParityTest, JoinStatsCountHashesMorselsAndPartitions) {
  std::mt19937 rng(73);
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kC, catalog::ValueType::kInt64},
      Column{kD, catalog::ValueType::kString}};
  const Table l = RandomTable(rng, left_header, 200, /*null_prob=*/0.1);
  const Table r = RandomTable(rng, right_header, 300, /*null_prob=*/0.1);
  const ColumnarBatch lb = ColumnarBatch::FromTable(Shared(l));
  const ColumnarBatch rb = ColumnarBatch::FromTable(Shared(r));
  const std::vector<EquiJoinAtom> atoms = {{kA, kC}};

  // The dictionary-hash reuse contract, sequential and partitioned alike:
  // each row is hashed exactly once — hash count is O(build + probe), never
  // O(matches) and never re-hashed during partitioning.
  KernelStats seq;
  {
    const KernelStatsScope scope(&seq);
    ASSERT_OK_AND_ASSIGN(const ColumnarBatch out, JoinBatches(lb, rb, atoms));
    (void)out;
  }
  EXPECT_EQ(seq.rows_hashed, 500u);
  EXPECT_EQ(seq.morsels, 0u);     // sequential path: no morsel dispatch
  EXPECT_EQ(seq.partitions, 0u);  // and no radix fan-out

  ThreadPool pool(3);
  KernelStats par;
  {
    const KernelStatsScope scope(&par);
    ASSERT_OK_AND_ASSIGN(const ColumnarBatch out,
                         JoinBatches(lb, rb, atoms, ForcedCtx(pool, 3)));
    (void)out;
  }
  EXPECT_EQ(par.rows_hashed, 500u);
  EXPECT_GT(par.morsels, 0u);
  EXPECT_EQ(par.partitions, 8u);  // radix_bits=3
  EXPECT_EQ(par.worker_busy_us.size(), pool.thread_count());
  EXPECT_EQ(par.hash_build_rows, seq.hash_build_rows);
  EXPECT_EQ(par.hash_probe_rows, seq.hash_probe_rows);
  EXPECT_EQ(par.hash_matches, seq.hash_matches);
}

}  // namespace
}  // namespace cisqp::algebra
