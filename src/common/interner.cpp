#include "common/interner.hpp"

#include <memory>

namespace cisqp {

SymbolId SymbolTable::Intern(std::string_view name) {
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  CISQP_CHECK_MSG(names_.size() < kInvalidSymbol, "symbol table overflow");
  // Store the string in a stable location first; the map key must view the
  // owned copy, not the caller's buffer. std::deque-like stability is obtained
  // by reserving through unique_ptr-free growth: std::vector<std::string>
  // moves the std::string objects on growth but SSO-free heap buffers remain
  // valid only for long strings — so re-key the map from scratch on
  // reallocation instead of risking dangling views.
  const bool will_reallocate = names_.size() == names_.capacity();
  names_.emplace_back(name);
  const SymbolId id = static_cast<SymbolId>(names_.size() - 1);
  if (will_reallocate) {
    index_.clear();
    for (SymbolId i = 0; i < names_.size(); ++i) {
      index_.emplace(std::string_view(names_[i]), i);
    }
  } else {
    index_.emplace(std::string_view(names_.back()), id);
  }
  return id;
}

SymbolId SymbolTable::Find(std::string_view name) const noexcept {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::NameOf(SymbolId id) const {
  CISQP_CHECK_MSG(id < names_.size(), "unknown symbol id " << id);
  return names_[id];
}

}  // namespace cisqp
