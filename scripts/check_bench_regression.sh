#!/usr/bin/env bash
# CI bench smoke gate for the columnar execution engine (E16).
#
# Runs bench_exec_kernels, then compares the freshly measured end-to-end
# speedup (row kernels / columnar kernels) against the committed baseline in
# bench/baselines/BENCH_exec_kernels.json. The step fails when
#
#   * the columnar output is not byte-identical to the row-kernel output, or
#   * the fresh speedup drops below HALF the committed baseline speedup
#     (a >2x regression — generous enough for noisy CI runners, tight
#     enough to catch an accidental de-vectorization).
#
#   scripts/check_bench_regression.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BENCH="$BUILD_DIR/bench/bench_exec_kernels"
if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not built" >&2
  exit 1
fi

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
# --benchmark_filter matching nothing skips the google-benchmark loops; the
# E16 kernel table (and its artifact) is printed unconditionally by main().
CISQP_BENCH_OUT_DIR="$OUT_DIR" "$BENCH" --benchmark_filter='^$'

python3 - "$OUT_DIR/BENCH_exec_kernels.json" \
    bench/baselines/BENCH_exec_kernels.json <<'PY'
import json
import sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
fresh = json.load(open(fresh_path))["rows"][0]
baseline = json.load(open(baseline_path))["rows"][0]

if not fresh["identical"]:
    sys.exit("FAIL: columnar output is not byte-identical to the row kernels")

floor = baseline["speedup"] / 2.0
print(f"fresh speedup:    {fresh['speedup']:.2f}x "
      f"(row {fresh['row_total_us']}us / columnar {fresh['columnar_total_us']}us)")
print(f"baseline speedup: {baseline['speedup']:.2f}x  -> floor {floor:.2f}x")
if fresh["speedup"] < floor:
    sys.exit(f"FAIL: speedup {fresh['speedup']:.2f}x regressed more than 2x "
             f"against the committed baseline {baseline['speedup']:.2f}x")
print("OK: columnar engine within 2x of the committed baseline")
PY
