// E19 — multi-query serving front door: plan + CanView caching under
// concurrent load.
//
// The front door admits 1/8/32 concurrent clients onto one shared door and
// measures per-request latency in two modes:
//
//   cold    every request carries a unique WHERE literal, so its canonical
//           signature never repeats — each request pays parse + full
//           feasible-plan search + execution.
//   cached  requests draw from a small fixed set of warmed shapes — each
//           request pays parse + cache lookup + execution, and its answer
//           must be byte-identical to the single-threaded cold reference.
//
// Claim gated by scripts/check_bench_regression.sh: at 1 client the cached
// p50 is >=5x below the cold p50, and every cached answer is byte-identical
// to its reference. The artifact records {clients, mode, requests, p50_us,
// p99_us, qps, identical} rows plus a summary row with the 1-client speedup.
#include "bench_util.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "exec/cluster.hpp"
#include "serve/front_door.hpp"

namespace cisqp::bench {
namespace {

using workload::MedicalScenario;

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The world every phase serves against: catalog, policy, populated
/// cluster, stats. Built once; front doors are cheap views over it.
struct World {
  catalog::Catalog cat = MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths = MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster{cat};
  plan::StatsCatalog stats;

  World() {
    Rng rng(2026);
    UnwrapStatus(MedicalScenario::PopulateCluster(
                     cluster, MedicalScenario::DataConfig{64, 0.4, 0.6, 10},
                     rng),
                 "populate cluster");
    stats = MedicalScenario::ComputeStats(cluster);
  }

  serve::FrontDoor MakeDoor(std::size_t clients) const {
    serve::ServeOptions options;
    options.max_concurrent = std::min<std::size_t>(clients, 8);
    // Third-party assignments widen the per-order candidate space — the
    // paper's cooperative-server mode, and the realistic cold-planning cost.
    options.allow_third_party = true;
    return serve::FrontDoor(cat, auths, cluster, &stats, options);
  }
};

/// The paper's Example 2.2 join — the widest feasible chain under the
/// Fig. 3 policy. Its order/assignment space is what a cold request must
/// search and a cached request skips.
const std::string kWideQuery{MedicalScenario::kPaperQuery};

/// The warmed shapes for cached mode (all feasible under the Fig. 3 policy;
/// selective point-ish filters — the serving workload's bread and butter).
std::vector<std::string> CachedShapes() {
  return {kWideQuery + " WHERE Holder >= 56",
          kWideQuery + " WHERE Holder >= 48 AND Plan <> 'gold'",
          "SELECT Citizen, HealthAid, Patient, Disease FROM Nat_registry "
          "JOIN Hospital ON Citizen = Patient WHERE Citizen >= 56",
          "SELECT Holder, Plan FROM Insurance WHERE Holder >= 56"};
}

/// A query whose signature is unique per `k` — cold mode's cache-miss feed.
std::string ColdShape(std::size_t k) {
  return kWideQuery + " WHERE Holder >= " + std::to_string(k);
}

struct PhaseResult {
  std::int64_t p50_us = 0;
  std::int64_t p99_us = 0;
  std::int64_t plan_p50_us = 0;
  std::int64_t exec_p50_us = 0;
  double qps = 0.0;
  bool identical = true;
  std::size_t requests = 0;
};

/// Runs `sqls` through `door` from `clients` worker threads (shared atomic
/// cursor). When `references` is non-null, request i's table must be
/// byte-identical to (*references)[i % references->size()].
PhaseResult RunPhase(serve::FrontDoor& door,
                     const std::vector<std::string>& sqls,
                     std::size_t clients,
                     const std::vector<storage::Table>* references) {
  std::vector<std::int64_t> latencies(sqls.size(), 0);
  std::vector<std::int64_t> plan_us(sqls.size(), 0);
  std::vector<std::int64_t> exec_us(sqls.size(), 0);
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> identical{true};
  const std::int64_t phase_start = NowUs();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        for (std::size_t i = cursor.fetch_add(1);
             i < sqls.size(); i = cursor.fetch_add(1)) {
          serve::Request request;
          request.sql = sqls[i];
          const std::int64_t t0 = NowUs();
          Result<serve::Response> response = door.Serve(request);
          latencies[i] = NowUs() - t0;
          if (response.ok()) {
            plan_us[i] = response->plan_us;
            exec_us[i] = response->exec_us;
          }
          if (!response.ok()) {
            std::fprintf(stderr, "FATAL (serve): %s\n",
                         response.status().ToString().c_str());
            std::abort();
          }
          if (references != nullptr) {
            const storage::Table& want =
                (*references)[i % references->size()];
            if (response->table.rows() != want.rows() ||
                response->table.columns() != want.columns()) {
              identical.store(false, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const std::int64_t elapsed_us = NowUs() - phase_start;

  PhaseResult out;
  out.requests = sqls.size();
  out.identical = identical.load();
  std::sort(latencies.begin(), latencies.end());
  std::sort(plan_us.begin(), plan_us.end());
  std::sort(exec_us.begin(), exec_us.end());
  out.p50_us = latencies[latencies.size() / 2];
  out.p99_us = latencies[(latencies.size() * 99) / 100];
  out.plan_p50_us = plan_us[plan_us.size() / 2];
  out.exec_p50_us = exec_us[exec_us.size() / 2];
  out.qps = elapsed_us > 0 ? 1e6 * static_cast<double>(sqls.size()) /
                                 static_cast<double>(elapsed_us)
                           : 0.0;
  return out;
}

void PrintServingSweep() {
  PrintHeader("E19: multi-query serving with plan + CanView caching",
              "cached-hit p50 >=5x below cold p50 at 1 client; cached "
              "answers byte-identical to the cold reference");
  const World world;
  const std::vector<std::string> shapes = CachedShapes();

  // Single-threaded cold references for the cached shapes.
  std::vector<storage::Table> references;
  {
    serve::FrontDoor ref_door = world.MakeDoor(1);
    for (const std::string& sql : shapes) {
      serve::Request request;
      request.sql = sql;
      references.push_back(
          Unwrap(ref_door.Serve(request), "reference serve").table);
    }
  }

  Artifact artifact("serving",
                    "E19: multi-query serving with plan + CanView caching",
                    "cached-hit p50 >=5x below cold p50 at 1 client; cached "
                    "answers byte-identical to the cold reference");
  std::printf("%8s %8s %9s %10s %10s %10s %10s\n", "clients", "mode",
              "requests", "p50_us", "p99_us", "qps", "identical");

  std::int64_t cold_p50_1 = 0;
  std::int64_t cached_p50_1 = 0;
  std::size_t cold_counter = 0;
  bool all_identical = true;
  for (const std::size_t clients : {1u, 8u, 32u}) {
    // Cold: every request is a fresh signature on a fresh door.
    serve::FrontDoor door = world.MakeDoor(clients);
    const std::size_t cold_requests = 24 * clients;
    std::vector<std::string> cold_sqls;
    cold_sqls.reserve(cold_requests);
    for (std::size_t i = 0; i < cold_requests; ++i) {
      cold_sqls.push_back(ColdShape(cold_counter++));
    }
    const PhaseResult cold = RunPhase(door, cold_sqls, clients, nullptr);

    // Cached: warm the fixed shapes once, then serve them repeatedly.
    std::vector<std::string> warm_sqls;
    const std::size_t cached_requests = 60 * clients;
    warm_sqls.reserve(cached_requests);
    for (std::size_t i = 0; i < cached_requests; ++i) {
      warm_sqls.push_back(shapes[i % shapes.size()]);
    }
    {  // Warm-up pass (excluded from timing): one cold serve per shape.
      for (const std::string& sql : shapes) {
        serve::Request request;
        request.sql = sql;
        (void)Unwrap(door.Serve(request), "warmup serve");
      }
    }
    const PhaseResult cached = RunPhase(door, warm_sqls, clients, &references);
    all_identical = all_identical && cached.identical;
    if (clients == 1) {
      cold_p50_1 = cold.p50_us;
      cached_p50_1 = cached.p50_us;
    }

    for (const auto* phase : {&cold, &cached}) {
      const bool is_cold = phase == &cold;
      std::printf("%8zu %8s %9zu %10lld %10lld %10.0f %10s\n", clients,
                  is_cold ? "cold" : "cached", phase->requests,
                  static_cast<long long>(phase->p50_us),
                  static_cast<long long>(phase->p99_us), phase->qps,
                  phase->identical ? "yes" : "NO");
      artifact.Row()
          .Value("clients", clients)
          .Value("mode", is_cold ? "cold" : "cached")
          .Value("requests", phase->requests)
          .Value("p50_us", phase->p50_us)
          .Value("p99_us", phase->p99_us)
          .Value("plan_p50_us", phase->plan_p50_us)
          .Value("exec_p50_us", phase->exec_p50_us)
          .Value("qps", phase->qps)
          .Value("identical", phase->identical);
    }
  }

  const double speedup =
      cached_p50_1 > 0 ? static_cast<double>(cold_p50_1) /
                             static_cast<double>(cached_p50_1)
                       : 0.0;
  std::printf("1-client cached speedup: %.2fx (cold p50 %lldus / cached "
              "p50 %lldus)\n",
              speedup, static_cast<long long>(cold_p50_1),
              static_cast<long long>(cached_p50_1));
  artifact.Row()
      .Value("mode", "summary")
      .Value("cold_p50_us", cold_p50_1)
      .Value("cached_p50_us", cached_p50_1)
      .Value("speedup", speedup)
      .Value("identical", all_identical);
  artifact.Write();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: a cached answer differed from its cold reference\n");
    std::abort();
  }
}

void BM_ServeCached(benchmark::State& state) {
  const World world;
  serve::FrontDoor door = world.MakeDoor(1);
  serve::Request request;
  request.sql = std::string(MedicalScenario::kPaperQuery);
  (void)Unwrap(door.Serve(request), "warmup serve");
  for (auto _ : state) {
    Result<serve::Response> response = door.Serve(request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeCached)->Unit(benchmark::kMicrosecond);

void BM_ServeCold(benchmark::State& state) {
  const World world;
  serve::FrontDoor door = world.MakeDoor(1);
  std::size_t k = 0;
  for (auto _ : state) {
    serve::Request request;
    request.sql = ColdShape(k++);
    Result<serve::Response> response = door.Serve(request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeCold)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintServingSweep();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
