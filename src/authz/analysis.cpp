#include "authz/analysis.hpp"

#include <sstream>

namespace cisqp::authz {

std::string_view BaseVisibilityName(BaseVisibility v) noexcept {
  switch (v) {
    case BaseVisibility::kNone: return "none";
    case BaseVisibility::kPartial: return "partial";
    case BaseVisibility::kFull: return "full";
  }
  return "?";
}

std::vector<std::vector<BaseVisibility>> BaseVisibilityMatrix(
    const catalog::Catalog& cat, const AuthorizationSet& auths) {
  std::vector<std::vector<BaseVisibility>> matrix(
      cat.server_count(),
      std::vector<BaseVisibility>(cat.relation_count(), BaseVisibility::kNone));
  for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
    // Union of unconditional grants for this server.
    IdSet unconditional;
    for (const Authorization& rule : auths.ForServer(s)) {
      if (rule.path.empty()) unconditional.UnionWith(rule.attributes);
    }
    for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
      const IdSet visible =
          IdSet::Intersection(unconditional, cat.relation(r).attribute_set);
      if (visible.empty()) {
        matrix[s][r] = BaseVisibility::kNone;
      } else if (visible == cat.relation(r).attribute_set) {
        matrix[s][r] = BaseVisibility::kFull;
      } else {
        matrix[s][r] = BaseVisibility::kPartial;
      }
    }
  }
  return matrix;
}

std::string VisibilityMatrixToString(
    const catalog::Catalog& cat,
    const std::vector<std::vector<BaseVisibility>>& matrix) {
  std::ostringstream oss;
  std::size_t name_width = 6;
  for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
    name_width = std::max(name_width, cat.server(s).name.size());
  }
  oss << std::string(name_width + 2, ' ');
  for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
    oss << cat.relation(r).name << "  ";
  }
  oss << "\n";
  for (catalog::ServerId s = 0; s < matrix.size(); ++s) {
    oss << cat.server(s).name
        << std::string(name_width + 2 - cat.server(s).name.size(), ' ');
    for (catalog::RelationId r = 0; r < matrix[s].size(); ++r) {
      const char mark = matrix[s][r] == BaseVisibility::kFull      ? 'F'
                        : matrix[s][r] == BaseVisibility::kPartial ? 'p'
                                                                   : '-';
      oss << mark << std::string(cat.relation(r).name.size() + 1, ' ');
    }
    oss << "\n";
  }
  oss << "(F = full relation, p = some attributes, - = nothing; "
         "unconditional grants only)\n";
  return oss.str();
}

PolicyDiff DiffPolicies(const AuthorizationSet& a, const AuthorizationSet& b) {
  PolicyDiff diff;
  for (const Authorization& rule : a.All()) {
    if (!b.Contains(rule)) diff.only_in_a.push_back(rule);
  }
  for (const Authorization& rule : b.All()) {
    if (!a.Contains(rule)) diff.only_in_b.push_back(rule);
  }
  return diff;
}

}  // namespace cisqp::authz
