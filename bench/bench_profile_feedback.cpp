// E17 (extension) — the estimate→execute→feed-back loop: a profiled run
// harvests actual per-operator cardinalities into a StatsFeedback store, and
// the next planning of the same query consults the measured values instead
// of the model. The experiment plans the paper's query with *default*
// (deliberately wrong) statistics, executes it profiled, feeds the measured
// cardinalities back, re-plans, and re-executes — reporting the
// estimate-vs-actual drift of both rounds (geometric mean of the per-operator
// multiplicative error) and whether the corrected costs changed the plan.
// The second round's drift must not exceed the first's: every harvested
// subtree signature now estimates at its measured cardinality.
#include "bench_util.hpp"

#include <cmath>

#include "exec/executor.hpp"
#include "exec/explain.hpp"
#include "plan/dp_optimizer.hpp"
#include "planner/plan_search.hpp"

namespace cisqp::bench {
namespace {

/// Geometric mean of max(drift, 1/drift) over profiled operators with an
/// estimate, where drift = (actual+1)/(estimated+1). 1.0 = every estimate
/// exact; 10.0 = one order of magnitude off on average.
double MeanDrift(const obs::QueryProfile& profile) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const obs::OperatorStats& op : profile.operators) {
    if (op.node_id < 0 || op.invocations == 0 || op.est_rows < 0.0) continue;
    const double drift = op.DriftRatio();
    log_sum += std::fabs(std::log(drift));
    ++n;
  }
  return n == 0 ? 1.0 : std::exp(log_sum / static_cast<double>(n));
}

struct RoundResult {
  plan::QueryPlan plan;
  obs::QueryProfile profile;
  double drift = 1.0;
  double estimated_bytes = 0.0;
};

void PrintFeedbackTable() {
  PrintHeader("E17 / estimate feedback loop (extension)",
              "profiled actual cardinalities fed back into planning reduce "
              "estimate-vs-actual drift on the next run");
  Artifact artifact("profile_feedback",
                    "E17 / estimate feedback loop (extension)",
                    "drift (geomean multiplicative estimate error) before and "
                    "after feeding measured cardinalities back");

  catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster(cat);
  Rng rng(2008);
  workload::MedicalScenario::DataConfig data;
  data.citizens = 500;
  UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
               "populate");
  const plan::QuerySpec spec = Unwrap(
      sql::ParseAndBind(cat, workload::MedicalScenario::kPaperQuery),
      "parse paper query");

  plan::StatsFeedback feedback;
  const exec::DistributedExecutor executor(cluster, auths);

  // One plan→execute→profile round. No StatsCatalog anywhere: the model
  // works from default statistics, so round one is exactly the
  // wrong-estimates regime the feedback loop is built to correct.
  const auto run_round = [&](const plan::StatsFeedback* fb) {
    planner::FeasiblePlanSearch search(cat, auths, nullptr, fb);
    planner::PlanSearchOptions options;
    options.threads = BenchThreads();
    auto result = Unwrap(search.Search(spec, options), "plan search");
    RoundResult round;
    round.estimated_bytes = result.estimated_bytes;
    exec::ExecutionOptions exec_options;
    exec_options.profile = &round.profile;
    benchmark::DoNotOptimize(executor.Execute(
        result.plan, result.safe_plan.assignment, exec_options));
    exec::AnnotateEstimates(cat, nullptr, fb, result.plan, round.profile);
    round.drift = MeanDrift(round.profile);
    round.plan = std::move(result.plan);
    return round;
  };

  const RoundResult first = run_round(nullptr);
  const std::size_t harvested =
      plan::HarvestActualCardinalities(cat, first.plan, first.profile, feedback);
  const RoundResult second = run_round(&feedback);

  // The DP optimizer consults the same store: report how far the corrected
  // subset cardinalities move its cost estimate for the optimal tree.
  plan::DpOptimizerOptions dp_options;
  const double dp_model_cost =
      Unwrap(plan::OptimizeJoinOrder(cat, nullptr, spec, dp_options),
             "dp model")
          .estimated_cost;
  dp_options.feedback = &feedback;
  const double dp_measured_cost =
      Unwrap(plan::OptimizeJoinOrder(cat, nullptr, spec, dp_options),
             "dp measured")
          .estimated_cost;

  const bool plan_changed =
      first.plan.ToString(cat) != second.plan.ToString(cat);
  const bool drift_reduced = second.drift <= first.drift;

  std::printf("%-8s %-12s %-16s %-14s\n", "round", "drift", "est_bytes",
              "feedback_size");
  std::printf("%-8d %-12.3f %-16.0f %-14d\n", 1, first.drift,
              first.estimated_bytes, 0);
  std::printf("%-8d %-12.3f %-16.0f %-14zu\n", 2, second.drift,
              second.estimated_bytes, feedback.size());
  std::printf("\nharvested %zu signature(s); DP estimated cost %.0f (model) "
              "-> %.0f (measured); plan %s; drift %s (%.3f -> %.3f)\n",
              harvested, dp_model_cost, dp_measured_cost,
              plan_changed ? "CHANGED" : "unchanged",
              drift_reduced ? "REDUCED" : "NOT reduced", first.drift,
              second.drift);
  if (!drift_reduced && !plan_changed) {
    std::printf("WARNING: feedback neither reduced drift nor changed the "
                "plan\n");
  }

  artifact.Row()
      .Value("round", 1)
      .Value("drift_geomean", first.drift)
      .Value("estimated_bytes", first.estimated_bytes)
      .Value("feedback_entries", std::size_t{0});
  artifact.Row()
      .Value("round", 2)
      .Value("drift_geomean", second.drift)
      .Value("estimated_bytes", second.estimated_bytes)
      .Value("feedback_entries", feedback.size())
      .Value("harvested", harvested)
      .Value("plan_changed", plan_changed)
      .Value("drift_reduced", drift_reduced)
      .Value("dp_cost_model", dp_model_cost)
      .Value("dp_cost_measured", dp_measured_cost)
      .Json("sample_profile", second.profile.ToJson());
  artifact.Write();
  std::printf("\n");
}

void BM_ProfiledExecution(benchmark::State& state) {
  catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster(cat);
  Rng rng(2008);
  workload::MedicalScenario::DataConfig data;
  data.citizens = 500;
  UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
               "populate");
  plan::QueryPlan plan = PaperPlan(cat);
  planner::SafePlanner planner(cat, auths);
  const auto report = Unwrap(planner.Analyze(plan), "analyze");
  const exec::DistributedExecutor executor(cluster, auths);
  for (auto _ : state) {
    obs::QueryProfile profile;
    exec::ExecutionOptions options;
    options.profile = &profile;
    benchmark::DoNotOptimize(
        executor.Execute(plan, report.plan->assignment, options));
  }
}
BENCHMARK(BM_ProfiledExecution);

void BM_HarvestCardinalities(benchmark::State& state) {
  catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster(cat);
  Rng rng(2008);
  workload::MedicalScenario::DataConfig data;
  data.citizens = 500;
  UnwrapStatus(workload::MedicalScenario::PopulateCluster(cluster, data, rng),
               "populate");
  plan::QueryPlan plan = PaperPlan(cat);
  planner::SafePlanner planner(cat, auths);
  const auto report = Unwrap(planner.Analyze(plan), "analyze");
  const exec::DistributedExecutor executor(cluster, auths);
  obs::QueryProfile profile;
  exec::ExecutionOptions options;
  options.profile = &profile;
  benchmark::DoNotOptimize(
      executor.Execute(plan, report.plan->assignment, options));
  for (auto _ : state) {
    plan::StatsFeedback feedback;
    benchmark::DoNotOptimize(
        plan::HarvestActualCardinalities(cat, plan, profile, feedback));
  }
}
BENCHMARK(BM_HarvestCardinalities);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintFeedbackTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
