// Tests for the serving front door (src/serve): cold/cached byte-identity,
// the admission scheduler, 32-client concurrency on the shared executor
// pool (runs under TSan in CI), policy-epoch invalidation exactness, the
// CanView memo, and the executor's shared-pool regression guard (one pool
// construction across many concurrent parallel executions).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "authz/canview_cache.hpp"
#include "exec/executor.hpp"
#include "obs/metrics.hpp"
#include "planner/safe_planner.hpp"
#include "serve/admission.hpp"
#include "serve/front_door.hpp"
#include "serve/plan_cache.hpp"
#include "test_util.hpp"

namespace cisqp::serve {
namespace {

using cisqp::testing::MedicalFixture;

Request Req(std::string sql) {
  Request request;
  request.sql = std::move(sql);
  return request;
}

bool TablesIdentical(const storage::Table& a, const storage::Table& b) {
  if (a.columns() != b.columns() || a.row_count() != b.row_count()) return false;
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    if (a.rows()[i] != b.rows()[i]) return false;
  }
  return true;
}

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<exec::Cluster>(fix_.cat);
    Rng rng(2026);
    ASSERT_OK(workload::MedicalScenario::PopulateCluster(
        *cluster_, workload::MedicalScenario::DataConfig{300, 0.4, 0.6, 30},
        rng));
    stats_ = workload::MedicalScenario::ComputeStats(*cluster_);
  }

  FrontDoor MakeDoor(ServeOptions options = {}) const {
    return FrontDoor(fix_.cat, fix_.auths, *cluster_, &stats_, options);
  }

  /// The medical policy minus every rule that mentions a Hospital
  /// attribute (in its attribute set or its join path) — revokes all views
  /// over Hospital, making the paper's 3-way join infeasible while leaving
  /// Insurance-only queries untouched.
  authz::AuthorizationSet RevokeHospital() const {
    const IdSet hospital =
        fix_.cat.relation(testing::Relation(fix_.cat, "Hospital"))
            .attribute_set;
    const auto mentions_hospital = [&](const authz::Authorization& rule) {
      for (IdSet::value_type a : rule.attributes) {
        if (hospital.Contains(a)) return true;
      }
      for (IdSet::value_type a : rule.path.Attributes()) {
        if (hospital.Contains(a)) return true;
      }
      return false;
    };
    authz::AuthorizationSet reduced;
    for (const authz::Authorization& rule : fix_.auths.All()) {
      if (mentions_hospital(rule)) continue;
      EXPECT_OK(reduced.Add(fix_.cat, rule));
    }
    return reduced;
  }

  MedicalFixture fix_;
  std::unique_ptr<exec::Cluster> cluster_;
  plan::StatsCatalog stats_;
  const std::string paper_sql_{workload::MedicalScenario::kPaperQuery};
  const std::string insurance_sql_{"SELECT Holder, Plan FROM Insurance"};
};

TEST_F(ServingTest, CachedAnswerIsByteIdenticalToCold) {
  FrontDoor door = MakeDoor();
  ASSERT_OK_AND_ASSIGN(const Response cold, door.Serve(Req(paper_sql_)));
  ASSERT_OK_AND_ASSIGN(const Response warm, door.Serve(Req(paper_sql_)));
  EXPECT_FALSE(cold.plan_cache_hit);
  EXPECT_TRUE(warm.plan_cache_hit);
  EXPECT_TRUE(TablesIdentical(cold.table, warm.table));
  EXPECT_EQ(cold.result_server, warm.result_server);
  EXPECT_EQ(cold.signature, warm.signature);
  EXPECT_GT(cold.table.row_count(), 0u);

  const FrontDoorStats stats = door.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  // The cold request warmed the CanView memo; the cached request skipped
  // planning entirely, so runtime enforcement was the only prober left.
  EXPECT_GT(stats.canview_misses, 0u);
}

TEST_F(ServingTest, SpellingVariantsShareOnePlanCacheEntry) {
  FrontDoor door = MakeDoor();
  ASSERT_OK_AND_ASSIGN(const Response a, door.Serve(Req(paper_sql_)));
  // Same meaning, different spelling: case, whitespace, flipped ON operands.
  ASSERT_OK_AND_ASSIGN(
      const Response b,
      door.Serve(Req("select  Patient, Physician, Plan, HealthAid  from "
                         "Insurance join Nat_registry on Citizen = Holder "
                         "join Hospital on Patient = Citizen")));
  EXPECT_TRUE(b.plan_cache_hit);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_TRUE(TablesIdentical(a.table, b.table));
  EXPECT_EQ(door.Stats().plan_cache_size, 1u);
}

TEST_F(ServingTest, InfeasibleVerdictIsCachedWithIdenticalStatus) {
  FrontDoor door = MakeDoor();
  // The §3.2 denied association: Insurance must not see Holder⋈Disease.
  const std::string denied =
      "SELECT Holder, Disease FROM Insurance JOIN Hospital ON Holder = "
      "Patient";
  const Result<Response> cold = door.Serve(Req(denied));
  const Result<Response> warm = door.Serve(Req(denied));
  ASSERT_FALSE(cold.ok());
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(cold.status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(warm.status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(cold.status().message(), warm.status().message());
  const FrontDoorStats stats = door.Stats();
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
}

TEST_F(ServingTest, ThirtyTwoConcurrentClientsShareThePoolSafely) {
  // 32 clients hammer one front door over the shared executor pool: 8
  // admission slots, morsel-parallel execution (threads=2 resolves through
  // the executor's process-shared pool). Every answer must be byte-identical
  // to the single-threaded reference. Runs under TSan in CI.
  ServeOptions options;
  options.max_concurrent = 8;
  options.exec_threads = 2;
  options.morsel.morsel_rows = 64;
  options.morsel.min_parallel_rows = 0;
  FrontDoor door = MakeDoor(options);
  ASSERT_OK_AND_ASSIGN(const Response reference,
                       door.Serve(Req(paper_sql_)));
  ASSERT_OK_AND_ASSIGN(const Response reference_ins,
                       door.Serve(Req(insurance_sql_)));

  constexpr std::size_t kClients = 32;
  std::vector<Result<Response>> responses(kClients, InternalError("unset"));
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        const std::string& sql = (i % 2 == 0) ? paper_sql_ : insurance_sql_;
        responses[i] = door.Serve(Req(sql));
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_OK(responses[i].status());
    EXPECT_TRUE(responses[i]->plan_cache_hit) << "client " << i;
    const Response& want = (i % 2 == 0) ? reference : reference_ins;
    EXPECT_TRUE(TablesIdentical(responses[i]->table, want.table))
        << "client " << i;
  }
  const FrontDoorStats stats = door.Stats();
  EXPECT_EQ(stats.requests, kClients + 2);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.plan_cache_hits, kClients);
}

TEST_F(ServingTest, SharedExecutorPoolIsConstructedOnce) {
  // Regression guard for the per-query pool respawn: N parallel executions
  // with ExecutionOptions::pool == nullptr must share one process-wide pool
  // per thread count, not construct one each.
  const exec::DistributedExecutor executor(*cluster_, fix_.auths);
  planner::SafePlanner planner(fix_.cat, fix_.auths);
  const plan::QueryPlan plan = fix_.PaperPlan();
  ASSERT_OK_AND_ASSIGN(const planner::SafePlan sp, planner.Plan(plan));

  exec::ExecutionOptions options;
  options.threads = 2;
  options.morsel.morsel_rows = 64;
  options.morsel.min_parallel_rows = 0;
  ASSERT_OK(executor.Execute(plan, sp.assignment, options).status());  // pool built
  const std::uint64_t before = ThreadPool::constructed_count();
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(executor.Execute(plan, sp.assignment, options).status());
  }
  EXPECT_EQ(ThreadPool::constructed_count(), before)
      << "executions with threads>1 must reuse the process-shared pool";
}

TEST_F(ServingTest, PolicyEpochBumpInvalidatesExactlyTheCachedEntries) {
  obs::MetricsRegistry::Get().Enable();
  const std::uint64_t stale_before =
      obs::MetricsRegistry::Get().Counter("serve.plan_cache.stale_evictions");

  FrontDoor door = MakeDoor();
  ASSERT_OK_AND_ASSIGN(const Response paper_cold,
                       door.Serve(Req(paper_sql_)));
  ASSERT_OK_AND_ASSIGN(const Response ins_cold,
                       door.Serve(Req(insurance_sql_)));
  ASSERT_OK_AND_ASSIGN(const Response paper_warm,
                       door.Serve(Req(paper_sql_)));
  EXPECT_TRUE(paper_warm.plan_cache_hit);
  EXPECT_EQ(door.policy_epoch(), 0u);
  EXPECT_EQ(paper_cold.policy_epoch, 0u);

  // Revoke every view over Hospital: the epoch bumps, and BOTH cached
  // entries (the now-infeasible paper join AND the untouched Insurance
  // lookup) must be invalidated — entries are stamped per epoch, so a
  // stale hit is structurally impossible.
  door.SetPolicy(RevokeHospital());
  EXPECT_EQ(door.policy_epoch(), 1u);
  EXPECT_EQ(door.Stats().plan_cache_size, 0u);
  EXPECT_EQ(
      obs::MetricsRegistry::Get().Counter("serve.plan_cache.stale_evictions"),
      stale_before + 2)
      << "the epoch bump must sweep exactly the two cached entries";

  // The paper join is now infeasible — a stale cache hit would have
  // returned the old rows instead of this typed verdict.
  const Result<Response> paper_after = door.Serve(Req(paper_sql_));
  ASSERT_FALSE(paper_after.ok());
  EXPECT_EQ(paper_after.status().code(), StatusCode::kInfeasible);

  // The Insurance lookup replans under epoch 1 (a miss, not a hit) and
  // still returns the identical bytes.
  ASSERT_OK_AND_ASSIGN(const Response ins_after,
                       door.Serve(Req(insurance_sql_)));
  EXPECT_FALSE(ins_after.plan_cache_hit);
  EXPECT_EQ(ins_after.policy_epoch, 1u);
  EXPECT_TRUE(TablesIdentical(ins_cold.table, ins_after.table));

  // Entries inserted after the bump are unaffected by it: the re-served
  // lookup now hits.
  ASSERT_OK_AND_ASSIGN(const Response ins_rewarm,
                       door.Serve(Req(insurance_sql_)));
  EXPECT_TRUE(ins_rewarm.plan_cache_hit);
  EXPECT_TRUE(TablesIdentical(ins_cold.table, ins_rewarm.table));
}

TEST_F(ServingTest, CanViewMemoHitsAndEpochBump) {
  authz::CachingPolicy memo(fix_.auths);
  const plan::QueryPlan plan = fix_.PaperPlan();
  const std::vector<authz::Profile> profiles =
      planner::ComputeNodeProfiles(fix_.cat, plan);
  ASSERT_FALSE(profiles.empty());
  const catalog::ServerId insurance = testing::Server(fix_.cat, "S_I");

  const authz::CanViewExplanation cold =
      memo.ExplainCanView(profiles[0], insurance);
  const authz::CanViewExplanation warm =
      memo.ExplainCanView(profiles[0], insurance);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.hits(), 1u);
  // The memo stores full explanations: the audit evidence is identical on
  // a hit and a miss.
  EXPECT_EQ(cold.allowed, warm.allowed);
  EXPECT_EQ(cold.reason, warm.reason);
  EXPECT_EQ(cold.matched_attributes, warm.matched_attributes);
  EXPECT_EQ(cold.missing_attributes, warm.missing_attributes);

  memo.BumpEpoch();
  EXPECT_EQ(memo.epoch(), 1u);
  EXPECT_EQ(memo.size(), 0u);
  (void)memo.CanView(profiles[0], insurance);
  EXPECT_EQ(memo.misses(), 2u) << "a bump must invalidate the memo";
}

TEST_F(ServingTest, IncrementalEditMatchesFromScratchDoor) {
  // Grant, then revoke, through the incremental path; after each edit the
  // long-lived door must answer byte-identically to a door built from
  // scratch on the edited rule set.
  FrontDoor door = MakeDoor();
  ASSERT_OK(door.Serve(Req(paper_sql_)).status());  // warm the caches

  authz::Authorization extra;
  extra.server = testing::Server(fix_.cat, "S_D");
  extra.attributes.Insert(testing::Attr(fix_.cat, "Holder"));
  extra.attributes.Insert(testing::Attr(fix_.cat, "Plan"));
  ASSERT_OK_AND_ASSIGN(const authz::ClosureDelta granted,
                       door.AddRule(extra));
  EXPECT_TRUE(granted.changed());
  EXPECT_GE(granted.added_rules, 1u);
  EXPECT_EQ(door.policy_epoch(), 1u);

  authz::AuthorizationSet edited = fix_.auths;
  ASSERT_OK(edited.Add(fix_.cat, extra));
  FrontDoor fresh(fix_.cat, edited, *cluster_, &stats_, ServeOptions{});
  ASSERT_OK_AND_ASSIGN(const Response inc_ans, door.Serve(Req(paper_sql_)));
  ASSERT_OK_AND_ASSIGN(const Response fresh_ans,
                       fresh.Serve(Req(paper_sql_)));
  EXPECT_TRUE(TablesIdentical(inc_ans.table, fresh_ans.table));

  ASSERT_OK_AND_ASSIGN(const authz::ClosureDelta revoked,
                       door.RevokeRule(extra));
  EXPECT_GE(revoked.removed_rules, 1u);
  EXPECT_EQ(door.policy_epoch(), 2u);
  FrontDoor original = MakeDoor();
  ASSERT_OK_AND_ASSIGN(const Response back, door.Serve(Req(paper_sql_)));
  ASSERT_OK_AND_ASSIGN(const Response want, original.Serve(Req(paper_sql_)));
  EXPECT_TRUE(TablesIdentical(back.table, want.table));

  // Editing a rule that is not there fails typed and changes nothing.
  const Result<authz::ClosureDelta> missing = door.RevokeRule(extra);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(door.policy_epoch(), 2u);
}

TEST_F(ServingTest, DisjointEditRetainsPlanCacheAcrossTheEpochBump) {
  // An edit touching only Disease_list cannot change any verdict the cached
  // Insurance/paper plans depend on: the entries are re-stamped into the
  // new epoch and the very next requests hit, byte-identically.
  FrontDoor door = MakeDoor();
  ASSERT_OK_AND_ASSIGN(const Response paper_cold,
                       door.Serve(Req(paper_sql_)));
  ASSERT_OK_AND_ASSIGN(const Response ins_cold,
                       door.Serve(Req(insurance_sql_)));

  authz::Authorization disjoint;
  disjoint.server = testing::Server(fix_.cat, "S_I");
  disjoint.attributes.Insert(testing::Attr(fix_.cat, "Illness"));
  ASSERT_OK_AND_ASSIGN(const authz::ClosureDelta delta,
                       door.AddRule(disjoint));
  EXPECT_FALSE(delta.full);
  EXPECT_EQ(door.policy_epoch(), 1u);

  ASSERT_OK_AND_ASSIGN(const Response paper_after,
                       door.Serve(Req(paper_sql_)));
  ASSERT_OK_AND_ASSIGN(const Response ins_after,
                       door.Serve(Req(insurance_sql_)));
  EXPECT_TRUE(paper_after.plan_cache_hit)
      << "a disjoint edit must not evict the paper join's plan";
  EXPECT_TRUE(ins_after.plan_cache_hit);
  EXPECT_EQ(paper_after.policy_epoch, 1u);
  EXPECT_TRUE(TablesIdentical(paper_cold.table, paper_after.table));
  EXPECT_TRUE(TablesIdentical(ins_cold.table, ins_after.table));
  EXPECT_EQ(door.Stats().plan_cache_retained, 2u);
  EXPECT_EQ(door.Stats().plan_cache_stale_evictions, 0u);

  // An overlapping edit (Insurance attributes) evicts both entries: the
  // paper join and the Insurance lookup replan cold under epoch 2.
  authz::Authorization overlapping;
  overlapping.server = testing::Server(fix_.cat, "S_D");
  overlapping.attributes.Insert(testing::Attr(fix_.cat, "Holder"));
  ASSERT_OK(door.AddRule(overlapping).status());
  ASSERT_OK_AND_ASSIGN(const Response paper_cold2,
                       door.Serve(Req(paper_sql_)));
  EXPECT_FALSE(paper_cold2.plan_cache_hit);
  EXPECT_EQ(paper_cold2.policy_epoch, 2u);
  EXPECT_TRUE(TablesIdentical(paper_cold.table, paper_cold2.table));
}

TEST_F(ServingTest, AdvanceEpochNeverRevivesEntriesAcrossAnInterveningEdit) {
  // A Serve that captured epoch 0 can Insert its entry after the edit to
  // epoch 1 already swept. If that edit's delta intersected the entry's
  // relations the entry is dead, and a later *disjoint* edit to epoch 2
  // must not re-stamp it back to life: only entries of the immediately
  // prior epoch are retention candidates.
  PlanCache cache(4);
  CachedPlanEntry late;
  late.epoch = 0;
  late.relations.Insert(1);
  IdSet intersecting;  // the epoch-1 edit touched relation 1 …
  intersecting.Insert(1);
  cache.AdvanceEpoch(1, intersecting);  // … and swept before the insert
  cache.Insert("late", late);           // stamped 0: already invalid

  CachedPlanEntry fresh;  // planned under epoch 1, legitimately retainable
  fresh.epoch = 1;
  fresh.relations.Insert(1);
  cache.Insert("fresh", fresh);

  IdSet disjoint;  // the epoch-2 edit touches neither entry's relations
  disjoint.Insert(2);
  EXPECT_EQ(cache.AdvanceEpoch(2, disjoint), 1u) << "only \"fresh\" survives";
  EXPECT_FALSE(cache.Lookup("late", 2).has_value())
      << "an entry that straddled the epoch-1 edit must not be revived";
  EXPECT_TRUE(cache.Lookup("fresh", 2).has_value());
}

TEST_F(ServingTest, PlanCacheCapacityZeroIsClampedToOne) {
  // Regression: capacity 0 used to dereference lru_.back() on an empty list
  // in Insert. The constructor clamps to one slot.
  PlanCache cache(/*capacity=*/0);
  CachedPlanEntry entry;
  entry.epoch = 0;
  cache.Insert("a", entry);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup("a", 0).has_value());
  cache.Insert("b", entry);  // evicts "a" instead of crashing
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup("a", 0).has_value());
  EXPECT_TRUE(cache.Lookup("b", 0).has_value());
}

TEST_F(ServingTest, StaleLookupCountsStaleOnlyNeverAlsoMiss) {
  // Lookup outcomes partition into {hit, miss, stale_eviction}; a stale hit
  // used to double-count as a miss, inflating miss rates after every epoch
  // bump. Pin the partition on both the cache counters and the obs metrics.
  obs::MetricsRegistry::Get().Enable();
  const std::uint64_t miss_metric_before =
      obs::MetricsRegistry::Get().Counter("serve.plan_cache.miss");
  const std::uint64_t stale_metric_before =
      obs::MetricsRegistry::Get().Counter("serve.plan_cache.stale_evictions");

  PlanCache cache(4);
  CachedPlanEntry entry;
  entry.epoch = 0;
  cache.Insert("k", entry);
  EXPECT_FALSE(cache.Lookup("k", 1).has_value());  // stale, evicted
  EXPECT_EQ(cache.stale_evictions(), 1u);
  EXPECT_EQ(cache.misses(), 0u) << "a stale hit is not a miss";
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(cache.Lookup("k", 1).has_value());  // now truly absent
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.stale_evictions(), 1u);
  EXPECT_EQ(obs::MetricsRegistry::Get().Counter("serve.plan_cache.miss"),
            miss_metric_before + 1);
  EXPECT_EQ(
      obs::MetricsRegistry::Get().Counter("serve.plan_cache.stale_evictions"),
      stale_metric_before + 1);
}

TEST_F(ServingTest, AdmissionDeadlineFailsTypedAndNeverWedgesTheQueue) {
  // A waiter whose deadline passes gets a typed kResourceExhausted; its
  // abandoned FIFO ticket must not block later arrivals.
  AdmissionController admission(/*max_concurrent=*/1, /*max_queue=*/8,
                                /*max_wait_us=*/5000);
  ASSERT_OK_AND_ASSIGN(AdmissionController::Ticket gate, admission.Admit());
  std::vector<Result<AdmissionController::Ticket>> timed_out;
  timed_out.emplace_back(InternalError("unset"));
  timed_out.emplace_back(InternalError("unset"));
  {
    std::vector<std::thread> waiters;
    for (std::size_t i = 0; i < timed_out.size(); ++i) {
      while (admission.queued() < i) std::this_thread::yield();
      waiters.emplace_back([&, i] { timed_out[i] = admission.Admit(); });
    }
    for (std::thread& t : waiters) t.join();  // both deadlines pass
  }
  for (const Result<AdmissionController::Ticket>& r : timed_out) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(r.status().message().find("max_wait_us"), std::string::npos);
  }
  EXPECT_EQ(admission.rejected(), 2u);
  EXPECT_EQ(admission.queued(), 0u);

  // Release the slot: a fresh request must be admitted promptly even though
  // two abandoned tickets sit between it and the old FIFO head. (If the
  // hand-off were wedged, this would time out and fail typed, not hang.)
  gate = AdmissionController::Ticket();
  ASSERT_OK_AND_ASSIGN(AdmissionController::Ticket next, admission.Admit());
  (void)next;
  EXPECT_EQ(admission.admitted(), 2u);
}

TEST_F(ServingTest, AdmissionRejectsBeyondTheQueueBound) {
  AdmissionController admission(/*max_concurrent=*/1, /*max_queue=*/0);
  ASSERT_OK_AND_ASSIGN(AdmissionController::Ticket first, admission.Admit());
  // The slot is held and the queue holds zero: the next request fails fast.
  const Result<AdmissionController::Ticket> second = admission.Admit();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.rejected(), 1u);
  first = AdmissionController::Ticket();  // release
  ASSERT_OK_AND_ASSIGN(AdmissionController::Ticket third,
                       admission.Admit());
  (void)third;
  EXPECT_EQ(admission.admitted(), 2u);
}

TEST_F(ServingTest, AdmissionServesWaitersInFifoOrder) {
  AdmissionController admission(/*max_concurrent=*/1, /*max_queue=*/64);
  constexpr std::size_t kWaiters = 8;
  std::vector<std::size_t> order;
  std::mutex order_mu;
  ASSERT_OK_AND_ASSIGN(AdmissionController::Ticket gate, admission.Admit());
  std::vector<std::thread> waiters;
  for (std::size_t i = 0; i < kWaiters; ++i) {
    // Admission order must equal arrival order; start waiters one at a time
    // so arrival order is well-defined.
    while (admission.queued() < i) std::this_thread::yield();
    waiters.emplace_back([&, i] {
      const Result<AdmissionController::Ticket> t = admission.Admit();
      ASSERT_TRUE(t.ok());
      const std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
    });
  }
  while (admission.queued() < kWaiters) std::this_thread::yield();
  gate = AdmissionController::Ticket();  // open the gate
  for (std::thread& t : waiters) t.join();
  ASSERT_EQ(order.size(), kWaiters);
  for (std::size_t i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(order[i], i) << "waiters must be admitted FIFO";
  }
}

}  // namespace
}  // namespace cisqp::serve
