// Communication cost model for executor assignments.
//
// The paper's algorithm is a heuristic guided by two principles (§5): favor
// semi-joins, and prefer masters with high join counts. To quantify how close
// that heuristic gets to the optimum (experiment E7), this model estimates
// the bytes every Fig. 5 flow moves, from System-R style statistics.
#pragma once

#include "plan/builder.hpp"
#include "plan/plan_node.hpp"
#include "plan/stats.hpp"

namespace cisqp::planner {

struct CostModelOptions {
  double scalar_width_bytes = 8.0;   ///< int64 / double cells
  double string_width_bytes = 16.0;  ///< average string cell
};

/// Estimates result sizes of plan subtrees and the transfer volume of each
/// join execution mode.
class CostModel {
 public:
  CostModel(const catalog::Catalog& cat, const plan::StatsCatalog* stats,
            CostModelOptions options = {},
            const plan::StatsFeedback* feedback = nullptr)
      : cat_(cat),
        builder_(cat, stats, feedback),
        stats_(stats),
        options_(options) {}

  /// Estimated row count of a subtree's result.
  double EstimateRows(const plan::PlanNode& node) const {
    return builder_.EstimateCardinality(node);
  }

  /// Average row width of a header, by column type.
  double RowWidthBytes(const std::vector<catalog::AttributeId>& attrs) const;

  /// Estimated wire size of a subtree's whole result.
  double EstimateResultBytes(const plan::PlanNode& node) const;

  /// Estimated distinct combinations of `attrs` within a subtree's result:
  /// min(subtree rows, product of base distinct counts).
  double EstimateDistinct(const plan::PlanNode& node, const IdSet& attrs) const;

  /// Bytes shipped by a regular join: the other operand's whole result
  /// (0 when colocated with the master).
  double RegularJoinBytes(const plan::PlanNode& other_child,
                          bool colocated) const;

  /// Bytes shipped by a semi-join (Fig. 5 steps 2 + 4): the master-side join
  /// column, then the reduced other operand joined back.
  /// `join_node` is the join; `master_child` the child the master computes;
  /// `master_join_attrs` its join attributes (Jl or Jr).
  double SemiJoinBytes(const plan::PlanNode& join_node,
                       const plan::PlanNode& master_child,
                       const plan::PlanNode& slave_child,
                       const IdSet& master_join_attrs) const;

 private:
  const catalog::Catalog& cat_;
  plan::PlanBuilder builder_;
  const plan::StatsCatalog* stats_;
  CostModelOptions options_;
};

}  // namespace cisqp::planner
