#include "plan/stats.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "obs/profile.hpp"
#include "plan/plan_node.hpp"
#include "plan/query_spec.hpp"

namespace cisqp::plan {

RelationStats StatsCatalog::FromTable(const storage::Table& table) {
  RelationStats stats;
  stats.rows = static_cast<double>(table.row_count());
  for (std::size_t c = 0; c < table.column_count(); ++c) {
    std::unordered_set<std::size_t> hashes;
    hashes.reserve(table.row_count());
    for (const storage::Row& row : table.rows()) {
      hashes.insert(row[c].Hash());
    }
    stats.distinct[table.columns()[c].attribute] =
        static_cast<double>(hashes.size());
  }
  return stats;
}

void StatsFeedback::Record(std::string signature, double rows) {
  actual_rows_[std::move(signature)] = rows;
}

std::optional<double> StatsFeedback::Lookup(std::string_view signature) const {
  const auto it = actual_rows_.find(signature);
  if (it == actual_rows_.end()) return std::nullopt;
  return it->second;
}

namespace {

/// Tokens use attribute/relation ids, not names: ids are stable within one
/// catalog, and both signature functions always see the same catalog.
std::string ConjunctToken(const algebra::Comparison& c) {
  std::string token = "s";
  token += std::to_string(c.lhs);
  token += algebra::CompareOpSymbol(c.op);
  if (c.rhs_is_attribute()) {
    token += "a" + std::to_string(std::get<catalog::AttributeId>(c.rhs));
  } else {
    token += "v" + std::get<storage::Value>(c.rhs).ToString();
  }
  return token;
}

/// Equality is symmetric, and the DP rebuild may flip an atom's orientation
/// relative to the spec — normalize to (low id, high id).
std::string AtomToken(const algebra::EquiJoinAtom& atom) {
  const catalog::AttributeId lo = std::min(atom.left, atom.right);
  const catalog::AttributeId hi = std::max(atom.left, atom.right);
  return "j" + std::to_string(lo) + "=" + std::to_string(hi);
}

std::string Assemble(std::vector<std::string> relations,
                     std::vector<std::string> conjuncts,
                     std::vector<std::string> atoms) {
  std::sort(relations.begin(), relations.end());
  std::sort(conjuncts.begin(), conjuncts.end());
  std::sort(atoms.begin(), atoms.end());
  std::string out = "R[";
  for (const std::string& t : relations) {
    out += t;
    out += ',';
  }
  out += "]S[";
  for (const std::string& t : conjuncts) {
    out += t;
    out += ',';
  }
  out += "]J[";
  for (const std::string& t : atoms) {
    out += t;
    out += ',';
  }
  out += ']';
  return out;
}

void CollectSubtree(const PlanNode& node, std::vector<std::string>& relations,
                    std::vector<std::string>& conjuncts,
                    std::vector<std::string>& atoms) {
  switch (node.op) {
    case PlanOp::kRelation:
      relations.push_back("r" + std::to_string(node.relation));
      return;
    case PlanOp::kProject:
      CollectSubtree(*node.left, relations, conjuncts, atoms);
      return;
    case PlanOp::kSelect:
      for (const algebra::Comparison& c : node.predicate.conjuncts()) {
        conjuncts.push_back(ConjunctToken(c));
      }
      CollectSubtree(*node.left, relations, conjuncts, atoms);
      return;
    case PlanOp::kJoin:
      for (const algebra::EquiJoinAtom& atom : node.join_atoms) {
        atoms.push_back(AtomToken(atom));
      }
      CollectSubtree(*node.left, relations, conjuncts, atoms);
      CollectSubtree(*node.right, relations, conjuncts, atoms);
      return;
  }
}

}  // namespace

std::string SubtreeSignature(const catalog::Catalog& cat,
                             const PlanNode& node) {
  (void)cat;  // ids are already canonical; kept for signature symmetry
  std::vector<std::string> relations;
  std::vector<std::string> conjuncts;
  std::vector<std::string> atoms;
  CollectSubtree(node, relations, conjuncts, atoms);
  return Assemble(std::move(relations), std::move(conjuncts), std::move(atoms));
}

std::string SpecSubsetSignature(
    const catalog::Catalog& cat, const QuerySpec& spec,
    const std::vector<catalog::RelationId>& subset) {
  const auto contains = [&](catalog::RelationId rel) {
    return std::find(subset.begin(), subset.end(), rel) != subset.end();
  };
  std::vector<std::string> relations;
  relations.reserve(subset.size());
  for (const catalog::RelationId rel : subset) {
    relations.push_back("r" + std::to_string(rel));
  }
  std::vector<std::string> conjuncts;
  for (const algebra::Comparison& c : spec.where.conjuncts()) {
    if (!contains(cat.attribute(c.lhs).relation)) continue;
    if (c.rhs_is_attribute() &&
        !contains(cat.attribute(std::get<catalog::AttributeId>(c.rhs)).relation)) {
      continue;
    }
    conjuncts.push_back(ConjunctToken(c));
  }
  std::vector<std::string> atoms;
  for (const JoinStep& step : spec.joins) {
    for (const algebra::EquiJoinAtom& atom : step.atoms) {
      if (contains(cat.attribute(atom.left).relation) &&
          contains(cat.attribute(atom.right).relation)) {
        atoms.push_back(AtomToken(atom));
      }
    }
  }
  return Assemble(std::move(relations), std::move(conjuncts), std::move(atoms));
}

std::size_t HarvestActualCardinalities(const catalog::Catalog& cat,
                                       const QueryPlan& plan,
                                       const obs::QueryProfile& profile,
                                       StatsFeedback& feedback) {
  std::size_t recorded = 0;
  std::unordered_set<std::string> seen;
  plan.ForEachPreOrder([&](const PlanNode& node) {
    if (node.op == PlanOp::kProject) return;
    const obs::OperatorStats* stats = profile.FindOp(node.id);
    if (stats == nullptr || stats->invocations == 0) return;
    std::string signature = SubtreeSignature(cat, node);
    if (!seen.insert(signature).second) return;
    // Failover may run an operator more than once; feed back the per-run
    // average so re-executions do not inflate the cardinality.
    const double rows = static_cast<double>(stats->rows_out) /
                        static_cast<double>(stats->invocations);
    feedback.Record(std::move(signature), rows);
    ++recorded;
  });
  return recorded;
}

}  // namespace cisqp::plan
