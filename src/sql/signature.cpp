#include "sql/signature.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/hash.hpp"

namespace cisqp::sql {
namespace {

/// Lossless literal rendering: a type tag plus an unambiguous payload.
/// Strings are length-prefixed so no payload can fake another literal's
/// rendering; doubles use %.17g (round-trip exact for IEEE doubles).
std::string LiteralToken(const storage::Value& v) {
  if (v.is_null()) return "n";
  if (v.is_int64()) return "i" + std::to_string(v.AsInt64());
  if (v.is_double()) {
    double d = v.AsDouble();
    // Signature equality must track predicate equivalence under SqlEquals
    // (IEEE ==): -0.0 == 0.0, so both must render as one token, and every
    // NaN bit pattern compares unequal to everything the same way, so all
    // NaNs share one canonical spelling (%.17g may print "nan" or "-nan").
    if (std::isnan(d)) return "dnan";
    if (d == 0.0) d = 0.0;  // collapses -0.0
    char buf[40];
    std::snprintf(buf, sizeof(buf), "d%.17g", d);
    return buf;
  }
  const std::string& s = v.AsString();
  return "s" + std::to_string(s.size()) + ":" + s;
}

std::string ComparisonToken(const algebra::Comparison& c) {
  std::string token = "a" + std::to_string(c.lhs);
  token += CompareOpSymbol(c.op);
  if (c.rhs_is_attribute()) {
    token += "a" + std::to_string(std::get<catalog::AttributeId>(c.rhs));
  } else {
    token += LiteralToken(std::get<storage::Value>(c.rhs));
  }
  return token;
}

void AppendSorted(std::string& out, std::vector<std::string> tokens) {
  std::sort(tokens.begin(), tokens.end());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) out += "&";
    out += tokens[i];
  }
}

}  // namespace

std::string CanonicalQuerySignature(const plan::QuerySpec& spec) {
  std::string sig;
  sig.reserve(128);
  // Output schema: DISTINCT flag and the SELECT list in declared order.
  sig += spec.distinct ? "D|S:" : "S:";
  for (std::size_t i = 0; i < spec.select_list.size(); ++i) {
    if (i != 0) sig += ",";
    sig += std::to_string(spec.select_list[i]);
  }
  // FROM sequence, order-sensitive (the plan search's enumeration order —
  // and with it the deterministic tie-break — follows the spec's order).
  sig += "|F:" + std::to_string(spec.first_relation);
  for (const plan::JoinStep& step : spec.joins) {
    sig += "|J" + std::to_string(step.relation) + ":";
    std::vector<std::string> atoms;
    atoms.reserve(step.atoms.size());
    for (const algebra::EquiJoinAtom& atom : step.atoms) {
      atoms.push_back("a" + std::to_string(atom.left) + "=a" +
                      std::to_string(atom.right));
    }
    AppendSorted(sig, std::move(atoms));
  }
  // WHERE conjunction, commutativity canonicalized by sorting the tokens.
  if (!spec.where.IsTrue()) {
    sig += "|W:";
    std::vector<std::string> conjuncts;
    conjuncts.reserve(spec.where.conjuncts().size());
    for (const algebra::Comparison& c : spec.where.conjuncts()) {
      conjuncts.push_back(ComparisonToken(c));
    }
    AppendSorted(sig, std::move(conjuncts));
  }
  return sig;
}

std::uint64_t QuerySignatureHash(const plan::QuerySpec& spec) {
  const std::string sig = CanonicalQuerySignature(spec);
  return static_cast<std::uint64_t>(HashRange(sig.begin(), sig.end()));
}

}  // namespace cisqp::sql
