// Exact join-order optimization (System-R style dynamic programming over
// connected relation subsets), producing bushy or left-deep trees.
//
// The paper's two-step architecture (§5 end) puts a classical optimizer in
// step one. PlanBuilder's greedy ordering is the cheap variant; this DP is
// the exact one: for every connected subset of the query's relations it
// keeps the cheapest tree (cost = total estimated intermediate rows), and
// reconstructs the optimal — possibly bushy — join tree. Bushy shapes also
// exercise the safe planner and the execution engine beyond left-deep
// chains.
//
// Exponential in the number of relations (3^n subset-split pairs); guarded
// by `max_relations`.
#pragma once

#include "plan/builder.hpp"
#include "plan/query_spec.hpp"
#include "plan/stats.hpp"

namespace cisqp::plan {

struct DpOptimizerOptions {
  /// Allow bushy trees; false restricts the right side of every join to a
  /// single relation (classic left-deep DP).
  bool bushy = true;
  /// Refuse queries with more relations than this (DP is exponential).
  std::size_t max_relations = 14;
  /// Finishing passes (pushdown etc.); join_order is ignored.
  BuildOptions build_options;
  /// Measured cardinalities from profiled past executions. When a subset's
  /// signature hits the store, the measured row count replaces the modeled
  /// one for that subset — uniformly across its splits, so the split choice
  /// within the subset is undistorted while the corrected cardinality
  /// propagates to every cost above it.
  const StatsFeedback* feedback = nullptr;
};

struct DpOptimizerResult {
  QueryPlan plan;
  double estimated_cost = 0.0;  ///< total estimated intermediate rows
  std::size_t subsets_explored = 0;
};

/// Finds the cost-optimal join tree for `spec` under `stats` and finishes it
/// with PlanBuilder's passes. Fails on invalid specs, disconnected join
/// graphs, or too many relations.
Result<DpOptimizerResult> OptimizeJoinOrder(
    const catalog::Catalog& cat, const StatsCatalog* stats,
    const QuerySpec& spec, const DpOptimizerOptions& options = {});

}  // namespace cisqp::plan
