// Medical consortium: a day in the life of the Fig. 1 federation.
//
// Walks several realistic queries through safe planning, showing feasible
// plans, an infeasible one (and why), the chase closure unlocking it, and
// runtime enforcement stopping a hand-forced unsafe execution.
//
// Build & run:  ./build/examples/medical_consortium
#include <cstdio>

#include "authz/chase.hpp"
#include "exec/executor.hpp"
#include "plan/builder.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "workload/medical.hpp"

using namespace cisqp;

namespace {

/// Plans `query` and reports the outcome; returns the safe plan if feasible.
std::optional<planner::SafePlan> TryQuery(const catalog::Catalog& cat,
                                          const authz::AuthorizationSet& auths,
                                          const plan::QueryPlan& plan,
                                          const char* label) {
  planner::SafePlanner planner(cat, auths);
  const auto report = planner.Analyze(plan);
  if (!report.ok()) {
    std::printf("[%s] error: %s\n", label, report.status().ToString().c_str());
    return std::nullopt;
  }
  if (!report->feasible) {
    std::printf("[%s] INFEASIBLE — no candidate executor at node n%d\n%s", label,
                report->blocking_node,
                planner::FormatRejections(cat, report->blocking_rejections).c_str());
    return std::nullopt;
  }
  std::printf("[%s] feasible:\n%s", label,
              report->plan->assignment.ToString(cat, plan).c_str());
  return std::move(report->plan);
}

plan::QueryPlan MustPlan(const catalog::Catalog& cat, std::string_view sql_text) {
  auto spec = sql::ParseAndBind(cat, sql_text);
  CISQP_CHECK_MSG(spec.ok(), spec.status().ToString());
  auto plan = plan::PlanBuilder(cat).Build(*spec);
  CISQP_CHECK_MSG(plan.ok(), plan.status().ToString());
  return std::move(*plan);
}

}  // namespace

int main() {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);

  exec::Cluster cluster(cat);
  Rng rng(7);
  CISQP_CHECK(workload::MedicalScenario::PopulateCluster(
                  cluster, workload::MedicalScenario::DataConfig{400, 0.4, 0.6, 25},
                  rng)
                  .ok());
  exec::DistributedExecutor executor(cluster, auths);

  // Query A — the paper's query: insurance plans and health aid of patients.
  std::printf("=== A. the paper's query (Example 2.2) ===\n");
  const plan::QueryPlan query_a =
      MustPlan(cat, workload::MedicalScenario::kPaperQuery);
  if (auto sp = TryQuery(cat, auths, query_a, "A")) {
    const auto result = executor.Execute(query_a, sp->assignment);
    CISQP_CHECK_MSG(result.ok(), result.status().ToString());
    std::printf("rows: %zu, transfers: %zu, bytes: %zu\n\n",
                result->table.row_count(), result->network.total_messages(),
                result->network.total_bytes());
  }

  // Query B — treatments used by insurance holders (authorization 3 at work:
  // S_I may learn treatments of its holders but never the diagnosis).
  std::printf("=== B. treatments per insurance plan ===\n");
  const plan::QueryPlan query_b = MustPlan(
      cat,
      "SELECT Plan, Treatment FROM Insurance JOIN Hospital ON Holder = Patient "
      "JOIN Disease_list ON Disease = Illness");
  if (auto sp = TryQuery(cat, auths, query_b, "B")) {
    const auto result = executor.Execute(query_b, sp->assignment);
    CISQP_CHECK_MSG(result.ok(), result.status().ToString());
    std::printf("rows: %zu\n%s\n", result->table.row_count(),
                result->table.ToDisplayString(cat, 5).c_str());
  }

  // Query C — the §3.2 denial: which listed illnesses occur in the hospital.
  // Infeasible under Fig. 3: neither S_D nor S_H may see the joined view.
  std::printf("=== C. illnesses occurring in the hospital (denied) ===\n");
  const plan::QueryPlan query_c = MustPlan(
      cat, "SELECT Illness, Treatment FROM Disease_list JOIN Hospital "
           "ON Illness = Disease");
  TryQuery(cat, auths, query_c, "C");

  // ... the consortium later grants S_D visibility of Hospital's diagnoses;
  // the chase closure (§3.2) then implies the joined view and the SAME query
  // becomes feasible without anyone writing the composite rule by hand.
  std::printf("\n=== C'. after granting S_D the Hospital diagnosis list ===\n");
  authz::AuthorizationSet extended = auths;
  CISQP_CHECK(extended.Add(cat, "S_D", {"Patient", "Disease", "Physician"}, {}).ok());
  const auto closed = authz::ChaseClosure(cat, extended);
  CISQP_CHECK_MSG(closed.ok(), closed.status().ToString());
  std::printf("policy grew from %zu to %zu rules under the chase\n",
              extended.size(), closed->size());
  if (auto sp = TryQuery(cat, *closed, query_c, "C'")) {
    exec::DistributedExecutor executor2(cluster, *closed);
    const auto result = executor2.Execute(query_c, sp->assignment);
    CISQP_CHECK_MSG(result.ok(), result.status().ToString());
    std::printf("rows: %zu\n", result->table.row_count());
  }

  // D — runtime enforcement: force the paper query's first join to run as a
  // regular join at S_I (shipping the national registry there). The planner
  // would never emit this; the executor refuses it at the first transfer.
  std::printf("\n=== D. runtime enforcement against a forced unsafe plan ===\n");
  planner::SafePlanner planner(cat, auths);
  auto sp = planner.Plan(query_a);
  CISQP_CHECK_MSG(sp.ok(), sp.status().ToString());
  planner::Assignment unsafe = sp->assignment;
  unsafe.Set(2, planner::Executor{cat.FindServer("S_I").value(), std::nullopt,
                                  planner::ExecutionMode::kRegularJoin,
                                  planner::FromChild::kLeft});
  unsafe.Set(1, planner::Executor{cat.FindServer("S_H").value(),
                                  cat.FindServer("S_I").value(),
                                  planner::ExecutionMode::kSemiJoin,
                                  planner::FromChild::kRight});
  const auto blocked = executor.Execute(query_a, unsafe);
  std::printf("executor said: %s\n", blocked.status().ToString().c_str());

  // E — delivering the result to the requesting party is itself a release.
  std::printf("\n=== E. requestor delivery checks ===\n");
  exec::ExecutionOptions to_sn;
  to_sn.requestor = cat.FindServer("S_N").value();
  const auto denied = executor.Execute(query_a, sp->assignment, to_sn);
  std::printf("deliver to S_N: %s\n", denied.status().ToString().c_str());
  exec::ExecutionOptions to_sh;
  to_sh.requestor = cat.FindServer("S_H").value();
  const auto ok = executor.Execute(query_a, sp->assignment, to_sh);
  std::printf("deliver to S_H (the computing master): %s\n",
              ok.status().ToString().c_str());
  return 0;
}
