// Tests for the observability layer (src/obs): span nesting and export,
// Chrome trace_event validation, metrics snapshots, the authorization
// audit log at every check site, and the disabled-by-default contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "authz/chase.hpp"
#include "exec/executor.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"

namespace cisqp::obs {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Server;
using planner::ExecutionMode;
using planner::FromChild;

/// Every test starts and ends with all three obs singletons disabled and
/// empty — the process-wide default the rest of the suite relies on.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetObs(); }
  void TearDown() override { ResetObs(); }

  static void ResetObs() {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
    MetricsRegistry::Get().Disable();
    MetricsRegistry::Get().Reset();
    AuthzAuditLog::Get().Disable();
    AuthzAuditLog::Get().Clear();
  }
};

TEST_F(ObsTest, SpansNestAndRecordAttributes) {
  Tracer::Get().Enable();
  {
    CISQP_TRACE_SPAN(outer, "outer");
    EXPECT_TRUE(outer.active());
    outer.AddAttribute("k", "v");
    outer.AddAttribute("n", std::int64_t{42});
    {
      CISQP_TRACE_SPAN(inner, "inner");
      inner.AddAttribute("flag", true);
    }
    CISQP_TRACE_SPAN(sibling, "sibling");
  }
  Tracer::Get().Disable();

  const auto& spans = Tracer::Get().spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, 0);
  for (const SpanRecord& s : spans) EXPECT_GE(s.duration_us, 0);
  ASSERT_EQ(spans[0].attributes.size(), 2u);
  EXPECT_EQ(spans[0].attributes[0].first, "k");
  EXPECT_EQ(spans[0].attributes[0].second, "v");
  EXPECT_EQ(spans[0].attributes[1].second, "42");
  ASSERT_EQ(spans[1].attributes.size(), 1u);
  EXPECT_EQ(spans[1].attributes[0].second, "true");

  const std::string tree = Tracer::Get().TextTree();
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("  inner"), std::string::npos);
  EXPECT_NE(tree.find("k=v"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonRoundTripValidates) {
  Tracer::Get().Enable();
  {
    CISQP_TRACE_SPAN(outer, "outer \"quoted\"\n");
    outer.AddAttribute("key", "va\\lue");
    CISQP_TRACE_SPAN(inner, "inner");
  }
  Tracer::Get().Disable();

  const std::string json = Tracer::Get().ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ValidateChromeTraceJson(json, &error)) << error;
  // The escaped span name survives the round trip.
  EXPECT_NE(json.find("outer \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // The free-function exporter agrees with the member.
  EXPECT_EQ(json, ToChromeTraceJson(Tracer::Get().spans()));
}

TEST_F(ObsTest, ChromeTraceMetadataNamesLanesAndEmitsFlows) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  tracer.SetProcessName(2, "server:S_I");
  tracer.SetThreadName(2, 0, "operators");
  const int root = tracer.BeginSpan("query");
  const int child = tracer.BeginSpanWithParent("exec.node", root);
  tracer.SetSpanLane(child, 2);  // parent stays on lane 1 -> cross-lane edge
  tracer.EndSpan(child);
  tracer.EndSpan(root);
  tracer.Disable();

  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].parent, root);
  EXPECT_EQ(tracer.spans()[1].depth, 1);
  EXPECT_EQ(tracer.spans()[1].pid, 2);
  EXPECT_EQ(tracer.metadata().process_names.at(2), "server:S_I");

  const std::string json = tracer.ChromeTraceJson();
  std::string error;
  ASSERT_TRUE(ValidateChromeTraceJson(json, &error)) << error;
  // Lane-naming metadata events for the server process and its thread row.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("server:S_I"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  // The cross-lane parent renders as a flow start/finish arrow pair.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Same-lane nesting (none crossed here besides child) emits no extra
  // arrows: exactly one flow id.
  EXPECT_EQ(json.find("\"cat\":\"flow\",\"ph\":\"s\""),
            json.rfind("\"cat\":\"flow\",\"ph\":\"s\""));

  // Clear() drops the metadata together with the spans.
  tracer.Clear();
  EXPECT_TRUE(tracer.metadata().empty());
}

TEST_F(ObsTest, BeginSpanWithParentNestsAcrossThreads) {
  Tracer::Get().Enable();
  {
    Span root("root");
    ASSERT_TRUE(root.active());
    std::thread worker([&root] {
      // A pool worker's stack is empty; the explicit parent attaches its
      // span causally under the dispatching query span.
      Span child("worker", root);
      Span grandchild("inner");  // stack-nests under `child` on this thread
      EXPECT_TRUE(child.active());
      EXPECT_TRUE(grandchild.active());
    });
    worker.join();
  }
  Tracer::Get().Disable();

  const auto& spans = Tracer::Get().spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[1].name, "worker");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_NE(spans[1].tid, spans[0].tid);
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_EQ(spans[2].parent, 1);
  EXPECT_EQ(spans[2].depth, 2);

  // The cross-thread edge shows up as a flow pair in the export.
  const std::string json = Tracer::Get().ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ValidateChromeTraceJson(json, &error)) << error;
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("root/worker"), std::string::npos);
}

TEST_F(ObsTest, ValidateChromeTraceJsonRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(ValidateChromeTraceJson("", &error));
  EXPECT_FALSE(ValidateChromeTraceJson("not json", &error));
  EXPECT_FALSE(ValidateChromeTraceJson("{}", &error));
  EXPECT_FALSE(ValidateChromeTraceJson(R"({"traceEvents":{}})", &error));
  // Event missing required members / with wrong types.
  EXPECT_FALSE(ValidateChromeTraceJson(
      R"({"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]})", &error));
  EXPECT_FALSE(ValidateChromeTraceJson(
      R"({"traceEvents":[{"name":1,"ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]})",
      &error));
  EXPECT_FALSE(ValidateChromeTraceJson(
      R"({"traceEvents":[{"name":"a","ph":"X","ts":"zero","dur":1,"pid":1,"tid":1}]})",
      &error));
  // Trailing garbage after a valid document.
  EXPECT_FALSE(ValidateChromeTraceJson(R"({"traceEvents":[]} trailing)", &error));
  EXPECT_FALSE(error.empty());
  // The minimal valid document passes.
  EXPECT_TRUE(ValidateChromeTraceJson(R"({"traceEvents":[]})", &error)) << error;
  EXPECT_TRUE(ValidateChromeTraceJson(
      R"({"traceEvents":[{"name":"a","ph":"X","ts":0.5,"dur":-1,"pid":1,"tid":1,
          "args":{"k":"v"}}]})",
      &error))
      << error;
}

TEST_F(ObsTest, MetricsSnapshotIsCorrect) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.Enable();
  CISQP_METRIC_INC("test.counter");
  CISQP_METRIC_ADD("test.counter", 4);
  CISQP_METRIC_SET("test.gauge", 2.5);
  CISQP_METRIC_OBSERVE("test.histo", 1.0);
  CISQP_METRIC_OBSERVE("test.histo", 7.0);
  CISQP_METRIC_OBSERVE("test.histo", 1024.0);
  reg.Disable();

  EXPECT_EQ(reg.Counter("test.counter"), 5u);
  EXPECT_EQ(reg.Counter("test.never_touched"), 0u);
  EXPECT_DOUBLE_EQ(reg.Gauge("test.gauge"), 2.5);
  const HistogramData h = reg.Histogram("test.histo");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 1032.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 1024.0);
  EXPECT_DOUBLE_EQ(h.mean(), 344.0);

  const std::string text = reg.ToText();
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  EXPECT_NE(text.find("test.gauge"), std::string::npos);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"test.counter\":5"), std::string::npos);

  reg.Reset();
  EXPECT_EQ(reg.Counter("test.counter"), 0u);
  EXPECT_TRUE(reg.counters().empty());
}

TEST_F(ObsTest, HistogramPercentileTracksExactQuantiles) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.Enable();
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  for (double v : values) CISQP_METRIC_OBSERVE("test.pct", v);
  reg.Disable();
  std::sort(values.begin(), values.end());

  const HistogramData h = reg.Histogram("test.pct");
  ASSERT_EQ(h.count, 100u);
  // Exact at the extremes.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
  // Out-of-range quantiles clamp.
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 100.0);

  // In between, the interpolated value stays within the power-of-two bucket
  // holding the exact (linearly interpolated) quantile.
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double rank = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double exact = values[lo] + (rank - static_cast<double>(lo)) *
                                          (values[hi] - values[lo]);
    const double bucket_width =
        std::exp2(std::max(0.0, std::ceil(std::log2(exact)) - 1.0));
    EXPECT_NEAR(h.Percentile(q), exact, bucket_width) << "q=" << q;
    EXPECT_GE(h.Percentile(q), h.min) << "q=" << q;
    EXPECT_LE(h.Percentile(q), h.max) << "q=" << q;
  }

  // Monotone in q.
  double prev = h.Percentile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    EXPECT_GE(h.Percentile(q) + 1e-9, prev) << "q=" << q;
    prev = h.Percentile(q);
  }

  // Degenerate histograms: empty -> 0; a single value is every quantile.
  EXPECT_DOUBLE_EQ(HistogramData{}.Percentile(0.5), 0.0);
  reg.Enable();
  CISQP_METRIC_OBSERVE("test.single", 7.0);
  reg.Disable();
  EXPECT_DOUBLE_EQ(reg.Histogram("test.single").Percentile(0.5), 7.0);

  // The snapshots carry the percentile columns.
  EXPECT_NE(reg.ToText().find("p95="), std::string::npos);
  EXPECT_NE(reg.ToJson().find("\"p99\":"), std::string::npos);
}

TEST_F(ObsTest, DisabledObsRecordsNothing) {
  // Everything disabled (the fixture default): spans are inert, metrics and
  // audit calls are no-ops.
  {
    CISQP_TRACE_SPAN(span, "ghost");
    EXPECT_FALSE(span.active());
    span.AddAttribute("k", "v");
  }
  CISQP_METRIC_INC("ghost.counter");
  EXPECT_TRUE(Tracer::Get().spans().empty());
  EXPECT_EQ(MetricsRegistry::Get().Counter("ghost.counter"), 0u);

  // A full pipeline run in the disabled state leaves no trace either.
  MedicalFixture fix;
  plan::QueryPlan plan = fix.PaperPlan();
  planner::SafePlanner planner(fix.cat, fix.auths);
  ASSERT_OK(planner.Plan(plan).status());
  EXPECT_TRUE(Tracer::Get().spans().empty());
  EXPECT_TRUE(MetricsRegistry::Get().counters().empty());
  EXPECT_TRUE(AuthzAuditLog::Get().entries().empty());
}

/// Executor-level fixture: the paper's plan, safely assigned, over a
/// populated cluster — the setting for the audit-log and end-to-end tests.
class ObsExecTest : public ObsTest {
 protected:
  void SetUp() override {
    ObsTest::SetUp();
    cluster_ = std::make_unique<exec::Cluster>(fix_.cat);
    Rng rng(2026);
    ASSERT_OK(workload::MedicalScenario::PopulateCluster(
        *cluster_, workload::MedicalScenario::DataConfig{200, 0.4, 0.6, 30},
        rng));
    plan_ = fix_.PaperPlan();
    planner::SafePlanner planner(fix_.cat, fix_.auths);
    auto sp = planner.Plan(plan_);
    ASSERT_OK(sp.status());
    assignment_ = sp->assignment;
  }

  MedicalFixture fix_;
  std::unique_ptr<exec::Cluster> cluster_;
  plan::QueryPlan plan_;
  planner::Assignment assignment_;
};

TEST_F(ObsExecTest, SafeRunAuditsOneAllowPerPhysicalTransfer) {
  AuthzAuditLog& log = AuthzAuditLog::Get();
  log.Enable();
  exec::DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(exec::ExecutionResult result,
                       executor.Execute(plan_, assignment_));
  log.Disable();

  // Fig. 7 execution: 3 physical transfers, each enforced → 3 allow entries.
  EXPECT_EQ(result.network.total_messages(), 3u);
  ASSERT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.allowed_count(), 3u);
  EXPECT_EQ(log.denied_count(), 0u);
  for (const AuditEntry& e : log.entries()) {
    EXPECT_TRUE(e.allowed);
    EXPECT_EQ(e.site, AuditSite::kExecutor);
    EXPECT_FALSE(e.server.empty());
    EXPECT_FALSE(e.profile.empty());
    EXPECT_FALSE(e.matched.empty()) << "allow entry must name the rule";
    EXPECT_NE(e.ToString().find("ALLOW"), std::string::npos);
  }
  // The transfers and the audit entries describe the same shipments.
  const auto& transfers = result.network.transfers();
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    EXPECT_EQ(log.entries()[i].node_id, transfers[i].node_id);
    EXPECT_EQ(log.entries()[i].server,
              fix_.cat.server(transfers[i].to).name);
  }
}

TEST_F(ObsExecTest, UnsafeRunAuditsDenialNamingTheCondition) {
  // The exec_test unsafe assignment: a regular join at S_I for n2 ships
  // Nat_registry to S_I — not covered by any Fig. 3 authorization.
  planner::Assignment unsafe = assignment_;
  unsafe.Set(2, planner::Executor{Server(fix_.cat, "S_I"), std::nullopt,
                                  ExecutionMode::kRegularJoin, FromChild::kLeft});
  unsafe.Set(1,
             planner::Executor{Server(fix_.cat, "S_H"), Server(fix_.cat, "S_I"),
                               ExecutionMode::kSemiJoin, FromChild::kRight});
  AuthzAuditLog& log = AuthzAuditLog::Get();
  log.Enable();
  exec::DistributedExecutor executor(*cluster_, fix_.auths);
  EXPECT_EQ(executor.Execute(plan_, unsafe).status().code(),
            StatusCode::kUnauthorized);
  log.Disable();

  ASSERT_GE(log.denied_count(), 1u);
  const AuditEntry* denial = nullptr;
  for (const AuditEntry& e : log.entries()) {
    if (!e.allowed) denial = &e;
  }
  ASSERT_NE(denial, nullptr);
  EXPECT_EQ(denial->site, AuditSite::kExecutor);
  EXPECT_EQ(denial->server, "S_I");
  // The entry names the Def. 3.3 condition that failed.
  EXPECT_FALSE(denial->reason.empty());
  EXPECT_TRUE(denial->reason.find("join-path mismatch") != std::string::npos ||
              denial->reason.find("attribute coverage") != std::string::npos ||
              denial->reason.find("no rules") != std::string::npos)
      << denial->reason;
  EXPECT_NE(denial->ToString().find("DENY"), std::string::npos);
}

TEST_F(ObsExecTest, PlannerAuditsProbesAtPlannerSite) {
  AuthzAuditLog& log = AuthzAuditLog::Get();
  log.Enable();
  planner::SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK(planner.Plan(plan_).status());
  log.Disable();

  ASSERT_FALSE(log.entries().empty());
  std::size_t planner_entries = 0;
  for (const AuditEntry& e : log.entries()) {
    if (e.site == AuditSite::kPlanner) ++planner_entries;
  }
  EXPECT_GT(planner_entries, 0u);
  // The planner probes infeasible candidates too: some denials with reasons.
  EXPECT_GT(log.denied_count(), 0u);
  EXPECT_GT(log.allowed_count(), 0u);
}

TEST_F(ObsExecTest, Fig2QueryTracesEndToEnd) {
  Tracer::Get().Enable();
  MetricsRegistry::Get().Enable();

  auto spec =
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery);
  ASSERT_OK(spec.status());
  ASSERT_OK(authz::ChaseClosure(fix_.cat, fix_.auths).status());
  planner::SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, planner.Plan(plan_));
  exec::DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK(executor.Execute(plan_, sp.assignment).status());

  Tracer::Get().Disable();
  MetricsRegistry::Get().Disable();

  // Every pipeline stage shows up as a span.
  const auto has_span = [&](std::string_view name) {
    for (const SpanRecord& s : Tracer::Get().spans()) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_span("sql.parse_bind"));
  EXPECT_TRUE(has_span("authz.chase"));
  EXPECT_TRUE(has_span("planner.safe_plan"));
  EXPECT_TRUE(has_span("exec.execute"));
  EXPECT_TRUE(has_span("exec.node"));
  EXPECT_TRUE(has_span("exec.ship"));

  // exec.node / exec.ship nest under exec.execute.
  for (std::size_t i = 0; i < Tracer::Get().spans().size(); ++i) {
    const SpanRecord& s = Tracer::Get().spans()[i];
    if (s.name == "exec.node" || s.name == "exec.ship") {
      EXPECT_GE(s.depth, 1) << s.name;
    }
  }

  // The whole recording exports as valid Chrome trace JSON.
  std::string error;
  EXPECT_TRUE(ValidateChromeTraceJson(Tracer::Get().ChromeTraceJson(), &error))
      << error;

  // And the metrics the run incremented are visible in the snapshot.
  const MetricsRegistry& reg = MetricsRegistry::Get();
  EXPECT_EQ(reg.Counter("sql.queries_parsed"), 1u);
  EXPECT_GE(reg.Counter("chase.iterations"), 1u);
  EXPECT_GE(reg.Counter("planner.canview_probes"), 1u);
  EXPECT_EQ(reg.Counter("exec.transfers"), 3u);
  EXPECT_GT(reg.Counter("exec.rows_shipped"), 0u);
  EXPECT_GT(reg.Histogram("exec.operator_rows").count, 0u);
}

TEST_F(ObsExecTest, ExecutionResultRecordsDurations) {
  exec::DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(exec::ExecutionResult result,
                       executor.Execute(plan_, assignment_));
  // Wall clock is recorded even with obs disabled — it is part of the
  // result, not of the instrumentation.
  EXPECT_GE(result.duration_us, 0);
  std::int64_t busy_total = 0;
  std::size_t servers_with_ops = 0;
  for (const auto& [server, load] : result.load) {
    EXPECT_GE(load.busy_us, 0);
    busy_total += load.busy_us;
    if (load.operations > 0) ++servers_with_ops;
  }
  EXPECT_GE(servers_with_ops, 2u);  // S_N and S_H both compute
  // Operator time is a subset of the wall clock (small slack for the
  // per-measurement microsecond truncation).
  EXPECT_LE(busy_total, result.duration_us + 16);
}

TEST_F(ObsExecTest, AuditJsonExportIsWellFormedAndCountsMatch) {
  AuthzAuditLog& log = AuthzAuditLog::Get();
  log.Enable();
  exec::DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK(executor.Execute(plan_, assignment_).status());
  log.Disable();

  const std::string json = log.ToJson();
  EXPECT_NE(json.find("\"entries\":["), std::string::npos);
  EXPECT_NE(json.find("\"site\":\"executor\""), std::string::npos);
  const std::string text = log.ToText();
  // One line per entry.
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, log.entries().size());

  log.Clear();
  EXPECT_TRUE(log.entries().empty());
  EXPECT_EQ(log.allowed_count(), 0u);
  EXPECT_EQ(log.denied_count(), 0u);
}

}  // namespace
}  // namespace cisqp::obs
