// E16 — columnar batch execution engine: the vectorized kernels
// (algebra/vectorized) against the retained row-at-a-time kernels
// (testcheck/row_kernels) on a join-heavy 100k-row workload.
//
// The claim is twofold: the columnar engine is at least 5x faster on the
// σ → ⋈ → π-distinct pipeline, and its output is byte-identical to the row
// engine's — same header, same rows, same row order — so the swap under the
// operator API is observationally invisible. The artifact records per-stage
// and end-to-end timings plus the equality verdict; the CI bench smoke step
// (scripts/check_bench_regression.sh) fails when the end-to-end speedup
// drops below half the committed baseline.
#include "bench_util.hpp"

#include <chrono>
#include <memory>
#include <random>

#include "algebra/vectorized.hpp"
#include "common/thread_pool.hpp"
#include "storage/column.hpp"
#include "testcheck/row_kernels.hpp"

namespace cisqp::bench {
namespace {

using algebra::ColumnarBatch;
using storage::Column;
using storage::ColumnarTable;
using storage::Row;
using storage::Table;
using storage::Value;

constexpr catalog::AttributeId kK = 1;   // fact key
constexpr catalog::AttributeId kV = 2;   // fact measure (filtered)
constexpr catalog::AttributeId kS = 3;   // fact label (projected)
constexpr catalog::AttributeId kK2 = 4;  // dim key
constexpr catalog::AttributeId kW = 5;   // dim weight (projected)

struct Workload {
  Table fact;
  Table dim;
  algebra::Predicate filter;
  std::vector<algebra::EquiJoinAtom> atoms = {{kK, kK2}};
  std::vector<catalog::AttributeId> projection = {kS, kW};

  explicit Workload(std::size_t fact_rows) {
    std::mt19937 rng(1234);
    const std::size_t key_space = fact_rows / 2;
    std::uniform_int_distribution<std::int64_t> key(
        0, static_cast<std::int64_t>(key_space) - 1);
    std::uniform_int_distribution<std::int64_t> measure(0, 999);
    static const char* kLabels[] = {"alpha", "beta", "gamma", "delta",
                                    "epsilon", "zeta", "eta", "theta"};
    std::uniform_int_distribution<int> label(0, 7);
    std::uniform_real_distribution<double> weight(0.0, 1.0);

    fact = Table({Column{kK, catalog::ValueType::kInt64},
                  Column{kV, catalog::ValueType::kInt64},
                  Column{kS, catalog::ValueType::kString}});
    fact.Reserve(fact_rows);
    for (std::size_t i = 0; i < fact_rows; ++i) {
      // ~1% NULL keys exercise the join's NULL-filtering path.
      const bool null_key = i % 100 == 99;
      fact.AppendRowUnchecked({null_key ? Value() : Value(key(rng)),
                               Value(measure(rng)), Value(kLabels[label(rng)])});
    }
    dim = Table({Column{kK2, catalog::ValueType::kInt64},
                 Column{kW, catalog::ValueType::kDouble}});
    const std::size_t dim_rows = fact_rows / 4;
    dim.Reserve(dim_rows);
    for (std::size_t i = 0; i < dim_rows; ++i) {
      dim.AppendRowUnchecked({Value(key(rng)), Value(weight(rng))});
    }
    filter.And(algebra::Comparison{kV, algebra::CompareOp::kLt,
                                   Value(std::int64_t{500})});
  }
};

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PipelineTimings {
  std::int64_t select_us = 0;
  std::int64_t join_us = 0;
  std::int64_t project_us = 0;
  std::int64_t total_us = 0;
};

Table RunRowPipeline(const Workload& w, PipelineTimings* t) {
  const std::int64_t t0 = NowUs();
  Table filtered = Unwrap(testcheck::RowSelect(w.fact, w.filter), "row select");
  const std::int64_t t1 = NowUs();
  Table joined =
      Unwrap(testcheck::RowHashJoin(filtered, w.dim, w.atoms), "row join");
  const std::int64_t t2 = NowUs();
  Table out = Unwrap(
      testcheck::RowProject(joined, w.projection, /*distinct=*/true),
      "row project");
  const std::int64_t t3 = NowUs();
  if (t != nullptr) {
    t->select_us = t1 - t0;
    t->join_us = t2 - t1;
    t->project_us = t3 - t2;
    t->total_us = t3 - t0;
  }
  return out;
}

Table RunColumnarPipeline(const std::shared_ptr<const ColumnarTable>& fact,
                          const std::shared_ptr<const ColumnarTable>& dim,
                          const Workload& w, PipelineTimings* t) {
  const std::int64_t t0 = NowUs();
  ColumnarBatch filtered = Unwrap(
      algebra::SelectBatch(ColumnarBatch::FromTable(fact), w.filter), "select");
  const std::int64_t t1 = NowUs();
  ColumnarBatch joined = Unwrap(
      algebra::JoinBatches(filtered, ColumnarBatch::FromTable(dim), w.atoms),
      "join");
  const std::int64_t t2 = NowUs();
  ColumnarBatch projected = Unwrap(
      algebra::ProjectBatch(joined, w.projection, /*distinct=*/true), "project");
  Table out = projected.MaterializeRows();
  const std::int64_t t3 = NowUs();
  if (t != nullptr) {
    t->select_us = t1 - t0;
    t->join_us = t2 - t1;
    t->project_us = t3 - t2;  // includes final row materialization
    t->total_us = t3 - t0;
  }
  return out;
}

bool ExactlyEqual(const Table& a, const Table& b) {
  if (a.columns() != b.columns() || a.row_count() != b.row_count()) return false;
  for (std::size_t r = 0; r < a.row_count(); ++r) {
    for (std::size_t c = 0; c < a.column_count(); ++c) {
      if (a.row(r)[c].CompareTotal(b.row(r)[c]) != 0) return false;
    }
  }
  return true;
}

PipelineTimings Median(std::vector<PipelineTimings> runs) {
  std::sort(runs.begin(), runs.end(),
            [](const PipelineTimings& a, const PipelineTimings& b) {
              return a.total_us < b.total_us;
            });
  return runs[runs.size() / 2];
}

void PrintKernelTable() {
  PrintHeader("E16: columnar batch engine vs row-at-a-time kernels",
              ">=5x end-to-end speedup on a join-heavy 100k-row pipeline, "
              "byte-identical output");
  constexpr std::size_t kFactRows = 100000;
  constexpr int kRepeats = 5;
  const Workload w(kFactRows);
  // The engine converts each base relation once and caches it
  // (Cluster::ColumnarOf); conversion is outside the per-query timings.
  const auto fact = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(w.fact));
  const auto dim = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(w.dim));

  Table row_out = RunRowPipeline(w, nullptr);  // warmup + reference output
  const Table col_out = RunColumnarPipeline(fact, dim, w, nullptr);
  const bool identical = ExactlyEqual(row_out, col_out);

  std::vector<PipelineTimings> row_runs(kRepeats);
  std::vector<PipelineTimings> col_runs(kRepeats);
  for (int i = 0; i < kRepeats; ++i) {
    row_out = RunRowPipeline(w, &row_runs[static_cast<std::size_t>(i)]);
    benchmark::DoNotOptimize(row_out);
  }
  for (int i = 0; i < kRepeats; ++i) {
    Table out = RunColumnarPipeline(fact, dim, w, &col_runs[static_cast<std::size_t>(i)]);
    benchmark::DoNotOptimize(out);
  }
  const PipelineTimings row_t = Median(std::move(row_runs));
  const PipelineTimings col_t = Median(std::move(col_runs));
  const double speedup = col_t.total_us > 0
                             ? static_cast<double>(row_t.total_us) /
                                   static_cast<double>(col_t.total_us)
                             : 0.0;

  std::printf("%-10s %14s %14s %9s\n", "stage", "row_us", "columnar_us",
              "speedup");
  const auto stage = [](const char* name, std::int64_t row_us,
                        std::int64_t col_us) {
    std::printf("%-10s %14lld %14lld %8.1fx\n", name,
                static_cast<long long>(row_us), static_cast<long long>(col_us),
                col_us > 0 ? static_cast<double>(row_us) /
                                 static_cast<double>(col_us)
                           : 0.0);
  };
  stage("select", row_t.select_us, col_t.select_us);
  stage("join", row_t.join_us, col_t.join_us);
  stage("project", row_t.project_us, col_t.project_us);
  stage("total", row_t.total_us, col_t.total_us);
  std::printf("fact_rows=%zu dim_rows=%zu result_rows=%zu identical=%s\n",
              w.fact.row_count(), w.dim.row_count(), col_out.row_count(),
              identical ? "yes" : "NO");

  // The radix-partitioned join must reuse the cached per-column hashes: each
  // input row is hashed exactly once, so the hash count is O(build + probe) —
  // never O(matches), never re-hashed per partition. Checked against the
  // sequential join too, which shares the same contract.
  std::uint64_t seq_hashed = 0;
  std::uint64_t par_hashed = 0;
  std::uint64_t hash_budget = 0;
  {
    const ColumnarBatch filtered = Unwrap(
        algebra::SelectBatch(ColumnarBatch::FromTable(fact), w.filter),
        "select");
    hash_budget = filtered.row_count() + w.dim.row_count();
    {
      algebra::KernelStats stats;
      const algebra::KernelStatsScope scope(&stats);
      ColumnarBatch joined = Unwrap(
          algebra::JoinBatches(filtered, ColumnarBatch::FromTable(dim),
                               w.atoms),
          "sequential join");
      benchmark::DoNotOptimize(joined);
      seq_hashed = stats.rows_hashed;
    }
    {
      ThreadPool pool(4);
      algebra::MorselContext ctx;
      ctx.pool = &pool;
      algebra::KernelStats stats;
      const algebra::KernelStatsScope scope(&stats);
      ColumnarBatch joined = Unwrap(
          algebra::JoinBatches(filtered, ColumnarBatch::FromTable(dim),
                               w.atoms, ctx),
          "partitioned join");
      benchmark::DoNotOptimize(joined);
      par_hashed = stats.rows_hashed;
    }
  }
  std::printf("rows_hashed sequential=%llu partitioned=%llu build+probe=%llu\n",
              static_cast<unsigned long long>(seq_hashed),
              static_cast<unsigned long long>(par_hashed),
              static_cast<unsigned long long>(hash_budget));

  Artifact artifact("exec_kernels",
                    "E16: columnar batch engine vs row kernels",
                    ">=5x speedup on the 100k-row join-heavy pipeline with "
                    "byte-identical results");
  artifact.Row()
      .Value("fact_rows", w.fact.row_count())
      .Value("dim_rows", w.dim.row_count())
      .Value("result_rows", col_out.row_count())
      .Value("row_select_us", row_t.select_us)
      .Value("row_join_us", row_t.join_us)
      .Value("row_project_us", row_t.project_us)
      .Value("row_total_us", row_t.total_us)
      .Value("columnar_select_us", col_t.select_us)
      .Value("columnar_join_us", col_t.join_us)
      .Value("columnar_project_us", col_t.project_us)
      .Value("columnar_total_us", col_t.total_us)
      .Value("speedup", speedup)
      .Value("identical", identical)
      .Value("rows_hashed_sequential", seq_hashed)
      .Value("rows_hashed_partitioned", par_hashed)
      .Value("rows_hashed_budget", hash_budget);
  artifact.Write();

  if (!identical) {
    std::fprintf(stderr, "FATAL: columnar output differs from row output\n");
    std::abort();
  }
  if (seq_hashed != hash_budget || par_hashed != hash_budget) {
    std::fprintf(stderr,
                 "FATAL: join hashed %llu/%llu rows (seq/partitioned), "
                 "expected exactly build+probe = %llu\n",
                 static_cast<unsigned long long>(seq_hashed),
                 static_cast<unsigned long long>(par_hashed),
                 static_cast<unsigned long long>(hash_budget));
    std::abort();
  }
}

void BM_RowPipeline(benchmark::State& state) {
  const Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Table out = RunRowPipeline(w, nullptr);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RowPipeline)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ColumnarPipeline(benchmark::State& state) {
  const Workload w(static_cast<std::size_t>(state.range(0)));
  const auto fact = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(w.fact));
  const auto dim = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(w.dim));
  for (auto _ : state) {
    Table out = RunColumnarPipeline(fact, dim, w, nullptr);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ColumnarPipeline)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ColumnarConversion(benchmark::State& state) {
  const Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ColumnarTable ct = ColumnarTable::FromRows(w.fact);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_ColumnarConversion)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintKernelTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
