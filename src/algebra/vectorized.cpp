#include "algebra/vectorized.hpp"

#include <string>

namespace cisqp::algebra {
namespace {

/// The calling thread's kernel-counter sink (see KernelStatsScope).
thread_local KernelStats* active_kernel_stats = nullptr;

using storage::ColumnVector;
using storage::ColumnarTable;
using storage::SelectionVector;

SelectionVector Iota(std::size_t n) {
  SelectionVector ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  return ids;
}

/// Seed/combine for multi-column row hashes (order-sensitive).
std::size_t CombineCellHash(std::size_t seed, std::size_t cell_hash) noexcept {
  HashCombine(seed, cell_hash);
  return seed;
}
constexpr std::size_t kRowHashSeed = 0xcbf29ce484222325ull;

constexpr std::uint32_t kChainEnd = 0xffffffffu;

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Physical row ids of the view, in view order (the common all-rows case
/// avoids a per-access branch in the hot loops below).
SelectionVector ViewRows(const ColumnarBatch& b) {
  SelectionVector ids(b.row_count());
  for (std::size_t r = 0; r < ids.size(); ++r) ids[r] = b.physical_row(r);
  return ids;
}

/// Column-major row hashes over the view columns `cols` of `batch`, one per
/// entry of `ids`. NULL cells hash as the NULL class (Distinct semantics);
/// when `valid` is given, rows with a NULL in any hashed column are marked
/// invalid instead (join-key semantics).
std::vector<std::size_t> HashRows(const ColumnarBatch& batch,
                                  const std::vector<std::size_t>& cols,
                                  const SelectionVector& ids,
                                  std::vector<char>* valid) {
  std::vector<std::size_t> hashes(ids.size(), kRowHashSeed);
  if (valid != nullptr) valid->assign(ids.size(), 1);
  for (const std::size_t c : cols) {
    const storage::ColumnVector& col = batch.physical(c);
    for (std::size_t r = 0; r < ids.size(); ++r) {
      if (valid != nullptr && col.IsNull(ids[r])) {
        (*valid)[r] = 0;
        continue;
      }
      hashes[r] = CombineCellHash(hashes[r], col.HashAt(ids[r]));
    }
  }
  return hashes;
}

template <typename T>
bool ApplyOp(CompareOp op, const T& a, const T& b) noexcept {
  switch (op) {
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a < b || a == b;  // NaN-faithful, like SqlLess
    case CompareOp::kGt: return b < a;
    case CompareOp::kGe: return b < a || a == b;
  }
  return false;
}

/// In-place selection narrowing: keeps ids where `keep(id)` holds.
template <typename Keep>
void Narrow(SelectionVector& ids, Keep keep) {
  std::size_t w = 0;
  for (const std::uint32_t id : ids) {
    if (keep(id)) ids[w++] = id;
  }
  ids.resize(w);
}

/// attr-vs-literal filter. Row-kernel semantics: NULL never passes any
/// operator; non-NULL cells of a type different from the literal's pass
/// only `<>`.
void FilterLiteral(const ColumnVector& col, CompareOp op,
                   const storage::Value& lit, SelectionVector& ids) {
  if (lit.is_null()) {
    ids.clear();
    return;
  }
  if (lit.type() != col.type()) {
    if (op == CompareOp::kNe) {
      Narrow(ids, [&](std::uint32_t id) { return !col.IsNull(id); });
    } else {
      ids.clear();
    }
    return;
  }
  switch (col.type()) {
    case catalog::ValueType::kInt64: {
      const std::int64_t v = lit.AsInt64();
      Narrow(ids, [&](std::uint32_t id) {
        return !col.IsNull(id) && ApplyOp(op, col.Int64At(id), v);
      });
      break;
    }
    case catalog::ValueType::kDouble: {
      const double v = lit.AsDouble();
      Narrow(ids, [&](std::uint32_t id) {
        return !col.IsNull(id) && ApplyOp(op, col.DoubleAt(id), v);
      });
      break;
    }
    case catalog::ValueType::kString: {
      // Evaluate the operator once per *distinct* value, then filter cells
      // by dictionary code.
      const std::string& v = lit.AsString();
      const auto& dict = col.dictionary();
      std::vector<char> pass(dict.size());
      for (std::size_t c = 0; c < dict.size(); ++c) {
        pass[c] = ApplyOp(op, dict[c], v) ? 1 : 0;
      }
      const std::size_t before = ids.size();
      Narrow(ids, [&](std::uint32_t id) {
        return !col.IsNull(id) && pass[col.CodeAt(id)] != 0;
      });
      if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
        ks->dict_filter_lookups += before;
        ks->dict_filter_hits += ids.size();
      }
      break;
    }
  }
}

/// attr-vs-attr filter with the same NULL / type-mismatch semantics.
void FilterColumns(const ColumnVector& lhs, CompareOp op,
                   const ColumnVector& rhs, SelectionVector& ids) {
  if (lhs.type() != rhs.type()) {
    if (op == CompareOp::kNe) {
      Narrow(ids, [&](std::uint32_t id) {
        return !lhs.IsNull(id) && !rhs.IsNull(id);
      });
    } else {
      ids.clear();
    }
    return;
  }
  switch (lhs.type()) {
    case catalog::ValueType::kInt64:
      Narrow(ids, [&](std::uint32_t id) {
        return !lhs.IsNull(id) && !rhs.IsNull(id) &&
               ApplyOp(op, lhs.Int64At(id), rhs.Int64At(id));
      });
      break;
    case catalog::ValueType::kDouble:
      Narrow(ids, [&](std::uint32_t id) {
        return !lhs.IsNull(id) && !rhs.IsNull(id) &&
               ApplyOp(op, lhs.DoubleAt(id), rhs.DoubleAt(id));
      });
      break;
    case catalog::ValueType::kString:
      Narrow(ids, [&](std::uint32_t id) {
        return !lhs.IsNull(id) && !rhs.IsNull(id) &&
               ApplyOp(op, lhs.StringAt(id), rhs.StringAt(id));
      });
      break;
  }
}

}  // namespace

KernelStatsScope::KernelStatsScope(KernelStats* stats) noexcept
    : previous_(active_kernel_stats) {
  active_kernel_stats = stats;
}

KernelStatsScope::~KernelStatsScope() { active_kernel_stats = previous_; }

KernelStats* KernelStatsScope::Active() noexcept { return active_kernel_stats; }

ColumnarBatch ColumnarBatch::FromTable(
    std::shared_ptr<const ColumnarTable> table) {
  ColumnarBatch b;
  b.col_map_.resize(table->column_count());
  for (std::size_t i = 0; i < b.col_map_.size(); ++i) b.col_map_[i] = i;
  b.source_ = std::move(table);
  return b;
}

std::vector<storage::Column> ColumnarBatch::Header() const {
  std::vector<storage::Column> header;
  header.reserve(col_map_.size());
  for (const std::size_t c : col_map_) header.push_back(source_->columns()[c]);
  return header;
}

std::optional<std::size_t> ColumnarBatch::ViewColumnIndex(
    catalog::AttributeId attribute) const {
  for (std::size_t c = 0; c < col_map_.size(); ++c) {
    if (column_at(c).attribute == attribute) return c;
  }
  return std::nullopt;
}

bool ColumnarBatch::identity() const noexcept {
  if (sel_ || col_map_.size() != source_->column_count()) return false;
  for (std::size_t i = 0; i < col_map_.size(); ++i) {
    if (col_map_[i] != i) return false;
  }
  return true;
}

std::shared_ptr<const ColumnarTable> ColumnarBatch::Materialize() const {
  if (identity()) return source_;
  const SelectionVector ids = sel_ ? *sel_ : Iota(source_->row_count());
  std::vector<ColumnVector> cols;
  cols.reserve(col_map_.size());
  for (std::size_t c = 0; c < col_map_.size(); ++c) {
    ColumnVector out(column_at(c).type);
    out.GatherFrom(physical(c), ids);
    cols.push_back(std::move(out));
  }
  return std::make_shared<ColumnarTable>(Header(), std::move(cols));
}

storage::Table ColumnarBatch::MaterializeRows() const {
  storage::Table out(Header());
  const std::size_t n = row_count();
  out.Reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t id = physical_row(r);
    storage::Row row;
    row.reserve(col_map_.size());
    for (std::size_t c = 0; c < col_map_.size(); ++c) {
      row.push_back(physical(c).ValueAt(id));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<ColumnarBatch> SelectBatch(const ColumnarBatch& input,
                                  const Predicate& predicate) {
  // Resolve every conjunct against the view header before touching data, so
  // a malformed predicate fails regardless of row count.
  struct Resolved {
    std::size_t lhs = 0;
    const Comparison* cmp = nullptr;
    std::optional<std::size_t> rhs_col;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(predicate.conjuncts().size());
  for (const Comparison& c : predicate.conjuncts()) {
    Resolved r;
    const auto lhs = input.ViewColumnIndex(c.lhs);
    if (!lhs) {
      return InvalidArgumentError("predicate references attribute id " +
                                  std::to_string(c.lhs) +
                                  " missing from input");
    }
    r.lhs = *lhs;
    r.cmp = &c;
    if (c.rhs_is_attribute()) {
      const auto a = std::get<catalog::AttributeId>(c.rhs);
      const auto rhs = input.ViewColumnIndex(a);
      if (!rhs) {
        return InvalidArgumentError("predicate references attribute id " +
                                    std::to_string(a) + " missing from input");
      }
      r.rhs_col = *rhs;
    }
    resolved.push_back(r);
  }

  SelectionVector ids = input.sel_ ? *input.sel_ : Iota(input.source_->row_count());
  for (const Resolved& r : resolved) {
    if (ids.empty()) break;
    if (r.rhs_col) {
      FilterColumns(input.physical(r.lhs), r.cmp->op, input.physical(*r.rhs_col),
                    ids);
    } else {
      FilterLiteral(input.physical(r.lhs), r.cmp->op,
                    std::get<storage::Value>(r.cmp->rhs), ids);
    }
  }
  ColumnarBatch out;
  out.source_ = input.source_;
  out.col_map_ = input.col_map_;
  out.sel_ = std::move(ids);
  return out;
}

Result<ColumnarBatch> ProjectBatch(const ColumnarBatch& input,
                                   const std::vector<catalog::AttributeId>& attrs,
                                   bool distinct) {
  if (attrs.empty()) {
    return InvalidArgumentError("projection needs at least one attribute");
  }
  std::vector<std::size_t> col_map;
  col_map.reserve(attrs.size());
  for (const catalog::AttributeId a : attrs) {
    const auto c = input.ViewColumnIndex(a);
    if (!c) {
      return InvalidArgumentError("projection attribute id " +
                                  std::to_string(a) +
                                  " is not a column of the input");
    }
    col_map.push_back(input.col_map_[*c]);
  }
  ColumnarBatch out;
  out.source_ = input.source_;
  out.col_map_ = std::move(col_map);
  out.sel_ = input.sel_;
  if (distinct) return DistinctBatch(out);
  return out;
}

ColumnarBatch DistinctBatch(const ColumnarBatch& input) {
  const std::size_t n = input.row_count();
  const std::size_t width = input.width();
  const SelectionVector ids = ViewRows(input);
  std::vector<std::size_t> view_cols(width);
  for (std::size_t c = 0; c < width; ++c) view_cols[c] = c;
  const std::vector<std::size_t> hashes =
      HashRows(input, view_cols, ids, /*valid=*/nullptr);

  // Open-addressing set of kept rows: flat arrays, no per-bucket allocation.
  const std::size_t cap = NextPow2(n * 2 + 1);
  const std::size_t mask = cap - 1;
  std::vector<std::uint32_t> slot_id(cap, kChainEnd);
  std::vector<std::size_t> slot_hash(cap);
  SelectionVector kept;
  kept.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t id = ids[r];
    const std::size_t h = hashes[r];
    std::size_t slot = h & mask;
    bool duplicate = false;
    while (slot_id[slot] != kChainEnd) {
      if (slot_hash[slot] == h) {
        bool equal = true;
        for (std::size_t c = 0; c < width && equal; ++c) {
          const ColumnVector& col = input.physical(c);
          equal = col.CellsEqual(id, col, slot_id[slot]);
        }
        if (equal) {
          duplicate = true;
          break;
        }
      }
      slot = (slot + 1) & mask;
    }
    if (!duplicate) {
      slot_id[slot] = id;
      slot_hash[slot] = h;
      kept.push_back(id);
    }
  }
  ColumnarBatch out;
  out.source_ = input.source_;
  out.col_map_ = input.col_map_;
  out.sel_ = std::move(kept);
  return out;
}

namespace {

/// Shared core of the two join kernels: hashes the build side's key columns
/// (skipping NULL keys), probes in order, and returns physical-row gather
/// lists for both inputs, in probe-major emit order.
void HashProbe(const ColumnarBatch& build, const std::vector<std::size_t>& bidx,
               const ColumnarBatch& probe, const std::vector<std::size_t>& pidx,
               SelectionVector& build_ids, SelectionVector& probe_ids) {
  const std::size_t bn = build.row_count();
  const std::size_t keys = bidx.size();
  const SelectionVector bids = ViewRows(build);
  std::vector<char> bvalid;
  const std::vector<std::size_t> bhash = HashRows(build, bidx, bids, &bvalid);

  // Bucket-chained hash table over flat arrays: `head` per bucket, `next`
  // per build row. Chains are threaded in reverse so traversal yields build
  // rows in insertion order — the row kernel's emit order.
  const std::size_t cap = NextPow2(bn * 2 + 1);
  const std::size_t mask = cap - 1;
  std::vector<std::uint32_t> head(cap, kChainEnd);
  std::vector<std::uint32_t> next(bn, kChainEnd);
  for (std::size_t r = bn; r-- > 0;) {
    if (!bvalid[r]) continue;
    const std::size_t slot = bhash[r] & mask;
    next[r] = head[slot];
    head[slot] = static_cast<std::uint32_t>(r);
  }

  const SelectionVector pids = ViewRows(probe);
  std::vector<char> pvalid;
  const std::vector<std::size_t> phash = HashRows(probe, pidx, pids, &pvalid);
  for (std::size_t r = 0; r < pids.size(); ++r) {
    if (!pvalid[r]) continue;
    const std::size_t h = phash[r];
    const std::uint32_t id = pids[r];
    for (std::uint32_t e = head[h & mask]; e != kChainEnd; e = next[e]) {
      if (bhash[e] != h) continue;
      bool equal = true;
      for (std::size_t k = 0; k < keys && equal; ++k) {
        equal = build.physical(bidx[k]).CellsEqual(
            bids[e], probe.physical(pidx[k]), id);
      }
      if (equal) {
        build_ids.push_back(bids[e]);
        probe_ids.push_back(id);
      }
    }
  }
  if (KernelStats* ks = active_kernel_stats; ks != nullptr) {
    ks->hash_build_rows += bn;
    for (const char v : pvalid) ks->hash_probe_rows += v != 0 ? 1 : 0;
    ks->hash_matches += probe_ids.size();
  }
}

/// Gathers one output column per (batch view column, gather list) pair.
void GatherColumns(const ColumnarBatch& batch, const SelectionVector& ids,
                   const std::vector<std::size_t>& view_cols,
                   std::vector<ColumnVector>& out) {
  for (const std::size_t c : view_cols) {
    ColumnVector col(batch.column_at(c).type);
    col.GatherFrom(batch.physical(c), ids);
    out.push_back(std::move(col));
  }
}

std::vector<std::size_t> AllViewColumns(const ColumnarBatch& b) {
  std::vector<std::size_t> cols(b.width());
  for (std::size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  return cols;
}

}  // namespace

Result<ColumnarBatch> JoinBatches(const ColumnarBatch& left,
                                  const ColumnarBatch& right,
                                  const std::vector<EquiJoinAtom>& atoms) {
  if (atoms.empty()) {
    return InvalidArgumentError("equi-join needs at least one atom");
  }
  std::vector<std::size_t> lidx;
  std::vector<std::size_t> ridx;
  for (const EquiJoinAtom& atom : atoms) {
    const auto li = left.ViewColumnIndex(atom.left);
    const auto ri = right.ViewColumnIndex(atom.right);
    if (!li || !ri) {
      return InvalidArgumentError(
          "join atom references attributes missing from operands");
    }
    lidx.push_back(*li);
    ridx.push_back(*ri);
  }

  // Build on the smaller side, probe with the larger (row-kernel heuristic;
  // keeping it identical pins the output row order).
  const bool build_left = left.row_count() <= right.row_count();
  SelectionVector lids;
  SelectionVector rids;
  if (build_left) {
    HashProbe(left, lidx, right, ridx, lids, rids);
  } else {
    HashProbe(right, ridx, left, lidx, rids, lids);
  }

  std::vector<storage::Column> header = left.Header();
  const std::vector<storage::Column> right_header = right.Header();
  header.insert(header.end(), right_header.begin(), right_header.end());
  std::vector<ColumnVector> cols;
  cols.reserve(header.size());
  GatherColumns(left, lids, AllViewColumns(left), cols);
  GatherColumns(right, rids, AllViewColumns(right), cols);
  return ColumnarBatch::FromTable(
      std::make_shared<ColumnarTable>(std::move(header), std::move(cols)));
}

Result<ColumnarBatch> NaturalJoinBatches(const ColumnarBatch& left,
                                         const ColumnarBatch& right) {
  std::vector<std::size_t> lidx;
  std::vector<std::size_t> ridx;
  std::vector<std::size_t> right_extra;  ///< right view cols not shared
  for (std::size_t rc = 0; rc < right.width(); ++rc) {
    const auto li = left.ViewColumnIndex(right.column_at(rc).attribute);
    if (li) {
      lidx.push_back(*li);
      ridx.push_back(rc);
    } else {
      right_extra.push_back(rc);
    }
  }
  if (lidx.empty()) {
    return InvalidArgumentError(
        "natural join requires at least one shared attribute");
  }

  // Build on the right, probe the left in order (row-kernel output order).
  SelectionVector rids;
  SelectionVector lids;
  HashProbe(right, ridx, left, lidx, rids, lids);

  std::vector<storage::Column> header = left.Header();
  for (const std::size_t rc : right_extra) header.push_back(right.column_at(rc));
  std::vector<ColumnVector> cols;
  cols.reserve(header.size());
  GatherColumns(left, lids, AllViewColumns(left), cols);
  GatherColumns(right, rids, right_extra, cols);
  return ColumnarBatch::FromTable(
      std::make_shared<ColumnarTable>(std::move(header), std::move(cols)));
}

}  // namespace cisqp::algebra
