// Shared helpers for the cisqp test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "plan/builder.hpp"
#include "sql/binder.hpp"
#include "workload/medical.hpp"

namespace cisqp::testing {

/// gtest-friendly assertion helpers for Status / Result.
#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const auto& cisqp_st_ = (expr);                            \
    ASSERT_TRUE(cisqp_st_.ok()) << cisqp_st_.ToString();       \
  } while (false)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const auto& cisqp_st_ = (expr);                            \
    EXPECT_TRUE(cisqp_st_.ok()) << cisqp_st_.ToString();       \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  auto CISQP_CONCAT_(cisqp_res_, __LINE__) = (expr);           \
  ASSERT_TRUE(CISQP_CONCAT_(cisqp_res_, __LINE__).ok())        \
      << CISQP_CONCAT_(cisqp_res_, __LINE__).status();         \
  lhs = std::move(CISQP_CONCAT_(cisqp_res_, __LINE__)).value()

/// Attribute id by (possibly dotted) name; dies on unknown names.
inline catalog::AttributeId Attr(const catalog::Catalog& cat,
                                 std::string_view name) {
  return cat.FindAttribute(name).value();
}

/// Server id by name; dies on unknown names.
inline catalog::ServerId Server(const catalog::Catalog& cat,
                                std::string_view name) {
  return cat.FindServer(name).value();
}

/// Relation id by name; dies on unknown names.
inline catalog::RelationId Relation(const catalog::Catalog& cat,
                                    std::string_view name) {
  return cat.FindRelation(name).value();
}

/// IdSet from attribute names.
inline IdSet Attrs(const catalog::Catalog& cat,
                   const std::vector<std::string>& names) {
  IdSet out;
  for (const std::string& n : names) out.Insert(Attr(cat, n));
  return out;
}

/// JoinPath from attribute-name pairs.
inline authz::JoinPath Path(
    const catalog::Catalog& cat,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<authz::JoinAtom> atoms;
  for (const auto& [a, b] : pairs) {
    atoms.push_back(authz::JoinAtom::Make(Attr(cat, a), Attr(cat, b)));
  }
  return authz::JoinPath::FromAtoms(std::move(atoms));
}

/// The paper's scenario, parsed and planned with FROM-clause join order
/// (which yields exactly the Fig. 2 tree).
struct MedicalFixture {
  catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);

  plan::QueryPlan PaperPlan() const {
    auto spec = sql::ParseAndBind(cat, workload::MedicalScenario::kPaperQuery);
    CISQP_CHECK_MSG(spec.ok(), spec.status().ToString());
    auto built = plan::PlanBuilder(cat).Build(*spec);
    CISQP_CHECK_MSG(built.ok(), built.status().ToString());
    return std::move(*built);
  }
};

}  // namespace cisqp::testing
