#include "storage/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace cisqp::storage {

Table Table::ForRelation(const catalog::Catalog& cat, catalog::RelationId rel) {
  const catalog::RelationDef& def = cat.relation(rel);
  std::vector<Column> cols;
  cols.reserve(def.attributes.size());
  for (catalog::AttributeId attr : def.attributes) {
    cols.push_back(Column{attr, cat.attribute(attr).type});
  }
  return Table(std::move(cols));
}

void Table::BuildColumnIndex() {
  column_index_.clear();
  column_index_.reserve(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    column_index_.emplace_back(columns_[i].attribute, i);
  }
  std::sort(column_index_.begin(), column_index_.end());
}

std::optional<std::size_t> Table::ColumnIndex(catalog::AttributeId attribute) const noexcept {
  const auto it = std::lower_bound(
      column_index_.begin(), column_index_.end(),
      std::make_pair(attribute, std::size_t{0}));
  if (it == column_index_.end() || it->first != attribute) return std::nullopt;
  return it->second;
}

IdSet Table::AttributeSet() const {
  IdSet out;
  for (const Column& c : columns_) out.Insert(c.attribute);
  return out;
}

Status Table::AppendRow(Row row) {
  if (row.size() != columns_.size()) {
    return InvalidArgumentError("row arity " + std::to_string(row.size()) +
                                " does not match table arity " +
                                std::to_string(columns_.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != columns_[i].type) {
      return InvalidArgumentError(
          "cell " + std::to_string(i) + " has type '" +
          std::string(catalog::ValueTypeName(row[i].type())) + "', column expects '" +
          std::string(catalog::ValueTypeName(columns_[i].type)) + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

std::size_t Table::WireSizeBytes() const noexcept {
  std::size_t total = 0;
  for (const Row& r : rows_) {
    for (const Value& v : r) total += v.WireSizeBytes();
  }
  return total;
}

namespace {

bool RowTotalLess(const Row& a, const Row& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int c = a[i].CompareTotal(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

std::vector<std::size_t> SortedRowPermutation(const std::vector<Row>& rows) {
  std::vector<std::size_t> perm(rows.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&rows](std::size_t x, std::size_t y) {
    return RowTotalLess(rows[x], rows[y]);
  });
  return perm;
}

}  // namespace

Table Table::Canonicalized() const {
  Table out = *this;
  std::sort(out.rows_.begin(), out.rows_.end(), RowTotalLess);
  return out;
}

bool Table::SameRowMultiset(const Table& a, const Table& b) {
  if (a.columns_ != b.columns_) return false;
  if (a.row_count() != b.row_count()) return false;
  const std::vector<std::size_t> pa = SortedRowPermutation(a.rows_);
  const std::vector<std::size_t> pb = SortedRowPermutation(b.rows_);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (!(a.rows_[pa[i]] == b.rows_[pb[i]])) return false;
  }
  return true;
}

std::string Table::ToDisplayString(const catalog::Catalog& cat,
                                   std::size_t max_rows) const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::string> headers(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    headers[i] = cat.attribute(columns_[i].attribute).name;
    widths[i] = headers[i].size();
  }
  const std::size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (std::size_t r = 0; r < shown; ++r) {
    cells[r].resize(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::ostringstream oss;
  const auto rule = [&] {
    oss << "+";
    for (std::size_t w : widths) oss << std::string(w + 2, '-') << "+";
    oss << "\n";
  };
  rule();
  oss << "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    oss << " " << std::setw(static_cast<int>(widths[c])) << std::left << headers[c] << " |";
  }
  oss << "\n";
  rule();
  for (std::size_t r = 0; r < shown; ++r) {
    oss << "|";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      oss << " " << std::setw(static_cast<int>(widths[c])) << std::left << cells[r][c] << " |";
    }
    oss << "\n";
  }
  rule();
  if (shown < rows_.size()) {
    oss << "(" << rows_.size() - shown << " more rows)\n";
  }
  oss << rows_.size() << " row(s)\n";
  return oss.str();
}

}  // namespace cisqp::storage
