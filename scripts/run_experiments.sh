#!/usr/bin/env bash
# Rebuilds the project, runs the full test suite, and regenerates every
# experiment (E1..E13), tee-ing the artifacts next to the repository root.
# Each bench binary also writes a machine-readable BENCH_<name>.json into
# artifacts/ (via CISQP_BENCH_OUT_DIR) for downstream plotting.
#
#   scripts/run_experiments.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

ARTIFACT_DIR="$ROOT/artifacts"
mkdir -p "$ARTIFACT_DIR"
export CISQP_BENCH_OUT_DIR="$ARTIFACT_DIR"

: > bench_output.txt
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "### $b" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "collected artifacts:"
ls -1 "$ARTIFACT_DIR"/BENCH_*.json 2>/dev/null || echo "  (none)"
echo "done: test_output.txt, bench_output.txt, artifacts/BENCH_*.json"
