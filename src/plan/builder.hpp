// PlanBuilder: QuerySpec → query tree plan (step one of the two-step
// distributed optimization the paper integrates with, §5 end).
//
// Builds a left-deep join tree, places WHERE conjuncts at the lowest node
// that produces their attributes, pushes projections down so every subtree
// carries only the attributes needed above it (paper §2: "projections are
// pushed down ... also important for security purposes, as it discloses only
// the attributes needed"), and optionally reorders joins greedily by
// estimated intermediate cardinality.
#pragma once

#include "plan/plan_node.hpp"
#include "plan/query_spec.hpp"
#include "plan/stats.hpp"

namespace cisqp::plan {

enum class JoinOrderPolicy : std::uint8_t {
  kFromClause,  ///< keep the FROM-clause order (paper examples use this)
  kGreedyCost,  ///< greedy smallest-intermediate-result order using stats
};

struct BuildOptions {
  JoinOrderPolicy join_order = JoinOrderPolicy::kFromClause;
  bool push_selections = true;
  bool push_projections = true;
};

class PlanBuilder {
 public:
  explicit PlanBuilder(const catalog::Catalog& cat,
                       const StatsCatalog* stats = nullptr,
                       const StatsFeedback* feedback = nullptr)
      : cat_(cat), stats_(stats), feedback_(feedback) {}

  /// Builds and validates a plan for `spec`. Fails when the spec is invalid
  /// or (under kGreedyCost) when the join graph of the spec is disconnected.
  Result<QueryPlan> Build(const QuerySpec& spec,
                          const BuildOptions& options = {}) const;

  /// Finishes an externally built join tree (scans + joins covering exactly
  /// the relations of `spec`, any shape — e.g. the bushy trees of the DP
  /// optimizer): places WHERE conjuncts, pushes projections, adds the final
  /// π, renumbers and validates. `options.join_order` is ignored.
  Result<QueryPlan> Finish(std::unique_ptr<PlanNode> join_tree,
                           const QuerySpec& spec,
                           const BuildOptions& options = {}) const;

  /// Estimated output cardinality of a plan subtree under this builder's
  /// statistics (used by tests and the cost-based safe planner). A measured
  /// cardinality from the feedback store, when attached and hit, overrides
  /// the model estimate for the whole subtree.
  double EstimateCardinality(const PlanNode& node) const;

 private:
  const catalog::Catalog& cat_;
  const StatsCatalog* stats_;        // may be null: defaults apply
  const StatsFeedback* feedback_;    // may be null: model estimates only
};

}  // namespace cisqp::plan
