#include "exec/cluster.hpp"

namespace cisqp::exec {

Status Cluster::LoadTable(catalog::RelationId rel, storage::Table table) {
  if (rel >= cat_.relation_count()) {
    return NotFoundError("unknown relation id " + std::to_string(rel));
  }
  const storage::Table expected = storage::Table::ForRelation(cat_, rel);
  if (table.columns() != expected.columns()) {
    return InvalidArgumentError("table header does not match schema of '" +
                                cat_.relation(rel).name + "'");
  }
  tables_[rel] = std::move(table);
  {
    const std::lock_guard<std::mutex> lock(*columnar_mu_);
    columnar_[rel].reset();
  }
  return Status::Ok();
}

Status Cluster::InsertRow(catalog::RelationId rel, storage::Row row) {
  if (rel >= cat_.relation_count()) {
    return NotFoundError("unknown relation id " + std::to_string(rel));
  }
  if (!tables_[rel]) tables_[rel] = storage::Table::ForRelation(cat_, rel);
  CISQP_RETURN_IF_ERROR(tables_[rel]->AppendRow(std::move(row)));
  {
    const std::lock_guard<std::mutex> lock(*columnar_mu_);
    columnar_[rel].reset();
  }
  return Status::Ok();
}

const storage::Table& Cluster::TableOf(catalog::RelationId rel) const {
  CISQP_CHECK_MSG(rel < cat_.relation_count(), "unknown relation id " << rel);
  if (!tables_[rel]) tables_[rel] = storage::Table::ForRelation(cat_, rel);
  return *tables_[rel];
}

std::shared_ptr<const storage::ColumnarTable> Cluster::ColumnarOf(
    catalog::RelationId rel) const {
  const storage::Table& table = TableOf(rel);
  const std::lock_guard<std::mutex> lock(*columnar_mu_);
  if (!columnar_[rel]) {
    columnar_[rel] = std::make_shared<const storage::ColumnarTable>(
        storage::ColumnarTable::FromRows(table));
  }
  return columnar_[rel];
}

}  // namespace cisqp::exec
