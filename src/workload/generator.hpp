// Synthetic federation, query, authorization, and data generators.
//
// The paper's evaluation artifacts are a single worked example; experiments
// E4-E8 characterize the algorithm across *populations* of federations. All
// generators are deterministic under an explicit Rng seed.
//
// Key properties the generators maintain:
//  * the relation join graph is connected (a spanning tree plus extra edges),
//    so connected multi-way queries always exist;
//  * attributes linked by join edges share a value domain (union-find over
//    the join graph), so generated joins produce non-empty results;
//  * every server is authorized for the relations it stores (the paper's §4
//    baseline assumption), with additional grants controlled by density
//    knobs — the independent variable of the feasibility experiment E4.
#pragma once

#include "authz/authorization.hpp"
#include "authz/open_policy.hpp"
#include "catalog/catalog.hpp"
#include "common/rng.hpp"
#include "exec/cluster.hpp"
#include "plan/query_spec.hpp"
#include "plan/stats.hpp"

namespace cisqp::workload {

struct FederationConfig {
  std::size_t servers = 4;
  std::size_t relations = 6;
  std::size_t min_attributes = 2;
  std::size_t max_attributes = 4;
  /// Probability of each additional (non-spanning-tree) relation pair being
  /// connected by a join edge.
  double extra_edge_prob = 0.25;
  /// Value-domain size range per join-attribute group; smaller domains mean
  /// more matching rows in generated joins.
  std::int64_t min_domain = 50;
  std::int64_t max_domain = 500;
};

/// A generated schema plus the value-domain size of every attribute
/// (join-connected attributes share domains).
struct Federation {
  catalog::Catalog catalog;
  std::vector<std::int64_t> attribute_domain;  ///< by attribute id
};

Federation GenerateFederation(const FederationConfig& config, Rng& rng);

struct QueryConfig {
  std::size_t relations = 3;     ///< relations in FROM (>= 1)
  std::size_t max_select = 4;    ///< select-list width cap
  double extra_atom_prob = 0.3;  ///< chance of extra ON atoms when available
  double where_prob = 0.5;       ///< chance of having a WHERE clause at all
  std::size_t max_where = 2;     ///< WHERE conjunct cap
};

/// A random connected select-from-where query over the federation's join
/// graph. Fails when the schema cannot support `relations` joined relations.
Result<plan::QuerySpec> GenerateQuery(const catalog::Catalog& cat,
                                      const QueryConfig& config, Rng& rng);

struct AuthzConfig {
  /// Grant every server its own base relations in full (paper §4 assumes it).
  bool grant_own_relations = true;
  /// Probability a server is granted (a random subset of) a foreign base
  /// relation with an empty path.
  double base_grant_prob = 0.3;
  /// Per-attribute keep probability within any grant.
  double attribute_keep_prob = 0.85;
  /// Number of join-path grants attempted per server.
  std::size_t path_grants_per_server = 3;
  /// Random-walk length (atoms) of each path grant, 1..max.
  std::size_t max_path_atoms = 3;
};

authz::AuthorizationSet GenerateAuthorizations(const catalog::Catalog& cat,
                                               const AuthzConfig& config,
                                               Rng& rng);

struct DenialConfig {
  /// Attribute-pair denials attempted per server (random cross-relation
  /// associations the server must not see).
  std::size_t pair_denials_per_server = 2;
  /// Single-attribute denials attempted per server.
  std::size_t attribute_denials_per_server = 1;
  /// Probability a denial carries a one-atom join path.
  double pathed_prob = 0.3;
};

/// A random open policy (footnote-1 regime): per server, a handful of
/// association and attribute denials. Servers never deny their own
/// relations' attributes (they store the data).
authz::OpenPolicySet GenerateDenials(const catalog::Catalog& cat,
                                     const DenialConfig& config, Rng& rng);

struct DataConfig {
  std::size_t min_rows = 200;
  std::size_t max_rows = 1000;
};

/// Fills every relation of the federation with uniform random rows drawing
/// join-connected columns from shared domains.
Status PopulateCluster(exec::Cluster& cluster, const Federation& federation,
                       const DataConfig& config, Rng& rng);

/// Exact statistics scanned from a populated cluster.
plan::StatsCatalog ComputeStats(const exec::Cluster& cluster);

}  // namespace cisqp::workload
