// Query tree plans (paper §2).
//
// A query tree plan is a binary tree whose leaves are base relations and
// whose inner nodes are relational operators; the root produces the query
// result. Nodes carry stable level-order (BFS) ids — the numbering the
// paper's figures use — so planners and executors can attach per-node
// information (profiles, executor assignments, costs) without mutating the
// tree, and traces compare one-to-one with the paper's Fig. 7.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.hpp"
#include "algebra/operators.hpp"
#include "catalog/catalog.hpp"

namespace cisqp::plan {

enum class PlanOp : std::uint8_t {
  kRelation,  ///< leaf: scan of a base relation
  kProject,   ///< π over the single child
  kSelect,    ///< σ over the single child
  kJoin,      ///< equi-join of the two children
};

std::string_view PlanOpName(PlanOp op) noexcept;

/// One node of a query tree plan. Children are owned.
struct PlanNode {
  PlanOp op = PlanOp::kRelation;
  int id = -1;  ///< stable level-order id, assigned by QueryPlan::Renumber

  // kRelation
  catalog::RelationId relation = catalog::kInvalidId;
  // kProject: output attributes in order; `distinct` adds duplicate
  // elimination (set-semantics projection)
  std::vector<catalog::AttributeId> projection;
  bool distinct = false;
  // kSelect
  algebra::Predicate predicate;
  // kJoin: atoms oriented so .left is produced by the left child and .right
  // by the right child
  std::vector<algebra::EquiJoinAtom> join_atoms;

  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  bool is_leaf() const noexcept { return op == PlanOp::kRelation; }
  bool is_unary() const noexcept {
    return op == PlanOp::kProject || op == PlanOp::kSelect;
  }

  /// Ordered output header of this subtree (join = left ++ right).
  std::vector<catalog::AttributeId> OutputAttributes(
      const catalog::Catalog& cat) const;

  /// Deep copy (ids preserved).
  std::unique_ptr<PlanNode> Clone() const;

  // Factory helpers.
  static std::unique_ptr<PlanNode> Relation(catalog::RelationId rel);
  static std::unique_ptr<PlanNode> Project(std::unique_ptr<PlanNode> child,
                                           std::vector<catalog::AttributeId> attrs);
  static std::unique_ptr<PlanNode> Select(std::unique_ptr<PlanNode> child,
                                          algebra::Predicate predicate);
  static std::unique_ptr<PlanNode> Join(std::unique_ptr<PlanNode> l,
                                        std::unique_ptr<PlanNode> r,
                                        std::vector<algebra::EquiJoinAtom> atoms);
};

/// Owning wrapper for a plan tree with id management and validation.
class QueryPlan {
 public:
  QueryPlan() = default;
  explicit QueryPlan(std::unique_ptr<PlanNode> root) : root_(std::move(root)) {
    Renumber();
  }

  QueryPlan(QueryPlan&&) = default;
  QueryPlan& operator=(QueryPlan&&) = default;

  const PlanNode* root() const noexcept { return root_.get(); }
  PlanNode* mutable_root() noexcept { return root_.get(); }
  bool empty() const noexcept { return root_ == nullptr; }

  /// Re-assigns node ids in level order (root = 0); returns the node count.
  int Renumber();

  int node_count() const noexcept { return node_count_; }

  /// Node with id `id`; nullptr when out of range.
  const PlanNode* node(int id) const;

  /// Checks structural well-formedness: child presence per operator arity,
  /// projection/selection attributes available in the child output, join
  /// atoms oriented left/right, all catalog ids valid.
  Status Validate(const catalog::Catalog& cat) const;

  /// Number of join nodes.
  int JoinCount() const;

  QueryPlan Clone() const;

  /// Calls `fn` on every node in pre-order.
  void ForEachPreOrder(const std::function<void(const PlanNode&)>& fn) const;

  /// Indented multi-line rendering with node ids.
  std::string ToString(const catalog::Catalog& cat) const;

 private:
  std::unique_ptr<PlanNode> root_;
  int node_count_ = 0;
  std::vector<const PlanNode*> by_id_;  // rebuilt by Renumber
};

}  // namespace cisqp::plan
