#include "planner/cost_model.hpp"

#include <algorithm>

namespace cisqp::planner {

double CostModel::RowWidthBytes(
    const std::vector<catalog::AttributeId>& attrs) const {
  double width = 0.0;
  for (catalog::AttributeId a : attrs) {
    width += cat_.attribute(a).type == catalog::ValueType::kString
                 ? options_.string_width_bytes
                 : options_.scalar_width_bytes;
  }
  return width;
}

double CostModel::EstimateResultBytes(const plan::PlanNode& node) const {
  return EstimateRows(node) * RowWidthBytes(node.OutputAttributes(cat_));
}

double CostModel::EstimateDistinct(const plan::PlanNode& node,
                                   const IdSet& attrs) const {
  double combos = 1.0;
  for (IdSet::value_type a : attrs) {
    const catalog::RelationId rel = cat_.attribute(a).relation;
    const double d = stats_ != nullptr
                         ? stats_->Of(rel).DistinctOf(a)
                         : plan::RelationStats{}.DistinctOf(a);
    combos *= std::max(d, 1.0);
  }
  return std::min(combos, std::max(EstimateRows(node), 1.0));
}

double CostModel::RegularJoinBytes(const plan::PlanNode& other_child,
                                   bool colocated) const {
  return colocated ? 0.0 : EstimateResultBytes(other_child);
}

double CostModel::SemiJoinBytes(const plan::PlanNode& join_node,
                                const plan::PlanNode& master_child,
                                const plan::PlanNode& slave_child,
                                const IdSet& master_join_attrs) const {
  std::vector<catalog::AttributeId> join_cols(master_join_attrs.begin(),
                                              master_join_attrs.end());
  // Step 2: the master ships the distinct projection of its join attributes.
  const double step2 = EstimateDistinct(master_child, master_join_attrs) *
                       RowWidthBytes(join_cols);
  // Step 4: the slave ships back its operand reduced to matching tuples —
  // one row per row of the eventual join result, carrying the join columns
  // plus the slave operand's attributes.
  std::vector<catalog::AttributeId> step4_cols = join_cols;
  for (catalog::AttributeId a : slave_child.OutputAttributes(cat_)) {
    step4_cols.push_back(a);
  }
  const double step4 = EstimateRows(join_node) * RowWidthBytes(step4_cols);
  return step2 + step4;
}

}  // namespace cisqp::planner
