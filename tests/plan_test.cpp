// Unit tests for src/plan: query tree plans, the builder's pushdown passes,
// join ordering, and cardinality estimation. Includes the paper's Fig. 2
// plan-shape check.
#include <gtest/gtest.h>

#include "plan/builder.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"

namespace cisqp::plan {
namespace {

using cisqp::testing::Attr;
using cisqp::testing::MedicalFixture;
using cisqp::testing::Relation;

class PlanTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;
};

TEST_F(PlanTest, PaperPlanHasFig2Shape) {
  // Fig. 2: n0 = π over n1 = (Insurance ⋈ Nat_registry) ⋈ π(Hospital), with
  // the Hospital projection pushed down and pre-order ids n0..n6.
  const QueryPlan plan = fix_.PaperPlan();
  ASSERT_OK(plan.Validate(fix_.cat));
  EXPECT_EQ(plan.node_count(), 7);
  EXPECT_EQ(plan.JoinCount(), 2);

  const PlanNode* n0 = plan.node(0);
  ASSERT_NE(n0, nullptr);
  EXPECT_EQ(n0->op, PlanOp::kProject);
  EXPECT_EQ(n0->projection,
            (std::vector<catalog::AttributeId>{
                Attr(fix_.cat, "Patient"), Attr(fix_.cat, "Physician"),
                Attr(fix_.cat, "Plan"), Attr(fix_.cat, "HealthAid")}));

  const PlanNode* n1 = plan.node(1);
  EXPECT_EQ(n1->op, PlanOp::kJoin);
  const PlanNode* n2 = plan.node(2);
  EXPECT_EQ(n2->op, PlanOp::kJoin);
  EXPECT_EQ(plan.node(4)->op, PlanOp::kRelation);
  EXPECT_EQ(plan.node(4)->relation, Relation(fix_.cat, "Insurance"));
  EXPECT_EQ(plan.node(5)->relation, Relation(fix_.cat, "Nat_registry"));

  // The Hospital side carries the pushed-down projection of Fig. 2.
  const PlanNode* n3 = plan.node(3);
  ASSERT_EQ(n3->op, PlanOp::kProject);
  EXPECT_EQ(n3->projection,
            (std::vector<catalog::AttributeId>{Attr(fix_.cat, "Patient"),
                                               Attr(fix_.cat, "Physician")}));
  EXPECT_EQ(plan.node(6)->op, PlanOp::kRelation);
  EXPECT_EQ(plan.node(6)->relation, Relation(fix_.cat, "Hospital"));
}

TEST_F(PlanTest, NoProjectInsertedWhenAllAttributesNeeded) {
  // Insurance and Nat_registry contribute all their attributes; only
  // Hospital gets a projection in the paper plan.
  const QueryPlan plan = fix_.PaperPlan();
  int projects = 0;
  plan.ForEachPreOrder([&](const PlanNode& n) {
    if (n.op == PlanOp::kProject) ++projects;
  });
  EXPECT_EQ(projects, 2);  // final π + Hospital π
}

TEST_F(PlanTest, SelectionPushdownReachesLeaf) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      sql::ParseAndBind(fix_.cat,
                        "SELECT Patient, Plan FROM Insurance JOIN Hospital "
                        "ON Holder = Patient WHERE Plan = 'gold'"));
  ASSERT_OK_AND_ASSIGN(QueryPlan plan, PlanBuilder(fix_.cat).Build(spec));
  ASSERT_OK(plan.Validate(fix_.cat));
  // The Plan='gold' conjunct must sit below the join, on the Insurance side.
  bool select_below_join = false;
  plan.ForEachPreOrder([&](const PlanNode& n) {
    if (n.op == PlanOp::kJoin) {
      const PlanNode* l = n.left.get();
      while (l != nullptr) {
        if (l->op == PlanOp::kSelect) select_below_join = true;
        l = l->left.get();
      }
    }
  });
  EXPECT_TRUE(select_below_join);
}

TEST_F(PlanTest, SelectionStaysAtJoinWhenCrossRelation) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      sql::ParseAndBind(fix_.cat,
                        "SELECT Plan FROM Insurance JOIN Hospital "
                        "ON Holder = Patient WHERE Plan = Physician"));
  ASSERT_OK_AND_ASSIGN(QueryPlan plan, PlanBuilder(fix_.cat).Build(spec));
  ASSERT_OK(plan.Validate(fix_.cat));
  // Plan (Insurance) vs Physician (Hospital): the conjunct cannot descend
  // below the join.
  const PlanNode* root = plan.root();
  ASSERT_EQ(root->op, PlanOp::kProject);
  EXPECT_EQ(root->left->op, PlanOp::kSelect);
  EXPECT_EQ(root->left->left->op, PlanOp::kJoin);
}

TEST_F(PlanTest, NoPushdownOptionsKeepSelectionAtRoot) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      sql::ParseAndBind(fix_.cat, "SELECT Patient FROM Hospital WHERE "
                                  "Physician = 'dr_a'"));
  BuildOptions options;
  options.push_selections = false;
  options.push_projections = false;
  ASSERT_OK_AND_ASSIGN(QueryPlan plan, PlanBuilder(fix_.cat).Build(spec, options));
  ASSERT_OK(plan.Validate(fix_.cat));
  ASSERT_EQ(plan.root()->op, PlanOp::kProject);
  EXPECT_EQ(plan.root()->left->op, PlanOp::kSelect);
  EXPECT_EQ(plan.root()->left->left->op, PlanOp::kRelation);
}

TEST_F(PlanTest, SingleRelationQuery) {
  ASSERT_OK_AND_ASSIGN(QuerySpec spec,
                       sql::ParseAndBind(fix_.cat, "SELECT Plan FROM Insurance"));
  ASSERT_OK_AND_ASSIGN(QueryPlan plan, PlanBuilder(fix_.cat).Build(spec));
  EXPECT_EQ(plan.JoinCount(), 0);
  EXPECT_EQ(plan.root()->op, PlanOp::kProject);
}

TEST_F(PlanTest, RenumberIsLevelOrder) {
  // Pre-order traversal of the Fig. 2 tree visits BFS ids 0,1,2,4,5,3,6 —
  // the paper's numbering (leaves n4/n5 sit under n2; n3 is the projection).
  QueryPlan plan = fix_.PaperPlan();
  std::vector<int> ids;
  plan.ForEachPreOrder([&](const PlanNode& n) { ids.push_back(n.id); });
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 4, 5, 3, 6}));
  EXPECT_EQ(plan.node(3)->id, 3);
  EXPECT_EQ(plan.node(99), nullptr);
  EXPECT_EQ(plan.node(-1), nullptr);
}

TEST_F(PlanTest, CloneIsDeepAndEqualShaped) {
  const QueryPlan plan = fix_.PaperPlan();
  const QueryPlan copy = plan.Clone();
  EXPECT_EQ(copy.node_count(), plan.node_count());
  EXPECT_EQ(copy.ToString(fix_.cat), plan.ToString(fix_.cat));
  EXPECT_NE(copy.root(), plan.root());
}

TEST_F(PlanTest, ValidateCatchesBrokenTrees) {
  // Projection of an attribute its child does not produce.
  auto bad = PlanNode::Project(
      PlanNode::Relation(Relation(fix_.cat, "Insurance")),
      {Attr(fix_.cat, "Patient")});
  const QueryPlan plan(std::move(bad));
  EXPECT_EQ(plan.Validate(fix_.cat).code(), StatusCode::kInvalidArgument);

  // Join without atoms.
  auto join = PlanNode::Join(
      PlanNode::Relation(Relation(fix_.cat, "Insurance")),
      PlanNode::Relation(Relation(fix_.cat, "Hospital")), {});
  const QueryPlan plan2(std::move(join));
  EXPECT_EQ(plan2.Validate(fix_.cat).code(), StatusCode::kInvalidArgument);

  // Join atom oriented the wrong way.
  auto join2 = PlanNode::Join(
      PlanNode::Relation(Relation(fix_.cat, "Insurance")),
      PlanNode::Relation(Relation(fix_.cat, "Hospital")),
      {algebra::EquiJoinAtom{Attr(fix_.cat, "Patient"), Attr(fix_.cat, "Holder")}});
  const QueryPlan plan3(std::move(join2));
  EXPECT_EQ(plan3.Validate(fix_.cat).code(), StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, SpecValidateCatchesCrossJoins) {
  QuerySpec spec;
  spec.first_relation = Relation(fix_.cat, "Insurance");
  spec.select_list = {Attr(fix_.cat, "Plan")};
  spec.joins.push_back(JoinStep{Relation(fix_.cat, "Hospital"), {}});
  EXPECT_EQ(spec.Validate(fix_.cat).code(), StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, GreedyJoinOrderPrefersSmallRelations) {
  // Give Hospital far fewer rows; greedy should start from it.
  StatsCatalog stats;
  stats.Set(Relation(fix_.cat, "Insurance"), RelationStats{100000.0, {}});
  stats.Set(Relation(fix_.cat, "Nat_registry"), RelationStats{50000.0, {}});
  stats.Set(Relation(fix_.cat, "Hospital"), RelationStats{10.0, {}});
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  BuildOptions options;
  options.join_order = JoinOrderPolicy::kGreedyCost;
  ASSERT_OK_AND_ASSIGN(QueryPlan plan,
                       PlanBuilder(fix_.cat, &stats).Build(spec, options));
  ASSERT_OK(plan.Validate(fix_.cat));
  // Leftmost leaf should be Hospital.
  const PlanNode* leftmost = plan.root();
  while (leftmost->left) leftmost = leftmost->left.get();
  EXPECT_EQ(leftmost->relation, Relation(fix_.cat, "Hospital"));
}

TEST_F(PlanTest, CardinalityEstimates) {
  StatsCatalog stats;
  RelationStats ins{1000.0, {}};
  ins.distinct[Attr(fix_.cat, "Holder")] = 1000.0;
  stats.Set(Relation(fix_.cat, "Insurance"), ins);
  RelationStats reg{2000.0, {}};
  reg.distinct[Attr(fix_.cat, "Citizen")] = 2000.0;
  stats.Set(Relation(fix_.cat, "Nat_registry"), reg);

  PlanBuilder builder(fix_.cat, &stats);
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      sql::ParseAndBind(fix_.cat, "SELECT Plan FROM Insurance JOIN "
                                  "Nat_registry ON Holder = Citizen"));
  ASSERT_OK_AND_ASSIGN(QueryPlan plan, builder.Build(spec));
  // |I ⋈ N| = 1000 * 2000 / max(1000, 2000) = 1000.
  const PlanNode* join = plan.root();
  while (join->op != PlanOp::kJoin) join = join->left.get();
  EXPECT_DOUBLE_EQ(builder.EstimateCardinality(*join), 1000.0);
}

TEST_F(PlanTest, SelectionSelectivityEstimates) {
  StatsCatalog stats;
  RelationStats ins{1000.0, {}};
  ins.distinct[Attr(fix_.cat, "Plan")] = 4.0;
  stats.Set(Relation(fix_.cat, "Insurance"), ins);
  PlanBuilder builder(fix_.cat, &stats);
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      sql::ParseAndBind(fix_.cat,
                        "SELECT Holder FROM Insurance WHERE Plan = 'gold'"));
  ASSERT_OK_AND_ASSIGN(QueryPlan plan, builder.Build(spec));
  EXPECT_DOUBLE_EQ(builder.EstimateCardinality(*plan.root()), 250.0);
}

TEST_F(PlanTest, StatsFromTableAreExact) {
  exec::Cluster cluster(fix_.cat);
  Rng rng(1);
  ASSERT_OK(workload::MedicalScenario::PopulateCluster(
      cluster, workload::MedicalScenario::DataConfig{200, 0.5, 0.5, 10}, rng));
  const StatsCatalog stats = workload::MedicalScenario::ComputeStats(cluster);
  const RelationStats& reg = stats.Of(Relation(fix_.cat, "Nat_registry"));
  EXPECT_DOUBLE_EQ(reg.rows, 200.0);
  EXPECT_DOUBLE_EQ(reg.DistinctOf(Attr(fix_.cat, "Citizen")), 200.0);
  EXPECT_LE(reg.DistinctOf(Attr(fix_.cat, "HealthAid")), 3.0);
}

}  // namespace
}  // namespace cisqp::plan
