#include "authz/canview_cache.hpp"

#include "obs/metrics.hpp"

namespace cisqp::authz {

std::string ProfileCacheKey(const Profile& profile, catalog::ServerId server) {
  // Ids rendered with unambiguous separators: IdSet and JoinPath are both
  // canonically sorted, so equal profiles encode identically and distinct
  // profiles cannot collide (every component is delimited).
  std::string key = "v" + std::to_string(server) + "|p";
  for (const IdSet::value_type id : profile.pi) {
    key += std::to_string(id);
    key += ",";
  }
  key += "|j";
  for (const JoinAtom& atom : profile.join.atoms()) {
    key += std::to_string(atom.first);
    key += "-";
    key += std::to_string(atom.second);
    key += ",";
  }
  key += "|s";
  for (const IdSet::value_type id : profile.sigma) {
    key += std::to_string(id);
    key += ",";
  }
  return key;
}

CanViewExplanation CachingPolicy::Explain(const Profile& profile,
                                          catalog::ServerId server) const {
  const std::string key = ProfileCacheKey(profile, server);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      CISQP_METRIC_INC("authz.canview_cache.hit");
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CISQP_METRIC_INC("authz.canview_cache.miss");
  CanViewExplanation explanation = base_.ExplainCanView(profile, server);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    memo_.emplace(std::move(key), explanation);
  }
  return explanation;
}

void CachingPolicy::BumpEpoch() {
  const std::lock_guard<std::mutex> lock(mu_);
  // Every entry carries the pre-bump epoch's verdicts; all are affected.
  memo_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  CISQP_METRIC_INC("authz.canview_cache.epoch_bumps");
}

void CachingPolicy::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  memo_.clear();
}

std::size_t CachingPolicy::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

}  // namespace cisqp::authz
