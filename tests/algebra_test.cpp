// Unit tests for src/algebra: predicates and physical operators.
#include <gtest/gtest.h>

#include "algebra/operators.hpp"
#include "test_util.hpp"

namespace cisqp::algebra {
namespace {

using cisqp::testing::Attr;
using cisqp::testing::Relation;
using storage::Table;
using storage::Value;

class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    insurance_ = Table::ForRelation(cat_, Relation(cat_, "Insurance"));
    hospital_ = Table::ForRelation(cat_, Relation(cat_, "Hospital"));
    ASSERT_OK(insurance_.AppendRow({Value(std::int64_t{1}), Value("gold")}));
    ASSERT_OK(insurance_.AppendRow({Value(std::int64_t{2}), Value("silver")}));
    ASSERT_OK(insurance_.AppendRow({Value(std::int64_t{3}), Value("gold")}));
    ASSERT_OK(hospital_.AppendRow(
        {Value(std::int64_t{1}), Value("flu"), Value("dr_a")}));
    ASSERT_OK(hospital_.AppendRow(
        {Value(std::int64_t{1}), Value("cold"), Value("dr_b")}));
    ASSERT_OK(hospital_.AppendRow(
        {Value(std::int64_t{4}), Value("flu"), Value("dr_a")}));
  }

  catalog::Catalog cat_ = workload::MedicalScenario::BuildCatalog();
  Table insurance_;
  Table hospital_;
};

TEST_F(AlgebraTest, CompareOpSymbols) {
  EXPECT_EQ(CompareOpSymbol(CompareOp::kEq), "=");
  EXPECT_EQ(CompareOpSymbol(CompareOp::kNe), "<>");
  EXPECT_EQ(CompareOpSymbol(CompareOp::kLe), "<=");
}

TEST_F(AlgebraTest, EvaluateComparisonAllOps) {
  const Value two{std::int64_t{2}};
  const Value three{std::int64_t{3}};
  EXPECT_TRUE(EvaluateComparison(two, CompareOp::kLt, three));
  EXPECT_TRUE(EvaluateComparison(two, CompareOp::kLe, two));
  EXPECT_TRUE(EvaluateComparison(three, CompareOp::kGt, two));
  EXPECT_TRUE(EvaluateComparison(three, CompareOp::kGe, three));
  EXPECT_TRUE(EvaluateComparison(two, CompareOp::kNe, three));
  EXPECT_FALSE(EvaluateComparison(two, CompareOp::kEq, three));
  // NULL poisons every operator.
  EXPECT_FALSE(EvaluateComparison(Value(), CompareOp::kEq, Value()));
  EXPECT_FALSE(EvaluateComparison(Value(), CompareOp::kNe, two));
  EXPECT_FALSE(EvaluateComparison(two, CompareOp::kLt, Value()));
}

TEST_F(AlgebraTest, PredicateReferencedAttributes) {
  Predicate p;
  p.And(Comparison{Attr(cat_, "Holder"), CompareOp::kGe, Value(std::int64_t{2})});
  p.And(Comparison{Attr(cat_, "Plan"), CompareOp::kEq, Attr(cat_, "Physician")});
  EXPECT_EQ(p.ReferencedAttributes(),
            cisqp::testing::Attrs(cat_, {"Holder", "Plan", "Physician"}));
  EXPECT_TRUE(Predicate::True().ReferencedAttributes().empty());
}

TEST_F(AlgebraTest, PredicateEvaluateAttrLiteral) {
  Predicate p;
  p.And(Comparison{Attr(cat_, "Holder"), CompareOp::kGe, Value(std::int64_t{2})});
  ASSERT_OK_AND_ASSIGN(Table out, Select(insurance_, p));
  EXPECT_EQ(out.row_count(), 2u);
}

TEST_F(AlgebraTest, PredicateEvaluateMissingAttributeFails) {
  Predicate p;
  p.And(Comparison{Attr(cat_, "Citizen"), CompareOp::kEq, Value(std::int64_t{1})});
  EXPECT_EQ(Select(insurance_, p).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AlgebraTest, PredicateToString) {
  Predicate p;
  p.And(Comparison{Attr(cat_, "Holder"), CompareOp::kLt, Value(std::int64_t{9})});
  EXPECT_EQ(p.ToString(cat_), "Holder < 9");
  EXPECT_EQ(Predicate::True().ToString(cat_), "TRUE");
}

TEST_F(AlgebraTest, ProjectKeepsOrderAndValues) {
  ASSERT_OK_AND_ASSIGN(
      Table out, Project(hospital_, {Attr(cat_, "Physician"), Attr(cat_, "Patient")}));
  ASSERT_EQ(out.column_count(), 2u);
  EXPECT_EQ(out.columns()[0].attribute, Attr(cat_, "Physician"));
  EXPECT_EQ(out.row(0)[0], Value("dr_a"));
  EXPECT_EQ(out.row(0)[1], Value(std::int64_t{1}));
  EXPECT_EQ(out.row_count(), 3u);
}

TEST_F(AlgebraTest, ProjectDistinctDropsDuplicates) {
  ASSERT_OK_AND_ASSIGN(Table out,
                       Project(hospital_, {Attr(cat_, "Patient")}, true));
  EXPECT_EQ(out.row_count(), 2u);  // patients 1 and 4
}

TEST_F(AlgebraTest, ProjectValidatesAttributes) {
  EXPECT_EQ(Project(hospital_, {Attr(cat_, "Plan")}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Project(hospital_, {}).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AlgebraTest, HashJoinMatchesOnKeys) {
  ASSERT_OK_AND_ASSIGN(
      Table out,
      HashJoin(insurance_, hospital_,
               {EquiJoinAtom{Attr(cat_, "Holder"), Attr(cat_, "Patient")}}));
  // Holder 1 matches two hospital rows; 2 and 3 match none.
  EXPECT_EQ(out.row_count(), 2u);
  EXPECT_EQ(out.column_count(), 5u);
  EXPECT_EQ(out.columns()[0].attribute, Attr(cat_, "Holder"));
  EXPECT_EQ(out.columns()[2].attribute, Attr(cat_, "Patient"));
}

TEST_F(AlgebraTest, HashJoinIgnoresNullKeys) {
  Table left = Table::ForRelation(cat_, Relation(cat_, "Insurance"));
  ASSERT_OK(left.AppendRow({Value(), Value("none")}));
  ASSERT_OK(left.AppendRow({Value(std::int64_t{4}), Value("gold")}));
  Table right = Table::ForRelation(cat_, Relation(cat_, "Hospital"));
  ASSERT_OK(right.AppendRow({Value(), Value("flu"), Value("dr")}));
  ASSERT_OK(right.AppendRow({Value(std::int64_t{4}), Value("flu"), Value("dr")}));
  ASSERT_OK_AND_ASSIGN(
      Table out,
      HashJoin(left, right,
               {EquiJoinAtom{Attr(cat_, "Holder"), Attr(cat_, "Patient")}}));
  EXPECT_EQ(out.row_count(), 1u);  // only the 4-4 pair; NULLs never match
}

TEST_F(AlgebraTest, HashJoinMultiAtom) {
  // Join Hospital with itself shaped data via two key columns: emulate with
  // Insurance ⋈ Nat_registry-like tables using two atoms over one pair each.
  Table reg = Table::ForRelation(cat_, Relation(cat_, "Nat_registry"));
  ASSERT_OK(reg.AppendRow({Value(std::int64_t{1}), Value("full")}));
  ASSERT_OK(reg.AppendRow({Value(std::int64_t{2}), Value("none")}));
  ASSERT_OK_AND_ASSIGN(
      Table out,
      HashJoin(insurance_, reg,
               {EquiJoinAtom{Attr(cat_, "Holder"), Attr(cat_, "Citizen")}}));
  EXPECT_EQ(out.row_count(), 2u);
}

TEST_F(AlgebraTest, HashJoinRequiresAtoms) {
  EXPECT_EQ(HashJoin(insurance_, hospital_, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AlgebraTest, HashJoinPreservesMultiplicity) {
  Table dup = Table::ForRelation(cat_, Relation(cat_, "Insurance"));
  ASSERT_OK(dup.AppendRow({Value(std::int64_t{1}), Value("gold")}));
  ASSERT_OK(dup.AppendRow({Value(std::int64_t{1}), Value("gold")}));
  ASSERT_OK_AND_ASSIGN(
      Table out,
      HashJoin(dup, hospital_,
               {EquiJoinAtom{Attr(cat_, "Holder"), Attr(cat_, "Patient")}}));
  EXPECT_EQ(out.row_count(), 4u);  // 2 left dups × 2 matching right rows
}

TEST_F(AlgebraTest, NaturalJoinOnSharedColumns) {
  // Shared column: Patient (appears in both inputs).
  ASSERT_OK_AND_ASSIGN(Table patients,
                       Project(hospital_, {Attr(cat_, "Patient")}, true));
  ASSERT_OK_AND_ASSIGN(Table out, NaturalJoinOnShared(hospital_, patients));
  EXPECT_EQ(out.row_count(), 3u);      // every hospital row keeps its match
  EXPECT_EQ(out.column_count(), 3u);   // shared column not duplicated
}

TEST_F(AlgebraTest, NaturalJoinRequiresSharedColumns) {
  EXPECT_EQ(NaturalJoinOnShared(insurance_, hospital_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AlgebraTest, DistinctKeepsFirstOccurrence) {
  Table t = Table::ForRelation(cat_, Relation(cat_, "Insurance"));
  ASSERT_OK(t.AppendRow({Value(std::int64_t{1}), Value("a")}));
  ASSERT_OK(t.AppendRow({Value(std::int64_t{1}), Value("a")}));
  ASSERT_OK(t.AppendRow({Value(std::int64_t{1}), Value("b")}));
  const Table out = Distinct(t);
  EXPECT_EQ(out.row_count(), 2u);
}

TEST_F(AlgebraTest, SelectWithAttrAttrComparison) {
  Table reg = Table::ForRelation(cat_, Relation(cat_, "Nat_registry"));
  ASSERT_OK(reg.AppendRow({Value(std::int64_t{1}), Value("full")}));
  ASSERT_OK_AND_ASSIGN(
      Table joined,
      HashJoin(insurance_, reg,
               {EquiJoinAtom{Attr(cat_, "Holder"), Attr(cat_, "Citizen")}}));
  Predicate p;
  p.And(Comparison{Attr(cat_, "Holder"), CompareOp::kEq, Attr(cat_, "Citizen")});
  ASSERT_OK_AND_ASSIGN(Table out, Select(joined, p));
  EXPECT_EQ(out.row_count(), joined.row_count());
}

}  // namespace
}  // namespace cisqp::algebra
