// Tests for canonical query signatures (src/sql/signature): spelling
// variants that must collapse to one signature, semantic differences that
// must never collide, and randomized near-miss pairs drawn from the fuzz
// scenario generator.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "sql/signature.hpp"
#include "testcheck/scenario.hpp"
#include "test_util.hpp"

namespace cisqp::sql {
namespace {

using cisqp::testing::MedicalFixture;

class SignatureTest : public ::testing::Test {
 protected:
  std::string Sig(std::string_view sql) const {
    auto spec = ParseAndBind(fix_.cat, sql);
    CISQP_CHECK_MSG(spec.ok(), spec.status().ToString());
    return CanonicalQuerySignature(*spec);
  }

  MedicalFixture fix_;
};

TEST_F(SignatureTest, SpellingVariantsCollapse) {
  const std::string base =
      Sig("SELECT Patient, Plan FROM Insurance "
          "JOIN Hospital ON Holder = Patient WHERE Holder >= 3 AND Plan <> 'gold'");
  // Whitespace and keyword case are the lexer's problem.
  EXPECT_EQ(base, Sig("select   Patient,Plan from Insurance join Hospital "
                      "on Holder=Patient where Holder>=3 and Plan<>'gold'"));
  // != and <> are one operator.
  EXPECT_EQ(base,
            Sig("SELECT Patient, Plan FROM Insurance JOIN Hospital ON "
                "Holder = Patient WHERE Holder >= 3 AND Plan != 'gold'"));
  // ON operand order: the binder orients atoms.
  EXPECT_EQ(base,
            Sig("SELECT Patient, Plan FROM Insurance JOIN Hospital ON "
                "Patient = Holder WHERE Holder >= 3 AND Plan <> 'gold'"));
  // WHERE conjuncts commute.
  EXPECT_EQ(base,
            Sig("SELECT Patient, Plan FROM Insurance JOIN Hospital ON "
                "Holder = Patient WHERE Plan <> 'gold' AND Holder >= 3"));
  // Dotted and bare attribute names resolve to the same ids.
  EXPECT_EQ(base, Sig("SELECT Hospital.Patient, Insurance.Plan FROM Insurance "
                      "JOIN Hospital ON Insurance.Holder = Hospital.Patient "
                      "WHERE Insurance.Holder >= 3 AND Insurance.Plan <> 'gold'"));
}

TEST_F(SignatureTest, OnAtomOrderWithinOneStepCollapses) {
  // Two atoms in one ON conjunction commute.
  EXPECT_EQ(Sig("SELECT Plan FROM Insurance JOIN Nat_registry ON "
                "Holder = Citizen JOIN Hospital ON Citizen = Patient AND "
                "Holder = Patient"),
            Sig("SELECT Plan FROM Insurance JOIN Nat_registry ON "
                "Holder = Citizen JOIN Hospital ON Holder = Patient AND "
                "Citizen = Patient"));
}

TEST_F(SignatureTest, SemanticDifferencesNeverCollide) {
  const std::string base =
      Sig("SELECT Patient, Plan FROM Insurance JOIN Hospital ON "
          "Holder = Patient WHERE Holder >= 3");
  const std::vector<std::string> variants{
      // Output column order changes the result bytes.
      "SELECT Plan, Patient FROM Insurance JOIN Hospital ON Holder = Patient "
      "WHERE Holder >= 3",
      // DISTINCT changes multiset semantics.
      "SELECT DISTINCT Patient, Plan FROM Insurance JOIN Hospital ON "
      "Holder = Patient WHERE Holder >= 3",
      // A different literal.
      "SELECT Patient, Plan FROM Insurance JOIN Hospital ON Holder = Patient "
      "WHERE Holder >= 4",
      // A different comparison operator.
      "SELECT Patient, Plan FROM Insurance JOIN Hospital ON Holder = Patient "
      "WHERE Holder > 3",
      // A different select list.
      "SELECT Patient FROM Insurance JOIN Hospital ON Holder = Patient "
      "WHERE Holder >= 3",
      // No WHERE at all.
      "SELECT Patient, Plan FROM Insurance JOIN Hospital ON Holder = Patient",
      // A different FROM sequence (the planner's enumeration tie-break).
      "SELECT Patient, Plan FROM Hospital JOIN Insurance ON Patient = Holder "
      "WHERE Holder >= 3",
  };
  for (const std::string& v : variants) {
    EXPECT_NE(base, Sig(v)) << v;
  }
}

TEST_F(SignatureTest, LiteralEncodingIsLossless) {
  // String literals are length-prefixed: a prefix relationship between two
  // literals must not produce a prefix relationship between signatures that
  // later tokens could repair.
  EXPECT_NE(Sig("SELECT Holder FROM Insurance WHERE Plan = 'gold'"),
            Sig("SELECT Holder FROM Insurance WHERE Plan = 'golden'"));
  EXPECT_NE(Sig("SELECT Holder FROM Insurance WHERE Plan > 'ab' AND Plan < 'c'"),
            Sig("SELECT Holder FROM Insurance WHERE Plan > 'a' AND Plan < 'bc'"));
  // Integer literals keep full precision.
  EXPECT_NE(Sig("SELECT Plan FROM Insurance WHERE Holder = 3"),
            Sig("SELECT Plan FROM Insurance WHERE Holder = 30"));
  // The hash is a deterministic digest of the signature string.
  auto spec = ParseAndBind(fix_.cat, "SELECT Plan FROM Insurance");
  ASSERT_OK(spec.status());
  EXPECT_EQ(QuerySignatureHash(*spec), QuerySignatureHash(*spec));
}

// Goldens for the double-literal encoding. Signature equality must track
// predicate equivalence under SqlEquals, which compares doubles with IEEE
// ==: -0.0 == 0.0, so the two spellings must share one signature (a plan
// cached under either key answers both), and every NaN compares unequal to
// everything in exactly the same way, so all NaN bit patterns share one
// canonical token rather than whatever "%.17g" prints for the sign bit.
TEST_F(SignatureTest, DoubleLiteralZeroAndNaNGoldens) {
  auto base = ParseAndBind(fix_.cat, "SELECT Plan FROM Insurance");
  ASSERT_OK(base.status());
  const auto with = [&](double d) {
    plan::QuerySpec m = *base;
    m.where.And(algebra::Comparison{m.select_list.front(),
                                    algebra::CompareOp::kGe,
                                    storage::Value(d)});
    return CanonicalQuerySignature(m);
  };
  // IEEE ==: -0.0 == 0.0, so the signatures collide on the positive spelling.
  EXPECT_EQ(with(0.0), with(-0.0));
  EXPECT_NE(with(0.0).find("d0"), std::string::npos) << with(0.0);
  EXPECT_EQ(with(-0.0).find("-0"), std::string::npos) << with(-0.0);
  // All NaN bit patterns get the one canonical token, sign bit included.
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(with(qnan), with(std::copysign(qnan, -1.0)));
  EXPECT_NE(with(qnan).find("dnan"), std::string::npos) << with(qnan);
  // NaN never collides with a number, and nonzero doubles keep full
  // round-trip precision: adjacent representable values stay distinct.
  EXPECT_NE(with(qnan), with(0.0));
  EXPECT_NE(with(1.0), with(std::nextafter(1.0, 2.0)));
}

// Randomized near-miss pairs: for fuzz-generated scenario queries, every
// single-field perturbation of the bound spec must change the signature,
// and the signature-preserving rewrites (shuffled WHERE conjuncts, shuffled
// ON atoms within a step) must not.
TEST(SignatureFuzzTest, NearMissPairsNeverCollide) {
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 60 && checked < 25; ++seed) {
    auto scenario = testcheck::GenerateScenario({}, seed);
    if (!scenario.ok()) continue;
    const plan::QuerySpec& q = scenario->query;
    const std::string base = CanonicalQuerySignature(q);
    ++checked;

    {  // DISTINCT toggled.
      plan::QuerySpec m = q;
      m.distinct = !m.distinct;
      EXPECT_NE(base, CanonicalQuerySignature(m)) << "seed " << seed;
    }
    if (q.select_list.size() >= 2) {  // Output order swapped.
      plan::QuerySpec m = q;
      std::swap(m.select_list.front(), m.select_list.back());
      if (m.select_list != q.select_list) {
        EXPECT_NE(base, CanonicalQuerySignature(m)) << "seed " << seed;
      }
    }
    if (q.select_list.size() >= 2) {  // A select attribute dropped.
      plan::QuerySpec m = q;
      m.select_list.pop_back();
      EXPECT_NE(base, CanonicalQuerySignature(m)) << "seed " << seed;
    }
    {  // A WHERE conjunct added (or a literal perturbed via a new bound).
      plan::QuerySpec m = q;
      m.where.And(algebra::Comparison{q.select_list.front(),
                                      algebra::CompareOp::kGe,
                                      storage::Value(std::int64_t{-12345})});
      EXPECT_NE(base, CanonicalQuerySignature(m)) << "seed " << seed;
    }
    if (!q.joins.empty() && q.joins.front().atoms.size() >= 2) {
      // ON atoms within one step commute: same signature.
      plan::QuerySpec m = q;
      std::swap(m.joins.front().atoms.front(), m.joins.front().atoms.back());
      EXPECT_EQ(base, CanonicalQuerySignature(m)) << "seed " << seed;
    }
  }
  EXPECT_GE(checked, 10u) << "generator produced too few usable scenarios";
}

// Distinct scenario queries across seeds should (near-universally) produce
// distinct signatures — a sanity net over the whole encoding, not a proof.
TEST(SignatureFuzzTest, CrossSeedSignaturesStayDistinctPerCatalog) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto scenario = testcheck::GenerateScenario({}, seed);
    if (!scenario.ok()) continue;
    // Within one scenario the query is fixed; signatures must at least be
    // deterministic.
    EXPECT_EQ(CanonicalQuerySignature(scenario->query),
              CanonicalQuerySignature(scenario->query));
  }
}

}  // namespace
}  // namespace cisqp::sql
