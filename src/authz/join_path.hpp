// JoinPath: the `R⋈` component of a relation profile (paper Defs. 2.1, 3.2).
//
// The paper models a join path as a set of equi-join conditions ⟨Jl, Jr⟩.
// We canonicalize it as a sorted set of *atoms*, each atom one attribute
// equality `A = B` stored with the smaller attribute id first. A conjunctive
// condition contributes one atom per attribute pair. This flattening is
// information-equivalent (the set of tuple-level equalities conveyed is
// identical) and makes the two operations the model needs — union for the
// Fig. 4 join rule and exact equality for the Def. 3.3 test — canonical.
// Both of the paper's spellings of a condition ((Holder, Patient) in
// authorization 2 and (Patient, Holder) in authorization 5 of Fig. 3)
// normalize to the same atom. See DESIGN.md §2.1.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "common/idset.hpp"

namespace cisqp::authz {

/// One attribute equality, normalized so `first < second`.
struct JoinAtom {
  catalog::AttributeId first = catalog::kInvalidId;
  catalog::AttributeId second = catalog::kInvalidId;

  /// Builds a normalized atom from an unordered attribute pair.
  static JoinAtom Make(catalog::AttributeId a, catalog::AttributeId b);

  friend bool operator==(const JoinAtom&, const JoinAtom&) = default;
  friend auto operator<=>(const JoinAtom&, const JoinAtom&) = default;
};

/// A canonical (sorted, deduplicated) set of join atoms with value semantics.
class JoinPath {
 public:
  JoinPath() = default;
  JoinPath(std::initializer_list<JoinAtom> atoms) : atoms_(atoms) { Normalize(); }

  static JoinPath FromAtoms(std::vector<JoinAtom> atoms) {
    JoinPath p;
    p.atoms_ = std::move(atoms);
    p.Normalize();
    return p;
  }

  bool empty() const noexcept { return atoms_.empty(); }
  std::size_t size() const noexcept { return atoms_.size(); }
  const std::vector<JoinAtom>& atoms() const noexcept { return atoms_; }

  bool Contains(const JoinAtom& atom) const noexcept;

  /// Inserts `atom`; returns true when newly inserted.
  bool Insert(const JoinAtom& atom);

  JoinPath& UnionWith(const JoinPath& other);
  static JoinPath Union(const JoinPath& a, const JoinPath& b);
  /// Three-way union — the `Rl⋈ ∪ Rr⋈ ∪ j` of the Fig. 4 join rule.
  static JoinPath Union(const JoinPath& a, const JoinPath& b, const JoinPath& c);

  bool IsSubsetOf(const JoinPath& other) const noexcept;

  /// Every attribute mentioned by any atom.
  IdSet Attributes() const;

  /// Every relation owning an attribute mentioned by any atom.
  IdSet Relations(const catalog::Catalog& cat) const;

  /// "{(A, B), (C, D)}" using bare attribute names; "∅" when empty.
  std::string ToString(const catalog::Catalog& cat) const;

  /// Exact set equality — the Def. 3.3 join-path test.
  friend bool operator==(const JoinPath&, const JoinPath&) = default;
  /// Lexicographic order so JoinPath can key ordered maps.
  friend auto operator<=>(const JoinPath&, const JoinPath&) = default;

 private:
  void Normalize();

  std::vector<JoinAtom> atoms_;
};

}  // namespace cisqp::authz
