// E2 — the authorized-view decision (Def. 3.3): regenerates the Fig. 3
// decision table (which server may see which canonical view) and measures
// CanView throughput as the policy grows.
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "workload/generator.hpp"

namespace cisqp::bench {
namespace {

void PrintDecisionTable() {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);

  PrintHeader("E2 / paper Fig. 3 + Def. 3.3",
              "per-server decisions for canonical views, including the §3.2 "
              "denial of the Disease_list ⋈ Hospital view to S_D");

  const auto attr = [&](std::string_view n) { return cat.FindAttribute(n).value(); };
  struct Case {
    std::string label;
    authz::Profile profile;
  };
  std::vector<Case> cases;
  for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
    cases.push_back({"base " + cat.relation(r).name,
                     authz::Profile::OfBaseRelation(cat, r)});
  }
  // §3.2 example view.
  authz::Profile sec32;
  sec32.pi.Insert(attr("Illness"));
  sec32.pi.Insert(attr("Treatment"));
  sec32.join.Insert(authz::JoinAtom::Make(attr("Illness"), attr("Disease")));
  cases.push_back({"sec3.2 Illness,Treatment | Illness=Disease", sec32});
  // Authorization-3 shaped view.
  authz::Profile auth3;
  auth3.pi = IdSet{attr("Holder"), attr("Plan"), attr("Treatment")};
  auth3.join.Insert(authz::JoinAtom::Make(attr("Holder"), attr("Patient")));
  auth3.join.Insert(authz::JoinAtom::Make(attr("Disease"), attr("Illness")));
  cases.push_back({"auth3 Holder,Plan,Treatment | 2-atom path", auth3});

  Artifact artifact("canview", "E2 / paper Fig. 3 + Def. 3.3",
                    "per-server decisions for canonical views");
  std::printf("%-46s", "view");
  for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
    std::printf("%6s", cat.server(s).name.c_str());
  }
  std::printf("\n");
  for (const Case& c : cases) {
    std::printf("%-46s", c.label.c_str());
    for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
      const bool allowed = auths.CanView(c.profile, s);
      std::printf("%6s", allowed ? "yes" : "-");
      artifact.Row()
          .Value("view", c.label)
          .Value("server", cat.server(s).name)
          .Value("allowed", allowed);
    }
    std::printf("\n");
  }
  std::printf("\n");
  artifact.Write();
}

void BM_CanViewMedical(benchmark::State& state) {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  const authz::Profile probe = authz::Profile::OfBaseRelation(
      cat, cat.FindRelation("Insurance").value());
  catalog::ServerId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auths.CanView(probe, s));
    s = static_cast<catalog::ServerId>((s + 1) % cat.server_count());
  }
}
BENCHMARK(BM_CanViewMedical);

/// CanView latency as the per-server policy grows (path-indexed lookup).
void BM_CanViewScaling(benchmark::State& state) {
  const std::size_t rules = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  workload::FederationConfig config;
  config.servers = 4;
  config.relations = 12;
  const workload::Federation fed = workload::GenerateFederation(config, rng);
  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = 1.0;
  authz_config.path_grants_per_server = rules;
  authz_config.max_path_atoms = 4;
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
  const authz::Profile probe =
      authz::Profile::OfBaseRelation(fed.catalog, 0);
  catalog::ServerId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auths.CanView(probe, s));
    s = static_cast<catalog::ServerId>((s + 1) % fed.catalog.server_count());
  }
  state.counters["rules_total"] = static_cast<double>(auths.size());
}
BENCHMARK(BM_CanViewScaling)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintDecisionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
