// E20 — policy churn: incremental delta-chase under grant/revoke with
// selective cache retention.
//
// Two phases over the medical federation:
//
//   edit cost   an alternating grant/revoke script runs through
//               FrontDoor::AddRule/RevokeRule (semi-naïve delta chase,
//               DESIGN.md §16) while a mirror of the same edits pays a full
//               ChaseClosure recompute per edit — the cost a SetPolicy-based
//               door would pay. The per-edit incremental cost must be
//               strictly cheaper in aggregate.
//   retention   a door with a warm plan cache takes one edit whose
//               ClosureDelta is disjoint from every cached query (a
//               Disease_list-only grant vs Insurance/Hospital/Nat_registry
//               shapes): the post-edit first-pass hit rate must stay within
//               5 points of the no-edit warm rate, with every answer
//               byte-identical to the cold reference. An overlapping edit is
//               measured alongside to show the eviction it correctly forces.
//
// Claims gated by scripts/check_bench_regression.sh: aggregate incremental
// edit cost below the full-recompute cost (speedup >= half the committed
// baseline), and disjoint-edit hit-rate within 5 points of no-edit.
// Byte-identity is unconditional: the binary aborts on any divergence.
#include "bench_util.hpp"

#include <chrono>
#include <string>
#include <vector>

#include "authz/chase.hpp"
#include "authz/incremental.hpp"
#include "exec/cluster.hpp"
#include "serve/front_door.hpp"

namespace cisqp::bench {
namespace {

using workload::MedicalScenario;

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct World {
  catalog::Catalog cat = MedicalScenario::BuildCatalog();
  authz::AuthorizationSet auths = MedicalScenario::BuildAuthorizations(cat);
  exec::Cluster cluster{cat};
  plan::StatsCatalog stats;

  World() {
    Rng rng(2026);
    UnwrapStatus(MedicalScenario::PopulateCluster(
                     cluster, MedicalScenario::DataConfig{64, 0.4, 0.6, 10},
                     rng),
                 "populate cluster");
    stats = MedicalScenario::ComputeStats(cluster);
  }

  serve::FrontDoor MakeDoor() const {
    serve::ServeOptions options;
    options.allow_third_party = true;
    return serve::FrontDoor(cat, auths, cluster, &stats, options);
  }
};

/// The warmed shapes (same family as E19): all touch only Insurance,
/// Hospital, and Nat_registry — never Disease_list.
std::vector<std::string> CachedShapes() {
  const std::string wide{MedicalScenario::kPaperQuery};
  return {wide + " WHERE Holder >= 56",
          wide + " WHERE Holder >= 48 AND Plan <> 'gold'",
          "SELECT Citizen, HealthAid, Patient, Disease FROM Nat_registry "
          "JOIN Hospital ON Citizen = Patient WHERE Citizen >= 56",
          "SELECT Holder, Plan FROM Insurance WHERE Holder >= 56"};
}

authz::Authorization Rule(const catalog::Catalog& cat, std::string_view server,
                          std::vector<std::string_view> attrs) {
  authz::Authorization rule;
  rule.server = Unwrap(cat.FindServer(server), "rule server");
  for (const std::string_view name : attrs) {
    rule.attributes.Insert(Unwrap(cat.FindAttribute(name), "rule attribute"));
  }
  return rule;
}

/// Grant candidates over Disease_list only: their ClosureDelta relations are
/// {Disease_list}, disjoint from every cached shape. Rules already in the
/// base policy are filtered out (AddRule would type them kAlreadyExists).
std::vector<authz::Authorization> DiseaseListRules(const World& world) {
  std::vector<authz::Authorization> rules;
  for (const std::string_view server : {"S_I", "S_H", "S_N"}) {
    for (const std::vector<std::string_view>& attrs :
         std::vector<std::vector<std::string_view>>{
             {"Illness"}, {"Treatment"}, {"Illness", "Treatment"}}) {
      authz::Authorization rule = Rule(world.cat, server, attrs);
      if (!world.auths.Contains(rule)) rules.push_back(rule);
    }
  }
  return rules;
}

bool TablesByteIdentical(const storage::Table& a, const storage::Table& b) {
  if (a.columns() != b.columns() || a.row_count() != b.row_count()) {
    return false;
  }
  for (std::size_t r = 0; r < a.row_count(); ++r) {
    const storage::Row& ra = a.rows()[r];
    const storage::Row& rb = b.rows()[r];
    for (std::size_t c = 0; c < ra.size(); ++c) {
      if (ra[c].CompareTotal(rb[c]) != 0) return false;
    }
  }
  return true;
}

storage::Table ServeOne(serve::FrontDoor& door, const std::string& sql) {
  serve::Request request;
  request.sql = sql;
  return Unwrap(door.Serve(request), "serve").table;
}

/// Warms `door` with every cached shape (one cold serve each).
void Warm(serve::FrontDoor& door, const std::vector<std::string>& shapes) {
  for (const std::string& sql : shapes) (void)ServeOne(door, sql);
}

struct RetentionResult {
  std::size_t requests = 0;
  std::uint64_t hits = 0;
  double hit_rate = 0.0;
  bool identical = true;
};

/// Serves `rounds` passes over the shapes and reports the plan-cache hit
/// rate plus byte-identity against `references`.
RetentionResult ServeRounds(serve::FrontDoor& door,
                            const std::vector<std::string>& shapes,
                            const std::vector<storage::Table>& references,
                            std::size_t rounds) {
  RetentionResult out;
  const std::uint64_t hits_before = door.Stats().plan_cache_hits;
  for (std::size_t i = 0; i < rounds * shapes.size(); ++i) {
    const storage::Table got = ServeOne(door, shapes[i % shapes.size()]);
    if (!TablesByteIdentical(got, references[i % shapes.size()])) {
      out.identical = false;
    }
  }
  out.requests = rounds * shapes.size();
  out.hits = door.Stats().plan_cache_hits - hits_before;
  out.hit_rate = out.requests > 0 ? static_cast<double>(out.hits) /
                                        static_cast<double>(out.requests)
                                  : 0.0;
  return out;
}

void PrintPolicyChurn() {
  PrintHeader("E20: policy churn - incremental delta-chase with selective "
              "cache retention",
              "per-edit incremental update cheaper than a full rechase; a "
              "disjoint edit keeps the warm hit rate within 5 points");
  const World world;
  const std::vector<std::string> shapes = CachedShapes();
  const std::vector<authz::Authorization> rules = DiseaseListRules(world);
  if (rules.empty()) {
    std::fprintf(stderr, "FATAL: no usable Disease_list grant candidates\n");
    std::abort();
  }

  Artifact artifact("policy_churn",
                    "E20: policy churn - incremental delta-chase with "
                    "selective cache retention",
                    "per-edit incremental update cheaper than a full "
                    "rechase; a disjoint edit keeps the warm hit rate "
                    "within 5 points");

  // --- Phase 1: per-edit cost, incremental vs full recompute --------------
  // Every grant is later revoked, so the script ends where it started and
  // both arms chase the same sequence of rule sets.
  serve::FrontDoor door = world.MakeDoor();
  Warm(door, shapes);  // realistic: edits land on a door with live caches
  authz::AuthorizationSet mirror = world.auths;
  const authz::ChaseOptions chase_options;  // the door's own defaults
  std::int64_t inc_total_us = 0;
  std::int64_t full_total_us = 0;
  std::size_t edits = 0;
  const std::size_t kPairs = 24;
  for (std::size_t i = 0; i < kPairs; ++i) {
    const authz::Authorization& rule = rules[i % rules.size()];
    for (const bool grant : {true, false}) {
      std::int64_t t0 = NowUs();
      const auto delta = grant ? door.AddRule(rule) : door.RevokeRule(rule);
      inc_total_us += NowUs() - t0;
      UnwrapStatus(delta.status(), "incremental edit");

      UnwrapStatus(grant ? mirror.Add(world.cat, rule)
                         : mirror.Remove(world.cat, rule),
                   "mirror edit");
      t0 = NowUs();
      authz::AuthorizationSet full =
          Unwrap(authz::ChaseClosure(world.cat, mirror, chase_options),
                 "full rechase");
      full.Canonicalize();
      full_total_us += NowUs() - t0;
      ++edits;
    }
  }
  const double inc_mean_us =
      static_cast<double>(inc_total_us) / static_cast<double>(edits);
  const double full_mean_us =
      static_cast<double>(full_total_us) / static_cast<double>(edits);
  const double edit_speedup =
      inc_total_us > 0 ? static_cast<double>(full_total_us) /
                             static_cast<double>(inc_total_us)
                       : 0.0;
  std::printf("%-18s %8s %14s %14s %10s\n", "phase", "edits", "inc_mean_us",
              "full_mean_us", "speedup");
  std::printf("%-18s %8zu %14.1f %14.1f %9.2fx\n", "edit_cost", edits,
              inc_mean_us, full_mean_us, edit_speedup);
  artifact.Row()
      .Value("phase", "edit_cost")
      .Value("edits", edits)
      .Value("inc_total_us", inc_total_us)
      .Value("full_total_us", full_total_us)
      .Value("inc_mean_us", inc_mean_us)
      .Value("full_mean_us", full_mean_us)
      .Value("speedup", edit_speedup);

  // --- Phase 2: warm-hit-rate retention across one edit -------------------
  std::vector<storage::Table> references;
  {
    serve::FrontDoor ref_door = world.MakeDoor();
    for (const std::string& sql : shapes) {
      references.push_back(ServeOne(ref_door, sql));
    }
  }
  const std::size_t kRounds = 15;
  bool all_identical = true;

  // Control: no edit at all.
  serve::FrontDoor no_edit_door = world.MakeDoor();
  Warm(no_edit_door, shapes);
  const RetentionResult no_edit =
      ServeRounds(no_edit_door, shapes, references, kRounds);
  all_identical = all_identical && no_edit.identical;

  // One Disease_list grant: disjoint from every cached shape, so the first
  // post-edit pass must already hit on re-stamped entries.
  serve::FrontDoor disjoint_door = world.MakeDoor();
  Warm(disjoint_door, shapes);
  const authz::ClosureDelta disjoint_delta =
      Unwrap(disjoint_door.AddRule(rules.front()), "disjoint grant");
  const RetentionResult disjoint =
      ServeRounds(disjoint_door, shapes, references, kRounds);
  all_identical = all_identical && disjoint.identical;
  const std::uint64_t retained = disjoint_door.Stats().plan_cache_retained;

  // Contrast: an Insurance grant overlaps the cached shapes, so the first
  // post-edit pass correctly pays one cold planning per shape.
  serve::FrontDoor overlap_door = world.MakeDoor();
  Warm(overlap_door, shapes);
  UnwrapStatus(
      overlap_door.AddRule(Rule(world.cat, "S_N", {"Holder"})).status(),
      "overlap grant");
  const RetentionResult overlap =
      ServeRounds(overlap_door, shapes, references, kRounds);
  all_identical = all_identical && overlap.identical;

  std::printf("%-18s %9s %6s %9s %10s\n", "mode", "requests", "hits",
              "hit_rate", "identical");
  for (const auto& [mode, r] :
       {std::pair<const char*, const RetentionResult&>{"no_edit", no_edit},
        {"disjoint_edit", disjoint},
        {"overlap_edit", overlap}}) {
    std::printf("%-18s %9zu %6llu %8.1f%% %10s\n", mode, r.requests,
                static_cast<unsigned long long>(r.hits), 100.0 * r.hit_rate,
                r.identical ? "yes" : "NO");
    artifact.Row()
        .Value("phase", "retention")
        .Value("mode", mode)
        .Value("requests", r.requests)
        .Value("hits", static_cast<std::size_t>(r.hits))
        .Value("hit_rate", r.hit_rate)
        .Value("identical", r.identical);
  }
  std::printf("disjoint grant retained %llu plan(s); delta touched %zu "
              "relation(s), full=%s\n",
              static_cast<unsigned long long>(retained),
              disjoint_delta.relations.size(),
              disjoint_delta.full ? "yes" : "no");

  const double rate_delta_pts =
      100.0 * (no_edit.hit_rate - disjoint.hit_rate);
  artifact.Row()
      .Value("mode", "summary")
      .Value("edit_speedup", edit_speedup)
      .Value("inc_mean_us", inc_mean_us)
      .Value("full_mean_us", full_mean_us)
      .Value("no_edit_hit_rate", no_edit.hit_rate)
      .Value("disjoint_hit_rate", disjoint.hit_rate)
      .Value("hit_rate_delta_pts", rate_delta_pts)
      .Value("retained", static_cast<std::size_t>(retained))
      .Value("identical", all_identical);
  artifact.Write();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: a post-edit answer differed from its reference\n");
    std::abort();
  }
}

void BM_IncrementalGrantRevokePair(benchmark::State& state) {
  const World world;
  serve::FrontDoor door = world.MakeDoor();
  Warm(door, CachedShapes());
  const authz::Authorization rule =
      Rule(world.cat, "S_N", {"Illness", "Treatment"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(door.AddRule(rule));
    benchmark::DoNotOptimize(door.RevokeRule(rule));
  }
}
BENCHMARK(BM_IncrementalGrantRevokePair)->Unit(benchmark::kMicrosecond);

void BM_FullRechase(benchmark::State& state) {
  const World world;
  authz::AuthorizationSet base = world.auths;
  UnwrapStatus(base.Add(world.cat,
                        Rule(world.cat, "S_N", {"Illness", "Treatment"})),
               "grant");
  for (auto _ : state) {
    auto closed = authz::ChaseClosure(world.cat, base);
    benchmark::DoNotOptimize(closed);
  }
}
BENCHMARK(BM_FullRechase)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintPolicyChurn();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
