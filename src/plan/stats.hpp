// Cardinality statistics for the join-order optimizer (two-step optimization,
// paper §5 end: "First, the query optimizer identifies a good plan; second,
// it assigns operations to the servers"). Step one needs estimates; this is
// the textbook System-R style model: per-relation row counts and per-column
// distinct counts, uniformity and independence assumed.
//
// The StatsFeedback store below closes the estimate→execute loop (DESIGN.md
// §13): a profiled execution harvests each operator's *actual* cardinality
// keyed by its (relation set, predicate signature), and the next planning of
// the same shape — PlanBuilder estimates, DP subset enumeration — prefers
// the measured value over the model. The two signature functions are built
// to coincide: the pushdown invariants (every WHERE conjunct sits at the
// lowest subtree producing its attributes, every join atom inside a subtree
// connects relations of that subtree) make the signature computed from an
// executed plan subtree equal the one computed from the corresponding
// relation subset of the spec.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.hpp"
#include "storage/table.hpp"

namespace cisqp::obs {
class QueryProfile;
}  // namespace cisqp::obs

namespace cisqp::plan {

struct PlanNode;
class QueryPlan;
struct QuerySpec;

/// Statistics of one relation instance.
struct RelationStats {
  double rows = 1000.0;
  std::map<catalog::AttributeId, double> distinct;

  /// Distinct count of `attr`, defaulting to `rows` (key-like) when unknown.
  double DistinctOf(catalog::AttributeId attr) const {
    const auto it = distinct.find(attr);
    return it == distinct.end() ? rows : it->second;
  }
};

/// Per-relation statistics for one federation.
class StatsCatalog {
 public:
  StatsCatalog() = default;

  void Set(catalog::RelationId rel, RelationStats stats) {
    stats_[rel] = std::move(stats);
  }

  /// Stats of `rel`; a default RelationStats when never set.
  const RelationStats& Of(catalog::RelationId rel) const {
    static const RelationStats kDefault;
    const auto it = stats_.find(rel);
    return it == stats_.end() ? kDefault : it->second;
  }

  bool Has(catalog::RelationId rel) const { return stats_.contains(rel); }

  /// Exact statistics scanned from a materialized table.
  static RelationStats FromTable(const storage::Table& table);

 private:
  std::map<catalog::RelationId, RelationStats> stats_;
};

/// Measured cardinalities from past executions, keyed by the canonical
/// (relation set, predicate signature) of the producing subtree. Owned by
/// the caller (a shell session, a bench); not a process-wide singleton.
class StatsFeedback {
 public:
  /// Records that the shape `signature` produced `rows` rows (latest wins).
  void Record(std::string signature, double rows);

  /// Measured cardinality of `signature`, if any execution recorded it.
  std::optional<double> Lookup(std::string_view signature) const;

  std::size_t size() const noexcept { return actual_rows_.size(); }
  bool empty() const noexcept { return actual_rows_.empty(); }

  const std::map<std::string, double, std::less<>>& entries() const noexcept {
    return actual_rows_;
  }

 private:
  std::map<std::string, double, std::less<>> actual_rows_;
};

/// Canonical signature of the plan subtree rooted at `node`: sorted relation
/// names, sorted selection-conjunct tokens, sorted (normalized) join-atom
/// tokens. π nodes are transparent — they share their child's signature.
std::string SubtreeSignature(const catalog::Catalog& cat, const PlanNode& node);

/// The signature the subtree over exactly `subset` would have under this
/// spec: the subset's relations, every WHERE conjunct whose attributes all
/// live in the subset, every join atom connecting two subset relations.
/// Equals SubtreeSignature of the corresponding executed subtree (pushdown
/// invariants above).
std::string SpecSubsetSignature(const catalog::Catalog& cat,
                                const QuerySpec& spec,
                                const std::vector<catalog::RelationId>& subset);

/// Harvests every profiled operator's actual cardinality from `profile` into
/// `feedback`. π nodes are skipped (plain π preserves counts and shares its
/// child's signature; DISTINCT π would distort it); when two nodes share a
/// signature the topmost (pre-order first) wins. Returns the number of
/// signatures recorded.
std::size_t HarvestActualCardinalities(const catalog::Catalog& cat,
                                       const QueryPlan& plan,
                                       const obs::QueryProfile& profile,
                                       StatsFeedback& feedback);

}  // namespace cisqp::plan
