#include "testcheck/row_kernels.hpp"

#include <unordered_map>
#include <unordered_set>

namespace cisqp::testcheck {
namespace {

/// Hashable key for a tuple of join-column cells.
struct KeyHash {
  std::size_t operator()(const storage::Row& key) const noexcept {
    return storage::HashRow(key);
  }
};

struct KeyEq {
  bool operator()(const storage::Row& a, const storage::Row& b) const noexcept {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Join keys never match on NULL (SQL semantics); NULL keys are filtered
      // out before insertion, so plain equality suffices here.
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

bool HasNull(const storage::Row& key) noexcept {
  for (const storage::Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

storage::Row ExtractKey(const storage::Row& row,
                        const std::vector<std::size_t>& idx) {
  storage::Row key;
  key.reserve(idx.size());
  for (std::size_t i : idx) key.push_back(row[i]);
  return key;
}

}  // namespace

Result<storage::Table> RowProject(const storage::Table& input,
                                  const std::vector<catalog::AttributeId>& attrs,
                                  bool distinct) {
  if (attrs.empty()) return InvalidArgumentError("projection needs at least one attribute");
  std::vector<std::size_t> idx;
  std::vector<storage::Column> cols;
  idx.reserve(attrs.size());
  cols.reserve(attrs.size());
  for (catalog::AttributeId a : attrs) {
    const auto i = input.ColumnIndex(a);
    if (!i) {
      return InvalidArgumentError("projection attribute id " + std::to_string(a) +
                                  " is not a column of the input");
    }
    idx.push_back(*i);
    cols.push_back(input.columns()[*i]);
  }
  storage::Table out(std::move(cols));
  out.Reserve(input.row_count());
  for (const storage::Row& row : input.rows()) {
    out.AppendRowUnchecked(ExtractKey(row, idx));
  }
  if (distinct) return RowDistinct(out);
  return out;
}

Result<storage::Table> RowSelect(const storage::Table& input,
                                 const algebra::Predicate& predicate) {
  storage::Table out(input.columns());
  out.Reserve(input.row_count());
  for (const storage::Row& row : input.rows()) {
    CISQP_ASSIGN_OR_RETURN(bool keep, predicate.Evaluate(input, row));
    if (keep) out.AppendRowUnchecked(row);
  }
  return out;
}

Result<storage::Table> RowHashJoin(const storage::Table& left,
                                   const storage::Table& right,
                                   const std::vector<algebra::EquiJoinAtom>& atoms) {
  if (atoms.empty()) return InvalidArgumentError("equi-join needs at least one atom");
  std::vector<std::size_t> lidx;
  std::vector<std::size_t> ridx;
  for (const algebra::EquiJoinAtom& atom : atoms) {
    const auto li = left.ColumnIndex(atom.left);
    const auto ri = right.ColumnIndex(atom.right);
    if (!li || !ri) {
      return InvalidArgumentError("join atom references attributes missing from operands");
    }
    lidx.push_back(*li);
    ridx.push_back(*ri);
  }

  // Build on the smaller side, probe with the larger.
  const bool build_left = left.row_count() <= right.row_count();
  const storage::Table& build = build_left ? left : right;
  const storage::Table& probe = build_left ? right : left;
  const std::vector<std::size_t>& bidx = build_left ? lidx : ridx;
  const std::vector<std::size_t>& pidx = build_left ? ridx : lidx;

  std::unordered_map<storage::Row, std::vector<std::size_t>, KeyHash, KeyEq> ht;
  ht.reserve(build.row_count());
  for (std::size_t r = 0; r < build.row_count(); ++r) {
    storage::Row key = ExtractKey(build.row(r), bidx);
    if (HasNull(key)) continue;
    ht[std::move(key)].push_back(r);
  }

  std::vector<storage::Column> cols = left.columns();
  cols.insert(cols.end(), right.columns().begin(), right.columns().end());
  storage::Table out(std::move(cols));

  for (std::size_t pr = 0; pr < probe.row_count(); ++pr) {
    storage::Row key = ExtractKey(probe.row(pr), pidx);
    if (HasNull(key)) continue;
    const auto it = ht.find(key);
    if (it == ht.end()) continue;
    for (std::size_t br : it->second) {
      const storage::Row& lrow = build_left ? build.row(br) : probe.row(pr);
      const storage::Row& rrow = build_left ? probe.row(pr) : build.row(br);
      storage::Row joined;
      joined.reserve(lrow.size() + rrow.size());
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.AppendRowUnchecked(std::move(joined));
    }
  }
  return out;
}

Result<storage::Table> RowNaturalJoinOnShared(const storage::Table& left,
                                              const storage::Table& right) {
  std::vector<std::size_t> lidx;
  std::vector<std::size_t> ridx;
  std::vector<bool> right_is_shared(right.column_count(), false);
  for (std::size_t rc = 0; rc < right.column_count(); ++rc) {
    const auto li = left.ColumnIndex(right.columns()[rc].attribute);
    if (li) {
      lidx.push_back(*li);
      ridx.push_back(rc);
      right_is_shared[rc] = true;
    }
  }
  if (lidx.empty()) {
    return InvalidArgumentError("natural join requires at least one shared attribute");
  }

  std::unordered_map<storage::Row, std::vector<std::size_t>, KeyHash, KeyEq> ht;
  ht.reserve(right.row_count());
  for (std::size_t r = 0; r < right.row_count(); ++r) {
    storage::Row key = ExtractKey(right.row(r), ridx);
    if (HasNull(key)) continue;
    ht[std::move(key)].push_back(r);
  }

  std::vector<storage::Column> cols = left.columns();
  for (std::size_t rc = 0; rc < right.column_count(); ++rc) {
    if (!right_is_shared[rc]) cols.push_back(right.columns()[rc]);
  }
  storage::Table out(std::move(cols));

  for (std::size_t lr = 0; lr < left.row_count(); ++lr) {
    storage::Row key = ExtractKey(left.row(lr), lidx);
    if (HasNull(key)) continue;
    const auto it = ht.find(key);
    if (it == ht.end()) continue;
    for (std::size_t rr : it->second) {
      storage::Row joined = left.row(lr);
      const storage::Row& rrow = right.row(rr);
      for (std::size_t rc = 0; rc < rrow.size(); ++rc) {
        if (!right_is_shared[rc]) joined.push_back(rrow[rc]);
      }
      out.AppendRowUnchecked(std::move(joined));
    }
  }
  return out;
}

storage::Table RowDistinct(const storage::Table& input) {
  // Hash row *indices* into the input instead of storing a second copy of
  // every kept row (the historical kernel copied each row twice: once into
  // the seen-set, once into the output).
  struct IndexHash {
    const storage::Table* table;
    std::size_t operator()(std::size_t i) const noexcept {
      return storage::HashRow(table->row(i));
    }
  };
  struct IndexEq {
    const storage::Table* table;
    bool operator()(std::size_t a, std::size_t b) const noexcept {
      return KeyEq{}(table->row(a), table->row(b));
    }
  };
  std::unordered_set<std::size_t, IndexHash, IndexEq> seen(
      /*bucket_count=*/input.row_count() + 1, IndexHash{&input},
      IndexEq{&input});
  storage::Table out(input.columns());
  for (std::size_t r = 0; r < input.row_count(); ++r) {
    if (seen.insert(r).second) out.AppendRowUnchecked(input.row(r));
  }
  return out;
}

namespace {

Result<storage::Table> ReferenceRec(const exec::Cluster& cluster,
                                    const plan::PlanNode& node) {
  switch (node.op) {
    case plan::PlanOp::kRelation:
      return cluster.TableOf(node.relation);
    case plan::PlanOp::kProject: {
      CISQP_ASSIGN_OR_RETURN(storage::Table child,
                             ReferenceRec(cluster, *node.left));
      return RowProject(child, node.projection, node.distinct);
    }
    case plan::PlanOp::kSelect: {
      CISQP_ASSIGN_OR_RETURN(storage::Table child,
                             ReferenceRec(cluster, *node.left));
      return RowSelect(child, node.predicate);
    }
    case plan::PlanOp::kJoin: {
      CISQP_ASSIGN_OR_RETURN(storage::Table left,
                             ReferenceRec(cluster, *node.left));
      CISQP_ASSIGN_OR_RETURN(storage::Table right,
                             ReferenceRec(cluster, *node.right));
      return RowHashJoin(left, right, node.join_atoms);
    }
  }
  return InternalError("unknown plan operator");
}

}  // namespace

Result<storage::Table> ReferenceEvaluate(const exec::Cluster& cluster,
                                         const plan::QueryPlan& plan) {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cluster.catalog()));
  return ReferenceRec(cluster, *plan.root());
}

}  // namespace cisqp::testcheck
