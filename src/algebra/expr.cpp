#include "algebra/expr.hpp"

#include <sstream>

namespace cisqp::algebra {

std::string_view CompareOpSymbol(CompareOp op) noexcept {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

IdSet Predicate::ReferencedAttributes() const {
  IdSet out;
  for (const Comparison& c : conjuncts_) {
    out.Insert(c.lhs);
    if (c.rhs_is_attribute()) out.Insert(std::get<catalog::AttributeId>(c.rhs));
  }
  return out;
}

bool EvaluateComparison(const storage::Value& lhs, CompareOp op,
                        const storage::Value& rhs) noexcept {
  if (lhs.is_null() || rhs.is_null()) return false;
  switch (op) {
    case CompareOp::kEq: return lhs.SqlEquals(rhs);
    case CompareOp::kNe: return !lhs.SqlEquals(rhs);
    case CompareOp::kLt: return lhs.SqlLess(rhs);
    case CompareOp::kLe: return lhs.SqlLess(rhs) || lhs.SqlEquals(rhs);
    case CompareOp::kGt: return rhs.SqlLess(lhs);
    case CompareOp::kGe: return rhs.SqlLess(lhs) || lhs.SqlEquals(rhs);
  }
  return false;
}

Result<bool> Predicate::Evaluate(const storage::Table& table,
                                 const storage::Row& row) const {
  for (const Comparison& c : conjuncts_) {
    const auto lhs_idx = table.ColumnIndex(c.lhs);
    if (!lhs_idx) {
      return InvalidArgumentError("predicate references attribute id " +
                                  std::to_string(c.lhs) + " missing from input");
    }
    const storage::Value& lhs = row[*lhs_idx];
    const storage::Value* rhs = nullptr;
    if (c.rhs_is_attribute()) {
      const auto rhs_idx = table.ColumnIndex(std::get<catalog::AttributeId>(c.rhs));
      if (!rhs_idx) {
        return InvalidArgumentError("predicate references attribute id " +
                                    std::to_string(std::get<catalog::AttributeId>(c.rhs)) +
                                    " missing from input");
      }
      rhs = &row[*rhs_idx];
    } else {
      rhs = &std::get<storage::Value>(c.rhs);
    }
    if (!EvaluateComparison(lhs, c.op, *rhs)) return false;
  }
  return true;
}

std::string Predicate::ToString(const catalog::Catalog& cat) const {
  if (conjuncts_.empty()) return "TRUE";
  std::ostringstream oss;
  for (std::size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i != 0) oss << " AND ";
    const Comparison& c = conjuncts_[i];
    oss << cat.attribute(c.lhs).name << " " << CompareOpSymbol(c.op) << " ";
    if (c.rhs_is_attribute()) {
      oss << cat.attribute(std::get<catalog::AttributeId>(c.rhs)).name;
    } else {
      oss << std::get<storage::Value>(c.rhs).ToString();
    }
  }
  return oss.str();
}

}  // namespace cisqp::algebra
