#include "planner/plan_search.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::planner {
namespace {

/// Undirected equi-join atom between two relations.
struct Edge {
  catalog::AttributeId a = catalog::kInvalidId;
  catalog::AttributeId b = catalog::kInvalidId;
  catalog::RelationId rel_a = catalog::kInvalidId;
  catalog::RelationId rel_b = catalog::kInvalidId;
};

std::vector<Edge> CollectEdges(const catalog::Catalog& cat,
                               const plan::QuerySpec& spec) {
  std::vector<Edge> edges;
  for (const plan::JoinStep& step : spec.joins) {
    for (const algebra::EquiJoinAtom& atom : step.atoms) {
      edges.push_back(Edge{atom.left, atom.right,
                           cat.attribute(atom.left).relation,
                           cat.attribute(atom.right).relation});
    }
  }
  return edges;
}

/// DFS over connected prefixes, emitting every complete order until the cap.
class OrderEnumerator {
 public:
  OrderEnumerator(const std::vector<catalog::RelationId>& relations,
                  const std::vector<Edge>& edges, std::size_t max_orders)
      : relations_(relations), edges_(edges), max_orders_(max_orders) {}

  std::vector<std::vector<catalog::RelationId>> Run() {
    for (catalog::RelationId start : relations_) {
      prefix_ = {start};
      placed_ = IdSet{start};
      Extend();
      if (orders_.size() >= max_orders_) break;
    }
    return std::move(orders_);
  }

 private:
  void Extend() {
    if (orders_.size() >= max_orders_) return;
    if (prefix_.size() == relations_.size()) {
      orders_.push_back(prefix_);
      return;
    }
    for (catalog::RelationId cand : relations_) {
      if (placed_.Contains(cand)) continue;
      const bool connected = std::any_of(
          edges_.begin(), edges_.end(), [&](const Edge& e) {
            return (e.rel_a == cand && placed_.Contains(e.rel_b)) ||
                   (e.rel_b == cand && placed_.Contains(e.rel_a));
          });
      if (!connected) continue;
      prefix_.push_back(cand);
      placed_.Insert(cand);
      Extend();
      placed_.Erase(cand);
      prefix_.pop_back();
      if (orders_.size() >= max_orders_) return;
    }
  }

  const std::vector<catalog::RelationId>& relations_;
  const std::vector<Edge>& edges_;
  const std::size_t max_orders_;
  std::vector<catalog::RelationId> prefix_;
  IdSet placed_;
  std::vector<std::vector<catalog::RelationId>> orders_;
};

/// Rebuilds `spec` with the relations in `order`, re-orienting every atom so
/// the new relation's attribute sits on the right.
plan::QuerySpec ReorderSpec(const catalog::Catalog& cat,
                            const plan::QuerySpec& spec,
                            const std::vector<catalog::RelationId>& order,
                            const std::vector<Edge>& edges) {
  plan::QuerySpec out;
  out.select_list = spec.select_list;
  out.where = spec.where;
  out.first_relation = order.front();
  IdSet placed{order.front()};
  for (std::size_t i = 1; i < order.size(); ++i) {
    const catalog::RelationId next = order[i];
    plan::JoinStep step;
    step.relation = next;
    for (const Edge& e : edges) {
      if (e.rel_b == next && placed.Contains(e.rel_a)) {
        step.atoms.push_back(algebra::EquiJoinAtom{e.a, e.b});
      } else if (e.rel_a == next && placed.Contains(e.rel_b)) {
        step.atoms.push_back(algebra::EquiJoinAtom{e.b, e.a});
      }
    }
    out.joins.push_back(std::move(step));
    placed.Insert(next);
  }
  (void)cat;
  return out;
}

}  // namespace

Result<std::vector<plan::QuerySpec>> FeasiblePlanSearch::EnumerateOrders(
    const plan::QuerySpec& spec, std::size_t max_orders) const {
  CISQP_RETURN_IF_ERROR(spec.Validate(cat_));
  const std::vector<catalog::RelationId> relations = spec.Relations();
  const std::vector<Edge> edges = CollectEdges(cat_, spec);
  OrderEnumerator enumerator(relations, edges, max_orders);
  std::vector<plan::QuerySpec> out;
  for (const std::vector<catalog::RelationId>& order : enumerator.Run()) {
    out.push_back(ReorderSpec(cat_, spec, order, edges));
  }
  if (out.empty()) {
    return InvalidArgumentError("query join graph admits no connected order");
  }
  return out;
}

Result<PlanSearchResult> FeasiblePlanSearch::Search(
    const plan::QuerySpec& spec, const PlanSearchOptions& options) const {
  CISQP_TRACE_SPAN(span, "planner.plan_search");
  CISQP_ASSIGN_OR_RETURN(std::vector<plan::QuerySpec> orders,
                         EnumerateOrders(spec, options.max_orders));
  span.AddAttribute("orders_enumerated", orders.size());

  plan::PlanBuilder builder(cat_, stats_);
  plan::BuildOptions build_options = options.build_options;
  build_options.join_order = plan::JoinOrderPolicy::kFromClause;
  SafePlanner planner(cat_, policy_, options.planner_options);
  MinCostSafePlanner cost_scorer(cat_, policy_, stats_);

  std::optional<PlanSearchResult> best;
  std::size_t tried = 0;
  std::size_t feasible = 0;
  for (plan::QuerySpec& order : orders) {
    ++tried;
    auto built = builder.Build(order, build_options);
    if (!built.ok()) continue;
    CISQP_ASSIGN_OR_RETURN(PlanningReport report, planner.Analyze(*built));
    if (!report.feasible) continue;
    ++feasible;
    CISQP_ASSIGN_OR_RETURN(
        double bytes,
        cost_scorer.EstimateAssignmentBytes(*built, report.plan->assignment));
    if (!best || bytes < best->estimated_bytes) {
      PlanSearchResult candidate;
      candidate.plan = std::move(*built);
      candidate.safe_plan = std::move(*report.plan);
      candidate.estimated_bytes = bytes;
      best = std::move(candidate);
    }
  }
  CISQP_METRIC_ADD("plan_search.orders_tried", tried);
  CISQP_METRIC_ADD("plan_search.orders_feasible", feasible);
  span.AddAttribute("orders_tried", tried);
  span.AddAttribute("orders_feasible", feasible);
  if (!best) {
    return InfeasibleError("no examined join order admits a safe assignment (" +
                           std::to_string(tried) + " orders tried)");
  }
  best->orders_tried = tried;
  best->orders_feasible = feasible;
  return std::move(*best);
}

}  // namespace cisqp::planner
