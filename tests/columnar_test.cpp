// Kernel-equivalence tests: the columnar engine vs the retained row kernels.
//
// The vectorized kernels (algebra/vectorized) must reproduce the row
// kernels' output *exactly* — same header, same rows, same row order — on
// every input, including the corners the sweep fixed bugs around: NULL join
// keys, duplicate projection attributes, empty inputs, and distinct chained
// after project. Randomized tables drive both engines through the
// compatibility operator API and through the batch API directly.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "algebra/operators.hpp"
#include "algebra/vectorized.hpp"
#include "storage/column.hpp"
#include "test_util.hpp"
#include "testcheck/row_kernels.hpp"

namespace cisqp::algebra {
namespace {

using storage::Column;
using storage::ColumnarTable;
using storage::Row;
using storage::Table;
using storage::Value;

constexpr catalog::AttributeId kA = 1;
constexpr catalog::AttributeId kB = 2;
constexpr catalog::AttributeId kC = 3;
constexpr catalog::AttributeId kD = 4;

Table MakeTable(std::vector<Column> header, std::vector<Row> rows) {
  Table t(std::move(header));
  for (Row& r : rows) CISQP_CHECK(t.AppendRow(std::move(r)).ok());
  return t;
}

/// Exact equality: header, row count, and cell-wise CompareTotal == 0 (so
/// NULL == NULL and NaN == NaN, unlike Value::operator==).
void ExpectExactlyEqual(const Table& got, const Table& want) {
  ASSERT_EQ(got.columns(), want.columns());
  ASSERT_EQ(got.row_count(), want.row_count());
  for (std::size_t r = 0; r < got.row_count(); ++r) {
    for (std::size_t c = 0; c < got.column_count(); ++c) {
      EXPECT_EQ(got.row(r)[c].CompareTotal(want.row(r)[c]), 0)
          << "row " << r << " col " << c << ": " << got.row(r)[c].ToString()
          << " vs " << want.row(r)[c].ToString();
    }
  }
}

Value RandomCell(std::mt19937& rng, catalog::ValueType type, double null_prob) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng) < null_prob) return Value();
  switch (type) {
    case catalog::ValueType::kInt64:
      return Value(std::int64_t{std::uniform_int_distribution<int>(0, 6)(rng)});
    case catalog::ValueType::kDouble:
      return Value(0.5 * std::uniform_int_distribution<int>(0, 6)(rng));
    case catalog::ValueType::kString: {
      static const char* kPool[] = {"", "a", "b", "gold", "silver", "flu"};
      return Value(kPool[std::uniform_int_distribution<int>(0, 5)(rng)]);
    }
  }
  return Value();
}

Table RandomTable(std::mt19937& rng, std::vector<Column> header,
                  std::size_t rows, double null_prob = 0.2) {
  Table t(std::move(header));
  t.Reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(t.column_count());
    for (const Column& c : t.columns()) {
      row.push_back(RandomCell(rng, c.type, null_prob));
    }
    CISQP_CHECK(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

std::vector<Column> MixedHeader() {
  return {Column{kA, catalog::ValueType::kInt64},
          Column{kB, catalog::ValueType::kString},
          Column{kC, catalog::ValueType::kDouble}};
}

// --- round trip & wire size ------------------------------------------------

TEST(ColumnarTableTest, RoundTripPreservesRowsAndOrder) {
  std::mt19937 rng(7);
  const Table t = RandomTable(rng, MixedHeader(), 64, /*null_prob=*/0.3);
  const ColumnarTable ct = ColumnarTable::FromRows(t);
  EXPECT_EQ(ct.row_count(), t.row_count());
  ExpectExactlyEqual(ct.MaterializeRows(), t);
}

TEST(ColumnarTableTest, CachedWireSizeMatchesRowFormula) {
  std::mt19937 rng(11);
  for (int i = 0; i < 10; ++i) {
    const Table t = RandomTable(rng, MixedHeader(), 32, /*null_prob=*/0.25);
    EXPECT_EQ(ColumnarTable::FromRows(t).WireSizeBytes(), t.WireSizeBytes());
  }
  const Table empty(MixedHeader());
  EXPECT_EQ(ColumnarTable::FromRows(empty).WireSizeBytes(), 0u);
}

TEST(ColumnarTableTest, IdentityBatchMaterializeSharesTheSource) {
  std::mt19937 rng(3);
  auto source = std::make_shared<const ColumnarTable>(
      ColumnarTable::FromRows(RandomTable(rng, MixedHeader(), 8)));
  const ColumnarBatch batch = ColumnarBatch::FromTable(source);
  EXPECT_TRUE(batch.identity());
  EXPECT_EQ(batch.Materialize().get(), source.get());
}

// --- storage satellite fixes -----------------------------------------------

TEST(TableIndexTest, ColumnIndexReturnsFirstOccurrence) {
  // Join outputs can carry the same attribute twice; the precomputed map
  // must resolve to the first column like the old linear scan did.
  const Table t({Column{kB, catalog::ValueType::kInt64},
                 Column{kA, catalog::ValueType::kString},
                 Column{kA, catalog::ValueType::kInt64}});
  EXPECT_EQ(t.ColumnIndex(kA), std::size_t{1});
  EXPECT_EQ(t.ColumnIndex(kB), std::size_t{0});
  EXPECT_EQ(t.ColumnIndex(kC), std::nullopt);
  EXPECT_EQ(Table().ColumnIndex(kA), std::nullopt);
}

TEST(TableMultisetTest, SameRowMultisetComparesPermutations) {
  const std::vector<Column> header = MixedHeader();
  const Table a = MakeTable(header, {{Value(std::int64_t{1}), Value("x"), Value(1.5)},
                                     {Value(), Value("y"), Value()},
                                     {Value(std::int64_t{1}), Value("x"), Value(1.5)}});
  const Table b = MakeTable(header, {{Value(), Value("y"), Value()},
                                     {Value(std::int64_t{1}), Value("x"), Value(1.5)},
                                     {Value(std::int64_t{1}), Value("x"), Value(1.5)}});
  EXPECT_TRUE(Table::SameRowMultiset(a, b));
  EXPECT_TRUE(Table::SameRowMultiset(a, a));

  // Same row *set*, different multiplicities: not the same multiset.
  const Table c = MakeTable(header, {{Value(std::int64_t{1}), Value("x"), Value(1.5)},
                                     {Value(), Value("y"), Value()},
                                     {Value(), Value("y"), Value()}});
  EXPECT_FALSE(Table::SameRowMultiset(a, c));

  // Row-count and header mismatches short-circuit.
  EXPECT_FALSE(Table::SameRowMultiset(a, Table(header)));
  EXPECT_FALSE(Table::SameRowMultiset(
      a, MakeTable({Column{kD, catalog::ValueType::kInt64}},
                   {{Value(std::int64_t{1})}, {Value(std::int64_t{2})},
                    {Value(std::int64_t{3})}})));
}

// --- kernel equivalence: project -------------------------------------------

TEST(KernelEquivalenceTest, ProjectMatchesRowKernel) {
  std::mt19937 rng(17);
  // Duplicate attributes in the projection list are legal and must
  // duplicate the column.
  const std::vector<std::vector<catalog::AttributeId>> lists = {
      {kA}, {kC, kA}, {kB, kB, kA}, {kA, kB, kC}, {kC, kC, kC}};
  for (int iter = 0; iter < 20; ++iter) {
    const Table t = RandomTable(rng, MixedHeader(), 40);
    for (const auto& attrs : lists) {
      for (const bool distinct : {false, true}) {
        ASSERT_OK_AND_ASSIGN(const Table want,
                             testcheck::RowProject(t, attrs, distinct));
        ASSERT_OK_AND_ASSIGN(const Table got, Project(t, attrs, distinct));
        ExpectExactlyEqual(got, want);
      }
    }
  }
}

TEST(KernelEquivalenceTest, DistinctAfterProjectMatchesRowKernel) {
  std::mt19937 rng(23);
  const Table t = RandomTable(rng, MixedHeader(), 60, /*null_prob=*/0.4);
  ASSERT_OK_AND_ASSIGN(const Table narrow, Project(t, {kB, kC}));
  ASSERT_OK_AND_ASSIGN(const Table narrow_row, testcheck::RowProject(t, {kB, kC}));
  ExpectExactlyEqual(Distinct(narrow), testcheck::RowDistinct(narrow_row));
}

TEST(KernelEquivalenceTest, ProjectErrorsMatchRowKernel) {
  const Table t(MixedHeader());
  EXPECT_EQ(Project(t, {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Project(t, {}).status().message(),
            testcheck::RowProject(t, {}).status().message());
  EXPECT_EQ(Project(t, {kD}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Project(t, {kD}).status().message(),
            testcheck::RowProject(t, {kD}).status().message());
}

// --- kernel equivalence: select --------------------------------------------

std::vector<Predicate> SelectPredicates() {
  std::vector<Predicate> preds;
  preds.push_back(Predicate::True());
  for (const CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    Predicate by_int;
    by_int.And(Comparison{kA, op, Value(std::int64_t{3})});
    preds.push_back(by_int);
    Predicate by_str;
    by_str.And(Comparison{kB, op, Value("gold")});
    preds.push_back(by_str);
    Predicate attr_attr;
    attr_attr.And(Comparison{kA, op, kC});  // int column vs double column
    preds.push_back(attr_attr);
  }
  Predicate null_literal;  // NULL literal: keeps nothing, any op
  null_literal.And(Comparison{kA, CompareOp::kEq, Value()});
  preds.push_back(null_literal);
  Predicate type_mismatch;  // int column vs string literal: <> is TRUE
  type_mismatch.And(Comparison{kA, CompareOp::kNe, Value("gold")});
  preds.push_back(type_mismatch);
  Predicate conjunction;
  conjunction.And(Comparison{kA, CompareOp::kGe, Value(std::int64_t{1})});
  conjunction.And(Comparison{kB, CompareOp::kEq, Value("a")});
  preds.push_back(conjunction);
  return preds;
}

TEST(KernelEquivalenceTest, SelectMatchesRowKernelAndPreservesOrder) {
  std::mt19937 rng(29);
  for (int iter = 0; iter < 10; ++iter) {
    const Table t = RandomTable(rng, MixedHeader(), 50);
    for (const Predicate& p : SelectPredicates()) {
      ASSERT_OK_AND_ASSIGN(const Table want, testcheck::RowSelect(t, p));
      ASSERT_OK_AND_ASSIGN(const Table got, Select(t, p));
      ExpectExactlyEqual(got, want);
    }
  }
}

TEST(KernelEquivalenceTest, SelectMissingAttributeErrorMatches) {
  std::mt19937 rng(31);
  const Table t = RandomTable(rng, MixedHeader(), 3);
  Predicate p;
  p.And(Comparison{kD, CompareOp::kEq, Value(std::int64_t{1})});
  EXPECT_EQ(Select(t, p).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Select(t, p).status().message(),
            testcheck::RowSelect(t, p).status().message());
}

// --- kernel equivalence: joins ---------------------------------------------

TEST(KernelEquivalenceTest, HashJoinMatchesRowKernelWithNullKeys) {
  std::mt19937 rng(37);
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kC, catalog::ValueType::kInt64},
      Column{kD, catalog::ValueType::kString}};
  const std::vector<EquiJoinAtom> atoms = {{kA, kC}};
  const std::vector<EquiJoinAtom> two_atoms = {{kA, kC}, {kB, kD}};
  for (int iter = 0; iter < 10; ++iter) {
    // Asymmetric sizes in both directions exercise both build sides; high
    // null probability exercises NULL-key filtering on build and probe.
    const Table l = RandomTable(rng, left_header, iter % 2 == 0 ? 12 : 40,
                                /*null_prob=*/0.3);
    const Table r = RandomTable(rng, right_header, iter % 2 == 0 ? 40 : 12,
                                /*null_prob=*/0.3);
    for (const auto& a : {atoms, two_atoms}) {
      ASSERT_OK_AND_ASSIGN(const Table want, testcheck::RowHashJoin(l, r, a));
      ASSERT_OK_AND_ASSIGN(const Table got, HashJoin(l, r, a));
      ExpectExactlyEqual(got, want);
    }
  }
}

TEST(KernelEquivalenceTest, NaturalJoinMatchesRowKernel) {
  std::mt19937 rng(41);
  const std::vector<Column> left_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kB, catalog::ValueType::kString}};
  const std::vector<Column> right_header = {
      Column{kA, catalog::ValueType::kInt64},
      Column{kC, catalog::ValueType::kDouble}};
  for (int iter = 0; iter < 10; ++iter) {
    const Table l = RandomTable(rng, left_header, 25, /*null_prob=*/0.3);
    const Table r = RandomTable(rng, right_header, 18, /*null_prob=*/0.3);
    ASSERT_OK_AND_ASSIGN(const Table want,
                         testcheck::RowNaturalJoinOnShared(l, r));
    ASSERT_OK_AND_ASSIGN(const Table got, NaturalJoinOnShared(l, r));
    ExpectExactlyEqual(got, want);
  }
}

TEST(KernelEquivalenceTest, JoinErrorsMatchRowKernels) {
  const Table l({Column{kA, catalog::ValueType::kInt64}});
  const Table r({Column{kC, catalog::ValueType::kInt64}});
  EXPECT_EQ(HashJoin(l, r, {}).status().message(),
            testcheck::RowHashJoin(l, r, {}).status().message());
  const std::vector<EquiJoinAtom> bad = {{kA, kD}};
  EXPECT_EQ(HashJoin(l, r, bad).status().message(),
            testcheck::RowHashJoin(l, r, bad).status().message());
  EXPECT_EQ(NaturalJoinOnShared(l, r).status().message(),
            testcheck::RowNaturalJoinOnShared(l, r).status().message());
}

// --- kernel equivalence: distinct ------------------------------------------

TEST(KernelEquivalenceTest, DistinctMatchesRowKernelKeepsFirstOccurrence) {
  std::mt19937 rng(43);
  for (int iter = 0; iter < 10; ++iter) {
    // Few distinct cell values + high NULL rate → many exact-duplicate rows,
    // including rows equal only through NULL == NULL.
    const Table t = RandomTable(rng, MixedHeader(), 50, /*null_prob=*/0.5);
    ExpectExactlyEqual(Distinct(t), testcheck::RowDistinct(t));
  }
}

// --- empty inputs -----------------------------------------------------------

TEST(KernelEquivalenceTest, EmptyInputsMatchRowKernels) {
  const Table t(MixedHeader());
  const Table r({Column{kD, catalog::ValueType::kInt64},
                 Column{kA, catalog::ValueType::kInt64}});
  ASSERT_OK_AND_ASSIGN(const Table p, Project(t, {kB, kA}, /*distinct=*/true));
  ASSERT_OK_AND_ASSIGN(const Table p_row,
                       testcheck::RowProject(t, {kB, kA}, /*distinct=*/true));
  ExpectExactlyEqual(p, p_row);

  Predicate pred;
  pred.And(Comparison{kA, CompareOp::kLt, Value(std::int64_t{5})});
  ASSERT_OK_AND_ASSIGN(const Table s, Select(t, pred));
  ASSERT_OK_AND_ASSIGN(const Table s_row, testcheck::RowSelect(t, pred));
  ExpectExactlyEqual(s, s_row);

  const std::vector<EquiJoinAtom> atoms = {{kA, kD}};
  ASSERT_OK_AND_ASSIGN(const Table j, HashJoin(t, r, atoms));
  ASSERT_OK_AND_ASSIGN(const Table j_row, testcheck::RowHashJoin(t, r, atoms));
  ExpectExactlyEqual(j, j_row);
  ASSERT_OK_AND_ASSIGN(const Table n, NaturalJoinOnShared(t, r));
  ASSERT_OK_AND_ASSIGN(const Table n_row,
                       testcheck::RowNaturalJoinOnShared(t, r));
  ExpectExactlyEqual(n, n_row);

  ExpectExactlyEqual(Distinct(t), testcheck::RowDistinct(t));
}

// --- fixed row-kernel inefficiency contracts -------------------------------

TEST(RowKernelContractTest, SelectReservesAndDistinctKeepsFirstOccurrence) {
  // Pin the two behavioral contracts behind the fixed inefficiencies: σ
  // preserves input order (reservation must not reorder), and Distinct's
  // index-hashing rewrite still keeps exactly the first occurrence.
  const std::vector<Column> header = {Column{kA, catalog::ValueType::kInt64},
                                      Column{kB, catalog::ValueType::kString}};
  const Table t = MakeTable(header, {{Value(std::int64_t{2}), Value("x")},
                                     {Value(std::int64_t{1}), Value("first")},
                                     {Value(std::int64_t{2}), Value("x")},
                                     {Value(std::int64_t{1}), Value("second")},
                                     {Value(), Value()},
                                     {Value(), Value()}});
  Predicate keep_ones;
  keep_ones.And(Comparison{kA, CompareOp::kEq, Value(std::int64_t{1})});
  ASSERT_OK_AND_ASSIGN(const Table sel, testcheck::RowSelect(t, keep_ones));
  ASSERT_EQ(sel.row_count(), 2u);
  EXPECT_EQ(sel.row(0)[1].CompareTotal(Value("first")), 0);
  EXPECT_EQ(sel.row(1)[1].CompareTotal(Value("second")), 0);

  const Table ded = testcheck::RowDistinct(t);
  ASSERT_EQ(ded.row_count(), 4u);  // NULL rows compare equal → kept once
  EXPECT_EQ(ded.row(0)[0].CompareTotal(Value(std::int64_t{2})), 0);
  EXPECT_EQ(ded.row(1)[1].CompareTotal(Value("first")), 0);
  EXPECT_EQ(ded.row(3)[0].CompareTotal(Value()), 0);
  ExpectExactlyEqual(Distinct(t), ded);
}

}  // namespace
}  // namespace cisqp::algebra
