#include "serve/admission.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::serve {

AdmissionController::AdmissionController(std::size_t max_concurrent,
                                         std::size_t max_queue,
                                         std::int64_t max_wait_us)
    : max_concurrent_(max_concurrent == 0 ? 1 : max_concurrent),
      max_queue_(max_queue),
      max_wait_us_(max_wait_us) {}

void AdmissionController::SkipAbandoned() {
  while (abandoned_.erase(now_serving_) > 0) ++now_serving_;
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    std::int64_t* queue_wait_us) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool must_wait = running_ >= max_concurrent_ || queued_ > 0;
  if (must_wait && queued_ >= max_queue_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    CISQP_METRIC_INC("serve.rejected");
    return ResourceExhaustedError(
        "admission queue full (" + std::to_string(queued_) + " waiting, " +
        std::to_string(running_) + " running)");
  }
  const std::uint64_t seq = next_ticket_++;
  std::int64_t waited_us = 0;
  if (must_wait) {
    ++queued_;
    CISQP_METRIC_SET("serve.queued", static_cast<double>(queued_));
    const std::int64_t start = obs::NowMicros();
    const auto ready = [&] {
      return seq == now_serving_ && running_ < max_concurrent_;
    };
    bool admitted = true;
    if (max_wait_us_ > 0) {
      admitted = cv_.wait_until(lock,
                                std::chrono::steady_clock::now() +
                                    std::chrono::microseconds(max_wait_us_),
                                ready);
    } else {
      cv_.wait(lock, ready);
    }
    waited_us = obs::NowMicros() - start;
    --queued_;
    CISQP_METRIC_SET("serve.queued", static_cast<double>(queued_));
    if (!admitted) {
      // Deadline passed while queued. Hand the FIFO position back: at the
      // head, step now_serving_ past this ticket (and any previously
      // abandoned successors) on the spot; otherwise leave a marker the
      // hand-off skips when it gets there. Either way the waiters behind
      // this ticket are never wedged by the timeout.
      if (seq == now_serving_) {
        ++now_serving_;
        SkipAbandoned();
      } else {
        abandoned_.insert(seq);
      }
      rejected_.fetch_add(1, std::memory_order_relaxed);
      CISQP_METRIC_INC("serve.rejected");
      lock.unlock();
      cv_.notify_all();
      return ResourceExhaustedError(
          "admission wait exceeded max_wait_us=" +
          std::to_string(max_wait_us_) + " (" + std::to_string(waited_us) +
          "us queued)");
    }
  }
  ++now_serving_;
  SkipAbandoned();
  ++running_;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  CISQP_METRIC_INC("serve.admitted");
  CISQP_METRIC_SET("serve.running", static_cast<double>(running_));
  lock.unlock();
  // FIFO hand-off: the successor's seq just became now_serving_; it may be
  // admissible already when slots remain.
  cv_.notify_all();
  if (queue_wait_us != nullptr) *queue_wait_us = waited_us;
  return Ticket(this);
}

void AdmissionController::ReleaseSlot() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    --running_;
    CISQP_METRIC_SET("serve.running", static_cast<double>(running_));
  }
  cv_.notify_all();
}

void AdmissionController::Ticket::Release() {
  if (owner_ != nullptr) {
    owner_->ReleaseSlot();
    owner_ = nullptr;
  }
}

std::size_t AdmissionController::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::size_t AdmissionController::queued() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace cisqp::serve
