// Small string helpers used across the library (formatting of profiles,
// authorization pretty-printing, SQL diagnostics).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cisqp {

/// Joins `parts` with `sep` ("a, b, c").
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view text) noexcept;

/// ASCII case-insensitive equality (SQL keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b) noexcept;

/// Lower-cases ASCII letters.
std::string ToLowerAscii(std::string_view text);

}  // namespace cisqp
